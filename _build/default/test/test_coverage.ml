(** Tests for the conservative coverage checker (the paper's §6.1
    extension): refinements shrink coverage obligations. *)

open Belr_lf
open Belr_comp
open Belr_kits

let ok name thunk = Alcotest.test_case name `Quick thunk

let pred_program =
  {bel|
LF nat : type =
| z : nat
| s : nat -> nat;

LFR pos <| nat : sort =
| s : nat -> pos;

rec pred-pos : [ |- pos] -> [ |- nat] =
fn d => case d of
| {N : [ |- nat]}
  [ |- s N] => [ |- N];

rec pred-nat : [ |- nat] -> [ |- nat] =
fn d => case d of
| {N : [ |- nat]}
  [ |- s N] => [ |- N];
|bel}

let find_rec sg n =
  match Sign.lookup_name sg n with
  | Some (Sign.Sym_rec r) -> r
  | _ -> Alcotest.failf "%s not found" n

let tests =
  [
    ok "pred is covered at sort pos (z has no sort there)" (fun () ->
        let sg = Belr_parser.Process.program pred_program in
        match Coverage.check_rec sg (find_rec sg "pred-pos") with
        | [] -> ()
        | _ -> Alcotest.fail "expected full coverage");
    ok "the same match is uncovered at type nat (missing z)" (fun () ->
        let sg = Belr_parser.Process.program pred_program in
        match Coverage.check_rec sg (find_rec sg "pred-nat") with
        | [ (missing, _) ] ->
            Alcotest.(check bool) "z missing" true (List.mem "z" missing)
        | _ -> Alcotest.fail "expected exactly one uncovered match");
    ok "the §2 ceq covers all six candidates" (fun () ->
        let sg = Surface.load () in
        Alcotest.(check int)
          "no issues" 0
          (List.length (Coverage.check_rec sg (find_rec sg "ceq"))));
    ok "aeq-refl and aeq-sym are covered" (fun () ->
        let sg = Surface.load () in
        Alcotest.(check int)
          "refl" 0
          (List.length (Coverage.check_rec sg (find_rec sg "aeq-refl")));
        Alcotest.(check int)
          "sym" 0
          (List.length (Coverage.check_rec sg (find_rec sg "aeq-sym"))));
    ok
      "aeq-trans's inner matches are conservatively flagged (their variable \
       cases are impossible but need unification to dismiss)"
      (fun () ->
        let sg = Surface.load () in
        let issues = Coverage.check_rec sg (find_rec sg "aeq-trans") in
        (* two inner case expressions, each with an impossible variable
           candidate the conservative analysis cannot dismiss *)
        Alcotest.(check int) "two flags" 2 (List.length issues));
  ]

let suites = [ ("coverage", tests) ]
