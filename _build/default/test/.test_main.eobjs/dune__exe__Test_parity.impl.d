test/test_parity.ml: Alcotest Belr_comp Belr_core Belr_kits Belr_lf Belr_support Belr_syntax Check_lf Check_lfr Comp Coverage Ctxs Equal Error Eval Lazy Lf List Meta Parity Sign
