test/fixtures.ml: Belr_kits
