test/test_errors.ml: Alcotest Belr_kits Belr_parser Belr_support Error Process Surface
