test/test_coverage.ml: Alcotest Belr_comp Belr_kits Belr_lf Belr_parser Coverage List Sign Surface
