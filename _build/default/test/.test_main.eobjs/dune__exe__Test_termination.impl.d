test/test_termination.ml: Alcotest Belr_comp Belr_kits Belr_lf Belr_parser List Parity Sign Surface Termination Values
