test/test_conventional.ml: Alcotest Belr_comp Belr_core Belr_kits Belr_syntax Check_lfr Comp Conventional Ctxs Eval Lazy Lf List Meta
