test/test_comp.ml: Alcotest Belr_comp Belr_core Belr_kits Belr_support Belr_syntax Check_comp Check_lfr Comp Ctxs Equal_dev Error Eval Lazy Lf List Meta Ulam
