test/test_lf.ml: Alcotest Belr_lf Belr_support Belr_syntax Check_lf Ctxops Ctxs Equal Error Eta Fixtures Hsub Lf Meta Pp
