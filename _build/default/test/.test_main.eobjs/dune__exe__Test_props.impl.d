test/test_props.ml: Belr_core Belr_kits Belr_lf Belr_meta Belr_support Belr_syntax Belr_unify Check_lf Check_lfr Ctxs Embed Equal Erase Eta Hsub Lf List Meta QCheck QCheck_alcotest Shift Ulam Unify
