test/test_unify.ml: Alcotest Belr_meta Belr_syntax Belr_unify Ctxs Equal Fixtures Lf List Meta Msub Pp Shift Unify
