test/test_lfr.ml: Alcotest Belr_core Belr_lf Belr_support Belr_syntax Check_lf Check_lfr Ctxs Embed Equal Error Fixtures Lf Pp Sctxops Shift
