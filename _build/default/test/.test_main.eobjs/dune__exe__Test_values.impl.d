test/test_values.ml: Alcotest Belr_comp Belr_core Belr_kits Belr_lf Belr_support Belr_syntax Check_lfr Comp Ctxs Error Eval Lazy Lf List Meta Sign Stats Values
