test/test_meta.ml: Alcotest Belr_core Belr_lf Belr_meta Belr_support Belr_syntax Check_lf Check_lfr Check_meta Check_meta_t Ctxs Embed Equal Erase Error Fixtures Lf List Meta Msub Pp
