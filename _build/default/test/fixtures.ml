(** Test fixtures: re-export of the untyped λ-calculus kit (see
    [Belr_kits.Ulam]).  The kit is built directly in internal syntax so
    that substrate tests do not depend on the front end. *)

include Belr_kits.Ulam
