(** Tests for the conservative structural termination checker. *)

open Belr_lf
open Belr_comp
open Belr_kits

let ok name thunk = Alcotest.test_case name `Quick thunk

let find_rec sg n =
  match Sign.lookup_name sg n with
  | Some (Sign.Sym_rec r) -> r
  | _ -> Alcotest.failf "%s not found" n

let guarded sg n =
  match Termination.check_rec sg (find_rec sg n) with
  | Termination.Guarded -> true
  | Termination.Issues _ -> false

let tests =
  [
    ok "the §2 development is structurally guarded" (fun () ->
        let sg = Surface.load () in
        List.iter
          (fun n ->
            Alcotest.(check bool) (n ^ " guarded") true (guarded sg n))
          [ "aeq-refl"; "aeq-sym"; "aeq-trans"; "ceq" ]);
    ok "half, strengthen, and result-val are guarded" (fun () ->
        let sg = Parity.load () in
        Alcotest.(check bool) "half" true (guarded sg "half");
        let sg2 = Values.load () in
        Alcotest.(check bool) "strengthen" true (guarded sg2 "strengthen");
        Alcotest.(check bool) "result-val" true (guarded sg2 "result-val"));
    ok "a trivial loop is rejected" (fun () ->
        let sg =
          Belr_parser.Process.program
            {bel|
LF nat : type = | z : nat | s : nat -> nat;
rec loop : [ |- nat] -> [ |- nat] = fn d => loop d;
|bel}
        in
        Alcotest.(check bool) "loop" false (guarded sg "loop"));
    ok "a call on the whole scrutinee (not a subterm) is rejected" (fun () ->
        let sg =
          Belr_parser.Process.program
            {bel|
LF nat : type = | z : nat | s : nat -> nat;
rec spin : {N : [ |- nat]} [ |- nat] =
mlam N => case [ |- N] of
| [ |- z] => [ |- z]
| {M : [ |- nat]}
  [ |- s M] => spin [ |- s M];
|bel}
        in
        (* the argument s M is headed by a constant, not by the pattern
           variable M: the conservative check flags it *)
        Alcotest.(check bool) "spin" false (guarded sg "spin"));
    ok "a call on the pattern subterm is accepted" (fun () ->
        let sg =
          Belr_parser.Process.program
            {bel|
LF nat : type = | z : nat | s : nat -> nat;
rec down : {N : [ |- nat]} [ |- nat] =
mlam N => case [ |- N] of
| [ |- z] => [ |- z]
| {M : [ |- nat]}
  [ |- s M] => down [ |- M];
|bel}
        in
        Alcotest.(check bool) "down" true (guarded sg "down"));
  ]

let suites = [ ("termination", tests) ]
