(** Negative-path battery: every stage of the pipeline rejects what it
    should, with a user-facing error (never an internal violation). *)

open Belr_support
open Belr_kits
open Belr_parser

let rejects name src =
  Alcotest.test_case name `Quick (fun () ->
      match Process.program src with
      | exception Error.Belr_error _ -> ()
      | exception Error.Violation msg ->
          Alcotest.failf "internal violation instead of a user error: %s" msg
      | _ -> Alcotest.failf "%s: expected rejection" name)

let base = Surface.signature_src

let tests =
  [
    rejects "unbound identifier" (base ^ "LF bad : type = | c : missing;");
    rejects "duplicate declaration" (base ^ "LF tm : type;");
    rejects "refining a non-existent family"
      "LFR s <| nope : sort = ;";
    rejects "refinement kind must refine the family's kind"
      (base ^ "LFR aeq2 <| deq : tm -> sort = ;")
      (* deq has two arguments *);
    rejects "sort assignment must target the declared family"
      (base ^ "LFR aeq2 <| deq : tm -> tm -> sort = | e-refl : {M : tm} aeq M M;");
    rejects "constructor of the wrong family"
      (base ^ "LF t2 : type = | c2 : tm;");
    rejects "over-applied family"
      (base ^ "LF bad : type = | c : tm tm;");
    rejects "under-applied family in a box"
      (base ^ "rec f : {M : [ |- tm]} [ |- deq M] = mlam M => f [ |- M];");
    rejects "unknown world in a context"
      (base
     ^ "rec f : (Psi : xaG) [Psi, b : nope |- tm] -> [Psi |- tm] = \
        mlam Psi => fn d => d;")
      ;
    rejects "context variable with the wrong schema"
      (base
     ^ "schema other = | oW : block (x : tm, y : tm);\n\
        rec f : (Psi : other) [Psi |- aeq (lam (\\x. x)) (lam (\\x. x))] -> \
        [Psi |- tm] = mlam Psi => fn d => d;")
      (* aeq's congruence case needs xaG blocks; here the body is also
         ill-sorted *);
    rejects "promotion cannot be undone (Ψ⊤ into Ψ)"
      (base
     ^ "rec f : (Psi : xaG) (M : [Psi |- tm]) [Psi^ |- deq M M] -> [Psi |- \
        deq M M] = mlam Psi => mlam M => fn d => d;");
    rejects "fn against a box sort"
      (base ^ "rec f : [ |- tm] = fn x => x;");
    rejects "mlam against an arrow sort"
      (base ^ "rec f : [ |- tm] -> [ |- tm] = mlam X => [ |- X];");
    rejects "let [X] of a non-box"
      (base
     ^ "rec f : ([ |- tm] -> [ |- tm]) -> [ |- tm] = fn g => let [X] = g in \
        [ |- X];");
    rejects "branch pattern context mismatch"
      (base
     ^ "rec f : (Psi : xaG) (M : [Psi |- tm]) [Psi |- aeq M M] -> [Psi |- \
        aeq M M] = mlam Psi => mlam M => fn d => case d of | {#b : #[Psi |- \
        xeW]} [ |- #b.2] => d;");
    rejects "tuple with wrong arity for a block"
      (base
     ^ {bel|
rec f : (Psi : xaG) (M : [Psi, x : tm |- tm])
        [Psi, b : xeW |- aeq M[.., b.1] M[.., b.1]] -> [Psi |- tm] =
mlam Psi => mlam M => fn d =>
  let [E] = f [Psi, b : xeW] [Psi, b : xeW, x : tm |- M[.., x]]
              [Psi, b : xeW, b2 : xeW |- E0]
  in [Psi |- M[.., <lam (\x. x)>]];
|bel});
    rejects "ill-sorted substitution front"
      (base
     ^ "rec f : (Psi : xaG) (M : [Psi, x : tm |- tm]) [Psi |- aeq \
        M[.., lam (\\y. y)] M[.., b]] -> [Psi |- tm] = mlam Psi => mlam M => \
        fn d => d;");
    rejects "parameter variable used without a projection"
      (base
     ^ "rec f : (Psi : xaG) {#b : #[Psi |- xeW]} [Psi |- aeq #b #b] -> [Psi \
        |- tm] = mlam Psi => mlam b => fn d => d;");
  ]

let suites = [ ("errors", tests) ]
