(** The [belr] command-line interface.

    - [belr check FILE…]   parse, elaborate, sort-check, and run the
      conservativity translation on each file (later files see the
      declarations of earlier ones).
    - [belr sig FILE…]     same, then print the resulting signature summary.

    Exit code 0 on success, 1 on any error. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_files files =
  let sg = Belr_lf.Sign.create () in
  List.iter
    (fun f -> Belr_parser.Process.extend sg ~name:f (read_file f))
    files;
  sg

let summarize sg =
  let n l = List.length l in
  let typs = ref 0 and srts = ref 0 and consts = ref 0 in
  let schemas = Belr_lf.Sign.all_schemas sg in
  let sschemas =
    List.filter
      (fun (_, (e : Belr_lf.Sign.sschema_entry)) ->
        let s = e.Belr_lf.Sign.h_name in
        String.length s = 0 || s.[String.length s - 1] <> '^')
      (Belr_lf.Sign.all_sschemas sg)
  in
  let recs = Belr_lf.Sign.all_recs sg in
  (* count via the public name table *)
  Hashtbl.iter
    (fun _ sym ->
      match sym with
      | Belr_lf.Sign.Sym_typ _ -> incr typs
      | Belr_lf.Sign.Sym_srt _ -> incr srts
      | Belr_lf.Sign.Sym_const _ -> incr consts
      | _ -> ())
    (Belr_lf.Sign.name_table sg);
  Fmt.pr "signature: %d type families, %d sort families, %d constants,@."
    !typs !srts !consts;
  Fmt.pr "           %d schemas, %d refinement schemas, %d functions@."
    (n schemas) (n sschemas) (n recs)

let print_recs sg =
  List.iter
    (fun (_, (r : Belr_lf.Sign.rec_entry)) ->
      Fmt.pr "rec %s : %a@." r.Belr_lf.Sign.r_name
        (Belr_syntax.Pp.pp_ctyp (Belr_lf.Sign.pp_env sg))
        r.Belr_lf.Sign.r_styp)
    (List.sort compare (Belr_lf.Sign.all_recs sg))

(** Optional analyses (the paper's §6.1 future work): coverage and
    structural termination, reported as warnings. *)
let analyze sg =
  List.iter
    (fun (id, (r : Belr_lf.Sign.rec_entry)) ->
      (match Belr_comp.Coverage.check_rec sg id with
      | [] -> ()
      | issues ->
          List.iter
            (fun (missing, _) ->
              Fmt.pr "warning: %s has a non-exhaustive match (missing %s)@."
                r.Belr_lf.Sign.r_name
                (String.concat ", " missing))
            issues);
      match Belr_comp.Termination.check_rec sg id with
      | Belr_comp.Termination.Guarded -> ()
      | Belr_comp.Termination.Issues is ->
          List.iter (fun m -> Fmt.pr "warning: %s@." m) is)
    (List.sort compare (Belr_lf.Sign.all_recs sg))

let run_load files verbose total =
  match
    Belr_support.Error.protect (fun () ->
        let sg = load_files files in
        Fmt.pr "%d file(s) checked successfully.@." (List.length files);
        summarize sg;
        if verbose then print_recs sg;
        if total then analyze sg;
        ())
  with
  | Ok () -> 0
  | Error msg ->
      Fmt.epr "%s@." msg;
      1

let files_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"source files")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"print checked functions")

let total_arg =
  Arg.(
    value & flag
    & info [ "total" ]
        ~doc:
          "also run the optional coverage and structural-termination \
           analyses (the paper's §6.1 extensions) and report warnings")

let check_cmd =
  let doc = "parse, elaborate, and sort-check source files" in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      const (fun files v t -> run_load files v t)
      $ files_arg $ verbose_arg $ total_arg)

let main =
  let doc =
    "a proof environment with contextual refinement types (Gaulin & \
     Pientka reproduction)"
  in
  Cmd.group (Cmd.info "belr" ~version:"1.0.0" ~doc) [ check_cmd ]

let () = exit (Cmd.eval' main)
