lib/comp/eval.ml: Belr_lf Belr_meta Belr_support Belr_syntax Belr_unify Comp Error List Meta Msub Name Shift Sign Unify
