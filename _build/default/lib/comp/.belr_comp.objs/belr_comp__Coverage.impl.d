lib/comp/coverage.ml: Belr_core Belr_lf Belr_support Belr_syntax Check_comp Comp Ctxs Lf List Meta Printf Shift Sign String
