lib/comp/termination.ml: Belr_lf Belr_syntax Comp Fmt Lf List Meta Sign
