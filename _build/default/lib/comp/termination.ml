(** A conservative structural termination checker — with {!Coverage}, the
    other half of the paper's §6.1 future work ("a natural next step is
    therefore to develop a coverage and termination checker for Beluga
    with refinement types").

    A Beluga proof is a total function; the paper leaves termination
    checking out of its formal system and so does our checker proper.
    This optional analysis accepts a function when every {e self}-call is
    {e guarded}: at least one of its boxed arguments is headed by a
    pattern variable — a meta-variable bound by an enclosing [case]
    branch, hence a strict subterm of something matched.  Calls to
    previously defined functions (lemmas) are ignored; mutual recursion
    is not analyzed (declare the functions separately, as the paper's
    examples do).

    This validates all developments in this repository (the §2 proofs,
    the conventional baseline, [half], [strengthen]) and rejects the
    obvious cycles ([rec loop = fn d => loop d]). *)

open Belr_syntax
open Belr_lf

type verdict = Guarded | Issues of string list

(** During the walk we track, innermost first, whether each meta-binder in
    scope was bound by a case branch (a pattern variable). *)
type scope = bool list

let rec head_mvar : Lf.normal -> int option = function
  | Lf.Root (Lf.MVar (u, _), _) -> Some u
  | Lf.Root (_, _) -> None
  | Lf.Lam (_, m) -> head_mvar m

let mobj_pattern_headed (scope : scope) (mo : Meta.mobj) : bool =
  match mo with
  | Meta.MOTerm (_, m) -> (
      match head_mvar m with
      | Some u -> ( match List.nth_opt scope (u - 1) with
                    | Some b -> b
                    | None -> false)
      | None -> false)
  | _ -> false

(** Collect the arguments of an application chain headed by [RecConst f];
    returns [None] when the head is something else. *)
let rec call_args (f : Lf.cid_rec) (e : Comp.exp) (acc : Meta.mobj list) :
    Meta.mobj list option =
  match e with
  | Comp.RecConst g when g = f -> Some acc
  | Comp.App (e1, Comp.Box mo) -> call_args f e1 (mo :: acc)
  | Comp.App (e1, _) -> call_args f e1 acc
  | Comp.MApp (e1, mo) -> call_args f e1 (mo :: acc)
  | _ -> None

let check_body (sg : Sign.t) (f : Lf.cid_rec) (body : Comp.exp) : verdict =
  let issues = ref [] in
  let name = (Sign.rec_entry sg f).Sign.r_name in
  (* [in_chain] marks that the parent node already belongs to an
     application chain whose head will be analyzed at its outermost node *)
  let rec go (scope : scope) ~(in_chain : bool) (e : Comp.exp) : unit =
    (match e with
    | (Comp.App _ | Comp.MApp _) when not in_chain -> (
        match call_args f e [] with
        | Some args ->
            if not (List.exists (mobj_pattern_headed scope) args) then
              issues :=
                Fmt.str
                  "a recursive call to %s passes no boxed argument headed by \
                   a pattern variable"
                  name
                :: !issues
        | None -> ())
    | Comp.RecConst g when g = f && not in_chain ->
        issues :=
          Fmt.str "%s refers to itself without applying it" name :: !issues
    | _ -> ());
    match e with
    | Comp.Var _ | Comp.RecConst _ | Comp.Box _ -> ()
    | Comp.Fn (_, _, e) -> go scope ~in_chain:false e
    | Comp.MLam (_, e) -> go (false :: scope) ~in_chain:false e
    | Comp.App (e1, e2) ->
        go scope ~in_chain:true e1;
        go scope ~in_chain:false e2
    | Comp.MApp (e1, _) -> go scope ~in_chain:true e1
    | Comp.LetBox (_, e1, e2) ->
        go scope ~in_chain:false e1;
        go (false :: scope) ~in_chain:false e2
    | Comp.Case (_, scrut, brs) ->
        go scope ~in_chain:false scrut;
        List.iter
          (fun (b : Comp.branch) ->
            let n0 = List.length b.Comp.br_mctx in
            let scope' = List.init n0 (fun _ -> true) @ scope in
            go scope' ~in_chain:false b.Comp.br_body)
          brs
  in
  go [] ~in_chain:false body;
  match !issues with [] -> Guarded | is -> Issues (List.rev is)

(** Analyze a declared function. *)
let check_rec (sg : Sign.t) (id : Lf.cid_rec) : verdict =
  match (Sign.rec_entry sg id).Sign.r_body with
  | None -> Guarded
  | Some body -> check_body sg id body
