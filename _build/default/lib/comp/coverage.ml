(** A conservative coverage checker for refinement patterns — the paper's
    §6.1 future work ("refinements allow validating the correctness of
    functions containing non-exhaustive pattern matching…a natural next
    step is therefore to develop a coverage…checker").

    The sorting rules deliberately do {e not} require coverage (§4.1);
    this checker is an optional analysis.  It is conservative in the
    usual direction: [check] never accepts an uncovered match, but may
    report a match as uncovered when a cleverer analysis could prove the
    missing cases impossible.

    For a scrutinee of sort [Ψ ⊢ Q] the split candidates are:

    - every constant carrying a sort in [Q]'s family (for [Q = s·sp]) or
      every constructor of the family (for [Q = ⌊a·sp⌋]) — this is where
      refinements shrink the obligation: [pred] on [pos] needs no [z]
      case;
    - a parameter-variable case for every component of every world of the
      context's schema whose target family matches [Q]'s, plus every
      matching projection of a concrete block in [Ψ].

    A candidate is discharged if some branch pattern has the same head, or
    if its result sort {e rigidly clashes} with [Q] (distinct constants in
    the same spine position), which is how the impossible variable cases
    of [aeq-trans]'s inner matches are dismissed. *)

open Belr_syntax
open Belr_lf
open Belr_core
open Lf

type verdict = Covered | Uncovered of string list

(** Rigid head of a normal term, if any. *)
let rec rigid_head (m : normal) : cid_const option =
  match m with
  | Root (Const c, _) -> Some c
  | Lam (_, m) -> rigid_head m
  | _ -> None

(** Do two terms rigidly clash (distinct constant heads)? *)
let clashes (m1 : normal) (m2 : normal) : bool =
  match (rigid_head m1, rigid_head m2) with
  | Some c1, Some c2 -> c1 <> c2
  | _ -> false

let spine_clashes sp1 sp2 =
  List.length sp1 = List.length sp2 && List.exists2 clashes sp1 sp2

(** The result spine of a constant's sort at family [target]. *)
let result_spine (sg : Sign.t) (c : cid_const) ~(target : srt) : spine option =
  let rec target_spine = function
    | SAtom (_, sp) | SEmbed (_, sp) -> sp
    | SPi (_, _, s) -> target_spine s
  in
  match target with
  | SAtom (s_fam, _) -> (
      match Sign.csort sg ~const:c ~family:s_fam with
      | Some (s, _) -> Some (target_spine s)
      | None -> None)
  | SEmbed (_, _) ->
      let rec typ_spine = function
        | Atom (_, sp) -> sp
        | Pi (_, _, b) -> typ_spine b
      in
      Some (typ_spine (Sign.const_entry sg c).Sign.c_typ)
  | SPi _ -> None

(** Candidate constants for an atomic scrutinee sort. *)
let constant_candidates (sg : Sign.t) (q : srt) : cid_const list =
  match q with
  | SAtom (s, _) -> Sign.constants_of_srt sg s
  | SEmbed (a, _) -> Sign.constants_of_typ sg a
  | SPi _ -> []

(** Does sort [s] target the same family as the scrutinee sort [q]
    (reading [q] through its embedding when needed)? *)
let family_matches (sg : Sign.t) (s : srt) (q : srt) : bool =
  let fam_of = function
    | SAtom (sid, _) -> `S sid
    | SEmbed (a, _) -> `T a
    | SPi _ -> `None
  in
  let rec tgt = function SPi (_, _, b) -> tgt b | s -> s in
  match (fam_of (tgt s), fam_of (tgt q)) with
  | `S s1, `S s2 -> s1 = s2
  | `T a1, `T a2 -> a1 = a2
  | `S s1, `T a2 -> (Sign.srt_entry sg s1).Sign.s_refines = a2
  | `T _, `S _ -> false (* an embedded assumption cannot inhabit a proper sort *)
  | _ -> false

(** Variable candidates: projections (world-name, component index) that
    could inhabit the scrutinee sort. *)
let variable_candidates (sg : Sign.t) (omega : Meta.mctx) (psi : Ctxs.sctx)
    (q : srt) : string list =
  let of_selem prefix (f : Ctxs.selem) =
    List.concat
      (List.mapi
         (fun k (_, s) ->
           if family_matches sg s q then
             [ Printf.sprintf "%s#%s.%d" prefix
                 (Belr_support.Name.to_string f.Ctxs.f_name)
                 (k + 1) ]
           else [])
         f.Ctxs.f_block)
  in
  let schema_cands =
    match psi.Ctxs.s_var with
    | None -> []
    | Some i -> (
        match Shift.mctx_lookup_shifted omega i with
        | Some (Meta.MDCtx (_, h)) ->
            let entry = Sign.sschema_entry sg h in
            let elems =
              if psi.Ctxs.s_promoted then
                (Sign.embed_schema sg entry.Sign.h_refines).Ctxs.h_elems
              else entry.Sign.h_elems
            in
            List.concat_map (of_selem "") elems
        | _ -> [])
  in
  let concrete_cands =
    List.concat_map
      (function
        | Ctxs.SCDecl (x, s) ->
            if family_matches sg s q then
              [ Belr_support.Name.to_string x ]
            else []
        | Ctxs.SCBlock (x, f, _) ->
            of_selem (Belr_support.Name.to_string x ^ ":") f)
      psi.Ctxs.s_decls
  in
  schema_cands @ concrete_cands

(** Pattern heads appearing in the branches. *)
type pat_head = Pconst of cid_const | Pproj of int (* projection index *) | Pvar

let branch_head (br : Comp.branch) : pat_head option =
  match br.Comp.br_pat with
  | Meta.MOTerm (_, Root (Const c, _)) -> Some (Pconst c)
  | Meta.MOTerm (_, Root (Proj (_, k), _)) -> Some (Pproj k)
  | Meta.MOTerm (_, Root ((BVar _ | PVar _), _)) -> Some Pvar
  | _ -> None

(** Check that the branches of a case over scrutinee sort [ms] cover the
    candidates.  [omega] is the ambient meta-context. *)
let check (sg : Sign.t) (omega : Meta.mctx) (ms : Meta.msrt)
    (branches : Comp.branch list) : verdict =
  match ms with
  | Meta.MSTerm (psi, q) ->
      let heads = List.filter_map branch_head branches in
      let missing_consts =
        List.filter_map
          (fun c ->
            if List.mem (Pconst c) heads then None
            else
              (* impossibility by rigid clash of the result spine *)
              let q_spine =
                match q with
                | SAtom (_, sp) | SEmbed (_, sp) -> sp
                | SPi _ -> []
              in
              match result_spine sg c ~target:q with
              | Some sp when spine_clashes sp q_spine -> None
              | _ -> Some (Sign.const_entry sg c).Sign.c_name)
          (constant_candidates sg q)
      in
      let var_cands = variable_candidates sg omega psi q in
      let proj_covered k =
        List.exists (function Pproj k' -> k = k' | _ -> false) heads
        || List.mem Pvar heads
      in
      let missing_vars =
        List.filter
          (fun cand ->
            (* candidate strings end in ".k" for projections *)
            match String.rindex_opt cand '.' with
            | Some i -> (
                match
                  int_of_string_opt
                    (String.sub cand (i + 1) (String.length cand - i - 1))
                with
                | Some k -> not (proj_covered k)
                | None -> not (List.mem Pvar heads))
            | None -> not (List.mem Pvar heads))
          var_cands
      in
      (match missing_consts @ missing_vars with
      | [] -> Covered
      | ms -> Uncovered ms)
  | _ -> Covered (* only boxed-term scrutinees are analyzed *)

(** Coverage-check a declared function. *)
let check_rec (sg : Sign.t) (id : cid_rec) : (string list * int) list =
  match (Sign.rec_entry sg id).Sign.r_body with
  | None -> []
  | Some body ->
      (* walk the mlam/fn prefix building Ω from the declared sort *)
      let rec go omega (t : Comp.ctyp) (e : Comp.exp) =
        match (t, e) with
        | Comp.CPi (x, _, ms, t'), Comp.MLam (_, e') ->
            go (Check_comp.mdecl_of_msrt x ms :: omega) t' e'
        | Comp.CArr (_, t'), Comp.Fn (_, _, e') -> go omega t' e'
        | _, _ ->
            let issues = ref [] in
            let rec walk omega (e : Comp.exp) =
              match e with
              | Comp.Var _ | Comp.RecConst _ | Comp.Box _ -> ()
              | Comp.Fn (_, _, e) -> walk omega e
              | Comp.MLam (_, e) -> walk omega e
              | Comp.App (a, b) ->
                  walk omega a;
                  walk omega b
              | Comp.MApp (e, _) -> walk omega e
              | Comp.LetBox (_, a, b) ->
                  walk omega a;
                  walk omega b
              | Comp.Case (inv, scrut, brs) -> (
                  walk omega scrut;
                  List.iter
                    (fun (b : Comp.branch) ->
                      walk (b.Comp.br_mctx @ omega) b.Comp.br_body)
                    brs;
                  match check sg omega inv.Comp.inv_msrt brs with
                  | Covered -> ()
                  | Uncovered missing ->
                      issues := (missing, List.length omega) :: !issues)
            in
            walk omega e;
            !issues
      in
      go [] (Sign.rec_entry sg id).Sign.r_styp body
