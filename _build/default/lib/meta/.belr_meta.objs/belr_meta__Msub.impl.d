lib/meta/msub.ml: Belr_lf Belr_support Belr_syntax Comp Ctxs Error Hsub Lf List Meta Option Shift
