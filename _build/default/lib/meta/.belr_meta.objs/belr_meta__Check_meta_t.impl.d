lib/meta/check_meta_t.ml: Belr_lf Belr_support Belr_syntax Check_lf Ctxs Equal Error Hsub Lf List Meta Msub Shift Sign
