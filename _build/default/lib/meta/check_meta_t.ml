(** Type-level judgments for the contextual layer (§3.2):

    - [Δ ⊢ 𝒜]            contextual type well-formedness ({!wf_mtyp})
    - [Δ ⊢ ℳ : 𝒜]        contextual object typing ({!check_mobj})
    - [⊢ Δ]              meta-context formation ({!wf_mctx})
    - [Δ₁ ⊢ ρ : Δ₂]      meta-substitution typing ({!check_msub})

    These are the targets of the contextual conservativity theorem
    (Thm 3.2.2); the sort-level counterparts live in
    [Belr_core.Check_meta]. *)

open Belr_support
open Belr_syntax
open Belr_lf

(** Structurally erase a context object's annotations: context objects at
    the type level only carry embedded sorts (images of [Erase]). *)
let erased_ctx_of_sctx (psi : Ctxs.sctx) : Ctxs.ctx =
  {
    Ctxs.c_var = psi.Ctxs.s_var;
    Ctxs.c_decls = List.map Msub.structural_erase psi.Ctxs.s_decls;
  }

let hat_matches_ctx (h : Meta.hat) (g : Ctxs.ctx) : bool =
  h.Meta.hat_var = g.Ctxs.c_var
  && List.length h.Meta.hat_names = List.length g.Ctxs.c_decls

let wf_mtyp (e : Check_lf.env) (mt : Meta.mtyp) : unit =
  match mt with
  | Meta.MTTerm (g, a) -> (
      Check_lf.check_ctx e g;
      match a with
      | Lf.Atom _ -> Check_lf.check_typ e g a
      | Lf.Pi _ ->
          Error.raise_msg
            "contextual types carry atomic types only (Γ.P); use a larger \
             context instead")
  | Meta.MTSub (g1, g2) ->
      Check_lf.check_ctx e g1;
      Check_lf.check_ctx e g2
  | Meta.MTCtx _ -> ()
  | Meta.MTParam (g, el, ms) ->
      Check_lf.check_ctx e g;
      Check_lf.check_elem e Ctxs.empty_ctx el;
      Check_lf.check_elem_inst e g el ms

let check_mobj (e : Check_lf.env) (mo : Meta.mobj) (mt : Meta.mtyp) : unit =
  match (mo, mt) with
  | Meta.MOTerm (h, m), Meta.MTTerm (g, a) ->
      if not (hat_matches_ctx h g) then
        Error.raise_msg "contextual object's context does not match its type";
      Check_lf.check_normal e g m a
  | Meta.MOSub (h, s), Meta.MTSub (g1, g2) ->
      if not (hat_matches_ctx h g1) then
        Error.raise_msg "substitution object's context does not match its type";
      Check_lf.check_sub e g1 s g2
  | Meta.MOCtx psi, Meta.MTCtx gcid ->
      Check_lf.check_ctx_schema e (erased_ctx_of_sctx psi) gcid
  | Meta.MOParam (h, hd), Meta.MTParam (g, el, ms) -> (
      if not (hat_matches_ctx h g) then
        Error.raise_msg "parameter object's context does not match its type";
      match hd with
      | Lf.BVar i -> (
          match Ctxs.ctx_lookup g i with
          | Some (Ctxs.CBlock (_, el', ms')) ->
              let el' = Shift.shift_elem i 0 el' in
              let ms' = List.map (Shift.shift_normal i 0) ms' in
              if not (Equal.elem el' el && Equal.spine ms' ms) then
                Error.raise_msg
                  "parameter instantiation has a mismatched world"
          | _ -> Error.raise_msg "parameter instantiation is not a block")
      | Lf.PVar (p, s) -> (
          match Shift.mctx_t_lookup_shifted e.Check_lf.delta p with
          | Some (Meta.TDParam (_, g_p, el_p, ms_p)) ->
              Check_lf.check_sub e g s g_p;
              let el' = Hsub.sub_elem s el_p in
              let ms' = List.map (Hsub.sub_normal s) ms_p in
              if not (Equal.elem el' el && Equal.spine ms' ms) then
                Error.raise_msg
                  "parameter instantiation has a mismatched world"
          | _ -> Error.raise_msg "not a parameter variable")
      | _ ->
          Error.raise_msg
            "parameter instantiation must be a block or parameter variable")
  | _ -> Error.raise_msg "contextual object does not match its contextual type"

(** [⊢ Δ]: check each declaration in its prefix. *)
let wf_mctx (sg : Sign.t) (delta : Meta.mctx_t) : unit =
  let rec go = function
    | [] -> ()
    | d :: rest ->
        go rest;
        let e = Check_lf.make_env sg rest in
        (match d with
        | Meta.TDTerm (_, g, a) -> wf_mtyp e (Meta.MTTerm (g, a))
        | Meta.TDSub (_, g1, g2) -> wf_mtyp e (Meta.MTSub (g1, g2))
        | Meta.TDCtx (_, g) -> wf_mtyp e (Meta.MTCtx g)
        | Meta.TDParam (_, g, el, ms) -> wf_mtyp e (Meta.MTParam (g, el, ms)))
  in
  go delta

let mtyp_of_mdecl_t : Meta.mdecl_t -> Meta.mtyp = function
  | Meta.TDTerm (_, g, a) -> Meta.MTTerm (g, a)
  | Meta.TDSub (_, g1, g2) -> Meta.MTSub (g1, g2)
  | Meta.TDCtx (_, g) -> Meta.MTCtx g
  | Meta.TDParam (_, g, el, ms) -> Meta.MTParam (g, el, ms)

(** [Δ₁ ⊢ ρ : Δ₂]. *)
let rec check_msub (e : Check_lf.env) (rho : Meta.msub) (delta2 : Meta.mctx_t)
    : unit =
  match (rho, delta2) with
  | Meta.MShift n, _ ->
      let rec drop n l =
        if n = 0 then l
        else
          match l with
          | _ :: tl -> drop (n - 1) tl
          | [] -> Error.raise_msg "meta-shift out of range"
      in
      let remaining = drop n e.Check_lf.delta in
      if List.length remaining <> List.length delta2 then
        Error.raise_msg "meta-shift does not match the expected meta-context"
  | Meta.MDot (o, rho'), d :: rest ->
      check_msub e rho' rest;
      check_mobj e o (Msub.mtyp 0 rho' (mtyp_of_mdecl_t d))
  | Meta.MDot _, [] ->
      Error.raise_msg "meta-substitution is longer than its domain"
