lib/lf/check_lf.ml: Belr_support Belr_syntax Ctxops Ctxs Equal Error Hsub Lf List Meta Pp Shift Sign
