lib/lf/ctxops.ml: Belr_support Belr_syntax Ctxs Error Hsub Lf List Shift
