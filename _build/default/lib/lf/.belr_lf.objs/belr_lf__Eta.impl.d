lib/lf/eta.ml: Belr_syntax Equal Lf List Shift
