lib/lf/hsub.ml: Belr_support Belr_syntax Ctxs Error Lf List
