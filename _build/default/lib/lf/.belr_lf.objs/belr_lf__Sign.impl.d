lib/lf/sign.ml: Belr_support Belr_syntax Comp Ctxs Embed Error Hashtbl Lf Pp
