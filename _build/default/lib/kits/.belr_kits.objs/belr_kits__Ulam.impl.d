lib/kits/ulam.ml: Belr_lf Belr_syntax Ctxs Lf Shift Sign
