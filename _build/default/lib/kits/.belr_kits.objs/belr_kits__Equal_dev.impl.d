lib/kits/equal_dev.ml: Belr_core Belr_lf Belr_syntax Check_comp Comp Ctxs Embed_t Erase Lf List Meta Sign Ulam
