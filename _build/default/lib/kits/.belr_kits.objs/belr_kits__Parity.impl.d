lib/kits/parity.ml: Belr_lf Belr_parser
