lib/kits/values.ml: Belr_lf Belr_parser
