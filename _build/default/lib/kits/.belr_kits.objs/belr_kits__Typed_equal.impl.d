lib/kits/typed_equal.ml: Belr_lf Belr_parser
