lib/kits/conventional.ml: Belr_core Belr_lf Belr_syntax Check_comp Comp Ctxs Embed Embed_t Erase Lf List Meta Shift Sign
