lib/kits/surface.ml: Belr_lf Belr_parser
