lib/kits/stats.ml: Belr_lf Belr_syntax Comp Ctxs Fmt Hashtbl Lf List Meta Sign String
