(** Embedding of the type level back into the refinement level.

    The paper observes (§3.1.1, §3.2) that type-level judgments are
    exactly the unified judgments restricted to embedded sorts: an
    embedded subject never mentions a proper sort, so checking it never
    consults a sort assignment.  We exploit this to obtain the
    "conventional Beluga" computation-level type checker from the unified
    one: erase a program ({!Erase}), embed the result ({!Embed_t}), and
    check it — the run is a type-level derivation by construction.
    (The LF and contextual layers additionally have hand-written
    independent type-level checkers in [Belr_lf.Check_lf] and
    [Belr_meta.Check_meta_t], exercised by the conservativity tests.) *)

open Belr_syntax
open Belr_lf

let mtyp (sg : Sign.t) : Meta.mtyp -> Meta.msrt = function
  | Meta.MTTerm (g, a) -> Meta.MSTerm (Embed.ctx g, Embed.typ a)
  | Meta.MTSub (g1, g2) -> Meta.MSSub (Embed.ctx g1, Embed.ctx g2)
  | Meta.MTCtx g -> Meta.MSCtx (Sign.schema_entry sg g).Sign.g_trivial
  | Meta.MTParam (g, e, ms) ->
      Meta.MSParam (Embed.ctx g, Embed.elem ~refines:0 e, ms)

let mdecl_t (sg : Sign.t) : Meta.mdecl_t -> Meta.mdecl = function
  | Meta.TDTerm (n, g, a) -> Meta.MDTerm (n, Embed.ctx g, Embed.typ a)
  | Meta.TDSub (n, g1, g2) -> Meta.MDSub (n, Embed.ctx g1, Embed.ctx g2)
  | Meta.TDCtx (n, g) -> Meta.MDCtx (n, (Sign.schema_entry sg g).Sign.g_trivial)
  | Meta.TDParam (n, g, e, ms) ->
      Meta.MDParam (n, Embed.ctx g, Embed.elem ~refines:0 e, ms)

let mctx_t (sg : Sign.t) (delta : Meta.mctx_t) : Meta.mctx =
  List.map (mdecl_t sg) delta

let rec ctyp_t (sg : Sign.t) : Comp.ctyp_t -> Comp.ctyp = function
  | Comp.TBox mt -> Comp.CBox (mtyp sg mt)
  | Comp.TArr (t1, t2) -> Comp.CArr (ctyp_t sg t1, ctyp_t sg t2)
  | Comp.TPi (x, imp, mt, t) -> Comp.CPi (x, imp, mtyp sg mt, ctyp_t sg t)

let rec exp_t (sg : Sign.t) : Comp.exp_t -> Comp.exp = function
  | Comp.TVar i -> Comp.Var i
  | Comp.TRecConst r -> Comp.RecConst r
  | Comp.TBoxE mo -> Comp.Box mo
  | Comp.TFn (x, t, e) -> Comp.Fn (x, Option.map (ctyp_t sg) t, exp_t sg e)
  | Comp.TApp (e1, e2) -> Comp.App (exp_t sg e1, exp_t sg e2)
  | Comp.TMLam (x, e) -> Comp.MLam (x, exp_t sg e)
  | Comp.TMApp (e, mo) -> Comp.MApp (exp_t sg e, mo)
  | Comp.TLetBox (x, e1, e2) -> Comp.LetBox (x, exp_t sg e1, exp_t sg e2)
  | Comp.TCase (inv, e, brs) ->
      Comp.Case (inv_t sg inv, exp_t sg e, List.map (branch_t sg) brs)

and inv_t (sg : Sign.t) (i : Comp.inv_t) : Comp.inv =
  {
    Comp.inv_mctx = mctx_t sg i.Comp.tinv_mctx;
    Comp.inv_name = i.Comp.tinv_name;
    Comp.inv_msrt = mtyp sg i.Comp.tinv_mtyp;
    Comp.inv_body = ctyp_t sg i.Comp.tinv_body;
  }

and branch_t (sg : Sign.t) (b : Comp.branch_t) : Comp.branch =
  {
    Comp.br_mctx = mctx_t sg b.Comp.tbr_mctx;
    Comp.br_pat = b.Comp.tbr_pat;
    Comp.br_body = exp_t sg b.Comp.tbr_body;
  }

let cctx_t (sg : Sign.t) (phi : Comp.cctx_t) : Comp.cctx =
  List.map (fun (x, t) -> (x, ctyp_t sg t)) phi

(** Type-level computation checking [Δ; Ξ ⊢ e : τ], as the embedded
    fragment of the unified checker. *)
let check_exp_t (sg : Sign.t) (delta : Meta.mctx_t) (xi : Comp.cctx_t)
    (e : Comp.exp_t) (tau : Comp.ctyp_t) : unit =
  (* in the type-level run, references to declared functions must carry
     their (embedded) erased types, not their sorts *)
  let recs =
    List.map
      (fun (id, (re : Sign.rec_entry)) -> (id, ctyp_t sg re.Sign.r_typ))
      (Sign.all_recs sg)
  in
  let env = Check_comp.make_env ~recs sg (mctx_t sg delta) (cctx_t sg xi) in
  Check_comp.check_exp env (exp_t sg e) (ctyp_t sg tau)
