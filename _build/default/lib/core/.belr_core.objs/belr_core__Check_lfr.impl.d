lib/core/check_lfr.ml: Belr_lf Belr_support Belr_syntax Check_lf Ctxs Embed Equal Erase Error Hsub Lf List Meta Pp Sctxops Shift Sign
