lib/core/erase.ml: Belr_lf Belr_syntax Comp Ctxs Embed Lf List Meta Option Sign
