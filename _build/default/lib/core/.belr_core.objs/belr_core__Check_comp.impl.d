lib/core/check_comp.ml: Belr_lf Belr_meta Belr_support Belr_syntax Belr_unify Check_lfr Check_meta Comp Ctxs Equal Error Lf List Meta Msub Name Pp Shift Sign Unify
