lib/core/check_meta.ml: Belr_lf Belr_meta Belr_support Belr_syntax Check_lfr Ctxs Equal Erase Error Hsub Lf List Meta Shift Sign
