lib/core/embed_t.ml: Belr_lf Belr_syntax Check_comp Comp Embed List Meta Option Sign
