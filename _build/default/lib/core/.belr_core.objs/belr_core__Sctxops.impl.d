lib/core/sctxops.ml: Belr_lf Belr_support Belr_syntax Ctxs Embed Equal Erase Error Hsub Lf List Shift Sign
