(** Sort-level (unified) judgments for the contextual layer (§3.2):

    - [(Ω ⊢ 𝒮) ⊑ (Δ ⊢ 𝒜)]       contextual sort wf, type as output ({!wf_msrt})
    - [(Ω ⊢ 𝒩 : 𝒮) ⊑ (Δ ⊢ ℳ:𝒜)] contextual sorting ({!check_mobj})
    - [⊢ Ω ⊑ Δ]                  meta-context formation ({!wf_mctx})
    - [(Ω₁ ⊢ θ : Ω₂) ⊑ …]        meta-substitution sorting ({!check_msub})

    As at the data level, the type-level output is [Erase.*] of the
    subject, so the functions return the erased image (or unit). *)

open Belr_support
open Belr_syntax
open Belr_lf

let hat_matches_sctx (h : Meta.hat) (psi : Ctxs.sctx) : bool =
  h.Meta.hat_var = psi.Ctxs.s_var
  && List.length h.Meta.hat_names = List.length psi.Ctxs.s_decls

let is_atomic = function Lf.SAtom _ | Lf.SEmbed _ -> true | Lf.SPi _ -> false

let wf_msrt (e : Check_lfr.env) (ms : Meta.msrt) : Meta.mtyp =
  match ms with
  | Meta.MSTerm (psi, q) ->
      let g = Check_lfr.wf_sctx e psi in
      if not (is_atomic q) then
        Error.raise_msg
          "contextual sorts carry atomic sorts only (Ψ.Q); use a larger \
           context instead";
      let a = Check_lfr.wf_srt e psi q in
      Meta.MTTerm (g, a)
  | Meta.MSSub (psi1, psi2) ->
      let g1 = Check_lfr.wf_sctx e psi1 in
      let g2 = Check_lfr.wf_sctx e psi2 in
      Meta.MTSub (g1, g2)
  | Meta.MSCtx h ->
      Meta.MTCtx (Sign.sschema_entry e.Check_lfr.sg h).Sign.h_refines
  | Meta.MSParam (psi, f, ms') ->
      let g = Check_lfr.wf_sctx e psi in
      let el = Check_lfr.wf_selem e Ctxs.empty_sctx f in
      Check_lfr.check_selem_inst e psi f ms';
      Meta.MTParam (g, el, ms')

let check_mobj (e : Check_lfr.env) (mo : Meta.mobj) (ms : Meta.msrt) : unit =
  match (mo, ms) with
  | Meta.MOTerm (h, m), Meta.MSTerm (psi, q) ->
      if not (hat_matches_sctx h psi) then
        Error.raise_msg "contextual object's context does not match its sort";
      ignore (Check_lfr.check_normal e psi m q)
  | Meta.MOSub (h, s), Meta.MSSub (psi1, psi2) ->
      if not (hat_matches_sctx h psi1) then
        Error.raise_msg "substitution object's context does not match its sort";
      Check_lfr.check_sub e psi1 s psi2
  | Meta.MOCtx psi, Meta.MSCtx hcid -> Check_lfr.check_sctx_schema e psi hcid
  | Meta.MOParam (h, hd), Meta.MSParam (psi, f, ms') -> (
      if not (hat_matches_sctx h psi) then
        Error.raise_msg "parameter object's context does not match its sort";
      match hd with
      | Lf.BVar i -> (
          match Ctxs.sctx_lookup psi i with
          | Some (Ctxs.SCBlock (_, f', ms'')) ->
              let f' = Shift.shift_selem i 0 f' in
              let ms'' = List.map (Shift.shift_normal i 0) ms'' in
              if not (Equal.selem f' f && Equal.spine ms'' ms') then
                Error.raise_msg
                  "parameter instantiation has a mismatched world"
          | _ -> Error.raise_msg "parameter instantiation is not a block")
      | Lf.PVar (p, s) ->
          let psi_p, f_p, ms_p = Check_lfr.pvar_decl e p in
          Check_lfr.check_sub e psi s psi_p;
          let f' = Hsub.sub_selem s f_p in
          let ms'' = List.map (Hsub.sub_normal s) ms_p in
          if not (Equal.selem f' f && Equal.spine ms'' ms') then
            Error.raise_msg "parameter instantiation has a mismatched world"
      | _ ->
          Error.raise_msg
            "parameter instantiation must be a block or parameter variable")
  | _ -> Error.raise_msg "contextual object does not match its contextual sort"

(** [⊢ Ω ⊑ Δ]: check each declaration in its prefix; returns the erased
    meta-context Δ. *)
let wf_mctx (sg : Sign.t) (omega : Meta.mctx) : Meta.mctx_t =
  let rec go = function
    | [] -> ()
    | d :: rest ->
        go rest;
        let e = Check_lfr.make_env sg rest in
        ignore
          (wf_msrt e
             (match d with
             | Meta.MDTerm (_, psi, q) -> Meta.MSTerm (psi, q)
             | Meta.MDSub (_, p1, p2) -> Meta.MSSub (p1, p2)
             | Meta.MDCtx (_, h) -> Meta.MSCtx h
             | Meta.MDParam (_, psi, f, ms) -> Meta.MSParam (psi, f, ms)))
  in
  go omega;
  Erase.mctx sg omega

let msrt_of_mdecl : Meta.mdecl -> Meta.msrt = function
  | Meta.MDTerm (_, psi, q) -> Meta.MSTerm (psi, q)
  | Meta.MDSub (_, p1, p2) -> Meta.MSSub (p1, p2)
  | Meta.MDCtx (_, h) -> Meta.MSCtx h
  | Meta.MDParam (_, psi, f, ms) -> Meta.MSParam (psi, f, ms)

(** [(Ω₁ ⊢ θ : Ω₂)]. *)
let rec check_msub (e : Check_lfr.env) (theta : Meta.msub)
    (omega2 : Meta.mctx) : unit =
  match (theta, omega2) with
  | Meta.MShift n, _ ->
      let rec drop n l =
        if n = 0 then l
        else
          match l with
          | _ :: tl -> drop (n - 1) tl
          | [] -> Error.raise_msg "meta-shift out of range"
      in
      let remaining = drop n e.Check_lfr.omega in
      if List.length remaining <> List.length omega2 then
        Error.raise_msg "meta-shift does not match the expected meta-context"
  | Meta.MDot (o, theta'), d :: rest ->
      check_msub e theta' rest;
      check_mobj e o (Belr_meta.Msub.msrt 0 theta' (msrt_of_mdecl d))
  | Meta.MDot _, [] ->
      Error.raise_msg "meta-substitution is longer than its domain"
