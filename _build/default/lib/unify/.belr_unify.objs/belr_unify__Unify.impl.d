lib/unify/unify.ml: Array Belr_lf Belr_meta Belr_support Belr_syntax Ctxs Equal Error Format Hashtbl Lf List Meta Msub Shift Sign
