lib/support/name.ml: Fmt List String
