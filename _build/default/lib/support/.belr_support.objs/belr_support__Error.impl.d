lib/support/error.ml: Fmt Format Loc Printexc
