(** Source locations.

    A {!t} is a half-open span in a named source (a file or a synthetic
    buffer).  Locations are carried by the external syntax and by errors;
    the internal syntax is location-free. *)

type pos = {
  line : int;  (** 1-based line number *)
  col : int;  (** 0-based column *)
  offset : int;  (** 0-based byte offset *)
}

type t = { source : string; start_pos : pos; end_pos : pos }

let initial_pos = { line = 1; col = 0; offset = 0 }

(** A location standing for "no position available" (synthetic nodes). *)
let ghost =
  { source = "<ghost>"; start_pos = initial_pos; end_pos = initial_pos }

let is_ghost l = l.source = "<ghost>"

let make ~source ~start_pos ~end_pos = { source; start_pos; end_pos }

(** [span a b] covers from the start of [a] to the end of [b]. *)
let span a b =
  if is_ghost a then b
  else if is_ghost b then a
  else { a with end_pos = b.end_pos }

let pp ppf l =
  if is_ghost l then Fmt.string ppf "<no location>"
  else if l.start_pos.line = l.end_pos.line then
    Fmt.pf ppf "%s:%d.%d-%d" l.source l.start_pos.line l.start_pos.col
      l.end_pos.col
  else
    Fmt.pf ppf "%s:%d.%d-%d.%d" l.source l.start_pos.line l.start_pos.col
      l.end_pos.line l.end_pos.col

let to_string l = Fmt.str "%a" pp l
