(** Error reporting.

    All user-facing failures in the checker, elaborator, and evaluator are
    raised as {!Belr_error} carrying an optional location and a rendered
    message.  Internal invariant violations use {!violation} instead, which
    marks a bug in belr rather than in user input. *)

exception Belr_error of Loc.t * string

exception Violation of string

(** Raise a user-facing error at location [loc]. *)
let raise_at : 'a. Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a =
 fun loc fmt -> Format.kasprintf (fun s -> raise (Belr_error (loc, s))) fmt

(** Raise a user-facing error with no location. *)
let raise_msg fmt = raise_at Loc.ghost fmt

(** Report a broken internal invariant (a belr bug, not a user error). *)
let violation : 'a. ('a, Format.formatter, unit, 'b) format4 -> 'a =
 fun fmt -> Format.kasprintf (fun s -> raise (Violation s)) fmt

let pp ppf = function
  | Belr_error (loc, msg) when Loc.is_ghost loc -> Fmt.pf ppf "error: %s" msg
  | Belr_error (loc, msg) -> Fmt.pf ppf "%a: error: %s" Loc.pp loc msg
  | Violation msg -> Fmt.pf ppf "internal violation (belr bug): %s" msg
  | exn -> Fmt.pf ppf "exception: %s" (Printexc.to_string exn)

(** Run [f ()], turning belr exceptions into [Error rendered_message]. *)
let protect f =
  match f () with
  | v -> Ok v
  | exception ((Belr_error _ | Violation _) as e) -> Error (Fmt.str "%a" pp e)
