(** Name hints.

    The internal syntax is de Bruijn; binders carry a [Name.t] purely as a
    printing hint.  [fresh_for] renames a hint away from a set of names that
    are already visible, appending or bumping a numeric suffix. *)

type t = string

let of_string s : t = s

let to_string (n : t) = n

(** Split a trailing decimal suffix: ["x12"] -> ("x", Some 12). *)
let split_suffix (n : t) =
  let len = String.length n in
  let rec go i =
    if i > 0 && n.[i - 1] >= '0' && n.[i - 1] <= '9' then go (i - 1) else i
  in
  let cut = go len in
  if cut = len || cut = 0 then (n, None)
  else (String.sub n 0 cut, Some (int_of_string (String.sub n cut (len - cut))))

(** [fresh_for used hint] returns [hint] if unused, otherwise the first
    [base ^ k] not in [used]. *)
let fresh_for (used : t list) (hint : t) : t =
  let hint = if hint = "" || hint = "_" then "x" else hint in
  if not (List.mem hint used) then hint
  else
    let base, start = split_suffix hint in
    let rec go k =
      let cand = base ^ string_of_int k in
      if List.mem cand used then go (k + 1) else cand
    in
    go (match start with Some k -> k + 1 | None -> 1)

let pp = Fmt.string
