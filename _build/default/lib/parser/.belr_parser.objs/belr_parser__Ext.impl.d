lib/parser/ext.ml: Belr_support Loc
