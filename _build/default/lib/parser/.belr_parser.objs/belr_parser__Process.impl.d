lib/parser/process.ml: Belr_core Belr_lf Belr_support Belr_syntax Check_comp Check_lf Check_lfr Ctxs Elab Embed Embed_t Erase Error Ext Lf List Loc Name Parse Sign
