lib/parser/token.ml: Printf
