lib/parser/lexer.ml: Belr_support Buffer Error List Loc String Token
