lib/parser/parse.ml: Array Belr_support Error Ext Format Lexer List Token
