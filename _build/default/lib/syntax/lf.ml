(** Internal syntax of the LF(R) data level.

    The presentation follows the paper's canonical-forms discipline
    (Watkins et al.): terms are separated into neutral and normal forms, no
    β-redex is representable after hereditary substitution, and well-typed
    terms are kept η-long.  Variables are de Bruijn indices (1-based,
    innermost = 1); binders carry a {!Belr_support.Name.t} hint used only
    for printing.

    Sorts live alongside types: a sort [S] refines a type [A] ([S ⊑ A]).
    Terms are shared between the type level and the refinement level, as in
    the paper ("terms ... are the same at both levels since they do not
    contain any type information to refine"). *)

open Belr_support

(** Identifiers into the global signature (see {!Belr_lf.Sign}). *)
type cid_typ = int
(** Atomic type family [a]. *)

type cid_srt = int
(** Atomic sort family [s ⊑ a]. *)

type cid_const = int
(** Term-level constant [c]. *)

type cid_schema = int
(** Type-level context schema [G]. *)

type cid_sschema = int
(** Refinement (sort-level) context schema [H ⊑ G]. *)

type cid_rec = int
(** Computation-level (recursive) function. *)

(** Heads of neutral terms.

    [Proj] bases are restricted to [BVar] and [PVar] by the checker.
    [MVar (u, σ)] is a contextual meta-variable under a delayed
    substitution; [PVar (p, σ)] is a parameter variable standing for a
    block declared in a context variable (written [#b] in the paper's
    examples).  Both indices point into the meta-context [Ω]. *)
type head =
  | Const of cid_const
  | BVar of int
  | PVar of int * sub
  | Proj of head * int  (** [h.k], 1-based projection out of a block *)
  | MVar of int * sub

and normal =
  | Lam of Name.t * normal
  | Root of head * spine

and spine = normal list

(** Substitution entries.  [Tup] replaces a block variable with an n-ary
    tuple of terms, resolving projections hereditarily ([⟦M⃗/b⟧(b.k) = M_k],
    §3.1.3).  [Undef] only appears inside the unifier (pruning and
    inversion); checked substitutions never contain it. *)
and front = Obj of normal | Tup of tuple | Undef

and tuple = normal list

(** Simultaneous substitutions.

    - [Empty] is the paper's [·]: it weakens a closed object into an
      arbitrary context.
    - [Shift n] maps index [i] to [i + n]; [Shift 0] is the identity, in
      particular [id_ψ] on a context rooted at a context variable.
    - [Dot (f, σ)] sends index 1 to [f] and the rest through [σ]. *)
and sub = Empty | Shift of int | Dot of front * sub

let id : sub = Shift 0

(** Canonical type families [A ::= P | Πx:A₁.A₂] with atomic families
    applied to spines. *)
type typ = Atom of cid_typ * spine | Pi of Name.t * typ * typ

(** Kinds [K ::= type | Πx:A.K]. *)
type kind = Ktype | Kpi of Name.t * typ * kind

(** Canonical sort families [S ::= Q | Πx:S₁.S₂].

    [SEmbed (a, sp)] is the explicit embedding [⌊a · sp⌋] of an atomic type
    into the sorts refining it; the paper uses this in place of an
    ambiguous ⊤ sort so that every sort determines its refined type. *)
type srt =
  | SAtom of cid_srt * spine
  | SEmbed of cid_typ * spine
  | SPi of Name.t * srt * srt

(** Refinement kinds [L ::= sort | Πx:S.L], refining kinds [K]. *)
type skind = Ksort | Kspi of Name.t * srt * skind

(* ------------------------------------------------------------------ *)
(* Small helpers used throughout.                                      *)

(** η-short variable occurrence; use {!Belr_lf.Eta} for η-long forms. *)
let bvar i : normal = Root (BVar i, [])

let const c spine : normal = Root (Const c, spine)

(** [dot1 σ] extends [σ] under one binder: [1.σ∘↑] for ordinary
    variables.  Correct only when index 1 needs no η-expansion at its use
    sites (e.g. the binder has atomic type) — the checkers use the η-aware
    version in [Belr_lf.Hsub.dot1]. *)
let dot_obj m sigma = Dot (Obj m, sigma)

let app_spine (m : normal) (extra : spine) : normal =
  match (m, extra) with
  | _, [] -> m
  | Root (h, sp), _ -> Root (h, sp @ extra)
  | Lam _, _ ->
      (* The caller must use hereditary substitution to reduce.  Reaching
         this case means a redex was about to be built. *)
      Error.violation "app_spine: attempt to apply a Lam without reduction"

(** Target head of a canonical type: [target (Πx̄. a·S) = a]. *)
let rec typ_target = function Atom (a, _) -> a | Pi (_, _, b) -> typ_target b

(** Target of a canonical sort, [None] when the target is an embedding. *)
let rec srt_target = function
  | SAtom (s, _) -> Some s
  | SEmbed _ -> None
  | SPi (_, _, s) -> srt_target s

let rec kind_arity = function Ktype -> 0 | Kpi (_, _, k) -> 1 + kind_arity k

let rec skind_arity = function Ksort -> 0 | Kspi (_, _, l) -> 1 + skind_arity l

let rec typ_arity = function Atom _ -> 0 | Pi (_, _, b) -> 1 + typ_arity b

let rec srt_arity = function
  | SAtom _ | SEmbed _ -> 0
  | SPi (_, _, b) -> 1 + srt_arity b
