lib/syntax/equal.ml: Comp Ctxs Lf List Meta
