lib/syntax/embed.ml: Ctxs Lf List
