lib/syntax/ctxs.ml: Belr_support Lf List Name
