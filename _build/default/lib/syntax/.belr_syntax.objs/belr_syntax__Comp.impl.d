lib/syntax/comp.ml: Belr_support Lf Meta Name
