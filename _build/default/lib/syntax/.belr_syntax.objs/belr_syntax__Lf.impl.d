lib/syntax/lf.ml: Belr_support Error Name
