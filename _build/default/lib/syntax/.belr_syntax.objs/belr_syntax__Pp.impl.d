lib/syntax/pp.ml: Belr_support Comp Ctxs Fmt Lf List Meta Name String
