lib/syntax/meta.ml: Belr_support Ctxs Lf List Name
