lib/syntax/shift.ml: Comp Ctxs Lf List Meta Option
