(** Blocks, schema elements, schemas, and LF(R) contexts — both the type
    level ([B], [E], [G], [Γ]) and the refinement level ([C], [F], [H],
    [Ψ]) of §3.1.2.

    Conventions:
    - A block [Σx₁:A₁. … Σxₙ:Aₙ. ·] is a list with the {e first} component
      first; within the block, [Aₖ] may refer to [x₁ … xₖ₋₁] by de Bruijn
      index (1 = the immediately preceding component).
    - A schema element [Πy₁:A₁'. … B] stores its parameters the same way.
    - Context declarations are stored {e innermost first}, so de Bruijn
      index [i] is the [i]-th element of [*_decls].
    - A context entry for a block variable is a schema element applied to
      explicit instantiations ([b : E·M⃗]); the paper requires the
      instantiation to be explicit precisely so that schema checking does
      not need unification. *)

open Belr_support

type block = (Name.t * Lf.typ) list

type sblock = (Name.t * Lf.srt) list

type elem = {
  e_name : Name.t;  (** world name, e.g. [xeW] *)
  e_params : (Name.t * Lf.typ) list;
  e_block : block;
}

type selem = {
  f_name : Name.t;  (** world name; matches the refined world's name *)
  f_refines : int;  (** index (0-based) of the refined world in the schema [G] *)
  f_params : (Name.t * Lf.srt) list;
  f_block : sblock;
}

type schema = elem list

type sschema = { h_refines : Lf.cid_schema; h_elems : selem list }

(** Type-level context entries. *)
type centry =
  | CDecl of Name.t * Lf.typ  (** [x : A] *)
  | CBlock of Name.t * elem * Lf.normal list  (** [b : E·M⃗] *)

(** Type-level contexts [Γ ::= · | ψ | Γ,x:A | Γ,b:E·M⃗].  The context
    variable, when present, sits below every declaration and refers to the
    meta-context. *)
type ctx = { c_var : int option; c_decls : centry list }

(** Refinement-level context entries. *)
type scentry =
  | SCDecl of Name.t * Lf.srt  (** [x : S] *)
  | SCBlock of Name.t * selem * Lf.normal list  (** [b : F·M⃗] *)

(** Refinement-level contexts [Ψ].

    [s_promoted] implements the paper's [Ψ⊤]: when set, the context is to
    be {e interpreted} at the type level — looking up a block variable
    yields the embedded world of the refined schema [G] rather than the
    refined world of [H] (this is the variable case of [ceq] in §2). *)
type sctx = { s_var : int option; s_promoted : bool; s_decls : scentry list }

let empty_ctx = { c_var = None; c_decls = [] }

let empty_sctx = { s_var = None; s_promoted = false; s_decls = [] }

let ctx_length (g : ctx) = List.length g.c_decls

let sctx_length (psi : sctx) = List.length psi.s_decls

let ctx_push (g : ctx) (e : centry) = { g with c_decls = e :: g.c_decls }

let sctx_push (psi : sctx) (e : scentry) =
  { psi with s_decls = e :: psi.s_decls }

(** [ctx_lookup g i] returns the [i]-th entry (1-based, innermost = 1). *)
let ctx_lookup (g : ctx) (i : int) : centry option = List.nth_opt g.c_decls (i - 1)

let sctx_lookup (psi : sctx) (i : int) : scentry option =
  List.nth_opt psi.s_decls (i - 1)

(** Promotion [Ψ⊤] (§2): marks a context to be read through the refinement
    relation at the type-level schema. *)
let promote (psi : sctx) : sctx = { psi with s_promoted = true }

let centry_name = function CDecl (n, _) -> n | CBlock (n, _, _) -> n

let scentry_name = function SCDecl (n, _) -> n | SCBlock (n, _, _) -> n

let ctx_names (g : ctx) = List.map centry_name g.c_decls

let sctx_names (psi : sctx) = List.map scentry_name psi.s_decls
