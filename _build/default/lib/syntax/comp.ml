(** Computation-level syntax (§4).

    As at the other levels, the refinement layer ([ζ], [f]) and the type
    layer ([τ], [e]) are separate ASTs related by erasure.  Comp-level
    variables are de Bruijn indices into [Φ]/[Ξ] (innermost = 1);
    references to top-level recursive functions are signature ids.

    The paper's [caseᶻ [𝒩] of c⃗] is generalized (as in Beluga) to allow
    any expression of box sort as scrutinee; checking specializes when the
    scrutinee is literally a box.  The case invariant
    [ζ = ΠΩ₀. ΠX₀:𝒮₀. ζ₀] is kept in structured form. *)

open Belr_support

(** Refinement-level computation types
    [ζ ::= \[𝒮\] | ζ₁ → ζ₂ | ΠX:𝒮.ζ]. *)
type ctyp =
  | CBox of Meta.msrt
  | CArr of ctyp * ctyp
  | CPi of Name.t * bool * Meta.msrt * ctyp
      (** the [bool] marks an implicit quantifier (surface [(Ψ : H)]) *)

(** Type-level computation types [τ]. *)
type ctyp_t =
  | TBox of Meta.mtyp
  | TArr of ctyp_t * ctyp_t
  | TPi of Name.t * bool * Meta.mtyp * ctyp_t

(** Case invariants [ΠΩ₀. ΠX₀:𝒮₀. ζ₀]. *)
type inv = {
  inv_mctx : Meta.mctx;
  inv_name : Name.t;
  inv_msrt : Meta.msrt;
  inv_body : ctyp;
}

type exp =
  | Var of int  (** comp variable (de Bruijn into Φ) *)
  | RecConst of Lf.cid_rec  (** top-level (recursive) function *)
  | Box of Meta.mobj  (** [⟦𝒩⟧] *)
  | Fn of Name.t * ctyp option * exp  (** [fn y:ζ ⇒ f] *)
  | App of exp * exp
  | MLam of Name.t * exp  (** [mlam X ⇒ f] *)
  | MApp of exp * Meta.mobj  (** [f 𝒩] *)
  | LetBox of Name.t * exp * exp  (** [let \[X\] = f₁ in f₂] *)
  | Case of inv * exp * branch list

and branch = { br_mctx : Meta.mctx; br_pat : Meta.mobj; br_body : exp }

(** Type-level mirror. *)
type inv_t = {
  tinv_mctx : Meta.mctx_t;
  tinv_name : Name.t;
  tinv_mtyp : Meta.mtyp;
  tinv_body : ctyp_t;
}

type exp_t =
  | TVar of int
  | TRecConst of Lf.cid_rec
  | TBoxE of Meta.mobj
  | TFn of Name.t * ctyp_t option * exp_t
  | TApp of exp_t * exp_t
  | TMLam of Name.t * exp_t
  | TMApp of exp_t * Meta.mobj
  | TLetBox of Name.t * exp_t * exp_t
  | TCase of inv_t * exp_t * branch_t list

and branch_t = { tbr_mctx : Meta.mctx_t; tbr_pat : Meta.mobj; tbr_body : exp_t }

(** Comp-level contexts [Φ]/[Ξ], innermost first. *)
type cctx = (Name.t * ctyp) list

type cctx_t = (Name.t * ctyp_t) list

let rec ctyp_arity = function
  | CBox _ -> 0
  | CArr (_, t) -> 1 + ctyp_arity t
  | CPi (_, _, _, t) -> 1 + ctyp_arity t

(** Number of leading implicit [Π]s of a comp sort. *)
let rec ctyp_implicits = function
  | CPi (_, true, _, t) -> 1 + ctyp_implicits t
  | _ -> 0
