(** The conventional (refinement-free) baseline, and the E1 comparison.

    Loads both mechanizations of the §2 benchmark — the refinement
    solution and the conventional joint-context solution — and prints the
    proof-size comparison that reproduces the paper's qualitative claim:
    the refinement solution is smaller on every axis and gets soundness
    for free.

    Run with: [dune exec examples/conventional_baseline.exe] *)

open Belr_kits

let () =
  Fmt.pr "=== E1: refinement vs conventional mechanization ===@.@.";
  let refin_sg = Surface.load () in
  let conv = Conventional.make () in
  Fmt.pr "both developments checked (and their erasures re-checked).@.@.";
  let refin_stats =
    Stats.dev_stats ~name:"refinement" refin_sg ~block_width:2
      [ "aeq-refl"; "aeq-sym"; "aeq-trans"; "ceq" ]
  in
  let conv_stats =
    Stats.dev_stats ~name:"conventional" conv.Conventional.sg ~block_width:3
      [ "aeq-refl"; "aeq-sym"; "aeq-trans"; "ceq"; "sound" ]
  in
  Stats.pp_comparison Fmt.stdout refin_stats conv_stats;
  Fmt.pr "@.observations (the paper's §2 claims, measured):@.";
  Fmt.pr "- the conventional development duplicates the congruence rules@.";
  Fmt.pr "  (separate aeq family) instead of reusing them via a refinement;@.";
  Fmt.pr "- its context blocks carry one extra assumption everywhere;@.";
  Fmt.pr "- its object-logic lam rules are polluted by an extra hypothesis@.";
  Fmt.pr "  (the joint-context device), and soundness needs a real induction@.";
  Fmt.pr "  — with aeq ⊑ deq it is definitional.@."
