examples/aeq_deq.ml: Belr_comp Belr_core Belr_kits Belr_lf Belr_parser Belr_support Belr_syntax Check_lfr Comp Ctxs Error Eval Fmt Lf List Meta Pp Sctxops Sign Surface
