examples/values.mli:
