examples/aeq_deq.mli:
