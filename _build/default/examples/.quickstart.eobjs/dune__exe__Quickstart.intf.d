examples/quickstart.mli:
