examples/conventional_baseline.ml: Belr_kits Conventional Fmt Stats Surface
