examples/typed_lambda.mli:
