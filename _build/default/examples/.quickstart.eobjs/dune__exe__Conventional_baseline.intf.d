examples/conventional_baseline.mli:
