examples/quickstart.ml: Array Belr_comp Belr_core Belr_kits Belr_lf Belr_parser Belr_support Belr_syntax Check_lfr Comp Coverage Ctxs Error Eval Fmt Lf List Meta Pp Sign String Sys
