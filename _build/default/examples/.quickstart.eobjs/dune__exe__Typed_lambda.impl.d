examples/typed_lambda.ml: Belr_comp Belr_core Belr_lf Belr_parser Belr_syntax Check_lfr Comp Ctxs Eval Fmt Lf List Meta Pp Shift Sign
