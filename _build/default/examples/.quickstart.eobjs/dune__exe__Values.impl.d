examples/values.ml: Belr_comp Belr_core Belr_kits Belr_lf Belr_syntax Check_lfr Comp Ctxs Eval Fmt Lf List Meta Pp Sign Values
