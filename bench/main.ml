(** The benchmark harness: one section per experiment in DESIGN.md §3.

    The paper is a theory/system paper with no numeric tables; its
    reproducible artefacts are the §2 case study and quantified claims in
    prose.  Each experiment below regenerates one of them (EXPERIMENTS.md
    records paper-claim vs measured):

    - E1  proof-size comparison, refinement vs conventional (§2)
    - E2  "sorts come at a very low cost": sort- vs type-checking time
    - E3  conservativity: erase + re-check overhead, and 100% success
    - E4  scaling of sort checking (near-linear, no intersection blow-up)
    - E5  hereditary substitution with tuple fronts / block projections
    - E6  ablation: unified single-pass judgment vs naive two-pass
    - E7  ablation: hash-consed term store on vs off (PR 4; the "off"
          rows are what [BELR_NO_HASHCONS=1] gives end to end), plus the
          one-at-a-time vs batched spine-append micro-benchmark
    - E8  warm vs cold re-check in the belr serve engine (PR 6)
    - E9  observability overhead: baseline vs fully instrumented warm
          serve (metrics registry + gauge sampling + structured log),
          with the production serve.check latency quantiles (PR 7)
    - E10 ablation: lazy whnf normalization on vs off (PR 9; the "off"
          rows are what [BELR_NO_WHNF=1] gives end to end): cold-path
          sort checking, conversion of delayed closures, and running
          [ceq] on deep [deq] derivation chains

    Run with: [dune exec bench/main.exe]  (add [--fast] for a quick pass).

    [--json FILE] additionally writes every measured number as a
    machine-readable report (schema [belr-bench/1]) — the format of the
    committed [BENCH_*.json] performance trajectory; see EXPERIMENTS.md
    for how each number is regenerated. *)

open Bechamel
open Belr_syntax
open Belr_lf
open Belr_core
open Belr_kits
open Lf

module J = Belr_support.Json

let fast = Array.exists (fun a -> a = "--fast") Sys.argv

let json_file =
  let out = ref None in
  Array.iteri
    (fun i a ->
      if a = "--json" && i + 1 < Array.length Sys.argv then
        out := Some Sys.argv.(i + 1))
    Sys.argv;
  !out

(** The per-experiment JSON report, accumulated in experiment order. *)
let report : (string * J.t) list ref = ref []

let record key j = report := (key, j) :: !report

let json_rows (rows : (string * float) list) : J.t =
  J.Obj (List.map (fun (n, v) -> (n, J.Float v)) rows)

let quota = Time.second (if fast then 0.25 else 1.0)

(* ------------------------------------------------------------------ *)
(* Measurement helpers                                                  *)

let run_tests (tests : Test.t) : (string * float) list =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> (name, est) :: acc
      | _ -> acc)
    results []
  |> List.sort compare

let pp_ns ppf v =
  if v > 1e6 then Fmt.pf ppf "%8.2f ms" (v /. 1e6)
  else if v > 1e3 then Fmt.pf ppf "%8.2f µs" (v /. 1e3)
  else Fmt.pf ppf "%8.0f ns" v

let print_results title rows =
  Fmt.pr "@.%s@." title;
  List.iter (fun (name, v) -> Fmt.pr "  %-44s %a@." name pp_ns v) rows;
  rows

(* ------------------------------------------------------------------ *)
(* Workload generators over the §2 signature                            *)

let u = Ulam.make ()

let sgu = u.Ulam.sg

let id_tm = Ulam.id_tm u

(* the canonical aeq/deq derivation for the identity *)
let d_id =
  (mk_root ((mk_const u.Ulam.e_lam)) ([ (mk_lam "x" ((mk_root ((mk_bvar 1)) []))); (mk_lam "x" ((mk_root ((mk_bvar 1)) [])));
        (mk_lam "x" ((mk_lam "u" ((mk_root ((mk_bvar 1)) []))))) ]))

(** Balanced application tree of depth [d] (size ~2^d). *)
let rec gen_term d =
  if d = 0 then id_tm else Ulam.app_tm u (gen_term (d - 1)) (gen_term (d - 1))

(** The congruence derivation of [aeq (gen_term d) (gen_term d)]. *)
let rec gen_drv d =
  if d = 0 then d_id
  else
    let t = gen_term (d - 1) and s = gen_drv (d - 1) in
    (mk_root ((mk_const u.Ulam.e_app)) ([ t; t; t; t; s; s ]))

let depths = if fast then [ 3; 5 ] else [ 3; 5; 7 ]

let lfr_env = Check_lfr.make_env sgu []

let lf_env = Check_lf.make_env sgu []

let aeq_srt d =
  let t = gen_term d in
  (mk_satom u.Ulam.aeq ([ t; t ]))

let deq_typ d =
  let t = gen_term d in
  (mk_atom u.Ulam.deq ([ t; t ]))

let deq_emb d =
  let t = gen_term d in
  (mk_sembed u.Ulam.deq ([ t; t ]))

(* ------------------------------------------------------------------ *)
(* E1 — proof sizes (static)                                            *)

let e1 () =
  Fmt.pr
    "@.== E1: proof size, refinement vs conventional (paper §2: the \
     conventional@.";
  Fmt.pr
    "   solution needs many additional arguments; ours measures the \
     generalized-@.";
  Fmt.pr "   context conventional baseline — see EXPERIMENTS.md) ==@.@.";
  let refin_sg = Surface.load () in
  let conv = Conventional.make () in
  let refin =
    Stats.dev_stats ~name:"refinement" refin_sg ~block_width:2
      [ "aeq-refl"; "aeq-sym"; "aeq-trans"; "ceq" ]
  in
  let cv =
    Stats.dev_stats ~name:"conventional" conv.Conventional.sg ~block_width:3
      [ "aeq-refl"; "aeq-sym"; "aeq-trans"; "ceq"; "sound" ]
  in
  Stats.pp_comparison Fmt.stdout refin cv;
  let dev (d : Stats.dev_stats) =
    J.Obj
      [
        ("const_decls", J.Int d.Stats.ds_const_decls);
        ("sort_assignments", J.Int d.Stats.ds_sort_assignments);
        ("block_width", J.Int d.Stats.ds_block_width);
        ("theorems", J.Int (List.length d.Stats.ds_theorems));
        ("total_args", J.Int d.Stats.ds_total_args);
        ("total_implicit", J.Int d.Stats.ds_total_implicit);
        ("total_nodes", J.Int d.Stats.ds_total_nodes);
      ]
  in
  record "e1"
    (J.Obj [ ("refinement", dev refin); ("conventional", dev cv) ]);
  let extra_nodes = cv.Stats.ds_total_nodes - refin.Stats.ds_total_nodes in
  let extra_args = cv.Stats.ds_total_args - refin.Stats.ds_total_args in
  Fmt.pr
    "@.shape check: conventional needs +%d statement arguments, +1 theorem \
     (soundness),@."
    extra_args;
  Fmt.pr "             +%d AST nodes, +1 assumption per block.  ✓ matches §2's claim@."
    extra_nodes

(* ------------------------------------------------------------------ *)
(* E2 — sort checking vs type checking                                  *)

let e2 () =
  Fmt.pr
    "@.== E2: \"sorts themselves come at a very low cost\" (§3.1.1) ==@.";
  let tests =
    List.concat_map
      (fun d ->
        let drv = gen_drv d in
        let s = aeq_srt d in
        let a = deq_typ d in
        [
          Test.make
            ~name:(Fmt.str "sort-check/depth-%02d" d)
            (Staged.stage (fun () ->
                 ignore (Check_lfr.check_normal lfr_env Ctxs.empty_sctx drv s)));
          Test.make
            ~name:(Fmt.str "type-check/depth-%02d" d)
            (Staged.stage (fun () ->
                 Check_lf.check_normal lf_env Ctxs.empty_ctx drv a));
        ])
      depths
  in
  let rows =
    print_results "time per check (derivations of depth d, size ~2^d):"
      (run_tests (Test.make_grouped ~name:"e2" tests))
  in
  (* overhead factor per depth *)
  let overhead =
    List.map
      (fun d ->
        let get pre =
          try List.assoc (Fmt.str "e2/%s/depth-%02d" pre d) rows
          with Not_found -> nan
        in
        let s = get "sort-check" and t = get "type-check" in
        Fmt.pr "  depth %2d: sort/type overhead = %.2fx@." d (s /. t);
        (Fmt.str "depth-%02d" d, J.Float (s /. t)))
      depths
  in
  record "e2"
    (J.Obj
       [ ("times_ns", json_rows rows); ("sort_over_type", J.Obj overhead) ])

(* ------------------------------------------------------------------ *)
(* E3 — conservativity: erase and re-check                              *)

let e3 () =
  Fmt.pr "@.== E3: conservativity (Thms 3.1.5/3.2.2): erase + re-check ==@.";
  (* 100%-success property over the sweep *)
  List.iter
    (fun d ->
      let drv = gen_drv d in
      let a = Check_lfr.check_normal lfr_env Ctxs.empty_sctx drv (aeq_srt d) in
      Check_lf.check_normal lf_env Ctxs.empty_ctx drv a)
    depths;
  Fmt.pr "  every well-sorted derivation re-checked at its erased type ✓@.";
  let tests =
    List.concat_map
      (fun d ->
        let drv = gen_drv d in
        let s = aeq_srt d in
        [
          Test.make
            ~name:(Fmt.str "sort-only/depth-%02d" d)
            (Staged.stage (fun () ->
                 ignore (Check_lfr.check_normal lfr_env Ctxs.empty_sctx drv s)));
          Test.make
            ~name:(Fmt.str "sort+erase+recheck/depth-%02d" d)
            (Staged.stage (fun () ->
                 let a =
                   Check_lfr.check_normal lfr_env Ctxs.empty_sctx drv s
                 in
                 Check_lf.check_normal lf_env Ctxs.empty_ctx drv a));
        ])
      depths
  in
  let rows =
    print_results "running the conservativity translation:"
      (run_tests (Test.make_grouped ~name:"e3" tests))
  in
  record "e3"
    (J.Obj
       [ ("recheck_success", J.Bool true); ("times_ns", json_rows rows) ])

(* ------------------------------------------------------------------ *)
(* E4 — scaling (no blow-up without intersections)                      *)

let e4 () =
  Fmt.pr
    "@.== E4: sort checking scales (bidirectional, no intersections; \
     §3.1.1/§5.1) ==@.";
  let tests =
    List.map
      (fun d ->
        let drv = gen_drv d in
        let s = aeq_srt d in
        Test.make
          ~name:(Fmt.str "sort-check/depth-%02d" d)
          (Staged.stage (fun () ->
               ignore (Check_lfr.check_normal lfr_env Ctxs.empty_sctx drv s))))
      depths
  in
  let rows =
    print_results "time vs derivation size:"
      (run_tests (Test.make_grouped ~name:"e4" tests))
  in
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | _ -> []
  in
  let exponents =
    List.map
      (fun (d1, d2) ->
        let get d =
          try List.assoc (Fmt.str "e4/sort-check/depth-%02d" d) rows
          with Not_found -> nan
        in
        let nodes d = float_of_int (Stats.size_normal (gen_drv d)) in
        let tf = get d2 /. get d1 and nf = nodes d2 /. nodes d1 in
        Fmt.pr
          "  depth %d→%d: time ×%.1f for AST size ×%.1f — empirical exponent %.2f@."
          d1 d2 tf nf
          (log tf /. log nf);
        (Fmt.str "depth-%02d-%02d" d1 d2, J.Float (log tf /. log nf)))
      (pairs depths)
  in
  record "e4"
    (J.Obj
       [
         ("times_ns", json_rows rows);
         ("empirical_exponent", J.Obj exponents);
       ]);
  Fmt.pr
    "  (low-degree polynomial — the quadratic component is dependent-spine@.";
  Fmt.pr
    "   comparison, present in plain LF too; with intersection sorts, sort@.";
  Fmt.pr "   checking would instead be PSPACE-hard, §5.1)@."

(* ------------------------------------------------------------------ *)
(* E5 — hereditary substitution                                         *)

let e5 () =
  Fmt.pr "@.== E5: hereditary substitution (§3.1.3) ==@.";
  (* a term with a free variable at every leaf; substituting triggers a
     β-redex at each *)
  let rec open_term d =
    if d = 0 then (mk_root ((mk_bvar 1)) ([ id_tm ]))
    else Ulam.app_tm u (open_term (d - 1)) (open_term (d - 1))
  in
  let subst = (mk_dot (Obj ((mk_lam "y" ((mk_root ((mk_bvar 1)) []))))) ((mk_shift 0))) in
  (* block-projection-heavy: substitute a tuple for a block variable *)
  let rec proj_term d =
    if d = 0 then (mk_root ((mk_proj ((mk_bvar 1)) 2)) [])
    else Ulam.app_tm u (proj_term (d - 1)) (proj_term (d - 1))
  in
  let tuple_subst = (mk_dot (Tup [ id_tm; id_tm ]) ((mk_shift 0))) in
  let tests =
    List.concat_map
      (fun d ->
        let t1 = open_term d and t2 = proj_term d in
        [
          Test.make
            ~name:(Fmt.str "beta-redexes/depth-%02d" d)
            (Staged.stage (fun () -> ignore (Hsub.sub_normal subst t1)));
          Test.make
            ~name:(Fmt.str "tuple-projections/depth-%02d" d)
            (Staged.stage (fun () -> ignore (Hsub.sub_normal tuple_subst t2)));
        ])
      depths
  in
  let rows =
    print_results "substitution into terms of size ~2^d:"
      (run_tests (Test.make_grouped ~name:"e5" tests))
  in
  record "e5" (J.Obj [ ("times_ns", json_rows rows) ])

(* ------------------------------------------------------------------ *)
(* E6 — ablation: unified judgment vs naive two-pass                    *)

let e6 () =
  Fmt.pr
    "@.== E6: ablation — unified judgment (type as output) vs two \
     independent passes ==@.";
  let tests =
    List.concat_map
      (fun d ->
        let drv = gen_drv d in
        let s = aeq_srt d in
        let a = deq_typ d in
        let se = deq_emb d in
        [
          Test.make
            ~name:(Fmt.str "unified/depth-%02d" d)
            (Staged.stage (fun () ->
                 (* one pass: sorting, with the typing derivation as its
                    output (erasure is constant-time per node) *)
                 ignore (Check_lfr.check_normal lfr_env Ctxs.empty_sctx drv s)));
          Test.make
            ~name:(Fmt.str "two-pass/depth-%02d" d)
            (Staged.stage (fun () ->
                 (* the pre-unification discipline: an independent sorting
                    pass (against the embedded sort, i.e. pure typing) plus
                    the sort-checking pass *)
                 ignore
                   (Check_lfr.check_normal lfr_env Ctxs.empty_sctx drv se);
                 ignore (Check_lfr.check_normal lfr_env Ctxs.empty_sctx drv s);
                 Check_lf.check_normal lf_env Ctxs.empty_ctx drv a));
        ])
      depths
  in
  let rows =
    print_results "checking cost:"
      (run_tests (Test.make_grouped ~name:"e6" tests))
  in
  let ratios =
    List.map
      (fun d ->
        let get pre =
          try List.assoc (Fmt.str "e6/%s/depth-%02d" pre d) rows
          with Not_found -> nan
        in
        Fmt.pr "  depth %2d: two-pass / unified = %.2fx@." d
          (get "two-pass" /. get "unified");
        (Fmt.str "depth-%02d" d, J.Float (get "two-pass" /. get "unified")))
      depths
  in
  record "e6"
    (J.Obj
       [ ("times_ns", json_rows rows); ("two_pass_over_unified", J.Obj ratios) ])

(* ------------------------------------------------------------------ *)
(* E7 — ablation: the hash-consed term store (PR 4)                     *)

let e7 () =
  Fmt.pr
    "@.== E7: ablation — hash-consed term store (DESIGN.md §S21; \
     BELR_NO_HASHCONS=1@.";
  Fmt.pr "   reproduces the \"off\" rows end to end) ==@.";
  let saved = store_enabled () in
  (* Each mode builds its own copy of the workload under that mode (so
     "on" terms are interned and "off" terms are plain allocations), and
     re-asserts the mode inside the measured closure because bechamel
     interleaves runs of different tests. *)
  let mode_tests (label, on) =
    set_store_enabled on;
    Hsub.clear_memo ();
    List.concat_map
      (fun d ->
        let drv = gen_drv d in
        (* a second structurally identical build: physically shared with
           [drv] exactly when the store is on *)
        let drv' = gen_drv d in
        let s = aeq_srt d in
        [
          Test.make
            ~name:(Fmt.str "%s/sort-check/depth-%02d" label d)
            (Staged.stage (fun () ->
                 set_store_enabled on;
                 ignore (Check_lfr.check_normal lfr_env Ctxs.empty_sctx drv s)));
          Test.make
            ~name:(Fmt.str "%s/equal/depth-%02d" label d)
            (Staged.stage (fun () ->
                 set_store_enabled on;
                 ignore (Equal.normal drv drv')));
        ])
      depths
  in
  (* satellite micro-benchmark: the pre-PR4 one-argument-at-a-time spine
     append (O(n²) in the spine length) vs the batched [Lf.app_spine] *)
  let spine_k = 256 in
  let spine_args = List.init spine_k (fun _ -> id_tm) in
  let spine_base = mk_root (mk_bvar 1) [] in
  let spine_tests =
    [
      Test.make
        ~name:(Fmt.str "spine-append/one-at-a-time/%d" spine_k)
        (Staged.stage (fun () ->
             ignore
               (List.fold_left
                  (fun m a -> app_spine m [ a ])
                  spine_base spine_args)));
      Test.make
        ~name:(Fmt.str "spine-append/batched/%d" spine_k)
        (Staged.stage (fun () -> ignore (app_spine spine_base spine_args)));
    ]
  in
  let tests =
    mode_tests ("off", false) @ mode_tests ("on", true) @ spine_tests
  in
  set_store_enabled true;
  let rows =
    print_results
      "store off vs on (sort-check replicates the E2/E4 workload):"
      (run_tests (Test.make_grouped ~name:"e7" tests))
  in
  let speedups =
    List.concat_map
      (fun w ->
        List.map
          (fun d ->
            let get lbl =
              try List.assoc (Fmt.str "e7/%s/%s/depth-%02d" lbl w d) rows
              with Not_found -> nan
            in
            let off = get "off" and on = get "on" in
            Fmt.pr "  depth %2d %-10s: off/on speedup = %.2fx@." d w
              (off /. on);
            (Fmt.str "%s-depth-%02d" w d, J.Float (off /. on)))
          depths)
      [ "sort-check"; "equal" ]
  in
  let spine_ratio =
    let get lbl =
      try List.assoc (Fmt.str "e7/spine-append/%s/%d" lbl spine_k) rows
      with Not_found -> nan
    in
    let r = get "one-at-a-time" /. get "batched" in
    Fmt.pr "  spine-append ×%d: one-at-a-time / batched = %.1fx@." spine_k r;
    r
  in
  record "e7"
    (J.Obj
       [
         ("times_ns", json_rows rows);
         ("off_over_on", J.Obj speedups);
         ("spine_one_at_a_time_over_batched", J.Float spine_ratio);
       ]);
  set_store_enabled saved

(* ------------------------------------------------------------------ *)
(* E8 — warm vs cold re-check in the belr serve engine (PR 6)           *)

(** A chained synthetic signature: [f0 : type] and
    [fi = | ci : f(i-1) -> fi], so each family references (and is a
    subordination successor of) its predecessor.  Editing the {e last}
    declaration therefore invalidates exactly itself — the warm path of
    the incremental checker re-checks 1 of [n] declarations. *)
let e8_chain ?(variant = 0) n =
  String.concat "\n"
    (List.init n (fun i ->
         if i = 0 then "LF f0 : type = | c0 : f0;"
         else if i = n - 1 && variant = 1 then
           Fmt.str "LF f%d : type = | c%d : f%d -> f%d | d%d : f%d;" i i
             (i - 1) i i i
         else Fmt.str "LF f%d : type = | c%d : f%d -> f%d;" i i (i - 1) i))

let e8_request ~id src =
  J.to_string ~compact:true
    (J.Obj
       [
         ("id", J.Int id);
         ("method", J.String "check");
         ("session", J.String "bench");
         ("source", J.String src);
       ])

let e8_round server line =
  match Belr_parser.Serve.handle_line server line with
  | Some _ -> ()
  | None -> failwith "e8: serve returned no reply"

let e8 () =
  let n = 60 in
  Fmt.pr
    "@.== E8: warm vs cold re-check — belr serve incremental engine \
     (%d-decl@.   chained signature; warm runs re-check exactly one \
     edited declaration) ==@."
    n;
  let variants = [| e8_chain n; e8_chain ~variant:1 n |] in
  (* warm: one long-lived server; each run toggles the last declaration,
     so the engine diffs, reuses n-1 entries, and re-checks one *)
  let warm_server = Belr_parser.Serve.create () in
  e8_round warm_server (e8_request ~id:0 variants.(0));
  let flip = ref 0 in
  let tests =
    [
      Test.make
        ~name:(Fmt.str "cold/%d-decls" n)
        (Staged.stage (fun () ->
             let server = Belr_parser.Serve.create () in
             e8_round server (e8_request ~id:1 variants.(0))));
      Test.make
        ~name:(Fmt.str "warm/%d-decls" n)
        (Staged.stage (fun () ->
             flip := 1 - !flip;
             e8_round warm_server (e8_request ~id:2 variants.(!flip))));
    ]
  in
  let rows =
    print_results "cold (fresh session, full check) vs warm (one edit):"
      (run_tests (Test.make_grouped ~name:"e8" tests))
  in
  let get lbl =
    try List.assoc (Fmt.str "e8/%s/%d-decls" lbl n) rows
    with Not_found -> nan
  in
  let speedup = get "cold" /. get "warm" in
  Fmt.pr "  warm speedup over cold = %.1fx (acceptance floor: 5x)@." speedup;
  record "e8"
    (J.Obj
       [
         ("times_ns", json_rows rows);
         ("decls", J.Int n);
         ("cold_over_warm", J.Float speedup);
       ])

(* ------------------------------------------------------------------ *)
(* E9 — observability overhead on the warm serve path (PR 7)           *)

(** The acceptance gate of DESIGN.md §S24: full production observability
    (metrics registry on, per-request gauge sampling, structured Info
    log to /dev/null) must cost < 2% on the warm incremental re-check
    path that E8 measures.  Two long-lived servers run the same
    one-edit workload; the closures toggle the global instrumentation
    so each measured request runs fully baseline or fully instrumented.
    The instrumented rounds also populate the [serve.check] latency
    histogram, whose p50/p99 go into the report — the same numbers the
    [metrics] method serves in production. *)
let e9 () =
  let module M = Belr_support.Metrics in
  let module L = Belr_support.Log in
  let n = 80 in
  Fmt.pr
    "@.== E9: observability overhead — baseline vs instrumented warm \
     serve@.   (%d-decl chained signature, one edited declaration per \
     request) ==@."
    n;
  let variants = [| e8_chain n; e8_chain ~variant:1 n |] in
  (* Serve.create turns the registry on; warm both servers, then let
     each closure pick the instrumentation state it measures. *)
  let base_server = Belr_parser.Serve.create () in
  let instr_server = Belr_parser.Serve.create () in
  e8_round base_server (e8_request ~id:0 variants.(0));
  e8_round instr_server (e8_request ~id:0 variants.(0));
  let devnull = open_out "/dev/null" in
  let base_flip = ref 0 and instr_flip = ref 0 in
  (* steady-state warm-up: drive both servers through the same edit
     stream so memo tables and the major heap reach their resting size
     before either label is measured *)
  for _ = 1 to 50 do
    M.set_enabled false;
    L.set_output None;
    base_flip := 1 - !base_flip;
    e8_round base_server (e8_request ~id:1 variants.(!base_flip));
    M.set_enabled true;
    L.set_output (Some devnull);
    instr_flip := 1 - !instr_flip;
    e8_round instr_server (e8_request ~id:2 variants.(!instr_flip))
  done;
  (* The labels share the process heap and allocator state, so
     measuring one label's whole quota before the other (as the
     bechamel harness does) hands the later label a warmer world —
     observed as a spurious ±10% either way.  Instead, interleave:
     each round times one baseline and one instrumented request
     back-to-back, alternating which goes first, and the label summary
     is the per-round median — drift cancels pairwise.  Medians, not
     means: a major-GC slice lands on whichever request is running and
     would otherwise dominate the comparison. *)
  let rounds = if fast then 500 else 2500 in
  let base_ns = Array.make rounds 0. in
  let instr_ns = Array.make rounds 0. in
  let time_one f =
    let t0 = Belr_support.Limits.now_ns () in
    f ();
    Int64.to_float (Int64.sub (Belr_support.Limits.now_ns ()) t0)
  in
  let one_baseline () =
    M.set_enabled false;
    L.set_output None;
    base_flip := 1 - !base_flip;
    time_one (fun () ->
        e8_round base_server (e8_request ~id:1 variants.(!base_flip)))
  in
  let one_instrumented () =
    M.set_enabled true;
    L.set_output (Some devnull);
    instr_flip := 1 - !instr_flip;
    time_one (fun () ->
        e8_round instr_server (e8_request ~id:2 variants.(!instr_flip)))
  in
  for k = 0 to rounds - 1 do
    if k land 1 = 0 then begin
      base_ns.(k) <- one_baseline ();
      instr_ns.(k) <- one_instrumented ()
    end
    else begin
      instr_ns.(k) <- one_instrumented ();
      base_ns.(k) <- one_baseline ()
    end
  done;
  let median a =
    let a = Array.copy a in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let rows =
    [
      (Fmt.str "e9/baseline/%d-decls" n, median base_ns);
      (Fmt.str "e9/instrumented/%d-decls" n, median instr_ns);
    ]
  in
  let rows =
    print_results
      (Fmt.str
         "baseline (registry off, no log) vs instrumented (metrics + \
          gauges + JSON log to /dev/null); per-request medians over %d \
          interleaved rounds:"
         rounds)
      rows
  in
  L.set_output None;
  close_out_noerr devnull;
  M.set_enabled true;
  let get lbl =
    try List.assoc (Fmt.str "e9/%s/%d-decls" lbl n) rows
    with Not_found -> nan
  in
  let overhead = (get "instrumented" /. get "baseline") -. 1.0 in
  let h = M.histogram "serve.check" in
  let p50 = M.quantile h 0.5 and p99 = M.quantile h 0.99 in
  Fmt.pr
    "  instrumented overhead over baseline = %.2f%% (acceptance \
     ceiling: 2%%)@.  serve.check latency: p50 <= %a, p99 <= %a (%d \
     observations)@."
    (overhead *. 100.) pp_ns (float_of_int p50) pp_ns (float_of_int p99)
    (M.histogram_count h);
  record "e9"
    (J.Obj
       [
         ("times_ns", json_rows rows);
         ("decls", J.Int n);
         ("overhead_fraction", J.Float overhead);
         ("serve_check_p50_ns", J.Int p50);
         ("serve_check_p99_ns", J.Int p99);
         ("serve_check_count", J.Int (M.histogram_count h));
       ])

(* ------------------------------------------------------------------ *)
(* E10 — ablation: lazy whnf normalization (PR 9)                       *)

(** A linear [deq] derivation chain of length [n] over the term [t]:
    [chain 0 = e-refl t] and
    [chain n = e-trans t t t (chain (n-1)) (e-sym t t (e-refl t))], so
    [ceq] performs [n] pattern-matching steps — each carrying [t] in the
    implicit arguments — to produce the [aeq] image. *)
let deq_chain t n =
  let refl = mk_root (mk_const u.Ulam.e_refl) [ t ] in
  let sym = mk_root (mk_const u.Ulam.e_sym) [ t; t; refl ] in
  let rec go n acc =
    if n = 0 then acc
    else go (n - 1) (mk_root (mk_const u.Ulam.e_trans) [ t; t; t; acc; sym ])
  in
  go n refl

(** A dependent-telescope mini-signature scaled by [n]:
    [tele : ΠM1..Mn:tm. deq M1 M1 → … → deq Mn Mn → deq M1 M1].  All 2n
    binders are in one telescope, so the eager checker re-substitutes the
    O(n)-node remainder at every spine step (O(n²) total) while the lazy
    checker extends the delayed substitution in O(1) per step. *)
let tele_check n =
  let bv i = mk_root (mk_bvar i) [] in
  let sg = Sign.create () in
  let tm = Sign.add_typ sg ~name:"tm" ~kind:Ktype ~implicit:0 in
  let tm_t = mk_atom tm [] in
  let c0 = Sign.add_const sg ~name:"c0" ~typ:tm_t ~implicit:0 in
  let f =
    Sign.add_const sg ~name:"f"
      ~typ:(mk_pi "x" tm_t (Shift.shift_typ 1 0 tm_t))
      ~implicit:0
  in
  let deq =
    Sign.add_typ sg ~name:"deq"
      ~kind:(Kpi ("m", tm_t, Kpi ("n", tm_t, Ktype)))
      ~implicit:0
  in
  let dq m = mk_atom deq [ m; m ] in
  let refl =
    Sign.add_const sg ~name:"refl" ~typ:(mk_pi "M" tm_t (dq (bv 1))) ~implicit:0
  in
  (* in the j-th deq-domain the binders in scope are M1..Mn, d1..d(j-1),
     so Mj is index n for every j — the domains are one shared node *)
  let rec mk_ds j acc = if j = 0 then acc else mk_ds (j - 1) (mk_pi "d" (dq (bv n)) acc) in
  let rec mk_ms i acc = if i = 0 then acc else mk_ms (i - 1) (mk_pi "M" tm_t acc) in
  let tele_typ = mk_ms n (mk_ds n (dq (bv (2 * n)))) in
  let tele = Sign.add_const sg ~name:"tele" ~typ:tele_typ ~implicit:0 in
  let t1 = mk_root (mk_const f) [ mk_root (mk_const c0) [] ] in
  let args =
    List.init n (fun _ -> t1) @ List.init n (fun _ -> mk_root (mk_const refl) [ t1 ])
  in
  let root = mk_root (mk_const tele) args in
  let env = Check_lf.make_env sg [] in
  let target = dq t1 in
  fun () -> Check_lf.check_normal env Ctxs.empty_ctx root target

let e10 () =
  Fmt.pr
    "@.== E10: ablation — lazy whnf normalization (DESIGN.md §S26; \
     BELR_NO_WHNF=1@.";
  Fmt.pr "   reproduces the \"off\" rows end to end) ==@.";
  let saved = Whnf.whnf_enabled () in
  let dev = Equal_dev.make () in
  let du = dev.Equal_dev.ulam in
  let hat0 = { Meta.hat_var = None; Meta.hat_names = [] } in
  let chains = if fast then [ 16; 32 ] else [ 16; 32; 64 ] in
  let widths = if fast then [ 64; 128 ] else [ 64; 128; 256 ] in
  let sizes = if fast then [ 1024; 4096 ] else [ 512; 1024; 4096 ] in
  let modes = [ ("off", false); ("on", true) ] in
  (* Each workload family runs as its own bechamel group, and the
     family's test closures are dropped (and a major GC forced) before
     the next family starts.  This matters: the deep self-similar terms
     some families keep alive (the whnf-head combs in particular) all
     collide into the same metadata-table buckets — [Hashtbl.hash]
     samples a bounded prefix of the value and the suffixes of a comb
     share theirs — so letting them survive into another family's run
     would tax every [mk_*] there with long chain walks and skew its
     off/on ratio.  Within a family both modes share the same live
     terms, so the contamination cancels out of the ratio. *)
  let run_family banner mk =
    let tests = List.concat_map mk modes in
    let rows =
      print_results banner (run_tests (Test.make_grouped ~name:"e10" tests))
    in
    Whnf.set_whnf_enabled saved;
    Gc.full_major ();
    rows
  in
  (* The sort-check and whnf-head workloads run the memo-cold path: the
     measured closure clears the Hsub and whnf tables first, so "off"
     really pays the eager substitutions that laziness avoids (warm,
     those two degenerate to table reads and the ablation measures
     nothing; the telescope and eval rows have no such sensitivity).
     The mode is re-asserted inside every closure because bechamel
     interleaves runs of different tests. *)
  let rows_sort =
    run_family "sort-check, whnf off vs on (cold memo tables):"
      (fun (label, on) ->
        List.map
          (fun d ->
            let drv = gen_drv d in
            let s = aeq_srt d in
            Test.make
              ~name:(Fmt.str "%s/sort-check/depth-%02d" label d)
              (Staged.stage (fun () ->
                   Whnf.set_whnf_enabled on;
                   Hsub.clear_memo ();
                   Whnf.clear_memo ();
                   ignore
                     (Check_lfr.check_normal lfr_env Ctxs.empty_sctx drv s))))
          depths)
  in
  let rows_head =
    run_family "whnf-head, whnf off vs on (cold memo tables):"
      (fun (label, on) ->
        List.map
          (fun n ->
            (* The primitive the whole refactor rests on: "which
               constructor heads ⟦σ⟧M?".  The comb below is an N-node
               right-spine of applications over #1 (every suffix is a
               distinct store node, so nothing collapses to a DAG), and
               lazy whnf answers in O(1) while the eager ablation must
               force the full N-node substitution.  Memo-cold on both
               sides: the clear puts the eager engine in the same state a
               fresh declaration sees. *)
            let rec comb k =
              if k = 0 then mk_root (mk_bvar 1) []
              else Ulam.app_tm u (mk_root (mk_bvar 1) []) (comb (k - 1))
            in
            let clo = (comb n, mk_dot (Obj id_tm) Lf.id) in
            Test.make
              ~name:(Fmt.str "%s/whnf-head/size-%05d" label n)
              (Staged.stage (fun () ->
                   Whnf.set_whnf_enabled on;
                   Hsub.clear_memo ();
                   Whnf.clear_memo ();
                   if Whnf.whnf_enabled () then ignore (Whnf.whnf_normal clo)
                   else ignore (Whnf.norm_nclo clo))))
          sizes)
  in
  let rows_tele =
    run_family "telescope checking, whnf off vs on:" (fun (label, on) ->
        List.map
          (fun n ->
            let check = tele_check n in
            Test.make
              ~name:(Fmt.str "%s/telescope/width-%03d" label n)
              (Staged.stage (fun () ->
                   Whnf.set_whnf_enabled on;
                   check ())))
          widths)
  in
  let rows_ceq =
    run_family "ceq evaluation (the §2 proof as a program), whnf off vs on:"
      (fun (label, on) ->
        List.map
          (fun n ->
            let chain = deq_chain id_tm n in
            let call =
              Comp.App
                ( List.fold_left
                    (fun e a -> Comp.MApp (e, a))
                    (Comp.RecConst dev.Equal_dev.ceq)
                    [
                      Meta.MOCtx Ctxs.empty_sctx;
                      Meta.MOTerm (hat0, id_tm);
                      Meta.MOTerm (hat0, id_tm);
                    ],
                  Comp.Box (Meta.MOTerm (hat0, chain)) )
            in
            Test.make
              ~name:(Fmt.str "%s/ceq-eval/chain-%02d" label n)
              (Staged.stage (fun () ->
                   Whnf.set_whnf_enabled on;
                   ignore
                     (Belr_comp.Eval.as_box
                        (Belr_comp.Eval.eval
                           (Belr_comp.Eval.make_env du.Ulam.sg) call)))))
          chains)
  in
  let rows = rows_sort @ rows_head @ rows_tele @ rows_ceq in
  Whnf.set_whnf_enabled saved;
  let ratio key_off key_on =
    let get k = try List.assoc k rows with Not_found -> nan in
    get key_off /. get key_on
  in
  let speedups =
    List.concat_map
      (fun w ->
        List.map
          (fun d ->
            let r =
              ratio
                (Fmt.str "e10/off/%s/depth-%02d" w d)
                (Fmt.str "e10/on/%s/depth-%02d" w d)
            in
            Fmt.pr "  depth %2d %-10s: off/on speedup = %.2fx@." d w r;
            (Fmt.str "%s-depth-%02d" w d, J.Float r))
          depths)
      [ "sort-check" ]
    @ List.map
        (fun n ->
          let r =
            ratio
              (Fmt.str "e10/off/whnf-head/size-%05d" n)
              (Fmt.str "e10/on/whnf-head/size-%05d" n)
          in
          Fmt.pr "  size %5d %-10s: off/on speedup = %.2fx@." n "whnf-head" r;
          (Fmt.str "whnf-head-size-%05d" n, J.Float r))
        sizes
    @ List.map
        (fun n ->
          let r =
            ratio
              (Fmt.str "e10/off/telescope/width-%03d" n)
              (Fmt.str "e10/on/telescope/width-%03d" n)
          in
          Fmt.pr "  width %3d %-10s: off/on speedup = %.2fx@." n "telescope" r;
          (Fmt.str "telescope-width-%03d" n, J.Float r))
        widths
    @ List.map
        (fun n ->
          let r =
            ratio
              (Fmt.str "e10/off/ceq-eval/chain-%02d" n)
              (Fmt.str "e10/on/ceq-eval/chain-%02d" n)
          in
          Fmt.pr "  chain %2d %-10s: off/on speedup = %.2fx@." n "ceq-eval" r;
          (Fmt.str "ceq-eval-chain-%02d" n, J.Float r))
        chains
  in
  record "e10"
    (J.Obj [ ("times_ns", json_rows rows); ("off_over_on", J.Obj speedups) ])

(* ------------------------------------------------------------------ *)

let () =
  Fmt.pr "belr benchmark harness (see DESIGN.md §3 and EXPERIMENTS.md)@.";
  if fast then Fmt.pr "(fast mode)@.";
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e9 ();
  e10 ();
  (match json_file with
  | None -> ()
  | Some path ->
      J.write_file path
        (J.Obj
           [
             ("schema", J.String "belr-bench/1");
             ("fast", J.Bool fast);
             ("depths", J.List (List.map (fun d -> J.Int d) depths));
             ("experiments", J.Obj (List.rev !report));
           ]);
      Fmt.pr "@.wrote %s@." path);
  Fmt.pr "@.all experiments completed.@."
