(** Application of meta-substitutions [⟦θ⟧] (§3.2, after Cave & Pientka).

    A meta-substitution instantiates meta-variables [u[σ]] with contextual
    terms, parameter variables with concrete (or other parameter)
    variables, and context variables with concrete contexts — splicing
    the instantiation into every context rooted at the variable.
    Instantiating [u] triggers hereditary substitution: [⟦Ψ̂.R/u⟧(u[σ]) =
    [⟦θ⟧σ]R].

    All functions take a cutoff [c]: indices [≤ c] are locally bound
    (by comp-level [MLam]/[LetBox]/branches) and untouched. *)

open Belr_support
open Belr_syntax
open Belr_lf
open Lf

(** Lookup: either still a variable (shifted), or an instantiation. *)
let rec lookup (theta : Meta.msub) (i : int) : [ `Var of int | `Inst of Meta.mobj ]
    =
  match theta with
  | Meta.MShift n -> `Var (i + n)
  | Meta.MDot (o, theta') -> if i = 1 then `Inst o else lookup theta' (i - 1)

let rec head c (theta : Meta.msub) (h : head) :
    [ `Head of head | `Norm of normal ] =
  match h with
  | Const _ | BVar _ -> `Head h
  | MVar (u, s) -> (
      let s' = sub c theta s in
      if u <= c then `Head (mk_mvar u s')
      else
        match lookup theta (u - c) with
        | `Var j -> `Head (mk_mvar (j + c) s')
        | `Inst (Meta.MOTerm (_, m)) ->
            let m = Shift.mshift_normal c 0 m in
            `Norm (Hsub.sub_normal s' m)
        | `Inst _ ->
            Error.violation "meta-variable instantiated by a non-term")
  | PVar (p, s) -> (
      let s' = sub c theta s in
      if p <= c then `Head (mk_pvar p s')
      else
        match lookup theta (p - c) with
        | `Var j -> `Head (mk_pvar (j + c) s')
        | `Inst (Meta.MOParam (_, hd)) -> (
            let hd = Shift.mshift_head c 0 hd in
            (* transport the instantiating variable through s' *)
            match Hsub.sub_head s' hd with
            | Hsub.Rhead h' -> `Head h'
            | Hsub.Rnorm m -> `Norm m
            | Hsub.Rtup _ ->
                Error.violation
                  "parameter variable resolved to a bare tuple")
        | `Inst _ ->
            Error.violation
              "parameter variable instantiated by a non-parameter")
  | Proj (b, k) -> (
      match head c theta b with
      | `Head b' -> `Head (mk_proj b' k)
      | `Norm (Root (b', [])) -> `Head (mk_proj b' k)
      | `Norm _ ->
          Error.violation "projection base instantiated by a non-variable")

and normal c theta (m : normal) : normal =
  match m with
  | Lam (x, n) -> mk_lam x (normal c theta n)
  | Root (h, sp) -> (
      let sp' = spine c theta sp in
      match head c theta h with
      | `Head h' -> mk_root h' sp'
      | `Norm n -> Hsub.reduce n sp')

and spine c theta sp = List.map (normal c theta) sp

and front c theta = function
  | Obj m -> Obj (normal c theta m)
  | Tup t -> Tup (List.map (normal c theta) t)
  | Undef -> Undef

and sub c theta (s : sub) : sub =
  match s with
  | Empty | Shift _ -> s
  | Dot (f, s') -> Hsub.norm_dot (front c theta f) (sub c theta s')

let rec typ c theta : typ -> typ = function
  | Atom (a, sp) -> mk_atom a (spine c theta sp)
  | Pi (x, a, b) -> mk_pi x (typ c theta a) (typ c theta b)

let rec srt c theta : srt -> srt = function
  | SAtom (s, sp) -> mk_satom s (spine c theta sp)
  | SEmbed (a, sp) -> mk_sembed a (spine c theta sp)
  | SPi (x, s1, s2) -> mk_spi x (srt c theta s1) (srt c theta s2)

let sblock c theta (b : Ctxs.sblock) : Ctxs.sblock =
  List.map (fun (x, s) -> (x, srt c theta s)) b

let block c theta (b : Ctxs.block) : Ctxs.block =
  List.map (fun (x, a) -> (x, typ c theta a)) b

let selem c theta (f : Ctxs.selem) : Ctxs.selem =
  {
    f with
    Ctxs.f_params = List.map (fun (x, s) -> (x, srt c theta s)) f.Ctxs.f_params;
    Ctxs.f_block = sblock c theta f.Ctxs.f_block;
  }

let elem c theta (e : Ctxs.elem) : Ctxs.elem =
  {
    e with
    Ctxs.e_params = List.map (fun (x, a) -> (x, typ c theta a)) e.Ctxs.e_params;
    Ctxs.e_block = block c theta e.Ctxs.e_block;
  }

let scentry c theta : Ctxs.scentry -> Ctxs.scentry = function
  | Ctxs.SCDecl (x, s) -> Ctxs.SCDecl (x, srt c theta s)
  | Ctxs.SCBlock (x, f, ms) ->
      Ctxs.SCBlock (x, selem c theta f, List.map (normal c theta) ms)

let centry c theta : Ctxs.centry -> Ctxs.centry = function
  | Ctxs.CDecl (x, a) -> Ctxs.CDecl (x, typ c theta a)
  | Ctxs.CBlock (x, e, ms) ->
      Ctxs.CBlock (x, elem c theta e, List.map (normal c theta) ms)

(** Apply to a sort-level context; instantiating the root context variable
    splices the instantiation's entries below the local ones. *)
let sctx c theta (psi : Ctxs.sctx) : Ctxs.sctx =
  let decls = List.map (scentry c theta) psi.Ctxs.s_decls in
  match psi.Ctxs.s_var with
  | None -> { psi with Ctxs.s_decls = decls }
  | Some i -> (
      if i <= c then { psi with Ctxs.s_decls = decls }
      else
        match lookup theta (i - c) with
        | `Var j -> { psi with Ctxs.s_var = Some (j + c); Ctxs.s_decls = decls }
        | `Inst (Meta.MOCtx psi0) ->
            let psi0 = Shift.mshift_sctx c 0 psi0 in
            {
              Ctxs.s_var = psi0.Ctxs.s_var;
              Ctxs.s_promoted = psi.Ctxs.s_promoted || psi0.Ctxs.s_promoted;
              Ctxs.s_decls = decls @ psi0.Ctxs.s_decls;
            }
        | `Inst _ ->
            Error.violation "context variable instantiated by a non-context")

let rec ctx c theta (g : Ctxs.ctx) : Ctxs.ctx =
  let decls = List.map (centry c theta) g.Ctxs.c_decls in
  match g.Ctxs.c_var with
  | None -> { g with Ctxs.c_decls = decls }
  | Some i -> (
      if i <= c then { g with Ctxs.c_decls = decls }
      else
        match lookup theta (i - c) with
        | `Var j -> { Ctxs.c_var = Some (j + c); Ctxs.c_decls = decls }
        | `Inst (Meta.MOCtx psi0) ->
            (* Context objects at the type level arise from [Erase.mobj],
               which produces contexts whose sorts are all embeddings;
               those erase structurally, without a signature. *)
            let psi0 = Shift.mshift_sctx c 0 psi0 in
            {
              Ctxs.c_var = psi0.Ctxs.s_var;
              Ctxs.c_decls = decls @ List.map structural_erase psi0.Ctxs.s_decls;
            }
        | `Inst _ ->
            Error.violation "context variable instantiated by a non-context")

and structural_erase : Ctxs.scentry -> Ctxs.centry = function
  | Ctxs.SCDecl (x, s) -> Ctxs.CDecl (x, structural_erase_srt s)
  | Ctxs.SCBlock (x, f, ms) ->
      Ctxs.CBlock
        ( x,
          {
            Ctxs.e_name = f.Ctxs.f_name;
            Ctxs.e_params =
              List.map (fun (y, s) -> (y, structural_erase_srt s)) f.Ctxs.f_params;
            Ctxs.e_block =
              List.map (fun (y, s) -> (y, structural_erase_srt s)) f.Ctxs.f_block;
          },
          ms )

and structural_erase_srt : srt -> typ = function
  | SEmbed (a, sp) -> mk_atom a sp
  | SPi (x, s1, s2) -> mk_pi x (structural_erase_srt s1) (structural_erase_srt s2)
  | SAtom _ ->
      Error.violation
        "structural erasure hit a proper sort; erase with the signature first"

let hat c theta (h : Meta.hat) : Meta.hat =
  match h.Meta.hat_var with
  | None -> h
  | Some i -> (
      if i <= c then h
      else
        match lookup theta (i - c) with
        | `Var j -> { h with Meta.hat_var = Some (j + c) }
        | `Inst (Meta.MOCtx psi0) ->
            let psi0 = Shift.mshift_sctx c 0 psi0 in
            {
              Meta.hat_var = psi0.Ctxs.s_var;
              Meta.hat_names = h.Meta.hat_names @ Ctxs.sctx_names psi0;
            }
        | `Inst _ ->
            Error.violation "context variable instantiated by a non-context")

let msrt c theta : Meta.msrt -> Meta.msrt = function
  | Meta.MSTerm (psi, q) -> Meta.MSTerm (sctx c theta psi, srt c theta q)
  | Meta.MSSub (p1, p2) -> Meta.MSSub (sctx c theta p1, sctx c theta p2)
  | Meta.MSCtx h -> Meta.MSCtx h
  | Meta.MSParam (psi, f, ms) ->
      Meta.MSParam (sctx c theta psi, selem c theta f, List.map (normal c theta) ms)

let mobj c theta : Meta.mobj -> Meta.mobj = function
  | Meta.MOTerm (h, m) -> Meta.MOTerm (hat c theta h, normal c theta m)
  | Meta.MOSub (h, s) -> Meta.MOSub (hat c theta h, sub c theta s)
  | Meta.MOCtx psi -> Meta.MOCtx (sctx c theta psi)
  | Meta.MOParam (h, hd) -> (
      let h' = hat c theta h in
      match head c theta hd with
      | `Head hd' -> Meta.MOParam (h', hd')
      | `Norm _ ->
          Error.violation "parameter instantiation reduced to a non-variable")

let mdecl c theta : Meta.mdecl -> Meta.mdecl = function
  | Meta.MDTerm (n, psi, q) -> Meta.MDTerm (n, sctx c theta psi, srt c theta q)
  | Meta.MDSub (n, p1, p2) -> Meta.MDSub (n, sctx c theta p1, sctx c theta p2)
  | Meta.MDCtx (n, h) -> Meta.MDCtx (n, h)
  | Meta.MDParam (n, psi, f, ms) ->
      Meta.MDParam
        (n, sctx c theta psi, selem c theta f, List.map (normal c theta) ms)

let rec ctyp c theta : Comp.ctyp -> Comp.ctyp = function
  | Comp.CBox ms -> Comp.CBox (msrt c theta ms)
  | Comp.CArr (t1, t2) -> Comp.CArr (ctyp c theta t1, ctyp c theta t2)
  | Comp.CPi (x, imp, ms, t) ->
      Comp.CPi (x, imp, msrt c theta ms, ctyp (c + 1) theta t)

let mctx_local c theta (omega0 : Meta.mctx) : Meta.mctx =
  let n = List.length omega0 in
  List.mapi (fun i d -> mdecl (c + (n - 1 - i)) theta d) omega0

let rec exp c theta : Comp.exp -> Comp.exp = function
  | Comp.Var i -> Comp.Var i
  | Comp.RecConst r -> Comp.RecConst r
  | Comp.Box mo -> Comp.Box (mobj c theta mo)
  | Comp.Fn (x, t, e) -> Comp.Fn (x, Option.map (ctyp c theta) t, exp c theta e)
  | Comp.App (e1, e2) -> Comp.App (exp c theta e1, exp c theta e2)
  | Comp.MLam (x, e) -> Comp.MLam (x, exp (c + 1) theta e)
  | Comp.MApp (e, mo) -> Comp.MApp (exp c theta e, mobj c theta mo)
  | Comp.LetBox (x, e1, e2) ->
      Comp.LetBox (x, exp c theta e1, exp (c + 1) theta e2)
  | Comp.Case (inv, e, brs) ->
      Comp.Case (inv_ c theta inv, exp c theta e, List.map (branch c theta) brs)

and inv_ c theta (i : Comp.inv) : Comp.inv =
  let n = List.length i.Comp.inv_mctx in
  {
    Comp.inv_mctx = mctx_local c theta i.Comp.inv_mctx;
    Comp.inv_name = i.Comp.inv_name;
    Comp.inv_msrt = msrt (c + n) theta i.Comp.inv_msrt;
    Comp.inv_body = ctyp (c + n + 1) theta i.Comp.inv_body;
  }

and branch c theta (b : Comp.branch) : Comp.branch =
  let n = List.length b.Comp.br_mctx in
  {
    Comp.br_mctx = mctx_local c theta b.Comp.br_mctx;
    Comp.br_pat = mobj (c + n) theta b.Comp.br_pat;
    Comp.br_body = exp (c + n) theta b.Comp.br_body;
  }

let cctx c theta (phi : Comp.cctx) : Comp.cctx =
  List.map (fun (x, t) -> (x, ctyp c theta t)) phi

(** Instantiate the innermost meta-binder: [⟦𝒩/X⟧]. *)
let inst1 (o : Meta.mobj) : Meta.msub = Meta.MDot (o, Meta.MShift 0)

(** Composition: [apply (mcomp t1 t2) = apply t2 ∘ apply t1]. *)
let rec mcomp (t1 : Meta.msub) (t2 : Meta.msub) : Meta.msub =
  match (t1, t2) with
  | Meta.MShift 0, _ -> t2
  | Meta.MShift n, Meta.MDot (_, t2') -> mcomp (Meta.MShift (n - 1)) t2'
  | Meta.MShift n, Meta.MShift m -> Meta.MShift (n + m)
  | Meta.MDot (o, t1'), _ -> Meta.MDot (mobj 0 t2 o, mcomp t1' t2)

(* --- type-level applications (for the conservativity target) --------- *)

let mtyp c theta : Meta.mtyp -> Meta.mtyp = function
  | Meta.MTTerm (g, a) -> Meta.MTTerm (ctx c theta g, typ c theta a)
  | Meta.MTSub (g1, g2) -> Meta.MTSub (ctx c theta g1, ctx c theta g2)
  | Meta.MTCtx g -> Meta.MTCtx g
  | Meta.MTParam (g, e, ms) ->
      Meta.MTParam (ctx c theta g, elem c theta e, List.map (normal c theta) ms)

let mdecl_t c theta : Meta.mdecl_t -> Meta.mdecl_t = function
  | Meta.TDTerm (n, g, a) -> Meta.TDTerm (n, ctx c theta g, typ c theta a)
  | Meta.TDSub (n, g1, g2) -> Meta.TDSub (n, ctx c theta g1, ctx c theta g2)
  | Meta.TDCtx (n, g) -> Meta.TDCtx (n, g)
  | Meta.TDParam (n, g, e, ms) ->
      Meta.TDParam
        (n, ctx c theta g, elem c theta e, List.map (normal c theta) ms)

let mctx_t_local c theta (delta0 : Meta.mctx_t) : Meta.mctx_t =
  let n = List.length delta0 in
  List.mapi (fun i d -> mdecl_t (c + (n - 1 - i)) theta d) delta0

let rec ctyp_t c theta : Comp.ctyp_t -> Comp.ctyp_t = function
  | Comp.TBox mt -> Comp.TBox (mtyp c theta mt)
  | Comp.TArr (t1, t2) -> Comp.TArr (ctyp_t c theta t1, ctyp_t c theta t2)
  | Comp.TPi (x, imp, mt, t) ->
      Comp.TPi (x, imp, mtyp c theta mt, ctyp_t (c + 1) theta t)

let rec exp_t c theta : Comp.exp_t -> Comp.exp_t = function
  | Comp.TVar i -> Comp.TVar i
  | Comp.TRecConst r -> Comp.TRecConst r
  | Comp.TBoxE mo -> Comp.TBoxE (mobj c theta mo)
  | Comp.TFn (x, t, e) ->
      Comp.TFn (x, Option.map (ctyp_t c theta) t, exp_t c theta e)
  | Comp.TApp (e1, e2) -> Comp.TApp (exp_t c theta e1, exp_t c theta e2)
  | Comp.TMLam (x, e) -> Comp.TMLam (x, exp_t (c + 1) theta e)
  | Comp.TMApp (e, mo) -> Comp.TMApp (exp_t c theta e, mobj c theta mo)
  | Comp.TLetBox (x, e1, e2) ->
      Comp.TLetBox (x, exp_t c theta e1, exp_t (c + 1) theta e2)
  | Comp.TCase (inv, e, brs) ->
      Comp.TCase
        (inv_t c theta inv, exp_t c theta e, List.map (branch_t c theta) brs)

and inv_t c theta (i : Comp.inv_t) : Comp.inv_t =
  let n = List.length i.Comp.tinv_mctx in
  {
    Comp.tinv_mctx = mctx_t_local c theta i.Comp.tinv_mctx;
    Comp.tinv_name = i.Comp.tinv_name;
    Comp.tinv_mtyp = mtyp (c + n) theta i.Comp.tinv_mtyp;
    Comp.tinv_body = ctyp_t (c + n + 1) theta i.Comp.tinv_body;
  }

and branch_t c theta (b : Comp.branch_t) : Comp.branch_t =
  let n = List.length b.Comp.tbr_mctx in
  {
    Comp.tbr_mctx = mctx_t_local c theta b.Comp.tbr_mctx;
    Comp.tbr_pat = mobj (c + n) theta b.Comp.tbr_pat;
    Comp.tbr_body = exp_t (c + n) theta b.Comp.tbr_body;
  }

let cctx_t c theta (phi : Comp.cctx_t) : Comp.cctx_t =
  List.map (fun (x, t) -> (x, ctyp_t c theta t)) phi
