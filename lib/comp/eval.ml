(** A big-step, environment-based operational semantics for the
    computation level, so that mechanized proofs are {e runnable}
    functions: applying [ceq] to a boxed [deq] derivation really computes
    the boxed [aeq] derivation.

    Meta-variables are instantiated by the value environment (every
    scrutinee is ground at run time), and pattern matching reuses the
    unifier in matching mode: only the branch's pattern variables are
    flexible, and a match must solve all of them.

    Laziness (PR 9): a [Box] evaluates to a {e suspended} grounding —
    the meta-substitution of the environment is applied only when the
    box is scrutinized ([case]/[let box]) or observed ({!as_box}), so a
    boxed derivation passed through function arguments and returned
    unopened never forces its full normal form.  The environment's
    meta-substitution itself is built once per [vmeta] spine and cached
    ({!theta_of}), instead of being rebuilt at every [Box]/[MApp].

    Fuel: evaluation counts steps against the [Limits]-style
    configurable budget ({!Belr_support.Limits.set_eval_fuel}, the CLI's
    [--max-eval-steps]); exhaustion raises
    {!Belr_support.Limits.Fuel_exhausted}, which the diagnostics engine
    renders as the stable [E0905] error — so [--max-errors], [--werror],
    and the exit-code contract apply to runaway evaluation exactly as
    they do to runaway recursion ([E0901]) and missed deadlines
    ([E0903]). *)

open Belr_support
open Belr_syntax
open Belr_lf
open Belr_meta
open Belr_unify

type value =
  | VBox of Meta.mobj Lazy.t
      (** ground contextual object, grounded on first observation *)
  | VFn of env * Name.t * Comp.exp
  | VMLam of env * Name.t * Comp.exp

and env = {
  sg : Sign.t;
  vmeta : Meta.mobj list;  (** ground instantiations of Ω, innermost first *)
  vcomp : value list;  (** values of Φ, innermost first *)
  mutable vtheta : Meta.msub option;
      (** cache of {!theta_of} for this [vmeta] spine; never shared
          across environments with different [vmeta] *)
}

let make_env sg = { sg; vmeta = []; vcomp = []; vtheta = None }

(* Environment extension goes through these helpers so the theta cache is
   invalidated exactly when [vmeta] changes (a [with]-copy would silently
   carry the stale cache along). *)

let push_meta (e : env) (mo : Meta.mobj) : env =
  { e with vmeta = mo :: e.vmeta; vtheta = None }

let push_metas (e : env) (mos : Meta.mobj list) : env =
  { e with vmeta = mos @ e.vmeta; vtheta = None }

let push_comp (e : env) (v : value) : env =
  (* vmeta is unchanged: sharing the cached theta is sound *)
  { e with vcomp = v :: e.vcomp }

(** The ground meta-substitution corresponding to the environment
    (computed once per [vmeta] spine). *)
let theta_of (e : env) : Meta.msub =
  match e.vtheta with
  | Some th -> th
  | None ->
      (* vmeta is innermost first, exactly the order of msub fronts *)
      let th =
        List.fold_right
          (fun o acc -> Meta.MDot (o, acc))
          e.vmeta (Meta.MShift 0)
      in
      e.vtheta <- Some th;
      th

let rec eval ?fuel (e : env) (f : Comp.exp) : value =
  let fuel =
    match fuel with Some n -> n | None -> Limits.eval_fuel_limit ()
  in
  if fuel <= 0 then begin
    Limits.trip ();
    raise (Limits.Fuel_exhausted (Limits.eval_fuel_limit ()))
  end;
  let fuel = fuel - 1 in
  match f with
  | Comp.Var i -> (
      match List.nth_opt e.vcomp (i - 1) with
      | Some v -> v
      | None -> Error.violation "eval: unbound computation variable %d" i)
  | Comp.RecConst r -> (
      match (Sign.rec_entry e.sg r).Sign.r_body with
      | Some body -> eval ~fuel (make_env e.sg) body
      | None -> Error.raise_msg "function %s has no body yet"
                  (Sign.rec_entry e.sg r).Sign.r_name)
  | Comp.Box mo -> VBox (lazy (Msub.mobj 0 (theta_of e) mo))
  | Comp.Fn (x, _, body) -> VFn (e, x, body)
  | Comp.MLam (x, body) -> VMLam (e, x, body)
  | Comp.App (f1, f2) -> (
      let v1 = eval ~fuel e f1 in
      let v2 = eval ~fuel e f2 in
      match v1 with
      | VFn (env', _, body) -> eval ~fuel (push_comp env' v2) body
      | _ -> Error.violation "eval: application of a non-function")
  | Comp.MApp (f1, mo) -> (
      let v1 = eval ~fuel e f1 in
      let mo' = Msub.mobj 0 (theta_of e) mo in
      match v1 with
      | VMLam (env', _, body) -> eval ~fuel (push_meta env' mo') body
      | _ -> Error.violation "eval: meta-application of a non-mlam")
  | Comp.LetBox (_, f1, f2) -> (
      match eval ~fuel e f1 with
      | VBox mo -> eval ~fuel (push_meta e (Lazy.force mo)) f2
      | _ -> Error.violation "eval: let box of a non-box value")
  | Comp.Case (_, scrut, branches) -> (
      match eval ~fuel e scrut with
      | VBox mo -> eval_case ~fuel e (Lazy.force mo) branches
      | _ -> Error.violation "eval: case scrutinee is not a box")

and eval_case ~fuel (e : env) (scrut : Meta.mobj) (branches : Comp.branch list)
    : value =
  match branches with
  | [] -> Error.raise_msg "match failure: no branch covers the scrutinee"
  | br :: rest -> (
      match match_branch e scrut br with
      | Some insts ->
          (* the body lives in Ω, Ω₀: extending the environment with the
             matched instantiations grounds the pattern variables *)
          eval ~fuel (push_metas e insts) br.Comp.br_body
      | None -> eval_case ~fuel e scrut rest)

(** Try to match [scrut] against a branch.  The branch's pattern lives in
    [Ω, Ω₀]; grounding the ambient Ω with the environment leaves only the
    pattern variables [Ω₀] free.  On success returns their ground
    instantiations (innermost first). *)
and match_branch (e : env) (scrut : Meta.mobj) (br : Comp.branch) :
    Meta.mobj list option =
  let n0 = List.length br.Comp.br_mctx in
  let theta = theta_of e in
  (* ground the ambient references of the branch's pattern context and
     pattern: afterwards only indices 1..n0 (the pattern variables) remain *)
  let omega0 = Msub.mctx_local 0 theta br.Comp.br_mctx in
  let pat = Msub.mobj n0 theta br.Comp.br_pat in
  let st = Unify.make ~sg:e.sg ~omega:omega0 ~flex:(fun i -> i <= n0) in
  match Unify.unify_mobj st pat (Shift.mshift_mobj n0 0 scrut) with
  | exception Unify.Unify _ -> None
  | () -> (
      (* parameter variables solved to concrete blocks determine their
         world instantiations *)
      Unify.refine_solved_params st;
      match Unify.solve st with
      | exception Unify.Unify _ -> None
      | rho, omega' ->
          if omega' <> [] then
            (* stuck match: pattern variables remain uninstantiated *)
            None
          else
            let rec fronts i theta =
              if i > n0 then []
              else
                match theta with
                | Meta.MDot (o, theta') -> o :: fronts (i + 1) theta'
                | Meta.MShift _ ->
                    Error.violation "eval: match produced a short msub"
            in
            Some (fronts 1 rho))

(** Force a value to a ground contextual object (for printing/tests). *)
let as_box : value -> Meta.mobj = function
  | VBox mo -> Lazy.force mo
  | _ -> Error.raise_msg "value is not a boxed object"
