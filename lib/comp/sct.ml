(** Size-change termination (Lee, Jones, Ben-Amram, POPL '01) over the
    {!Belr_analysis.Callgraph} — the back half of the totality analyzer
    (DESIGN.md §S22).

    A {e size-change graph} for a call site [f → g] is its edge set:
    [(i, r, j)] says the [j]-th argument of the call is [r]-related
    (strictly smaller, or no larger) to [f]'s [i]-th formal.  Graphs
    compose relationally — [(G₁; G₂)] has [(i, r₁∘r₂, k)] whenever
    [G₁] has [(i, r₁, j)] and [G₂] has [(j, r₂, k)], where [∘] takes the
    strict relation if either side is strict — and the analysis closes
    the per-SCC graph set under composition.  The LJB criterion:
    every {e idempotent} self-graph [G : f → f] with [G; G = G] must
    carry a strict self-edge [(i, Lt, i)].  If one does not, some
    infinite call sequence would descend in no argument forever, and we
    report it with the composition's call path as a witness.

    Compared to {!Termination} (guardedness) this tracks {e which}
    argument decreases and follows size information {e across} call
    sites, so it accepts argument-swapping mutual recursion and
    lexicographic descent (Ackermann) while rejecting the diverging
    cycles guardedness cannot even see (a [ping → pong → ping] loop that
    never shrinks).  The closure is bounded by a graph {e budget}; blown
    budgets yield {!GaveUp}, never a spurious acceptance. *)

open Belr_analysis

(** A call path witnessing a composed graph, outermost call first. *)
type path = Callgraph.site list

type verdict =
  | Terminating
  | Diverging of path
      (** some idempotent cycle has no strictly descending argument; the
          path is one concrete call sequence realizing it *)
  | GaveUp  (** composition closure exceeded its budget *)

(* --- graphs ----------------------------------------------------------- *)

(** Normalized edge list (sorted, strongest relation per pair) — directly
    comparable with [=]. *)
type graph = Callgraph.edge list

let compose (g1 : graph) (g2 : graph) : graph =
  let open Callgraph in
  let edges =
    List.concat_map
      (fun e1 ->
        List.filter_map
          (fun e2 ->
            if e1.e_dst = e2.e_src then
              Some
                {
                  e_src = e1.e_src;
                  e_rel = rel_compose e1.e_rel e2.e_rel;
                  e_dst = e2.e_dst;
                }
            else None)
          g2)
      g1
  in
  normalize_edges edges

let idempotent (g : graph) : bool = compose g g = g

let has_strict_self_edge (g : graph) : bool =
  List.exists
    (fun (e : Callgraph.edge) -> e.Callgraph.e_src = e.Callgraph.e_dst && e.Callgraph.e_rel = Callgraph.Lt)
    g

(* --- closure ---------------------------------------------------------- *)

type item = {
  it_src : Belr_syntax.Lf.cid_rec;
  it_dst : Belr_syntax.Lf.cid_rec;
  it_graph : graph;
  it_path : path;  (** first composition found, for the witness *)
}

(** Check one strongly connected component of the call graph.  Only call
    sites internal to the SCC participate: a call out of the component
    cannot lie on a cycle through it.  [budget] bounds the number of
    distinct (src, dst, graph) items the closure may generate (default
    4096); [composed] reports how many compositions were computed. *)
let check_scc ?(budget = 4096) (cg : Callgraph.t)
    (scc : Belr_syntax.Lf.cid_rec list) :
    verdict * [ `Composed of int ] =
  let composed = ref 0 in
  let internal (s : Callgraph.site) =
    List.mem s.Callgraph.cs_caller scc && List.mem s.Callgraph.cs_callee scc
  in
  let sites = List.filter internal cg.Callgraph.cg_sites in
  match sites with
  | [] -> (Terminating, `Composed 0)
  | _ -> (
      let seen : (Belr_syntax.Lf.cid_rec * Belr_syntax.Lf.cid_rec * graph, path)
          Hashtbl.t =
        Hashtbl.create 64
      in
      let base =
        List.map
          (fun (s : Callgraph.site) ->
            {
              it_src = s.Callgraph.cs_caller;
              it_dst = s.Callgraph.cs_callee;
              it_graph = s.Callgraph.cs_edges;
              it_path = [ s ];
            })
          sites
      in
      let all = ref [] in
      let queue = Queue.create () in
      let add (it : item) =
        let key = (it.it_src, it.it_dst, it.it_graph) in
        if not (Hashtbl.mem seen key) then (
          Hashtbl.replace seen key it.it_path;
          all := it :: !all;
          Queue.add it queue)
      in
      List.iter add base;
      let blown = ref false in
      while (not !blown) && not (Queue.is_empty queue) do
        let it = Queue.pop queue in
        (* extend on the right with every base site leaving [it_dst] *)
        List.iter
          (fun (b : item) ->
            if b.it_src = it.it_dst && not !blown then (
              incr composed;
              add
                {
                  it_src = it.it_src;
                  it_dst = b.it_dst;
                  it_graph = compose it.it_graph b.it_graph;
                  it_path = it.it_path @ b.it_path;
                };
              if Hashtbl.length seen > budget then blown := true))
          base
      done;
      if !blown then (GaveUp, `Composed !composed)
      else
        let bad =
          List.find_opt
            (fun it ->
              it.it_src = it.it_dst
              && idempotent it.it_graph
              && not (has_strict_self_edge it.it_graph))
            (List.rev !all)
        in
        match bad with
        | Some it -> (Diverging it.it_path, `Composed !composed)
        | None -> (Terminating, `Composed !composed))

(** Render a witness path as ["f → g → f"] given a name resolver. *)
let render_path (name : Belr_syntax.Lf.cid_rec -> string) (p : path) : string =
  match p with
  | [] -> ""
  | first :: _ ->
      let names =
        name first.Callgraph.cs_caller
        :: List.map (fun (s : Callgraph.site) -> name s.Callgraph.cs_callee) p
      in
      String.concat " -> " names
