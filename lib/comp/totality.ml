(** The totality analyzer: per-[rec] verdicts combining size-change
    termination ({!Belr_analysis.Callgraph} + {!Sct}) with deep coverage
    ({!Coverage.deep_check_rec}) — the paper's §6.1 "coverage and
    termination checker for Beluga with refinement types" as a
    first-class static analysis (DESIGN.md §S22).

    Findings go through the {!Belr_support.Diagnostics} code registry, so
    [--werror], [--max-errors], and the 0/1/2 exit-code contract apply
    uniformly:

    - [E0710] (error): a recursion cycle with no strictly descending
      argument in some idempotent size-change composition, witnessed by a
      concrete call path;
    - [W0711] (warning): a non-exhaustive [case], with the missing
      pattern skeletons;
    - [W0712] (warning): the analysis gave up at a resource bound (the
      coverage depth bound, or the SCT composition budget).

    Each phase runs under a [total:<pass>] telemetry span; the kernel
    counters [total.composed_graphs], [total.split_candidates], and
    [total.pruned_cases] account for the work done.  The machine-readable
    report follows the [belr-total/1] schema (validated by
    [tools/validate_json.ml] under the [@total] alias):

    {v
    { "schema": "belr-total/1",
      "files": ["examples/totality.blr"],
      "functions": [{"name": "flip", "group": ["flip", "flop"],
                     "terminating": true, "covered": true,
                     "cases": 1, "missing": []}, …],
      "callgraph": {"functions": 3, "sites": 4, "sccs": 3,
                    "composed": 12},
      "findings": [...belr-lint/1-shaped entries...],
      "summary": {"errors": 0, "warnings": 0, "notes": 0, "bugs": 0},
      "exit_code": 0 }
    v} *)

open Belr_support
open Belr_syntax
open Belr_lf
module Callgraph = Belr_analysis.Callgraph

let c_composed = Telemetry.counter "total.composed_graphs"

type term_status =
  | TTotal
  | TDiverging of Sct.path
  | TGaveUp
  | TUnknown  (** the function's analysis crashed (diagnosed separately) *)

type fn_verdict = {
  fv_id : Lf.cid_rec;
  fv_name : string;
  fv_group : string list;  (** names of the SCC members, ascending id *)
  fv_term : term_status;
  fv_cases : int;  (** [case] expressions analyzed in the body *)
  fv_missing : string list list;  (** per uncovered case, its skeletons *)
  fv_gaveup : int;  (** cases where coverage hit the depth bound *)
}

type result = {
  tr_fns : fn_verdict list;  (** ascending id (declaration) order *)
  tr_sites : int;
  tr_sccs : int;
  tr_composed : int;
}

let empty_result = { tr_fns = []; tr_sites = 0; tr_sccs = 0; tr_composed = 0 }

let rec_loc sg id =
  Option.value ~default:Loc.ghost
    (Sign.decl_loc sg (Sign.rec_entry sg id).Sign.r_name)

(** Run the analyzer over every declared function, reporting through
    [sink].  [depth] bounds coverage splitting; [budget] bounds the SCT
    closure.  Analysis failures on a recovered (partially checked)
    signature are contained per SCC / per function. *)
let run ?(depth = 3) ?(budget = 4096) (sink : Diagnostics.sink)
    (sg : Sign.t) : result =
  Telemetry.with_span "total" (fun () ->
      let name id = (Sign.rec_entry sg id).Sign.r_name in
      let cg =
        Telemetry.with_span "total:callgraph" (fun () -> Callgraph.analyze sg)
      in
      let sccs = Callgraph.sccs cg in
      (* termination: one verdict per SCC, shared by its members *)
      let composed = ref 0 in
      let term_of : (Lf.cid_rec, term_status) Hashtbl.t = Hashtbl.create 16 in
      Telemetry.with_span "total:sct" (fun () ->
          List.iter
            (fun scc ->
              let v =
                match
                  Diagnostics.recover sink
                    ~loc:(match scc with id :: _ -> rec_loc sg id | [] -> Loc.ghost)
                    ~code:"E0201"
                    (fun () -> Sct.check_scc ~budget cg scc)
                with
                | Some (v, `Composed n) ->
                    composed := !composed + n;
                    Telemetry.add c_composed n;
                    (match v with
                    | Sct.Terminating -> TTotal
                    | Sct.Diverging p -> TDiverging p
                    | Sct.GaveUp -> TGaveUp)
                | None -> TUnknown
              in
              List.iter (fun id -> Hashtbl.replace term_of id v) scc;
              match v with
              | TDiverging path ->
                  let members =
                    String.concat ", " (List.map name scc)
                  in
                  Diagnostics.emit sink
                    (Diagnostics.make
                       ~loc:(rec_loc sg (List.hd scc))
                       ~code:"E0710" Diagnostics.Error
                       "possibly non-terminating recursion in %s: no argument \
                        strictly decreases along the cycle %s"
                       members
                       (Sct.render_path name path))
              | TGaveUp ->
                  Diagnostics.emit sink
                    (Diagnostics.make
                       ~loc:(match scc with id :: _ -> rec_loc sg id | [] -> Loc.ghost)
                       ~code:"W0712" Diagnostics.Warning
                       "termination analysis of %s gave up: size-change \
                        closure exceeded its budget of %d graphs"
                       (String.concat ", " (List.map name scc))
                       budget)
              | TTotal | TUnknown -> ())
            sccs);
      (* coverage: per function, per case *)
      let fns =
        Telemetry.with_span "total:coverage" (fun () ->
            List.map
              (fun (id, fname) ->
                let scc =
                  match
                    List.find_opt (fun scc -> List.mem id scc) sccs
                  with
                  | Some scc -> scc
                  | None -> [ id ]
                in
                let cases =
                  match
                    Diagnostics.recover sink ~loc:(rec_loc sg id)
                      ~code:"E0201" (fun () ->
                        Coverage.deep_check_rec ~depth sg id)
                  with
                  | Some cs -> cs
                  | None -> []
                in
                let missing = ref [] in
                let gaveup = ref 0 in
                List.iter
                  (function
                    | Coverage.DCovered -> ()
                    | Coverage.DUncovered ms ->
                        missing := ms :: !missing;
                        Diagnostics.emit sink
                          (Diagnostics.make ~loc:(rec_loc sg id)
                             ~code:"W0711" Diagnostics.Warning
                             "a case in %s is non-exhaustive: missing %s"
                             fname
                             (String.concat ", " ms))
                    | Coverage.DGaveUp ->
                        incr gaveup;
                        Diagnostics.emit sink
                          (Diagnostics.make ~loc:(rec_loc sg id)
                             ~code:"W0712" Diagnostics.Warning
                             "coverage analysis of a case in %s gave up at \
                              splitting depth %d"
                             fname depth))
                  cases;
                {
                  fv_id = id;
                  fv_name = fname;
                  fv_group = List.map name scc;
                  fv_term =
                    (match Hashtbl.find_opt term_of id with
                    | Some v -> v
                    | None -> TTotal);
                  fv_cases = List.length cases;
                  fv_missing = List.rev !missing;
                  fv_gaveup = !gaveup;
                })
              cg.Callgraph.cg_recs)
      in
      {
        tr_fns = fns;
        tr_sites = List.length cg.Callgraph.cg_sites;
        tr_sccs = List.length sccs;
        tr_composed = !composed;
      })

(* --- report ------------------------------------------------------------ *)

let schema_id = "belr-total/1"

let terminating (f : fn_verdict) =
  match f.fv_term with TTotal -> true | _ -> false

let covered (f : fn_verdict) = f.fv_missing = [] && f.fv_gaveup = 0

let fn_json (f : fn_verdict) : Json.t =
  Json.Obj
    [
      ("name", Json.String f.fv_name);
      ("group", Json.List (List.map (fun n -> Json.String n) f.fv_group));
      ("terminating", Json.Bool (terminating f));
      ("covered", Json.Bool (covered f));
      ("cases", Json.Int f.fv_cases);
      ( "missing",
        Json.List
          (List.map
             (fun ms -> Json.List (List.map (fun m -> Json.String m) ms))
             f.fv_missing) );
    ]

(** The full [belr-total/1] report for one run; [finding] entries reuse
    the [belr-lint/1] finding shape. *)
let report_json ~(files : string list) (sink : Diagnostics.sink)
    (r : result) : Json.t =
  Json.Obj
    [
      ("schema", Json.String schema_id);
      ("files", Json.List (List.map (fun f -> Json.String f) files));
      ("functions", Json.List (List.map fn_json r.tr_fns));
      ( "callgraph",
        Json.Obj
          [
            ("functions", Json.Int (List.length r.tr_fns));
            ("sites", Json.Int r.tr_sites);
            ("sccs", Json.Int r.tr_sccs);
            ("composed", Json.Int r.tr_composed);
          ] );
      ( "findings",
        Json.List
          (List.map Belr_analysis.Lint.finding_json (Diagnostics.all sink)) );
      ( "summary",
        Json.Obj
          [
            ("errors", Json.Int (Diagnostics.error_count sink));
            ("warnings", Json.Int (Diagnostics.warning_count sink));
            ("notes", Json.Int (Diagnostics.note_count sink));
            ("bugs", Json.Int (Diagnostics.bug_count sink));
          ] );
      ("exit_code", Json.Int (Diagnostics.exit_code sink));
    ]
