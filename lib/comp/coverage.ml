(** A conservative coverage checker for refinement patterns — the paper's
    §6.1 future work ("refinements allow validating the correctness of
    functions containing non-exhaustive pattern matching…a natural next
    step is therefore to develop a coverage…checker").

    The sorting rules deliberately do {e not} require coverage (§4.1);
    this checker is an optional analysis.  It is conservative in the
    usual direction: [check] never accepts an uncovered match, but may
    report a match as uncovered when a cleverer analysis could prove the
    missing cases impossible.

    For a scrutinee of sort [Ψ ⊢ Q] the split candidates are:

    - every constant carrying a sort in [Q]'s family (for [Q = s·sp]) or
      every constructor of the family (for [Q = ⌊a·sp⌋]) — this is where
      refinements shrink the obligation: [pred] on [pos] needs no [z]
      case;
    - a parameter-variable case for every component of every world of the
      context's schema whose target family matches [Q]'s, plus every
      matching projection of a concrete block in [Ψ].

    A candidate is discharged if some branch pattern has the same head, or
    if its result sort {e rigidly clashes} with [Q] (distinct constants in
    the same spine position), which is how the impossible variable cases
    of [aeq-trans]'s inner matches are dismissed. *)

open Belr_syntax
open Belr_lf
open Belr_core
open Lf

type verdict = Covered | Uncovered of string list

(** Rigid head of a normal term, if any. *)
let rec rigid_head (m : normal) : cid_const option =
  match m with
  | Root (Const c, _) -> Some c
  | Lam (_, m) -> rigid_head m
  | _ -> None

(** Do two terms rigidly clash (distinct constant heads)? *)
let clashes (m1 : normal) (m2 : normal) : bool =
  match (rigid_head m1, rigid_head m2) with
  | Some c1, Some c2 -> c1 <> c2
  | _ -> false

let spine_clashes sp1 sp2 =
  List.length sp1 = List.length sp2 && List.exists2 clashes sp1 sp2

(** The result spine of a constant's sort at family [target]. *)
let result_spine (sg : Sign.t) (c : cid_const) ~(target : srt) : spine option =
  let rec target_spine = function
    | SAtom (_, sp) | SEmbed (_, sp) -> sp
    | SPi (_, _, s) -> target_spine s
  in
  match target with
  | SAtom (s_fam, _) -> (
      match Sign.csort sg ~const:c ~family:s_fam with
      | Some (s, _) -> Some (target_spine s)
      | None -> None)
  | SEmbed (_, _) ->
      let rec typ_spine = function
        | Atom (_, sp) -> sp
        | Pi (_, _, b) -> typ_spine b
      in
      Some (typ_spine (Sign.const_entry sg c).Sign.c_typ)
  | SPi _ -> None

(** Candidate constants for an atomic scrutinee sort. *)
let constant_candidates (sg : Sign.t) (q : srt) : cid_const list =
  match q with
  | SAtom (s, _) -> Sign.constants_of_srt sg s
  | SEmbed (a, _) -> Sign.constants_of_typ sg a
  | SPi _ -> []

(** Does sort [s] target the same family as the scrutinee sort [q]
    (reading [q] through its embedding when needed)? *)
let family_matches (sg : Sign.t) (s : srt) (q : srt) : bool =
  let fam_of = function
    | SAtom (sid, _) -> `S sid
    | SEmbed (a, _) -> `T a
    | SPi _ -> `None
  in
  let rec tgt = function SPi (_, _, b) -> tgt b | s -> s in
  match (fam_of (tgt s), fam_of (tgt q)) with
  | `S s1, `S s2 -> s1 = s2
  | `T a1, `T a2 -> a1 = a2
  | `S s1, `T a2 -> (Sign.srt_entry sg s1).Sign.s_refines = a2
  | `T _, `S _ -> false (* an embedded assumption cannot inhabit a proper sort *)
  | _ -> false

(** Variable candidates: projections (world-name, component index) that
    could inhabit the scrutinee sort. *)
let variable_candidates (sg : Sign.t) (omega : Meta.mctx) (psi : Ctxs.sctx)
    (q : srt) : string list =
  let of_selem prefix (f : Ctxs.selem) =
    List.concat
      (List.mapi
         (fun k (_, s) ->
           if family_matches sg s q then
             [ Printf.sprintf "%s#%s.%d" prefix
                 (Belr_support.Name.to_string f.Ctxs.f_name)
                 (k + 1) ]
           else [])
         f.Ctxs.f_block)
  in
  let schema_cands =
    match psi.Ctxs.s_var with
    | None -> []
    | Some i -> (
        match Shift.mctx_lookup_shifted omega i with
        | Some (Meta.MDCtx (_, h)) ->
            let entry = Sign.sschema_entry sg h in
            let elems =
              if psi.Ctxs.s_promoted then
                (Sign.embed_schema sg entry.Sign.h_refines).Ctxs.h_elems
              else entry.Sign.h_elems
            in
            List.concat_map (of_selem "") elems
        | _ -> (
            (* world-bounded fallback: the context variable's schema is
               not recoverable from omega, but declared [%worlds] still
               bound what any context at this family can contain — its
               blocks are the only assumptions a variable case could
               project from *)
            let fam =
              match q with
              | SAtom (s, _) -> Some (Sign.srt_entry sg s).Sign.s_refines
              | SEmbed (a, _) -> Some a
              | SPi _ -> None
            in
            match Option.bind fam (Sign.worlds_of sg) with
            | None -> []
            | Some w ->
                List.concat_map
                  (fun b ->
                    let be = Sign.block_entry sg b in
                    List.concat
                      (List.mapi
                         (fun k (_, s) ->
                           if family_matches sg s q then
                             [ Printf.sprintf "#%s.%d" be.Sign.b_name (k + 1) ]
                           else [])
                         be.Sign.b_fields))
                  w.Sign.w_blocks))
  in
  let concrete_cands =
    List.concat_map
      (function
        | Ctxs.SCDecl (x, s) ->
            if family_matches sg s q then
              [ Belr_support.Name.to_string x ]
            else []
        | Ctxs.SCBlock (x, f, _) ->
            of_selem (Belr_support.Name.to_string x ^ ":") f)
      psi.Ctxs.s_decls
  in
  schema_cands @ concrete_cands

(** Pattern heads appearing in the branches. *)
type pat_head = Pconst of cid_const | Pproj of int (* projection index *) | Pvar

let branch_head (br : Comp.branch) : pat_head option =
  match br.Comp.br_pat with
  | Meta.MOTerm (_, Root (Const c, _)) -> Some (Pconst c)
  | Meta.MOTerm (_, Root (Proj (_, k), _)) -> Some (Pproj k)
  | Meta.MOTerm (_, Root ((BVar _ | PVar _), _)) -> Some Pvar
  | _ -> None

(** Check that the branches of a case over scrutinee sort [ms] cover the
    candidates.  [omega] is the ambient meta-context. *)
let check (sg : Sign.t) (omega : Meta.mctx) (ms : Meta.msrt)
    (branches : Comp.branch list) : verdict =
  match ms with
  | Meta.MSTerm (psi, q) ->
      let heads = List.filter_map branch_head branches in
      let missing_consts =
        List.filter_map
          (fun c ->
            if List.mem (Pconst c) heads then None
            else
              (* impossibility by rigid clash of the result spine *)
              let q_spine =
                match q with
                | SAtom (_, sp) | SEmbed (_, sp) -> sp
                | SPi _ -> []
              in
              match result_spine sg c ~target:q with
              | Some sp when spine_clashes sp q_spine -> None
              | _ -> Some (Sign.const_entry sg c).Sign.c_name)
          (constant_candidates sg q)
      in
      let var_cands = variable_candidates sg omega psi q in
      let proj_covered k =
        List.exists (function Pproj k' -> k = k' | _ -> false) heads
        || List.mem Pvar heads
      in
      let missing_vars =
        List.filter
          (fun cand ->
            (* candidate strings end in ".k" for projections *)
            match String.rindex_opt cand '.' with
            | Some i -> (
                match
                  int_of_string_opt
                    (String.sub cand (i + 1) (String.length cand - i - 1))
                with
                | Some k -> not (proj_covered k)
                | None -> not (List.mem Pvar heads))
            | None -> not (List.mem Pvar heads))
          var_cands
      in
      (match missing_consts @ missing_vars with
      | [] -> Covered
      | ms -> Uncovered ms)
  | _ -> Covered (* only boxed-term scrutinees are analyzed *)

(* ===== depth-bounded nested splitting ================================== *)

(** The totality analyzer's deep engine (DESIGN.md §S22).  Where {!check}
    compares pattern {e heads} one level deep — unsound in both
    directions for nested patterns ([z] + [s z] "covers" [nat]) — this is
    a Maranget-style usefulness computation: a case is covered iff no
    value vector is useful (matches no branch), where candidate values
    are enumerated per hole from the same refinement-aware candidate sets
    as {!check} (constants of the hole's sort family minus rigid-clash
    impossibilities, variables and projections licensed by the context's
    schema) and constant candidates open sub-holes for their argument
    sorts down to a {e depth bound}.

    Pruning keeps the enumeration honest to refinements: a candidate
    whose result spine rigidly clashes with the hole's sort is skipped
    (clashes are stable under substitution, so no instance can match),
    and a hole whose candidate set is {e empty} is uninhabitable, so any
    vector through it is impossible.  At the depth bound the analysis
    gives up ({!DGaveUp}, surfaced as W0712) rather than guess — the
    bound caps the {e skeleton} depth, so only patterns nested deeper
    than [depth] constructors are affected. *)

type deep = DCovered | DUncovered of string list | DGaveUp

exception Gave_up

(** A matrix entry: a term pattern, or a wildcard (anything matches). *)
type pat = PFlex | PTerm of normal

(** Missing-case witness skeletons. *)
type skel = KWild | KConst of string * skel list | KVar of string

let rec render_skel = function
  | KWild -> "_"
  | KVar v -> v
  | KConst (c, []) -> c
  | KConst (c, args) ->
      "(" ^ String.concat " " (c :: List.map render_skel args) ^ ")"

let c_split = Belr_support.Telemetry.counter "total.split_candidates"
let c_pruned = Belr_support.Telemetry.counter "total.pruned_cases"

(** Witnesses reported per case are truncated at this many — coverage is
    already decided by the first one. *)
let max_witnesses = 16

let rec strip_lams = function Lam (_, m) -> strip_lams m | m -> m

let pat_is_flex = function
  | PFlex -> true
  | PTerm m -> ( match strip_lams m with Root (MVar _, _) -> true | _ -> false)

let rec split_at n xs =
  if n = 0 then ([], xs)
  else
    match xs with
    | [] -> ([], [])
    | x :: tl ->
        let a, b = split_at (n - 1) tl in
        (x :: a, b)

(** Projection index of a variable candidate string (the [".k"] suffix
    convention of {!variable_candidates}). *)
let proj_index (cand : string) : int option =
  match String.rindex_opt cand '.' with
  | Some i ->
      int_of_string_opt (String.sub cand (i + 1) (String.length cand - i - 1))
  | None -> None

(** Deep coverage of one case.  [omega] is the ambient meta-context (for
    schema lookup of context variables); candidates of nested holes are
    taken relative to the scrutinee's context [psi] — argument holes of
    first-order constants live in the same context, and the binders of
    higher-order arguments are handled by head-class matching. *)
let deep_check ?(depth = 3) ?(strict = true) (sg : Sign.t)
    (omega : Meta.mctx) (ms : Meta.msrt) (branches : Comp.branch list) : deep
    =
  match ms with
  | Meta.MSTerm (psi, q0) -> (
      let rows0 =
        List.map
          (fun (b : Comp.branch) ->
            match b.Comp.br_pat with
            | Meta.MOTerm (_, m) -> [ PTerm m ]
            | _ -> [ PFlex ])
          branches
      in
      let const_name c = (Sign.const_entry sg c).Sign.c_name in
      (* argument sorts of candidate [c] at hole sort [hq] *)
      let arg_srts c hq =
        match hq with
        | SAtom (s_fam, _) -> (
            match Sign.csort sg ~const:c ~family:s_fam with
            | Some (s, _) ->
                let rec doms = function SPi (_, a, b) -> a :: doms b | _ -> [] in
                doms s
            | None -> [])
        | SEmbed _ ->
            let rec doms = function
              | Pi (_, a, b) -> Embed.typ a :: doms b
              | Atom _ -> []
            in
            doms (Sign.const_entry sg c).Sign.c_typ
        | SPi _ -> []
      in
      (* [useful holes rows] = all (truncated) value-vector skeletons
         matching no row; [] means the matrix covers the holes *)
      let rec useful (holes : (srt * int) list) (rows : pat list list) :
          skel list list =
        match holes with
        | [] -> if rows = [] then [ [] ] else []
        | (SPi (_, _, b), d) :: rest ->
            (* λ-abstraction is forced, not a split: strip the binder *)
            let rows' =
              List.map
                (function
                  | PTerm (Lam (_, m)) :: tl -> PTerm m :: tl
                  | (p :: tl) when pat_is_flex p -> PFlex :: tl
                  | row -> row)
                rows
            in
            useful ((b, d) :: rest) rows'
        | (hq, d) :: rest -> (
            let q_spine =
              match hq with SAtom (_, sp) | SEmbed (_, sp) -> sp | SPi _ -> []
            in
            let consts =
              List.filter
                (fun c ->
                  match result_spine sg c ~target:hq with
                  | Some sp when spine_clashes sp q_spine ->
                      Belr_support.Telemetry.bump c_pruned;
                      false
                  | _ -> true)
                (constant_candidates sg hq)
            in
            let vars = variable_candidates sg omega psi hq in
            Belr_support.Telemetry.add c_split
              (List.length consts + List.length vars);
            if consts = [] && vars = [] then (
              (* uninhabitable hole: no vector passes through it.  The
                 pruning is justified only when every branch pattern is
                 strict ({!Belr_analysis.Strict}) — then matching truly
                 inverts, and empty candidates mean empty values.  With a
                 non-strict pattern in play we refuse to conclude and
                 give up (unless a catch-all row covers regardless). *)
              if strict then (
                Belr_support.Telemetry.bump c_pruned;
                [])
              else if List.exists (List.for_all pat_is_flex) rows then []
              else raise Gave_up)
            else if
              not
                (List.exists
                   (fun row ->
                     match row with p :: _ -> not (pat_is_flex p) | [] -> false)
                   rows)
            then
              (* no rigid first pattern: any (existing) value works *)
              List.map (fun w -> KWild :: w) (useful rest (List.map List.tl rows))
            else if d <= 0 then
              if List.exists (List.for_all pat_is_flex) rows then []
              else raise Gave_up
            else
              let missing = ref [] in
              let push w = if List.length !missing < max_witnesses then missing := w :: !missing in
              List.iter
                (fun c ->
                  let args = arg_srts c hq in
                  let n = List.length args in
                  let rows' =
                    List.filter_map
                      (fun row ->
                        match row with
                        | p :: tl when pat_is_flex p ->
                            Some (List.init n (fun _ -> PFlex) @ tl)
                        | PTerm (Root (Const c', sp)) :: tl when c' = c ->
                            if List.length sp = n then
                              Some (List.map (fun a -> PTerm a) sp @ tl)
                            else Some (List.init n (fun _ -> PFlex) @ tl)
                        | _ -> None)
                      rows
                  in
                  let holes' = List.map (fun a -> (a, d - 1)) args @ rest in
                  List.iter
                    (fun w ->
                      let wa, wrest = split_at n w in
                      push (KConst (const_name c, wa) :: wrest))
                    (useful holes' rows'))
                consts;
              List.iter
                (fun cand ->
                  let k = proj_index cand in
                  let rows' =
                    List.filter_map
                      (fun row ->
                        match row with
                        | p :: tl when pat_is_flex p -> Some tl
                        | PTerm m :: tl -> (
                            match strip_lams m with
                            | Root (Proj (_, k'), _) ->
                                if k = Some k' then Some tl else None
                            | Root ((BVar _ | PVar _), _) -> Some tl
                            | _ -> None)
                        | _ -> None)
                      rows
                  in
                  List.iter (fun w -> push (KVar cand :: w)) (useful rest rows'))
                vars;
              List.rev !missing)
      in
      match useful [ (q0, depth) ] rows0 with
      | [] -> DCovered
      | ws ->
          DUncovered
            (List.filter_map
               (function [ w ] -> Some (render_skel w) | _ -> None)
               ws)
      | exception Gave_up -> DGaveUp)
  | _ -> DCovered (* only boxed-term scrutinees are analyzed *)

(** Deep-coverage-check a declared function: one verdict per [case]
    expression in its body, in traversal order. *)
let deep_check_rec ?(depth = 3) (sg : Sign.t) (id : cid_rec) : deep list =
  match (Sign.rec_entry sg id).Sign.r_body with
  | None -> []
  | Some body ->
      let rec prefix omega (t : Comp.ctyp) (e : Comp.exp) =
        match (t, e) with
        | Comp.CPi (x, _, ms, t'), Comp.MLam (_, e') ->
            prefix (Check_comp.mdecl_of_msrt x ms :: omega) t' e'
        | Comp.CArr (_, t'), Comp.Fn (_, _, e') -> prefix omega t' e'
        | _, _ ->
            let out = ref [] in
            let rec walk omega (e : Comp.exp) =
              match e with
              | Comp.Var _ | Comp.RecConst _ | Comp.Box _ -> ()
              | Comp.Fn (_, _, e) | Comp.MLam (_, e) | Comp.MApp (e, _) ->
                  walk omega e
              | Comp.App (a, b) ->
                  walk omega a;
                  walk omega b
              | Comp.LetBox (_, a, b) ->
                  walk omega a;
                  walk omega b
              | Comp.Case (inv, scrut, brs) ->
                  walk omega scrut;
                  List.iter
                    (fun (b : Comp.branch) ->
                      walk (b.Comp.br_mctx @ omega) b.Comp.br_body)
                    brs;
                  let strict = Belr_analysis.Strict.branches_strict brs in
                  out :=
                    deep_check ~depth ~strict sg omega inv.Comp.inv_msrt brs
                    :: !out
            in
            walk omega e;
            List.rev !out
      in
      prefix [] (Sign.rec_entry sg id).Sign.r_styp body

(** Coverage-check a declared function. *)
let check_rec (sg : Sign.t) (id : cid_rec) : (string list * int) list =
  match (Sign.rec_entry sg id).Sign.r_body with
  | None -> []
  | Some body ->
      (* walk the mlam/fn prefix building Ω from the declared sort *)
      let rec go omega (t : Comp.ctyp) (e : Comp.exp) =
        match (t, e) with
        | Comp.CPi (x, _, ms, t'), Comp.MLam (_, e') ->
            go (Check_comp.mdecl_of_msrt x ms :: omega) t' e'
        | Comp.CArr (_, t'), Comp.Fn (_, _, e') -> go omega t' e'
        | _, _ ->
            let issues = ref [] in
            let rec walk omega (e : Comp.exp) =
              match e with
              | Comp.Var _ | Comp.RecConst _ | Comp.Box _ -> ()
              | Comp.Fn (_, _, e) -> walk omega e
              | Comp.MLam (_, e) -> walk omega e
              | Comp.App (a, b) ->
                  walk omega a;
                  walk omega b
              | Comp.MApp (e, _) -> walk omega e
              | Comp.LetBox (_, a, b) ->
                  walk omega a;
                  walk omega b
              | Comp.Case (inv, scrut, brs) -> (
                  walk omega scrut;
                  List.iter
                    (fun (b : Comp.branch) ->
                      walk (b.Comp.br_mctx @ omega) b.Comp.br_body)
                    brs;
                  match check sg omega inv.Comp.inv_msrt brs with
                  | Covered -> ()
                  | Uncovered missing ->
                      issues := (missing, List.length omega) :: !issues)
            in
            walk omega e;
            !issues
      in
      go [] (Sign.rec_entry sg id).Sign.r_styp body
