(** A conservative structural termination checker — with {!Coverage}, the
    other half of the paper's §6.1 future work ("a natural next step is
    therefore to develop a coverage and termination checker for Beluga
    with refinement types").

    A Beluga proof is a total function; the paper leaves termination
    checking out of its formal system and so does our checker proper.
    This optional analysis accepts a function when every {e recursive}
    call — a call to any member of its [rec … and …;] group, including
    itself — is {e guarded}: at least one of its boxed arguments is
    headed by a pattern variable — a meta-variable bound by an enclosing
    [case] branch, hence a strict subterm of something matched.  Calls to
    previously defined functions (lemmas) are ignored.

    This validates all developments in this repository (the §2 proofs,
    the conventional baseline, [half], [strengthen]) and rejects the
    obvious cycles ([rec loop = fn d => loop d]).  It remains
    deliberately weaker than {!Sct}: it has no notion of {e which}
    argument decreases, so argument-swapping mutual recursion and
    lexicographic orders are rejected (or worse, a diverging swap
    accepted) — the size-change analysis subsumes it. *)

open Belr_syntax
open Belr_lf

type verdict = Guarded | Issues of string list

(** One argument position of a recursive call, in application order.
    Every position is recorded — a call [f e [X]] contributes
    [[AComp e; AMeta X]] — so analyses over argument {e positions}
    (size-change graphs) see computation-level arguments too, instead of
    silently dropping them. *)
type call_arg = AMeta of Meta.mobj | AComp of Comp.exp

(** During the walk we track, innermost first, whether each meta-binder in
    scope was bound by a case branch (a pattern variable). *)
type scope = bool list

let rec head_mvar : Lf.normal -> int option = function
  | Lf.Root (Lf.MVar (u, _), _) -> Some u
  | Lf.Root (_, _) -> None
  | Lf.Lam (_, m) -> head_mvar m

let mobj_pattern_headed (scope : scope) (mo : Meta.mobj) : bool =
  match mo with
  | Meta.MOTerm (_, m) -> (
      match head_mvar m with
      | Some u -> ( match List.nth_opt scope (u - 1) with
                    | Some b -> b
                    | None -> false)
      | None -> false)
  | _ -> false

(** Collect the arguments of an application chain whose head is a
    [RecConst] satisfying [in_group]; returns [None] when the head is
    something else.  All argument positions are kept, in application
    order: meta-applications and boxed computation arguments as [AMeta],
    any other computation-level argument as [AComp]. *)
let rec call_args (in_group : Lf.cid_rec -> bool) (e : Comp.exp)
    (acc : call_arg list) : call_arg list option =
  match e with
  | Comp.RecConst g when in_group g -> Some acc
  | Comp.App (e1, Comp.Box mo) -> call_args in_group e1 (AMeta mo :: acc)
  | Comp.App (e1, a) -> call_args in_group e1 (AComp a :: acc)
  | Comp.MApp (e1, mo) -> call_args in_group e1 (AMeta mo :: acc)
  | _ -> None

let check_body (sg : Sign.t) (f : Lf.cid_rec) (body : Comp.exp) : verdict =
  let issues = ref [] in
  let group = Sign.rec_group sg f in
  let in_group g = List.mem g group in
  let callee_name g = (Sign.rec_entry sg g).Sign.r_name in
  let arg_guarded scope = function
    | AMeta mo -> mobj_pattern_headed scope mo
    | AComp _ -> false
  in
  (* [in_chain] marks that the parent node already belongs to an
     application chain whose head will be analyzed at its outermost node *)
  let rec go (scope : scope) ~(in_chain : bool) (e : Comp.exp) : unit =
    (match e with
    | (Comp.App _ | Comp.MApp _) when not in_chain -> (
        match call_args in_group e [] with
        | Some args ->
            if not (List.exists (arg_guarded scope) args) then
              let rec head = function
                | Comp.App (e1, _) | Comp.MApp (e1, _) -> head e1
                | e -> e
              in
              let callee =
                match head e with
                | Comp.RecConst g -> callee_name g
                | _ -> callee_name f
              in
              issues :=
                Fmt.str
                  "a recursive call to %s passes no boxed argument headed by \
                   a pattern variable"
                  callee
                :: !issues
        | None -> ())
    | Comp.RecConst g when in_group g && not in_chain ->
        issues :=
          Fmt.str "%s refers to %s without applying it" (callee_name f)
            (callee_name g)
          :: !issues
    | _ -> ());
    match e with
    | Comp.Var _ | Comp.RecConst _ | Comp.Box _ -> ()
    | Comp.Fn (_, _, e) -> go scope ~in_chain:false e
    | Comp.MLam (_, e) -> go (false :: scope) ~in_chain:false e
    | Comp.App (e1, e2) ->
        go scope ~in_chain:true e1;
        go scope ~in_chain:false e2
    | Comp.MApp (e1, _) -> go scope ~in_chain:true e1
    | Comp.LetBox (_, e1, e2) ->
        go scope ~in_chain:false e1;
        go (false :: scope) ~in_chain:false e2
    | Comp.Case (_, scrut, brs) ->
        go scope ~in_chain:false scrut;
        List.iter
          (fun (b : Comp.branch) ->
            let n0 = List.length b.Comp.br_mctx in
            let scope' = List.init n0 (fun _ -> true) @ scope in
            go scope' ~in_chain:false b.Comp.br_body)
          brs
  in
  go [] ~in_chain:false body;
  match !issues with [] -> Guarded | is -> Issues (List.rev is)

(** Analyze a declared function. *)
let check_rec (sg : Sign.t) (id : Lf.cid_rec) : verdict =
  match (Sign.rec_entry sg id).Sign.r_body with
  | None -> Guarded
  | Some body -> check_body sg id body
