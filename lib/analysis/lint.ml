(** Orchestration for [belr lint]: run every pass over a checked
    signature and render the machine-readable report.

    The JSON report follows the [belr-lint/1] schema (validated by
    [tools/validate_json.ml] and the [@lint] alias):

    {v
    { "schema": "belr-lint/1",
      "files": ["examples/quickstart.blr"],
      "passes": [{"name": "subord", "findings": 0}, …],
      "findings": [{"code": "W0704", "severity": "warning",
                    "message": "…", "file": "…", "line": 3, "col": 0,
                    "loc": "…:3.0-8"}, …],
      "summary": {"errors": 0, "warnings": 0, "notes": 0, "bugs": 0},
      "exit_code": 0 }
    v}

    The [findings] array carries {e every} diagnostic in the sink — when
    lint runs after checking on a shared sink ([belr check --lint]), the
    checking diagnostics appear alongside the lint ones, which is the
    point: one run, one report, one exit code. *)

open Belr_support
module Sign = Belr_lf.Sign

type result = {
  lr_passes : (string * int) list;
      (** per-pass finding counts, in pass order *)
  lr_subord : Subord.t;  (** the subordination relation, for reuse *)
}

(** Run the given passes (default: all of {!Passes.all}, in registry
    order) over [sg], reporting into [sink].  Callers filter with
    {!Passes.select} ([--only] / [--skip]). *)
let run ?passes (sink : Diagnostics.sink) (sg : Sign.t) : result =
  let passes = Option.value ~default:Passes.all passes in
  Telemetry.with_span "lint" (fun () ->
      let counts = Pass.run_all passes sg sink in
      { lr_passes = counts; lr_subord = Subord.analyze sg })

let schema_id = "belr-lint/1"

let finding_json (d : Diagnostics.t) : Json.t =
  let base =
    [
      ("code", Json.String d.Diagnostics.d_code);
      ( "severity",
        Json.String (Diagnostics.severity_label d.Diagnostics.d_severity) );
      ("message", Json.String d.Diagnostics.d_message);
    ]
  in
  let loc = d.Diagnostics.d_loc in
  let pos =
    if Loc.is_ghost loc then []
    else
      [
        ("file", Json.String loc.Loc.source);
        ("line", Json.Int loc.Loc.start_pos.Loc.line);
        ("col", Json.Int loc.Loc.start_pos.Loc.col);
        ("loc", Json.String (Loc.to_string loc));
      ]
  in
  Json.Obj (base @ pos)

(** The full [belr-lint/1] report for one run. *)
let report_json ~(files : string list) (sink : Diagnostics.sink)
    (r : result) : Json.t =
  Json.Obj
    [
      ("schema", Json.String schema_id);
      ("files", Json.List (List.map (fun f -> Json.String f) files));
      ( "passes",
        Json.List
          (List.map
             (fun (name, findings) ->
               Json.Obj
                 [
                   ("name", Json.String name);
                   ("findings", Json.Int findings);
                 ])
             r.lr_passes) );
      ( "findings",
        Json.List (List.map finding_json (Diagnostics.all sink)) );
      ( "summary",
        Json.Obj
          [
            ("errors", Json.Int (Diagnostics.error_count sink));
            ("warnings", Json.Int (Diagnostics.warning_count sink));
            ("notes", Json.Int (Diagnostics.note_count sink));
            ("bugs", Json.Int (Diagnostics.bug_count sink));
          ] );
      ("exit_code", Json.Int (Diagnostics.exit_code sink));
    ]
