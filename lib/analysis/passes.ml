(** The concrete lint passes over a checked signature.

    Codes live in the lint range of the {!Belr_support.Diagnostics}
    registry:

    - [W0701] vacuous Π-dependency (subordination pass)
    - [W0702] adequacy: a constant leaves the second-order HOAS fragment
    - [W0703] empty refinement sort
    - [E0702] subsort cycle between refinement sorts
    - [W0704] unused declaration
    - [W0705] shadowed binder or duplicated context/world entry

    All passes are pure folds over {!Belr_lf.Sign} (via {!Refs} and
    {!Subord}); none re-runs checking.  Findings are located at the
    declaration that introduced the offending name, using the
    declaration-location table the processing pipeline records. *)

open Belr_support
open Belr_syntax
module Sign = Belr_lf.Sign

let c_findings = Telemetry.counter "analysis.findings"

let c_subord_pairs = Telemetry.counter "analysis.subord.pairs"

let c_decls_scanned = Telemetry.counter "analysis.decls.scanned"

let loc_of sg name =
  match Sign.decl_loc sg name with Some l -> l | None -> Loc.ghost

(** Emit one finding, located at [name]'s declaration. *)
let report :
    'a.
    Diagnostics.sink ->
    Sign.t ->
    code:string ->
    Diagnostics.severity ->
    at:string ->
    ('a, Format.formatter, unit, unit) format4 ->
    'a =
 fun sink sg ~code severity ~at fmt ->
  Format.kasprintf
    (fun msg ->
      Telemetry.bump c_findings;
      Diagnostics.emit sink
        (Diagnostics.make ~loc:(loc_of sg at) ~code severity "%s" msg))
    fmt

(* sorted for deterministic finding order *)
let by_id l = List.sort (fun (a, _) (b, _) -> compare a b) l

let binder_named x =
  let x = Name.to_string x in
  if x = "_" || x = "" then None else Some x

(* --- pass 1: subordination (and vacuous Π-dependencies) ----------------- *)

(** A named Π-binder whose variable never occurs in its scope is a vacuous
    dependency: the declaration is an arrow written as a Π.  Beyond style,
    vacuous dependencies defeat context strengthening (they keep the
    subordination relation larger than the terms require).  The leading
    [skip] implicit binders are reconstructed from occurring free
    variables and are never vacuous. *)
let vacuous_in_typ sink sg ~at ~skip ty =
  let rec go skip (ty : Lf.typ) =
    match ty with
    | Lf.Atom _ -> ()
    | Lf.Pi (x, a, b) ->
        (match binder_named x with
        | Some x when skip <= 0 && not (Refs.typ_mentions_bvar 1 b) ->
            report sink sg ~code:"W0701" Diagnostics.Warning ~at
              "vacuous Pi-dependency in %s: binder %s never occurs in its \
               scope (write the domain as an arrow, or drop it so the \
               family can be strengthened away)"
              at x
        | _ -> ());
        (* domains of implicit binders are machine-reconstructed hole
           sorts (their inner binder names are synthetic), so only
           user-written domains are checked *)
        if skip <= 0 then go 0 a;
        go (skip - 1) b
  in
  go skip ty

let vacuous_in_kind sink sg ~at ~skip k =
  let rec go skip (k : Lf.kind) =
    match k with
    | Lf.Ktype -> ()
    | Lf.Kpi (x, a, body) ->
        (match binder_named x with
        | Some x when skip <= 0 && not (Refs.kind_mentions_bvar 1 body) ->
            report sink sg ~code:"W0701" Diagnostics.Warning ~at
              "vacuous Pi-dependency in the kind of %s: binder %s never \
               occurs in its scope"
              at x
        | _ -> ());
        (* domains are ordinary types; their nested binders get the
           type-level check with no implicit prefix (skipped entirely for
           implicit binders, whose domains are machine-reconstructed) *)
        if skip <= 0 then vacuous_in_typ sink sg ~at ~skip:0 a;
        go (skip - 1) body
  in
  go skip k

let subord_pass sg sink =
  let sub = Subord.analyze sg in
  Telemetry.add c_subord_pairs (List.length (Subord.pairs sub));
  List.iter
    (fun (_, (te : Sign.typ_entry)) ->
      Telemetry.bump c_decls_scanned;
      vacuous_in_kind sink sg ~at:te.Sign.t_name ~skip:te.Sign.t_implicit
        te.Sign.t_kind)
    (by_id (Sign.all_typs sg));
  List.iter
    (fun (_, (ce : Sign.const_entry)) ->
      Telemetry.bump c_decls_scanned;
      vacuous_in_typ sink sg ~at:ce.Sign.c_name ~skip:ce.Sign.c_implicit
        ce.Sign.c_typ)
    (by_id (Sign.all_consts sg))

(* --- pass 2: adequacy (second-order HOAS fragment) ----------------------- *)

(** HOAS encodings are adequate (in bijection with the informal syntax)
    only while constant types stay second-order: domains may be function
    types over atomic families ([lam : (tm -> tm) -> tm]), but once a
    domain's domain is itself a function type whose target can embed the
    constant's own family, exotic terms appear and the bijection breaks.
    We flag occurrences of the constant's own family — or one mutually
    subordinate with it — in negative position at order ≥ 2, i.e. at an
    odd Π-domain nesting depth ≥ 3. *)
let adequacy_pass sg sink =
  let sub = Subord.analyze sg in
  List.iter
    (fun (_, (ce : Sign.const_entry)) ->
      Telemetry.bump c_decls_scanned;
      let fam = ce.Sign.c_family in
      let reported = Hashtbl.create 4 in
      let rec go depth (ty : Lf.typ) =
        match ty with
        | Lf.Atom (f, _) ->
            if
              depth >= 3
              && depth mod 2 = 1
              && (f = fam || Subord.mutual sub f fam)
              && not (Hashtbl.mem reported f)
            then begin
              Hashtbl.replace reported f ();
              report sink sg ~code:"W0702" Diagnostics.Warning
                ~at:ce.Sign.c_name
                "%s leaves the second-order HOAS fragment: family %s \
                 occurs at order %d in negative position, so the encoding \
                 admits exotic terms and its adequacy is at risk"
                ce.Sign.c_name (Sign.typ_entry sg f).Sign.t_name depth
            end
        | Lf.Pi (_, a, b) ->
            go (depth + 1) a;
            go depth b
      in
      go 0 ce.Sign.c_typ)
    (by_id (Sign.all_consts sg))

(* --- pass 3: dead / cyclic refinement sorts ------------------------------ *)

let sorts_pass sg sink =
  let srts = by_id (Sign.all_srts sg) in
  List.iter
    (fun (_, (se : Sign.srt_entry)) ->
      Telemetry.bump c_decls_scanned;
      if se.Sign.s_consts = [] then
        report sink sg ~code:"W0703" Diagnostics.Warning ~at:se.Sign.s_name
          "refinement sort %s is empty: no constant of %s was assigned a \
           sort in this family, so no closed term inhabits it"
          se.Sign.s_name
          (Sign.typ_entry sg se.Sign.s_refines).Sign.t_name)
    srts;
  (* The subsort preorder on sorts refining the same family is inclusion
     of constant sets; two distinct sorts with the same set are mutual
     subsorts — a cycle, so one of the declarations is redundant. *)
  let const_set (se : Sign.srt_entry) =
    List.sort_uniq compare se.Sign.s_consts
  in
  let rec cycles = function
    | [] -> ()
    | (_, (se1 : Sign.srt_entry)) :: rest ->
        List.iter
          (fun (_, (se2 : Sign.srt_entry)) ->
            if
              se1.Sign.s_refines = se2.Sign.s_refines
              && se1.Sign.s_consts <> []
              && const_set se1 = const_set se2
            then
              report sink sg ~code:"E0702" Diagnostics.Error
                ~at:se2.Sign.s_name
                "subsort cycle: %s and %s refine %s with identical \
                 constant sets, so each is a subsort of the other; one of \
                 the two declarations is redundant"
                se1.Sign.s_name se2.Sign.s_name
                (Sign.typ_entry sg se1.Sign.s_refines).Sign.t_name)
          rest;
        cycles rest
  in
  cycles srts

(* --- pass 4: unused declarations ----------------------------------------- *)

(** Group keys: references {e within} one declaration group (a constant
    mentioning its own target family, a sort's assigned constants
    mentioning the sort, one member of a [rec … and …] group calling
    another) do not count as uses. *)
type key =
  | KT of Lf.cid_typ
  | KS of Lf.cid_srt
  | KC of Lf.cid_const
  | KG of Lf.cid_schema
  | KH of Lf.cid_sschema
  | KR of Lf.cid_rec
  | KB of int  (** a [%block] declaration *)
  | KW of Lf.cid_typ  (** the [%worlds] declaration of a family *)

let unused_pass sg sink =
  let used : (key, unit) Hashtbl.t = Hashtbl.create 64 in
  (* one key per mutual group, so f calling its group-mate g does not
     count as a use of g *)
  let rec_key r = KR (List.fold_left min r (Sign.rec_group sg r)) in
  let group_of = function
    | Refs.RTyp a -> KT a
    | Refs.RSrt s -> KS s
    | Refs.RConst c -> KT (Sign.const_entry sg c).Sign.c_family
    | Refs.RSchema g -> KG g
    | Refs.RSschema h -> KH h
    | Refs.RRec r -> rec_key r
  in
  let key_of = function
    | Refs.RTyp a -> KT a
    | Refs.RSrt s -> KS s
    | Refs.RConst c -> KC c
    | Refs.RSchema g -> KG g
    | Refs.RSschema h -> KH h
    | Refs.RRec r -> rec_key r
  in
  let rec credit ~owner (t : Refs.target) =
    (* a use of the auto-registered trivial refinement ⌈G⌉ is a use of G *)
    (match t with
    | Refs.RSschema h ->
        let he = Sign.sschema_entry sg h in
        if he.Sign.h_hidden then credit ~owner (Refs.RSchema he.Sign.h_refines)
    | _ -> ());
    if group_of t <> owner then Hashtbl.replace used (key_of t) ()
  in
  List.iter
    (fun (a, (te : Sign.typ_entry)) ->
      Refs.iter_kind (credit ~owner:(KT a)) te.Sign.t_kind)
    (Sign.all_typs sg);
  List.iter
    (fun (c, (ce : Sign.const_entry)) ->
      ignore c;
      Refs.iter_typ (credit ~owner:(KT ce.Sign.c_family)) ce.Sign.c_typ)
    (Sign.all_consts sg);
  List.iter
    (fun (s, (se : Sign.srt_entry)) ->
      credit ~owner:(KS s) (Refs.RTyp se.Sign.s_refines);
      Refs.iter_skind (credit ~owner:(KS s)) se.Sign.s_kind)
    (Sign.all_srts sg);
  List.iter
    (fun ((c, fam), (srt, _)) ->
      credit ~owner:(KS fam) (Refs.RConst c);
      Refs.iter_srt (credit ~owner:(KS fam)) srt)
    (Sign.all_csorts sg);
  List.iter
    (fun (g, (ge : Sign.schema_entry)) ->
      List.iter (Refs.iter_elem (credit ~owner:(KG g))) ge.Sign.g_elems)
    (Sign.all_schemas sg);
  List.iter
    (fun (h, (he : Sign.sschema_entry)) ->
      if not he.Sign.h_hidden then begin
        credit ~owner:(KH h) (Refs.RSchema he.Sign.h_refines);
        List.iter (Refs.iter_selem (credit ~owner:(KH h))) he.Sign.h_elems
      end)
    (Sign.all_sschemas sg);
  List.iter
    (fun (r, (re : Sign.rec_entry)) ->
      Refs.iter_ctyp (credit ~owner:(rec_key r)) re.Sign.r_styp;
      Option.iter (Refs.iter_exp (credit ~owner:(rec_key r))) re.Sign.r_body)
    (Sign.all_recs sg);
  (* [%block] / [%worlds] declarations reference sorts and families;
     those references keep their targets live.  The declarations
     themselves are never reported — they exist to be consumed by the
     worlds analyzer (`belr worlds`), not by later declarations. *)
  List.iter
    (fun (b, (be : Sign.block_entry)) ->
      List.iter (fun (_, s) -> Refs.iter_srt (credit ~owner:(KB b)) s)
        (be.Sign.b_params @ be.Sign.b_fields))
    (Sign.all_blocks sg);
  List.iter
    (fun (we : Sign.worlds_entry) ->
      credit ~owner:(KW we.Sign.w_fam) (Refs.RTyp we.Sign.w_fam))
    (Sign.all_worlds sg);
  let is_used k = Hashtbl.mem used k in
  (* Constants are data: a constructor counts as used while its family is
     referenced anywhere (matching on the family needs every constructor),
     so only constants of entirely unreferenced families are reported. *)
  List.iter
    (fun (c, (ce : Sign.const_entry)) ->
      Telemetry.bump c_decls_scanned;
      if (not (is_used (KC c))) && not (is_used (KT ce.Sign.c_family)) then
        report sink sg ~code:"W0704" Diagnostics.Warning ~at:ce.Sign.c_name
          "constant %s is never referenced, and neither is its family %s"
          ce.Sign.c_name
          (Sign.typ_entry sg ce.Sign.c_family).Sign.t_name)
    (by_id (Sign.all_consts sg));
  List.iter
    (fun (s, (se : Sign.srt_entry)) ->
      Telemetry.bump c_decls_scanned;
      if not (is_used (KS s)) then
        report sink sg ~code:"W0704" Diagnostics.Warning ~at:se.Sign.s_name
          "refinement sort %s is never referenced by a later declaration, \
           theorem, or program"
          se.Sign.s_name)
    (by_id (Sign.all_srts sg));
  List.iter
    (fun (g, (ge : Sign.schema_entry)) ->
      Telemetry.bump c_decls_scanned;
      if not (is_used (KG g)) then
        report sink sg ~code:"W0704" Diagnostics.Warning ~at:ge.Sign.g_name
          "schema %s is never referenced by a later declaration, theorem, \
           or program"
          ge.Sign.g_name)
    (by_id (Sign.all_schemas sg));
  List.iter
    (fun (h, (he : Sign.sschema_entry)) ->
      Telemetry.bump c_decls_scanned;
      if (not he.Sign.h_hidden) && not (is_used (KH h)) then
        report sink sg ~code:"W0704" Diagnostics.Warning ~at:he.Sign.h_name
          "refinement schema %s is never referenced by a later \
           declaration, theorem, or program"
          he.Sign.h_name)
    (by_id (Sign.all_sschemas sg))

(* --- pass 5: shadowing / name hygiene ------------------------------------ *)

let shadow_pass sg sink =
  (* duplicate warnings for the same entity/name pair are folded *)
  let seen = Hashtbl.create 16 in
  let once key (emit : unit -> unit) =
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      emit ()
    end
  in
  let shadow_binder ~at ~what x =
    once (at, "b:" ^ x) (fun () ->
        report sink sg ~code:"W0705" Diagnostics.Warning ~at
          "binder %s in %s shadows an enclosing binder of the same name"
          x what)
  in
  let dup_entry ~at ~what x =
    once (at, "d:" ^ x) (fun () ->
        report sink sg ~code:"W0705" Diagnostics.Warning ~at
          "%s binds %s more than once; the later entry shadows the earlier"
          what x)
  in
  let rec typ_binders ~at ~what env (ty : Lf.typ) =
    match ty with
    | Lf.Atom _ -> ()
    | Lf.Pi (x, a, b) ->
        let env' =
          match binder_named x with
          | Some x ->
              if List.mem x env then shadow_binder ~at ~what x;
              x :: env
          | None -> env
        in
        typ_binders ~at ~what env a;
        typ_binders ~at ~what env' b
  in
  let rec kind_binders ~at ~what env (k : Lf.kind) =
    match k with
    | Lf.Ktype -> ()
    | Lf.Kpi (x, a, body) ->
        let env' =
          match binder_named x with
          | Some x ->
              if List.mem x env then shadow_binder ~at ~what x;
              x :: env
          | None -> env
        in
        typ_binders ~at ~what env a;
        kind_binders ~at ~what env' body
  in
  let world_names ~at ~what params fields =
    ignore
      (List.fold_left
         (fun env (x, _) ->
           match binder_named x with
           | Some x ->
               if List.mem x env then dup_entry ~at ~what x;
               x :: env
           | None -> env)
         [] (params @ fields))
  in
  let check_sctx ~at ~what (psi : Ctxs.sctx) =
    ignore
      (List.fold_left
         (fun env x ->
           match binder_named x with
           | Some x ->
               if List.mem x env then dup_entry ~at ~what x;
               x :: env
           | None -> env)
         []
         (List.rev (Ctxs.sctx_names psi)))
  in
  let msrt_ctxs ~at (ms : Meta.msrt) =
    match ms with
    | Meta.MSTerm (psi, _) ->
        check_sctx ~at ~what:(Fmt.str "a context in the type of %s" at) psi
    | Meta.MSSub (psi1, psi2) ->
        check_sctx ~at ~what:(Fmt.str "a context in the type of %s" at) psi1;
        check_sctx ~at ~what:(Fmt.str "a context in the type of %s" at) psi2
    | Meta.MSCtx _ -> ()
    | Meta.MSParam (psi, _, _) ->
        check_sctx ~at ~what:(Fmt.str "a context in the type of %s" at) psi
  in
  List.iter
    (fun (_, (te : Sign.typ_entry)) ->
      Telemetry.bump c_decls_scanned;
      kind_binders ~at:te.Sign.t_name
        ~what:(Fmt.str "the kind of %s" te.Sign.t_name)
        [] te.Sign.t_kind)
    (by_id (Sign.all_typs sg));
  List.iter
    (fun (_, (ce : Sign.const_entry)) ->
      Telemetry.bump c_decls_scanned;
      typ_binders ~at:ce.Sign.c_name
        ~what:(Fmt.str "the type of %s" ce.Sign.c_name)
        [] ce.Sign.c_typ)
    (by_id (Sign.all_consts sg));
  List.iter
    (fun (_, (ge : Sign.schema_entry)) ->
      Telemetry.bump c_decls_scanned;
      List.iter
        (fun (e : Ctxs.elem) ->
          world_names ~at:ge.Sign.g_name
            ~what:
              (Fmt.str "world %s of schema %s"
                 (Name.to_string e.Ctxs.e_name)
                 ge.Sign.g_name)
            e.Ctxs.e_params e.Ctxs.e_block)
        ge.Sign.g_elems)
    (by_id (Sign.all_schemas sg));
  List.iter
    (fun (_, (he : Sign.sschema_entry)) ->
      if not he.Sign.h_hidden then begin
        Telemetry.bump c_decls_scanned;
        List.iter
          (fun (e : Ctxs.selem) ->
            world_names ~at:he.Sign.h_name
              ~what:
                (Fmt.str "world %s of refinement schema %s"
                   (Name.to_string e.Ctxs.f_name)
                   he.Sign.h_name)
              e.Ctxs.f_params e.Ctxs.f_block)
          he.Sign.h_elems
      end)
    (by_id (Sign.all_sschemas sg));
  List.iter
    (fun (_, (re : Sign.rec_entry)) ->
      Telemetry.bump c_decls_scanned;
      let at = re.Sign.r_name in
      let what = Fmt.str "the type of %s" at in
      let rec ctyp_binders env (t : Comp.ctyp) =
        match t with
        | Comp.CBox ms -> msrt_ctxs ~at ms
        | Comp.CArr (t1, t2) ->
            ctyp_binders env t1;
            ctyp_binders env t2
        | Comp.CPi (x, _, ms, body) ->
            let env' =
              match binder_named x with
              | Some x ->
                  if List.mem x env then shadow_binder ~at ~what x;
                  x :: env
              | None -> env
            in
            msrt_ctxs ~at ms;
            ctyp_binders env' body
      in
      ctyp_binders [] re.Sign.r_styp)
    (by_id (Sign.all_recs sg))

(* --- the registry --------------------------------------------------------- *)

let all : Pass.t list =
  [
    {
      Pass.p_name = "subord";
      p_doc =
        "subordination relation between type families; vacuous \
         Pi-dependencies (W0701)";
      p_run = subord_pass;
    };
    {
      Pass.p_name = "adequacy";
      p_doc = "second-order HOAS fragment / adequacy of encodings (W0702)";
      p_run = adequacy_pass;
    };
    {
      Pass.p_name = "sorts";
      p_doc = "empty refinement sorts (W0703) and subsort cycles (E0702)";
      p_run = sorts_pass;
    };
    {
      Pass.p_name = "unused";
      p_doc = "declarations never referenced downstream (W0704)";
      p_run = unused_pass;
    };
    {
      Pass.p_name = "shadowing";
      p_doc = "shadowed binders and duplicated context entries (W0705)";
      p_run = shadow_pass;
    };
  ]

(** Resolve the [--only] / [--skip] pass-name filters against the
    registry.  An unknown name is a hard error (never a silent no-op
    filter), naming the offender and the valid set. *)
let select ?(only = []) ?(skip = []) () : (Pass.t list, string) result =
  let known = List.map (fun p -> p.Pass.p_name) all in
  match List.find_opt (fun n -> not (List.mem n known)) (only @ skip) with
  | Some n ->
      Result.Error
        (Printf.sprintf "unknown lint pass %s (expected one of: %s)" n
           (String.concat ", " known))
  | None ->
      Result.Ok
        (List.filter
           (fun p ->
             (only = [] || List.mem p.Pass.p_name only)
             && not (List.mem p.Pass.p_name skip))
           all)
