(** Signature-reference traversals shared by the analysis passes.

    Every syntax class of the internal language gets a total [iter_*]
    visitor that calls a callback on each signature reference it contains
    — type and sort families, constants, (refinement) schemas, and
    computation-level functions.  The subordination analysis and the
    unused-declaration pass are both folds over these visitors, so the
    "what counts as a reference" question is answered in exactly one
    place.

    The traversals are deliberately defensive: they accept any
    syntactically possible term (delayed substitutions under meta- and
    parameter variables, [Undef] fronts), even shapes that checked
    signature entries cannot contain, because the lint passes also run
    over signatures recovered from partially failed inputs. *)

open Belr_syntax

(** One reference out of a declaration into the signature. *)
type target =
  | RTyp of Lf.cid_typ
  | RSrt of Lf.cid_srt
  | RConst of Lf.cid_const
  | RSchema of Lf.cid_schema
  | RSschema of Lf.cid_sschema
  | RRec of Lf.cid_rec

(* --- LF terms ---------------------------------------------------------- *)

let rec iter_head f (h : Lf.head) =
  match h with
  | Lf.Const c -> f (RConst c)
  | Lf.BVar _ -> ()
  | Lf.PVar (_, s) -> iter_sub f s
  | Lf.Proj (h, _) -> iter_head f h
  | Lf.MVar (_, s) -> iter_sub f s

and iter_normal f (m : Lf.normal) =
  match m with
  | Lf.Lam (_, body) -> iter_normal f body
  | Lf.Root (h, sp) ->
      iter_head f h;
      List.iter (iter_normal f) sp

and iter_front f (fr : Lf.front) =
  match fr with
  | Lf.Obj m -> iter_normal f m
  | Lf.Tup ms -> List.iter (iter_normal f) ms
  | Lf.Undef -> ()

and iter_sub f (s : Lf.sub) =
  match s with
  | Lf.Empty | Lf.Shift _ -> ()
  | Lf.Dot (fr, s) ->
      iter_front f fr;
      iter_sub f s

(* --- LF types, kinds, sorts, sort kinds -------------------------------- *)

let rec iter_typ f (ty : Lf.typ) =
  match ty with
  | Lf.Atom (a, sp) ->
      f (RTyp a);
      List.iter (iter_normal f) sp
  | Lf.Pi (_, a, b) ->
      iter_typ f a;
      iter_typ f b

let rec iter_kind f (k : Lf.kind) =
  match k with
  | Lf.Ktype -> ()
  | Lf.Kpi (_, a, k) ->
      iter_typ f a;
      iter_kind f k

let rec iter_srt f (s : Lf.srt) =
  match s with
  | Lf.SAtom (q, sp) ->
      f (RSrt q);
      List.iter (iter_normal f) sp
  | Lf.SEmbed (a, sp) ->
      f (RTyp a);
      List.iter (iter_normal f) sp
  | Lf.SPi (_, s1, s2) ->
      iter_srt f s1;
      iter_srt f s2

let rec iter_skind f (l : Lf.skind) =
  match l with
  | Lf.Ksort -> ()
  | Lf.Kspi (_, s, l) ->
      iter_srt f s;
      iter_skind f l

(* --- blocks, schema elements, contexts --------------------------------- *)

let iter_elem f (e : Ctxs.elem) =
  List.iter (fun (_, t) -> iter_typ f t) e.Ctxs.e_params;
  List.iter (fun (_, t) -> iter_typ f t) e.Ctxs.e_block

let iter_selem f (e : Ctxs.selem) =
  List.iter (fun (_, s) -> iter_srt f s) e.Ctxs.f_params;
  List.iter (fun (_, s) -> iter_srt f s) e.Ctxs.f_block

let iter_ctx f (g : Ctxs.ctx) =
  List.iter
    (function
      | Ctxs.CDecl (_, t) -> iter_typ f t
      | Ctxs.CBlock (_, e, ms) ->
          iter_elem f e;
          List.iter (iter_normal f) ms)
    g.Ctxs.c_decls

let iter_sctx f (psi : Ctxs.sctx) =
  List.iter
    (function
      | Ctxs.SCDecl (_, s) -> iter_srt f s
      | Ctxs.SCBlock (_, e, ms) ->
          iter_selem f e;
          List.iter (iter_normal f) ms)
    psi.Ctxs.s_decls

(* --- contextual layer --------------------------------------------------- *)

let iter_msrt f (ms : Meta.msrt) =
  match ms with
  | Meta.MSTerm (psi, s) ->
      iter_sctx f psi;
      iter_srt f s
  | Meta.MSSub (psi1, psi2) ->
      iter_sctx f psi1;
      iter_sctx f psi2
  | Meta.MSCtx h -> f (RSschema h)
  | Meta.MSParam (psi, e, ms) ->
      iter_sctx f psi;
      iter_selem f e;
      List.iter (iter_normal f) ms

let iter_mtyp f (mt : Meta.mtyp) =
  match mt with
  | Meta.MTTerm (g, t) ->
      iter_ctx f g;
      iter_typ f t
  | Meta.MTSub (g1, g2) ->
      iter_ctx f g1;
      iter_ctx f g2
  | Meta.MTCtx g -> f (RSchema g)
  | Meta.MTParam (g, e, ms) ->
      iter_ctx f g;
      iter_elem f e;
      List.iter (iter_normal f) ms

let iter_mobj f (mo : Meta.mobj) =
  match mo with
  | Meta.MOTerm (_, m) -> iter_normal f m
  | Meta.MOSub (_, s) -> iter_sub f s
  | Meta.MOCtx psi -> iter_sctx f psi
  | Meta.MOParam (_, h) -> iter_head f h

let iter_mdecl f (d : Meta.mdecl) =
  match d with
  | Meta.MDTerm (_, psi, s) ->
      iter_sctx f psi;
      iter_srt f s
  | Meta.MDSub (_, psi1, psi2) ->
      iter_sctx f psi1;
      iter_sctx f psi2
  | Meta.MDCtx (_, h) -> f (RSschema h)
  | Meta.MDParam (_, psi, e, ms) ->
      iter_sctx f psi;
      iter_selem f e;
      List.iter (iter_normal f) ms

(* --- computation level --------------------------------------------------- *)

let rec iter_ctyp f (t : Comp.ctyp) =
  match t with
  | Comp.CBox ms -> iter_msrt f ms
  | Comp.CArr (t1, t2) ->
      iter_ctyp f t1;
      iter_ctyp f t2
  | Comp.CPi (_, _, ms, t) ->
      iter_msrt f ms;
      iter_ctyp f t

let rec iter_exp f (e : Comp.exp) =
  match e with
  | Comp.Var _ -> ()
  | Comp.RecConst r -> f (RRec r)
  | Comp.Box mo -> iter_mobj f mo
  | Comp.Fn (_, topt, body) ->
      Option.iter (iter_ctyp f) topt;
      iter_exp f body
  | Comp.App (e1, e2) ->
      iter_exp f e1;
      iter_exp f e2
  | Comp.MLam (_, body) -> iter_exp f body
  | Comp.MApp (e, mo) ->
      iter_exp f e;
      iter_mobj f mo
  | Comp.LetBox (_, e1, e2) ->
      iter_exp f e1;
      iter_exp f e2
  | Comp.Case (inv, scrut, brs) ->
      List.iter (iter_mdecl f) inv.Comp.inv_mctx;
      iter_msrt f inv.Comp.inv_msrt;
      iter_ctyp f inv.Comp.inv_body;
      iter_exp f scrut;
      List.iter
        (fun (b : Comp.branch) ->
          List.iter (iter_mdecl f) b.Comp.br_mctx;
          iter_mobj f b.Comp.br_pat;
          iter_exp f b.Comp.br_body)
        brs

(* --- de Bruijn occurrence checks ---------------------------------------- *)

(** Does bound variable [i] (1-based, relative to where the query starts)
    occur in the term/type?  Used by the vacuous-Π warning: a binder whose
    index-1 variable never occurs in the body is an arrow in disguise. *)
let rec head_mentions_bvar i (h : Lf.head) =
  match h with
  | Lf.Const _ -> false
  | Lf.BVar j -> j = i
  | Lf.PVar (_, s) -> sub_mentions_bvar i s
  | Lf.Proj (h, _) -> head_mentions_bvar i h
  | Lf.MVar (_, s) -> sub_mentions_bvar i s

and normal_mentions_bvar i (m : Lf.normal) =
  match m with
  | Lf.Lam (_, body) -> normal_mentions_bvar (i + 1) body
  | Lf.Root (h, sp) ->
      head_mentions_bvar i h || List.exists (normal_mentions_bvar i) sp

and front_mentions_bvar i (fr : Lf.front) =
  match fr with
  | Lf.Obj m -> normal_mentions_bvar i m
  | Lf.Tup ms -> List.exists (normal_mentions_bvar i) ms
  | Lf.Undef -> false

and sub_mentions_bvar i (s : Lf.sub) =
  match s with
  | Lf.Empty | Lf.Shift _ -> false
  | Lf.Dot (fr, s) -> front_mentions_bvar i fr || sub_mentions_bvar i s

let rec typ_mentions_bvar i (ty : Lf.typ) =
  match ty with
  | Lf.Atom (_, sp) -> List.exists (normal_mentions_bvar i) sp
  | Lf.Pi (_, a, b) -> typ_mentions_bvar i a || typ_mentions_bvar (i + 1) b

let rec kind_mentions_bvar i (k : Lf.kind) =
  match k with
  | Lf.Ktype -> false
  | Lf.Kpi (_, a, k) -> typ_mentions_bvar i a || kind_mentions_bvar (i + 1) k
