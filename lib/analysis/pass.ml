(** The reusable analysis-pass framework behind [belr lint].

    A pass is a named analysis over a checked signature that reports its
    findings through the shared {!Belr_support.Diagnostics.sink} — the
    same sink the checking pipeline used, so one run yields one unified,
    deduplicated diagnostic stream and one exit code.

    Passes run under {!Belr_support.Diagnostics.recover}: a crashing pass
    becomes a [B0002] bug diagnostic (exit code 2), never a lost run, and
    the remaining passes still execute.  Each pass is timed under a
    [lint:<name>] telemetry span so [--stats]/[--profile] break analysis
    time down per pass. *)

open Belr_support

type t = {
  p_name : string;  (** short stable name, e.g. ["subord"] *)
  p_doc : string;  (** one-line description for [-v] listings *)
  p_run : Belr_lf.Sign.t -> Diagnostics.sink -> unit;
}

let findings_so_far sink =
  Diagnostics.error_count sink + Diagnostics.warning_count sink

(** Run every pass in order over [sg], emitting into [sink]; returns the
    per-pass finding counts (errors + warnings attributed to that pass),
    in pass order.  {!Diagnostics.Stop} (the [--max-errors] cap)
    propagates to the caller, as in the checking pipeline. *)
let run_all (passes : t list) (sg : Belr_lf.Sign.t)
    (sink : Diagnostics.sink) : (string * int) list =
  List.map
    (fun p ->
      let before = findings_so_far sink in
      Telemetry.with_span ("lint:" ^ p.p_name) (fun () ->
          ignore (Diagnostics.recover sink (fun () -> p.p_run sg sink)));
      (p.p_name, findings_so_far sink - before))
    passes
