(** Subordination between LF type families.

    [a ≼ b] ("[a] is subordinate to [b]") holds when terms of family [a]
    can appear inside terms — or inside the types of terms — of family
    [b].  The relation is generated from the declared signature exactly as
    in Twelf/Beluga:

    - for every constant [c : Πx₁:A₁…Πxₙ:Aₙ. b·M⃗], each domain
      contributes [target(Aᵢ) ≼ b], recursively inside the [Aᵢ]
      (a domain [Πy:B.C] nested anywhere contributes
      [target(B) ≼ target(C)]);
    - for every family [b : Πx:A.K], the index domains contribute
      [target(A) ≼ b];
    - families of constants appearing in index terms [M⃗] of an atomic
      type [a·M⃗] are subordinate to [a];

    closed under reflexivity and transitivity.

    The result is the precondition for context strengthening: a
    declaration [x:A] can be pruned from the context of a term of family
    [b] whenever [target(A) ⋠ b].  This module only {e computes} the
    relation (the strengthening optimization is future work, see
    ROADMAP.md); the lint layer warns about vacuous dependencies and uses
    mutual subordination for the adequacy check. *)

open Belr_syntax
module Sign = Belr_lf.Sign

type t = {
  so_ids : Lf.cid_typ array;  (** position → family id, sorted ascending *)
  so_pos : (Lf.cid_typ, int) Hashtbl.t;  (** family id → position *)
  so_rel : bool array array;
      (** [so_rel.(i).(j)]: family at position [i] ≼ family at position [j] *)
}

(** The generating edges [(a, b)] (meaning [a ≼ b]) read off the
    signature, {e before} the reflexive-transitive closure.  Exposed so
    the test suite can cross-check {!analyze} against a brute-force
    closure over the same edge set. *)
let direct_edges (sg : Sign.t) : (Lf.cid_typ * Lf.cid_typ) list =
  let edges = ref [] in
  let add a b = edges := (a, b) :: !edges in
  (* families of constants used in the index terms of an atomic type
     headed by [into] *)
  let spine_families into sp =
    List.iter
      (Refs.iter_normal (function
        | Refs.RConst c -> add (Sign.const_entry sg c).Sign.c_family into
        | _ -> ()))
      sp
  in
  let rec typ_edges (ty : Lf.typ) =
    match ty with
    | Lf.Atom (a, sp) -> spine_families a sp
    | Lf.Pi (_, a, b) ->
        add (Lf.typ_target a) (Lf.typ_target b);
        typ_edges a;
        typ_edges b
  in
  let rec kind_edges into (k : Lf.kind) =
    match k with
    | Lf.Ktype -> ()
    | Lf.Kpi (_, a, k) ->
        add (Lf.typ_target a) into;
        typ_edges a;
        kind_edges into k
  in
  List.iter
    (fun (a, (te : Sign.typ_entry)) -> kind_edges a te.Sign.t_kind)
    (Sign.all_typs sg);
  List.iter
    (fun (_, (ce : Sign.const_entry)) -> typ_edges ce.Sign.c_typ)
    (Sign.all_consts sg);
  !edges

(** Compute the reflexive-transitive subordination relation of a
    signature (Floyd–Warshall over the family set; signatures are small). *)
let analyze (sg : Sign.t) : t =
  let fams = List.sort compare (List.map fst (Sign.all_typs sg)) in
  let so_ids = Array.of_list fams in
  let n = Array.length so_ids in
  let so_pos = Hashtbl.create (max 16 n) in
  Array.iteri (fun i a -> Hashtbl.replace so_pos a i) so_ids;
  let rel = Array.init n (fun i -> Array.init n (fun j -> i = j)) in
  List.iter
    (fun (a, b) ->
      match (Hashtbl.find_opt so_pos a, Hashtbl.find_opt so_pos b) with
      | Some i, Some j -> rel.(i).(j) <- true
      | _ -> ())
    (direct_edges sg);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if rel.(i).(k) then
        for j = 0 to n - 1 do
          if rel.(k).(j) then rel.(i).(j) <- true
        done
    done
  done;
  { so_ids; so_pos; so_rel = rel }

(** [leq t a b]: is [a ≼ b]?  Unknown families are only related to
    themselves. *)
let leq (t : t) (a : Lf.cid_typ) (b : Lf.cid_typ) : bool =
  match (Hashtbl.find_opt t.so_pos a, Hashtbl.find_opt t.so_pos b) with
  | Some i, Some j -> t.so_rel.(i).(j)
  | _ -> a = b

(** Mutual subordination [a ≼ b ∧ b ≼ a] — the families' terms can nest
    inside each other, so neither can be strengthened away from the
    other's contexts. *)
let mutual (t : t) a b = leq t a b && leq t b a

(** All families the relation was computed over. *)
let families (t : t) : Lf.cid_typ list = Array.to_list t.so_ids

(** Families downstream of [seeds]: every [b] with [a ≼ b] for some seed
    [a] (including the seeds themselves — the relation is reflexive).
    When a seed declaration changes, these are exactly the families whose
    terms or types can contain seed material, i.e. the invalidation
    frontier of the incremental checker ([belr serve]). *)
let dependents (t : t) (seeds : Lf.cid_typ list) : Lf.cid_typ list =
  List.filter
    (fun b -> List.exists (fun a -> leq t a b) seeds)
    (families t)

(** [dependents] without the closure: forward reachability over
    {!direct_edges} from the seed set, O(V+E) instead of the O(V³)
    Floyd–Warshall of {!analyze}.  Equivalent to
    [dependents (analyze sg) seeds]; this is the form the incremental
    checker calls once per request, where the cubic closure would
    dominate the whole warm re-check. *)
let dependents_of (sg : Sign.t) (seeds : Lf.cid_typ list) : Lf.cid_typ list
    =
  let succs : (Lf.cid_typ, Lf.cid_typ list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (a, b) ->
      let old = Option.value (Hashtbl.find_opt succs a) ~default:[] in
      Hashtbl.replace succs a (b :: old))
    (direct_edges sg);
  let seen : (Lf.cid_typ, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec visit a =
    if not (Hashtbl.mem seen a) then begin
      Hashtbl.replace seen a ();
      List.iter visit (Option.value (Hashtbl.find_opt succs a) ~default:[])
    end
  in
  List.iter visit seeds;
  List.sort compare (Hashtbl.fold (fun a () acc -> a :: acc) seen [])

(** The non-reflexive pairs [(a, b)] with [a ≼ b] and [a ≠ b], in a
    deterministic order. *)
let pairs (t : t) : (Lf.cid_typ * Lf.cid_typ) list =
  let out = ref [] in
  let n = Array.length t.so_ids in
  for i = n - 1 downto 0 do
    for j = n - 1 downto 0 do
      if i <> j && t.so_rel.(i).(j) then
        out := (t.so_ids.(i), t.so_ids.(j)) :: !out
    done
  done;
  !out

(** Render the non-reflexive part of the relation, one [a =< b] line per
    pair, using the signature's family names. *)
let pp (sg : Sign.t) ppf (t : t) =
  match pairs t with
  | [] -> Fmt.pf ppf "subordination: no cross-family dependencies@."
  | ps ->
      Fmt.pf ppf "subordination (a =< b: a-terms occur in b-terms):@.";
      List.iter
        (fun (a, b) ->
          Fmt.pf ppf "  %s =< %s@." (Sign.typ_entry sg a).Sign.t_name
            (Sign.typ_entry sg b).Sign.t_name)
        ps
