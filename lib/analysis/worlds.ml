(** Regular-worlds checking (Twelf-style [%block] / [%worlds]
    declarations; DESIGN.md §S25).

    A [%worlds (b₁ | … | bₙ) fam;] declaration bounds the contexts at
    which LF family [fam] may be used: every context is built from the
    empty context by adding instances of the declared blocks.  The
    checker verifies the bound per declared function, distinguishing
    {e where a context is used} from {e where it flows}:

    - a context written at a box [\[Ψ ⊢ S\]] hosts exactly the family of
      [S] — its added telescope is checked against that family's worlds;
    - a context {e passed} at a call site (a context argument), and the
      elements of every schema the function's context variables range
      over, reach every family any transitively-called function boxes —
      those telescopes are checked against the worlds of each such
      family, with the call path as witness.

    Subsumption of a telescope by a world is {e tiling}: the telescope,
    restricted to the fields that matter to [fam], must decompose as a
    concatenation of declared block instances (likewise restricted).
    Two quotients apply before comparing:

    - {e refinement subsorting}: fields are erased to type-level
      skeletons ([SAtom q ↦ Atom (q ⊑ a)], [SEmbed a ↦ Atom a]), so a
      block declared over types covers any refinement of the same
      underlying shape;
    - {e subordination strengthening} ({!Subord.leq}): fields whose
      target family cannot occur in [fam]-terms are dropped from both
      sides.  Dropping interior fields is sound because the relation is
      transitively closed: a relevant field cannot depend on an
      irrelevant one (if [u] occurred in relevant [t], then
      [u ≤ tgt(t) ≤ fam] would make [u] relevant too).

    Diagnostics (through the {!Belr_support.Diagnostics} registry):

    - [E0720] (error): a context telescope not tiled by the declared
      worlds of a family it reaches, with the appeal path as witness;
    - [W0721] (warning): a context telescope reaches a family that has
      no [%worlds] declaration at all;
    - [W0722] (warning): a non-strict pattern meta-variable
      ({!Strict}) — the branch's coverage verdict rests on a heuristic.

    Each phase runs under a [worlds:<pass>] telemetry span; the report
    follows the [belr-worlds/1] schema (validated by
    [tools/validate_json.ml] under the [@worlds] alias). *)

open Belr_support
open Belr_syntax
module Sign = Belr_lf.Sign

let c_exts = Telemetry.counter "worlds.extensions"
let c_pairs = Telemetry.counter "worlds.checked_pairs"

(* --- erasure ------------------------------------------------------------ *)

(** Erase a field sort to its type-level skeleton: subsumption for worlds
    is up to refinement subsorting, so a sort field and its underlying
    type stand for the same context shape. *)
let rec erase_srt (sg : Sign.t) (s : Lf.srt) : Lf.typ =
  match s with
  | Lf.SEmbed (a, sp) -> Lf.mk_atom a sp
  | Lf.SAtom (q, sp) -> Lf.mk_atom (Sign.srt_entry sg q).Sign.s_refines sp
  | Lf.SPi (x, s1, s2) -> Lf.mk_pi x (erase_srt sg s1) (erase_srt sg s2)

let erase_fields (sg : Sign.t) (fields : Ctxs.sblock) : Lf.typ list =
  List.map (fun (_, s) -> erase_srt sg s) fields

(** The type family a sort's target erases to. *)
let fam_of_srt (sg : Sign.t) (s : Lf.srt) : Lf.cid_typ =
  Lf.typ_target (erase_srt sg s)

(* --- strengthening ------------------------------------------------------ *)

(** The fields of a telescope that matter to [fam]-terms.  A field whose
    target family [b] satisfies [b ⋠ fam] can never occur in a term of
    family [fam], so its presence or absence in the context is invisible
    to [fam].  Relevant fields never depend on dropped ones (see the
    module comment), so filtering keeps the telescope meaningful. *)
let relevant (sub : Subord.t) ~(fam : Lf.cid_typ) (fields : Lf.typ list) :
    Lf.typ list =
  List.filter (fun t -> Subord.leq sub (Lf.typ_target t) fam) fields

(* --- tiling ------------------------------------------------------------- *)

(** Block fields are compared carrying [off], the number of block fields
    that precede them: a field's de Bruijn indices [1..off] (at depth 0)
    refer to those earlier fields, and anything beyond refers to the
    block's parameter telescope ([%block b = {A:tp} block (…)]), since
    blocks are closed otherwise. *)

(** Does the block-side term mention a block parameter? *)
let rec mentions_param ~off d (m : Lf.normal) : bool =
  match m with
  | Lf.Lam (_, n) -> mentions_param ~off (d + 1) n
  | Lf.Root (h, sp) ->
      head_param ~off d h || List.exists (mentions_param ~off d) sp

and head_param ~off d = function
  | Lf.BVar i -> i > d + off
  | Lf.Proj (h, _) -> head_param ~off d h
  | Lf.Const _ | Lf.PVar _ | Lf.MVar _ -> false

(** Does extension field [et] match block field [bt] (at offset [off])?
    Structural, except that a block-side spine argument mentioning a
    block parameter matches any extension-side argument: the tiling
    instantiates the parameter there.  (Twelf unifies instead; accepting
    each parameter occurrence independently is a sound-for-warnings
    approximation that never {e rejects} a Twelf-acceptable tiling.)
    Hash-consing makes structural [=] on the rigid remainder exact. *)
let match_field ~off (bt : Lf.typ) (et : Lf.typ) : bool =
  let arg d (bm : Lf.normal) (em : Lf.normal) =
    mentions_param ~off d bm || bm = em
  in
  let rec typ d (bt : Lf.typ) (et : Lf.typ) =
    match (bt, et) with
    | Lf.Atom (a, sp1), Lf.Atom (b, sp2) ->
        a = b
        && List.length sp1 = List.length sp2
        && List.for_all2 (arg d) sp1 sp2
    | Lf.Pi (_, a1, b1), Lf.Pi (_, a2, b2) ->
        typ d a1 a2 && typ (d + 1) b1 b2
    | _ -> false
  in
  typ 0 bt et

(** Can [tele] be decomposed as a concatenation of the given block field
    lists (each field paired with its original offset in its block)? *)
let tiles ~(blocks : (int * Lf.typ) list list) (tele : Lf.typ list) : bool =
  let arr = Array.of_list tele in
  let n = Array.length arr in
  let memo = Array.make (n + 1) `Unknown in
  let rec go i =
    if i = n then true
    else
      match memo.(i) with
      | `Known b -> b
      | `Unknown ->
          let matches fb =
            let k = List.length fb in
            k > 0 && i + k <= n
            && (let j = ref i in
                List.for_all
                  (fun (off, f) ->
                    let ok = match_field ~off f arr.(!j) in
                    incr j;
                    ok)
                  fb)
            && go (i + k)
          in
          let b = List.exists matches blocks in
          memo.(i) <- `Known b;
          b
  in
  go 0

(* --- context-extension collection --------------------------------------- *)

(** A context telescope, erased to type level, outermost field first.
    [x_desc] renders the source for diagnostics. *)
type ext = { x_desc : string; x_fields : Lf.typ list }

(** What a function exposes to the worlds discipline. *)
type collected = {
  c_direct : (ext * Lf.cid_typ) list;
      (** telescope written at a box, paired with the boxed family *)
  c_flow : ext list;  (** context arguments at calls ([MOCtx]) *)
  c_schema : ext list;  (** elements of referenced context schemas *)
  c_boxed : Lf.cid_typ list;  (** families this function boxes at *)
}

(** The added telescope of a context: every entry beyond the (optional)
    context variable, outermost first, blocks flattened to their
    fields. *)
let telescope (sg : Sign.t) (psi : Ctxs.sctx) : ext option =
  if psi.Ctxs.s_decls = [] then None
  else
    let entries = List.rev psi.Ctxs.s_decls in
    let descs, fieldss =
      List.split
        (List.map
           (function
             | Ctxs.SCDecl (x, s) ->
                 (Name.to_string x, [ erase_srt sg s ])
             | Ctxs.SCBlock (x, e, _ms) ->
                 ( Printf.sprintf "%s : %s" (Name.to_string x)
                     (Name.to_string e.Ctxs.f_name),
                   erase_fields sg e.Ctxs.f_block ))
           entries)
    in
    Some
      { x_desc = String.concat ", " descs; x_fields = List.concat fieldss }

(** Collect the worlds-relevant shape of one function from its declared
    sort and body. *)
let collect (sg : Sign.t) (re : Sign.rec_entry) : collected =
  let direct = ref [] in
  let flow = ref [] in
  let schema_exts = ref [] in
  let boxed = ref [] in
  let seen_schemas = ref [] in
  let pair psi fam =
    boxed := fam :: !boxed;
    match telescope sg psi with
    | Some x -> direct := (x, fam) :: !direct
    | None -> ()
  in
  let entry_fams (psi : Ctxs.sctx) : Lf.cid_typ list =
    List.concat_map
      (function
        | Ctxs.SCDecl (_, s) -> [ fam_of_srt sg s ]
        | Ctxs.SCBlock (_, e, _) ->
            List.map (fun (_, s) -> fam_of_srt sg s) e.Ctxs.f_block)
      psi.Ctxs.s_decls
  in
  let schema (h : Lf.cid_sschema) =
    if not (List.mem h !seen_schemas) then begin
      seen_schemas := h :: !seen_schemas;
      let he = Sign.sschema_entry sg h in
      List.iter
        (fun (e : Ctxs.selem) ->
          let fields = erase_fields sg e.Ctxs.f_block in
          if fields <> [] then
            schema_exts :=
              {
                x_desc =
                  Printf.sprintf "schema %s element %s" he.Sign.h_name
                    (Name.to_string e.Ctxs.f_name);
                x_fields = fields;
              }
              :: !schema_exts)
        he.Sign.h_elems
    end
  in
  let msrt (ms : Meta.msrt) =
    match ms with
    | Meta.MSTerm (psi, s) -> pair psi (fam_of_srt sg s)
    | Meta.MSSub (psi1, psi2) ->
        (* a substitution's fronts are terms over the range's sorts,
           formed in the domain context *)
        List.iter (pair psi2) (entry_fams psi1);
        List.iter (pair psi1) (entry_fams psi1)
    | Meta.MSCtx h -> schema h
    | Meta.MSParam (psi, e, _ms) ->
        List.iter (pair psi)
          (List.map (fun (_, s) -> fam_of_srt sg s) e.Ctxs.f_block)
  in
  let mdecl (d : Meta.mdecl) =
    match d with
    | Meta.MDTerm (_, psi, s) -> pair psi (fam_of_srt sg s)
    | Meta.MDSub (_, psi1, psi2) ->
        List.iter (pair psi2) (entry_fams psi1);
        List.iter (pair psi1) (entry_fams psi1)
    | Meta.MDCtx (_, h) -> schema h
    | Meta.MDParam (_, psi, e, _ms) ->
        List.iter (pair psi)
          (List.map (fun (_, s) -> fam_of_srt sg s) e.Ctxs.f_block)
  in
  let mobj (mo : Meta.mobj) =
    match mo with
    | Meta.MOCtx psi -> (
        match telescope sg psi with
        | Some x -> flow := x :: !flow
        | None -> ())
    | Meta.MOTerm _ | Meta.MOSub _ | Meta.MOParam _ -> ()
  in
  let rec ctyp = function
    | Comp.CBox ms -> msrt ms
    | Comp.CArr (t1, t2) -> ctyp t1; ctyp t2
    | Comp.CPi (_, _, ms, t) -> msrt ms; ctyp t
  in
  let rec exp = function
    | Comp.Var _ | Comp.RecConst _ -> ()
    | Comp.Box mo -> mobj mo
    | Comp.Fn (_, topt, e) ->
        Option.iter ctyp topt;
        exp e
    | Comp.App (e1, e2) | Comp.LetBox (_, e1, e2) -> exp e1; exp e2
    | Comp.MLam (_, e) -> exp e
    | Comp.MApp (e, mo) -> exp e; mobj mo
    | Comp.Case (inv, scrut, brs) ->
        List.iter mdecl inv.Comp.inv_mctx;
        msrt inv.Comp.inv_msrt;
        ctyp inv.Comp.inv_body;
        exp scrut;
        List.iter
          (fun (b : Comp.branch) ->
            List.iter mdecl b.Comp.br_mctx;
            mobj b.Comp.br_pat;
            exp b.Comp.br_body)
          brs
  in
  ctyp re.Sign.r_styp;
  Option.iter exp re.Sign.r_body;
  {
    c_direct = List.rev !direct;
    c_flow = List.rev !flow;
    c_schema = List.rev !schema_exts;
    c_boxed = List.sort_uniq compare !boxed;
  }

(* --- call reachability -------------------------------------------------- *)

(** Functions reachable from [f] through at least one call edge, each
    with the (minimal) call path [f; …; g] that reaches it.  [f] itself
    appears when it is recursive. *)
let reachable_callees (cg : Callgraph.t) (f : Lf.cid_rec) :
    (Lf.cid_rec * Lf.cid_rec list) list =
  let parent : (Lf.cid_rec, Lf.cid_rec) Hashtbl.t = Hashtbl.create 16 in
  let dist : (Lf.cid_rec, int) Hashtbl.t = Hashtbl.create 16 in
  let queue = Queue.create () in
  List.iter
    (fun (s : Callgraph.site) ->
      let g = s.Callgraph.cs_callee in
      if not (Hashtbl.mem dist g) then begin
        Hashtbl.replace dist g 1;
        Hashtbl.replace parent g f;
        Queue.add g queue
      end)
    (Callgraph.sites_of cg f);
  let out = ref [] in
  while not (Queue.is_empty queue) do
    let g = Queue.pop queue in
    let rec up g acc =
      if g = f && acc <> [] then f :: acc
      else
        match Hashtbl.find_opt parent g with
        | Some p when p <> g -> up p (g :: acc)
        | _ -> g :: acc
    in
    out := (g, up g []) :: !out;
    List.iter
      (fun (s : Callgraph.site) ->
        let h = s.Callgraph.cs_callee in
        if not (Hashtbl.mem dist h) then begin
          Hashtbl.replace dist h (Hashtbl.find dist g + 1);
          Hashtbl.replace parent h g;
          Queue.add h queue
        end)
      (Callgraph.sites_of cg g)
  done;
  List.rev !out

(* --- the check ----------------------------------------------------------- *)

type fn_report = {
  wf_id : Lf.cid_rec;
  wf_name : string;
  wf_exts : int;  (** distinct telescopes collected *)
  wf_fams : int;  (** (telescope, family) pairs checked *)
  wf_violations : int;  (** E0720 findings *)
  wf_undeclared : int;  (** W0721 findings *)
  wf_nonstrict : int;  (** W0722 findings (non-strict pattern variables) *)
}

type result = {
  wr_fns : fn_report list;  (** ascending id (declaration) order *)
  wr_blocks : int;  (** [%block] declarations in the signature *)
  wr_worlds : int;  (** [%worlds] declarations in the signature *)
}

let empty_result = { wr_fns = []; wr_blocks = 0; wr_worlds = 0 }

let rec_loc sg id =
  Option.value ~default:Loc.ghost
    (Sign.decl_loc sg (Sign.rec_entry sg id).Sign.r_name)

(** Run the worlds checker over every declared function, reporting
    through [sink].  [check_strict] additionally runs the
    strict-occurrence pass ({!Strict}) over every case branch.  Analysis
    failures on a recovered (partially checked) signature are contained
    per function. *)
let run ?(check_strict = true) (sink : Diagnostics.sink) (sg : Sign.t) :
    result =
  Telemetry.with_span "worlds" (fun () ->
      let typ_names = Hashtbl.create 32 in
      List.iter
        (fun (a, (te : Sign.typ_entry)) ->
          Hashtbl.replace typ_names a te.Sign.t_name)
        (Sign.all_typs sg);
      let names a =
        match Hashtbl.find_opt typ_names a with
        | Some n -> n
        | None -> "#" ^ string_of_int a
      in
      let sub =
        Telemetry.with_span "worlds:subord" (fun () -> Subord.analyze sg)
      in
      let cg =
        Telemetry.with_span "worlds:callgraph" (fun () -> Callgraph.analyze sg)
      in
      let rec_name id =
        match Sign.rec_entry_opt sg id with
        | Some re -> re.Sign.r_name
        | None -> "#" ^ string_of_int id
      in
      (* the restricted block field lists of a family's declared worlds,
         memoized per family *)
      let world_tiles
          : (Lf.cid_typ, (string * (int * Lf.typ) list) list option) Hashtbl.t
          =
        Hashtbl.create 16
      in
      let tiles_of fam =
        match Hashtbl.find_opt world_tiles fam with
        | Some t -> t
        | None ->
            let t =
              Option.map
                (fun (w : Sign.worlds_entry) ->
                  List.filter_map
                    (fun b ->
                      let be = Sign.block_entry sg b in
                      (* offsets are assigned before the relevance
                         filter: dropped fields still occupy binder
                         indices in the kept ones *)
                      match
                        List.filter
                          (fun (_, t) ->
                            Subord.leq sub (Lf.typ_target t) fam)
                          (List.mapi
                             (fun j t -> (j, t))
                             (erase_fields sg be.Sign.b_fields))
                      with
                      | [] -> None
                      | fs -> Some (be.Sign.b_name, fs))
                    w.Sign.w_blocks)
                (Sign.worlds_of sg fam)
            in
            Hashtbl.replace world_tiles fam t;
            t
      in
      let check_fn (id, fname) =
        let loc = rec_loc sg id in
        let re = Sign.rec_entry sg id in
        let c =
          Telemetry.with_span "worlds:collect" (fun () -> collect sg re)
        in
        Telemetry.add c_exts
          (List.length c.c_direct + List.length c.c_flow
          + List.length c.c_schema);
        (* assemble the (telescope, family, witness) obligations:
           box-local pairs, schema content against the function's own
           boxed families, and flowed telescopes against every family a
           transitive callee boxes *)
        let obligations = ref [] in
        let seen = Hashtbl.create 32 in
        let add x fam path =
          let key = (x.x_fields, fam) in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.replace seen key ();
            obligations := (x, fam, path) :: !obligations
          end
        in
        List.iter (fun (x, fam) -> add x fam [ id ]) c.c_direct;
        List.iter (fun x -> List.iter (fun fam -> add x fam [ id ]) c.c_boxed)
          c.c_schema;
        List.iter
          (fun (g, path) ->
            match Sign.rec_entry_opt sg g with
            | None -> ()
            | Some ge ->
                let gc = collect sg ge in
                List.iter
                  (fun fam ->
                    List.iter
                      (fun x -> add x fam path)
                      (c.c_flow @ c.c_schema))
                  gc.c_boxed)
          (reachable_callees cg id);
        let violations = ref 0 in
        let undeclared = ref 0 in
        let checked = ref 0 in
        Telemetry.with_span "worlds:subsume" (fun () ->
            List.iter
              (fun (x, fam, path) ->
                match relevant sub ~fam x.x_fields with
                | [] -> ()  (* nothing [fam] can see: trivially subsumed *)
                | tele -> (
                    incr checked;
                    Telemetry.bump c_pairs;
                    let witness =
                      String.concat " -> "
                        (List.map rec_name path @ [ names fam ])
                    in
                    match tiles_of fam with
                    | None ->
                        incr undeclared;
                        Diagnostics.emit sink
                          (Diagnostics.make ~loc ~code:"W0721"
                             Diagnostics.Warning
                             "%s extends contexts reaching %s (e.g. %s), \
                              but %s has no %%worlds declaration (appeal \
                              path: %s)"
                             fname (names fam) x.x_desc (names fam) witness)
                    | Some blocks ->
                        if not (tiles ~blocks:(List.map snd blocks) tele)
                        then begin
                          incr violations;
                          Diagnostics.emit sink
                            (Diagnostics.make ~loc ~code:"E0720"
                               Diagnostics.Error
                               "context extension %s in %s is not subsumed \
                                by the declared worlds of %s (%s) (appeal \
                                path: %s)"
                               x.x_desc fname (names fam)
                               (if blocks = [] then "no relevant block"
                                else
                                  String.concat " | " (List.map fst blocks))
                               witness)
                        end))
              (List.rev !obligations));
        let nonstrict = ref 0 in
        if check_strict then
          Telemetry.with_span "worlds:strict" (fun () ->
              List.iteri
                (fun case_i offenders ->
                  List.iter
                    (fun (branch_i, _pos, x) ->
                      incr nonstrict;
                      Diagnostics.emit sink
                        (Diagnostics.make ~loc ~code:"W0722"
                           Diagnostics.Warning
                           "pattern variable %s in branch %d of case %d of \
                            %s has no strict occurrence: coverage of this \
                            case is heuristic"
                           x (branch_i + 1) (case_i + 1) fname))
                    offenders)
                (Strict.rec_nonstrict sg id));
        {
          wf_id = id;
          wf_name = fname;
          wf_exts =
            List.length c.c_direct + List.length c.c_flow
            + List.length c.c_schema;
          wf_fams = !checked;
          wf_violations = !violations;
          wf_undeclared = !undeclared;
          wf_nonstrict = !nonstrict;
        }
      in
      let fns =
        List.filter_map
          (fun (id, fname) ->
            Diagnostics.recover sink ~loc:(rec_loc sg id) ~code:"E0201"
              (fun () -> check_fn (id, fname)))
          cg.Callgraph.cg_recs
      in
      {
        wr_fns = fns;
        wr_blocks = List.length (Sign.all_blocks sg);
        wr_worlds = List.length (Sign.all_worlds sg);
      })

(* --- report ------------------------------------------------------------- *)

let schema_id = "belr-worlds/1"

let clean (f : fn_report) =
  f.wf_violations = 0 && f.wf_undeclared = 0 && f.wf_nonstrict = 0

let fn_json (f : fn_report) : Json.t =
  Json.Obj
    [
      ("name", Json.String f.wf_name);
      ("extensions", Json.Int f.wf_exts);
      ("families", Json.Int f.wf_fams);
      ("violations", Json.Int f.wf_violations);
      ("undeclared", Json.Int f.wf_undeclared);
      ("nonstrict", Json.Int f.wf_nonstrict);
      ("clean", Json.Bool (clean f));
    ]

(** The full [belr-worlds/1] report for one run; [finding] entries reuse
    the [belr-lint/1] finding shape. *)
let report_json ~(files : string list) (sink : Diagnostics.sink) (r : result)
    : Json.t =
  Json.Obj
    [
      ("schema", Json.String schema_id);
      ("files", Json.List (List.map (fun f -> Json.String f) files));
      ("functions", Json.List (List.map fn_json r.wr_fns));
      ( "signature",
        Json.Obj
          [
            ("blocks", Json.Int r.wr_blocks);
            ("worlds", Json.Int r.wr_worlds);
          ] );
      ("findings", Json.List (List.map Lint.finding_json (Diagnostics.all sink)));
      ( "summary",
        Json.Obj
          [
            ("errors", Json.Int (Diagnostics.error_count sink));
            ("warnings", Json.Int (Diagnostics.warning_count sink));
            ("notes", Json.Int (Diagnostics.note_count sink));
            ("bugs", Json.Int (Diagnostics.bug_count sink));
          ] );
      ("exit_code", Json.Int (Diagnostics.exit_code sink));
    ]
