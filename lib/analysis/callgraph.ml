(** Call-graph extraction with per-call-site size-change information —
    the front half of the totality analyzer (DESIGN.md §S22).

    For every declared [rec] with a checked body we collect each call to
    a declared [rec] (same group or not) as a {!site} carrying a set of
    size-change {!edge}s: [(i, Lt, j)] when the [j]-th actual argument of
    the call is a {e strict} subterm of the caller's [i]-th formal
    argument, [(i, Le, j)] when it is (an instance of) the formal itself.
    Argument positions index {e all} argument positions of the declared
    comp sort, [CPi] and [CArr] alike, in application order — the §2
    proofs scrutinize computation-level (boxed) hypotheses, so restricting
    to meta-positions would blind the analysis to every real descent.

    Size information flows through {e origins}: walking a body we know,
    for each meta- and comp-binder in scope, whether its value is bounded
    by some formal argument ([Arg (i, rel)]) or unknown ([Opaque]).  The
    leading [mlam]/[fn] prefix seeds formals at [Le]; a [case] branch
    composes the scrutinee's origin with the position of each pattern
    variable inside the branch pattern (at the pattern's head modulo
    λ-abstraction: [Le]; properly inside: [Lt]); [let box] propagates the
    origin of variable-like right-hand sides.  Meta-variable occurrences
    count only under {e variable-like} substitutions (shifts and dots of
    variables, projections, and tuples thereof — e.g. the §2 calls
    [M'[.., b.1]]): under an arbitrary substitution the instantiation of
    [u] need not be a subterm of [u[σ]] once hereditary substitution
    reduces, so such occurrences yield no edge.

    Everything here is conservative: a missing edge can only make the
    size-change analysis ({!Belr_comp.Sct}, which consumes this graph)
    reject a terminating function, never accept a diverging one. *)

open Belr_syntax
open Belr_lf

(** Size relation of an actual argument to a formal: strictly smaller, or
    no larger. *)
type rel = Lt | Le

type edge = { e_src : int; e_rel : rel; e_dst : int }

(** One syntactic call site [caller → callee]. *)
type site = {
  cs_caller : Lf.cid_rec;
  cs_callee : Lf.cid_rec;
  cs_index : int;  (** ordinal of this site within the caller's body *)
  cs_edges : edge list;  (** normalized: sorted, strongest relation kept *)
}

type t = {
  cg_recs : (Lf.cid_rec * string) list;  (** analyzed functions, by id *)
  cg_sites : site list;  (** in (caller id, site ordinal) order *)
}

let rel_compose r1 r2 = if r1 = Lt || r2 = Lt then Lt else Le

(* --- normalized edge sets -------------------------------------------- *)

(** Sort and deduplicate, keeping the strongest relation per (src, dst)
    pair — [Lt] sorts before [Le] (declaration order), so the first of a
    run wins. *)
let normalize_edges (es : edge list) : edge list =
  let sorted =
    List.sort
      (fun a b -> compare (a.e_src, a.e_dst, a.e_rel) (b.e_src, b.e_dst, b.e_rel))
      es
  in
  let rec dedup = function
    | a :: (b :: _ as rest) when a.e_src = b.e_src && a.e_dst = b.e_dst ->
        dedup (a :: List.tl rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup sorted

(* --- variable-like LF objects ---------------------------------------- *)

(** A substitution is variable-like when it maps variables to (η-expanded
    applications of) variables, projections, or tuples of such — then
    [|u[σ]| ≥ |u|] for any instantiation of [u], so subterm relations
    survive it. *)
let rec var_like_head : Lf.head -> bool = function
  | Lf.BVar _ -> true
  | Lf.Proj (h, _) -> var_like_head h
  | Lf.PVar (_, s) -> var_like_sub s
  | Lf.MVar _ | Lf.Const _ -> false

and var_like_normal : Lf.normal -> bool = function
  | Lf.Lam (_, m) -> var_like_normal m
  | Lf.Root (h, sp) -> var_like_head h && List.for_all var_like_normal sp

and var_like_front : Lf.front -> bool = function
  | Lf.Obj m -> var_like_normal m
  | Lf.Tup ms -> List.for_all var_like_normal ms
  | Lf.Undef -> false

and var_like_sub : Lf.sub -> bool = function
  | Lf.Empty -> true
  | Lf.Shift _ -> true
  | Lf.Dot (f, s) -> var_like_front f && var_like_sub s

(* --- pattern structure ----------------------------------------------- *)

(** Relate each meta-variable of a branch pattern to the whole pattern:
    [u ↦ Le] when the pattern {e is} [u] (modulo λ-abstraction,
    η-expansion, and a variable-like substitution), [u ↦ Lt] when [u]
    occurs properly inside; [Lt] wins over [Le] on multiple occurrences
    (matching forces the same value, and the strict occurrence bounds
    it).  Only [MVar]s count: parameter variables name whole context
    blocks, which are not subterms of their own projections. *)
let pattern_rels (pat : Lf.normal) : (int, rel) Hashtbl.t =
  let tbl = Hashtbl.create 8 in
  let note u r =
    match Hashtbl.find_opt tbl u with
    | Some Lt -> ()
    | _ -> Hashtbl.replace tbl u r
  in
  let rec strict_normal : Lf.normal -> unit = function
    | Lf.Lam (_, m) -> strict_normal m
    | Lf.Root (h, sp) ->
        strict_head h;
        List.iter strict_normal sp
  and strict_head : Lf.head -> unit = function
    | Lf.MVar (u, s) -> if var_like_sub s then note u Lt
    | Lf.Proj (h, _) -> strict_head h
    | Lf.BVar _ | Lf.PVar _ | Lf.Const _ -> ()
  in
  let rec top : Lf.normal -> unit = function
    | Lf.Lam (_, m) -> top m
    | Lf.Root (Lf.MVar (u, s), sp) when var_like_sub s ->
        (* [λx⃗. u[σ] x⃗]: the pattern is [u] itself (η) *)
        if List.for_all var_like_normal sp then note u Le
        else (
          note u Le;
          List.iter strict_normal sp)
    | Lf.Root (h, sp) ->
        strict_head h;
        List.iter strict_normal sp
  in
  top pat;
  tbl

(* --- origins ---------------------------------------------------------- *)

(** What a binder's value is known to be bounded by: the caller's formal
    argument [i] (strictly below it for [Arg (i, Lt)]), or nothing. *)
type origin = Arg of int * rel | Opaque

type env = {
  mscope : origin list;  (** meta-binders, innermost first (index 1 = head) *)
  cscope : origin list;  (** comp-binders, innermost first *)
}

let lookup scope i =
  match List.nth_opt scope (i - 1) with Some o -> o | None -> Opaque

(** Origin of a contextual object: an (η- and substitution-moderated)
    occurrence of a meta-variable in scope, or a bare context variable. *)
let mobj_origin (env : env) (mo : Meta.mobj) : origin =
  match mo with
  | Meta.MOTerm (_, m) -> (
      let rec strip = function Lf.Lam (_, m) -> strip m | m -> m in
      match strip m with
      | Lf.Root (Lf.MVar (u, s), sp)
        when var_like_sub s && List.for_all var_like_normal sp ->
          lookup env.mscope u
      | _ -> Opaque)
  | Meta.MOCtx psi when psi.Ctxs.s_decls = [] -> (
      (* a bare context variable (possibly promoted, [ψ^]: same context) *)
      match psi.Ctxs.s_var with
      | Some i -> lookup env.mscope i
      | None -> Opaque)
  | Meta.MOParam (_, Lf.PVar (p, s)) when var_like_sub s -> lookup env.mscope p
  | _ -> Opaque

let exp_origin (env : env) (e : Comp.exp) : origin =
  match e with
  | Comp.Var i -> lookup env.cscope i
  | Comp.Box mo -> mobj_origin env mo
  | _ -> Opaque

(* --- body walk -------------------------------------------------------- *)

type call_arg = CAMeta of Meta.mobj | CAComp of Comp.exp

(** Decompose an application chain into head and arguments in application
    order. *)
let rec chain (e : Comp.exp) (acc : call_arg list) : Comp.exp * call_arg list =
  match e with
  | Comp.App (e1, Comp.Box mo) -> chain e1 (CAMeta mo :: acc)
  | Comp.App (e1, a) -> chain e1 (CAComp a :: acc)
  | Comp.MApp (e1, mo) -> chain e1 (CAMeta mo :: acc)
  | _ -> (e, acc)

let sites_of_body ~(is_rec : Lf.cid_rec -> bool) ~(arity : Lf.cid_rec -> int)
    (caller : Lf.cid_rec) (caller_arity : int) (body : Comp.exp) : site list =
  let sites = ref [] in
  let n_sites = ref 0 in
  let record env callee (args : call_arg list) =
    let edges = ref [] in
    List.iteri
      (fun j arg ->
        if j < arity callee then
          let o =
            match arg with
            | CAMeta mo -> mobj_origin env mo
            | CAComp e -> exp_origin env e
          in
          match o with
          | Arg (i, r) when i < caller_arity ->
              edges := { e_src = i; e_rel = r; e_dst = j } :: !edges
          | _ -> ())
      args;
    let idx = !n_sites in
    incr n_sites;
    sites :=
      {
        cs_caller = caller;
        cs_callee = callee;
        cs_index = idx;
        cs_edges = normalize_edges !edges;
      }
      :: !sites
  in
  let rec go (env : env) ~(in_chain : bool) (e : Comp.exp) : unit =
    (match e with
    | (Comp.App _ | Comp.MApp _) when not in_chain -> (
        match chain e [] with
        | Comp.RecConst g, args when is_rec g -> record env g args
        | _ -> ())
    | Comp.RecConst g when is_rec g && not in_chain ->
        (* a bare reference (higher-order use): a possible call about
           which we know nothing — an edge-free site, so any cycle
           through it is conservatively rejected *)
        record env g []
    | _ -> ());
    match e with
    | Comp.Var _ | Comp.RecConst _ | Comp.Box _ -> ()
    | Comp.Fn (_, _, e) -> go { env with cscope = Opaque :: env.cscope } ~in_chain:false e
    | Comp.MLam (_, e) -> go { env with mscope = Opaque :: env.mscope } ~in_chain:false e
    | Comp.App (e1, e2) ->
        go env ~in_chain:true e1;
        go env ~in_chain:false e2
    | Comp.MApp (e1, _) -> go env ~in_chain:true e1
    | Comp.LetBox (_, e1, e2) ->
        go env ~in_chain:false e1;
        let o = exp_origin env e1 in
        go { env with mscope = o :: env.mscope } ~in_chain:false e2
    | Comp.Case (_, scrut, brs) ->
        go env ~in_chain:false scrut;
        let o = exp_origin env scrut in
        List.iter
          (fun (b : Comp.branch) ->
            let n0 = List.length b.Comp.br_mctx in
            let rels =
              match b.Comp.br_pat with
              | Meta.MOTerm (_, m) -> pattern_rels m
              | _ -> Hashtbl.create 1
            in
            let entry u =
              match (Hashtbl.find_opt rels u, o) with
              | Some r, Arg (i, r0) -> Arg (i, rel_compose r0 r)
              | _ -> Opaque
            in
            let env' =
              { env with mscope = List.init n0 (fun k -> entry (k + 1)) @ env.mscope }
            in
            go env' ~in_chain:false b.Comp.br_body)
          brs
  in
  (* seed the formal parameters from the λ-prefix; an argument position
     whose binder is taken by an inner (non-prefix) abstraction never
     becomes a formal *)
  let rec prefix k env e =
    if k >= caller_arity then go env ~in_chain:false e
    else
      match e with
      | Comp.MLam (_, e') ->
          prefix (k + 1) { env with mscope = Arg (k, Le) :: env.mscope } e'
      | Comp.Fn (_, _, e') ->
          prefix (k + 1) { env with cscope = Arg (k, Le) :: env.cscope } e'
      | _ -> go env ~in_chain:false e
  in
  prefix 0 { mscope = []; cscope = [] } body;
  List.rev !sites

(* --- whole-signature analysis ----------------------------------------- *)

let analyze (sg : Sign.t) : t =
  let recs =
    List.sort compare
      (List.filter_map
         (fun (id, (e : Sign.rec_entry)) ->
           match e.Sign.r_body with Some _ -> Some (id, e) | None -> None)
         (Sign.all_recs sg))
  in
  let arities = Hashtbl.create 16 in
  List.iter
    (fun (id, (e : Sign.rec_entry)) ->
      Hashtbl.replace arities id (Comp.ctyp_arity e.Sign.r_styp))
    recs;
  let is_rec id = Hashtbl.mem arities id in
  let arity id = match Hashtbl.find_opt arities id with Some n -> n | None -> 0 in
  let sites =
    List.concat_map
      (fun (id, (e : Sign.rec_entry)) ->
        match e.Sign.r_body with
        | Some body -> sites_of_body ~is_rec ~arity id (arity id) body
        | None -> [])
      recs
  in
  {
    cg_recs = List.map (fun (id, (e : Sign.rec_entry)) -> (id, e.Sign.r_name)) recs;
    cg_sites = sites;
  }

let sites_of (cg : t) (f : Lf.cid_rec) : site list =
  List.filter (fun s -> s.cs_caller = f) cg.cg_sites

(* --- strongly connected components ------------------------------------ *)

(** Tarjan's SCC algorithm over the call graph, returned in reverse
    topological order (callees before callers); each component's members
    are in ascending id order.  Deterministic for a fixed signature. *)
let sccs (cg : t) : Lf.cid_rec list list =
  let nodes = List.map fst cg.cg_recs in
  let succs = Hashtbl.create 16 in
  List.iter
    (fun (s : site) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt succs s.cs_caller) in
      if not (List.mem s.cs_callee cur) then
        Hashtbl.replace succs s.cs_caller (s.cs_callee :: cur))
    cg.cg_sites;
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strong v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then (
          strong w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w)))
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (List.filter
         (fun w -> List.mem_assoc w cg.cg_recs)
         (Option.value ~default:[] (Hashtbl.find_opt succs v)));
    if Hashtbl.find lowlink v = Hashtbl.find index v then
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      let comp = pop [] in
      out := List.sort compare comp :: !out
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strong v) nodes;
  List.rev !out
