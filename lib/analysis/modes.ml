(** Mode & uniqueness analysis (Twelf-style [%mode] declarations;
    DESIGN.md §S27).

    A [%mode fam +M … -N;] declaration assigns a {e mode} to a judgment
    family: [+] positions are inputs the caller must supply ground
    (variable-free after instantiation), [-] positions are outputs the
    judgment promises to ground.  A declaration may name a sort family;
    it is then keyed under the refined type family ([s ⊑ a] shares one
    mode per erased judgment) but checked against the {e sort} family's
    sharper clause set — which is what makes algorithmic equality
    ([aeq ⊑ deq]) modable even though the declarative system it refines
    (with symmetry and transitivity) is not.

    Checking is a groundness dataflow over each clause of a moded
    family, descending through its Π-telescope with the whnf closure
    API.  The lattice per clause is the powerset of its telescope
    variables ordered by inclusion; the transfer function is premise
    scheduling:

    - the ground set is seeded with every variable occurring in an input
      position of the clause head (the conclusion);
    - a premise (a non-dependent telescope domain, or any domain whose
      target family is moded) is {e schedulable} once the variables of
      its input arguments are ground — local binders of a higher-order
      premise count as ground, and nested assumption atoms of moded
      families must have ground inputs but produce nothing;
    - scheduling a premise grounds the variables of its output arguments
      and the premise variable itself (its derivation is constructed);
    - premises are scheduled to a fixpoint, i.e. in {e any} solvable
      order — this is Twelf's mode-respecting reordering of subgoals;
    - a domain whose target family has no [%mode] is handled leniently
      (all its variables are assumed ground) and reported once.

    Soundness of the verdict rests on the subordination relation
    ({!Subord.leq}): a telescope variable whose domain's target family
    is not subordinate to the judgment family can never occur in any
    atom of the clause, so it is exempt from groundness obligations
    (pruning irrelevant positions such as proof-irrelevant packaging).

    The uniqueness pass compares clauses pairwise (Maranget-style rigid
    constructor clashes, as in {!Belr_comp.Coverage}): two clauses whose
    input fragments do {e not} rigidly clash can fire on the same query,
    so rigidly {e clashing} outputs mean the judgment is not a partial
    function of its inputs.

    Diagnostics (through the {!Belr_support.Diagnostics} registry):

    - [E0730] (error): an ill-moded clause — some premise can never be
      scheduled, with the stuck input variable as witness;
    - [E0731] (error): a clause cannot ground an output position of its
      conclusion;
    - [W0732] (warning): a judgment family reachable from a moded clause
      or from a declared [rec] has no [%mode] declaration;
    - [W0733] (warning): overlapping inputs with divergent rigid outputs.

    Each phase runs under a [modes:<pass>] telemetry span; the report
    follows the [belr-modes/1] schema (validated by
    [tools/validate_json.ml] under the [@modes] alias). *)

open Belr_support
open Belr_syntax
module Sign = Belr_lf.Sign
module Whnf = Belr_lf.Whnf
module ISet = Set.Make (Int)

let c_clauses = Telemetry.counter "modes.clauses"
let c_premises = Telemetry.counter "modes.premises"
let c_pairs = Telemetry.counter "modes.checked_pairs"

(* --- erasure ------------------------------------------------------------ *)

(** Erase a clause sort to its type-level skeleton ([SAtom q ↦ Atom (q ⊑
    a)], [SEmbed a ↦ Atom a]): a sort-level [%mode] is checked on the
    sort family's clauses, but premise families resolve — like the mode
    key itself — at the type level. *)
let rec erase_srt (sg : Sign.t) (s : Lf.srt) : Lf.typ =
  match s with
  | Lf.SEmbed (a, sp) -> Lf.mk_atom a sp
  | Lf.SAtom (q, sp) -> Lf.mk_atom (Sign.srt_entry sg q).Sign.s_refines sp
  | Lf.SPi (x, s1, s2) -> Lf.mk_pi x (erase_srt sg s1) (erase_srt sg s2)

(* --- free telescope variables ------------------------------------------- *)

(** Free clause-telescope variables of a term, as absolute 0-based
    indices (outermost binder = 0).  [depth] telescope binders and [d]
    local binders are in scope, so [BVar i] refers to telescope binder
    [depth - (i - d)] exactly when [d < i <= d + depth]. *)
let rec fv_normal ~depth d (m : Lf.normal) (acc : ISet.t) : ISet.t =
  match m with
  | Lf.Lam (_, n) -> fv_normal ~depth (d + 1) n acc
  | Lf.Root (h, sp) ->
      List.fold_left
        (fun acc n -> fv_normal ~depth d n acc)
        (fv_head ~depth d h acc) sp

and fv_head ~depth d (h : Lf.head) (acc : ISet.t) : ISet.t =
  match h with
  | Lf.BVar i when i > d && i - d <= depth -> ISet.add (depth - (i - d)) acc
  | Lf.BVar _ | Lf.Const _ -> acc
  | Lf.Proj (h, _) -> fv_head ~depth d h acc
  | Lf.PVar (_, s) | Lf.MVar (_, s) ->
      (* cannot occur in a constant's (closed, canonical) type; kept for
         totality over the shared term syntax *)
      fv_sub ~depth d s acc

and fv_sub ~depth d (s : Lf.sub) (acc : ISet.t) : ISet.t =
  match s with
  | Lf.Empty | Lf.Shift _ -> acc
  | Lf.Dot (Lf.Obj m, s) -> fv_sub ~depth d s (fv_normal ~depth d m acc)
  | Lf.Dot (Lf.Tup ms, s) ->
      fv_sub ~depth d s
        (List.fold_left (fun acc m -> fv_normal ~depth d m acc) acc ms)
  | Lf.Dot (Lf.Undef, s) -> fv_sub ~depth d s acc

let rec fv_typ ~depth d (t : Lf.typ) (acc : ISet.t) : ISet.t =
  match t with
  | Lf.Atom (_, sp) ->
      List.fold_left (fun acc m -> fv_normal ~depth d m acc) acc sp
  | Lf.Pi (_, a, b) -> fv_typ ~depth (d + 1) b (fv_typ ~depth d a acc)

(* --- rigid clashes (Maranget, as in Belr_comp.Coverage) ----------------- *)

(** Do two conclusion arguments disagree on a rigid constructor?
    Variables (and anything flexible) never clash; equal constructor
    heads recurse into the spines.  Reimplemented locally: the coverage
    checker lives {e above} this library in the dependency order. *)
let rec clashes (m1 : Lf.normal) (m2 : Lf.normal) : bool =
  match (m1, m2) with
  | Lf.Lam (_, n1), Lf.Lam (_, n2) -> clashes n1 n2
  | Lf.Root (Lf.Const c1, sp1), Lf.Root (Lf.Const c2, sp2) ->
      c1 <> c2
      || (List.length sp1 = List.length sp2 && List.exists2 clashes sp1 sp2)
  | _ -> false

(* --- clause views -------------------------------------------------------- *)

(** One clause of a moded family: its Π-telescope (outermost first) and
    the conclusion spine, both fully normalized. *)
type view = {
  v_name : string;
  v_loc : Loc.t;
  v_doms : (Name.t * Lf.typ) array;
  v_concl : Lf.normal array;
}

(** Split a (closed, canonical) clause type through the whnf closure
    API: each domain and conclusion argument is forced and read back to
    a plain normal form before analysis. *)
let split_clause (t : Lf.typ) : (Name.t * Lf.typ) list * Lf.cid_typ * Lf.normal list =
  let rec go acc (c : Whnf.tclo) =
    match Whnf.whnf_typ c with
    | Whnf.WPi (x, dom, cod) ->
        go ((x, Whnf.norm_tclo dom) :: acc) (Whnf.clo_push cod)
    | Whnf.WAtom (a, sp, s) ->
        (List.rev acc, a, List.map (fun m -> Whnf.norm_nclo (m, s)) sp)
  in
  go [] (t, Lf.id)

(* --- premises ------------------------------------------------------------ *)

(** What scheduling one premise needs and provides, over absolute
    telescope indices: [p_req] must be ground before the premise can
    run, [p_prod] becomes ground when it has. *)
type premise = {
  p_k : int;  (** telescope position (also the derivation variable) *)
  p_fam : Lf.cid_typ;  (** goal family, for diagnostics *)
  p_req : ISet.t;
  p_prod : ISet.t;
}

(** Analyze premise domain [t] standing at telescope depth [k]: walk its
    local Π-telescope (local binders are ground), requiring the inputs
    of every moded atom and collecting the outputs of the goal atom
    only — an assumption is used, not solved, so it grounds nothing. *)
let premise_spec (sg : Sign.t) ~(k : int) (t : Lf.typ) : premise =
  let req = ref ISet.empty in
  let prod = ref ISet.empty in
  let goal_fam = ref (Lf.typ_target t) in
  let atom ~goal d a sp =
    match Sign.mode_of sg a with
    | None -> ()
    | Some (gm : Sign.mode_entry) ->
        List.iteri
          (fun i m ->
            match List.nth_opt gm.Sign.m_args i with
            | Some (true, _) ->
                req := fv_normal ~depth:k d m !req
            | Some (false, _) ->
                if goal then prod := fv_normal ~depth:k d m !prod
            | None -> ())
          sp
  in
  let rec assum d = function
    | Lf.Pi (_, a, b) ->
        assum d a;
        assum (d + 1) b
    | Lf.Atom (a, sp) -> atom ~goal:false d a sp
  in
  let rec go d = function
    | Lf.Pi (_, a, b) ->
        assum d a;
        go (d + 1) b
    | Lf.Atom (a, sp) ->
        goal_fam := a;
        atom ~goal:true d a sp
  in
  go 0 t;
  { p_k = k; p_fam = !goal_fam; p_req = !req; p_prod = ISet.add k !prod }

(* --- the check ----------------------------------------------------------- *)

type fam_report = {
  mf_fam : Lf.cid_typ;
  mf_name : string;  (** the family name as written in the [%mode] *)
  mf_sorted : bool;  (** the declaration named a sort family *)
  mf_inputs : int;
  mf_outputs : int;
  mf_clauses : int;
  mf_illmoded : int;  (** E0730 findings *)
  mf_ungrounded : int;  (** E0731 findings *)
  mf_nonunique : int;  (** W0733 findings *)
}

type result = {
  mr_fams : fam_report list;  (** ascending family id (declaration) order *)
  mr_modes : int;  (** [%mode] declarations in the signature *)
  mr_missing : int;  (** W0732 findings *)
}

let empty_result = { mr_fams = []; mr_modes = 0; mr_missing = 0 }

(** Run the mode checker over every [%mode]-declared family, reporting
    through [sink].  Analysis failures on a recovered (partially
    checked) signature are contained per family. *)
let run (sink : Diagnostics.sink) (sg : Sign.t) : result =
  Telemetry.with_span "modes" (fun () ->
      let typ_names = Hashtbl.create 32 in
      List.iter
        (fun (a, (te : Sign.typ_entry)) ->
          Hashtbl.replace typ_names a te.Sign.t_name)
        (Sign.all_typs sg);
      let names a =
        match Hashtbl.find_opt typ_names a with
        | Some n -> n
        | None -> "#" ^ string_of_int a
      in
      let sub =
        Telemetry.with_span "modes:subord" (fun () -> Subord.analyze sg)
      in
      let modes =
        List.sort
          (fun (m1 : Sign.mode_entry) m2 -> compare m1.m_fam m2.m_fam)
          (Sign.all_modes sg)
      in
      (* W0732, deduplicated: a family missing its %mode is reported at
         its first appeal, wherever that is *)
      let missing_warned : (Lf.cid_typ, unit) Hashtbl.t = Hashtbl.create 8 in
      let missing = ref 0 in
      let warn_missing ~loc ~via fam' =
        if not (Hashtbl.mem missing_warned fam') then begin
          Hashtbl.replace missing_warned fam' ();
          incr missing;
          Diagnostics.emit sink
            (Diagnostics.make ~loc ~code:"W0732" Diagnostics.Warning
               "%s appeals to %s, which has no %%mode declaration; its \
                arguments are assumed ground"
               via (names fam'))
        end
      in
      let check_family (me : Sign.mode_entry) : fam_report =
        let fam = me.Sign.m_fam in
        let clause_loc cname =
          match Sign.decl_loc sg cname with
          | Some l -> l
          | None -> me.Sign.m_loc
        in
        let views =
          Telemetry.with_span "modes:clauses" (fun () ->
              let raw =
                match me.Sign.m_srt with
                | Some s ->
                    List.filter_map
                      (fun c ->
                        Option.map
                          (fun (srt, _) ->
                            ( (Sign.const_entry sg c).Sign.c_name,
                              erase_srt sg srt ))
                          (Sign.csort sg ~const:c ~family:s))
                      (Sign.constants_of_srt sg s)
                | None ->
                    List.map
                      (fun c ->
                        let ce = Sign.const_entry sg c in
                        (ce.Sign.c_name, ce.Sign.c_typ))
                      (Sign.constants_of_typ sg fam)
              in
              List.filter_map
                (fun (cname, ct) ->
                  let doms, a, concl = split_clause ct in
                  if a <> fam then None  (* defensive: foreign target *)
                  else
                    Some
                      {
                        v_name = cname;
                        v_loc = clause_loc cname;
                        v_doms = Array.of_list doms;
                        v_concl = Array.of_list concl;
                      })
                raw)
        in
        Telemetry.add c_clauses (List.length views);
        let pol i =
          match List.nth_opt me.Sign.m_args i with
          | Some (p, _) -> Some p
          | None -> None
        in
        let illmoded = ref 0 in
        let ungrounded = ref 0 in
        let check_clause (v : view) =
          let n = Array.length v.v_doms in
          let domfv =
            Array.mapi (fun k (_, t) -> fv_typ ~depth:k 0 t ISet.empty) v.v_doms
          in
          let conclfv =
            Array.map (fun m -> fv_normal ~depth:n 0 m ISet.empty) v.v_concl
          in
          let occurs_later k =
            (let rec later j =
               j < n && (ISet.mem k domfv.(j) || later (j + 1))
             in
             later (k + 1))
            || Array.exists (ISet.mem k) conclfv
          in
          (* a variable invisible to the judgment (its family is not
             subordinate to [fam]) carries no groundness obligation *)
          let exempt =
            Array.map
              (fun (_, t) -> not (Subord.leq sub (Lf.typ_target t) fam))
              v.v_doms
          in
          let g = ref ISet.empty in
          Array.iteri
            (fun i fv -> if pol i = Some true then g := ISet.union !g fv)
            conclfv;
          let premises = ref [] in
          Array.iteri
            (fun k (_, t) ->
              let tgt = Lf.typ_target t in
              match Sign.mode_of sg tgt with
              | Some _ ->
                  Telemetry.bump c_premises;
                  premises := premise_spec sg ~k t :: !premises
              | None ->
                  if not (occurs_later k) then begin
                    (* an unmoded judgment premise: warn, then be
                       lenient so one missing %mode does not cascade *)
                    warn_missing ~loc:v.v_loc
                      ~via:
                        (Printf.sprintf "clause %s of %s" v.v_name
                           me.Sign.m_name)
                      tgt;
                    g := ISet.add k (ISet.union !g domfv.(k))
                  end)
            v.v_doms;
          let ready p =
            ISet.for_all (fun x -> exempt.(x) || ISet.mem x !g) p.p_req
          in
          let pending = ref (List.rev !premises) in
          let rec fixpoint () =
            let fired = ref false in
            pending :=
              List.filter
                (fun p ->
                  if ready p then begin
                    g := ISet.union !g p.p_prod;
                    fired := true;
                    false
                  end
                  else true)
                !pending;
            if !fired && !pending <> [] then fixpoint ()
          in
          fixpoint ();
          match !pending with
          | p :: _ ->
              incr illmoded;
              let stuck =
                ISet.filter
                  (fun x -> not (exempt.(x) || ISet.mem x !g))
                  p.p_req
              in
              let witness =
                match ISet.min_elt_opt stuck with
                | Some x -> Name.to_string (fst v.v_doms.(x))
                | None -> "?"
              in
              Diagnostics.emit sink
                (Diagnostics.make ~loc:v.v_loc ~code:"E0730"
                   Diagnostics.Error
                   "clause %s of %s is ill-moded: the premise appealing to \
                    %s can never be scheduled because its input variable %s \
                    is never ground"
                   v.v_name me.Sign.m_name (names p.p_fam) witness)
          | [] ->
              (* outputs only make sense once every premise ran *)
              let reported = ref false in
              Array.iteri
                (fun i fv ->
                  if (not !reported) && pol i = Some false then
                    match
                      ISet.min_elt_opt
                        (ISet.filter
                           (fun x -> not (exempt.(x) || ISet.mem x !g))
                           fv)
                    with
                    | Some x ->
                        reported := true;
                        incr ungrounded;
                        Diagnostics.emit sink
                          (Diagnostics.make ~loc:v.v_loc ~code:"E0731"
                             Diagnostics.Error
                             "clause %s of %s cannot ground output argument \
                              %d of its conclusion: variable %s is still \
                              free after all premises"
                             v.v_name me.Sign.m_name (i + 1)
                             (Name.to_string (fst v.v_doms.(x))))
                    | None -> ())
                conclfv
        in
        Telemetry.with_span "modes:groundness" (fun () ->
            List.iter check_clause views);
        let nonunique = ref 0 in
        Telemetry.with_span "modes:unique" (fun () ->
            let arr = Array.of_list views in
            for i = 0 to Array.length arr - 1 do
              for j = i + 1 to Array.length arr - 1 do
                Telemetry.bump c_pairs;
                let vi = arr.(i) and vj = arr.(j) in
                let m = min (Array.length vi.v_concl) (Array.length vj.v_concl) in
                let clash_at p = clashes vi.v_concl.(p) vj.v_concl.(p) in
                let overlap = ref true in
                let diverge = ref false in
                for p = 0 to m - 1 do
                  match pol p with
                  | Some true -> if clash_at p then overlap := false
                  | Some false -> if clash_at p then diverge := true
                  | None -> ()
                done;
                if !overlap && !diverge then begin
                  incr nonunique;
                  Diagnostics.emit sink
                    (Diagnostics.make ~loc:vj.v_loc ~code:"W0733"
                       Diagnostics.Warning
                       "clauses %s and %s of %s overlap on their inputs but \
                        produce divergent rigid outputs: the output of %s \
                        is not unique"
                       vi.v_name vj.v_name me.Sign.m_name me.Sign.m_name)
                end
              done
            done);
        {
          mf_fam = fam;
          mf_name = me.Sign.m_name;
          mf_sorted = me.Sign.m_srt <> None;
          mf_inputs =
            List.length (List.filter (fun (p, _) -> p) me.Sign.m_args);
          mf_outputs =
            List.length (List.filter (fun (p, _) -> not p) me.Sign.m_args);
          mf_clauses = List.length views;
          mf_illmoded = !illmoded;
          mf_ungrounded = !ungrounded;
          mf_nonunique = !nonunique;
        }
      in
      let fams =
        List.filter_map
          (fun (me : Sign.mode_entry) ->
            Diagnostics.recover sink ~loc:me.Sign.m_loc ~code:"E0201"
              (fun () -> check_family me))
          modes
      in
      (* a judgment family a rec induction appeals to should carry a
         mode too — but only nag signatures that opted into modes *)
      Telemetry.with_span "modes:recs" (fun () ->
          if modes <> [] then
            List.iter
              (fun (_, (re : Sign.rec_entry)) ->
                let loc =
                  Option.value ~default:Loc.ghost
                    (Sign.decl_loc sg re.Sign.r_name)
                in
                Refs.iter_ctyp
                  (fun tgt ->
                    let fam' =
                      match tgt with
                      | Refs.RTyp a -> Some a
                      | Refs.RSrt q ->
                          Some (Sign.srt_entry sg q).Sign.s_refines
                      | _ -> None
                    in
                    match fam' with
                    | Some a
                      when Sign.mode_of sg a = None
                           && Lf.kind_arity (Sign.typ_entry sg a).Sign.t_kind
                              >= 1 ->
                        warn_missing ~loc
                          ~via:(Printf.sprintf "rec %s" re.Sign.r_name)
                          a
                    | _ -> ())
                  re.Sign.r_styp)
              (List.sort compare (Sign.all_recs sg)));
      { mr_fams = fams; mr_modes = List.length modes; mr_missing = !missing })

(* --- report ------------------------------------------------------------- *)

let schema_id = "belr-modes/1"

let clean (f : fam_report) =
  f.mf_illmoded = 0 && f.mf_ungrounded = 0 && f.mf_nonunique = 0

let fam_json (f : fam_report) : Json.t =
  Json.Obj
    [
      ("name", Json.String f.mf_name);
      ("sorted", Json.Bool f.mf_sorted);
      ("inputs", Json.Int f.mf_inputs);
      ("outputs", Json.Int f.mf_outputs);
      ("clauses", Json.Int f.mf_clauses);
      ("illmoded", Json.Int f.mf_illmoded);
      ("ungrounded", Json.Int f.mf_ungrounded);
      ("nonunique", Json.Int f.mf_nonunique);
      ("clean", Json.Bool (clean f));
    ]

(** The full [belr-modes/1] report for one run; [finding] entries reuse
    the [belr-lint/1] finding shape. *)
let report_json ~(files : string list) (sink : Diagnostics.sink) (r : result)
    : Json.t =
  Json.Obj
    [
      ("schema", Json.String schema_id);
      ("files", Json.List (List.map (fun f -> Json.String f) files));
      ("families", Json.List (List.map fam_json r.mr_fams));
      ( "signature",
        Json.Obj
          [ ("modes", Json.Int r.mr_modes); ("missing", Json.Int r.mr_missing) ]
      );
      ("findings", Json.List (List.map Lint.finding_json (Diagnostics.all sink)));
      ( "summary",
        Json.Obj
          [
            ("errors", Json.Int (Diagnostics.error_count sink));
            ("warnings", Json.Int (Diagnostics.warning_count sink));
            ("notes", Json.Int (Diagnostics.note_count sink));
            ("bugs", Json.Int (Diagnostics.bug_count sink));
          ] );
      ("exit_code", Json.Int (Diagnostics.exit_code sink));
    ]
