(** Strict-occurrence analysis for case-branch patterns
    (Pfenning–Schürmann, "Automated Theorem Proving in a Simple
    Meta-Logic for LF"; DESIGN.md §S25).

    A pattern meta-variable [u] occurs {e strictly} when it appears, at a
    rigid position, as the head of a spine of {e distinct} bound
    variables: [u[x₁, …, xₙ]] with the [xᵢ] pairwise distinct variables
    (or distinct projections of block variables).  A rigid position is
    one not inside the substitution or spine of another meta- or
    parameter variable — the path from the pattern root passes only
    through constants, bound variables, and projections.

    Strictness is what makes pattern matching an {e inverse}: matching a
    closed instance against a strict occurrence determines [u]'s
    instantiation uniquely and totally, so a branch with strict patterns
    genuinely covers every instance its erasure suggests.  The coverage
    engine ({!Belr_comp.Coverage}) uses the per-case verdict computed
    here to justify its uninhabitable-hole pruning: with a non-strict
    pattern in play, an "empty" candidate set may simply mean the
    analysis cannot see the witness, so pruning is withheld.

    Following the standard definition, an occurrence in the {e sort} of
    another pattern variable (the branch's meta-context) also counts —
    index arguments forced by typing are determined just as firmly as
    spine positions. *)

open Belr_syntax
module Sign = Belr_lf.Sign

(* --- bound-variable views ---------------------------------------------- *)

(** View a normal term as a bound variable or a projection of one:
    [Some (i, 0)] for [xᵢ], [Some (i, k)] for [xᵢ.k].  No η-contraction
    is attempted — internal terms are η-long at base type, and a
    λ-wrapped occurrence is conservatively rejected. *)
let bvar_view (m : Lf.normal) : (int * int) option =
  match m with
  | Lf.Root (Lf.BVar i, []) -> Some (i, 0)
  | Lf.Root (Lf.Proj (Lf.BVar i, k), []) -> Some (i, k)
  | _ -> None

(** The variables of a substitution, when it is a {e pattern}
    substitution: every front a bound variable (or block projection), all
    pairwise distinct, and the explicit fronts disjoint from the range of
    the trailing shift.  Returns [None] otherwise. *)
let pattern_sub_vars (s : Lf.sub) : (int * int) list option =
  let distinct v seen = not (List.mem v seen) in
  let rec go d seen = function
    | Lf.Empty -> Some seen
    | Lf.Shift t ->
        (* after [d] dots, the tail maps index [d+j] to variable [t+j]:
           an explicit front [xᵢ] with [i > t] would repeat a variable
           the tail already produces *)
        if List.for_all (fun (i, _) -> i <= t) seen then Some seen else None
    | Lf.Dot (f, s') -> (
        match f with
        | Lf.Obj m -> (
            match bvar_view m with
            | Some v when distinct v seen -> go (d + 1) (v :: seen) s'
            | _ -> None)
        | Lf.Tup ms ->
            (* a tuple of distinct projections replacing a block *)
            let rec fronts seen = function
              | [] -> Some seen
              | m :: rest -> (
                  match bvar_view m with
                  | Some v when distinct v seen -> fronts (v :: seen) rest
                  | _ -> None)
            in
            Option.bind (fronts seen ms) (fun seen -> go (d + 1) seen s')
        | Lf.Undef -> None)
  in
  go 0 [] s

(** Is [Root (MVar (u, s), sp)] a strict occurrence shape — substitution
    and spine together a list of distinct bound variables? *)
let strict_shape (s : Lf.sub) (sp : Lf.spine) : bool =
  match pattern_sub_vars s with
  | None -> false
  | Some seen ->
      let rec args seen = function
        | [] -> true
        | m :: rest -> (
            match bvar_view m with
            | Some v when not (List.mem v seen) -> args (v :: seen) rest
            | _ -> false)
      in
      args seen sp

(* --- rigid traversal --------------------------------------------------- *)

(** Record every meta-variable with a strict occurrence in [m] into
    [note] (offset already applied by the caller).  Only rigid positions
    are walked: the spine of a constant, bound variable, or projection
    head is rigid; everything under a meta- or parameter-variable head is
    flexible and contributes nothing. *)
let rec strict_normal (note : int -> unit) (m : Lf.normal) : unit =
  match m with
  | Lf.Lam (_, m) -> strict_normal note m
  | Lf.Root (h, sp) -> (
      match h with
      | Lf.MVar (u, s) -> if strict_shape s sp then note u
      | Lf.Const _ | Lf.BVar _ -> List.iter (strict_normal note) sp
      | Lf.Proj (h', _) -> (
          (* a projection of a rigid head keeps its spine rigid *)
          let rec base = function Lf.Proj (h, _) -> base h | h -> h in
          match base h' with
          | Lf.Const _ | Lf.BVar _ -> List.iter (strict_normal note) sp
          | _ -> ())
      | Lf.PVar _ -> ())

let strict_typ (note : int -> unit) (ty : Lf.typ) : unit =
  let rec typ = function
    | Lf.Atom (_, sp) -> List.iter (strict_normal note) sp
    | Lf.Pi (_, a, b) -> typ a; typ b
  in
  typ ty

let strict_srt (note : int -> unit) (s : Lf.srt) : unit =
  let rec srt = function
    | Lf.SAtom (_, sp) | Lf.SEmbed (_, sp) ->
        List.iter (strict_normal note) sp
    | Lf.SPi (_, s1, s2) -> srt s1; srt s2
  in
  srt s

let strict_sctx (note : int -> unit) (psi : Ctxs.sctx) : unit =
  List.iter
    (function
      | Ctxs.SCDecl (_, s) -> strict_srt note s
      | Ctxs.SCBlock (_, f, ms) ->
          List.iter (fun (_, s) -> strict_srt note s) f.Ctxs.f_block;
          List.iter (strict_normal note) ms)
    psi.Ctxs.s_decls

(* --- branch verdicts --------------------------------------------------- *)

(** The pattern variables of a branch without a strict occurrence, as
    [(position, name)] pairs — position 1-based into the branch's
    meta-context, innermost first (the indexing of [MVar]).  Only
    term-level pattern variables ([MDTerm]) are subject to strictness;
    context, substitution, and parameter variables name whole entities
    that matching binds directly. *)
let branch_nonstrict (b : Comp.branch) : (int * string) list =
  let n = List.length b.Comp.br_mctx in
  if n = 0 then []
  else begin
    let strict = Array.make (n + 1) false in
    let note_at offset u =
      let p = u + offset in
      if p >= 1 && p <= n then strict.(p) <- true
    in
    (match b.Comp.br_pat with
    | Meta.MOTerm (_, m) -> strict_normal (note_at 0) m
    | Meta.MOSub _ | Meta.MOCtx _ | Meta.MOParam _ -> ());
    (* occurrences in the sorts of other pattern variables: the entry at
       position j+1 is typed in the outer part of the meta-context, so an
       [MVar i] inside it refers to global position j+1+i *)
    List.iteri
      (fun j d ->
        let note = note_at (j + 1) in
        match d with
        | Meta.MDTerm (_, psi, s) ->
            strict_sctx note psi;
            strict_srt note s
        | Meta.MDSub (_, psi1, psi2) ->
            strict_sctx note psi1;
            strict_sctx note psi2
        | Meta.MDCtx _ -> ()
        | Meta.MDParam (_, psi, f, ms) ->
            strict_sctx note psi;
            List.iter (fun (_, s) -> strict_srt note s) f.Ctxs.f_block;
            List.iter (strict_normal note) ms)
      b.Comp.br_mctx;
    let name_of d =
      Belr_support.Name.to_string
        (match d with
        | Meta.MDTerm (x, _, _) -> x
        | Meta.MDSub (x, _, _) -> x
        | Meta.MDCtx (x, _) -> x
        | Meta.MDParam (x, _, _, _) -> x)
    in
    List.concat
      (List.mapi
         (fun j d ->
           match d with
           | Meta.MDTerm _ when not strict.(j + 1) -> [ (j + 1, name_of d) ]
           | _ -> [])
         b.Comp.br_mctx)
  end

(** Are all patterns of all [branches] strict?  The verdict the coverage
    engine consumes per [case]. *)
let branches_strict (branches : Comp.branch list) : bool =
  List.for_all (fun b -> branch_nonstrict b = []) branches

(** Non-strict pattern variables per [case] expression of a declared
    function's body, in traversal order: each element is the case's list
    of [(branch ordinal, position, name)] offenders (empty = all
    strict). *)
let rec_nonstrict (sg : Sign.t) (id : Lf.cid_rec) :
    (int * int * string) list list =
  match (Sign.rec_entry sg id).Sign.r_body with
  | None -> []
  | Some body ->
      let out = ref [] in
      let rec walk (e : Comp.exp) =
        match e with
        | Comp.Var _ | Comp.RecConst _ | Comp.Box _ -> ()
        | Comp.Fn (_, _, e) | Comp.MLam (_, e) | Comp.MApp (e, _) -> walk e
        | Comp.App (a, b) | Comp.LetBox (_, a, b) ->
            walk a;
            walk b
        | Comp.Case (_, scrut, brs) ->
            walk scrut;
            List.iter (fun (b : Comp.branch) -> walk b.Comp.br_body) brs;
            out :=
              List.concat
                (List.mapi
                   (fun i b ->
                     List.map
                       (fun (p, x) -> (i, p, x))
                       (branch_nonstrict b))
                   brs)
              :: !out
      in
      walk body;
      List.rev !out
