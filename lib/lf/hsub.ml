(** Hereditary substitution (§3, §3.1.3).

    Applying a substitution to a canonical form can create β-redexes
    ([(λx.M) N]) and block projections of tuples ([⟦M⃗/b⟧(b.k)]); hereditary
    substitution resolves both on the fly so that the result is again
    canonical — e.g. [(λy.y)/x](x 0) yields [0], never [(λy.y) 0].

    Substitutions are simultaneous ({!Belr_syntax.Lf.sub}).  The functions
    here terminate on all well-typed inputs (the standard induction on
    erased simple types); a depth guard ({!Belr_support.Limits}, the CLI's
    [--max-depth]) turns accidental divergence on ill-typed inputs into
    the recoverable [E0901] resource diagnostic instead of a hang or a
    [Stack_overflow].

    PR 4 layers two caches over the traversal, both powered by the
    hash-consing store ({!Belr_syntax.Store}):

    - {e mfi skip}: a term whose max-free-index bound is [0] is closed, so
      any substitution returns it unchanged — no traversal;
    - {e memoization}: [sub_normal]/[sub_typ]/[sub_srt] results are cached
      in bounded direct-mapped tables keyed on [(sub id, node id)].  Ids
      are unique, monotone, and never reused, and interned nodes are
      immutable, so a hit is always sound.  The memo is consulted first
      (one array read), the mfi bound on a cold slot, so repeated closed
      instantiations count as hits too.  The tables hold results (strong
      references); they are bounded, and {!clear_memo} drops them
      wholesale. *)

open Belr_support
open Belr_syntax
open Lf

let depth = Limits.counter "hereditary substitution"

let guard f = Limits.guard depth f

(* Telemetry: operation counters for the --stats/--profile reports.  Hot
   path — only {!Telemetry.bump} (a flag check and an integer store) is
   allowed here, never spans. *)

let c_subst = Telemetry.counter "hsub.substitutions"

let c_beta = Telemetry.counter "hsub.beta_redexes"

let c_proj = Telemetry.counter "hsub.tuple_projections"

let c_inst = Telemetry.counter "hsub.instantiations"

(** Kept as an alias of {!Belr_syntax.Store.mk_dot} for callers that
    normalize fronts directly (e.g. [Belr_meta.Msub]). *)
let norm_dot (f : front) (s : sub) : sub = mk_dot f s

(* --- substitution memo table ------------------------------------------ *)

(* Direct-mapped cache: (sub id, normal id) ↦ result.  Collisions
   overwrite (bounded memory); plain int counters so `--kernel-stats`
   works without enabling telemetry recording. *)

let memo_bits = 14

let memo_size = 1 lsl memo_bits

(** The memo world: three direct-mapped caches and their hit counters.
    Per-session in the daemon ({!use_tables}, installed in lock-step with
    the {!Belr_syntax.Store} state by [Belr_lf.Session]) so one session's
    cached substitution results and statistics can never leak into
    another; batch runs live in the boot tables and never notice. *)
type tables = {
  tb_normal : (int * int * normal) option array;
  tb_typ : (int * int * typ) option array;
      (* types and sorts are instantiated by the checkers at least as
         often as terms (every dependent application), so they get their
         own caches *)
  tb_srt : (int * int * srt) option array;
  mutable tb_hits : int;
  mutable tb_misses : int;
  mutable tb_mfi_skips : int;
}

let fresh_tables () =
  {
    tb_normal = Array.make memo_size None;
    tb_typ = Array.make memo_size None;
    tb_srt = Array.make memo_size None;
    tb_hits = 0;
    tb_misses = 0;
    tb_mfi_skips = 0;
  }

let current = ref (fresh_tables ())

(** Install [t] as the memo world for subsequent substitutions. *)
let use_tables t = current := t

let current_tables () = !current

let clear_memo () =
  let t = !current in
  Array.fill t.tb_normal 0 memo_size None;
  Array.fill t.tb_typ 0 memo_size None;
  Array.fill t.tb_srt 0 memo_size None

type memo_stats = { ms_hits : int; ms_misses : int; ms_mfi_skips : int }

let memo_stats () =
  let t = !current in
  {
    ms_hits = t.tb_hits;
    ms_misses = t.tb_misses;
    ms_mfi_skips = t.tb_mfi_skips;
  }

let memo_hit_rate () =
  let t = !current in
  let total = t.tb_hits + t.tb_misses in
  if total = 0 then 0.0 else float_of_int t.tb_hits /. float_of_int total

let memo_slot ks km = (((ks * 0x9e3779b1) lxor km) land max_int) land (memo_size - 1)

(** Result of pushing a substitution into a head. *)
type head_result =
  | Rhead of head  (** still a head *)
  | Rnorm of normal  (** the head was replaced by a normal term *)
  | Rtup of tuple  (** a block variable was replaced by a tuple *)

let rec lookup (s : sub) (i : int) : head_result =
  match s with
  | Empty ->
      Error.violation "substitution lookup: variable %d under empty substitution" i
  | Shift n -> Rhead (mk_bvar (i + n))
  | Dot (f, s') ->
      if i = 1 then
        match f with
        | Obj m -> Rnorm m
        | Tup t -> Rtup t
        | Undef ->
            Error.raise_msg "substitution lookup hit an undefined entry"
      else lookup s' (i - 1)

(** [norm_head h] views a bare-variable normal back as a head (fronts may
    store η-short whole-block references; see [Hsub] invariants). *)
let norm_as_head = function
  | Root (h, []) -> Some h
  | _ -> None

let rec sub_head (s : sub) (h : head) : head_result =
  match h with
  | Const _ -> Rhead h
  | BVar i -> lookup s i
  | PVar (p, sp) -> Rhead (mk_pvar p (comp sp s))
  | MVar (u, su) -> Rhead (mk_mvar u (comp su s))
  | Proj (b, k) -> (
      match sub_head s b with
      | Rhead b' -> Rhead (mk_proj b' k)
      | Rtup t -> (
          Telemetry.bump c_proj;
          match List.nth_opt t (k - 1) with
          | Some m -> Rnorm m
          | None -> Error.violation "projection %d out of tuple range" k)
      | Rnorm m -> (
          match norm_as_head m with
          | Some b' -> Rhead (mk_proj b' k)
          | None ->
              Error.violation
                "projection base was substituted by a non-variable term"))

and sub_normal (s : sub) (m : normal) : normal =
  match s with
  | Shift 0 -> m (* identity: frequent fast path *)
  | _ ->
      if not (store_enabled ()) then sub_normal_work s m
      else begin
        let t = !current in
        let ks = sub_id s and km = normal_id m in
        let i = memo_slot ks km in
        match t.tb_normal.(i) with
        | Some (ks', km', r) when ks' = ks && km' = km ->
            t.tb_hits <- t.tb_hits + 1;
            r
        | _ ->
            t.tb_misses <- t.tb_misses + 1;
            let r =
              if mfi_normal m = 0 then begin
                (* closed term: no substitution can touch it *)
                t.tb_mfi_skips <- t.tb_mfi_skips + 1;
                m
              end
              else sub_normal_work s m
            in
            t.tb_normal.(i) <- Some (ks, km, r);
            r
      end

and sub_normal_work (s : sub) (m : normal) : normal =
  Fault.hit "hsub";
  Telemetry.bump c_subst;
  match m with
  | Lam (x, n) -> mk_lam x (sub_normal (dot1 s) n)
  | Root (h, sp) -> (
      let sp' = sub_spine s sp in
      match sub_head s h with
      | Rhead h' -> mk_root h' sp'
      | Rnorm n -> guard (fun () -> reduce n sp')
      | Rtup _ ->
          Error.violation "block variable used as a term (missing projection)")

and sub_spine s sp = List.map (sub_normal s) sp

and sub_front s = function
  | Obj m -> Obj (sub_normal s m)
  | Tup t -> Tup (List.map (sub_normal s) t)
  | Undef -> Undef

(** [comp s1 s2] is the substitution applying [s1] first and then [s2]
    (i.e. [sub_normal (comp s1 s2) m = sub_normal s2 (sub_normal s1 m)]). *)
and comp (s1 : sub) (s2 : sub) : sub =
  match (s1, s2) with
  | Empty, _ -> s1
  | Shift 0, _ -> s2
  | _, Shift 0 -> s1 (* right identity: skip rebuilding s1 *)
  | Shift n, Dot (_, s2') -> comp (mk_shift (n - 1)) s2'
  | Shift n, Shift m -> mk_shift (n + m)
  | Shift _, Empty ->
      (* only reachable when the common context is itself empty *)
      s2
  | Dot (f, s1'), _ -> mk_dot (sub_front s2 f) (comp s1' s2)

(** Extend a substitution under one binder: [dot1 σ = (1 . σ ∘ ↑)]. *)
and dot1 (s : sub) : sub =
  match s with
  | Shift 0 -> s
  | _ -> mk_dot (Obj (bvar 1)) (comp s (mk_shift 1))

(** β-reduce a normal applied to a spine (the hereditary step). *)
and reduce (m : normal) (sp : spine) : normal =
  match (m, sp) with
  | _, [] -> m
  | Lam (_, body), n :: rest ->
      Telemetry.bump c_beta;
      guard (fun () -> reduce (sub_normal (dot_obj n (mk_shift 0)) body) rest)
  | Root _, _ -> app_spine m sp

(* --- types, sorts, kinds --------------------------------------------- *)

let rec sub_typ (s : sub) (a : typ) : typ =
  match s with
  | Shift 0 -> a
  | _ ->
      if not (store_enabled ()) then sub_typ_work s a
      else begin
        let t = !current in
        let ks = sub_id s and ka = typ_id a in
        let i = memo_slot ks ka in
        match t.tb_typ.(i) with
        | Some (ks', ka', r) when ks' = ks && ka' = ka ->
            t.tb_hits <- t.tb_hits + 1;
            r
        | _ ->
            t.tb_misses <- t.tb_misses + 1;
            let r =
              if mfi_typ a = 0 then begin
                t.tb_mfi_skips <- t.tb_mfi_skips + 1;
                a
              end
              else sub_typ_work s a
            in
            t.tb_typ.(i) <- Some (ks, ka, r);
            r
      end

and sub_typ_work (s : sub) (a : typ) : typ =
  match a with
  | Atom (p, sp) -> mk_atom p (sub_spine s sp)
  | Pi (x, a1, b) -> mk_pi x (sub_typ s a1) (sub_typ (dot1 s) b)

let rec sub_srt (s : sub) (q : srt) : srt =
  match s with
  | Shift 0 -> q
  | _ ->
      if not (store_enabled ()) then sub_srt_work s q
      else begin
        let t = !current in
        let ks = sub_id s and kq = srt_id q in
        let i = memo_slot ks kq in
        match t.tb_srt.(i) with
        | Some (ks', kq', r) when ks' = ks && kq' = kq ->
            t.tb_hits <- t.tb_hits + 1;
            r
        | _ ->
            t.tb_misses <- t.tb_misses + 1;
            let r =
              if mfi_srt q = 0 then begin
                t.tb_mfi_skips <- t.tb_mfi_skips + 1;
                q
              end
              else sub_srt_work s q
            in
            t.tb_srt.(i) <- Some (ks, kq, r);
            r
      end

and sub_srt_work (s : sub) (q : srt) : srt =
  match q with
  | SAtom (c, sp) -> mk_satom c (sub_spine s sp)
  | SEmbed (a, sp) -> mk_sembed a (sub_spine s sp)
  | SPi (x, s1, s2) -> mk_spi x (sub_srt s s1) (sub_srt (dot1 s) s2)

let rec sub_kind (s : sub) : kind -> kind = function
  | Ktype -> Ktype
  | Kpi (x, a, k) -> Kpi (x, sub_typ s a, sub_kind (dot1 s) k)

let rec sub_skind (s : sub) : skind -> skind = function
  | Ksort -> Ksort
  | Kspi (x, q, l) -> Kspi (x, sub_srt s q, sub_skind (dot1 s) l)

(** Instantiate the body of a binder with one argument:
    [inst body n = [n/1] body].  These are the checkers' entry points into
    hereditary substitution (one per dependent application checked), so
    they carry their own telemetry counter. *)
let inst_normal (body : normal) (n : normal) : normal =
  Telemetry.bump c_inst;
  sub_normal (dot_obj n (mk_shift 0)) body

let inst_typ (body : typ) (n : normal) : typ =
  Telemetry.bump c_inst;
  sub_typ (dot_obj n (mk_shift 0)) body

let inst_srt (body : srt) (n : normal) : srt =
  Telemetry.bump c_inst;
  sub_srt (dot_obj n (mk_shift 0)) body

let inst_kind (body : kind) (n : normal) : kind =
  Telemetry.bump c_inst;
  sub_kind (dot_obj n (mk_shift 0)) body

let inst_skind (body : skind) (n : normal) : skind =
  Telemetry.bump c_inst;
  sub_skind (dot_obj n (mk_shift 0)) body

(* --- blocks and schema elements --------------------------------------- *)

(** Substitute into a block: component [k] is under [k-1] extra binders. *)
let sub_block (s : sub) (b : Ctxs.block) : Ctxs.block =
  let rec go s = function
    | [] -> []
    | (x, a) :: rest -> (x, sub_typ s a) :: go (dot1 s) rest
  in
  go s b

let sub_sblock (s : sub) (b : Ctxs.sblock) : Ctxs.sblock =
  let rec go s = function
    | [] -> []
    | (x, q) :: rest -> (x, sub_srt s q) :: go (dot1 s) rest
  in
  go s b

let sub_elem (s : sub) (e : Ctxs.elem) : Ctxs.elem =
  (* parameters first-to-last, each under the previous ones *)
  let rec params s = function
    | [] -> (s, [])
    | (x, a) :: rest ->
        let a' = sub_typ s a in
        let s' = dot1 s in
        let s'', ps = params s' rest in
        (s'', (x, a') :: ps)
  in
  let s', ps = params s e.Ctxs.e_params in
  { e with Ctxs.e_params = ps; Ctxs.e_block = sub_block s' e.Ctxs.e_block }

let sub_selem (s : sub) (f : Ctxs.selem) : Ctxs.selem =
  let rec params s = function
    | [] -> (s, [])
    | (x, q) :: rest ->
        let q' = sub_srt s q in
        let s' = dot1 s in
        let s'', ps = params s' rest in
        (s'', (x, q') :: ps)
  in
  let s', ps = params s f.Ctxs.f_params in
  { f with Ctxs.f_params = ps; Ctxs.f_block = sub_sblock s' f.Ctxs.f_block }

(** Instantiate a schema element's parameters with concrete terms,
    yielding the block of declarations [D] with [Ω ⊢ M⃗ : F > D] (§3.1.2).
    [ms] lists instantiations for the parameters in declaration order and
    must live in the context where the block will be used. *)
let inst_block (e : Ctxs.elem) (ms : normal list) : Ctxs.block =
  if List.length e.Ctxs.e_params <> List.length ms then
    Error.raise_msg "schema element applied to %d arguments, expected %d"
      (List.length ms)
      (List.length e.Ctxs.e_params);
  (* Build σ mapping the innermost parameter (index 1) to the last
     instantiation. *)
  let s = List.fold_left (fun acc m -> dot_obj m acc) (mk_shift 0) ms in
  sub_block s e.Ctxs.e_block

let inst_sblock (f : Ctxs.selem) (ms : normal list) : Ctxs.sblock =
  if List.length f.Ctxs.f_params <> List.length ms then
    Error.raise_msg "schema element applied to %d arguments, expected %d"
      (List.length ms)
      (List.length f.Ctxs.f_params);
  let s = List.fold_left (fun acc m -> dot_obj m acc) (mk_shift 0) ms in
  sub_sblock s f.Ctxs.f_block

(* Contribute the memo numbers to the same "store" section as the arena
   stats from Belr_syntax.Store (sections with one name are merged). *)
let () =
  Telemetry.register_section "store" (fun () ->
      let t = !current in
      [
        ("memo_hits", Json.Int t.tb_hits);
        ("memo_misses", Json.Int t.tb_misses);
        ("memo_hit_rate", Json.Float (memo_hit_rate ()));
        ("mfi_skips", Json.Int t.tb_mfi_skips);
      ])
