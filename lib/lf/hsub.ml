(** Hereditary substitution (§3, §3.1.3).

    Applying a substitution to a canonical form can create β-redexes
    ([(λx.M) N]) and block projections of tuples ([⟦M⃗/b⟧(b.k)]); hereditary
    substitution resolves both on the fly so that the result is again
    canonical — e.g. [(λy.y)/x](x 0) yields [0], never [(λy.y) 0].

    Substitutions are simultaneous ({!Belr_syntax.Lf.sub}).  The functions
    here terminate on all well-typed inputs (the standard induction on
    erased simple types); a depth guard ({!Belr_support.Limits}, the CLI's
    [--max-depth]) turns accidental divergence on ill-typed inputs into
    the recoverable [E0901] resource diagnostic instead of a hang or a
    [Stack_overflow]. *)

open Belr_support
open Belr_syntax
open Lf

let depth = Limits.counter "hereditary substitution"

let guard f = Limits.guard depth f

(* Telemetry: operation counters for the --stats/--profile reports.  Hot
   path — only {!Telemetry.bump} (a flag check and an integer store) is
   allowed here, never spans. *)

let c_subst = Telemetry.counter "hsub.substitutions"

let c_beta = Telemetry.counter "hsub.beta_redexes"

let c_proj = Telemetry.counter "hsub.tuple_projections"

let c_inst = Telemetry.counter "hsub.instantiations"

(** Smart constructor normalizing [Dot (xₙ, ↑ⁿ)] to [↑ⁿ⁻¹] so that
    identity substitutions stay syntactically canonical under composition
    (needed for the structural definitional equality of canonical forms). *)
let norm_dot (f : front) (s : sub) : sub =
  match (f, s) with
  | Obj (Root (BVar k, [])), Shift n when k = n -> Shift (n - 1)
  | _ -> Dot (f, s)

(** Result of pushing a substitution into a head. *)
type head_result =
  | Rhead of head  (** still a head *)
  | Rnorm of normal  (** the head was replaced by a normal term *)
  | Rtup of tuple  (** a block variable was replaced by a tuple *)

let rec lookup (s : sub) (i : int) : head_result =
  match s with
  | Empty ->
      Error.violation "substitution lookup: variable %d under empty substitution" i
  | Shift n -> Rhead (BVar (i + n))
  | Dot (f, s') ->
      if i = 1 then
        match f with
        | Obj m -> Rnorm m
        | Tup t -> Rtup t
        | Undef ->
            Error.raise_msg "substitution lookup hit an undefined entry"
      else lookup s' (i - 1)

(** [norm_head h] views a bare-variable normal back as a head (fronts may
    store η-short whole-block references; see [Hsub] invariants). *)
let norm_as_head = function
  | Root (h, []) -> Some h
  | _ -> None

let rec sub_head (s : sub) (h : head) : head_result =
  match h with
  | Const _ -> Rhead h
  | BVar i -> lookup s i
  | PVar (p, sp) -> Rhead (PVar (p, comp sp s))
  | MVar (u, su) -> Rhead (MVar (u, comp su s))
  | Proj (b, k) -> (
      match sub_head s b with
      | Rhead b' -> Rhead (Proj (b', k))
      | Rtup t -> (
          Telemetry.bump c_proj;
          match List.nth_opt t (k - 1) with
          | Some m -> Rnorm m
          | None -> Error.violation "projection %d out of tuple range" k)
      | Rnorm m -> (
          match norm_as_head m with
          | Some b' -> Rhead (Proj (b', k))
          | None ->
              Error.violation
                "projection base was substituted by a non-variable term"))

and sub_normal (s : sub) (m : normal) : normal =
  match s with
  | Shift 0 -> m  (* identity: frequent fast path *)
  | _ -> (
      Telemetry.bump c_subst;
      match m with
      | Lam (x, n) -> Lam (x, sub_normal (dot1 s) n)
      | Root (h, sp) -> (
          let sp' = sub_spine s sp in
          match sub_head s h with
          | Rhead h' -> Root (h', sp')
          | Rnorm n -> guard (fun () -> reduce n sp')
          | Rtup _ ->
              Error.violation "block variable used as a term (missing projection)"))

and sub_spine s sp = List.map (sub_normal s) sp

and sub_front s = function
  | Obj m -> Obj (sub_normal s m)
  | Tup t -> Tup (List.map (sub_normal s) t)
  | Undef -> Undef

(** [comp s1 s2] is the substitution applying [s1] first and then [s2]
    (i.e. [sub_normal (comp s1 s2) m = sub_normal s2 (sub_normal s1 m)]). *)
and comp (s1 : sub) (s2 : sub) : sub =
  match (s1, s2) with
  | Empty, _ -> Empty
  | Shift 0, _ -> s2
  | Shift n, Dot (_, s2') -> comp (Shift (n - 1)) s2'
  | Shift n, Shift m -> Shift (n + m)
  | Shift _, Empty ->
      (* only reachable when the common context is itself empty *)
      Empty
  | Dot (f, s1'), _ -> norm_dot (sub_front s2 f) (comp s1' s2)

(** Extend a substitution under one binder: [dot1 σ = (1 . σ ∘ ↑)]. *)
and dot1 (s : sub) : sub =
  match s with
  | Shift 0 -> s
  | _ -> norm_dot (Obj (Root (BVar 1, []))) (comp s (Shift 1))

(** β-reduce a normal applied to a spine (the hereditary step). *)
and reduce (m : normal) (sp : spine) : normal =
  match (m, sp) with
  | _, [] -> m
  | Lam (_, body), n :: rest ->
      Telemetry.bump c_beta;
      guard (fun () -> reduce (sub_normal (Dot (Obj n, Shift 0)) body) rest)
  | Root (h, sp0), _ -> Root (h, sp0 @ sp)

(* --- types, sorts, kinds --------------------------------------------- *)

let rec sub_typ (s : sub) : typ -> typ = function
  | Atom (a, sp) -> Atom (a, sub_spine s sp)
  | Pi (x, a, b) -> Pi (x, sub_typ s a, sub_typ (dot1 s) b)

let rec sub_srt (s : sub) : srt -> srt = function
  | SAtom (q, sp) -> SAtom (q, sub_spine s sp)
  | SEmbed (a, sp) -> SEmbed (a, sub_spine s sp)
  | SPi (x, s1, s2) -> SPi (x, sub_srt s s1, sub_srt (dot1 s) s2)

let rec sub_kind (s : sub) : kind -> kind = function
  | Ktype -> Ktype
  | Kpi (x, a, k) -> Kpi (x, sub_typ s a, sub_kind (dot1 s) k)

let rec sub_skind (s : sub) : skind -> skind = function
  | Ksort -> Ksort
  | Kspi (x, q, l) -> Kspi (x, sub_srt s q, sub_skind (dot1 s) l)

(** Instantiate the body of a binder with one argument:
    [inst body n = [n/1] body].  These are the checkers' entry points into
    hereditary substitution (one per dependent application checked), so
    they carry their own telemetry counter. *)
let inst_normal (body : normal) (n : normal) : normal =
  Telemetry.bump c_inst;
  sub_normal (Dot (Obj n, Shift 0)) body

let inst_typ (body : typ) (n : normal) : typ =
  Telemetry.bump c_inst;
  sub_typ (Dot (Obj n, Shift 0)) body

let inst_srt (body : srt) (n : normal) : srt =
  Telemetry.bump c_inst;
  sub_srt (Dot (Obj n, Shift 0)) body

let inst_kind (body : kind) (n : normal) : kind =
  Telemetry.bump c_inst;
  sub_kind (Dot (Obj n, Shift 0)) body

let inst_skind (body : skind) (n : normal) : skind =
  Telemetry.bump c_inst;
  sub_skind (Dot (Obj n, Shift 0)) body

(* --- blocks and schema elements --------------------------------------- *)

(** Substitute into a block: component [k] is under [k-1] extra binders. *)
let sub_block (s : sub) (b : Ctxs.block) : Ctxs.block =
  let rec go s = function
    | [] -> []
    | (x, a) :: rest -> (x, sub_typ s a) :: go (dot1 s) rest
  in
  go s b

let sub_sblock (s : sub) (b : Ctxs.sblock) : Ctxs.sblock =
  let rec go s = function
    | [] -> []
    | (x, q) :: rest -> (x, sub_srt s q) :: go (dot1 s) rest
  in
  go s b

let sub_elem (s : sub) (e : Ctxs.elem) : Ctxs.elem =
  (* parameters first-to-last, each under the previous ones *)
  let rec params s = function
    | [] -> (s, [])
    | (x, a) :: rest ->
        let a' = sub_typ s a in
        let s' = dot1 s in
        let s'', ps = params s' rest in
        (s'', (x, a') :: ps)
  in
  let s', ps = params s e.Ctxs.e_params in
  { e with Ctxs.e_params = ps; Ctxs.e_block = sub_block s' e.Ctxs.e_block }

let sub_selem (s : sub) (f : Ctxs.selem) : Ctxs.selem =
  let rec params s = function
    | [] -> (s, [])
    | (x, q) :: rest ->
        let q' = sub_srt s q in
        let s' = dot1 s in
        let s'', ps = params s' rest in
        (s'', (x, q') :: ps)
  in
  let s', ps = params s f.Ctxs.f_params in
  { f with Ctxs.f_params = ps; Ctxs.f_block = sub_sblock s' f.Ctxs.f_block }

(** Instantiate a schema element's parameters with concrete terms,
    yielding the block of declarations [D] with [Ω ⊢ M⃗ : F > D] (§3.1.2).
    [ms] lists instantiations for the parameters in declaration order and
    must live in the context where the block will be used. *)
let inst_block (e : Ctxs.elem) (ms : normal list) : Ctxs.block =
  if List.length e.Ctxs.e_params <> List.length ms then
    Error.raise_msg "schema element applied to %d arguments, expected %d"
      (List.length ms)
      (List.length e.Ctxs.e_params);
  (* Build σ mapping the innermost parameter (index 1) to the last
     instantiation. *)
  let s = List.fold_left (fun acc m -> Dot (Obj m, acc)) (Shift 0) ms in
  sub_block s e.Ctxs.e_block

let inst_sblock (f : Ctxs.selem) (ms : normal list) : Ctxs.sblock =
  if List.length f.Ctxs.f_params <> List.length ms then
    Error.raise_msg "schema element applied to %d arguments, expected %d"
      (List.length ms)
      (List.length f.Ctxs.f_params);
  let s = List.fold_left (fun acc m -> Dot (Obj m, acc)) (Shift 0) ms in
  sub_sblock s f.Ctxs.f_block
