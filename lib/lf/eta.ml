(** Approximate (simple) types and η-expansion.

    Canonical-forms LF keeps all terms η-long; whenever the checkers or
    the elaborator need "the variable [x] as a term", it must be
    η-expanded at its type.  Only the simple-type skeleton matters for
    the expansion, so we erase dependencies first. *)

open Belr_support
open Belr_syntax
open Lf

let depth = Limits.counter "eta-expansion"

let c_expand = Telemetry.counter "eta.expansions"

(** Simple-type skeletons. *)
type aty = Aatom | Aarr of aty * aty

let rec approx_typ : typ -> aty = function
  | Atom _ -> Aatom
  | Pi (_, a, b) -> Aarr (approx_typ a, approx_typ b)

let rec approx_srt : srt -> aty = function
  | SAtom _ | SEmbed _ -> Aatom
  | SPi (_, s1, s2) -> Aarr (approx_srt s1, approx_srt s2)

(** Skeletons of weak-head closures.  A pending explicit substitution
    never changes the arrow structure of a type or sort (substitution is
    simple-type-preserving), so a closure's skeleton is its node's
    skeleton — η-expansion against a {!Whnf.tclo}/{!Whnf.sclo} needs no
    forcing at all. *)
let approx_tclo ((a, _) : Whnf.tclo) : aty = approx_typ a

let approx_sclo ((s, _) : Whnf.sclo) : aty = approx_srt s

(** [expand_head t h] is the η-long form of head [h] at skeleton [t]:
    [λx₁…xₙ. h (η x₁) … (η xₙ)]. *)
let rec expand_head (t : aty) (h : head) : normal =
  match t with
  | Aatom -> mk_root h []
  | Aarr _ ->
      Telemetry.bump c_expand;
      Limits.guard depth (fun () -> expand_head_arr t h)

and expand_head_arr (t : aty) (h : head) : normal =
  match t with
  | Aatom -> mk_root h []
  | Aarr _ ->
      (* Collect all argument skeletons. *)
      let rec args acc = function
        | Aatom -> (List.rev acc, Aatom)
        | Aarr (a, b) -> args (a :: acc) b
      in
      let doms, _ = args [] t in
      let n = List.length doms in
      (* Under n binders: the head is shifted by n; argument i (1-based,
         first domain) is the variable n - i + 1. *)
      let h' = Shift.shift_head n 0 h in
      let spine =
        List.mapi (fun i dom -> expand_head dom (mk_bvar (n - i))) doms
      in
      let root = mk_root h' spine in
      let rec lams k m = if k = 0 then m else lams (k - 1) (mk_lam "x" m) in
      lams n root

(** η-long occurrence of a variable at a (dependent) type. *)
let expand_var_typ (a : typ) (i : int) : normal =
  expand_head (approx_typ a) (mk_bvar i)

let expand_var_srt (s : srt) (i : int) : normal =
  expand_head (approx_srt s) (mk_bvar i)

(** η-long variables at weak-head (closure) classifiers. *)
let expand_var_tclo (c : Whnf.tclo) (i : int) : normal =
  expand_head (approx_tclo c) (mk_bvar i)

let expand_var_sclo (c : Whnf.sclo) (i : int) : normal =
  expand_head (approx_sclo c) (mk_bvar i)

(** Is [m] exactly the η-long form of head [h] at skeleton [t]?  Used to
    recognize identity substitutions and pattern variables. *)
let is_eta_of (t : aty) (h : head) (m : normal) : bool =
  Equal.normal m (expand_head t h)
