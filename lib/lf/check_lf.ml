(** Bidirectional type-level LF checking — the "conventional Beluga" data
    level.  These are exactly the type-level judgments of §3.1.4's table:

    - type formation        [Δ; Γ ⊢ A ⇐ type]
    - type checking         [Δ; Γ ⊢ M ⇐ A]
    - type synthesis        [Δ; Γ ⊢ R ⇒ A]
    - substitution typing   [Δ; Γ₁ ⊢ σ : Γ₂]
    - context formation and schema checking [Δ ⊢ Γ : G]

    Conservativity (Thm 3.1.5) is tested by running these judgments on
    the outputs of the refinement-level checker.

    Since PR 9 the checking judgments are closure-based internally: the
    classifier of every judgment is a {!Whnf.tclo} [(A, σ)] whose
    substitution is pushed one constructor at a time ({!Whnf.clo_inst}
    for spine steps, [dot1] under binders) instead of being applied
    eagerly.  The subject term is always a concrete normal (terms are
    canonical; only classifiers accumulate pending substitutions), and
    the final atomic comparison is {!Whnf.conv_typ} on closures, so a
    dependent application never forces the instantiated codomain unless
    the comparison actually reaches it.  The [check_*]/[infer_*] entry
    points keep their eager signatures. *)

open Belr_support
open Belr_syntax
open Lf

type env = { sg : Sign.t; delta : Meta.mctx_t }

let make_env sg delta = { sg; delta }

let pp_env e = Sign.pp_env e.sg

let pp_typ e g ppf a =
  let penv = Pp.env_of_ctx (pp_env e) g in
  Pp.pp_typ penv ppf a

let pp_normal e g ppf m =
  let penv = Pp.env_of_ctx (pp_env e) g in
  Pp.pp_normal penv ppf m

(* --- meta-context lookups ------------------------------------------- *)

let mvar_decl e (u : int) : Ctxs.ctx * typ =
  match Shift.mctx_t_lookup_shifted e.delta u with
  | Some (Meta.TDTerm (_, g, a)) -> (g, a)
  | Some _ -> Error.raise_msg "meta-variable %d is not a term variable" u
  | None -> Error.raise_msg "unbound meta-variable %d" u

let pvar_decl e (p : int) : Ctxs.ctx * Ctxs.elem * normal list =
  match Shift.mctx_t_lookup_shifted e.delta p with
  | Some (Meta.TDParam (_, g, el, ms)) -> (g, el, ms)
  | Some _ -> Error.raise_msg "meta-variable %d is not a parameter variable" p
  | None -> Error.raise_msg "unbound parameter variable %d" p

let cvar_schema e (i : int) : Lf.cid_schema =
  match Shift.mctx_t_lookup_shifted e.delta i with
  | Some (Meta.TDCtx (_, g)) -> g
  | Some _ -> Error.raise_msg "meta-variable %d is not a context variable" i
  | None -> Error.raise_msg "unbound context variable %d" i

let svar_decl e (i : int) : Ctxs.ctx * Ctxs.ctx =
  match Shift.mctx_t_lookup_shifted e.delta i with
  | Some (Meta.TDSub (_, range, dom)) -> (range, dom)
  | Some _ -> Error.raise_msg "meta-variable %d is not a substitution variable" i
  | None -> Error.raise_msg "unbound substitution variable %d" i

let _ = svar_decl (* substitution variables are future work, as in Beluga *)

(* --- mutual checking ------------------------------------------------- *)

let rec check_typ e (g : Ctxs.ctx) (a : typ) : unit =
  match a with
  | Atom (a_cid, sp) ->
      let k = (Sign.typ_entry e.sg a_cid).Sign.t_kind in
      check_spine_kind e g sp k
  | Pi (x, a1, a2) ->
      check_typ e g a1;
      check_typ e (Ctxs.ctx_push g (Ctxs.CDecl (x, a1))) a2

and check_spine_kind e g (sp : spine) (k : kind) : unit =
  check_spine_kind_c e g sp (k, Lf.id)

and check_spine_kind_c e g (sp : spine) ((k, sk) : Whnf.kclo) : unit =
  match (sp, k) with
  | [], Ktype -> ()
  | m :: sp', Kpi (_, a, k') ->
      check_normal_c e g m (a, sk);
      check_spine_kind_c e g sp' (Whnf.clo_inst (k', sk) m)
  | [], Kpi _ -> Error.raise_msg "type family is not fully applied"
  | _ :: _, Ktype -> Error.raise_msg "type family is over-applied"

and check_normal e g (m : normal) (a : typ) : unit =
  check_normal_c e g m (a, Lf.id)

and check_normal_c e g (m : normal) (ca : Whnf.tclo) : unit =
  (* under BELR_NO_WHNF the closure is forced here, reverting this rule
     to the eager per-step substitution it performed before PR 9 *)
  let (a, sa) as ca = Whnf.lazy_tclo ca in
  match (m, a) with
  | Lam (x, body), Pi (_, a1, a2) ->
      (* the context stores concrete types (typ_of_bvar shifts them), so
         the domain is forced here — memoized in the Hsub tables *)
      let a1' = Hsub.sub_typ sa a1 in
      check_normal_c e
        (Ctxs.ctx_push g (Ctxs.CDecl (x, a1')))
        body
        (Whnf.clo_push (a2, sa))
  | Lam _, Atom _ ->
      Error.raise_msg "abstraction checked against atomic type %a" (pp_typ e g)
        (Whnf.norm_tclo ca)
  | Root _, Pi _ ->
      Error.raise_msg "term %a is not η-long at type %a" (pp_normal e g) m
        (pp_typ e g) (Whnf.norm_tclo ca)
  | Root (h, sp), Atom _ ->
      let c_h = infer_head_c e g h in
      let c' = check_spine_c e g sp c_h in
      if not (Whnf.conv_typ ca c') then
        Error.raise_msg "type mismatch: expected %a, synthesized %a"
          (pp_typ e g) (Whnf.norm_tclo ca) (pp_typ e g) (Whnf.norm_tclo c')

and infer_neutral e g (m : normal) : typ =
  match m with
  | Root (h, sp) ->
      let c_h = infer_head_c e g h in
      Whnf.norm_tclo (check_spine_c e g sp c_h)
  | Lam _ -> Error.raise_msg "cannot synthesize a type for an abstraction"

and check_spine e g (sp : spine) (a : typ) : typ =
  Whnf.norm_tclo (check_spine_c e g sp (a, Lf.id))

and check_spine_c e g (sp : spine) ((a, sa) : Whnf.tclo) : Whnf.tclo =
  match (sp, a) with
  | [], _ -> (a, sa)
  | m :: sp', Pi (_, a1, a2) ->
      check_normal_c e g m (a1, sa);
      check_spine_c e g sp' (Whnf.clo_inst (a2, sa) m)
  | _ :: _, Atom _ -> Error.raise_msg "term is over-applied"

and infer_head e g (h : head) : typ = Whnf.norm_tclo (infer_head_c e g h)

and infer_head_c e g (h : head) : Whnf.tclo =
  match h with
  | Const c -> ((Sign.const_entry e.sg c).Sign.c_typ, Lf.id)
  | BVar i -> (Ctxops.typ_of_bvar g i, Lf.id)
  | Proj (BVar i, k) -> (Ctxops.typ_of_proj g i k, Lf.id)
  | Proj (PVar (p, s), k) ->
      let g_p, el, ms = pvar_decl e p in
      check_sub e g s g_p;
      let blk = Hsub.inst_block el ms in
      (* blk is valid in g_p; transport components through s *)
      (Ctxops.proj_typ blk (mk_pvar p s) s k, Lf.id)
  | Proj (_, _) ->
      Error.raise_msg "projection base must be a block or parameter variable"
  | PVar _ ->
      Error.raise_msg
        "parameter variable used as a term (missing projection or tuple)"
  | MVar (u, s) ->
      let g_u, p = mvar_decl e u in
      check_sub e g s g_u;
      (* the mvar's declared type is transported lazily: consumers see
         the closure (p, s) and unfold only what they inspect *)
      (p, s)

(** [check_sub e g s g2] checks [Δ; g ⊢ s : g2] ([s] maps [g2]-variables
    to terms over [g]). *)
and check_sub e (g : Ctxs.ctx) (s : sub) (g2 : Ctxs.ctx) : unit =
  match s with
  | Empty ->
      if g2.Ctxs.c_var <> None || g2.Ctxs.c_decls <> [] then
        Error.raise_msg "empty substitution used with a non-empty domain"
  | Shift n ->
      let dropped = Ctxops.ctx_drop g n in
      if not (Equal.ctx dropped g2) then
        Error.raise_msg "shift by %d does not match the expected domain" n
  | Dot (f, s') -> (
      match g2.Ctxs.c_decls with
      | [] -> Error.raise_msg "substitution is longer than its domain"
      | Ctxs.CDecl (_, a) :: rest -> (
          let g2' = { g2 with Ctxs.c_decls = rest } in
          check_sub e g s' g2';
          match f with
          | Obj m -> check_normal_c e g m (a, s')
          | Tup _ ->
              Error.raise_msg "tuple substituted for an ordinary variable"
          | Undef -> Error.raise_msg "undefined substitution entry")
      | Ctxs.CBlock (_, el, ms) :: rest -> (
          let g2' = { g2 with Ctxs.c_decls = rest } in
          check_sub e g s' g2';
          let ms' = List.map (Hsub.sub_normal s') ms in
          let blk = Hsub.inst_block (Hsub.sub_elem s' el) ms' in
          match f with
          | Tup t -> check_tuple e g t blk
          | Obj (Root (h, [])) ->
              (* whole-block renaming: h must denote a block with an equal
                 instantiated block of declarations *)
              let blk_h = block_of_head e g h in
              if not (Equal.block blk_h blk) then
                Error.raise_msg "block variable renamed to a mismatched block"
          | Obj _ ->
              Error.raise_msg "term substituted for a block variable"
          | Undef -> Error.raise_msg "undefined substitution entry"))

(** [Δ; Γ ⊢ M⃗ ⇐ D]: check the components of a tuple against a block of
    declarations, substituting earlier components into later types. *)
and check_tuple e g (t : tuple) (blk : Ctxs.block) : unit =
  match (t, blk) with
  | [], [] -> ()
  | m :: t', (_, a) :: blk' ->
      check_normal e g m a;
      (* instantiate the first block binder with m in the remaining types *)
      let blk'' = Hsub.sub_block (dot_obj m (mk_shift 0)) blk' in
      check_tuple e g t' blk''
  | _ ->
      Error.raise_msg "tuple has %d components but block expects %d"
        (List.length t) (List.length blk)

and block_of_head e g (h : head) : Ctxs.block =
  match h with
  | BVar i -> Ctxops.block_of_bvar g i
  | PVar (p, s) ->
      let g_p, el, ms = pvar_decl e p in
      check_sub e g s g_p;
      let blk = Hsub.inst_block el ms in
      (* transport through s: the block's component types live in g_p
         extended by earlier components; substituting s and projections of
         the head itself is done by the caller via proj_typ when needed.
         For whole-block equality we transport pointwise. *)
      List.mapi
        (fun j (x, a) ->
          (* component j is under j block binders; extend s accordingly *)
          let rec ext k s = if k = 0 then s else ext (k - 1) (Hsub.dot1 s) in
          (x, Hsub.sub_typ (ext j s) a))
        blk
  | _ -> Error.raise_msg "expected a block or parameter variable"

(* --- kinds, blocks, schema elements, schemas -------------------------- *)

let rec check_kind e g (k : kind) : unit =
  match k with
  | Ktype -> ()
  | Kpi (x, a, k') ->
      check_typ e g a;
      check_kind e (Ctxs.ctx_push g (Ctxs.CDecl (x, a))) k'

let check_block e g (b : Ctxs.block) : unit =
  let rec go g = function
    | [] -> ()
    | (x, a) :: rest ->
        check_typ e g a;
        go (Ctxs.ctx_push g (Ctxs.CDecl (x, a))) rest
  in
  go g b

let check_elem e g (el : Ctxs.elem) : unit =
  let rec params g = function
    | [] -> g
    | (x, a) :: rest ->
        check_typ e g a;
        params (Ctxs.ctx_push g (Ctxs.CDecl (x, a))) rest
  in
  let g' = params g el.Ctxs.e_params in
  check_block e g' el.Ctxs.e_block

let check_schema e (els : Ctxs.schema) : unit =
  List.iter (check_elem e Ctxs.empty_ctx) els;
  (* no duplicate elements (§3.1.2) *)
  let rec dup = function
    | [] -> ()
    | el :: rest ->
        if List.exists (Equal.elem el) rest then
          Error.raise_msg "schema contains duplicate elements";
        dup rest
  in
  dup els

(** Check the instantiations [ms] of a schema element's parameters
    ([Ω ⊢ M⃗ : E > D]), in context [g]. *)
let check_elem_inst e g (el : Ctxs.elem) (ms : normal list) : unit =
  let rec go s params ms =
    match (params, ms) with
    | [], [] -> ()
    | (_, a) :: params', m :: ms' ->
        check_normal_c e g m (a, s);
        go (dot_obj m s) params' ms'
    | _ ->
        Error.raise_msg "schema element applied to %d arguments, expected %d"
          (List.length ms)
          (List.length el.Ctxs.e_params)
  in
  go mk_empty el.Ctxs.e_params ms

(* --- contexts --------------------------------------------------------- *)

let check_ctx e (g : Ctxs.ctx) : unit =
  (match g.Ctxs.c_var with
  | Some i -> ignore (cvar_schema e i)
  | None -> ());
  let rec go (prefix : Ctxs.ctx) = function
    | [] -> ()
    | d :: rest ->
        (* entries are innermost-first; check outermost first *)
        go prefix rest;
        let prefix_here =
          { prefix with Ctxs.c_decls = rest @ prefix.Ctxs.c_decls }
        in
        (match d with
        | Ctxs.CDecl (_, a) -> check_typ e prefix_here a
        | Ctxs.CBlock (_, el, ms) ->
            check_elem e Ctxs.empty_ctx el;
            check_elem_inst e prefix_here el ms);
        ()
  in
  go { g with Ctxs.c_decls = [] } g.Ctxs.c_decls

(** Schema checking [Δ ⊢ Γ : G] (§3.1.2): every entry must be a block
    matching one of the schema's elements, with well-typed parameters. *)
let check_ctx_schema e (g : Ctxs.ctx) (schema_cid : Lf.cid_schema) : unit =
  let schema = (Sign.schema_entry e.sg schema_cid).Sign.g_elems in
  (match g.Ctxs.c_var with
  | Some i ->
      let g' = cvar_schema e i in
      if g' <> schema_cid then
        Error.raise_msg "context variable has schema %s, expected %s"
          (Sign.schema_entry e.sg g').Sign.g_name
          (Sign.schema_entry e.sg schema_cid).Sign.g_name
  | None -> ());
  let rec go rest =
    match rest with
    | [] -> ()
    | d :: rest' ->
        go rest';
        let prefix =
          { g with Ctxs.c_decls = rest' }
        in
        (match d with
        | Ctxs.CDecl _ ->
            Error.raise_msg
              "context contains a single declaration; schema checking \
               requires block assumptions"
        | Ctxs.CBlock (_, el, ms) ->
            if not (List.exists (Equal.elem el) schema) then
              Error.raise_msg "context block does not match any schema element";
            check_elem_inst e prefix el ms)
  in
  go g.Ctxs.c_decls
