(** Operations on type-level LF contexts: variable and projection lookup,
    block instantiation at a position, and transport into the full
    context.  (The refinement-level analogues, including promotion [Ψ⊤],
    live in [Belr_core].) *)

open Belr_support
open Belr_syntax
open Lf

(** Type of an ordinary variable [x] (entry [i] must be a single
    declaration), transported to be valid in all of [Γ]. *)
let typ_of_bvar (g : Ctxs.ctx) (i : int) : typ =
  match Ctxs.ctx_lookup g i with
  | Some (Ctxs.CDecl (_, a)) -> Shift.shift_typ i 0 a
  | Some (Ctxs.CBlock _) ->
      Error.raise_msg
        "variable %d is a block variable and must be used under a projection" i
  | None -> Error.raise_msg "unbound variable %d" i

(** The instantiated block [D] classifying block variable [i], transported
    into all of [Γ] ([Ω ⊢ M⃗ : E > D]). *)
let block_of_bvar (g : Ctxs.ctx) (i : int) : Ctxs.block =
  match Ctxs.ctx_lookup g i with
  | Some (Ctxs.CBlock (_, elem, ms)) ->
      let ms' = List.map (Shift.shift_normal i 0) ms in
      Hsub.inst_block (Shift.shift_elem i 0 elem) ms'
  | Some (Ctxs.CDecl _) ->
      Error.raise_msg "variable %d is not a block variable" i
  | None -> Error.raise_msg "unbound variable %d" i

(** Type of the [k]-th component of a block, with the earlier components
    replaced by projections of [base] and the ambient context reached
    through [tail].  [blk] must be valid in [range(tail), x₁…x₍ₖ₋₁₎]. *)
let proj_typ (blk : Ctxs.block) (base : head) (tail : sub) (k : int) : typ =
  match List.nth_opt blk (k - 1) with
  | None ->
      Error.raise_msg "projection .%d out of range (block has %d components)" k
        (List.length blk)
  | Some (_, a_k) ->
      (* index 1 ↦ x₍ₖ₋₁₎ ↦ base.(k-1), …, index k-1 ↦ x₁ ↦ base.1 *)
      let rec chain j acc =
        if j = 0 then acc
        else chain (j - 1) (dot_obj (mk_root (mk_proj base (k - j)) []) acc)
      in
      Hsub.sub_typ (chain (k - 1) tail) a_k

(** Type of the projection [x.k] of block variable [i] in [Γ]. *)
let typ_of_proj (g : Ctxs.ctx) (i : int) (k : int) : typ =
  let blk = block_of_bvar g i in
  proj_typ blk (mk_bvar i) (mk_shift 0) k

(** Drop the [n] innermost entries of a context (for checking [Shift n]). *)
let ctx_drop (g : Ctxs.ctx) (n : int) : Ctxs.ctx =
  if List.length g.Ctxs.c_decls < n then
    Error.raise_msg "substitution shifts by %d but context has only %d entries"
      n
      (List.length g.Ctxs.c_decls)
  else
    let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
    { g with Ctxs.c_decls = drop n g.Ctxs.c_decls }
