(** The global signature Σ.

    Holds every declared atomic type family, atomic sort family, constant,
    sort assignment ([c :: S] for an already-declared constant), schema,
    refinement schema, and computation-level function.  Ids handed out are
    dense integers; name lookup goes through a single namespace, as in
    Beluga.

    Implicit arguments: a declaration elaborated from the surface syntax
    may have [implicit] leading Π-quantifiers that were inserted for free
    capitalized variables; checkers ignore the flag (terms are fully
    explicit internally) but printers and the elaborator use it. *)

open Belr_support
open Belr_syntax

type typ_entry = {
  t_name : string;
  t_kind : Lf.kind;
  t_implicit : int;
  mutable t_consts : Lf.cid_const list;  (** constructors, in declaration order *)
}

type srt_entry = {
  s_name : string;
  s_refines : Lf.cid_typ;
  s_kind : Lf.skind;
  s_implicit : int;
  mutable s_consts : Lf.cid_const list;
      (** constants given a sort in this family, in declaration order *)
}

type const_entry = {
  c_name : string;
  c_typ : Lf.typ;
  c_implicit : int;
  c_family : Lf.cid_typ;  (** target family of [c_typ] *)
}

type schema_entry = {
  g_name : string;
  g_elems : Ctxs.schema;
  mutable g_trivial : Lf.cid_sschema;
      (** the auto-registered trivial refinement [⌈G⌉ ⊑ G]; the type level
          is the embedded fragment of the refinement level, so every
          schema needs its embedding to be nameable *)
}

type sschema_entry = {
  h_name : string;
  h_refines : Lf.cid_schema;
  h_elems : Ctxs.selem list;
  h_hidden : bool;
      (** auto-registered trivial refinement [⌈G⌉ ⊑ G] (named [G^]): not a
          user declaration, so tooling (summaries, name resolution
          priority) treats it as hidden *)
}

type rec_entry = {
  r_name : string;
  r_styp : Comp.ctyp;  (** declared comp sort ζ *)
  r_typ : Comp.ctyp_t;  (** its erasure τ (conservativity output) *)
  mutable r_body : Comp.exp option;
      (** filled after the body is checked, enabling recursion *)
  mutable r_group : Lf.cid_rec list;
      (** the mutual-recursion group this function was declared in
          ([rec f … and g …;]), in declaration order; [[]] until recorded
          (read it through {!rec_group}, which defaults to the singleton) *)
}

type block_entry = {
  b_name : string;
  b_params : (Name.t * Lf.srt) list;  (** Π-bound block parameters *)
  b_fields : Ctxs.sblock;
      (** block components, first first; a field may refer to earlier
          fields by de Bruijn index (1 = immediately preceding) *)
}
(** A [%block] declaration: a named context block usable in [%worlds]
    declarations.  Fields are stored at the refinement (sort) level —
    type-level families arrive embedded — so one representation covers
    both LF and LFR blocks. *)

type worlds_entry = {
  w_fam : Lf.cid_typ;  (** the bounded family *)
  w_blocks : int list;  (** [%block] ids, in declaration order *)
  w_loc : Loc.t;  (** where the [%worlds] declaration stands *)
}
(** A [%worlds (b₁ | … | bₙ) fam] declaration: contexts at uses of [fam]
    may only extend by instances of the listed blocks. *)

type mode_entry = {
  m_fam : Lf.cid_typ;
      (** the moded family, resolved through [s_refines] when the
          declaration named a sort family *)
  m_srt : Lf.cid_srt option;
      (** when the declaration named a sort family: the analyzer checks
          that family's (sharper) clauses instead of the type family's *)
  m_name : string;  (** the family name as written in the declaration *)
  m_args : (bool * string) list;
      (** one (polarity, argument name) per explicit argument position,
          in order; [true] = input ([+]) *)
  m_loc : Loc.t;  (** where the [%mode] declaration stands *)
}
(** A [%mode fam +M … -N] declaration: input ([+]) positions must be
    ground for the judgment to be invoked, output ([-]) positions are
    ground when it succeeds. *)

type sym =
  | Sym_typ of Lf.cid_typ
  | Sym_srt of Lf.cid_srt
  | Sym_const of Lf.cid_const
  | Sym_schema of Lf.cid_schema
  | Sym_sschema of Lf.cid_sschema
  | Sym_rec of Lf.cid_rec
  | Sym_block of int
  | Sym_worlds of Lf.cid_typ
      (** bound under the synthetic name [fam ^ "%worlds"], keyed by the
          family — one [%worlds] per family, enforced by [bind_name] *)
  | Sym_mode of Lf.cid_typ
      (** bound under [fam ^ "%mode"], keyed by the resolved family — one
          [%mode] per (erased) family, enforced by [bind_name] *)

type t = {
  typs : (int, typ_entry) Hashtbl.t;
  srts : (int, srt_entry) Hashtbl.t;
  consts : (int, const_entry) Hashtbl.t;
  schemas : (int, schema_entry) Hashtbl.t;
  sschemas : (int, sschema_entry) Hashtbl.t;
  recs : (int, rec_entry) Hashtbl.t;
  blocks : (int, block_entry) Hashtbl.t;
  worlds : (Lf.cid_typ, worlds_entry) Hashtbl.t;  (** keyed by family *)
  modes : (Lf.cid_typ, mode_entry) Hashtbl.t;  (** keyed by resolved family *)
  csorts : (int * int, Lf.srt * int) Hashtbl.t;
      (** (constant, sort family) → (assigned sort, implicit count) *)
  by_name : (string, sym) Hashtbl.t;
  poisoned : (string, unit) Hashtbl.t;
      (** names declared by a declaration that failed to check; looking one
          up raises {!Belr_support.Error.Depends_on_failed} so downstream
          declarations report a single dependency note instead of a
          cascade of spurious errors *)
  locs : (string, Loc.t) Hashtbl.t;
      (** name → source span of its declaration; best-effort (synthetic
          entries have no span), consumed by tooling that reports on the
          signature after checking, e.g. [belr lint] *)
  mutable fresh : int;
}

let create () =
  {
    typs = Hashtbl.create 64;
    srts = Hashtbl.create 64;
    consts = Hashtbl.create 64;
    schemas = Hashtbl.create 16;
    sschemas = Hashtbl.create 16;
    recs = Hashtbl.create 16;
    blocks = Hashtbl.create 16;
    worlds = Hashtbl.create 16;
    modes = Hashtbl.create 16;
    csorts = Hashtbl.create 64;
    by_name = Hashtbl.create 128;
    poisoned = Hashtbl.create 16;
    locs = Hashtbl.create 128;
    fresh = 0;
  }

let next sg =
  let i = sg.fresh in
  sg.fresh <- i + 1;
  i

let bind_name sg name sym =
  if Hashtbl.mem sg.by_name name then
    Error.raise_msg "name %s is already declared" name;
  Hashtbl.replace sg.by_name name sym

(** Mark [name] as declared by a failed declaration (fault-tolerant
    checking); subsequent lookups raise {!Error.Depends_on_failed}. *)
let poison sg name = Hashtbl.replace sg.poisoned name ()

let is_poisoned sg name = Hashtbl.mem sg.poisoned name

(** Remove [name] from the poisoned set (it is about to be retried). *)
let unpoison sg name = Hashtbl.remove sg.poisoned name

let lookup_name sg name =
  if Hashtbl.mem sg.poisoned name then raise (Error.Depends_on_failed name);
  Hashtbl.find_opt sg.by_name name

(** Like {!lookup_name}, but poison-blind: tooling that inspects the
    signature (the incremental invalidation pass of [belr serve]) needs
    to see failed declarations too, without raising. *)
let sym_opt sg name = Hashtbl.find_opt sg.by_name name

(** Record where [name] was declared.  Ghost spans are not recorded, so a
    later real span (e.g. a per-constructor location refining the whole
    declaration's) can still land. *)
let set_decl_loc sg name (loc : Loc.t) =
  if not (Loc.is_ghost loc) then Hashtbl.replace sg.locs name loc

let decl_loc sg name : Loc.t option = Hashtbl.find_opt sg.locs name

(* --- declaration ---------------------------------------------------- *)

let add_typ sg ~name ~kind ~implicit : Lf.cid_typ =
  let id = next sg in
  Hashtbl.replace sg.typs id
    { t_name = name; t_kind = kind; t_implicit = implicit; t_consts = [] };
  bind_name sg name (Sym_typ id);
  id

let add_srt sg ~name ~refines ~skind ~implicit : Lf.cid_srt =
  let id = next sg in
  Hashtbl.replace sg.srts id
    {
      s_name = name;
      s_refines = refines;
      s_kind = skind;
      s_implicit = implicit;
      s_consts = [];
    };
  bind_name sg name (Sym_srt id);
  id

let add_const sg ~name ~typ ~implicit : Lf.cid_const =
  let id = next sg in
  let family = Lf.typ_target typ in
  Hashtbl.replace sg.consts id
    { c_name = name; c_typ = typ; c_implicit = implicit; c_family = family };
  bind_name sg name (Sym_const id);
  (match Hashtbl.find_opt sg.typs family with
  | Some te -> te.t_consts <- te.t_consts @ [ id ]
  | None -> Error.violation "add_const: unknown target family");
  id

(** Record the sort assignment [c :: S] where [S]'s target is the sort
    family [s]; used when an [LFR s ⊑ a] declaration lists [c]. *)
let add_csort sg ~const ~srt ~implicit : unit =
  let family =
    match Lf.srt_target srt with
    | Some s -> s
    | None ->
        Error.violation "add_csort: assigned sort targets an embedding"
  in
  if Hashtbl.mem sg.csorts (const, family) then
    Error.raise_msg "constant already has a sort in this family";
  Hashtbl.replace sg.csorts (const, family) (srt, implicit);
  match Hashtbl.find_opt sg.srts family with
  | Some se -> se.s_consts <- se.s_consts @ [ const ]
  | None -> Error.violation "add_csort: unknown sort family"

let add_schema sg ~name ~elems : Lf.cid_schema =
  let id = next sg in
  Hashtbl.replace sg.schemas id { g_name = name; g_elems = elems; g_trivial = -1 };
  bind_name sg name (Sym_schema id);
  (* auto-register the trivial refinement ⌈G⌉ under a hidden name *)
  let tid = next sg in
  let selems = (Embed.schema ~cid:id elems).Ctxs.h_elems in
  Hashtbl.replace sg.sschemas tid
    { h_name = name ^ "^"; h_refines = id; h_elems = selems; h_hidden = true };
  bind_name sg (name ^ "^") (Sym_sschema tid);
  (Hashtbl.find sg.schemas id).g_trivial <- tid;
  id

let add_sschema sg ~name ~refines ~elems : Lf.cid_sschema =
  let id = next sg in
  Hashtbl.replace sg.sschemas id
    { h_name = name; h_refines = refines; h_elems = elems; h_hidden = false };
  bind_name sg name (Sym_sschema id);
  id

let add_rec sg ~name ~styp ~typ : Lf.cid_rec =
  let id = next sg in
  Hashtbl.replace sg.recs id
    { r_name = name; r_styp = styp; r_typ = typ; r_body = None; r_group = [] };
  bind_name sg name (Sym_rec id);
  id

(** Declare a [%block].  Fields are at the sort level (see
    {!type-block_entry}); the name lives in the shared namespace. *)
let add_block sg ~name ~params ~fields : int =
  let id = next sg in
  Hashtbl.replace sg.blocks id
    { b_name = name; b_params = params; b_fields = fields };
  bind_name sg name (Sym_block id);
  id

(** Declare the [%worlds] of family [fam] — at most one per family,
    enforced through the synthetic name binding [fam ^ "%worlds"] (the
    ["%"] cannot occur in a surface identifier, so no collision with user
    declarations is possible). *)
let add_worlds sg ~fam ~fam_name ~blocks ~loc : unit =
  if Hashtbl.mem sg.worlds fam then
    Error.raise_msg "the worlds of %s are already declared" fam_name;
  bind_name sg (fam_name ^ "%worlds") (Sym_worlds fam);
  Hashtbl.replace sg.worlds fam { w_fam = fam; w_blocks = blocks; w_loc = loc }

(** Declare the [%mode] of a family — at most one per resolved family,
    enforced through the synthetic name binding [fam ^ "%mode"] exactly
    like {!add_worlds}.  [name] is the surface name the declaration used
    (a sort family keeps its own name even though it keys under its
    refined type family). *)
let add_mode sg ~fam ~srt ~name ~args ~loc : unit =
  if Hashtbl.mem sg.modes fam then
    Error.raise_msg "the mode of %s is already declared"
      (match Hashtbl.find_opt sg.typs fam with
      | Some te -> te.t_name
      | None -> name);
  bind_name sg (name ^ "%mode") (Sym_mode fam);
  Hashtbl.replace sg.modes fam
    { m_fam = fam; m_srt = srt; m_name = name; m_args = args; m_loc = loc }

let set_rec_body sg id body =
  match Hashtbl.find_opt sg.recs id with
  | Some e -> e.r_body <- Some body
  | None -> Error.violation "set_rec_body: unknown function"

(** Record that [ids] (in declaration order) form one [rec … and …;]
    group; every member gets the full list. *)
let set_rec_group sg (ids : Lf.cid_rec list) =
  List.iter
    (fun id ->
      match Hashtbl.find_opt sg.recs id with
      | Some e -> e.r_group <- ids
      | None -> Error.violation "set_rec_group: unknown function")
    ids

(** The mutual-recursion group of [id], defaulting to the singleton for
    functions declared alone (or predating group tracking). *)
let rec_group sg (id : Lf.cid_rec) : Lf.cid_rec list =
  match Hashtbl.find_opt sg.recs id with
  | Some { r_group = _ :: _ as g; _ } -> g
  | _ -> [ id ]

(* --- retraction (incremental re-checking) ----------------------------- *)

(** Retract one declared name: its entry, its name binding, its poison
    mark, its recorded span, and every membership link pointing at it
    from surviving entries.  Ids are {e not} reused ([fresh] keeps
    counting), so ids held by unchanged declarations stay valid — that is
    what lets the incremental server re-check only the edited
    declaration's downstream closure while the rest of the signature
    keeps its identity.

    Retraction granularity is the {e declaration}: callers retract every
    name a declaration bound (see [Ext.declared_names]) before
    re-processing it, so cross-entry links within one declaration (a
    constant in its family's [t_consts]) vanish with the declaration.
    Links {e into} other declarations' entries — a refinement's sort
    assignments on older constants, a constant's membership in an older
    family — are scrubbed here. *)
let retract_name sg name =
  (match Hashtbl.find_opt sg.by_name name with
  | None -> ()
  | Some sym ->
      (match sym with
      | Sym_typ a -> Hashtbl.remove sg.typs a
      | Sym_srt s ->
          Hashtbl.remove sg.srts s;
          (* drop every sort assignment into the retracted family *)
          let keys =
            Hashtbl.fold
              (fun (c, f) _ acc -> if f = s then (c, f) :: acc else acc)
              sg.csorts []
          in
          List.iter (Hashtbl.remove sg.csorts) keys
      | Sym_const c ->
          (match Hashtbl.find_opt sg.consts c with
          | Some ce -> (
              match Hashtbl.find_opt sg.typs ce.c_family with
              | Some te ->
                  te.t_consts <- List.filter (fun id -> id <> c) te.t_consts
              | None -> ())
          | None -> ());
          Hashtbl.remove sg.consts c;
          (* the constant's sort assignments, in any family *)
          let keys =
            Hashtbl.fold
              (fun (c', f) _ acc -> if c' = c then (c', f) :: acc else acc)
              sg.csorts []
          in
          List.iter (Hashtbl.remove sg.csorts) keys;
          Hashtbl.iter
            (fun _ se ->
              if List.mem c se.s_consts then
                se.s_consts <- List.filter (fun id -> id <> c) se.s_consts)
            sg.srts
      | Sym_schema g -> Hashtbl.remove sg.schemas g
      | Sym_sschema h -> Hashtbl.remove sg.sschemas h
      | Sym_rec r -> Hashtbl.remove sg.recs r
      | Sym_block b -> Hashtbl.remove sg.blocks b
      | Sym_worlds f -> Hashtbl.remove sg.worlds f
      | Sym_mode f -> Hashtbl.remove sg.modes f);
      Hashtbl.remove sg.by_name name);
  Hashtbl.remove sg.poisoned name;
  Hashtbl.remove sg.locs name

(** Retract a declaration's worth of names (see {!retract_name}). *)
let retract_names sg names = List.iter (retract_name sg) names

(* --- lookup ---------------------------------------------------------- *)

let fail_unknown what id = Error.violation "unknown %s id %d" what id

let typ_entry sg id =
  match Hashtbl.find_opt sg.typs id with Some e -> e | None -> fail_unknown "type" id

let srt_entry sg id =
  match Hashtbl.find_opt sg.srts id with Some e -> e | None -> fail_unknown "sort" id

let const_entry sg id =
  match Hashtbl.find_opt sg.consts id with
  | Some e -> e
  | None -> fail_unknown "constant" id

let schema_entry sg id =
  match Hashtbl.find_opt sg.schemas id with
  | Some e -> e
  | None -> fail_unknown "schema" id

let sschema_entry sg id =
  match Hashtbl.find_opt sg.sschemas id with
  | Some e -> e
  | None -> fail_unknown "refinement schema" id

let rec_entry sg id =
  match Hashtbl.find_opt sg.recs id with
  | Some e -> e
  | None -> fail_unknown "function" id

let rec_entry_opt sg id = Hashtbl.find_opt sg.recs id

(** The sort assigned to constant [c] in sort family [s], if any. *)
let csort sg ~const ~family : (Lf.srt * int) option =
  Hashtbl.find_opt sg.csorts (const, family)

let block_entry sg id =
  match Hashtbl.find_opt sg.blocks id with
  | Some e -> e
  | None -> fail_unknown "block" id

(** The declared worlds of a family, if any. *)
let worlds_of sg (fam : Lf.cid_typ) : worlds_entry option =
  Hashtbl.find_opt sg.worlds fam

(** All declared computation-level functions (unordered). *)
let all_recs sg : (Lf.cid_rec * rec_entry) list =
  Hashtbl.fold (fun id e acc -> (id, e) :: acc) sg.recs []

let all_blocks sg : (int * block_entry) list =
  Hashtbl.fold (fun id e acc -> (id, e) :: acc) sg.blocks []

let all_worlds sg : worlds_entry list =
  Hashtbl.fold (fun _ e acc -> e :: acc) sg.worlds []

(** The declared mode of a family (resolved through [s_refines] for sort
    families at declaration time), if any. *)
let mode_of sg (fam : Lf.cid_typ) : mode_entry option =
  Hashtbl.find_opt sg.modes fam

let all_modes sg : mode_entry list =
  Hashtbl.fold (fun _ e acc -> e :: acc) sg.modes []

let all_typs sg : (Lf.cid_typ * typ_entry) list =
  Hashtbl.fold (fun id e acc -> (id, e) :: acc) sg.typs []

let all_srts sg : (Lf.cid_srt * srt_entry) list =
  Hashtbl.fold (fun id e acc -> (id, e) :: acc) sg.srts []

let all_consts sg : (Lf.cid_const * const_entry) list =
  Hashtbl.fold (fun id e acc -> (id, e) :: acc) sg.consts []

let all_schemas sg : (Lf.cid_schema * schema_entry) list =
  Hashtbl.fold (fun id e acc -> (id, e) :: acc) sg.schemas []

let all_sschemas sg : (Lf.cid_sschema * sschema_entry) list =
  Hashtbl.fold (fun id e acc -> (id, e) :: acc) sg.sschemas []

(** Every recorded sort assignment
    [(constant, sort family) → (sort, implicits)] (unordered). *)
let all_csorts sg : ((Lf.cid_const * Lf.cid_srt) * (Lf.srt * int)) list =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) sg.csorts []

(** Is this refinement-schema entry the auto-registered trivial refinement
    (hidden from user-facing summaries)? *)
let is_hidden_sschema (e : sschema_entry) = e.h_hidden

(* --- summary ---------------------------------------------------------- *)

(** Declaration counts by kind, as user-facing tooling reports them:
    [n_sschemas] counts only user-declared refinement schemas, not the
    trivial [⌈G⌉] auto-registered per schema. *)
type summary = {
  n_typs : int;
  n_srts : int;
  n_consts : int;
  n_schemas : int;
  n_sschemas : int;
  n_recs : int;
}

let summary sg : summary =
  {
    n_typs = Hashtbl.length sg.typs;
    n_srts = Hashtbl.length sg.srts;
    n_consts = Hashtbl.length sg.consts;
    n_schemas = Hashtbl.length sg.schemas;
    n_sschemas =
      Hashtbl.fold
        (fun _ e n -> if e.h_hidden then n else n + 1)
        sg.sschemas 0;
    n_recs = Hashtbl.length sg.recs;
  }

(** Constructors of a type family, in declaration order. *)
let constants_of_typ sg a = (typ_entry sg a).t_consts

(** Constants carrying a sort in family [s], in declaration order. *)
let constants_of_srt sg s = (srt_entry sg s).s_consts

(** The trivial refinement [⌈G⌉] of a declared schema (every world
    embedded); used for promotion [Ψ⊤]. *)
let embed_schema sg (g : Lf.cid_schema) : Ctxs.sschema =
  Embed.schema ~cid:g (schema_entry sg g).g_elems

let resolver sg : Pp.resolver =
  {
    Pp.r_typ = (fun i -> (typ_entry sg i).t_name);
    Pp.r_srt = (fun i -> (srt_entry sg i).s_name);
    Pp.r_const = (fun i -> (const_entry sg i).c_name);
    Pp.r_schema = (fun i -> (schema_entry sg i).g_name);
    Pp.r_sschema = (fun i -> (sschema_entry sg i).h_name);
    Pp.r_rec = (fun i -> (rec_entry sg i).r_name);
  }

let pp_env sg = Pp.env ~res:(resolver sg) ()
