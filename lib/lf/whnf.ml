(** Lazy weak-head normalization through explicit substitutions.

    The eager kernel ({!Hsub}) computes full normal forms: substituting
    into a term traverses {e all} of it, even when the consumer only
    wants to know whether the head is a [Lam] or which constant heads a
    [Root].  This module pairs interned store nodes with {e delayed}
    substitutions — closures [(M, σ)] denoting [⟦σ⟧M] — and exposes only
    as much structure as a weak-head consumer inspects:

    - {!whnf_normal} reveals the top constructor of [⟦σ⟧M], performing
      β-contractions hereditarily at the head but leaving every argument
      as an un-substituted closure;
    - {!whnf_typ}/{!whnf_srt} are O(1): type- and sort-level syntax has
      no redexes, so a pending substitution never changes the top
      constructor;
    - {!conv_normal}/{!conv_typ}/{!conv_srt}/{!conv_spine} decide
      definitional equality of closures by comparing weak-head forms
      spine-wise, with the {!Belr_syntax.Equal} phys-eq fast paths
      checked {e before} any unfolding (two pointer-equal nodes under
      pointer-equal — or closed under any — substitutions are equal
      without computing anything).

    Soundness of the laziness: hereditary substitution is a function, so
    [⟦σ⟧M] has a unique normal form and contracting only the head-spine
    (leaving arguments delayed) commutes with forcing the rest later
    ({!norm_nclo}).  The agreement property — whnf followed by full
    forcing ≡ eager [Hsub] — is tested on every shipped kit under all
    four [BELR_NO_HASHCONS] × [BELR_NO_WHNF] combinations.

    Memoization follows the PR-4 discipline: results of {!whnf_normal}
    on [Root] closures are cached in a bounded direct-mapped table keyed
    [(sub id, node id)].  Store ids are unique, monotone, and never
    reused, and interned nodes are immutable, so a hit is always sound.
    The tables are {!Session.t}-scoped like the [Hsub] memos
    ({!fresh_tables}/{!use_tables}), so one serve session's cached
    weak-head forms can never leak into another's.

    Ablation: [BELR_NO_WHNF=1] (or {!set_whnf_enabled}[ false]) reverts
    every consumer to the eager path — closures are forced through
    {!Hsub} and compared with {!Belr_syntax.Equal} — which is what bench
    E10 measures against. *)

open Belr_support
open Belr_syntax
open Lf

let depth = Limits.counter "weak-head normalization"

let guard f = Limits.guard depth f

let c_whnf = Telemetry.counter "whnf.weak_head_steps"

(* --- ablation ---------------------------------------------------------- *)

let enabled_ref = ref (Sys.getenv_opt "BELR_NO_WHNF" <> Some "1")

let whnf_enabled () = !enabled_ref

(** Toggle the lazy engine (the [BELR_NO_WHNF] ablation, also used by the
    agreement property tests).  Disabled, every closure consumer forces
    eagerly through {!Hsub} and compares with {!Belr_syntax.Equal}. *)
let set_whnf_enabled b = enabled_ref := b

(* --- closures ----------------------------------------------------------- *)

type nclo = normal * sub
(** [(M, σ)] denotes [⟦σ⟧M]. *)

type tclo = typ * sub

type sclo = srt * sub

type kclo = kind * sub

type lclo = skind * sub

(** Force a closure to its full (eager) normal form.  [Hsub] memoizes
    these, so forcing the same closure twice is one array read. *)
let norm_nclo ((m, s) : nclo) : normal = Hsub.sub_normal s m

let norm_tclo ((a, s) : tclo) : typ = Hsub.sub_typ s a

let norm_sclo ((q, s) : sclo) : srt = Hsub.sub_srt s q

(** Ablation hooks for the checkers: under [BELR_NO_WHNF] a closure is
    forced on the spot, so every checking step pays the eager hereditary
    substitution it paid before PR 9 (the pending substitution never
    accumulates); enabled, the closure is passed through untouched and
    only weak-head consumers force fragments of it. *)
let lazy_tclo (c : tclo) : tclo =
  if whnf_enabled () then c else (norm_tclo c, Lf.id)

let lazy_sclo (c : sclo) : sclo =
  if whnf_enabled () then c else (norm_sclo c, Lf.id)

(** Instantiate a binder-body closure with an argument already living in
    the {e current} context: [clo_inst (B, σ) M = (B, M.σ)] denotes
    [[M/1]⟦dot1 σ⟧B].  This is the checkers' spine step — no [Hsub.comp],
    no traversal. *)
let clo_inst ((b, s) : 'a * sub) (m : normal) : 'a * sub = (b, mk_dot (Obj m) s)

(** Step a binder-body closure under its binder: [clo_push (B, σ) =
    (B, dot1 σ)]. *)
let clo_push ((b, s) : 'a * sub) : 'a * sub = (b, Hsub.dot1 s)

(* --- weak-head views ----------------------------------------------------- *)

(** Weak-head form of a term closure.  [WLam (x, body, σ)] denotes
    [⟦σ⟧(λx. body)] — the body is under [dot1 σ] ({!clo_push} descends,
    β-contraction uses [M.σ] directly).  [WRoot (h, sp, σ)] has the head
    already substituted (it is a genuine head in the current context)
    while every spine argument is still delayed under [σ]. *)
type nwhnf =
  | WLam of Name.t * normal * sub
  | WRoot of head * spine * sub

(** Weak-head views of types and sorts.  Substitution cannot change the
    top constructor at these levels, so the views are computed without
    any traversal. *)
type twhnf = WAtom of cid_typ * spine * sub | WPi of Name.t * tclo * tclo

type swhnf =
  | WSAtom of cid_srt * spine * sub
  | WSEmbed of cid_typ * spine * sub
  | WSPi of Name.t * sclo * sclo

(* --- whnf memo table ----------------------------------------------------- *)

(* Direct-mapped cache for Root-closure weak-head forms, keyed
   (sub id, normal id) exactly like the Hsub memo.  Only consulted when
   the store is enabled (ids require interning). *)

let memo_bits = 14

let memo_size = 1 lsl memo_bits

(** The whnf memo world: one direct-mapped cache plus the counters
    surfaced by [--kernel-stats], the profile [store] object, and the
    serve metrics gauges.  Per-session in the daemon ({!use_tables},
    installed in lock-step with the store state and [Hsub] tables by
    {!Session.with_}). *)
type tables = {
  wt_root : (int * int * nwhnf) option array;
  mutable wt_hits : int;
  mutable wt_misses : int;
  mutable wt_forced : int;
      (** delayed substitutions forced eagerly (β-fronts and spine
          flushes) *)
  mutable wt_eager : int;
      (** eager fallbacks: a pending spine flushed through [Hsub]
          because the head came up neutral mid-contraction *)
}

let fresh_tables () =
  {
    wt_root = Array.make memo_size None;
    wt_hits = 0;
    wt_misses = 0;
    wt_forced = 0;
    wt_eager = 0;
  }

let current = ref (fresh_tables ())

(** Install [t] as the whnf memo world for subsequent normalizations. *)
let use_tables t = current := t

let current_tables () = !current

let clear_memo () = Array.fill !current.wt_root 0 memo_size None

type stats = {
  ws_hits : int;
  ws_misses : int;
  ws_forced : int;
  ws_eager : int;
}

let stats () =
  let t = !current in
  {
    ws_hits = t.wt_hits;
    ws_misses = t.wt_misses;
    ws_forced = t.wt_forced;
    ws_eager = t.wt_eager;
  }

let hit_rate () =
  let t = !current in
  let total = t.wt_hits + t.wt_misses in
  if total = 0 then 0.0 else float_of_int t.wt_hits /. float_of_int total

let memo_slot ks km =
  (((ks * 0x9e3779b1) lxor km) land max_int) land (memo_size - 1)

(* --- head unfolding and weak-head normalization --------------------------- *)

(** Push a substitution into a head (the head-unfolding step): the result
    is a genuine head, a normal term (a β-redex to contract), or a tuple
    (a whole-block front). *)
let whnf_head (s : sub) (h : head) : Hsub.head_result = Hsub.sub_head s h

let rec whnf_normal ((m, s) : nclo) : nwhnf =
  match m with
  | Lam (x, body) -> WLam (x, body, s)
  | Root (h, sp) -> (
      match s with
      | Shift 0 -> WRoot (h, sp, s)
      | _ ->
          if not (store_enabled ()) then whnf_root s h sp
          else begin
            let t = !current in
            let ks = sub_id s and km = normal_id m in
            let i = memo_slot ks km in
            match t.wt_root.(i) with
            | Some (ks', km', r) when ks' = ks && km' = km ->
                t.wt_hits <- t.wt_hits + 1;
                r
            | _ ->
                t.wt_misses <- t.wt_misses + 1;
                let r =
                  if mfi_normal m = 0 then WRoot (h, sp, Lf.id)
                  else whnf_root s h sp
                in
                t.wt_root.(i) <- Some (ks, km, r);
                r
          end)

and whnf_root (s : sub) (h : head) (sp : spine) : nwhnf =
  Telemetry.bump c_whnf;
  match Hsub.sub_head s h with
  | Hsub.Rhead h' -> WRoot (h', sp, s)
  | Hsub.Rnorm n ->
      (* hereditary step at the head only: contract n against the pending
         spine, leaving untouched arguments delayed *)
      guard (fun () -> apply (whnf_normal (n, Lf.id)) [ (sp, s) ])
  | Hsub.Rtup _ ->
      Error.violation "block variable used as a term (missing projection)"

(** [apply v groups] applies a weak-head form to a queue of delayed
    spines (each spine under its own substitution), β-contracting as long
    as the head stays a [Lam].  Only the argument fronts consumed by a
    contraction are forced; if the head comes up neutral with arguments
    still pending, the remaining spines are flushed eagerly (counted as
    an eager fallback — rare in practice, since canonical spines match
    the Π-telescope of their head). *)
and apply (v : nwhnf) (groups : (spine * sub) list) : nwhnf =
  match groups with
  | [] -> v
  | ([], _) :: rest -> apply v rest
  | (arg :: sp, sg) :: rest -> (
      match v with
      | WLam (_, body, sb) ->
          let t = !current in
          t.wt_forced <- t.wt_forced + 1;
          let arg' = Hsub.sub_normal sg arg in
          guard (fun () ->
              apply (whnf_normal (body, mk_dot (Obj arg') sb)) ((sp, sg) :: rest))
      | WRoot (h, sp0, s0) ->
          let t = !current in
          t.wt_eager <- t.wt_eager + 1;
          let flushed =
            List.concat_map
              (fun (sp, sg) -> Hsub.sub_spine sg sp)
              ((arg :: sp, sg) :: rest)
          in
          WRoot (h, Hsub.sub_spine s0 sp0 @ flushed, Lf.id))

(** O(1) weak-head views: a substitution maps [Atom] to [Atom] (same
    family) and [Pi] to [Pi], so the pending substitution only needs to
    be distributed over the closure components, never applied. *)
let whnf_typ ((a, s) : tclo) : twhnf =
  match a with
  | Atom (p, sp) -> WAtom (p, sp, s)
  | Pi (x, a1, a2) -> WPi (x, (a1, s), (a2, s))
(* the WPi body closure is under the binder: descend with clo_push,
   instantiate with clo_inst *)

let whnf_srt ((q, s) : sclo) : swhnf =
  match q with
  | SAtom (c, sp) -> WSAtom (c, sp, s)
  | SEmbed (a, sp) -> WSEmbed (a, sp, s)
  | SPi (x, q1, q2) -> WSPi (x, (q1, s), (q2, s))

(* --- conversion: definitional equality of closures ------------------------ *)

(* Fast path shared by all conv functions: pointer-equal nodes under
   pointer-equal substitutions are the same closure; a closed node is
   untouched by any substitution, so the subs need not even be compared;
   otherwise structurally equal substitutions still decide it. *)

let subs_agree (s1 : sub) (s2 : sub) (mfi : int) : bool =
  s1 == s2 || mfi = 0 || Equal.sub s1 s2

let rec conv_normal ((m1, s1) as c1 : nclo) ((m2, s2) as c2 : nclo) : bool =
  if m1 == m2 && subs_agree s1 s2 (mfi_normal m1) then true
  else if not (whnf_enabled ()) then Equal.normal (norm_nclo c1) (norm_nclo c2)
  else
    match (whnf_normal c1, whnf_normal c2) with
    | WLam (_, b1, t1), WLam (_, b2, t2) ->
        guard (fun () -> conv_normal (b1, Hsub.dot1 t1) (b2, Hsub.dot1 t2))
    | WRoot (h1, sp1, t1), WRoot (h2, sp2, t2) ->
        Equal.head h1 h2 && conv_spine (sp1, t1) (sp2, t2)
    | _ -> false

and conv_spine ((sp1, s1) : spine * sub) ((sp2, s2) : spine * sub) : bool =
  match (sp1, sp2) with
  | [], [] -> true
  | m1 :: r1, m2 :: r2 ->
      conv_normal (m1, s1) (m2, s2) && conv_spine (r1, s1) (r2, s2)
  | _ -> false

let rec conv_typ ((a1, s1) as c1 : tclo) ((a2, s2) as c2 : tclo) : bool =
  if a1 == a2 && subs_agree s1 s2 (mfi_typ a1) then true
  else if not (whnf_enabled ()) then Equal.typ (norm_tclo c1) (norm_tclo c2)
  else
    match (a1, a2) with
    | Atom (p1, sp1), Atom (p2, sp2) ->
        p1 = p2 && conv_spine (sp1, s1) (sp2, s2)
    | Pi (_, a1a, a1b), Pi (_, a2a, a2b) ->
        conv_typ (a1a, s1) (a2a, s2)
        && guard (fun () -> conv_typ (a1b, Hsub.dot1 s1) (a2b, Hsub.dot1 s2))
    | _ -> false

let rec conv_srt ((q1, s1) as c1 : sclo) ((q2, s2) as c2 : sclo) : bool =
  if q1 == q2 && subs_agree s1 s2 (mfi_srt q1) then true
  else if not (whnf_enabled ()) then Equal.srt (norm_sclo c1) (norm_sclo c2)
  else
    match (q1, q2) with
    | SAtom (c1', sp1), SAtom (c2', sp2) ->
        c1' = c2' && conv_spine (sp1, s1) (sp2, s2)
    | SEmbed (a1, sp1), SEmbed (a2, sp2) ->
        a1 = a2 && conv_spine (sp1, s1) (sp2, s2)
    | SPi (_, q1a, q1b), SPi (_, q2a, q2b) ->
        conv_srt (q1a, s1) (q2a, s2)
        && guard (fun () -> conv_srt (q1b, Hsub.dot1 s1) (q2b, Hsub.dot1 s2))
    | _ -> false

(* Contribute the whnf numbers to the shared "store" telemetry section
   (sections with one name are merged into a single profile object). *)
let () =
  Telemetry.register_section "store" (fun () ->
      let t = !current in
      [
        ("whnf_memo_hits", Json.Int t.wt_hits);
        ("whnf_memo_misses", Json.Int t.wt_misses);
        ("whnf_memo_hit_rate", Json.Float (hit_rate ()));
        ("whnf_forced", Json.Int t.wt_forced);
        ("whnf_eager", Json.Int t.wt_eager);
      ])
