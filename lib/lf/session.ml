(** A session: one isolated checking world.

    The kernel keeps four pieces of ambient mutable state — the
    hash-consing store ({!Belr_syntax.Store.state}), the hereditary
    substitution memo tables ({!Hsub.tables}), the weak-head
    normalization memo tables ({!Whnf.tables}), and the
    {!Belr_support.Limits} depth counters — plus the signature Σ, which
    is already a first-class value ({!Sign.t}).  A [Session.t] packs all
    five, and {!with_} brackets a computation so that world is installed
    for its duration and restored afterwards (exceptions included).

    Invariants (DESIGN.md §S23):

    - {e no cross-session sharing}: terms interned in one session's store
      are never representatives in another's; memo entries, intern
      statistics, and depth peaks are all per-session.  Unique term ids
      stay process-global and monotone, which is exactly what keeps a
      session's memo sound across {!reset} and store clears.
    - {e crash-only}: a session damaged by a mid-declaration exception is
      safe to {!reset} (or simply drop) — nothing it built is reachable
      from any other session, so discarding it cannot dangle.
    - installation is not reentrant per session: [with_ s] inside
      [with_ s] would capture [s]'s live counters as the "outer" world;
      the single-threaded serve loop never nests sessions.

    Batch runs ([belr check] etc.) never construct a session; they run in
    the boot store/memo state and behave exactly as before. *)

open Belr_support
open Belr_syntax

type t = {
  mutable sn_sign : Sign.t;
  mutable sn_store : Store.state;
  mutable sn_hsub : Hsub.tables;
  mutable sn_whnf : Whnf.tables;
  sn_limits : Limits.state;
}

let create () =
  {
    sn_sign = Sign.create ();
    sn_store = Store.fresh_state ();
    sn_hsub = Hsub.fresh_tables ();
    sn_whnf = Whnf.fresh_tables ();
    sn_limits = Limits.fresh_state ();
  }

let sign s = s.sn_sign

(** Run [f] inside session [s]: install its store, memo tables, and limit
    counters; on the way out (normal or exceptional), save the counters
    back into [s] and restore the previous world. *)
let with_ (s : t) (f : unit -> 'a) : 'a =
  let prev_store = Store.current_state () in
  let prev_hsub = Hsub.current_tables () in
  let prev_whnf = Whnf.current_tables () in
  let outer_limits = Limits.fresh_state () in
  Limits.capture outer_limits;
  Store.use_state s.sn_store;
  Hsub.use_tables s.sn_hsub;
  Whnf.use_tables s.sn_whnf;
  Limits.install s.sn_limits;
  Fun.protect
    ~finally:(fun () ->
      Limits.capture s.sn_limits;
      Store.use_state prev_store;
      Hsub.use_tables prev_hsub;
      Whnf.use_tables prev_whnf;
      Limits.install outer_limits)
    f

(** Discard everything the session holds and start over with an empty
    signature and fresh store/memo/limit state (the crash-only rebuild
    path, and the [reset] protocol request). *)
let reset (s : t) : unit =
  s.sn_sign <- Sign.create ();
  s.sn_store <- Store.fresh_state ();
  s.sn_hsub <- Hsub.fresh_tables ();
  s.sn_whnf <- Whnf.fresh_tables ();
  Limits.clear_state s.sn_limits

(** Live interned nodes in the session's store (the memory-pressure
    watermark input).  Must be called outside {!with_}[ s] brackets only
    if no other session is installed; the serve loop calls it inside. *)
let store_live () : int = (Lf.store_stats ()).Lf.st_live
