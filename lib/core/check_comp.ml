(** Sort checking for the computation level (§4.1).

    Judgment: [(Ω; Φ ⊢ f : ζ) ⊑ (Δ; Ξ ⊢ e : τ)], with the type level an
    output (by erasure, as at the other levels).

    The [case] rule follows the paper: each branch [(Ω₀; [𝒩₀] ↦ f)] is
    checked by synthesizing the pattern's sort, unifying it with the
    scrutinee's sort over [Ω, Ω₀] to obtain [(ρ, Ω′)], and checking the
    body under [Ω′; ⟦ρ⟧Φ] against [⟦ρ⟧⟦𝒩₀/X₀⟧ζ₀].

    Simplification w.r.t. the paper's invariant syntax: we require the
    invariant's own [ΠΩ₁] prefix to be empty — the elaborator instantiates
    it at each case site, which is what checking needs anyway; the stored
    [ΠΩ₁] generality is only for reusable surface annotations.  As in the
    paper, no coverage is required here (see {!Coverage} for the optional
    checker). *)

open Belr_support
open Belr_syntax
open Belr_lf
open Belr_meta
open Belr_unify

type env = {
  sg : Sign.t;
  omega : Meta.mctx;
  phi : Comp.cctx;
  recs : (Lf.cid_rec * Comp.ctyp) list;
      (** sorts of functions currently being defined (for recursion before
          the signature entry is finalized) *)
}

let make_env ?(recs = []) sg omega phi = { sg; omega; phi; recs }

let lfr_env e = Check_lfr.make_env e.sg e.omega

let pp_ctyp e ppf t = Pp.pp_ctyp (Sign.pp_env e.sg) ppf t

(** Enter one meta-binder. *)
let push_meta (e : env) (d : Meta.mdecl) : env =
  {
    e with
    omega = d :: e.omega;
    phi = List.map (fun (x, t) -> (x, Shift.mshift_ctyp 1 0 t)) e.phi;
  }

let push_comp (e : env) (x : Name.t) (t : Comp.ctyp) : env =
  { e with phi = (x, t) :: e.phi }

let mdecl_of_msrt (x : Name.t) : Meta.msrt -> Meta.mdecl = function
  | Meta.MSTerm (psi, q) -> Meta.MDTerm (x, psi, q)
  | Meta.MSSub (p1, p2) -> Meta.MDSub (x, p1, p2)
  | Meta.MSCtx h -> Meta.MDCtx (x, h)
  | Meta.MSParam (psi, f, ms) -> Meta.MDParam (x, psi, f, ms)

(** Does meta-index [i] occur in a comp sort?  Used to ensure the result
    of a [case] on a non-box scrutinee does not depend on [X₀]. *)
let rec scan_ctyp i = function
  | Comp.CBox ms -> scan_msrt i ms
  | Comp.CArr (t1, t2) -> scan_ctyp i t1 || scan_ctyp i t2
  | Comp.CPi (_, _, ms, t) -> scan_msrt i ms || scan_ctyp (i + 1) t

and scan_msrt i ms =
  (* reuse the dependency collector from the unifier on a dummy decl *)
  let d = mdecl_of_msrt "_" ms in
  List.mem i (Unify.decl_deps d)

(** Strip one meta-binder from a sort known not to mention it. *)
let strip_meta1 (t : Comp.ctyp) : Comp.ctyp =
  Msub.ctyp 0
    (Meta.MDot
       ( Meta.MOCtx
           { Ctxs.s_var = None; Ctxs.s_promoted = false; Ctxs.s_decls = [] },
         Meta.MShift 0 ))
    t

(* --- well-formedness of comp sorts -------------------------------------- *)

let rec wf_ctyp (e : env) (t : Comp.ctyp) : Comp.ctyp_t =
  match t with
  | Comp.CBox ms -> Comp.TBox (Check_meta.wf_msrt (lfr_env e) ms)
  | Comp.CArr (t1, t2) -> Comp.TArr (wf_ctyp e t1, wf_ctyp e t2)
  | Comp.CPi (x, imp, ms, t') ->
      let mt = Check_meta.wf_msrt (lfr_env e) ms in
      let e' = push_meta e (mdecl_of_msrt x ms) in
      Comp.TPi (x, imp, mt, wf_ctyp e' t')

(* --- expressions ---------------------------------------------------------- *)

let rec check_exp (e : env) (f : Comp.exp) (zeta : Comp.ctyp) : unit =
  match (f, zeta) with
  | Comp.Fn (x, ann, body), Comp.CArr (t1, t2) ->
      (match ann with
      | Some t when not (Equal.ctyp t t1) ->
          Error.raise_msg "fn annotation does not match the expected sort"
      | _ -> ());
      check_exp (push_comp e x t1) body t2
  | Comp.Fn _, _ ->
      Error.raise_msg "fn expression checked against a non-arrow sort %a"
        (pp_ctyp e) zeta
  | Comp.MLam (x, body), Comp.CPi (_, _, ms, t) ->
      check_exp (push_meta e (mdecl_of_msrt x ms)) body t
  | Comp.MLam _, _ ->
      Error.raise_msg "mlam expression checked against a non-Π sort %a"
        (pp_ctyp e) zeta
  | Comp.Box mo, Comp.CBox ms -> Check_meta.check_mobj (lfr_env e) mo ms
  | Comp.Box _, _ ->
      Error.raise_msg "boxed object checked against a non-box sort %a"
        (pp_ctyp e) zeta
  | Comp.LetBox (x, f1, f2), _ ->
      let ms =
        match synth_exp e f1 with
        | Comp.CBox ms -> ms
        | t ->
            Error.raise_msg "let [%s] = … requires a box sort, got %a"
              (Name.to_string x) (pp_ctyp e) t
      in
      let e' = push_meta e (mdecl_of_msrt x ms) in
      check_exp e' f2 (Shift.mshift_ctyp 1 0 zeta)
  | Comp.Case (inv, scrut, branches), _ ->
      check_case e inv scrut branches zeta
  | (Comp.Var _ | Comp.RecConst _ | Comp.App _ | Comp.MApp _), _ ->
      let t = synth_exp e f in
      if not (Equal.ctyp t zeta) then
        Error.raise_msg "sort mismatch: expected %a, synthesized %a"
          (pp_ctyp e) zeta (pp_ctyp e) t

and synth_exp (e : env) (f : Comp.exp) : Comp.ctyp =
  match f with
  | Comp.Var i -> (
      match List.nth_opt e.phi (i - 1) with
      | Some (_, t) -> t
      | None -> Error.raise_msg "unbound computation variable %d" i)
  | Comp.RecConst r -> (
      match List.assoc_opt r e.recs with
      | Some t -> t
      | None -> (Sign.rec_entry e.sg r).Sign.r_styp)
  | Comp.App (f1, f2) -> (
      match synth_exp e f1 with
      | Comp.CArr (t1, t2) ->
          check_exp e f2 t1;
          t2
      | Comp.CPi _ ->
          Error.raise_msg
            "function expects a meta-object (use explicit application)"
      | t -> Error.raise_msg "application of a non-function of sort %a"
               (pp_ctyp e) t)
  | Comp.MApp (f1, mo) -> (
      match synth_exp e f1 with
      | Comp.CPi (_, _, ms, t) ->
          Check_meta.check_mobj (lfr_env e) mo ms;
          Msub.ctyp 0 (Msub.inst1 mo) t
      | t ->
          Error.raise_msg "meta-application of a non-Π function of sort %a"
            (pp_ctyp e) t)
  | Comp.Box (Meta.MOTerm ({ Meta.hat_var = None; Meta.hat_names = [] }, m)) ->
      (* a closed boxed neutral synthesizes its principal sort, so
         [let \[K\] = \[ |- M\] in …] needs no annotation *)
      let psi =
        { Ctxs.s_var = None; Ctxs.s_promoted = false; Ctxs.s_decls = [] }
      in
      let s, _ = Check_lfr.synth_neutral (lfr_env e) psi m in
      Comp.CBox (Meta.MSTerm (psi, s))
  | Comp.Box _ | Comp.Fn _ | Comp.MLam _ | Comp.LetBox _ | Comp.Case _ ->
      Error.raise_msg
        "cannot synthesize a sort for this expression; add an annotation"

(* --- case and branches ----------------------------------------------------- *)

and check_case (e : env) (inv : Comp.inv) (scrut : Comp.exp)
    (branches : Comp.branch list) (zeta_res : Comp.ctyp) : unit =
  if inv.Comp.inv_mctx <> [] then
    Error.raise_msg
      "case invariants must have their ΠΩ₀ prefix instantiated (the \
       elaborator does this; see DESIGN.md)";
  let ms_s = inv.Comp.inv_msrt in
  ignore (Check_meta.wf_msrt (lfr_env e) ms_s);
  check_exp e scrut (Comp.CBox ms_s);
  (* the expected result: ⟦𝒩/X₀⟧ζ₀ when the scrutinee is a literal box,
     otherwise ζ₀ must not depend on X₀ *)
  (match scrut with
  | Comp.Box mo ->
      let t = Msub.ctyp 0 (Msub.inst1 mo) inv.Comp.inv_body in
      if not (Equal.ctyp t zeta_res) then
        Error.raise_msg "case result %a does not match the expected sort %a"
          (pp_ctyp e) t (pp_ctyp e) zeta_res
  | _ ->
      if scan_ctyp 1 inv.Comp.inv_body then
        Error.raise_msg
          "case invariant depends on the scrutinee, but the scrutinee is \
           not a boxed object";
      let t = strip_meta1 inv.Comp.inv_body in
      if not (Equal.ctyp t zeta_res) then
        Error.raise_msg "case result does not match the expected sort");
  let scrut_obj = match scrut with Comp.Box mo -> Some mo | _ -> None in
  List.iter (fun br -> check_branch e br inv scrut_obj) branches

(** Synthesize a sort for a branch pattern in context [psi_s] (the
    scrutinee sort's context), under [Ω, Ω₀]. *)
and pattern_srt (e_all : env) (pat : Meta.mobj) (ms_s : Meta.msrt) : Meta.msrt
    =
  let lfr = lfr_env e_all in
  match (pat, ms_s) with
  | Meta.MOTerm (hat, m), Meta.MSTerm (psi_s, q_s) ->
      if not (Check_meta.hat_matches_sctx hat psi_s) then
        Error.raise_msg "pattern context does not match the scrutinee context";
      let s_pat =
        match m with
        | Lf.Root (h, sp) ->
            let s_h = Check_lfr.head_srt lfr psi_s h ~target:q_s in
            Check_lfr.check_spine lfr psi_s sp s_h
        | Lf.Lam _ -> Error.raise_msg "pattern must be a neutral term"
      in
      Meta.MSTerm (psi_s, s_pat)
  | Meta.MOCtx psi, Meta.MSCtx h ->
      Check_lfr.check_sctx_schema lfr psi h;
      Meta.MSCtx h
  | Meta.MOParam (hat, hd), Meta.MSParam (psi_s, _, _) -> (
      if not (Check_meta.hat_matches_sctx hat psi_s) then
        Error.raise_msg "pattern context does not match the scrutinee context";
      match hd with
      | Lf.PVar (p, _) | Lf.BVar p ->
          ignore p;
          (* the parameter's own declared world *)
          let f, ms =
            match hd with
            | Lf.PVar (p, _) ->
                let _, f, ms = Check_lfr.pvar_decl lfr p in
                (f, ms)
            | Lf.BVar i -> (
                match Ctxs.sctx_lookup psi_s i with
                | Some (Ctxs.SCBlock (_, f, ms)) ->
                    ( Shift.shift_selem i 0 f,
                      List.map (Shift.shift_normal i 0) ms )
                | _ -> Error.raise_msg "pattern block not found")
            | _ -> assert false
          in
          Meta.MSParam (psi_s, f, ms)
      | _ -> Error.raise_msg "invalid parameter pattern")
  | Meta.MOSub _, Meta.MSSub _ ->
      Error.raise_msg "substitution patterns are not supported"
  | _ -> Error.raise_msg "pattern does not match the scrutinee's sort former"

and check_branch (e : env) (br : Comp.branch) (inv : Comp.inv)
    (scrut_obj : Meta.mobj option) : unit =
  let omega0 = br.Comp.br_mctx in
  let n0 = List.length omega0 in
  let omega_all = omega0 @ e.omega in
  (* Ω, Ω₀ must be well-formed *)
  ignore (Check_meta.wf_mctx e.sg omega_all);
  let e_all = { e with omega = omega_all } in
  let ms_shift = Shift.mshift_msrt n0 0 inv.Comp.inv_msrt in
  (* synthesize the pattern's sort and unify with the scrutinee's *)
  let ms_pat = pattern_srt e_all br.Comp.br_pat ms_shift in
  let st = Unify.make ~sg:e.sg ~omega:omega_all ~flex:(fun _ -> true) in
  (try Unify.unify_msrt ~leq:true st ms_pat ms_shift
   with Unify.Unify msg ->
     Error.raise_msg "branch pattern does not match the scrutinee sort: %s"
       msg);
  (* dependent matching: when the scrutinee is a literal box, its object
     refines the branch too (this is what makes induction on terms, as in
     aeq-refl, go through) *)
  (match scrut_obj with
  | Some mo -> (
      try Unify.unify_mobj st (Shift.mshift_mobj n0 0 mo) br.Comp.br_pat
      with Unify.Unify msg ->
        Error.raise_msg "branch pattern does not match the scrutinee: %s" msg)
  | None -> ());
  let rho, omega' = Unify.solve st in
  (* the body's expected sort: ⟦ρ⟧⟦𝒩₀/X₀⟧ζ₀ *)
  let inv_body_shifted = Shift.mshift_ctyp n0 1 inv.Comp.inv_body in
  let t0 = Msub.ctyp 0 (Msub.inst1 br.Comp.br_pat) inv_body_shifted in
  let t_final = Msub.ctyp 0 rho t0 in
  let phi' =
    List.map
      (fun (x, t) -> (x, Msub.ctyp 0 rho (Shift.mshift_ctyp n0 0 t)))
      e.phi
  in
  let body' = Msub.exp 0 rho br.Comp.br_body in
  let e' = { e with omega = omega'; phi = phi' } in
  check_exp e' body' t_final
