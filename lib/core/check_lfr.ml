(** Unified bidirectional sort checking for contextual LFR (§3.1, Fig. 2).

    These functions implement the paper's {e unified} judgments, in which
    the type level is an output of the sort level:

    - sort formation / refinement   [Ω; Ψ ⊢ S ⊑ A]        ({!wf_srt})
    - sort checking                 [Ω; Ψ ⊢ M ⇐ S ⊑ A]    ({!check_normal})
    - sort synthesis                [Ω; Ψ ⊢ R ⇒ S ⊑ A]    ({!synth_neutral})
    - substitutions                 [Ω; Ψ₁ ⊢ σ : Ψ₂ ⊑ Γ₂] ({!check_sub})
    - schema checking               [Ω ⊢ Ψ : H ⊑ G]        ({!check_sctx_schema})

    Because erasure ({!Erase}) is a total function on well-formed sorts,
    the type-level output of each judgment is [Erase.*] of its sort-level
    subject; the functions below therefore return the erased output (or
    unit) and the conservativity theorems are exercised by re-checking
    those outputs with {!Belr_lf.Check_lf} in the test suite.

    Embedded types [⌊a·sp⌋] trigger type-level checking of the spine
    exactly as the paper prescribes ("perform type-checking only when it
    is needed for a sorting derivation").

    Subsumption: refinements of atomic families admit subsumption
    ([Q ⊑ P] gives [Q ≤ ⌊P⌋], §3.1.1); we implement precisely that atomic
    case — a term of sort [aeq M N] may be used where [⌊deq M N⌋] is
    expected.  This is what makes the promoted occurrences in §2's [ceq]
    check. *)

open Belr_support
open Belr_syntax
open Belr_lf
open Lf

type env = { sg : Sign.t; omega : Meta.mctx }

let make_env sg omega = { sg; omega }

(** The erased, type-level view of the environment (Δ = ⌊Ω⌋). *)
let erased_env (e : env) : Check_lf.env =
  Check_lf.make_env e.sg (Erase.mctx e.sg e.omega)

let pp_env e = Sign.pp_env e.sg

let pp_srt e psi ppf s =
  Pp.pp_srt (Pp.env_of_sctx (pp_env e) psi) ppf s

let pp_normal e psi ppf m =
  Pp.pp_normal (Pp.env_of_sctx (pp_env e) psi) ppf m

(* --- meta-context lookups (sort level) -------------------------------- *)

let mvar_decl e (u : int) : Ctxs.sctx * srt =
  match Shift.mctx_lookup_shifted e.omega u with
  | Some (Meta.MDTerm (_, psi, q)) -> (psi, q)
  | Some _ -> Error.raise_msg "meta-variable %d is not a term variable" u
  | None -> Error.raise_msg "unbound meta-variable %d" u

let pvar_decl e (p : int) : Ctxs.sctx * Ctxs.selem * normal list =
  match Shift.mctx_lookup_shifted e.omega p with
  | Some (Meta.MDParam (_, psi, f, ms)) -> (psi, f, ms)
  | Some _ -> Error.raise_msg "meta-variable %d is not a parameter variable" p
  | None -> Error.raise_msg "unbound parameter variable %d" p

let cvar_sschema e (i : int) : Lf.cid_sschema =
  match Shift.mctx_lookup_shifted e.omega i with
  | Some (Meta.MDCtx (_, h)) -> h
  | Some _ -> Error.raise_msg "meta-variable %d is not a context variable" i
  | None -> Error.raise_msg "unbound context variable %d" i

(* --- atomic sort comparison ------------------------------------------- *)

(** Does atomic sort [got] fit where [want] is expected?  Exact equality,
    or the admissible atomic subsumption [s·sp ≤ ⌊a·sp⌋] when [s ⊑ a].
    The closure variant compares weak-head spines without forcing either
    side (substitution preserves the head sort family, so matching the
    un-substituted constructors is complete). *)
let atomic_leq_c e ~(got : Whnf.sclo) ~(want : Whnf.sclo) : bool =
  Whnf.conv_srt got want
  ||
  match (fst got, fst want) with
  | SAtom (s, sp1), SEmbed (a, sp2) ->
      (Sign.srt_entry e.sg s).Sign.s_refines = a
      && Whnf.conv_spine (sp1, snd got) (sp2, snd want)
  | _ -> false

let atomic_leq e ~(got : srt) ~(want : srt) : bool =
  atomic_leq_c e ~got:(got, Lf.id) ~want:(want, Lf.id)

(* --- mutual judgments -------------------------------------------------- *)

(** [wf_srt e psi s] is the refinement relation [Ω; Ψ ⊢ S ⊑ A] read as
    sort well-formedness; returns the refined type [A]. *)
let rec wf_srt e (psi : Ctxs.sctx) (s : srt) : typ =
  match s with
  | SAtom (s_cid, sp) ->
      let entry = Sign.srt_entry e.sg s_cid in
      check_spine_skind e psi sp entry.Sign.s_kind;
      mk_atom entry.Sign.s_refines sp
  | SEmbed (a, sp) ->
      (* type-level checking, performed exactly when the embedding is
         reached *)
      let k = (Sign.typ_entry e.sg a).Sign.t_kind in
      Check_lf.check_spine_kind (erased_env e) (Erase.sctx e.sg psi) sp k;
      mk_atom a sp
  | SPi (x, s1, s2) ->
      let a1 = wf_srt e psi s1 in
      let a2 = wf_srt e (Ctxs.sctx_push psi (Ctxs.SCDecl (x, s1))) s2 in
      mk_pi x a1 a2

and check_spine_skind e psi (sp : spine) (l : skind) : unit =
  check_spine_skind_c e psi sp (l, Lf.id)

and check_spine_skind_c e psi (sp : spine) ((l, sl) : Whnf.lclo) : unit =
  match (sp, l) with
  | [], Ksort -> ()
  | m :: sp', Kspi (_, s, l') ->
      check_normal_c e psi m (s, sl);
      check_spine_skind_c e psi sp' (Whnf.clo_inst (l', sl) m)
  | [], Kspi _ -> Error.raise_msg "sort family is not fully applied"
  | _ :: _, Ksort -> Error.raise_msg "sort family is over-applied"

(** [Ω; Ψ ⊢ M ⇐ S ⊑ A]; returns the refined type [A].  The type-level
    output of a successful derivation is always [Erase.srt e.sg s]
    (erasure is compositional), so the closure-based worker
    {!check_normal_c} returns unit and the erased type is computed once
    here rather than rebuilt along the derivation. *)
and check_normal e psi (m : normal) (s : srt) : typ =
  check_normal_c e psi m (s, Lf.id);
  Erase.srt e.sg s

and check_normal_c e psi (m : normal) (cs : Whnf.sclo) : unit =
  (* a guarded step per node: makes sort checking itself interruptible by
     the serve deadline/step budget, not only its hsub/unify calls *)
  Limits.poll ();
  (* under BELR_NO_WHNF the closure is forced here, reverting this rule
     to the eager per-step substitution it performed before PR 9 *)
  let (s, ss) as cs = Whnf.lazy_sclo cs in
  match (m, s) with
  | Lam (x, body), SPi (_, s1, s2) ->
      (* the context stores concrete sorts (srt_of_bvar shifts them), so
         the domain is forced here — memoized in the Hsub tables *)
      let s1' = Hsub.sub_srt ss s1 in
      check_normal_c e
        (Ctxs.sctx_push psi (Ctxs.SCDecl (x, s1')))
        body
        (Whnf.clo_push (s2, ss))
  | Lam _, (SAtom _ | SEmbed _) ->
      Error.raise_msg "abstraction checked against atomic sort %a"
        (pp_srt e psi) (Whnf.norm_sclo cs)
  | Root _, SPi _ ->
      Error.raise_msg "term %a is not η-long at sort %a" (pp_normal e psi) m
        (pp_srt e psi) (Whnf.norm_sclo cs)
  | Root (h, sp), (SAtom _ | SEmbed _) ->
      let c_h = head_srt_c e psi h ~target:s in
      let c_res = check_spine_c e psi sp c_h in
      if not (atomic_leq_c e ~got:c_res ~want:cs) then
        Error.raise_msg "sort mismatch: expected %a, synthesized %a"
          (pp_srt e psi) (Whnf.norm_sclo cs) (pp_srt e psi)
          (Whnf.norm_sclo c_res)

(** [Ω; Ψ ⊢ R ⇒ S ⊑ A]; synthesis for neutral terms whose head determines
    its sort (variables, projections, meta-variables).  Constants
    synthesize their embedded type (the principal sort without a target
    family). *)
and synth_neutral e psi (m : normal) : srt * typ =
  match m with
  | Root (h, sp) ->
      let c_h = head_srt_principal_c e psi h in
      let s = Whnf.norm_sclo (check_spine_c e psi sp c_h) in
      (s, Erase.srt e.sg s)
  | Lam _ -> Error.raise_msg "cannot synthesize a sort for an abstraction"

and check_spine e psi (sp : spine) (s : srt) : srt =
  Whnf.norm_sclo (check_spine_c e psi sp (s, Lf.id))

and check_spine_c e psi (sp : spine) ((s, ss) : Whnf.sclo) : Whnf.sclo =
  match (sp, s) with
  | [], _ -> (s, ss)
  | m :: sp', SPi (_, s1, s2) ->
      check_normal_c e psi m (s1, ss);
      check_spine_c e psi sp' (Whnf.clo_inst (s2, ss) m)
  | _ :: _, (SAtom _ | SEmbed _) -> Error.raise_msg "term is over-applied"

(** Sort of a head.  For constants the [target] sort directs which sort
    family's assignment to use (bidirectionality): checking against
    [SAtom (s, _)] selects the constant's sort in family [s]; checking
    against an embedding uses the constant's embedded type.  Only the
    target's head constructor is consulted, and substitution preserves
    it, so the un-substituted target sort suffices. *)
and head_srt_c e psi (h : head) ~(target : srt) : Whnf.sclo =
  match h with
  | Const c -> (
      match target with
      | SAtom (s_cid, _) -> (
          match Sign.csort e.sg ~const:c ~family:s_cid with
          | Some (s, _) -> (s, Lf.id)
          | None ->
              Error.raise_msg
                "constant %s has no sort in family %s (it is not among the \
                 refinement's constructors)"
                (Sign.const_entry e.sg c).Sign.c_name
                (Sign.srt_entry e.sg s_cid).Sign.s_name)
      | _ -> (Embed.typ (Sign.const_entry e.sg c).Sign.c_typ, Lf.id))
  | _ -> head_srt_principal_c e psi h

and head_srt e psi (h : head) ~(target : srt) : srt =
  Whnf.norm_sclo (head_srt_c e psi h ~target)

(** Principal sort of a non-constant head (declaration-directed). *)
and head_srt_principal_c e psi (h : head) : Whnf.sclo =
  match h with
  | Const c -> (Embed.typ (Sign.const_entry e.sg c).Sign.c_typ, Lf.id)
  | BVar i -> (Sctxops.srt_of_bvar e.sg psi i, Lf.id)
  | Proj (BVar i, k) -> (Sctxops.srt_of_proj e.sg psi i k, Lf.id)
  | Proj (PVar (p, s), k) ->
      let psi_p, f, ms = pvar_decl e p in
      check_sub e psi s psi_p;
      let blk = Hsub.inst_sblock f ms in
      (Sctxops.proj_srt blk (mk_pvar p s) s k, Lf.id)
  | Proj _ ->
      Error.raise_msg "projection base must be a block or parameter variable"
  | PVar _ ->
      Error.raise_msg
        "parameter variable used as a term (missing projection or tuple)"
  | MVar (u, s) ->
      let psi_u, q = mvar_decl e u in
      check_sub e psi s psi_u;
      (* the mvar's declared sort is transported lazily as a closure *)
      (q, s)

and head_srt_principal e psi (h : head) : srt =
  Whnf.norm_sclo (head_srt_principal_c e psi h)

(** [Ω; Ψ₁ ⊢ σ : Ψ₂ ⊑ Γ₂] (Fig. 2): [σ] maps [Ψ₂]-variables to terms over
    [Ψ₁].  [Shift] additionally allows reading an unpromoted domain in a
    promoted range (refinement subsumption on contexts, §2). *)
and check_sub e (psi1 : Ctxs.sctx) (s : sub) (psi2 : Ctxs.sctx) : unit =
  match s with
  | Empty ->
      if psi2.Ctxs.s_var <> None || psi2.Ctxs.s_decls <> [] then
        Error.raise_msg "empty substitution used with a non-empty domain"
  | Shift n ->
      let dropped = Sctxops.sctx_drop psi1 n in
      if not (Sctxops.sctx_weakens ~from:psi2 ~into:dropped) then
        Error.raise_msg "shift by %d does not match the expected domain" n
  | Dot (f, s') -> (
      match psi2.Ctxs.s_decls with
      | [] -> Error.raise_msg "substitution is longer than its domain"
      | Ctxs.SCDecl (_, q) :: rest -> (
          let psi2' = { psi2 with Ctxs.s_decls = rest } in
          check_sub e psi1 s' psi2';
          let q = if psi2.Ctxs.s_promoted then Sctxops.promote_srt e.sg q else q in
          match f with
          | Obj m -> check_normal_c e psi1 m (q, s')
          | Tup _ -> Error.raise_msg "tuple substituted for an ordinary variable"
          | Undef -> Error.raise_msg "undefined substitution entry")
      | Ctxs.SCBlock (_, fel, ms) :: rest -> (
          let psi2' = { psi2 with Ctxs.s_decls = rest } in
          check_sub e psi1 s' psi2';
          let fel =
            if psi2.Ctxs.s_promoted then Sctxops.promote_selem e.sg fel else fel
          in
          let ms' = List.map (Hsub.sub_normal s') ms in
          let blk = Hsub.inst_sblock (Hsub.sub_selem s' fel) ms' in
          match f with
          | Tup t -> check_tuple e psi1 t blk
          | Obj (Root (h, [])) ->
              let blk_h = sblock_of_head e psi1 h in
              if
                not
                  (Equal.sblock blk_h blk
                  || Equal.block (Erase.sblock e.sg blk_h)
                       (Erase.sblock e.sg blk)
                     && List.for_all2
                          (fun (_, got) (_, want) ->
                            atomic_or_equal e ~got ~want)
                          blk_h blk)
              then
                Error.raise_msg "block variable renamed to a mismatched block"
          | Obj _ -> Error.raise_msg "term substituted for a block variable"
          | Undef -> Error.raise_msg "undefined substitution entry"))

(** Componentwise ≤ on block sorts (subsumption on each component). *)
and atomic_or_equal e ~(got : srt) ~(want : srt) : bool =
  Equal.srt got want || atomic_leq e ~got ~want

(** [Ω; Ψ ⊢ M⃗ ⇐ C]: tuple against a block of sort declarations. *)
and check_tuple e psi (t : tuple) (blk : Ctxs.sblock) : unit =
  match (t, blk) with
  | [], [] -> ()
  | m :: t', (_, q) :: blk' ->
      check_normal_c e psi m (q, Lf.id);
      let blk'' = Hsub.sub_sblock (dot_obj m (mk_shift 0)) blk' in
      check_tuple e psi t' blk''
  | _ ->
      Error.raise_msg "tuple has %d components but block expects %d"
        (List.length t) (List.length blk)

and sblock_of_head e psi (h : head) : Ctxs.sblock =
  match h with
  | BVar i -> Sctxops.sblock_of_bvar e.sg psi i
  | PVar (p, s) ->
      let psi_p, f, ms = pvar_decl e p in
      check_sub e psi s psi_p;
      let blk = Hsub.inst_sblock f ms in
      List.mapi
        (fun j (x, q) ->
          let rec ext k s = if k = 0 then s else ext (k - 1) (Hsub.dot1 s) in
          (x, Hsub.sub_srt (ext j s) q))
        blk
  | _ -> Error.raise_msg "expected a block or parameter variable"

(* --- refinement kinds, blocks, elements -------------------------------- *)

let rec wf_skind e psi (l : skind) : kind =
  match l with
  | Ksort -> Ktype
  | Kspi (x, s, l') ->
      let a = wf_srt e psi s in
      let k = wf_skind e (Ctxs.sctx_push psi (Ctxs.SCDecl (x, s))) l' in
      Kpi (x, a, k)

let wf_sblock e psi (b : Ctxs.sblock) : Ctxs.block =
  let rec go psi = function
    | [] -> []
    | (x, s) :: rest ->
        let a = wf_srt e psi s in
        (x, a) :: go (Ctxs.sctx_push psi (Ctxs.SCDecl (x, s))) rest
  in
  go psi b

let wf_selem e psi (f : Ctxs.selem) : Ctxs.elem =
  let rec params psi = function
    | [] -> (psi, [])
    | (x, s) :: rest ->
        let a = wf_srt e psi s in
        let psi', ps = params (Ctxs.sctx_push psi (Ctxs.SCDecl (x, s))) rest in
        (psi', (x, a) :: ps)
  in
  let psi', ps = params psi f.Ctxs.f_params in
  let blk = wf_sblock e psi' f.Ctxs.f_block in
  { Ctxs.e_name = f.Ctxs.f_name; Ctxs.e_params = ps; Ctxs.e_block = blk }

(* --- refinement relations (declaration-time checks) -------------------- *)

(** [S ⊑ A]: with unique refinement and no intersections, the relation
    holds iff [S] is well-formed and erases to [A]. *)
let check_srt_refines e psi (s : srt) (a : typ) : unit =
  let a' = wf_srt e psi s in
  if not (Equal.typ a' a) then
    Error.raise_msg "sort %a does not refine the expected type" (pp_srt e psi)
      s

let check_skind_refines e psi (l : skind) (k : kind) : unit =
  let k' = wf_skind e psi l in
  if not (Equal.kind k' k) then
    Error.raise_msg "refinement kind does not refine the expected kind"

(** [F ⊑ E] for schema elements (checked in the empty context; elements
    are closed). *)
let check_selem_refines e (f : Ctxs.selem) (el : Ctxs.elem) : unit =
  let el' = wf_selem e Ctxs.empty_sctx f in
  if not (Equal.elem el' el) then
    Error.raise_msg "schema element %s does not refine its assigned world"
      (Belr_support.Name.to_string f.Ctxs.f_name)

(** [H ⊑ G]: every element of [H] refines the [G]-element it names via
    [f_refines]; elements must not duplicate (§3.1.2).  Multiple [H]
    elements may refine the same [G] element. *)
let check_sschema_refines e (h_elems : Ctxs.selem list) (g : Ctxs.schema) :
    unit =
  let rec dup = function
    | [] -> ()
    | f :: rest ->
        if List.exists (Equal.selem f) rest then
          Error.raise_msg "refinement schema contains duplicate elements";
        dup rest
  in
  dup h_elems;
  List.iter
    (fun (f : Ctxs.selem) ->
      match List.nth_opt g f.Ctxs.f_refines with
      | None ->
          Error.raise_msg "schema element %s refines a non-existent world"
            (Belr_support.Name.to_string f.Ctxs.f_name)
      | Some el -> check_selem_refines e f el)
    h_elems

(* --- contexts and schema checking --------------------------------------- *)

(** Check the instantiations of a sort-level schema element's parameters
    ([Ω ⊢ M⃗ : F > C]). *)
let check_selem_inst e psi (f : Ctxs.selem) (ms : normal list) : unit =
  let rec go s params ms =
    match (params, ms) with
    | [], [] -> ()
    | (_, q) :: params', m :: ms' ->
        check_normal_c e psi m (q, s);
        go (dot_obj m s) params' ms'
    | _ ->
        Error.raise_msg "schema element applied to %d arguments, expected %d"
          (List.length ms)
          (List.length f.Ctxs.f_params)
  in
  go mk_empty f.Ctxs.f_params ms

(** Context well-formedness [Ω ⊢ Ψ ⊑ Γ] (Fig. 1), entrywise. *)
let wf_sctx e (psi : Ctxs.sctx) : Ctxs.ctx =
  (match psi.Ctxs.s_var with
  | Some i -> ignore (cvar_sschema e i)
  | None -> ());
  let rec go rest =
    match rest with
    | [] -> ()
    | d :: rest' ->
        go rest';
        let prefix = { psi with Ctxs.s_decls = rest' } in
        (match d with
        | Ctxs.SCDecl (_, s) -> ignore (wf_srt e prefix s)
        | Ctxs.SCBlock (_, f, ms) ->
            ignore (wf_selem e Ctxs.empty_sctx f);
            check_selem_inst e prefix f ms)
  in
  go psi.Ctxs.s_decls;
  Erase.sctx e.sg psi

(** Schema checking [Ω ⊢ Ψ : H ⊑ G] (§3.1.2).  For a promoted context
    [Ψ⊤], the entries are matched against the trivial refinement [⌈G⌉]
    instead. *)
let check_sctx_schema e (psi : Ctxs.sctx) (h_cid : Lf.cid_sschema) : unit =
  let entry = Sign.sschema_entry e.sg h_cid in
  let h_elems, describe =
    if psi.Ctxs.s_promoted then
      ( (Sign.embed_schema e.sg entry.Sign.h_refines).Ctxs.h_elems,
        "promoted schema" )
    else (entry.Sign.h_elems, entry.Sign.h_name)
  in
  (match psi.Ctxs.s_var with
  | Some i ->
      let h' = cvar_sschema e i in
      (* the context variable's schema must be the one being checked, or,
         under promotion, any refinement of the same type-level schema *)
      if
        (not (h' = h_cid))
        && not
             (psi.Ctxs.s_promoted
             && (Sign.sschema_entry e.sg h').Sign.h_refines
                = entry.Sign.h_refines)
      then
        Error.raise_msg "context variable has schema %s, expected %s"
          (Sign.sschema_entry e.sg h').Sign.h_name describe
  | None -> ());
  let rec go rest =
    match rest with
    | [] -> ()
    | d :: rest' ->
        go rest';
        let prefix = { psi with Ctxs.s_decls = rest' } in
        (match d with
        | Ctxs.SCDecl _ ->
            Error.raise_msg
              "context contains a single declaration; schema checking \
               requires block assumptions"
        | Ctxs.SCBlock (_, f, ms) ->
            let f =
              if psi.Ctxs.s_promoted then Sctxops.promote_selem e.sg f else f
            in
            if not (List.exists (Equal.selem f) h_elems) then
              Error.raise_msg
                "context block does not match any element of schema %s"
                describe;
            check_selem_inst e prefix f ms)
  in
  go psi.Ctxs.s_decls
