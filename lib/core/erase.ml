(** Erasure: the computational content of conservativity.

    Every refinement-level object determines the type-level object it
    refines.  The paper phrases its judgments so that "everything to the
    right of ⊑ is an output" (§3.1.1); these functions compute those
    outputs.  Theorems 3.1.5 and 3.2.2 say that whenever the sort side is
    derivable, the erased side is derivable in conventional Beluga — the
    test suite checks this by running [Belr_lf.Check_lf] (and the comp
    level type checker) on the images.

    Erasure is compositional and commutes with hereditary substitution
    (terms are untouched), which is what lets the unified judgments
    recover typing derivations without extra lemmas (§3.2.1). *)

open Belr_syntax
open Belr_lf

let rec srt (sg : Sign.t) : Lf.srt -> Lf.typ = function
  | Lf.SAtom (s, sp) -> Lf.mk_atom (Sign.srt_entry sg s).Sign.s_refines sp
  | Lf.SEmbed (a, sp) -> Lf.mk_atom a sp
  | Lf.SPi (x, s1, s2) -> Lf.mk_pi x (srt sg s1) (srt sg s2)

(** Erase a weak-head sort closure to a type closure without forcing it:
    erasure only renames sort families and shares spines, so it commutes
    with (hereditary) substitution — [⟦σ⟧⌊S⌋ = ⌊⟦σ⟧S⌋] — and the pending
    substitution can simply be carried across. *)
let srt_clo (sg : Sign.t) ((q, s) : Whnf.sclo) : Whnf.tclo = (srt sg q, s)

let rec skind (sg : Sign.t) : Lf.skind -> Lf.kind = function
  | Lf.Ksort -> Lf.Ktype
  | Lf.Kspi (x, s, l) -> Lf.Kpi (x, srt sg s, skind sg l)

let sblock (sg : Sign.t) (b : Ctxs.sblock) : Ctxs.block =
  List.map (fun (x, s) -> (x, srt sg s)) b

let selem (sg : Sign.t) (f : Ctxs.selem) : Ctxs.elem =
  {
    Ctxs.e_name = f.Ctxs.f_name;
    Ctxs.e_params = List.map (fun (x, s) -> (x, srt sg s)) f.Ctxs.f_params;
    Ctxs.e_block = sblock sg f.Ctxs.f_block;
  }

let scentry (sg : Sign.t) : Ctxs.scentry -> Ctxs.centry = function
  | Ctxs.SCDecl (x, s) -> Ctxs.CDecl (x, srt sg s)
  | Ctxs.SCBlock (x, f, ms) -> Ctxs.CBlock (x, selem sg f, ms)

let sctx (sg : Sign.t) (psi : Ctxs.sctx) : Ctxs.ctx =
  {
    Ctxs.c_var = psi.Ctxs.s_var;
    Ctxs.c_decls = List.map (scentry sg) psi.Ctxs.s_decls;
  }

(** A refinement schema erases to the schema it refines. *)
let sschema (sg : Sign.t) (h : Lf.cid_sschema) : Lf.cid_schema =
  (Sign.sschema_entry sg h).Sign.h_refines

(* --- contextual layer -------------------------------------------------- *)

let msrt (sg : Sign.t) : Meta.msrt -> Meta.mtyp = function
  | Meta.MSTerm (psi, q) -> Meta.MTTerm (sctx sg psi, srt sg q)
  | Meta.MSSub (psi1, psi2) -> Meta.MTSub (sctx sg psi1, sctx sg psi2)
  | Meta.MSCtx h -> Meta.MTCtx (sschema sg h)
  | Meta.MSParam (psi, f, ms) -> Meta.MTParam (sctx sg psi, selem sg f, ms)

(** Meta-objects erase to themselves except for context objects, whose
    sort-level annotations are erased (§3.2: if [𝒩 ⊑ ℳ] are not contexts
    then [𝒩 = ℳ]). *)
let mobj (sg : Sign.t) : Meta.mobj -> Meta.mobj = function
  | Meta.MOCtx psi -> Meta.MOCtx (Embed.ctx (sctx sg psi))
  | o -> o

let mdecl (sg : Sign.t) : Meta.mdecl -> Meta.mdecl_t = function
  | Meta.MDTerm (n, psi, q) -> Meta.TDTerm (n, sctx sg psi, srt sg q)
  | Meta.MDSub (n, psi1, psi2) -> Meta.TDSub (n, sctx sg psi1, sctx sg psi2)
  | Meta.MDCtx (n, h) -> Meta.TDCtx (n, sschema sg h)
  | Meta.MDParam (n, psi, f, ms) ->
      Meta.TDParam (n, sctx sg psi, selem sg f, ms)

let mctx (sg : Sign.t) (omega : Meta.mctx) : Meta.mctx_t =
  List.map (mdecl sg) omega

(* --- computation level -------------------------------------------------- *)

let rec ctyp (sg : Sign.t) : Comp.ctyp -> Comp.ctyp_t = function
  | Comp.CBox ms -> Comp.TBox (msrt sg ms)
  | Comp.CArr (t1, t2) -> Comp.TArr (ctyp sg t1, ctyp sg t2)
  | Comp.CPi (x, imp, ms, t) -> Comp.TPi (x, imp, msrt sg ms, ctyp sg t)

let rec exp (sg : Sign.t) : Comp.exp -> Comp.exp_t = function
  | Comp.Var i -> Comp.TVar i
  | Comp.RecConst r -> Comp.TRecConst r
  | Comp.Box mo -> Comp.TBoxE (mobj sg mo)
  | Comp.Fn (x, t, e) -> Comp.TFn (x, Option.map (ctyp sg) t, exp sg e)
  | Comp.App (e1, e2) -> Comp.TApp (exp sg e1, exp sg e2)
  | Comp.MLam (x, e) -> Comp.TMLam (x, exp sg e)
  | Comp.MApp (e, mo) -> Comp.TMApp (exp sg e, mobj sg mo)
  | Comp.LetBox (x, e1, e2) -> Comp.TLetBox (x, exp sg e1, exp sg e2)
  | Comp.Case (inv, e, brs) ->
      Comp.TCase (inv_ sg inv, exp sg e, List.map (branch sg) brs)

and inv_ (sg : Sign.t) (i : Comp.inv) : Comp.inv_t =
  {
    Comp.tinv_mctx = mctx sg i.Comp.inv_mctx;
    Comp.tinv_name = i.Comp.inv_name;
    Comp.tinv_mtyp = msrt sg i.Comp.inv_msrt;
    Comp.tinv_body = ctyp sg i.Comp.inv_body;
  }

and branch (sg : Sign.t) (b : Comp.branch) : Comp.branch_t =
  {
    Comp.tbr_mctx = mctx sg b.Comp.br_mctx;
    Comp.tbr_pat = mobj sg b.Comp.br_pat;
    Comp.tbr_body = exp sg b.Comp.br_body;
  }

let cctx (sg : Sign.t) (phi : Comp.cctx) : Comp.cctx_t =
  List.map (fun (x, t) -> (x, ctyp sg t)) phi
