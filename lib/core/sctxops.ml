(** Sort-level context operations, including the paper's promotion [Ψ⊤].

    Looking up a variable in a promoted context yields the {e embedding}
    of the erased (type-level) classifier: this is how the same block
    variable [b] reads as [deq b.1 b.1] under [Ψ⊤] but as [aeq b.1 b.1]
    under [Ψ] (§2, variable case of [ceq]). *)

open Belr_support
open Belr_syntax
open Belr_lf
open Lf

(** Promote a sort: read it at the type level, i.e. [⌊erase S⌋]. *)
let promote_srt (sg : Sign.t) (s : srt) : srt = Embed.typ (Erase.srt sg s)

let promote_selem (sg : Sign.t) (f : Ctxs.selem) : Ctxs.selem =
  Embed.elem ~refines:f.Ctxs.f_refines (Erase.selem sg f)

let promote_sblock (sg : Sign.t) (b : Ctxs.sblock) : Ctxs.sblock =
  Embed.block (Erase.sblock sg b)

(** Sort of an ordinary variable, honoring promotion, transported into the
    whole context. *)
let srt_of_bvar (sg : Sign.t) (psi : Ctxs.sctx) (i : int) : srt =
  match Ctxs.sctx_lookup psi i with
  | Some (Ctxs.SCDecl (_, s)) ->
      let s = if psi.Ctxs.s_promoted then promote_srt sg s else s in
      Shift.shift_srt i 0 s
  | Some (Ctxs.SCBlock _) ->
      Error.raise_msg
        "variable %d is a block variable and must be used under a projection" i
  | None -> Error.raise_msg "unbound variable %d" i

(** The instantiated sort-level block classifying block variable [i],
    honoring promotion, transported into the whole context. *)
let sblock_of_bvar (sg : Sign.t) (psi : Ctxs.sctx) (i : int) : Ctxs.sblock =
  match Ctxs.sctx_lookup psi i with
  | Some (Ctxs.SCBlock (_, f, ms)) ->
      let f = if psi.Ctxs.s_promoted then promote_selem sg f else f in
      let ms' = List.map (Shift.shift_normal i 0) ms in
      Hsub.inst_sblock (Shift.shift_selem i 0 f) ms'
  | Some (Ctxs.SCDecl _) ->
      Error.raise_msg "variable %d is not a block variable" i
  | None -> Error.raise_msg "unbound variable %d" i

(** Sort of the [k]-th component of a sort-level block, with the earlier
    components replaced by projections of [base] and the ambient context
    reached through [tail] (mirror of {!Belr_lf.Ctxops.proj_typ}). *)
let proj_srt (blk : Ctxs.sblock) (base : head) (tail : sub) (k : int) : srt =
  match List.nth_opt blk (k - 1) with
  | None ->
      Error.raise_msg "projection .%d out of range (block has %d components)" k
        (List.length blk)
  | Some (_, s_k) ->
      let rec chain j acc =
        if j = 0 then acc
        else chain (j - 1) (dot_obj (mk_root (mk_proj base (k - j)) []) acc)
      in
      Hsub.sub_srt (chain (k - 1) tail) s_k

let srt_of_proj (sg : Sign.t) (psi : Ctxs.sctx) (i : int) (k : int) : srt =
  let blk = sblock_of_bvar sg psi i in
  proj_srt blk (mk_bvar i) (mk_shift 0) k

let sctx_drop (psi : Ctxs.sctx) (n : int) : Ctxs.sctx =
  if List.length psi.Ctxs.s_decls < n then
    Error.raise_msg "substitution shifts by %d but context has only %d entries"
      n
      (List.length psi.Ctxs.s_decls)
  else
    let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
    { psi with Ctxs.s_decls = drop n psi.Ctxs.s_decls }

(** [sctx_weakens ~from:Ψ₂ ~into:Ψ₁]: may an object valid in [Ψ₂] be read
    in [Ψ₁]?  Holds when they are equal, and also when [Ψ₁] is the
    promotion of [Ψ₂] — promotion only coarsens the reading of the same
    variables, which is refinement subsumption and therefore sound in this
    direction. *)
let sctx_weakens ~(from : Ctxs.sctx) ~(into : Ctxs.sctx) : bool =
  Equal.sctx from into
  || ((not from.Ctxs.s_promoted)
     && into.Ctxs.s_promoted
     && Equal.sctx { from with Ctxs.s_promoted = true } into)
