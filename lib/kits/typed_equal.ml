(** The {e typed} algorithmic-equality benchmark (the ORBI suite's harder
    variant of §2): equality judgments indexed by simple types, contexts
    whose blocks are {e parameterized} by the variable's type, and a
    refinement schema whose worlds carry parameters —
    [xaG ⊑ xdG = xeW : {A : tp} block (x : tm, u : aeq x x A)].

    This combines, in one development, every context feature of the
    paper's Fig. 1: parameterized schema elements ([Πx:A.E]), their
    refinements ([Πx:S.F]), explicit world instantiations in context
    extensions ([b : xeW A₀]), and the projection sorts they induce.

    Scope note: we prove symmetry.  Typed reflexivity and transitivity
    additionally require a typing derivation and uniqueness-of-types
    lemmas (this is precisely why ORBI grades the typed variant harder),
    which are orthogonal to what the refinement machinery demonstrates;
    the untyped development ({!Surface}) proves the full theorem set. *)

let signature_src =
  {bel|
LF tp : type =
| i : tp
| arr : tp -> tp -> tp;

LF tm : type =
| lam : tp -> (tm -> tm) -> tm
| app : tm -> tm -> tm;

LF deq : tm -> tm -> tp -> type =
| e-lam : {A : tp} ({x : tm} deq x x A -> deq (M x) (N x) B)
          -> deq (lam A M) (lam A N) (arr A B)
| e-app : deq M1 N1 (arr A B) -> deq M2 N2 A
          -> deq (app M1 M2) (app N1 N2) B
| e-refl : {M : tm} {A : tp} deq M M A
| e-sym : deq M N A -> deq N M A
| e-trans : deq M1 M2 A -> deq M2 M3 A -> deq M1 M3 A;

LFR aeq <| deq : tm -> tm -> tp -> sort =
| e-lam : {A : tp} ({x : tm} aeq x x A -> aeq (M x) (N x) B)
          -> aeq (lam A M) (lam A N) (arr A B)
| e-app : aeq M1 N1 (arr A B) -> aeq M2 N2 A
          -> aeq (app M1 M2) (app N1 N2) B;

schema xdG = | xeW : {A : tp} block (x : tm, u : deq x x A);
schema xaG <| xdG = | xeW : {A : tp} block (x : tm, u : aeq x x A);

%block xbW = {A : tp} block (x : tm, u : deq x x A);
%worlds (xbW) tm deq;

% Algorithmic equality synthesizes the classifying type: the two terms
% are inputs, the tp argument is an output (e-app recovers A from the
% arrow type its first premise produces — +M +N +A would be ill-moded).
%mode aeq +M +N -A;
|bel}

let aeq_sym_src =
  {bel|
rec aeq-sym : (Psi : xaG) (M : [Psi |- tm]) (N : [Psi |- tm]) (A : [Psi |- tp])
              [Psi |- aeq M N A] -> [Psi |- aeq N M A] =
mlam Psi => mlam M => mlam N => mlam A => fn d =>
case d of
| {A0 : [Psi |- tp]} {#b : #[Psi |- xeW A0]}
  [Psi |- #b.2] => [Psi |- #b.2]
| {A0 : [Psi |- tp]} {B0 : [Psi |- tp]}
  {M' : [Psi, x : tm |- tm]} {N' : [Psi, x : tm |- tm]}
  {D : [Psi, x : tm, u : aeq x x A0 |- aeq M' N' B0]}
  [Psi |- e-lam (\x. M') (\x. N') B0 A0 (\x. \u. D)] =>
    let [E] = aeq-sym [Psi, b : xeW A0]
                [Psi, b : xeW A0 |- M'[.., b.1]] [Psi, b : xeW A0 |- N'[.., b.1]]
                [Psi, b : xeW A0 |- B0]
                [Psi, b : xeW A0 |- D[.., b.1, b.2]] in
    [Psi |- e-lam (\x. N') (\x. M') B0 A0 (\x. \u. E[.., <x ; u>])]
| {A0 : [Psi |- tp]} {B0 : [Psi |- tp]}
  {M1 : [Psi |- tm]} {N1 : [Psi |- tm]} {M2 : [Psi |- tm]} {N2 : [Psi |- tm]}
  {D1 : [Psi |- aeq M1 N1 (arr A0 B0)]} {D2 : [Psi |- aeq M2 N2 A0]}
  [Psi |- e-app M1 N1 A0 B0 M2 N2 D1 D2] =>
    let [E1] = aeq-sym [Psi] [Psi |- M1] [Psi |- N1] [Psi |- arr A0 B0]
                 [Psi |- D1] in
    let [E2] = aeq-sym [Psi] [Psi |- M2] [Psi |- N2] [Psi |- A0] [Psi |- D2] in
    [Psi |- e-app N1 M1 A0 B0 N2 M2 E1 E2];
|bel}

let full_src = signature_src ^ aeq_sym_src

let load () : Belr_lf.Sign.t =
  Belr_parser.Process.program ~name:"typed_equal.bel" full_src
