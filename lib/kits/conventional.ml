(** The {e conventional} (refinement-free) mechanization of the §2
    benchmark — the baseline of experiment E1.

    Without refinements, algorithmic equality must be a separate type
    family ([aeq] and [deq] share no constructors), and the completeness
    proof must reconcile two different context structures.  The paper's
    reference baseline (the ORBI solution) maintains an explicit inductive
    relation between an [aeq]-context and a [deq]-context, at the cost of
    "13 additional arguments, including 7 explicit ones".  Full inductive
    computation-level relations are Beluga's full language; our system
    (like the paper's formal fragment) does not include them, so we
    mechanize the other standard conventional solution from the ORBI
    suite: the {e generalized (joint) context} version, in which

    - every context block carries {e all three} assumptions
      [(x:tm, u:aeq x x, v:deq x x)] (vs. two in the refinement version);
    - the [lam] rules of {e both} judgments are generalized to bind the
      full triple (the object-logic rules are polluted by the
      mechanization — exactly the phenomenon the paper's §2 criticizes);
    - soundness of algorithmic equality ([sound]) must be {e proved} by
      induction (3 more cases), whereas with [aeq ⊑ deq] it is free;
    - both equality judgments duplicate constructor declarations (7 vs 5).

    The E1 bench counts these overheads on both developments and checks
    the claim's shape: the refinement solution is strictly smaller in
    every metric and needs no extra lemma. *)

open Belr_syntax
open Belr_lf
open Belr_core
open Lf

type t = {
  sg : Sign.t;
  tm : cid_typ;
  lam : cid_const;
  app : cid_const;
  aeq : cid_typ;
  ae_lam : cid_const;
  ae_app : cid_const;
  deq : cid_typ;
  de_lam : cid_const;
  de_app : cid_const;
  de_refl : cid_const;
  de_sym : cid_const;
  de_trans : cid_const;
  xg_elem : Ctxs.elem;
  xg_selem : Ctxs.selem;  (** the trivial refinement used for contexts *)
  xg : cid_schema;
  xg_s : cid_sschema;  (** auto-registered ⌈xG⌉ *)
  aeq_refl : cid_rec;
  aeq_sym : cid_rec;
  aeq_trans : cid_rec;
  ceq : cid_rec;
  sound : cid_rec;
}

let v i : normal = (mk_root ((mk_bvar i)) [])

let arr a b = (mk_pi "_" a (Shift.shift_typ 1 0 b))

let mv i : normal = (mk_root ((mk_mvar i ((mk_shift 0)))) [])

let mvs i s : normal = (mk_root ((mk_mvar i s)) [])

let bv i : normal = (mk_root ((mk_bvar i)) [])

let pj b k : normal = (mk_root ((mk_proj ((mk_bvar b)) k)) [])

let pvj p k : normal = (mk_root ((mk_proj ((mk_pvar p ((mk_shift 0)))) k)) [])

let lam_eta i : normal = (mk_lam "x" (mv i))

let psi k : Ctxs.sctx =
  { Ctxs.s_var = Some k; Ctxs.s_promoted = false; Ctxs.s_decls = [] }

let hat ?(names = []) k : Meta.hat =
  { Meta.hat_var = Some k; Meta.hat_names = names }

let boxm h m : Comp.exp = Comp.Box (Meta.MOTerm (h, m))

let mobj h m : Meta.mobj = Meta.MOTerm (h, m)

let mlams names e = List.fold_right (fun x acc -> Comp.MLam (x, acc)) names e

let non_dep_inv name msrt body : Comp.inv =
  { Comp.inv_mctx = []; Comp.inv_name = name; Comp.inv_msrt = msrt;
    Comp.inv_body = body }

(** [σb : (ψ,x) → (ψ,b)]. *)
let sigma_b : sub = (mk_dot (Obj (pj 1 1)) ((mk_shift 1)))

(** [σbd3 : (ψ,x,u,v) → (ψ,b)] for triple blocks. *)
let sigma_bd3 : sub =
  (mk_dot (Obj (pj 1 3)) ((mk_dot (Obj (pj 1 2)) ((mk_dot (Obj (pj 1 1)) ((mk_shift 1)))))))

(** [σe3 : (ψ,b) → (ψ,x,u,v)], sending [b ↦ ⟨x;u;v⟩]. *)
let sigma_e3 : sub = (mk_dot (Tup [ bv 3; bv 2; bv 1 ]) ((mk_shift 3)))

(** Weakening [(ψ,x) → (ψ,x,u,v)], canonically [↑²]. *)
let sub_x3 : sub = (mk_shift 2)

let make () : t =
  let sg = Sign.create () in
  let tm = Sign.add_typ sg ~name:"tm" ~kind:Ktype ~implicit:0 in
  let tm_t = (mk_atom tm []) in
  let tm_arr = (mk_pi "x" tm_t tm_t) in
  let lam = Sign.add_const sg ~name:"lam" ~typ:(arr tm_arr tm_t) ~implicit:0 in
  let app =
    Sign.add_const sg ~name:"app" ~typ:(arr tm_t (arr tm_t tm_t)) ~implicit:0
  in
  let eq_kind = Kpi ("m", tm_t, Kpi ("n", tm_t, Ktype)) in
  let aeq = Sign.add_typ sg ~name:"aeq" ~kind:eq_kind ~implicit:0 in
  let deq = Sign.add_typ sg ~name:"deq" ~kind:eq_kind ~implicit:0 in
  let aq m n = (mk_atom aeq ([ m; n ])) in
  let dqt m n = (mk_atom deq ([ m; n ])) in
  let eta_fn i = (mk_lam "x" ((mk_root ((mk_bvar (i + 1))) ([ v 1 ])))) in
  (* generalized lam rule for a target family [h]:
     {M}{N} ({x:tm} aeq x x -> deq x x -> h (M x) (N x))
            -> h (lam M) (lam N) *)
  let gen_lam_typ h =
    (mk_pi "M" tm_arr ((mk_pi "N" tm_arr (arr
              ((mk_pi "x" tm_t (arr
                     (aq (v 1) (v 1))
                     (arr
                        (dqt (v 1) (v 1))
                        ((mk_atom h ([ (mk_root ((mk_bvar 3)) ([ v 1 ]));
                               (mk_root ((mk_bvar 2)) ([ v 1 ])) ])))))))
              ((mk_atom h ([ (mk_root ((mk_const lam)) ([ eta_fn 2 ]));
                     (mk_root ((mk_const lam)) ([ eta_fn 1 ])) ])))))))
  in
  (* NOTE on indices inside gen_lam_typ: the nested [arr]s keep all
     sub-terms at the level of their syntactic position; under [x] the
     binders are M(3), N(2), x(1), and crossing each (anonymous) arrow
     binder shifts uniformly, which [arr] performs. *)
  let gen_app_typ h =
    (mk_pi "M1" tm_t ((mk_pi "N1" tm_t ((mk_pi "M2" tm_t ((mk_pi "N2" tm_t (arr
                      ((mk_atom h ([ v 4; v 3 ])))
                      (arr
                         ((mk_atom h ([ v 2; v 1 ])))
                         ((mk_atom h ([ (mk_root ((mk_const app)) ([ v 4; v 2 ]));
                                (mk_root ((mk_const app)) ([ v 3; v 1 ])) ]))))))))))))
  in
  let ae_lam =
    Sign.add_const sg ~name:"ae-lam" ~typ:(gen_lam_typ aeq) ~implicit:2
  in
  let ae_app =
    Sign.add_const sg ~name:"ae-app" ~typ:(gen_app_typ aeq) ~implicit:4
  in
  let de_lam =
    Sign.add_const sg ~name:"de-lam" ~typ:(gen_lam_typ deq) ~implicit:2
  in
  let de_app =
    Sign.add_const sg ~name:"de-app" ~typ:(gen_app_typ deq) ~implicit:4
  in
  let de_refl =
    Sign.add_const sg ~name:"de-refl"
      ~typ:((mk_pi "M" tm_t (dqt (v 1) (v 1))))
      ~implicit:0
  in
  let de_sym =
    Sign.add_const sg ~name:"de-sym"
      ~typ:
        ((mk_pi "M" tm_t ((mk_pi "N" tm_t (arr (dqt (v 2) (v 1)) (dqt (v 1) (v 2)))))))
      ~implicit:2
  in
  let de_trans =
    Sign.add_const sg ~name:"de-trans"
      ~typ:
        ((mk_pi "M1" tm_t ((mk_pi "M2" tm_t ((mk_pi "M3" tm_t (arr (dqt (v 3) (v 2)) (arr (dqt (v 2) (v 1)) (dqt (v 3) (v 1))))))))))
      ~implicit:3
  in
  (* joint schema: block (x : tm, u : aeq x x, v : deq x x) *)
  let xg_elem =
    {
      Ctxs.e_name = "xeW";
      Ctxs.e_params = [];
      Ctxs.e_block =
        [ ("x", tm_t); ("u", aq (v 1) (v 1)); ("v", dqt (v 2) (v 2)) ];
    }
  in
  let xg = Sign.add_schema sg ~name:"xG" ~elems:[ xg_elem ] in
  let xg_s = (Sign.schema_entry sg xg).Sign.g_trivial in
  let xg_selem = Embed.elem ~refines:0 xg_elem in

  (* sort-level (all-embedded) views *)
  let tm_s = (mk_sembed tm []) in
  let aqs m n = (mk_sembed aeq ([ m; n ])) in
  let dqs m n = (mk_sembed deq ([ m; n ])) in
  let psi_x k =
    { Ctxs.s_var = Some k; Ctxs.s_promoted = false;
      Ctxs.s_decls = [ Ctxs.SCDecl ("x", tm_s) ] }
  in
  (* (ψ@k, x:tm, u:aeq x x, v:deq x x) *)
  let psi_xuv k =
    { Ctxs.s_var = Some k; Ctxs.s_promoted = false;
      Ctxs.s_decls =
        [ Ctxs.SCDecl ("v", dqs (bv 2) (bv 2));
          Ctxs.SCDecl ("u", aqs (bv 1) (bv 1));
          Ctxs.SCDecl ("x", tm_s) ] }
  in
  let psi_b k =
    { Ctxs.s_var = Some k; Ctxs.s_promoted = false;
      Ctxs.s_decls = [ Ctxs.SCBlock ("b", xg_selem, []) ] }
  in
  let e_lam3 a b body = (mk_root ((mk_const ae_lam)) ([ a; b; body ])) in
  let d_lam3 a b body = (mk_root ((mk_const de_lam)) ([ a; b; body ])) in
  let lam3 body = (mk_lam "x" ((mk_lam "u" ((mk_lam "v" body))))) in
  let check_rec name styp body_of_id =
    let typ = Erase.ctyp sg styp in
    ignore (Check_comp.wf_ctyp (Check_comp.make_env sg [] []) styp);
    let id = Sign.add_rec sg ~name ~styp ~typ in
    let body = body_of_id id in
    Check_comp.check_exp (Check_comp.make_env sg [] []) body styp;
    Embed_t.check_exp_t sg [] [] (Erase.exp sg body) typ;
    Sign.set_rec_body sg id body;
    id
  in

  (* ===============================================================
     aeq-refl : (Ψ:xG)(M:Ψ.tm) [Ψ ⊢ aeq M M]
     =============================================================== *)
  let refl_styp =
    Comp.CPi ("Psi", true, Meta.MSCtx xg_s,
    Comp.CPi ("M", true, Meta.MSTerm (psi 1, tm_s),
    Comp.CBox (Meta.MSTerm (psi 2, aqs (mv 1) (mv 1)))))
  in
  let refl_id =
    check_rec "aeq-refl" refl_styp (fun refl_id ->
        let inv =
          non_dep_inv "X0"
            (Meta.MSTerm (psi 2, tm_s))
            (Comp.CBox (Meta.MSTerm (psi 3, aqs (mv 1) (mv 1))))
        in
        let scrut = boxm (hat 2) (mv 1) in
        (* var: Ω_all = [b(1); M(2); ψ(3)] *)
        let br_var =
          { Comp.br_mctx = [ Meta.MDParam ("b", psi 2, xg_selem, []) ];
            Comp.br_pat = mobj (hat 3) (pvj 1 1);
            Comp.br_body = boxm (hat 3) (pvj 1 2) }
        in
        (* lam: Ω_all = [M'(1); M(2); ψ(3)] *)
        let br_lam =
          let body =
            Comp.LetBox
              ( "E",
                Comp.MApp
                  ( Comp.MApp (Comp.RecConst refl_id, Meta.MOCtx (psi_b 3)),
                    mobj (hat 3 ~names:[ "b" ]) (mvs 1 sigma_b) ),
                boxm (hat 4)
                  (e_lam3 (lam_eta 2) (lam_eta 2) (lam3 (mvs 1 sigma_e3))) )
          in
          { Comp.br_mctx = [ Meta.MDTerm ("M'", psi_x 2, tm_s) ];
            Comp.br_pat =
              mobj (hat 3) ((mk_root ((mk_const lam)) ([ (mk_lam "x" (mv 1)) ])));
            Comp.br_body = body }
        in
        (* app: Ω_all = [M2(1); M1(2); M(3); ψ(4)] *)
        let br_app =
          let body =
            Comp.LetBox
              ( "E1",
                Comp.MApp
                  ( Comp.MApp (Comp.RecConst refl_id, Meta.MOCtx (psi 4)),
                    mobj (hat 4) (mv 2) ),
                Comp.LetBox
                  ( "E2",
                    Comp.MApp
                      ( Comp.MApp (Comp.RecConst refl_id, Meta.MOCtx (psi 5)),
                        mobj (hat 5) (mv 2) ),
                    boxm (hat 6)
                      ((mk_root ((mk_const ae_app)) ([ mv 4; mv 4; mv 3; mv 3; mv 2; mv 1 ])))
                  ) )
          in
          { Comp.br_mctx =
              [ Meta.MDTerm ("M2", psi 3, tm_s);
                Meta.MDTerm ("M1", psi 2, tm_s) ];
            Comp.br_pat =
              mobj (hat 4) ((mk_root ((mk_const app)) ([ mv 2; mv 1 ])));
            Comp.br_body = body }
        in
        mlams [ "Psi"; "M" ]
          (Comp.Case (inv, scrut, [ br_var; br_lam; br_app ])))
  in

  (* ===============================================================
     aeq-sym : (Ψ:xG)(M N:Ψ.tm) [Ψ⊢aeq M N] → [Ψ⊢aeq N M]
     =============================================================== *)
  let sym_styp =
    Comp.CPi ("Psi", true, Meta.MSCtx xg_s,
    Comp.CPi ("M", true, Meta.MSTerm (psi 1, tm_s),
    Comp.CPi ("N", true, Meta.MSTerm (psi 2, tm_s),
    Comp.CArr
      ( Comp.CBox (Meta.MSTerm (psi 3, aqs (mv 2) (mv 1))),
        Comp.CBox (Meta.MSTerm (psi 3, aqs (mv 1) (mv 2))) ))))
  in
  let sym_id =
    check_rec "aeq-sym" sym_styp (fun sym_id ->
        let inv =
          non_dep_inv "X0"
            (Meta.MSTerm (psi 3, aqs (mv 2) (mv 1)))
            (Comp.CBox (Meta.MSTerm (psi 4, aqs (mv 2) (mv 3))))
        in
        let br_var =
          { Comp.br_mctx = [ Meta.MDParam ("b", psi 3, xg_selem, []) ];
            Comp.br_pat = mobj (hat 4) (pvj 1 2);
            Comp.br_body = boxm (hat 4) (pvj 1 2) }
        in
        (* ae-lam: Ω_all = [D(1); N'(2); M'(3); N(4); M(5); ψ(6)] *)
        let br_lam =
          let d_decl =
            Meta.MDTerm ("D", psi_xuv 5, aqs (mvs 2 sub_x3) (mvs 1 sub_x3))
          in
          let body =
            Comp.LetBox
              ( "E",
                Comp.App
                  ( Comp.MApp
                      ( Comp.MApp
                          ( Comp.MApp (Comp.RecConst sym_id, Meta.MOCtx (psi_b 6)),
                            mobj (hat 6 ~names:[ "b" ]) (mvs 3 sigma_b) ),
                        mobj (hat 6 ~names:[ "b" ]) (mvs 2 sigma_b) ),
                    boxm (hat 6 ~names:[ "b" ]) (mvs 1 sigma_bd3) ),
                boxm (hat 7)
                  (e_lam3 (lam_eta 3) (lam_eta 4) (lam3 (mvs 1 sigma_e3))) )
          in
          { Comp.br_mctx =
              [ d_decl;
                Meta.MDTerm ("N'", psi_x 4, tm_s);
                Meta.MDTerm ("M'", psi_x 3, tm_s) ];
            Comp.br_pat =
              mobj (hat 6) (e_lam3 (lam_eta 3) (lam_eta 2) (lam3 (mv 1)));
            Comp.br_body = body }
        in
        (* ae-app: Ω_all = [D2(1); D1(2); N2'(3); M2'(4); N1'(5); M1'(6);
                            N(7); M(8); ψ(9)] *)
        let br_app =
          let body =
            Comp.LetBox
              ( "E1",
                Comp.App
                  ( Comp.MApp
                      ( Comp.MApp
                          ( Comp.MApp (Comp.RecConst sym_id, Meta.MOCtx (psi 9)),
                            mobj (hat 9) (mv 6) ),
                        mobj (hat 9) (mv 5) ),
                    boxm (hat 9) (mv 2) ),
                Comp.LetBox
                  ( "E2",
                    Comp.App
                      ( Comp.MApp
                          ( Comp.MApp
                              ( Comp.MApp
                                  (Comp.RecConst sym_id, Meta.MOCtx (psi 10)),
                                mobj (hat 10) (mv 5) ),
                            mobj (hat 10) (mv 4) ),
                        boxm (hat 10) (mv 2) ),
                    boxm (hat 11)
                      ((mk_root ((mk_const ae_app)) ([ mv 7; mv 8; mv 5; mv 6; mv 2; mv 1 ])))
                  ) )
          in
          { Comp.br_mctx =
              [ Meta.MDTerm ("D2", psi 8, aqs (mv 3) (mv 2));
                Meta.MDTerm ("D1", psi 7, aqs (mv 4) (mv 3));
                Meta.MDTerm ("N2'", psi 6, tm_s);
                Meta.MDTerm ("M2'", psi 5, tm_s);
                Meta.MDTerm ("N1'", psi 4, tm_s);
                Meta.MDTerm ("M1'", psi 3, tm_s) ];
            Comp.br_pat =
              mobj (hat 9)
                ((mk_root ((mk_const ae_app)) ([ mv 6; mv 5; mv 4; mv 3; mv 2; mv 1 ])));
            Comp.br_body = body }
        in
        mlams [ "Psi"; "M"; "N" ]
          (Comp.Fn
             ("d", None, Comp.Case (inv, Comp.Var 1, [ br_var; br_lam; br_app ]))))
  in

  (* ===============================================================
     aeq-trans : (Ψ:xG)(M1 M2 M3) [aeq M1 M2] → [aeq M2 M3] → [aeq M1 M3]
     =============================================================== *)
  let trans_styp =
    Comp.CPi ("Psi", true, Meta.MSCtx xg_s,
    Comp.CPi ("M1", true, Meta.MSTerm (psi 1, tm_s),
    Comp.CPi ("M2", true, Meta.MSTerm (psi 2, tm_s),
    Comp.CPi ("M3", true, Meta.MSTerm (psi 3, tm_s),
    Comp.CArr
      ( Comp.CBox (Meta.MSTerm (psi 4, aqs (mv 3) (mv 2))),
        Comp.CArr
          ( Comp.CBox (Meta.MSTerm (psi 4, aqs (mv 2) (mv 1))),
            Comp.CBox (Meta.MSTerm (psi 4, aqs (mv 3) (mv 1))) ) )))))
  in
  let trans_id =
    check_rec "aeq-trans" trans_styp (fun trans_id ->
        let inv =
          non_dep_inv "X0"
            (Meta.MSTerm (psi 4, aqs (mv 3) (mv 2)))
            (Comp.CBox (Meta.MSTerm (psi 5, aqs (mv 4) (mv 2))))
        in
        let br_var =
          { Comp.br_mctx = [ Meta.MDParam ("b", psi 4, xg_selem, []) ];
            Comp.br_pat = mobj (hat 5) (pvj 1 2);
            Comp.br_body = Comp.Var 1 }
        in
        (* ae-lam outer: Ω_all = [D(1); N'(2); M'(3); M3(4); M2(5); M1(6); ψ(7)] *)
        let br_lam =
          let d_decl =
            Meta.MDTerm ("D", psi_xuv 6, aqs (mvs 2 sub_x3) (mvs 1 sub_x3))
          in
          let inner_inv =
            non_dep_inv "X1"
              (Meta.MSTerm
                 (psi 7, aqs ((mk_root ((mk_const lam)) ([ lam_eta 2 ]))) (mv 4)))
              (Comp.CBox
                 (Meta.MSTerm
                    (psi 8, aqs ((mk_root ((mk_const lam)) ([ lam_eta 4 ]))) (mv 5))))
          in
          (* inner ae-lam: Ω_all2 = [D'(1); P'(2); N''(3); D(4); N'(5);
             M'(6); M3(7); M2(8); M1(9); ψ(10)] *)
          let inner_lam =
            let d'_decl =
              Meta.MDTerm ("D'", psi_xuv 9, aqs (mvs 2 sub_x3) (mvs 1 sub_x3))
            in
            let body =
              Comp.LetBox
                ( "E",
                  Comp.App
                    ( Comp.App
                        ( Comp.MApp
                            ( Comp.MApp
                                ( Comp.MApp
                                    ( Comp.MApp
                                        ( Comp.RecConst trans_id,
                                          Meta.MOCtx (psi_b 10) ),
                                      mobj (hat 10 ~names:[ "b" ])
                                        (mvs 6 sigma_b) ),
                                  mobj (hat 10 ~names:[ "b" ]) (mvs 5 sigma_b)
                                ),
                              mobj (hat 10 ~names:[ "b" ]) (mvs 2 sigma_b) ),
                          boxm (hat 10 ~names:[ "b" ]) (mvs 4 sigma_bd3) ),
                      boxm (hat 10 ~names:[ "b" ]) (mvs 1 sigma_bd3) ),
                  boxm (hat 11)
                    (e_lam3 (lam_eta 7) (lam_eta 3) (lam3 (mvs 1 sigma_e3))) )
            in
            { Comp.br_mctx =
                [ d'_decl;
                  Meta.MDTerm ("P'", psi_x 8, tm_s);
                  Meta.MDTerm ("N''", psi_x 7, tm_s) ];
              Comp.br_pat =
                mobj (hat 10) (e_lam3 (lam_eta 3) (lam_eta 2) (lam3 (mv 1)));
              Comp.br_body = body }
          in
          { Comp.br_mctx =
              [ d_decl;
                Meta.MDTerm ("N'", psi_x 5, tm_s);
                Meta.MDTerm ("M'", psi_x 4, tm_s) ];
            Comp.br_pat =
              mobj (hat 7) (e_lam3 (lam_eta 3) (lam_eta 2) (lam3 (mv 1)));
            Comp.br_body = Comp.Case (inner_inv, Comp.Var 1, [ inner_lam ]) }
        in
        (* ae-app outer: Ω_all = [D2(1); D1(2); N2'(3); M2'(4); N1'(5);
           M1'(6); M3(7); M2(8); M1(9); ψ(10)] *)
        let br_app =
          let inner_inv =
            non_dep_inv "X1"
              (Meta.MSTerm
                 (psi 10, aqs ((mk_root ((mk_const app)) ([ mv 5; mv 3 ]))) (mv 7)))
              (Comp.CBox
                 (Meta.MSTerm
                    (psi 11, aqs ((mk_root ((mk_const app)) ([ mv 7; mv 5 ]))) (mv 8))))
          in
          let inner_app =
            let body =
              Comp.LetBox
                ( "G1",
                  Comp.App
                    ( Comp.App
                        ( Comp.MApp
                            ( Comp.MApp
                                ( Comp.MApp
                                    ( Comp.MApp
                                        ( Comp.RecConst trans_id,
                                          Meta.MOCtx (psi 16) ),
                                      mobj (hat 16) (mv 12) ),
                                  mobj (hat 16) (mv 11) ),
                              mobj (hat 16) (mv 5) ),
                          boxm (hat 16) (mv 8) ),
                      boxm (hat 16) (mv 2) ),
                  Comp.LetBox
                    ( "G2",
                      Comp.App
                        ( Comp.App
                            ( Comp.MApp
                                ( Comp.MApp
                                    ( Comp.MApp
                                        ( Comp.MApp
                                            ( Comp.RecConst trans_id,
                                              Meta.MOCtx (psi 17) ),
                                          mobj (hat 17) (mv 11) ),
                                      mobj (hat 17) (mv 10) ),
                                  mobj (hat 17) (mv 4) ),
                              boxm (hat 17) (mv 8) ),
                          boxm (hat 17) (mv 2) ),
                      boxm (hat 18)
                        ((mk_root ((mk_const ae_app)) ([ mv 14; mv 7; mv 12; mv 5; mv 2; mv 1 ]))) ) )
            in
            { Comp.br_mctx =
                [ Meta.MDTerm ("F2", psi 15, aqs (mv 3) (mv 2));
                  Meta.MDTerm ("F1", psi 14, aqs (mv 4) (mv 3));
                  Meta.MDTerm ("P2'", psi 13, tm_s);
                  Meta.MDTerm ("N2''", psi 12, tm_s);
                  Meta.MDTerm ("P1'", psi 11, tm_s);
                  Meta.MDTerm ("N1''", psi 10, tm_s) ];
              Comp.br_pat =
                mobj (hat 16)
                  ((mk_root ((mk_const ae_app)) ([ mv 6; mv 5; mv 4; mv 3; mv 2; mv 1 ])));
              Comp.br_body = body }
          in
          { Comp.br_mctx =
              [ Meta.MDTerm ("D2", psi 9, aqs (mv 3) (mv 2));
                Meta.MDTerm ("D1", psi 8, aqs (mv 4) (mv 3));
                Meta.MDTerm ("N2'", psi 7, tm_s);
                Meta.MDTerm ("M2'", psi 6, tm_s);
                Meta.MDTerm ("N1'", psi 5, tm_s);
                Meta.MDTerm ("M1'", psi 4, tm_s) ];
            Comp.br_pat =
              mobj (hat 10)
                ((mk_root ((mk_const ae_app)) ([ mv 6; mv 5; mv 4; mv 3; mv 2; mv 1 ])));
            Comp.br_body = Comp.Case (inner_inv, Comp.Var 1, [ inner_app ]) }
        in
        mlams [ "Psi"; "M1"; "M2"; "M3" ]
          (Comp.Fn
             ( "d1", None,
               Comp.Fn
                 ( "d2", None,
                   Comp.Case (inv, Comp.Var 2, [ br_var; br_lam; br_app ]) ) )))
  in

  (* ===============================================================
     ceq : (Ψ:xG)(M N) [Ψ ⊢ deq M N] → [Ψ ⊢ aeq M N]
     (no promotion available: the joint context carries everything)
     =============================================================== *)
  let ceq_styp =
    Comp.CPi ("Psi", true, Meta.MSCtx xg_s,
    Comp.CPi ("M", true, Meta.MSTerm (psi 1, tm_s),
    Comp.CPi ("N", true, Meta.MSTerm (psi 2, tm_s),
    Comp.CArr
      ( Comp.CBox (Meta.MSTerm (psi 3, dqs (mv 2) (mv 1))),
        Comp.CBox (Meta.MSTerm (psi 3, aqs (mv 2) (mv 1))) ))))
  in
  let ceq_id =
    check_rec "ceq" ceq_styp (fun ceq_id ->
        let inv =
          non_dep_inv "X0"
            (Meta.MSTerm (psi 3, dqs (mv 2) (mv 1)))
            (Comp.CBox (Meta.MSTerm (psi 4, aqs (mv 3) (mv 2))))
        in
        (* var: #b.3 (deq) ↦ #b.2 (aeq) — the conventional projection
           juggling *)
        let br_var =
          { Comp.br_mctx = [ Meta.MDParam ("b", psi 3, xg_selem, []) ];
            Comp.br_pat = mobj (hat 4) (pvj 1 3);
            Comp.br_body = boxm (hat 4) (pvj 1 2) }
        in
        (* de-lam: Ω_all = [D(1); N'(2); M'(3); N(4); M(5); ψ(6)] *)
        let br_lam =
          let d_decl =
            Meta.MDTerm ("D", psi_xuv 5, dqs (mvs 2 sub_x3) (mvs 1 sub_x3))
          in
          let body =
            Comp.LetBox
              ( "E",
                Comp.App
                  ( Comp.MApp
                      ( Comp.MApp
                          ( Comp.MApp (Comp.RecConst ceq_id, Meta.MOCtx (psi_b 6)),
                            mobj (hat 6 ~names:[ "b" ]) (mvs 3 sigma_b) ),
                        mobj (hat 6 ~names:[ "b" ]) (mvs 2 sigma_b) ),
                    boxm (hat 6 ~names:[ "b" ]) (mvs 1 sigma_bd3) ),
                boxm (hat 7)
                  (e_lam3 (lam_eta 4) (lam_eta 3) (lam3 (mvs 1 sigma_e3))) )
          in
          { Comp.br_mctx =
              [ d_decl;
                Meta.MDTerm ("N'", psi_x 4, tm_s);
                Meta.MDTerm ("M'", psi_x 3, tm_s) ];
            Comp.br_pat =
              mobj (hat 6) (d_lam3 (lam_eta 3) (lam_eta 2) (lam3 (mv 1)));
            Comp.br_body = body }
        in
        (* de-app: Ω_all = [D2(1); D1(2); N2'(3); M2'(4); N1'(5); M1'(6);
                            N(7); M(8); ψ(9)] *)
        let br_app =
          let body =
            Comp.LetBox
              ( "E1",
                Comp.App
                  ( Comp.MApp
                      ( Comp.MApp
                          ( Comp.MApp (Comp.RecConst ceq_id, Meta.MOCtx (psi 9)),
                            mobj (hat 9) (mv 6) ),
                        mobj (hat 9) (mv 5) ),
                    boxm (hat 9) (mv 2) ),
                Comp.LetBox
                  ( "E2",
                    Comp.App
                      ( Comp.MApp
                          ( Comp.MApp
                              ( Comp.MApp
                                  (Comp.RecConst ceq_id, Meta.MOCtx (psi 10)),
                                mobj (hat 10) (mv 5) ),
                            mobj (hat 10) (mv 4) ),
                        boxm (hat 10) (mv 2) ),
                    boxm (hat 11)
                      ((mk_root ((mk_const ae_app)) ([ mv 8; mv 7; mv 6; mv 5; mv 2; mv 1 ])))
                  ) )
          in
          { Comp.br_mctx =
              [ Meta.MDTerm ("D2", psi 8, dqs (mv 3) (mv 2));
                Meta.MDTerm ("D1", psi 7, dqs (mv 4) (mv 3));
                Meta.MDTerm ("N2'", psi 6, tm_s);
                Meta.MDTerm ("M2'", psi 5, tm_s);
                Meta.MDTerm ("N1'", psi 4, tm_s);
                Meta.MDTerm ("M1'", psi 3, tm_s) ];
            Comp.br_pat =
              mobj (hat 9)
                ((mk_root ((mk_const de_app)) ([ mv 6; mv 5; mv 4; mv 3; mv 2; mv 1 ])));
            Comp.br_body = body }
        in
        (* de-refl: Ω_all = [M0(1); N(2); M(3); ψ(4)] *)
        let br_refl =
          { Comp.br_mctx = [ Meta.MDTerm ("M0", psi 3, tm_s) ];
            Comp.br_pat = mobj (hat 4) ((mk_root ((mk_const de_refl)) ([ mv 1 ])));
            Comp.br_body =
              Comp.MApp
                ( Comp.MApp (Comp.RecConst refl_id, Meta.MOCtx (psi 4)),
                  mobj (hat 4) (mv 1) ) }
        in
        (* de-sym: Ω_all = [D(1); N0(2); M0(3); N(4); M(5); ψ(6)] *)
        let br_sym =
          let body =
            Comp.LetBox
              ( "E",
                Comp.App
                  ( Comp.MApp
                      ( Comp.MApp
                          ( Comp.MApp (Comp.RecConst ceq_id, Meta.MOCtx (psi 6)),
                            mobj (hat 6) (mv 3) ),
                        mobj (hat 6) (mv 2) ),
                    boxm (hat 6) (mv 1) ),
                Comp.App
                  ( Comp.MApp
                      ( Comp.MApp
                          ( Comp.MApp (Comp.RecConst sym_id, Meta.MOCtx (psi 7)),
                            mobj (hat 7) (mv 4) ),
                        mobj (hat 7) (mv 3) ),
                    boxm (hat 7) (mv 1) ) )
          in
          { Comp.br_mctx =
              [ Meta.MDTerm ("D", psi 5, dqs (mv 2) (mv 1));
                Meta.MDTerm ("N0", psi 4, tm_s);
                Meta.MDTerm ("M0", psi 3, tm_s) ];
            Comp.br_pat =
              mobj (hat 6) ((mk_root ((mk_const de_sym)) ([ mv 3; mv 2; mv 1 ])));
            Comp.br_body = body }
        in
        (* de-trans: Ω_all = [D2(1); D1(2); M2'(3); M1'(4); M0'(5);
                              N(6); M(7); ψ(8)] *)
        let br_trans =
          let body =
            Comp.LetBox
              ( "E1",
                Comp.App
                  ( Comp.MApp
                      ( Comp.MApp
                          ( Comp.MApp (Comp.RecConst ceq_id, Meta.MOCtx (psi 8)),
                            mobj (hat 8) (mv 5) ),
                        mobj (hat 8) (mv 4) ),
                    boxm (hat 8) (mv 2) ),
                Comp.LetBox
                  ( "E2",
                    Comp.App
                      ( Comp.MApp
                          ( Comp.MApp
                              ( Comp.MApp
                                  (Comp.RecConst ceq_id, Meta.MOCtx (psi 9)),
                                mobj (hat 9) (mv 5) ),
                            mobj (hat 9) (mv 4) ),
                        boxm (hat 9) (mv 2) ),
                    Comp.App
                      ( Comp.App
                          ( Comp.MApp
                              ( Comp.MApp
                                  ( Comp.MApp
                                      ( Comp.MApp
                                          ( Comp.RecConst trans_id,
                                            Meta.MOCtx (psi 10) ),
                                        mobj (hat 10) (mv 7) ),
                                    mobj (hat 10) (mv 6) ),
                                mobj (hat 10) (mv 5) ),
                            boxm (hat 10) (mv 2) ),
                        boxm (hat 10) (mv 1) ) ) )
          in
          { Comp.br_mctx =
              [ Meta.MDTerm ("D2", psi 7, dqs (mv 3) (mv 2));
                Meta.MDTerm ("D1", psi 6, dqs (mv 3) (mv 2));
                Meta.MDTerm ("M2'", psi 5, tm_s);
                Meta.MDTerm ("M1'", psi 4, tm_s);
                Meta.MDTerm ("M0'", psi 3, tm_s) ];
            Comp.br_pat =
              mobj (hat 8)
                ((mk_root ((mk_const de_trans)) ([ mv 5; mv 4; mv 3; mv 2; mv 1 ])));
            Comp.br_body = body }
        in
        mlams [ "Psi"; "M"; "N" ]
          (Comp.Fn
             ( "d", None,
               Comp.Case
                 ( inv, Comp.Var 1,
                   [ br_var; br_lam; br_app; br_refl; br_sym; br_trans ] ) )))
  in

  (* ===============================================================
     sound : (Ψ:xG)(M N) [Ψ ⊢ aeq M N] → [Ψ ⊢ deq M N]
     In the refinement development this theorem does not exist: it is
     the refinement relation itself.  Here it needs a full induction.
     =============================================================== *)
  let sound_styp =
    Comp.CPi ("Psi", true, Meta.MSCtx xg_s,
    Comp.CPi ("M", true, Meta.MSTerm (psi 1, tm_s),
    Comp.CPi ("N", true, Meta.MSTerm (psi 2, tm_s),
    Comp.CArr
      ( Comp.CBox (Meta.MSTerm (psi 3, aqs (mv 2) (mv 1))),
        Comp.CBox (Meta.MSTerm (psi 3, dqs (mv 2) (mv 1))) ))))
  in
  let sound_id =
    check_rec "sound" sound_styp (fun sound_id ->
        let inv =
          non_dep_inv "X0"
            (Meta.MSTerm (psi 3, aqs (mv 2) (mv 1)))
            (Comp.CBox (Meta.MSTerm (psi 4, dqs (mv 3) (mv 2))))
        in
        let br_var =
          { Comp.br_mctx = [ Meta.MDParam ("b", psi 3, xg_selem, []) ];
            Comp.br_pat = mobj (hat 4) (pvj 1 2);
            Comp.br_body = boxm (hat 4) (pvj 1 3) }
        in
        let br_lam =
          let d_decl =
            Meta.MDTerm ("D", psi_xuv 5, aqs (mvs 2 sub_x3) (mvs 1 sub_x3))
          in
          let body =
            Comp.LetBox
              ( "E",
                Comp.App
                  ( Comp.MApp
                      ( Comp.MApp
                          ( Comp.MApp
                              (Comp.RecConst sound_id, Meta.MOCtx (psi_b 6)),
                            mobj (hat 6 ~names:[ "b" ]) (mvs 3 sigma_b) ),
                        mobj (hat 6 ~names:[ "b" ]) (mvs 2 sigma_b) ),
                    boxm (hat 6 ~names:[ "b" ]) (mvs 1 sigma_bd3) ),
                boxm (hat 7)
                  (d_lam3 (lam_eta 4) (lam_eta 3) (lam3 (mvs 1 sigma_e3))) )
          in
          { Comp.br_mctx =
              [ d_decl;
                Meta.MDTerm ("N'", psi_x 4, tm_s);
                Meta.MDTerm ("M'", psi_x 3, tm_s) ];
            Comp.br_pat =
              mobj (hat 6) (e_lam3 (lam_eta 3) (lam_eta 2) (lam3 (mv 1)));
            Comp.br_body = body }
        in
        let br_app =
          let body =
            Comp.LetBox
              ( "E1",
                Comp.App
                  ( Comp.MApp
                      ( Comp.MApp
                          ( Comp.MApp (Comp.RecConst sound_id, Meta.MOCtx (psi 9)),
                            mobj (hat 9) (mv 6) ),
                        mobj (hat 9) (mv 5) ),
                    boxm (hat 9) (mv 2) ),
                Comp.LetBox
                  ( "E2",
                    Comp.App
                      ( Comp.MApp
                          ( Comp.MApp
                              ( Comp.MApp
                                  (Comp.RecConst sound_id, Meta.MOCtx (psi 10)),
                                mobj (hat 10) (mv 5) ),
                            mobj (hat 10) (mv 4) ),
                        boxm (hat 10) (mv 2) ),
                    boxm (hat 11)
                      ((mk_root ((mk_const de_app)) ([ mv 8; mv 7; mv 6; mv 5; mv 2; mv 1 ])))
                  ) )
          in
          { Comp.br_mctx =
              [ Meta.MDTerm ("D2", psi 8, aqs (mv 3) (mv 2));
                Meta.MDTerm ("D1", psi 7, aqs (mv 4) (mv 3));
                Meta.MDTerm ("N2'", psi 6, tm_s);
                Meta.MDTerm ("M2'", psi 5, tm_s);
                Meta.MDTerm ("N1'", psi 4, tm_s);
                Meta.MDTerm ("M1'", psi 3, tm_s) ];
            Comp.br_pat =
              mobj (hat 9)
                ((mk_root ((mk_const ae_app)) ([ mv 6; mv 5; mv 4; mv 3; mv 2; mv 1 ])));
            Comp.br_body = body }
        in
        mlams [ "Psi"; "M"; "N" ]
          (Comp.Fn
             ( "d", None,
               Comp.Case (inv, Comp.Var 1, [ br_var; br_lam; br_app ]) )))
  in
  {
    sg; tm; lam; app; aeq; ae_lam; ae_app; deq; de_lam; de_app; de_refl;
    de_sym; de_trans; xg_elem; xg_selem; xg; xg_s;
    aeq_refl = refl_id; aeq_sym = sym_id; aeq_trans = trans_id;
    ceq = ceq_id; sound = sound_id;
  }
