(** The paper's §2 case study, built in internal syntax: completeness of
    algorithmic equality for the untyped λ-calculus, in the refinement
    style.

    Four computation-level functions over the {!Ulam} signature:

    - [aeq-refl  : (Ψ:xaG) (M:Ψ.tm) \[Ψ ⊢ aeq M M\]]
    - [aeq-sym   : (Ψ:xaG) (M N:Ψ.tm) \[Ψ ⊢ aeq M N\] → \[Ψ ⊢ aeq N M\]]
    - [aeq-trans : (Ψ:xaG) (M1 M2 M3:Ψ.tm) \[Ψ ⊢ aeq M1 M2\] →
                   \[Ψ ⊢ aeq M2 M3\] → \[Ψ ⊢ aeq M1 M3\]]
    - [ceq       : (Ψ:xaG) (M N:Ψ.tm) \[Ψ⊤ ⊢ deq M N\] → \[Ψ ⊢ aeq M N\]]

    Soundness of algorithmic equality is {e free}: [aeq ⊑ deq], so every
    [aeq] derivation already is a [deq] derivation (this is the point of
    the refinement).  The [ceq] function exhibits the paper's promotion
    [Ψ⊤] in its argument sort and in the variable case.

    Everything is de Bruijn; each function's construction comments track
    the meta-context layout ("Ω_all = ...") at the relevant program
    point.  [make] declares the functions, sort-checks every body with
    {!Belr_core.Check_comp}, erases them, re-checks the erasures through
    the embedded (type-level) fragment, and installs the bodies so the
    functions are runnable with [Belr_comp.Eval]. *)

open Belr_syntax
open Belr_lf
open Belr_core
open Lf

type t = {
  ulam : Ulam.t;
  aeq_refl : cid_rec;
  aeq_sym : cid_rec;
  aeq_trans : cid_rec;
  ceq : cid_rec;
}

(* ----------------------------------------------------------------- *)
(* Shorthands                                                          *)

let mv i : normal = (mk_root ((mk_mvar i ((mk_shift 0)))) [])

let mvs i s : normal = (mk_root ((mk_mvar i s)) [])

let bv i : normal = (mk_root ((mk_bvar i)) [])

let pj b k : normal = (mk_root ((mk_proj ((mk_bvar b)) k)) [])

let pvj p k : normal = (mk_root ((mk_proj ((mk_pvar p ((mk_shift 0)))) k)) [])

(** η-long functional argument [λx. M'\[id\]] for a meta-variable of
    contextual sort [(Ψ,x:tm).tm]. *)
let lam_eta i : normal = (mk_lam "x" (mv i))

let psi k : Ctxs.sctx =
  { Ctxs.s_var = Some k; Ctxs.s_promoted = false; Ctxs.s_decls = [] }

let psi_top k : Ctxs.sctx =
  { Ctxs.s_var = Some k; Ctxs.s_promoted = true; Ctxs.s_decls = [] }

let hat ?(names = []) k : Meta.hat =
  { Meta.hat_var = Some k; Meta.hat_names = names }

let boxm h m : Comp.exp = Comp.Box (Meta.MOTerm (h, m))

let mobj h m : Meta.mobj = Meta.MOTerm (h, m)

(** [σb : (ψ,x) → (ψ,b)], sending [x ↦ b.1]. *)
let sigma_b : sub = (mk_dot (Obj (pj 1 1)) ((mk_shift 1)))

(** [σbd : (ψ,x,u) → (ψ,b)], sending [x ↦ b.1], [u ↦ b.2]. *)
let sigma_bd : sub = (mk_dot (Obj (pj 1 2)) ((mk_dot (Obj (pj 1 1)) ((mk_shift 1)))))

(** [σe : (ψ,b) → (ψ,x,u)], sending [b ↦ ⟨x;u⟩]. *)
let sigma_e : sub = (mk_dot (Tup [ bv 2; bv 1 ]) ((mk_shift 2)))

(** The delayed substitution of the subderivation meta-variables in
    [e-lam] branches: the weakening [(ψ,x) → (ψ,x,u)], canonically [↑¹]. *)
let sub_x2 : sub = (mk_shift 1)

let mlams names e =
  List.fold_right (fun x acc -> Comp.MLam (x, acc)) names e

let non_dep_inv name msrt body : Comp.inv =
  { Comp.inv_mctx = []; Comp.inv_name = name; Comp.inv_msrt = msrt;
    Comp.inv_body = body }

(* ----------------------------------------------------------------- *)

let make () : t =
  let u = Ulam.make () in
  let sg = u.Ulam.sg in
  let tm_s = (mk_sembed u.Ulam.tm []) in
  let aq m n = (mk_satom u.Ulam.aeq ([ m; n ])) in
  let dq m n = (mk_sembed u.Ulam.deq ([ m; n ])) in
  let lam' m = (mk_root ((mk_const u.Ulam.lam)) ([ m ])) in
  let app' m n = (mk_root ((mk_const u.Ulam.app)) ([ m; n ])) in
  let e_lam sp = (mk_root ((mk_const u.Ulam.e_lam)) sp) in
  let e_app sp = (mk_root ((mk_const u.Ulam.e_app)) sp) in
  (* context (ψ@k, x:tm) — the home of subterm meta-variables *)
  let psi_x k =
    { Ctxs.s_var = Some k; Ctxs.s_promoted = false;
      Ctxs.s_decls = [ Ctxs.SCDecl ("x", tm_s) ] }
  in
  (* context (ψ@k, x:tm, u:aeq x x) — home of aeq subderivations *)
  let psi_xu_a k =
    { Ctxs.s_var = Some k; Ctxs.s_promoted = false;
      Ctxs.s_decls = [ Ctxs.SCDecl ("u", aq (bv 1) (bv 1));
                       Ctxs.SCDecl ("x", tm_s) ] }
  in
  (* context (ψ@k, x:tm, u:deq x x)⊤ — home of deq subderivations in ceq *)
  let psi_xu_d k =
    { Ctxs.s_var = Some k; Ctxs.s_promoted = true;
      Ctxs.s_decls = [ Ctxs.SCDecl ("u", dq (bv 1) (bv 1));
                       Ctxs.SCDecl ("x", tm_s) ] }
  in
  (* (ψ@k, b:xeW) as a context argument *)
  let psi_b k =
    { Ctxs.s_var = Some k; Ctxs.s_promoted = false;
      Ctxs.s_decls = [ Ctxs.SCBlock ("b", u.Ulam.xa_selem, []) ] }
  in
  (* =================================================================
     aeq-refl : (Ψ:xaG) (M : Ψ.tm) [Ψ ⊢ aeq M M]
     ================================================================= *)
  let refl_styp =
    Comp.CPi ("Psi", true, Meta.MSCtx u.Ulam.xag,
    Comp.CPi ("M", true, Meta.MSTerm (psi 1, tm_s),
    Comp.CBox (Meta.MSTerm (psi 2, aq (mv 1) (mv 1)))))
  in
  (* Declare first so recursive occurrences can refer to the id. *)
  let refl_typ = Erase.ctyp sg refl_styp in
  ignore (Check_comp.wf_ctyp (Check_comp.make_env sg [] []) refl_styp);
  let refl_id = Sign.add_rec sg ~name:"aeq-refl" ~styp:refl_styp ~typ:refl_typ in
  let refl_body =
    let inv =
      non_dep_inv "X0"
        (Meta.MSTerm (psi 2, tm_s))
        (Comp.CBox (Meta.MSTerm (psi 3, aq (mv 1) (mv 1))))
    in
    let scrut = boxm (hat 2) (mv 1) in
    let br_var =
      { Comp.br_mctx = [ Meta.MDParam ("b", psi 2, u.Ulam.xa_selem, []) ];
        Comp.br_pat = mobj (hat 3) (pvj 1 1);
        Comp.br_body = boxm (hat 3) (pvj 1 2) }
    in
    let br_lam =
      let body =
        Comp.LetBox
          ( "E",
            Comp.MApp
              ( Comp.MApp (Comp.RecConst refl_id, Meta.MOCtx (psi_b 3)),
                mobj (hat 3 ~names:[ "b" ]) (mvs 1 sigma_b) ),
            boxm (hat 4)
              (e_lam
                 [ lam_eta 2; lam_eta 2;
                   (mk_lam "x" ((mk_lam "u" (mvs 1 sigma_e)))) ]) )
      in
      { Comp.br_mctx = [ Meta.MDTerm ("M'", psi_x 2, tm_s) ];
        Comp.br_pat = mobj (hat 3) (lam' ((mk_lam "x" (mv 1))));
        Comp.br_body = body }
    in
    let br_app =
      let body =
        Comp.LetBox
          ( "E1",
            Comp.MApp
              ( Comp.MApp (Comp.RecConst refl_id, Meta.MOCtx (psi 4)),
                mobj (hat 4) (mv 2) ),
            Comp.LetBox
              ( "E2",
                Comp.MApp
                  ( Comp.MApp (Comp.RecConst refl_id, Meta.MOCtx (psi 5)),
                    mobj (hat 5) (mv 2) ),
                boxm (hat 6)
                  (e_app [ mv 4; mv 4; mv 3; mv 3; mv 2; mv 1 ]) ) )
      in
      { Comp.br_mctx =
          [ Meta.MDTerm ("M2", psi 3, tm_s); Meta.MDTerm ("M1", psi 2, tm_s) ];
        Comp.br_pat = mobj (hat 4) (app' (mv 2) (mv 1));
        Comp.br_body = body }
    in
    mlams [ "Psi"; "M" ]
      (Comp.Case (inv, scrut, [ br_var; br_lam; br_app ]))
  in
  Check_comp.check_exp (Check_comp.make_env sg [] []) refl_body refl_styp;
  Embed_t.check_exp_t sg [] [] (Erase.exp sg refl_body) refl_typ;
  Sign.set_rec_body sg refl_id refl_body;

  (* =================================================================
     aeq-sym : (Ψ:xaG)(M N:Ψ.tm) [Ψ ⊢ aeq M N] → [Ψ ⊢ aeq N M]
     ================================================================= *)
  let sym_styp =
    Comp.CPi ("Psi", true, Meta.MSCtx u.Ulam.xag,
    Comp.CPi ("M", true, Meta.MSTerm (psi 1, tm_s),
    Comp.CPi ("N", true, Meta.MSTerm (psi 2, tm_s),
    Comp.CArr
      ( Comp.CBox (Meta.MSTerm (psi 3, aq (mv 2) (mv 1))),
        Comp.CBox (Meta.MSTerm (psi 3, aq (mv 1) (mv 2))) ))))
  in
  let sym_typ = Erase.ctyp sg sym_styp in
  ignore (Check_comp.wf_ctyp (Check_comp.make_env sg [] []) sym_styp);
  let sym_id = Sign.add_rec sg ~name:"aeq-sym" ~styp:sym_styp ~typ:sym_typ in
  (* Case site: Ω = [N(1); M(2); ψ(3)], Φ = [d] *)
  let sym_body =
    let inv =
      non_dep_inv "X0"
        (Meta.MSTerm (psi 3, aq (mv 2) (mv 1)))
        (Comp.CBox (Meta.MSTerm (psi 4, aq (mv 2) (mv 3))))
    in
    (* variable case: Ω_all = [b(1); N(2); M(3); ψ(4)] *)
    let br_var =
      { Comp.br_mctx = [ Meta.MDParam ("b", psi 3, u.Ulam.xa_selem, []) ];
        Comp.br_pat = mobj (hat 4) (pvj 1 2);
        Comp.br_body = boxm (hat 4) (pvj 1 2) }
    in
    (* e-lam case: Ω_all = [D(1); N'(2); M'(3); N(4); M(5); ψ(6)] *)
    let br_elam =
      let d_decl =
        Meta.MDTerm
          ( "D",
            psi_xu_a 5,
            aq (mvs 2 sub_x2) (mvs 1 sub_x2) )
      in
      let body =
        (* let [E] = sym (ψ,b) (M'[σb]) (N'[σb]) [ψ,b ⊢ D[σbd]] in
           [ψ ⊢ e-lam N' M' (λx.λu. E[σe])]
           under E: D(2), N'(3), M'(4), ψ(7), E(1) *)
        Comp.LetBox
          ( "E",
            Comp.App
              ( Comp.MApp
                  ( Comp.MApp
                      ( Comp.MApp (Comp.RecConst sym_id, Meta.MOCtx (psi_b 6)),
                        mobj (hat 6 ~names:[ "b" ]) (mvs 3 sigma_b) ),
                    mobj (hat 6 ~names:[ "b" ]) (mvs 2 sigma_b) ),
                boxm (hat 6 ~names:[ "b" ]) (mvs 1 sigma_bd) ),
            boxm (hat 7)
              (e_lam
                 [ lam_eta 3; lam_eta 4;
                   (mk_lam "x" ((mk_lam "u" (mvs 1 sigma_e)))) ]) )
      in
      { Comp.br_mctx =
          [ d_decl;
            Meta.MDTerm ("N'", psi_x 4, tm_s);
            Meta.MDTerm ("M'", psi_x 3, tm_s) ];
        Comp.br_pat =
          mobj (hat 6)
            (e_lam [ lam_eta 3; lam_eta 2; (mk_lam "x" ((mk_lam "u" (mv 1)))) ]);
        Comp.br_body = body }
    in
    (* e-app case:
       Ω_all = [D2(1); D1(2); N2'(3); M2'(4); N1'(5); M1'(6);
                N(7); M(8); ψ(9)] *)
    let br_eapp =
      let body =
        (* let [E1] = sym ψ M1' N1' [ψ ⊢ D1] in
           let [E2] = sym ψ M2' N2' [ψ ⊢ D2] in
           [ψ ⊢ e-app N1' M1' N2' M2' E1 E2]
           under E1: indices +1; under E2: +2 *)
        Comp.LetBox
          ( "E1",
            Comp.App
              ( Comp.MApp
                  ( Comp.MApp
                      ( Comp.MApp (Comp.RecConst sym_id, Meta.MOCtx (psi 9)),
                        mobj (hat 9) (mv 6) ),
                    mobj (hat 9) (mv 5) ),
                boxm (hat 9) (mv 2) ),
            Comp.LetBox
              ( "E2",
                Comp.App
                  ( Comp.MApp
                      ( Comp.MApp
                          ( Comp.MApp
                              (Comp.RecConst sym_id, Meta.MOCtx (psi 10)),
                            mobj (hat 10) (mv 5) ),
                        mobj (hat 10) (mv 4) ),
                    boxm (hat 10) (mv 2) ),
                boxm (hat 11)
                  (e_app [ mv 7; mv 8; mv 5; mv 6; mv 2; mv 1 ]) ) )
      in
      { Comp.br_mctx =
          [ Meta.MDTerm ("D2", psi 8, aq (mv 3) (mv 2));
            Meta.MDTerm ("D1", psi 7, aq (mv 4) (mv 3));
            Meta.MDTerm ("N2'", psi 6, tm_s);
            Meta.MDTerm ("M2'", psi 5, tm_s);
            Meta.MDTerm ("N1'", psi 4, tm_s);
            Meta.MDTerm ("M1'", psi 3, tm_s) ];
        Comp.br_pat =
          mobj (hat 9) (e_app [ mv 6; mv 5; mv 4; mv 3; mv 2; mv 1 ]);
        Comp.br_body = body }
    in
    mlams [ "Psi"; "M"; "N" ]
      (Comp.Fn
         ( "d", None,
           Comp.Case (inv, Comp.Var 1, [ br_var; br_elam; br_eapp ]) ))
  in
  Check_comp.check_exp (Check_comp.make_env sg [] []) sym_body sym_styp;
  Embed_t.check_exp_t sg [] [] (Erase.exp sg sym_body) sym_typ;
  Sign.set_rec_body sg sym_id sym_body;

  (* =================================================================
     aeq-trans : (Ψ:xaG)(M1 M2 M3:Ψ.tm)
                 [Ψ ⊢ aeq M1 M2] → [Ψ ⊢ aeq M2 M3] → [Ψ ⊢ aeq M1 M3]
     ================================================================= *)
  let trans_styp =
    Comp.CPi ("Psi", true, Meta.MSCtx u.Ulam.xag,
    Comp.CPi ("M1", true, Meta.MSTerm (psi 1, tm_s),
    Comp.CPi ("M2", true, Meta.MSTerm (psi 2, tm_s),
    Comp.CPi ("M3", true, Meta.MSTerm (psi 3, tm_s),
    Comp.CArr
      ( Comp.CBox (Meta.MSTerm (psi 4, aq (mv 3) (mv 2))),
        Comp.CArr
          ( Comp.CBox (Meta.MSTerm (psi 4, aq (mv 2) (mv 1))),
            Comp.CBox (Meta.MSTerm (psi 4, aq (mv 3) (mv 1))) ) )))))
  in
  let trans_typ = Erase.ctyp sg trans_styp in
  ignore (Check_comp.wf_ctyp (Check_comp.make_env sg [] []) trans_styp);
  let trans_id =
    Sign.add_rec sg ~name:"aeq-trans" ~styp:trans_styp ~typ:trans_typ
  in
  (* Case site: Ω = [M3(1); M2(2); M1(3); ψ(4)], Φ = [d2(1); d1(2)] *)
  let trans_body =
    let inv =
      non_dep_inv "X0"
        (Meta.MSTerm (psi 4, aq (mv 3) (mv 2)))
        (Comp.CBox (Meta.MSTerm (psi 5, aq (mv 4) (mv 2))))
    in
    (* variable case: Ω_all = [b(1); M3(2); M2(3); M1(4); ψ(5)]
       M1 := b.1, M2 := b.1; the result is d2 itself. *)
    let br_var =
      { Comp.br_mctx = [ Meta.MDParam ("b", psi 4, u.Ulam.xa_selem, []) ];
        Comp.br_pat = mobj (hat 5) (pvj 1 2);
        Comp.br_body = Comp.Var 1 }
    in
    (* e-lam case:
       Ω_all = [D(1); N'(2); M'(3); M3(4); M2(5); M1(6); ψ(7)]
       M1 := lam M', M2 := lam N'.  Inner case on d2. *)
    let br_elam =
      let d_decl =
        Meta.MDTerm ("D", psi_xu_a 6, aq (mvs 2 sub_x2) (mvs 1 sub_x2))
      in
      let inner_inv =
        (* scrutinee sort [ψ ⊢ aeq (lam N') M3]; result [ψ ⊢ aeq (lam M') M3] *)
        non_dep_inv "X1"
          (Meta.MSTerm (psi 7, aq (lam' (lam_eta 2)) (mv 4)))
          (Comp.CBox
             (Meta.MSTerm (psi 8, aq (lam' (lam_eta 4)) (mv 5))))
      in
      (* inner e-lam: Ω_all2 = [D'(1); P'(2); N''(3);
                                D(4); N'(5); M'(6); M3(7); M2(8); M1(9); ψ(10)] *)
      let inner_elam =
        let d'_decl =
          Meta.MDTerm ("D'", psi_xu_a 9, aq (mvs 2 sub_x2) (mvs 1 sub_x2))
        in
        let body =
          (* let [E] = trans (ψ,b) (M'[σb]) (N'[σb]) (P'[σb])
                              [ψ,b ⊢ D[σbd]] [ψ,b ⊢ D'[σbd]] in
             [ψ ⊢ e-lam M' P' (λx.λu. E[σe])]
             under E: D'(2), P'(3), N''(4), D(5), N'(6), M'(7), ψ(11), E(1) *)
          Comp.LetBox
            ( "E",
              Comp.App
                ( Comp.App
                    ( Comp.MApp
                        ( Comp.MApp
                            ( Comp.MApp
                                ( Comp.MApp
                                    ( Comp.RecConst trans_id,
                                      Meta.MOCtx (psi_b 10) ),
                                  mobj (hat 10 ~names:[ "b" ]) (mvs 6 sigma_b)
                                ),
                              mobj (hat 10 ~names:[ "b" ]) (mvs 5 sigma_b) ),
                          mobj (hat 10 ~names:[ "b" ]) (mvs 2 sigma_b) ),
                      boxm (hat 10 ~names:[ "b" ]) (mvs 4 sigma_bd) ),
                  boxm (hat 10 ~names:[ "b" ]) (mvs 1 sigma_bd) ),
              boxm (hat 11)
                (e_lam
                   [ lam_eta 7; lam_eta 3;
                     (mk_lam "x" ((mk_lam "u" (mvs 1 sigma_e)))) ]) )
        in
        { Comp.br_mctx =
            [ d'_decl;
              Meta.MDTerm ("P'", psi_x 8, tm_s);
              Meta.MDTerm ("N''", psi_x 7, tm_s) ];
          Comp.br_pat =
            mobj (hat 10)
              (e_lam [ lam_eta 3; lam_eta 2; (mk_lam "x" ((mk_lam "u" (mv 1)))) ]);
          Comp.br_body = body }
      in
      { Comp.br_mctx =
          [ d_decl;
            Meta.MDTerm ("N'", psi_x 5, tm_s);
            Meta.MDTerm ("M'", psi_x 4, tm_s) ];
        Comp.br_pat =
          mobj (hat 7)
            (e_lam [ lam_eta 3; lam_eta 2; (mk_lam "x" ((mk_lam "u" (mv 1)))) ]);
        Comp.br_body = Comp.Case (inner_inv, Comp.Var 1, [ inner_elam ]) }
    in
    (* e-app case:
       Ω_all = [D2(1); D1(2); N2'(3); M2'(4); N1'(5); M1'(6);
                M3(7); M2(8); M1(9); ψ(10)]
       M1 := app M1' M2', M2 := app N1' N2'. *)
    let br_eapp =
      let inner_inv =
        non_dep_inv "X1"
          (Meta.MSTerm (psi 10, aq (app' (mv 5) (mv 3)) (mv 7)))
          (Comp.CBox
             (Meta.MSTerm (psi 11, aq (app' (mv 7) (mv 5)) (mv 8))))
      in
      (* inner e-app: Ω_all2 = [F2(1); F1(2); P2'(3); N2''(4); P1'(5); N1''(6);
                                D2(7); D1(8); N2'(9); M2'(10); N1'(11); M1'(12);
                                M3(13); M2(14); M1(15); ψ(16)] *)
      let inner_eapp =
        let body =
          (* let [G1] = trans ψ M1' N1' P1' [ψ⊢D1] [ψ⊢F1] in
             let [G2] = trans ψ M2' N2' P2' [ψ⊢D2] [ψ⊢F2] in
             [ψ ⊢ e-app M1' P1' M2' P2' G1 G2]
             under G1: +1, under G2: +2 *)
          Comp.LetBox
            ( "G1",
              Comp.App
                ( Comp.App
                    ( Comp.MApp
                        ( Comp.MApp
                            ( Comp.MApp
                                ( Comp.MApp
                                    (Comp.RecConst trans_id, Meta.MOCtx (psi 16)),
                                  mobj (hat 16) (mv 12) ),
                              mobj (hat 16) (mv 11) ),
                          mobj (hat 16) (mv 5) ),
                      boxm (hat 16) (mv 8) ),
                  boxm (hat 16) (mv 2) ),
              Comp.LetBox
                ( "G2",
                  Comp.App
                    ( Comp.App
                        ( Comp.MApp
                            ( Comp.MApp
                                ( Comp.MApp
                                    ( Comp.MApp
                                        ( Comp.RecConst trans_id,
                                          Meta.MOCtx (psi 17) ),
                                      mobj (hat 17) (mv 11) ),
                                  mobj (hat 17) (mv 10) ),
                              mobj (hat 17) (mv 4) ),
                          boxm (hat 17) (mv 8) ),
                      boxm (hat 17) (mv 2) ),
                  boxm (hat 18)
                    (e_app [ mv 14; mv 7; mv 12; mv 5; mv 2; mv 1 ]) ) )
        in
        { Comp.br_mctx =
            [ Meta.MDTerm ("F2", psi 15, aq (mv 3) (mv 2));
              Meta.MDTerm ("F1", psi 14, aq (mv 4) (mv 3));
              Meta.MDTerm ("P2'", psi 13, tm_s);
              Meta.MDTerm ("N2''", psi 12, tm_s);
              Meta.MDTerm ("P1'", psi 11, tm_s);
              Meta.MDTerm ("N1''", psi 10, tm_s) ];
          Comp.br_pat =
            mobj (hat 16) (e_app [ mv 6; mv 5; mv 4; mv 3; mv 2; mv 1 ]);
          Comp.br_body = body }
      in
      { Comp.br_mctx =
          [ Meta.MDTerm ("D2", psi 9, aq (mv 3) (mv 2));
            Meta.MDTerm ("D1", psi 8, aq (mv 4) (mv 3));
            Meta.MDTerm ("N2'", psi 7, tm_s);
            Meta.MDTerm ("M2'", psi 6, tm_s);
            Meta.MDTerm ("N1'", psi 5, tm_s);
            Meta.MDTerm ("M1'", psi 4, tm_s) ];
        Comp.br_pat =
          mobj (hat 10) (e_app [ mv 6; mv 5; mv 4; mv 3; mv 2; mv 1 ]);
        Comp.br_body = Comp.Case (inner_inv, Comp.Var 1, [ inner_eapp ]) }
    in
    mlams [ "Psi"; "M1"; "M2"; "M3" ]
      (Comp.Fn
         ( "d1", None,
           Comp.Fn
             ( "d2", None,
               Comp.Case (inv, Comp.Var 2, [ br_var; br_elam; br_eapp ]) ) ))
  in
  Check_comp.check_exp (Check_comp.make_env sg [] []) trans_body trans_styp;
  Embed_t.check_exp_t sg [] [] (Erase.exp sg trans_body) trans_typ;
  Sign.set_rec_body sg trans_id trans_body;

  (* =================================================================
     ceq : (Ψ:xaG)(M N:Ψ.tm) [Ψ⊤ ⊢ deq M N] → [Ψ ⊢ aeq M N]
     The paper's §2 theorem, with promotion in the argument sort.
     ================================================================= *)
  let ceq_styp =
    Comp.CPi ("Psi", true, Meta.MSCtx u.Ulam.xag,
    Comp.CPi ("M", true, Meta.MSTerm (psi 1, tm_s),
    Comp.CPi ("N", true, Meta.MSTerm (psi 2, tm_s),
    Comp.CArr
      ( Comp.CBox (Meta.MSTerm (psi_top 3, dq (mv 2) (mv 1))),
        Comp.CBox (Meta.MSTerm (psi 3, aq (mv 2) (mv 1))) ))))
  in
  let ceq_typ = Erase.ctyp sg ceq_styp in
  ignore (Check_comp.wf_ctyp (Check_comp.make_env sg [] []) ceq_styp);
  let ceq_id = Sign.add_rec sg ~name:"ceq" ~styp:ceq_styp ~typ:ceq_typ in
  (* Case site: Ω = [N(1); M(2); ψ(3)], Φ = [d] *)
  let ceq_body =
    let inv =
      non_dep_inv "X0"
        (Meta.MSTerm (psi_top 3, dq (mv 2) (mv 1)))
        (Comp.CBox (Meta.MSTerm (psi 4, aq (mv 3) (mv 2))))
    in
    (* variable case (the paper's key case): pattern [Ψ⊤ ⊢ #b.2] with
       b's declared world in H = xaG, read at ⌊deq⌋ through promotion;
       output [Ψ ⊢ #b.2] at aeq.  Ω_all = [b(1); N(2); M(3); ψ(4)] *)
    let br_var =
      { Comp.br_mctx = [ Meta.MDParam ("b", psi 3, u.Ulam.xa_selem, []) ];
        Comp.br_pat = mobj (hat 4) (pvj 1 2);
        Comp.br_body = boxm (hat 4) (pvj 1 2) }
    in
    (* e-lam case: Ω_all = [D(1); N'(2); M'(3); N(4); M(5); ψ(6)]
       D : (ψ⊤, x:tm, u:deq x x).⌊deq (M' x) (N' x)⌋ *)
    let br_elam =
      let d_decl =
        Meta.MDTerm ("D", psi_xu_d 5, dq (mvs 2 sub_x2) (mvs 1 sub_x2))
      in
      let body =
        (* let [E] = ceq (ψ,b) (M'[σb]) (N'[σb]) [(ψ,b)⊤ ⊢ D[σbd]] in
           [ψ ⊢ e-lam M' N' (λx.λu. E[σe])]
           under E: D(2), N'(3), M'(4), ψ(7), E(1) *)
        Comp.LetBox
          ( "E",
            Comp.App
              ( Comp.MApp
                  ( Comp.MApp
                      ( Comp.MApp (Comp.RecConst ceq_id, Meta.MOCtx (psi_b 6)),
                        mobj (hat 6 ~names:[ "b" ]) (mvs 3 sigma_b) ),
                    mobj (hat 6 ~names:[ "b" ]) (mvs 2 sigma_b) ),
                boxm (hat 6 ~names:[ "b" ]) (mvs 1 sigma_bd) ),
            boxm (hat 7)
              (e_lam
                 [ lam_eta 4; lam_eta 3;
                   (mk_lam "x" ((mk_lam "u" (mvs 1 sigma_e)))) ]) )
      in
      { Comp.br_mctx =
          [ d_decl;
            Meta.MDTerm ("N'", psi_x 4, tm_s);
            Meta.MDTerm ("M'", psi_x 3, tm_s) ];
        Comp.br_pat =
          mobj (hat 6)
            (e_lam [ lam_eta 3; lam_eta 2; (mk_lam "x" ((mk_lam "u" (mv 1)))) ]);
        Comp.br_body = body }
    in
    (* e-app case:
       Ω_all = [D2(1); D1(2); N2'(3); M2'(4); N1'(5); M1'(6);
                N(7); M(8); ψ(9)] *)
    let br_eapp =
      let body =
        Comp.LetBox
          ( "E1",
            Comp.App
              ( Comp.MApp
                  ( Comp.MApp
                      ( Comp.MApp (Comp.RecConst ceq_id, Meta.MOCtx (psi 9)),
                        mobj (hat 9) (mv 6) ),
                    mobj (hat 9) (mv 5) ),
                boxm (hat 9) (mv 2) ),
            Comp.LetBox
              ( "E2",
                Comp.App
                  ( Comp.MApp
                      ( Comp.MApp
                          ( Comp.MApp
                              (Comp.RecConst ceq_id, Meta.MOCtx (psi 10)),
                            mobj (hat 10) (mv 5) ),
                        mobj (hat 10) (mv 4) ),
                    boxm (hat 10) (mv 2) ),
                boxm (hat 11)
                  (e_app [ mv 8; mv 7; mv 6; mv 5; mv 2; mv 1 ]) ) )
      in
      { Comp.br_mctx =
          [ Meta.MDTerm ("D2", psi 8, dq (mv 3) (mv 2));
            Meta.MDTerm ("D1", psi 7, dq (mv 4) (mv 3));
            Meta.MDTerm ("N2'", psi 6, tm_s);
            Meta.MDTerm ("M2'", psi 5, tm_s);
            Meta.MDTerm ("N1'", psi 4, tm_s);
            Meta.MDTerm ("M1'", psi 3, tm_s) ];
        Comp.br_pat =
          mobj (hat 9) (e_app [ mv 6; mv 5; mv 4; mv 3; mv 2; mv 1 ]);
        Comp.br_body = body }
    in
    (* e-refl case: Ω_all = [M0(1); N(2); M(3); ψ(4)];
       body: aeq-refl ψ M0 *)
    let br_erefl =
      { Comp.br_mctx = [ Meta.MDTerm ("M0", psi 3, tm_s) ];
        Comp.br_pat =
          mobj (hat 4) ((mk_root ((mk_const u.Ulam.e_refl)) ([ mv 1 ])));
        Comp.br_body =
          Comp.MApp
            ( Comp.MApp (Comp.RecConst refl_id, Meta.MOCtx (psi 4)),
              mobj (hat 4) (mv 1) ) }
    in
    (* e-sym case: Ω_all = [D(1); N0(2); M0(3); N(4); M(5); ψ(6)]
       pattern e-sym M0 N0 D : ⌊deq N0 M0⌋; D : ⌊deq M0 N0⌋
       body: let [E] = ceq ψ M0 N0 [Ψ⊤ ⊢ D] in aeq-sym ψ M0 N0 [ψ ⊢ E] *)
    let br_esym =
      let body =
        Comp.LetBox
          ( "E",
            Comp.App
              ( Comp.MApp
                  ( Comp.MApp
                      ( Comp.MApp (Comp.RecConst ceq_id, Meta.MOCtx (psi 6)),
                        mobj (hat 6) (mv 3) ),
                    mobj (hat 6) (mv 2) ),
                boxm (hat 6) (mv 1) ),
            (* under E: M0(4), N0(3), ψ(7), E(1) *)
            Comp.App
              ( Comp.MApp
                  ( Comp.MApp
                      ( Comp.MApp (Comp.RecConst sym_id, Meta.MOCtx (psi 7)),
                        mobj (hat 7) (mv 4) ),
                    mobj (hat 7) (mv 3) ),
                boxm (hat 7) (mv 1) ) )
      in
      { Comp.br_mctx =
          [ Meta.MDTerm ("D", psi 5, dq (mv 2) (mv 1));
            Meta.MDTerm ("N0", psi 4, tm_s);
            Meta.MDTerm ("M0", psi 3, tm_s) ];
        Comp.br_pat =
          mobj (hat 6) ((mk_root ((mk_const u.Ulam.e_sym)) ([ mv 3; mv 2; mv 1 ])));
        Comp.br_body = body }
    in
    (* e-trans case:
       Ω_all = [D2(1); D1(2); M2'(3); M1'(4); M0'(5); N(6); M(7); ψ(8)]
       pattern e-trans M0' M1' M2' D1 D2 : ⌊deq M0' M2'⌋
       body: let [E1] = ceq ψ M0' M1' [⊤D1] in
             let [E2] = ceq ψ M1' M2' [⊤D2] in
             aeq-trans ψ M0' M1' M2' [ψ⊢E1] [ψ⊢E2] *)
    let br_etrans =
      let body =
        Comp.LetBox
          ( "E1",
            Comp.App
              ( Comp.MApp
                  ( Comp.MApp
                      ( Comp.MApp (Comp.RecConst ceq_id, Meta.MOCtx (psi 8)),
                        mobj (hat 8) (mv 5) ),
                    mobj (hat 8) (mv 4) ),
                boxm (hat 8) (mv 2) ),
            Comp.LetBox
              ( "E2",
                Comp.App
                  ( Comp.MApp
                      ( Comp.MApp
                          ( Comp.MApp
                              (Comp.RecConst ceq_id, Meta.MOCtx (psi 9)),
                            mobj (hat 9) (mv 5) ),
                        mobj (hat 9) (mv 4) ),
                    boxm (hat 9) (mv 2) ),
                (* under E1,E2: M0'(7), M1'(6), M2'(5), ψ(10), E1(2), E2(1) *)
                Comp.App
                  ( Comp.App
                      ( Comp.MApp
                          ( Comp.MApp
                              ( Comp.MApp
                                  ( Comp.MApp
                                      ( Comp.RecConst trans_id,
                                        Meta.MOCtx (psi 10) ),
                                    mobj (hat 10) (mv 7) ),
                                mobj (hat 10) (mv 6) ),
                            mobj (hat 10) (mv 5) ),
                        boxm (hat 10) (mv 2) ),
                    boxm (hat 10) (mv 1) ) ) )
      in
      { Comp.br_mctx =
          [ Meta.MDTerm ("D2", psi 7, dq (mv 3) (mv 2));
            Meta.MDTerm ("D1", psi 6, dq (mv 3) (mv 2));
            Meta.MDTerm ("M2'", psi 5, tm_s);
            Meta.MDTerm ("M1'", psi 4, tm_s);
            Meta.MDTerm ("M0'", psi 3, tm_s) ];
        Comp.br_pat =
          mobj (hat 8)
            ((mk_root ((mk_const u.Ulam.e_trans)) ([ mv 5; mv 4; mv 3; mv 2; mv 1 ])));
        Comp.br_body = body }
    in
    mlams [ "Psi"; "M"; "N" ]
      (Comp.Fn
         ( "d", None,
           Comp.Case
             ( inv, Comp.Var 1,
               [ br_var; br_elam; br_eapp; br_erefl; br_esym; br_etrans ] ) ))
  in
  Check_comp.check_exp (Check_comp.make_env sg [] []) ceq_body ceq_styp;
  Embed_t.check_exp_t sg [] [] (Erase.exp sg ceq_body) ceq_typ;
  Sign.set_rec_body sg ceq_id ceq_body;

  { ulam = u; aeq_refl = refl_id; aeq_sym = sym_id; aeq_trans = trans_id;
    ceq = ceq_id }
