(** Mutually recursive datasorts: the classic even/odd refinement of the
    natural numbers (Freeman–Pfenning's original motivating example,
    which the paper's §5.1 traces the datasort tradition to).

    [s] carries a sort in {e both} families — the same constructor is
    reused twice, something impossible with separate inductive types —
    and [half] is total on [even] although its matches are partial on
    [nat]. *)

let src =
  {bel|
LF nat : type =
| z : nat
| s : nat -> nat;

% mutually recursive refinements: s is selected by both, at different sorts
LFR even <| nat : sort =
| z : even
| s : odd -> even
and odd <| nat : sort =
| s : even -> odd;

% an empty mode: even carries no arguments, so the analyzer only checks
% that each clause (via the erased nat-level view) schedules its premises
%mode even;

% half is total on even numbers; both matches are partial on nat
rec half : [ |- even] -> [ |- nat] =
fn d => case d of
| [ |- z] => [ |- z]
| {N : [ |- odd]}
  [ |- s N] =>
    (case [ |- N] of
     | {M : [ |- even]}
       [ |- s M] =>
         let [H] = half [ |- M] in
         [ |- s H]);
|bel}

let load () : Belr_lf.Sign.t =
  Belr_parser.Process.program ~name:"parity.bel" src
