(** A second case study: call-by-value evaluation and the datasort of
    values.

    Classic datasort refinement (Freeman–Pfenning / Davies lineage, which
    the paper's §5.1 surveys): the values of the untyped λ-calculus are a
    refinement [val ⊑ tm] selecting only [lam].  On top we put big-step
    CBV evaluation [eval] and its refinement [evalv ⊑ eval] whose
    {e refinement kind} [tm → val → sort] has a proper sort in a domain
    position — the result index of a refined evaluation is statically a
    value.

    Two theorems, same fact, two styles:

    - [result-val] (conventional): a separate predicate [isval] and an
      induction showing [eval M V → isval V];
    - [strengthen] (refinement): [eval M V → evalv M V] where [V] is
      [val]-sorted throughout — the value-ness lives in the indices and
      needs no predicate.  (Like the paper's partial-function discussion,
      the refined statement is the {e more precise domain}; coverage of
      the val-sorted quantifier is the §6.1 future work.) *)

let src =
  {bel|
LF tm : type =
| lam : (tm -> tm) -> tm
| app : tm -> tm -> tm;

% the datasort of values: only abstractions
LFR val <| tm : sort =
| lam : (tm -> tm) -> val;

% big-step call-by-value evaluation
LF eval : tm -> tm -> type =
| ev-lam : {M : tm -> tm} eval (lam M) (lam M)
| ev-app : eval M1 (lam M') -> eval M2 V2 -> eval (M' V2) V
           -> eval (app M1 M2) V;

% the refinement: evaluation results are values, in the kind
LFR evalv <| eval : tm -> val -> sort =
| ev-lam : {M : tm -> tm} evalv (lam M) (lam M)
| ev-app : evalv M1 (lam M') -> evalv M2 V2 -> evalv (M' V2) V
           -> evalv (app M1 M2) V;

% --- conventional version: a predicate and an induction ---------------
LF isval : tm -> type =
| v-lam : {M : tm -> tm} isval (lam M);

% evaluation is closed, but the pattern sorts [x : tm |- tm] open the
% context at tm, so tm needs a (bare-variable) world
%block xtW = block (x : tm);
%worlds (xtW) tm;

% evaluation is a function of its first argument: term in, value out;
% isval is a pure test (one input, nothing produced)
%mode evalv +M -V;
%mode isval +M;

rec result-val : (M : [ |- tm]) (V : [ |- tm])
                 [ |- eval M V] -> [ |- isval V] =
mlam M => mlam V => fn d =>
case d of
| {M' : [x : tm |- tm]}
  [ |- ev-lam (\x. M')] => [ |- v-lam (\x. M')]
| {M1 : [ |- tm]} {M' : [x : tm |- tm]} {M2 : [ |- tm]}
  {V2 : [ |- tm]} {V0 : [ |- tm]}
  {D1 : [ |- eval M1 (lam (\x. M'))]} {D2 : [ |- eval M2 V2]}
  {D3 : [ |- eval (M'[.., V2]) V0]}
  [ |- ev-app M1 (\x. M') M2 V2 V0 D1 D2 D3] =>
    result-val [ |- M'[.., V2]] [ |- V0] [ |- D3];

% --- refinement version: strengthening into the refined judgment ------
rec strengthen : (M : [ |- tm]) (V : [ |- val])
                 [ |- eval M V] -> [ |- evalv M V] =
mlam M => mlam V => fn d =>
case d of
| {M' : [x : tm |- tm]}
  [ |- ev-lam (\x. M')] => [ |- ev-lam (\x. M')]
| {M1 : [ |- tm]} {M' : [x : tm |- tm]} {M2 : [ |- tm]}
  {V2 : [ |- val]} {V0 : [ |- val]}
  {D1 : [ |- eval M1 (lam (\x. M'))]} {D2 : [ |- eval M2 V2]}
  {D3 : [ |- eval (M'[.., V2]) V0]}
  [ |- ev-app M1 (\x. M') M2 V2 V0 D1 D2 D3] =>
    let [E1] = strengthen [ |- M1] [ |- lam (\x. M')] [ |- D1] in
    let [E2] = strengthen [ |- M2] [ |- V2] [ |- D2] in
    let [E3] = strengthen [ |- M'[.., V2]] [ |- V0] [ |- D3] in
    [ |- ev-app M1 (\x. M') M2 V2 V0 E1 E2 E3];
|bel}

let load () : Belr_lf.Sign.t =
  Belr_parser.Process.program ~name:"values.bel" src
