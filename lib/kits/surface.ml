(** The paper's §2 development in surface syntax.

    This is the same mechanization as {!Equal_dev}, but written in the
    concrete syntax and pushed through the full pipeline
    (parse → elaborate → sort-check → erase → re-check).  The test suite
    cross-validates the two: both must check, and both must compute the
    same results.

    The front end is explicit (see [Belr_parser.Elab]): branch pattern
    variables carry [{X : …}] declarations and constructors are fully
    applied.  Note how close the LF(R) part is to the paper's listings —
    the implicit arguments of constructor declarations are reconstructed. *)

let signature_src =
  {bel|
% --- Untyped λ-calculus via HOAS (paper §2) ------------------------
LF tm : type =
| lam : (tm -> tm) -> tm
| app : tm -> tm -> tm;

% Declarative equality: congruence rules + equivalence axioms
LF deq : tm -> tm -> type =
| e-lam : ({x : tm} deq x x -> deq (M x) (N x)) -> deq (lam M) (lam N)
| e-app : deq M1 N1 -> deq M2 N2 -> deq (app M1 M2) (app N1 N2)
| e-refl : {M : tm} deq M M
| e-sym : deq M N -> deq N M
| e-trans : deq M1 M2 -> deq M2 M3 -> deq M1 M3;

% Algorithmic equality: a refinement reusing the congruence rules
LFR aeq <| deq : tm -> tm -> sort =
| e-lam : ({x : tm} aeq x x -> aeq (M x) (N x)) -> aeq (lam M) (lam N)
| e-app : aeq M1 N1 -> aeq M2 N2 -> aeq (app M1 M2) (app N1 N2);

schema xdG = | xeW : block (x : tm, u : deq x x);
schema xaG <| xdG = | xeW : block (x : tm, u : aeq x x);

% Regular worlds (checked by `belr worlds`): every context extension in
% the development is an instance of this block.  One block covers both
% schemas — worlds subsumption is up to refinement subsorting, so the
% aeq field of xaG's element erases to the same deq skeleton.
%block xbW = block (x : tm, u : deq x x);
%worlds (xbW) tm deq;

% Modes (checked by `belr modes`): algorithmic equality is a decision
% procedure — both terms are inputs.  Only the sort-level clauses are
% moded; declarative deq (e-sym, e-trans) is genuinely un-moded.
%mode aeq +M +N;
|bel}

let aeq_refl_src =
  {bel|
rec aeq-refl : (Psi : xaG) (M : [Psi |- tm]) [Psi |- aeq M M] =
mlam Psi => mlam M =>
case [Psi |- M] of
| {#b : #[Psi |- xeW]}
  [Psi |- #b.1] => [Psi |- #b.2]
| {M' : [Psi, x : tm |- tm]}
  [Psi |- lam (\x. M')] =>
    let [E] = aeq-refl [Psi, b : xeW] [Psi, b : xeW |- M'[.., b.1]] in
    [Psi |- e-lam (\x. M') (\x. M') (\x. \u. E[.., <x ; u>])]
| {M1 : [Psi |- tm]} {M2 : [Psi |- tm]}
  [Psi |- app M1 M2] =>
    let [E1] = aeq-refl [Psi] [Psi |- M1] in
    let [E2] = aeq-refl [Psi] [Psi |- M2] in
    [Psi |- e-app M1 M1 M2 M2 E1 E2];
|bel}

let aeq_sym_src =
  {bel|
rec aeq-sym : (Psi : xaG) (M : [Psi |- tm]) (N : [Psi |- tm])
              [Psi |- aeq M N] -> [Psi |- aeq N M] =
mlam Psi => mlam M => mlam N => fn d =>
case d of
| {#b : #[Psi |- xeW]}
  [Psi |- #b.2] => [Psi |- #b.2]
| {M' : [Psi, x : tm |- tm]} {N' : [Psi, x : tm |- tm]}
  {D : [Psi, x : tm, u : aeq x x |- aeq M' N']}
  [Psi |- e-lam (\x. M') (\x. N') (\x. \u. D)] =>
    let [E] = aeq-sym [Psi, b : xeW]
                [Psi, b : xeW |- M'[.., b.1]] [Psi, b : xeW |- N'[.., b.1]]
                [Psi, b : xeW |- D[.., b.1, b.2]] in
    [Psi |- e-lam (\x. N') (\x. M') (\x. \u. E[.., <x ; u>])]
| {M1 : [Psi |- tm]} {N1 : [Psi |- tm]} {M2 : [Psi |- tm]} {N2 : [Psi |- tm]}
  {D1 : [Psi |- aeq M1 N1]} {D2 : [Psi |- aeq M2 N2]}
  [Psi |- e-app M1 N1 M2 N2 D1 D2] =>
    let [E1] = aeq-sym [Psi] [Psi |- M1] [Psi |- N1] [Psi |- D1] in
    let [E2] = aeq-sym [Psi] [Psi |- M2] [Psi |- N2] [Psi |- D2] in
    [Psi |- e-app N1 M1 N2 M2 E1 E2];
|bel}

let aeq_trans_src =
  {bel|
rec aeq-trans : (Psi : xaG)
                (M1 : [Psi |- tm]) (M2 : [Psi |- tm]) (M3 : [Psi |- tm])
                [Psi |- aeq M1 M2] -> [Psi |- aeq M2 M3] -> [Psi |- aeq M1 M3] =
mlam Psi => mlam M1 => mlam M2 => mlam M3 => fn d1 => fn d2 =>
case d1 of
| {#b : #[Psi |- xeW]}
  [Psi |- #b.2] => d2
| {M' : [Psi, x : tm |- tm]} {N' : [Psi, x : tm |- tm]}
  {D : [Psi, x : tm, u : aeq x x |- aeq M' N']}
  [Psi |- e-lam (\x. M') (\x. N') (\x. \u. D)] =>
    (case d2 of
     | {N2 : [Psi, x : tm |- tm]} {P' : [Psi, x : tm |- tm]}
       {D' : [Psi, x : tm, u : aeq x x |- aeq N2 P']}
       [Psi |- e-lam (\x. N2) (\x. P') (\x. \u. D')] =>
         let [E] = aeq-trans [Psi, b : xeW]
                     [Psi, b : xeW |- M'[.., b.1]]
                     [Psi, b : xeW |- N'[.., b.1]]
                     [Psi, b : xeW |- P'[.., b.1]]
                     [Psi, b : xeW |- D[.., b.1, b.2]]
                     [Psi, b : xeW |- D'[.., b.1, b.2]] in
         [Psi |- e-lam (\x. M') (\x. P') (\x. \u. E[.., <x ; u>])])
| {M1' : [Psi |- tm]} {N1' : [Psi |- tm]} {M2' : [Psi |- tm]} {N2' : [Psi |- tm]}
  {D1 : [Psi |- aeq M1' N1']} {D2 : [Psi |- aeq M2' N2']}
  [Psi |- e-app M1' N1' M2' N2' D1 D2] =>
    (case d2 of
     | {N1'' : [Psi |- tm]} {P1' : [Psi |- tm]} {N2'' : [Psi |- tm]} {P2' : [Psi |- tm]}
       {F1 : [Psi |- aeq N1'' P1']} {F2 : [Psi |- aeq N2'' P2']}
       [Psi |- e-app N1'' P1' N2'' P2' F1 F2] =>
         let [G1] = aeq-trans [Psi] [Psi |- M1'] [Psi |- N1'] [Psi |- P1']
                      [Psi |- D1] [Psi |- F1] in
         let [G2] = aeq-trans [Psi] [Psi |- M2'] [Psi |- N2'] [Psi |- P2']
                      [Psi |- D2] [Psi |- F2] in
         [Psi |- e-app M1' P1' M2' P2' G1 G2]);
|bel}

let ceq_src =
  {bel|
% Completeness of algorithmic equality — the paper's §2 theorem.
% Note the promoted context Psi^ in the argument sort and the variable
% case, where the same block variable reads as deq under Psi^ and as aeq
% under Psi.
rec ceq : (Psi : xaG) (M : [Psi |- tm]) (N : [Psi |- tm])
          [Psi^ |- deq M N] -> [Psi |- aeq M N] =
mlam Psi => mlam M => mlam N => fn d =>
case d of
| {#b : #[Psi |- xeW]}
  [Psi^ |- #b.2] => [Psi |- #b.2]
| {M' : [Psi, x : tm |- tm]} {N' : [Psi, x : tm |- tm]}
  {D : [Psi^, x : tm, u : deq x x |- deq M' N']}
  [Psi^ |- e-lam (\x. M') (\x. N') (\x. \u. D)] =>
    let [E] = ceq [Psi, b : xeW]
                [Psi, b : xeW |- M'[.., b.1]] [Psi, b : xeW |- N'[.., b.1]]
                [Psi^, b : xeW |- D[.., b.1, b.2]] in
    [Psi |- e-lam (\x. M') (\x. N') (\x. \u. E[.., <x ; u>])]
| {M1 : [Psi |- tm]} {N1 : [Psi |- tm]} {M2 : [Psi |- tm]} {N2 : [Psi |- tm]}
  {D1 : [Psi^ |- deq M1 N1]} {D2 : [Psi^ |- deq M2 N2]}
  [Psi^ |- e-app M1 N1 M2 N2 D1 D2] =>
    let [E1] = ceq [Psi] [Psi |- M1] [Psi |- N1] [Psi^ |- D1] in
    let [E2] = ceq [Psi] [Psi |- M2] [Psi |- N2] [Psi^ |- D2] in
    [Psi |- e-app M1 N1 M2 N2 E1 E2]
| {M0 : [Psi |- tm]}
  [Psi^ |- e-refl M0] => aeq-refl [Psi] [Psi |- M0]
| {M0 : [Psi |- tm]} {N0 : [Psi |- tm]} {D : [Psi^ |- deq M0 N0]}
  [Psi^ |- e-sym M0 N0 D] =>
    let [E] = ceq [Psi] [Psi |- M0] [Psi |- N0] [Psi^ |- D] in
    aeq-sym [Psi] [Psi |- M0] [Psi |- N0] [Psi |- E]
| {M0 : [Psi |- tm]} {M1' : [Psi |- tm]} {M2' : [Psi |- tm]}
  {D1 : [Psi^ |- deq M0 M1']} {D2 : [Psi^ |- deq M1' M2']}
  [Psi^ |- e-trans M0 M1' M2' D1 D2] =>
    let [E1] = ceq [Psi] [Psi |- M0] [Psi |- M1'] [Psi^ |- D1] in
    let [E2] = ceq [Psi] [Psi |- M1'] [Psi |- M2'] [Psi^ |- D2] in
    aeq-trans [Psi] [Psi |- M0] [Psi |- M1'] [Psi |- M2'] [Psi |- E1] [Psi |- E2];
|bel}

(** The complete program. *)
let full_src =
  signature_src ^ aeq_refl_src ^ aeq_sym_src ^ aeq_trans_src ^ ceq_src

(** Parse, elaborate, and check the complete development; returns the
    populated signature. *)
let load () : Belr_lf.Sign.t =
  Belr_parser.Process.program ~name:"equal.bel" full_src
