(** Static proof-size accounting for experiment E1.

    The paper's §2 claims the conventional solution of the ORBI
    completeness benchmark needs "13 additional arguments, including 7
    explicit ones that must be manipulated in every case of the proof",
    while the refinement solution needs none of them.  We mechanized both
    (see {!Equal_dev}/{!Surface} and {!Conventional}) and measure their
    sizes here: arguments per theorem, AST nodes, block widths,
    constructor duplication, and the number of theorems (soundness is free
    with a refinement, a real induction without). *)

open Belr_syntax
open Belr_lf

(* --- AST sizes --------------------------------------------------------- *)

let rec size_normal : Lf.normal -> int = function
  | Lf.Lam (_, m) -> 1 + size_normal m
  | Lf.Root (h, sp) ->
      1 + size_head h + List.fold_left (fun a m -> a + size_normal m) 0 sp

and size_head : Lf.head -> int = function
  | Lf.Const _ | Lf.BVar _ -> 1
  | Lf.PVar (_, s) | Lf.MVar (_, s) -> 1 + size_sub s
  | Lf.Proj (b, _) -> 1 + size_head b

and size_sub : Lf.sub -> int = function
  | Lf.Empty | Lf.Shift _ -> 1
  | Lf.Dot (f, s) -> 1 + size_front f + size_sub s

and size_front : Lf.front -> int = function
  | Lf.Obj m -> size_normal m
  | Lf.Tup t -> List.fold_left (fun a m -> a + size_normal m) 1 t
  | Lf.Undef -> 1

let rec size_srt : Lf.srt -> int = function
  | Lf.SAtom (_, sp) | Lf.SEmbed (_, sp) ->
      1 + List.fold_left (fun a m -> a + size_normal m) 0 sp
  | Lf.SPi (_, s1, s2) -> 1 + size_srt s1 + size_srt s2

let rec size_typ : Lf.typ -> int = function
  | Lf.Atom (_, sp) ->
      1 + List.fold_left (fun a m -> a + size_normal m) 0 sp
  | Lf.Pi (_, a, b) -> 1 + size_typ a + size_typ b

let size_sctx (psi : Ctxs.sctx) : int =
  List.fold_left
    (fun a -> function
      | Ctxs.SCDecl (_, s) -> a + size_srt s
      | Ctxs.SCBlock (_, f, ms) ->
          a + 1
          + List.fold_left (fun a (_, s) -> a + size_srt s) 0 f.Ctxs.f_block
          + List.fold_left (fun a m -> a + size_normal m) 0 ms)
    1 psi.Ctxs.s_decls

let size_msrt : Meta.msrt -> int = function
  | Meta.MSTerm (psi, q) -> size_sctx psi + size_srt q
  | Meta.MSSub (p1, p2) -> size_sctx p1 + size_sctx p2
  | Meta.MSCtx _ -> 1
  | Meta.MSParam (psi, _, ms) ->
      size_sctx psi + 1
      + List.fold_left (fun a m -> a + size_normal m) 0 ms

let size_mobj : Meta.mobj -> int = function
  | Meta.MOTerm (_, m) -> 1 + size_normal m
  | Meta.MOSub (_, s) -> 1 + size_sub s
  | Meta.MOCtx psi -> size_sctx psi
  | Meta.MOParam (_, h) -> 1 + size_head h

let size_mdecl : Meta.mdecl -> int = function
  | Meta.MDTerm (_, psi, q) -> size_sctx psi + size_srt q
  | Meta.MDSub (_, p1, p2) -> size_sctx p1 + size_sctx p2
  | Meta.MDCtx _ -> 1
  | Meta.MDParam (_, psi, f, _) ->
      size_sctx psi + 1
      + List.fold_left (fun a (_, s) -> a + size_srt s) 0 f.Ctxs.f_block

let rec size_ctyp : Comp.ctyp -> int = function
  | Comp.CBox ms -> 1 + size_msrt ms
  | Comp.CArr (a, b) -> 1 + size_ctyp a + size_ctyp b
  | Comp.CPi (_, _, ms, b) -> 1 + size_msrt ms + size_ctyp b

let rec size_exp : Comp.exp -> int = function
  | Comp.Var _ | Comp.RecConst _ -> 1
  | Comp.Box mo -> 1 + size_mobj mo
  | Comp.Fn (_, _, e) -> 1 + size_exp e
  | Comp.App (a, b) -> 1 + size_exp a + size_exp b
  | Comp.MLam (_, e) -> 1 + size_exp e
  | Comp.MApp (e, mo) -> 1 + size_exp e + size_mobj mo
  | Comp.LetBox (_, e1, e2) -> 1 + size_exp e1 + size_exp e2
  | Comp.Case (_, e, brs) ->
      1 + size_exp e
      + List.fold_left
          (fun a (b : Comp.branch) ->
            a
            + List.fold_left (fun a d -> a + size_mdecl d) 0 b.Comp.br_mctx
            + size_mobj b.Comp.br_pat + size_exp b.Comp.br_body)
          0 brs

(* --- per-function statistics ------------------------------------------- *)

type rec_stats = {
  rs_name : string;
  rs_args : int;  (** Π- and →-arguments of the statement *)
  rs_implicit : int;  (** of which implicit (parenthesized) *)
  rs_stmt_nodes : int;  (** AST size of the statement *)
  rs_body_nodes : int;  (** AST size of the proof *)
  rs_branches : int;  (** number of case branches (all case expressions) *)
  rs_calls : int;  (** lemma/recursive invocations *)
}

let rec count_args = function
  | Comp.CBox _ -> (0, 0)
  | Comp.CArr (_, t) ->
      let a, i = count_args t in
      (a + 1, i)
  | Comp.CPi (_, imp, _, t) ->
      let a, i = count_args t in
      (a + 1, if imp then i + 1 else i)

let rec count_branches : Comp.exp -> int = function
  | Comp.Var _ | Comp.RecConst _ | Comp.Box _ -> 0
  | Comp.Fn (_, _, e) | Comp.MLam (_, e) -> count_branches e
  | Comp.App (a, b) -> count_branches a + count_branches b
  | Comp.MApp (e, _) -> count_branches e
  | Comp.LetBox (_, a, b) -> count_branches a + count_branches b
  | Comp.Case (_, e, brs) ->
      count_branches e + List.length brs
      + List.fold_left
          (fun a (b : Comp.branch) -> a + count_branches b.Comp.br_body)
          0 brs

let rec count_calls : Comp.exp -> int = function
  | Comp.RecConst _ -> 1
  | Comp.Var _ | Comp.Box _ -> 0
  | Comp.Fn (_, _, e) | Comp.MLam (_, e) -> count_calls e
  | Comp.App (a, b) -> count_calls a + count_calls b
  | Comp.MApp (e, _) -> count_calls e
  | Comp.LetBox (_, a, b) -> count_calls a + count_calls b
  | Comp.Case (_, e, brs) ->
      count_calls e
      + List.fold_left
          (fun a (b : Comp.branch) -> a + count_calls b.Comp.br_body)
          0 brs

let rec_stats (sg : Sign.t) (id : Lf.cid_rec) : rec_stats =
  let e = Sign.rec_entry sg id in
  let args, implicit = count_args e.Sign.r_styp in
  let body = match e.Sign.r_body with Some b -> b | None -> Comp.Var 1 in
  {
    rs_name = e.Sign.r_name;
    rs_args = args;
    rs_implicit = implicit;
    rs_stmt_nodes = size_ctyp e.Sign.r_styp;
    rs_body_nodes = size_exp body;
    rs_branches = count_branches body;
    rs_calls = count_calls body;
  }

(* --- per-development statistics ----------------------------------------- *)

type dev_stats = {
  ds_name : string;
  ds_const_decls : int;  (** LF constructor declarations *)
  ds_sort_assignments : int;  (** constructor reuses via refinement *)
  ds_block_width : int;  (** assumptions per context block *)
  ds_theorems : rec_stats list;
  ds_total_args : int;
  ds_total_implicit : int;
  ds_total_nodes : int;
}

let dev_stats ~name (sg : Sign.t) ~(block_width : int)
    (theorem_names : string list) : dev_stats =
  let consts = List.length (Sign.all_consts sg) in
  let csorts =
    List.fold_left
      (fun n (_, (s : Sign.srt_entry)) -> n + List.length s.Sign.s_consts)
      0 (Sign.all_srts sg)
  in
  let theorems =
    List.filter_map
      (fun n ->
        match Sign.lookup_name sg n with
        | Some (Sign.Sym_rec id) -> Some (rec_stats sg id)
        | _ -> None)
      theorem_names
  in
  {
    ds_name = name;
    ds_const_decls = consts;
    ds_sort_assignments = csorts;
    ds_block_width = block_width;
    ds_theorems = theorems;
    ds_total_args = List.fold_left (fun a r -> a + r.rs_args) 0 theorems;
    ds_total_implicit =
      List.fold_left (fun a r -> a + r.rs_implicit) 0 theorems;
    ds_total_nodes =
      List.fold_left
        (fun a r -> a + r.rs_stmt_nodes + r.rs_body_nodes)
        0 theorems;
  }

let pp_comparison ppf (refin : dev_stats) (conv : dev_stats) =
  let line fmt = Fmt.pf ppf fmt in
  line "%-34s %14s %14s@." "metric" refin.ds_name conv.ds_name;
  line "%-34s %14d %14d@." "LF constructor declarations"
    refin.ds_const_decls conv.ds_const_decls;
  line "%-34s %14d %14d@." "constructors reused via sorts"
    refin.ds_sort_assignments conv.ds_sort_assignments;
  line "%-34s %14d %14d@." "assumptions per context block"
    refin.ds_block_width conv.ds_block_width;
  line "%-34s %14d %14d@." "theorems proved"
    (List.length refin.ds_theorems)
    (List.length conv.ds_theorems);
  line "%-34s %14d %14d@." "arguments across statements" refin.ds_total_args
    conv.ds_total_args;
  line "%-34s %14d %14d@." "AST nodes (statements + proofs)"
    refin.ds_total_nodes conv.ds_total_nodes;
  line "per-theorem arguments (name: args/nodes):@.";
  let tbl ds =
    String.concat ", "
      (List.map
         (fun r -> Fmt.str "%s: %d/%d" r.rs_name r.rs_args
             (r.rs_stmt_nodes + r.rs_body_nodes))
         ds.ds_theorems)
  in
  line "  %s: %s@." refin.ds_name (tbl refin);
  line "  %s: %s@." conv.ds_name (tbl conv)
