(** Hand-built internal-syntax fixtures used across the test suites.

    Everything here is written directly in de Bruijn form, deliberately
    bypassing the elaborator, so that substrate tests do not depend on the
    front end.  The signature mirrors §2 of the paper:

    - [nat] with [z], [s] (a simple first-order family for basic tests)
    - [tm] with [lam], [app] (untyped λ-calculus via HOAS)
    - [deq] (declarative equality, 5 constructors)
    - [aeq ⊑ deq] (algorithmic equality: the refinement keeping
      [e-lam], [e-app])
    - schemas [xdG] and [xaG ⊑ xdG] *)

open Belr_syntax
open Belr_lf
open Lf

(* Shorthand *)
let v i : normal = (mk_root ((mk_bvar i)) [])

let arr a b = (mk_pi "_" a (Shift.shift_typ 1 0 b))

let sarr s1 s2 = (mk_spi "_" s1 (Shift.shift_srt 1 0 s2))

type t = {
  sg : Sign.t;
  nat : cid_typ;
  z : cid_const;
  s : cid_const;
  tm : cid_typ;
  lam : cid_const;
  app : cid_const;
  deq : cid_typ;
  e_lam : cid_const;
  e_app : cid_const;
  e_refl : cid_const;
  e_sym : cid_const;
  e_trans : cid_const;
  aeq : cid_srt;
  xd_elem : Ctxs.elem;  (** block (x : tm, u : deq x x) *)
  xa_selem : Ctxs.selem;  (** block (x : tm, u : aeq x x) *)
  xdg : cid_schema;
  xag : cid_sschema;
}

let make () =
  let sg = Sign.create () in
  (* nat *)
  let nat = Sign.add_typ sg ~name:"nat" ~kind:Ktype ~implicit:0 in
  let nat_t = (mk_atom nat []) in
  let z = Sign.add_const sg ~name:"z" ~typ:nat_t ~implicit:0 in
  let s = Sign.add_const sg ~name:"s" ~typ:(arr nat_t nat_t) ~implicit:0 in
  (* tm *)
  let tm = Sign.add_typ sg ~name:"tm" ~kind:Ktype ~implicit:0 in
  let tm_t = (mk_atom tm []) in
  let tm_arr = (mk_pi "x" tm_t tm_t) in
  let lam = Sign.add_const sg ~name:"lam" ~typ:(arr tm_arr tm_t) ~implicit:0 in
  let app =
    Sign.add_const sg ~name:"app" ~typ:(arr tm_t (arr tm_t tm_t)) ~implicit:0
  in
  (* deq : tm -> tm -> type *)
  let deq =
    Sign.add_typ sg ~name:"deq"
      ~kind:(Kpi ("m", tm_t, Kpi ("n", tm_t, Ktype)))
      ~implicit:0
  in
  let dq m n = (mk_atom deq ([ m; n ])) in
  (* e-lam : {M : tm -> tm}{N : tm -> tm}
       ({x:tm} deq x x -> deq (M x) (N x)) -> deq (lam M) (lam N)
     (M, N implicit in the surface syntax) *)
  let eta_fn i =
    (* η-long occurrence of a variable of type tm -> tm *)
    (mk_lam "x" ((mk_root ((mk_bvar (i + 1))) ([ v 1 ]))))
  in
  let e_lam_typ =
    (mk_pi "M" tm_arr ((mk_pi "N" tm_arr (arr
              ((mk_pi "x" tm_t (arr (dq (v 1) (v 1))
                     (* under x (and the anonymous arr binder shifts): in
                        [arr], codomain gets shifted; write directly *)
                     (dq
                        ((mk_root ((mk_bvar 3)) ([ v 1 ])))
                        ((mk_root ((mk_bvar 2)) ([ v 1 ])))))))
              (dq
                 ((mk_root ((mk_const lam)) ([ eta_fn 2 ])))
                 ((mk_root ((mk_const lam)) ([ eta_fn 1 ]))))))))
  in
  let e_lam = Sign.add_const sg ~name:"e-lam" ~typ:e_lam_typ ~implicit:2 in
  (* e-app : {M1}{N1}{M2}{N2} deq M1 N1 -> deq M2 N2
       -> deq (app M1 M2) (app N1 N2) *)
  let e_app_typ =
    (mk_pi "M1" tm_t ((mk_pi "N1" tm_t ((mk_pi "M2" tm_t ((mk_pi "N2" tm_t (arr
                      (dq (v 4) (v 3))
                      (arr
                         (dq (v 2) (v 1))
                         (dq
                            ((mk_root ((mk_const app)) ([ v 4; v 2 ])))
                            ((mk_root ((mk_const app)) ([ v 3; v 1 ])))))))))))))
  in
  let e_app = Sign.add_const sg ~name:"e-app" ~typ:e_app_typ ~implicit:4 in
  (* e-refl : {M : tm} deq M M *)
  let e_refl =
    Sign.add_const sg ~name:"e-refl"
      ~typ:((mk_pi "M" tm_t (dq (v 1) (v 1))))
      ~implicit:0
  in
  (* e-sym : {M}{N} deq M N -> deq N M *)
  let e_sym =
    Sign.add_const sg ~name:"e-sym"
      ~typ:
        ((mk_pi "M" tm_t ((mk_pi "N" tm_t (arr (dq (v 2) (v 1)) (dq (v 1) (v 2)))))))
      ~implicit:2
  in
  (* e-trans : {M1}{M2}{M3} deq M1 M2 -> deq M2 M3 -> deq M1 M3 *)
  let e_trans =
    Sign.add_const sg ~name:"e-trans"
      ~typ:
        ((mk_pi "M1" tm_t ((mk_pi "M2" tm_t ((mk_pi "M3" tm_t (arr
                       (dq (v 3) (v 2))
                       (arr (dq (v 2) (v 1)) (dq (v 3) (v 1))))))))))
      ~implicit:3
  in
  (* aeq ⊑ deq : tm -> tm -> sort, keeping e-lam and e-app *)
  let aeq =
    Sign.add_srt sg ~name:"aeq" ~refines:deq
      ~skind:
        (Kspi ("m", (mk_sembed tm []), Kspi ("n", (mk_sembed tm []), Ksort)))
      ~implicit:0
  in
  let aq m n = (mk_satom aeq ([ m; n ])) in
  let tm_s = (mk_sembed tm []) in
  let tm_sarr = (mk_spi "x" tm_s tm_s) in
  let e_lam_srt =
    (mk_spi "M" tm_sarr ((mk_spi "N" tm_sarr (sarr
              ((mk_spi "x" tm_s (sarr
                     (aq (v 1) (v 1))
                     (aq ((mk_root ((mk_bvar 3)) ([ v 1 ]))) ((mk_root ((mk_bvar 2)) ([ v 1 ])))))))
              (aq
                 ((mk_root ((mk_const lam)) ([ eta_fn 2 ])))
                 ((mk_root ((mk_const lam)) ([ eta_fn 1 ]))))))))
  in
  Sign.add_csort sg ~const:e_lam ~srt:e_lam_srt ~implicit:2;
  let e_app_srt =
    (mk_spi "M1" tm_s ((mk_spi "N1" tm_s ((mk_spi "M2" tm_s ((mk_spi "N2" tm_s (sarr
                      (aq (v 4) (v 3))
                      (sarr
                         (aq (v 2) (v 1))
                         (aq
                            ((mk_root ((mk_const app)) ([ v 4; v 2 ])))
                            ((mk_root ((mk_const app)) ([ v 3; v 1 ])))))))))))))
  in
  Sign.add_csort sg ~const:e_app ~srt:e_app_srt ~implicit:4;
  (* schemas *)
  let xd_elem =
    {
      Ctxs.e_name = "xeW";
      Ctxs.e_params = [];
      Ctxs.e_block = [ ("x", tm_t); ("u", dq (v 1) (v 1)) ];
    }
  in
  let xdg = Sign.add_schema sg ~name:"xdG" ~elems:[ xd_elem ] in
  let xa_selem =
    {
      Ctxs.f_name = "xeW";
      Ctxs.f_refines = 0;
      Ctxs.f_params = [];
      Ctxs.f_block = [ ("x", tm_s); ("u", aq (v 1) (v 1)) ];
    }
  in
  let xag = Sign.add_sschema sg ~name:"xaG" ~refines:xdg ~elems:[ xa_selem ] in
  {
    sg;
    nat;
    z;
    s;
    tm;
    lam;
    app;
    deq;
    e_lam;
    e_app;
    e_refl;
    e_sym;
    e_trans;
    aeq;
    xd_elem;
    xa_selem;
    xdg;
    xag;
  }

(* Common building blocks over the fixture *)

let zero (f : t) : normal = (mk_root ((mk_const f.z)) [])

let succ (f : t) (n : normal) : normal = (mk_root ((mk_const f.s)) ([ n ]))

let rec church_nat (f : t) (k : int) : normal =
  if k = 0 then zero f else succ f (church_nat f (k - 1))

let nat_t (f : t) = (mk_atom f.nat [])

let tm_t (f : t) = (mk_atom f.tm [])

(** The identity λ-term [lam \x. x]. *)
let id_tm (f : t) : normal = (mk_root ((mk_const f.lam)) ([ (mk_lam "x" (v 1)) ]))

(** [app m n]. *)
let app_tm (f : t) m n : normal = (mk_root ((mk_const f.app)) ([ m; n ]))

(** The paper's context [b : block (x:tm, u : deq x x)] with [n] blocks. *)
let xd_ctx (f : t) (n : int) : Ctxs.ctx =
  let rec go acc k =
    if k = 0 then acc
    else
      go (Ctxs.ctx_push acc (Ctxs.CBlock ("b", f.xd_elem, []))) (k - 1)
  in
  go Ctxs.empty_ctx n

let xa_sctx (f : t) (n : int) : Ctxs.sctx =
  let rec go acc k =
    if k = 0 then acc
    else
      go (Ctxs.sctx_push acc (Ctxs.SCBlock ("b", f.xa_selem, []))) (k - 1)
  in
  go Ctxs.empty_sctx n
