(** The contextual layer (§3.2): contextual types and sorts, contextual
    (meta-)objects, meta-contexts, and meta-substitutions.

    The sort level ([𝒮], [𝒩], [Ω], [θ]) and the type level ([𝒜], [ℳ],
    [Δ], [ρ]) are kept as separate ASTs so that conservativity (Thm 3.2.2)
    is an executable translation ({!Belr_core.Erase}) rather than a
    convention.

    Beyond the paper's grammar we carry parameter variables ([#b]) as a
    fourth form of meta-declaration; the paper's §2 example uses them in
    the variable case of [ceq] ([Ψ ⊢ #b.2]) and its appendix treats them
    as in Beluga. *)

open Belr_support

(** Erased contexts [Ψ̂]/[Γ̂]: only a context-variable root and the entry
    names (innermost first) survive erasure; types and sorts do not occur
    in contextual objects' context components. *)
type hat = { hat_var : int option; hat_names : Name.t list }

let hat_of_sctx (psi : Ctxs.sctx) : hat =
  { hat_var = psi.Ctxs.s_var; hat_names = Ctxs.sctx_names psi }

let hat_of_ctx (g : Ctxs.ctx) : hat =
  { hat_var = g.Ctxs.c_var; hat_names = Ctxs.ctx_names g }

let hat_length (h : hat) = List.length h.hat_names

(** Contextual sorts [𝒮 ::= Ψ.Q | Ψ.Ψ' | H] plus the parameter-variable
    sort [#(Ψ ⊢ F·M⃗)]. *)
type msrt =
  | MSTerm of Ctxs.sctx * Lf.srt
      (** [Ψ.Q]; the sort component is atomic ([SAtom] or [SEmbed]),
          enforced by well-formedness checking. *)
  | MSSub of Ctxs.sctx * Ctxs.sctx
      (** [Ψ.Ψ']: substitutions with range [Ψ] and domain [Ψ']. *)
  | MSCtx of Lf.cid_sschema  (** a schema [H], classifying contexts *)
  | MSParam of Ctxs.sctx * Ctxs.selem * Lf.normal list
      (** parameter variables ranging over blocks [F·M⃗] in [Ψ] *)

(** Contextual types [𝒜], the type-level mirror of {!msrt}. *)
type mtyp =
  | MTTerm of Ctxs.ctx * Lf.typ
  | MTSub of Ctxs.ctx * Ctxs.ctx
  | MTCtx of Lf.cid_schema
  | MTParam of Ctxs.ctx * Ctxs.elem * Lf.normal list

(** Contextual objects [𝒩 ::= Ψ̂.R | Ψ̂.σ | Ψ].  We allow a general normal
    term in the term case for convenience; checking restricts boxes of
    atomic sort to neutral/η-long normal forms as usual. *)
type mobj =
  | MOTerm of hat * Lf.normal
  | MOSub of hat * Lf.sub
  | MOCtx of Ctxs.sctx
  | MOParam of hat * Lf.head
      (** instantiation of a parameter variable: a [BVar] pointing at a
          block entry, or another [PVar] *)

(** Meta-context declarations at the refinement level ([Ω]). *)
type mdecl =
  | MDTerm of Name.t * Ctxs.sctx * Lf.srt  (** [u : Ψ.Q] *)
  | MDSub of Name.t * Ctxs.sctx * Ctxs.sctx
  | MDCtx of Name.t * Lf.cid_sschema  (** [ψ : H] *)
  | MDParam of Name.t * Ctxs.sctx * Ctxs.selem * Lf.normal list

(** Meta-contexts, innermost (most recently bound) first; de Bruijn index
    [i] refers to the [i]-th entry. *)
type mctx = mdecl list

(** Type-level meta-context declarations ([Δ]). *)
type mdecl_t =
  | TDTerm of Name.t * Ctxs.ctx * Lf.typ
  | TDSub of Name.t * Ctxs.ctx * Ctxs.ctx
  | TDCtx of Name.t * Lf.cid_schema
  | TDParam of Name.t * Ctxs.ctx * Ctxs.elem * Lf.normal list

type mctx_t = mdecl_t list

(** Meta-substitutions [θ] (refinement level): a total map sending de
    Bruijn index [i] of the target meta-context to the [i]-th entry.
    [MShift n] sends index [i] to the variable [i + n] (so [MShift 0] is
    the identity). *)
type msub = MShift of int | MDot of mobj * msub

let mid : msub = MShift 0

let mdecl_name = function
  | MDTerm (n, _, _) -> n
  | MDSub (n, _, _) -> n
  | MDCtx (n, _) -> n
  | MDParam (n, _, _, _) -> n

let mdecl_t_name = function
  | TDTerm (n, _, _) -> n
  | TDSub (n, _, _) -> n
  | TDCtx (n, _) -> n
  | TDParam (n, _, _, _) -> n

let mctx_lookup (omega : mctx) (i : int) : mdecl option =
  List.nth_opt omega (i - 1)

let mctx_t_lookup (delta : mctx_t) (i : int) : mdecl_t option =
  List.nth_opt delta (i - 1)

(** The meta-variable [i ↦ i]-style eta-expansion of a meta-variable as a
    contextual object: [u] of sort [Ψ.Q] becomes [Ψ̂. u[id]]. *)
let mvar_mobj (i : int) (psi : Ctxs.sctx) : mobj =
  MOTerm (hat_of_sctx psi, Lf.mk_root (Lf.mk_mvar i Lf.id) [])
