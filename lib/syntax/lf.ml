(** Internal syntax of the LF(R) data level.

    The presentation follows the paper's canonical-forms discipline
    (Watkins et al.): terms are separated into neutral and normal forms, no
    β-redex is representable after hereditary substitution, and well-typed
    terms are kept η-long.  Variables are de Bruijn indices (1-based,
    innermost = 1); binders carry a {!Belr_support.Name.t} hint used only
    for printing.

    Sorts live alongside types: a sort [S] refines a type [A] ([S ⊑ A]).
    Terms are shared between the type level and the refinement level, as in
    the paper ("terms ... are the same at both levels since they do not
    contain any type information to refine").

    Since PR 4 the node types are [private] and every constructed node
    goes through the hash-consing store ({!Store}): use the [mk_*] smart
    constructors (or the helpers below) to build terms; pattern matching
    is unaffected.  See DESIGN.md §S21. *)

open Belr_support
include Store

(* ------------------------------------------------------------------ *)
(* Small helpers used throughout.                                      *)

let id : sub = mk_shift 0

(** η-short variable occurrence; use {!Belr_lf.Eta} for η-long forms. *)
let bvar i : normal = mk_root (mk_bvar i) []

let const c spine : normal = mk_root (mk_const c) spine

(** [dot_obj m σ] is [Dot (Obj m, σ)] (normalized by {!Store.mk_dot}).
    Correct only when index 1 needs no η-expansion at its use sites
    (e.g. the binder has atomic type) — the checkers use the η-aware
    version in [Belr_lf.Hsub.dot1]. *)
let dot_obj m sigma = mk_dot (Obj m) sigma

(** Apply a neutral term to additional arguments, batched: one append for
    the whole argument list, not one per argument (callers that used to
    fold [app_spine] one argument at a time paid O(n²) on growing
    checker spines — pass the full list instead). *)
let app_spine (m : normal) (extra : spine) : normal =
  match (m, extra) with
  | _, [] -> m
  | Root (h, []), _ -> mk_root h extra
  | Root (h, sp), _ -> mk_root h (List.rev_append (List.rev sp) extra)
  | Lam _, _ ->
      (* The caller must use hereditary substitution to reduce.  Reaching
         this case means a redex was about to be built. *)
      Error.violation "app_spine: attempt to apply a Lam without reduction"

(** Target head of a canonical type: [target (Πx̄. a·S) = a]. *)
let rec typ_target = function Atom (a, _) -> a | Pi (_, _, b) -> typ_target b

(** Target of a canonical sort, [None] when the target is an embedding. *)
let rec srt_target = function
  | SAtom (s, _) -> Some s
  | SEmbed _ -> None
  | SPi (_, _, s) -> srt_target s

let rec kind_arity = function Ktype -> 0 | Kpi (_, _, k) -> 1 + kind_arity k

let rec skind_arity = function Ksort -> 0 | Kspi (_, _, l) -> 1 + skind_arity l

let rec typ_arity = function Atom _ -> 0 | Pi (_, _, b) -> 1 + typ_arity b

let rec srt_arity = function
  | SAtom _ | SEmbed _ -> 0
  | SPi (_, _, b) -> 1 + srt_arity b
