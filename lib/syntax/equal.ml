(** Structural (α-)equality.

    Since the internal syntax is de Bruijn, α-equivalence is structural
    equality that ignores the [Name.t] printing hints.  Canonical forms
    make this the right definitional equality for checking: no reduction
    is needed (§3, canonical-forms presentation).

    Since PR 4 every LF node is interned in the hash-consing store
    ({!Store}), so physical equality [==] is a sound O(1) fast path: two
    pointer-equal nodes are the same node.  The fast path is checked at
    every node of the comparison, so even a failing comparison skips the
    shared subtrees.  The [deep_*] family keeps the pure structural
    definition (no pointer shortcuts) — it is the specification the fast
    path is tested against, and what the property tests use to state
    "phys-eq implies deep-eq".

    Substitution equality additionally identifies a delayed shift with
    its η-expansion at a context boundary, [↑ⁿ ≡ (n+1 . ↑ⁿ⁺¹)]: the two
    spellings denote the same total substitution, and checkers reach the
    boundary with either spelling depending on which rule fired last.
    {!Store.mk_dot} collapses the expanded spelling on construction, so
    this equation mostly matters when hash-consing is disabled
    ([BELR_NO_HASHCONS=1]) or for terms built before a {!store_clear}. *)

open Belr_support
open Lf

(* --- instrumentation ---------------------------------------------------- *)

(** O(1) pointer-equality short-circuits taken / missed.  Plain ints so
    they work without [--stats]; surfaced in the ["store"] telemetry
    section and [belr check --kernel-stats]. *)
let phys_hits = ref 0

let phys_misses = ref 0

type phys_stats = { ps_hits : int; ps_misses : int }

let phys_stats () = { ps_hits = !phys_hits; ps_misses = !phys_misses }

(** Interning-totality check: with [BELR_STORE_DEBUG=1], any normal that
    reaches [Equal] without being the store's representative was built
    around the smart constructors — a sharing leak. *)
let assert_rep (m : normal) =
  if store_debug && store_enabled () && not (is_rep_normal m) then
    Error.violation
      "Equal: normal term is not the store representative (a constructor \
       bypassed the hash-consing store)"

(* --- deep (specification) equality -------------------------------------- *)

let rec deep_head (h1 : head) (h2 : head) =
  match (h1, h2) with
  | Const c1, Const c2 -> c1 = c2
  | BVar i1, BVar i2 -> i1 = i2
  | PVar (p1, s1), PVar (p2, s2) -> p1 = p2 && deep_sub s1 s2
  | Proj (b1, k1), Proj (b2, k2) -> k1 = k2 && deep_head b1 b2
  | MVar (u1, s1), MVar (u2, s2) -> u1 = u2 && deep_sub s1 s2
  | _ -> false

and deep_normal (m1 : normal) (m2 : normal) =
  match (m1, m2) with
  | Lam (_, n1), Lam (_, n2) -> deep_normal n1 n2
  | Root (h1, sp1), Root (h2, sp2) -> deep_head h1 h2 && deep_spine sp1 sp2
  | _ -> false

and deep_spine sp1 sp2 =
  List.length sp1 = List.length sp2 && List.for_all2 deep_normal sp1 sp2

and deep_front f1 f2 =
  match (f1, f2) with
  | Obj m1, Obj m2 -> deep_normal m1 m2
  | Tup t1, Tup t2 -> deep_spine t1 t2
  | Undef, Undef -> true
  | _ -> false

and deep_sub (s1 : sub) (s2 : sub) =
  match (s1, s2) with
  | Empty, Empty -> true
  | Shift n1, Shift n2 -> n1 = n2
  (* ↑ⁿ ≡ (n+1 . ↑ⁿ⁺¹): unfold the shift one step and keep comparing.
     Terminates because the [Dot] side shrinks at every step. *)
  | Shift n, Dot (Obj (Root (BVar k, [])), s2') when k = n + 1 ->
      deep_sub (mk_shift (n + 1)) s2'
  | Dot (Obj (Root (BVar k, [])), s1'), Shift n when k = n + 1 ->
      deep_sub s1' (mk_shift (n + 1))
  | Dot (f1, s1'), Dot (f2, s2') -> deep_front f1 f2 && deep_sub s1' s2'
  | _ -> false

let rec deep_typ (a1 : typ) (a2 : typ) =
  match (a1, a2) with
  | Atom (a1, sp1), Atom (a2, sp2) -> a1 = a2 && deep_spine sp1 sp2
  | Pi (_, a1, b1), Pi (_, a2, b2) -> deep_typ a1 a2 && deep_typ b1 b2
  | _ -> false

let rec deep_srt (s1 : srt) (s2 : srt) =
  match (s1, s2) with
  | SAtom (s1, sp1), SAtom (s2, sp2) -> s1 = s2 && deep_spine sp1 sp2
  | SEmbed (a1, sp1), SEmbed (a2, sp2) -> a1 = a2 && deep_spine sp1 sp2
  | SPi (_, s1, t1), SPi (_, s2, t2) -> deep_srt s1 s2 && deep_srt t1 t2
  | _ -> false

(* --- equality with O(1) sharing fast paths ------------------------------ *)

let rec head (h1 : head) (h2 : head) =
  if h1 == h2 then (
    incr phys_hits;
    true)
  else (
    incr phys_misses;
    match (h1, h2) with
    | Const c1, Const c2 -> c1 = c2
    | BVar i1, BVar i2 -> i1 = i2
    | PVar (p1, s1), PVar (p2, s2) -> p1 = p2 && sub s1 s2
    | Proj (b1, k1), Proj (b2, k2) -> k1 = k2 && head b1 b2
    | MVar (u1, s1), MVar (u2, s2) -> u1 = u2 && sub s1 s2
    | _ -> false)

and normal (m1 : normal) (m2 : normal) =
  if m1 == m2 then (
    incr phys_hits;
    true)
  else (
    if store_debug then (
      assert_rep m1;
      assert_rep m2);
    incr phys_misses;
    match (m1, m2) with
    | Lam (_, n1), Lam (_, n2) -> normal n1 n2
    | Root (h1, sp1), Root (h2, sp2) -> head h1 h2 && spine sp1 sp2
    | _ -> false)

and spine sp1 sp2 =
  List.length sp1 = List.length sp2 && List.for_all2 normal sp1 sp2

and front f1 f2 =
  match (f1, f2) with
  | Obj m1, Obj m2 -> normal m1 m2
  | Tup t1, Tup t2 -> spine t1 t2
  | Undef, Undef -> true
  | _ -> false

and sub (s1 : sub) (s2 : sub) =
  if s1 == s2 then (
    incr phys_hits;
    true)
  else (
    incr phys_misses;
    match (s1, s2) with
    | Empty, Empty -> true
    | Shift n1, Shift n2 -> n1 = n2
    | Shift n, Dot (Obj (Root (BVar k, [])), s2') when k = n + 1 ->
        sub (mk_shift (n + 1)) s2'
    | Dot (Obj (Root (BVar k, [])), s1'), Shift n when k = n + 1 ->
        sub s1' (mk_shift (n + 1))
    | Dot (f1, s1'), Dot (f2, s2') -> front f1 f2 && sub s1' s2'
    | _ -> false)

let rec typ (a1 : typ) (a2 : typ) =
  if a1 == a2 then (
    incr phys_hits;
    true)
  else (
    incr phys_misses;
    match (a1, a2) with
    | Atom (a1, sp1), Atom (a2, sp2) -> a1 = a2 && spine sp1 sp2
    | Pi (_, a1, b1), Pi (_, a2, b2) -> typ a1 a2 && typ b1 b2
    | _ -> false)

let rec srt (s1 : srt) (s2 : srt) =
  if s1 == s2 then (
    incr phys_hits;
    true)
  else (
    incr phys_misses;
    match (s1, s2) with
    | SAtom (s1, sp1), SAtom (s2, sp2) -> s1 = s2 && spine sp1 sp2
    | SEmbed (a1, sp1), SEmbed (a2, sp2) -> a1 = a2 && spine sp1 sp2
    | SPi (_, s1, t1), SPi (_, s2, t2) -> srt s1 s2 && srt t1 t2
    | _ -> false)

let rec kind (k1 : kind) (k2 : kind) =
  match (k1, k2) with
  | Ktype, Ktype -> true
  | Kpi (_, a1, k1), Kpi (_, a2, k2) -> typ a1 a2 && kind k1 k2
  | _ -> false

let rec skind (l1 : skind) (l2 : skind) =
  match (l1, l2) with
  | Ksort, Ksort -> true
  | Kspi (_, s1, l1), Kspi (_, s2, l2) -> srt s1 s2 && skind l1 l2
  | _ -> false

let block (b1 : Ctxs.block) (b2 : Ctxs.block) =
  List.length b1 = List.length b2
  && List.for_all2 (fun (_, a1) (_, a2) -> typ a1 a2) b1 b2

let sblock (b1 : Ctxs.sblock) (b2 : Ctxs.sblock) =
  List.length b1 = List.length b2
  && List.for_all2 (fun (_, s1) (_, s2) -> srt s1 s2) b1 b2

let elem (e1 : Ctxs.elem) (e2 : Ctxs.elem) =
  List.length e1.Ctxs.e_params = List.length e2.Ctxs.e_params
  && List.for_all2
       (fun (_, a1) (_, a2) -> typ a1 a2)
       e1.Ctxs.e_params e2.Ctxs.e_params
  && block e1.Ctxs.e_block e2.Ctxs.e_block

let selem (f1 : Ctxs.selem) (f2 : Ctxs.selem) =
  List.length f1.Ctxs.f_params = List.length f2.Ctxs.f_params
  && List.for_all2
       (fun (_, s1) (_, s2) -> srt s1 s2)
       f1.Ctxs.f_params f2.Ctxs.f_params
  && sblock f1.Ctxs.f_block f2.Ctxs.f_block

let centry (e1 : Ctxs.centry) (e2 : Ctxs.centry) =
  match (e1, e2) with
  | Ctxs.CDecl (_, a1), Ctxs.CDecl (_, a2) -> typ a1 a2
  | Ctxs.CBlock (_, el1, ms1), Ctxs.CBlock (_, el2, ms2) ->
      elem el1 el2 && spine ms1 ms2
  | _ -> false

let ctx (g1 : Ctxs.ctx) (g2 : Ctxs.ctx) =
  g1.Ctxs.c_var = g2.Ctxs.c_var
  && List.length g1.Ctxs.c_decls = List.length g2.Ctxs.c_decls
  && List.for_all2 centry g1.Ctxs.c_decls g2.Ctxs.c_decls

let scentry (e1 : Ctxs.scentry) (e2 : Ctxs.scentry) =
  match (e1, e2) with
  | Ctxs.SCDecl (_, s1), Ctxs.SCDecl (_, s2) -> srt s1 s2
  | Ctxs.SCBlock (_, f1, ms1), Ctxs.SCBlock (_, f2, ms2) ->
      selem f1 f2 && spine ms1 ms2
  | _ -> false

let sctx (p1 : Ctxs.sctx) (p2 : Ctxs.sctx) =
  p1.Ctxs.s_var = p2.Ctxs.s_var
  && p1.Ctxs.s_promoted = p2.Ctxs.s_promoted
  && List.length p1.Ctxs.s_decls = List.length p2.Ctxs.s_decls
  && List.for_all2 scentry p1.Ctxs.s_decls p2.Ctxs.s_decls

let hat (h1 : Meta.hat) (h2 : Meta.hat) =
  h1.Meta.hat_var = h2.Meta.hat_var
  && List.length h1.Meta.hat_names = List.length h2.Meta.hat_names

let msrt (s1 : Meta.msrt) (s2 : Meta.msrt) =
  match (s1, s2) with
  | Meta.MSTerm (p1, q1), Meta.MSTerm (p2, q2) -> sctx p1 p2 && srt q1 q2
  | Meta.MSSub (p1, q1), Meta.MSSub (p2, q2) -> sctx p1 p2 && sctx q1 q2
  | Meta.MSCtx h1, Meta.MSCtx h2 -> h1 = h2
  | Meta.MSParam (p1, f1, m1), Meta.MSParam (p2, f2, m2) ->
      sctx p1 p2 && selem f1 f2 && spine m1 m2
  | _ -> false

let mtyp (t1 : Meta.mtyp) (t2 : Meta.mtyp) =
  match (t1, t2) with
  | Meta.MTTerm (g1, a1), Meta.MTTerm (g2, a2) -> ctx g1 g2 && typ a1 a2
  | Meta.MTSub (g1, d1), Meta.MTSub (g2, d2) -> ctx g1 g2 && ctx d1 d2
  | Meta.MTCtx g1, Meta.MTCtx g2 -> g1 = g2
  | Meta.MTParam (g1, e1, m1), Meta.MTParam (g2, e2, m2) ->
      ctx g1 g2 && elem e1 e2 && spine m1 m2
  | _ -> false

let mobj (o1 : Meta.mobj) (o2 : Meta.mobj) =
  match (o1, o2) with
  | Meta.MOTerm (h1, m1), Meta.MOTerm (h2, m2) -> hat h1 h2 && normal m1 m2
  | Meta.MOSub (h1, s1), Meta.MOSub (h2, s2) -> hat h1 h2 && sub s1 s2
  | Meta.MOCtx p1, Meta.MOCtx p2 -> sctx p1 p2
  | Meta.MOParam (h1, d1), Meta.MOParam (h2, d2) -> hat h1 h2 && head d1 d2
  | _ -> false

let rec ctyp (t1 : Comp.ctyp) (t2 : Comp.ctyp) =
  match (t1, t2) with
  | Comp.CBox s1, Comp.CBox s2 -> msrt s1 s2
  | Comp.CArr (a1, b1), Comp.CArr (a2, b2) -> ctyp a1 a2 && ctyp b1 b2
  | Comp.CPi (_, i1, s1, t1), Comp.CPi (_, i2, s2, t2) ->
      i1 = i2 && msrt s1 s2 && ctyp t1 t2
  | _ -> false

let rec ctyp_t (t1 : Comp.ctyp_t) (t2 : Comp.ctyp_t) =
  match (t1, t2) with
  | Comp.TBox s1, Comp.TBox s2 -> mtyp s1 s2
  | Comp.TArr (a1, b1), Comp.TArr (a2, b2) -> ctyp_t a1 a2 && ctyp_t b1 b2
  | Comp.TPi (_, i1, s1, t1), Comp.TPi (_, i2, s2, t2) ->
      i1 = i2 && mtyp s1 s2 && ctyp_t t1 t2
  | _ -> false

let () =
  Telemetry.register_section "store" (fun () ->
      let h = !phys_hits and m = !phys_misses in
      let rate =
        if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)
      in
      [
        ("equal_phys_hits", Json.Int h);
        ("equal_phys_misses", Json.Int m);
        ("equal_phys_rate", Json.Float rate);
      ])
