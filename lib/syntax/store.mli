(** The hash-consing term store.

    Every LF(R) node of the five interned syntactic categories —
    {!head}, {!normal}, {!sub}, {!typ}, {!srt} — is built through a smart
    constructor ([mk_*]) that interns it into a weak arena: two
    structurally α-equal nodes (binder {!Belr_support.Name.t} hints are
    printing-only and ignored) constructed while the store is enabled are
    the {e same} OCaml value.  The node types are [private], so pattern
    matching everywhere in the kernel is unchanged while construction is
    compiler-forced through this interface.

    Alongside the arena, each interned node carries metadata (held in a
    weak-key side table, so dead terms cost nothing):

    - a {e unique id} (monotone, never reused — the memo key for
      hereditary substitution in [Belr_lf.Hsub]);
    - its precomputed structural {e hash};
    - a {e max-free-index} bound [mfi]: the largest free de Bruijn index
      possibly occurring in the node, [0] for closed terms, and
      {!mfi_infinity} when the node contains a delayed [Shift]-rooted
      substitution (whose composition under an outer substitution can
      change, so no bound is sound).

    The [mfi] bound powers the substitution fast paths: shifting below a
    cutoff that dominates the bound, or substituting into a closed term,
    returns the input with no traversal.

    Smart constructors also normalize substitutions: {!mk_dot} collapses
    [Dot (Obj xₙ, Shift n)] to [Shift (n-1)] (so [Dot (Obj x₁, Shift 1)]
    is [id]), keeping identity substitutions syntactically canonical.

    The store can be disabled with the [BELR_NO_HASHCONS=1] environment
    variable or {!set_store_enabled} (the benchmark ablation E7): [mk_*]
    then allocate plain nodes.  Physical equality remains {e sound} in
    mixed mode — it just stops being complete, and [Equal] keeps its deep
    structural fallback. *)

open Belr_support

(** Identifiers into the global signature (see {!Belr_lf.Sign}). *)
type cid_typ = int
(** Atomic type family [a]. *)

type cid_srt = int
(** Atomic sort family [s ⊑ a]. *)

type cid_const = int
(** Term-level constant [c]. *)

type cid_schema = int
(** Type-level context schema [G]. *)

type cid_sschema = int
(** Refinement (sort-level) context schema [H ⊑ G]. *)

type cid_rec = int
(** Computation-level (recursive) function. *)

(** Heads of neutral terms.

    [Proj] bases are restricted to [BVar] and [PVar] by the checker.
    [MVar (u, σ)] is a contextual meta-variable under a delayed
    substitution; [PVar (p, σ)] is a parameter variable standing for a
    block declared in a context variable.  Both indices point into the
    meta-context [Ω]. *)
type head = private
  | Const of cid_const
  | BVar of int
  | PVar of int * sub
  | Proj of head * int  (** [h.k], 1-based projection out of a block *)
  | MVar of int * sub

and normal = private
  | Lam of Name.t * normal
  | Root of head * spine

and spine = normal list

(** Substitution entries.  [Tup] replaces a block variable with an n-ary
    tuple of terms, resolving projections hereditarily; [Undef] only
    appears inside the unifier.  Fronts are thin wrappers over interned
    normals and are not interned themselves. *)
and front = Obj of normal | Tup of tuple | Undef

and tuple = normal list

(** Simultaneous substitutions.

    - [Empty] is the paper's [·]: it weakens a closed object into an
      arbitrary context.
    - [Shift n] maps index [i] to [i + n]; [Shift 0] is the identity.
    - [Dot (f, σ)] sends index 1 to [f] and the rest through [σ]. *)
and sub = private Empty | Shift of int | Dot of front * sub

(** Canonical type families [A ::= P | Πx:A₁.A₂]. *)
type typ = private Atom of cid_typ * spine | Pi of Name.t * typ * typ

(** Kinds [K ::= type | Πx:A.K] (not interned: signature-cardinality). *)
type kind = Ktype | Kpi of Name.t * typ * kind

(** Canonical sort families [S ::= Q | Πx:S₁.S₂]; [SEmbed (a, sp)] is the
    explicit embedding [⌊a · sp⌋]. *)
type srt = private
  | SAtom of cid_srt * spine
  | SEmbed of cid_typ * spine
  | SPi of Name.t * srt * srt

(** Refinement kinds [L ::= sort | Πx:S.L] (not interned). *)
type skind = Ksort | Kspi of Name.t * srt * skind

(* --- smart constructors --------------------------------------------- *)

val mk_const : cid_const -> head

val mk_bvar : int -> head

val mk_pvar : int -> sub -> head

val mk_proj : head -> int -> head

val mk_mvar : int -> sub -> head

val mk_lam : Name.t -> normal -> normal

val mk_root : head -> spine -> normal

val mk_empty : sub

val mk_shift : int -> sub

val mk_dot : front -> sub -> sub
(** Normalizing: [mk_dot (Obj xₙ) (Shift n) = Shift (n-1)] when [xₙ] is
    the η-short variable [Root (BVar n, \[\])]. *)

val mk_atom : cid_typ -> spine -> typ

val mk_pi : Name.t -> typ -> typ -> typ

val mk_satom : cid_srt -> spine -> srt

val mk_sembed : cid_typ -> spine -> srt

val mk_spi : Name.t -> srt -> srt -> srt

(* --- store states (session isolation) --------------------------------- *)

type state
(** A complete store world: the five weak arenas, their metadata tables,
    and the intern/dedup counters.  Exactly one state is {e installed} at
    any time; every [mk_*] constructor and metadata accessor operates on
    it.  The daemon ([belr serve]) gives each session its own state so no
    interned term, metadata entry, or statistic is shared across
    sessions; batch runs never touch this API and live in the boot
    state.

    Unique ids ({!normal_id} etc.) remain process-global and monotone
    across all states — that is what keeps the [Belr_lf.Hsub] memo tables
    sound when states are swapped or cleared. *)

val fresh_state : unit -> state
(** A new empty store world. *)

val use_state : state -> unit
(** Install [state]: subsequent constructions and lookups run in it. *)

val current_state : unit -> state
(** The currently installed state. *)

val with_state : state -> (unit -> 'a) -> 'a
(** [with_state st f] runs [f] with [st] installed, restoring the
    previously installed state afterwards (also on exceptions). *)

(* --- store control ---------------------------------------------------- *)

val store_enabled : unit -> bool
(** Is interning on?  Defaults to [true] unless [BELR_NO_HASHCONS=1]. *)

val set_store_enabled : bool -> unit
(** Toggle interning (the bench ablation).  Terms built while disabled
    are ordinary unshared nodes; already-interned terms stay valid. *)

val store_clear : unit -> unit
(** Drop every arena and metadata entry (test/bench isolation only).
    Unique ids keep counting up, so memo entries keyed on old ids can
    never be confused with post-clear terms. *)

(* --- metadata accessors ----------------------------------------------- *)

val mfi_infinity : int
(** The "no sound bound" mfi value ([max_int]). *)

val normal_id : normal -> int
(** Unique id of an interned node.  Total: a node built while the store
    was disabled is assigned a fresh id (and has its metadata computed
    and cached) on first query. *)

val sub_id : sub -> int

val head_id : head -> int

val typ_id : typ -> int

val srt_id : srt -> int

val mfi_normal : normal -> int
(** Max-free-index bound; [0] means closed (no substitution or shift can
    change the term), {!mfi_infinity} means no sound bound.  Total, like
    {!normal_id}. *)

val mfi_head : head -> int

val mfi_sub : sub -> int

val mfi_typ : typ -> int

val mfi_srt : srt -> int

val mfi_spine : spine -> int

(* --- debug ------------------------------------------------------------ *)

val store_debug : bool
(** [BELR_STORE_DEBUG=1]: [Equal] additionally asserts that deep-equal
    interned representatives are physically equal (interning-leak check). *)

val is_rep_normal : normal -> bool
(** Is this node the arena's representative for its equivalence class?
    (Debug-only; a linear-free hash lookup.) *)

(* --- statistics ------------------------------------------------------- *)

type store_stats = {
  st_live : int;  (** interned nodes currently alive (arena residents) *)
  st_interned : int;  (** nodes ever interned (fresh arena inserts) *)
  st_dedup_hits : int;  (** constructions answered by an existing node *)
}

val store_stats : unit -> store_stats

val dedup_ratio : unit -> float
(** [(interned + dedup_hits) / interned]: mean number of constructions
    sharing one arena node; [1.0] = no sharing observed, [nan]-free
    ([0.0] before any interning). *)
