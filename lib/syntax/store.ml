(** Implementation of the hash-consing term store (see store.mli).

    Layout: two weak structures per interned category.

    - The {e arena} ([Weak.Make]): holds one representative per
      structural-equality class (binder names ignored).  Keys are held
      weakly, so a term no longer referenced by the kernel vanishes from
      the arena and can be collected.
    - The {e metadata table} ([Ephemeron.K1.Make], physical-equality
      keys): node ↦ [{id; hash; mfi}].  Ephemeron semantics drop an entry
      exactly when its node dies, so metadata never keeps a term alive.

    Hashing bottoms out in the {e children's} stored hashes: a node's
    hash is a one-level combination of its scalars and its (already
    interned, already hashed) children, so interning a node is O(width),
    not O(size).  The same holds for the max-free-index bound.

    Spines, tuples and fronts are thin list/wrapper shapes between
    interned nodes; they are hashed through on the fly and never interned
    themselves (their identity is their elements').

    Binder names: interning ignores [Name.t] hints (as [Equal] does), so
    physically-equal ⟺ α-equal on interned representatives.  The
    first-constructed node's hints win for printing. *)

open Belr_support

type cid_typ = int

type cid_srt = int

type cid_const = int

type cid_schema = int

type cid_sschema = int

type cid_rec = int

type head =
  | Const of cid_const
  | BVar of int
  | PVar of int * sub
  | Proj of head * int
  | MVar of int * sub

and normal = Lam of Name.t * normal | Root of head * spine

and spine = normal list

and front = Obj of normal | Tup of tuple | Undef

and tuple = normal list

and sub = Empty | Shift of int | Dot of front * sub

type typ = Atom of cid_typ * spine | Pi of Name.t * typ * typ

type kind = Ktype | Kpi of Name.t * typ * kind

type srt =
  | SAtom of cid_srt * spine
  | SEmbed of cid_typ * spine
  | SPi of Name.t * srt * srt

type skind = Ksort | Kspi of Name.t * srt * skind

(* --- store state ------------------------------------------------------ *)

let on =
  ref
    (match Sys.getenv_opt "BELR_NO_HASHCONS" with
    | None | Some "" | Some "0" -> true
    | Some _ -> false)

let store_enabled () = !on

let set_store_enabled b = on := b

let store_debug = Sys.getenv_opt "BELR_STORE_DEBUG" <> None

let mfi_infinity = max_int

(** Saturating decrement (leaving a binder). *)
let dec i = if i = mfi_infinity then mfi_infinity else max 0 (i - 1)

type meta = { m_id : int; m_hash : int; m_mfi : int }

(* Never reset — monotone across [store_clear], so a memo table keyed on
   ids (Belr_lf.Hsub) can never confuse a pre-clear entry with a
   post-clear term. *)
let next_id = ref 0

let fresh () =
  let i = !next_id in
  incr next_id;
  i

let comb h k = ((h * 486187739) + k) land max_int

(* --- metadata tables (weak keys, physical equality) ------------------- *)

module HeadTbl = Ephemeron.K1.Make (struct
  type t = head

  let equal = ( == )

  let hash = Hashtbl.hash
end)

module NormalTbl = Ephemeron.K1.Make (struct
  type t = normal

  let equal = ( == )

  let hash = Hashtbl.hash
end)

module SubTbl = Ephemeron.K1.Make (struct
  type t = sub

  let equal = ( == )

  let hash = Hashtbl.hash
end)

module TypTbl = Ephemeron.K1.Make (struct
  type t = typ

  let equal = ( == )

  let hash = Hashtbl.hash
end)

module SrtTbl = Ephemeron.K1.Make (struct
  type t = srt

  let equal = ( == )

  let hash = Hashtbl.hash
end)

(* The metadata half of a store {e state} (the arena half is defined
   below, after the arena functors — which themselves need the hashing
   functions, which read the metadata tables).  All lookups go through
   [cur_meta], the installed state's tables: sessions swap whole states
   with [use_state] rather than threading a handle through every
   [mk_*] call site. *)
type meta_tables = {
  mt_head : meta HeadTbl.t;
  mt_normal : meta NormalTbl.t;
  mt_sub : meta SubTbl.t;
  mt_typ : meta TypTbl.t;
  mt_srt : meta SrtTbl.t;
}

let fresh_meta_tables () =
  {
    mt_head = HeadTbl.create 1024;
    mt_normal = NormalTbl.create 4096;
    mt_sub = SubTbl.create 1024;
    mt_typ = TypTbl.create 1024;
    mt_srt = SrtTbl.create 1024;
  }

let cur_meta : meta_tables ref = ref (fresh_meta_tables ())

(* [Empty] is a constant (immediate) constructor: every [Empty] is the
   same value, so it gets a fixed metadata record instead of a weak-table
   entry (immediates have no useful weak semantics). *)
let empty_meta = { m_id = fresh (); m_hash = 0x45; m_mfi = 0 }

(* --- hashing and max-free-index --------------------------------------- *)

(* [hash_*]/[mfi1_*] are one-level: they read the children's *stored*
   metadata.  [meta_*] memoizes.  Nodes built through [mk_*] while the
   store is enabled always have their children's metadata present; nodes
   built while it was disabled get a (deep, one-time) computation on
   first query, so every accessor below is total.

   mfi soundness notes:
   - [mfi (Shift n) = ∞]: a delayed substitution rooted in a shift
     changes under composition with any outer substitution
     ([MVar (u, ↑⁰)][σ] = [MVar (u, σ)]), so no bound is sound.
   - [mfi Empty = 0]: [comp Empty σ = Empty] — untouchable.
   - A closed front can never trigger the [mk_dot] collapse (the
     collapsed shape [Dot (Obj xₙ, ↑ⁿ)] has a free variable), so
     substitution under a closed [Dot]-chain is the identity on it. *)

let rec meta_head (h : head) : meta =
  let tbl = (!cur_meta).mt_head in
  match HeadTbl.find_opt tbl h with
  | Some m -> m
  | None ->
      let m = { m_id = fresh (); m_hash = hash_head h; m_mfi = mfi1_head h } in
      HeadTbl.replace tbl h m;
      m

and hash_head = function
  | Const c -> comb 3 c
  | BVar i -> comb 5 i
  | PVar (p, s) -> comb (comb 7 p) (meta_sub s).m_hash
  | Proj (b, k) -> comb (comb 11 (meta_head b).m_hash) k
  | MVar (u, s) -> comb (comb 13 u) (meta_sub s).m_hash

and mfi1_head = function
  | Const _ -> 0
  | BVar i -> i
  | PVar (_, s) -> (meta_sub s).m_mfi
  | Proj (b, _) -> (meta_head b).m_mfi
  | MVar (_, s) -> (meta_sub s).m_mfi

and meta_normal (n : normal) : meta =
  let tbl = (!cur_meta).mt_normal in
  match NormalTbl.find_opt tbl n with
  | Some m -> m
  | None ->
      let m =
        { m_id = fresh (); m_hash = hash_normal n; m_mfi = mfi1_normal n }
      in
      NormalTbl.replace tbl n m;
      m

and hash_normal = function
  | Lam (x, b) -> comb (comb 17 (Hashtbl.hash x)) (meta_normal b).m_hash
  | Root (h, sp) -> comb (comb 19 (meta_head h).m_hash) (fst (spine_meta sp))

and mfi1_normal = function
  | Lam (_, b) -> dec (meta_normal b).m_mfi
  | Root (h, sp) -> max (meta_head h).m_mfi (snd (spine_meta sp))

and spine_meta (sp : spine) : int * int =
  List.fold_left
    (fun (h, f) n ->
      let m = meta_normal n in
      (comb h m.m_hash, max f m.m_mfi))
    (23, 0) sp

and front_meta : front -> int * int = function
  | Obj m ->
      let mm = meta_normal m in
      (comb 29 mm.m_hash, mm.m_mfi)
  | Tup t ->
      let h, f = spine_meta t in
      (comb 31 h, f)
  | Undef -> (37, 0)

and meta_sub (s : sub) : meta =
  match s with
  | Empty -> empty_meta
  | _ -> (
      let tbl = (!cur_meta).mt_sub in
      match SubTbl.find_opt tbl s with
      | Some m -> m
      | None ->
          let m = { m_id = fresh (); m_hash = hash_sub s; m_mfi = mfi1_sub s } in
          SubTbl.replace tbl s m;
          m)

and hash_sub = function
  | Empty -> empty_meta.m_hash
  | Shift n -> comb 41 n
  | Dot (f, s) -> comb (comb 43 (fst (front_meta f))) (meta_sub s).m_hash

and mfi1_sub = function
  | Empty -> 0
  | Shift _ -> mfi_infinity
  | Dot (f, s) -> max (snd (front_meta f)) (meta_sub s).m_mfi

let rec meta_typ (a : typ) : meta =
  let tbl = (!cur_meta).mt_typ in
  match TypTbl.find_opt tbl a with
  | Some m -> m
  | None ->
      let m = { m_id = fresh (); m_hash = hash_typ a; m_mfi = mfi1_typ a } in
      TypTbl.replace tbl a m;
      m

and hash_typ = function
  | Atom (a, sp) -> comb (comb 47 a) (fst (spine_meta sp))
  | Pi (x, a, b) ->
      comb (comb (comb 53 (Hashtbl.hash x)) (meta_typ a).m_hash) (meta_typ b).m_hash

and mfi1_typ = function
  | Atom (_, sp) -> snd (spine_meta sp)
  | Pi (_, a, b) -> max (meta_typ a).m_mfi (dec (meta_typ b).m_mfi)

let rec meta_srt (s : srt) : meta =
  let tbl = (!cur_meta).mt_srt in
  match SrtTbl.find_opt tbl s with
  | Some m -> m
  | None ->
      let m = { m_id = fresh (); m_hash = hash_srt s; m_mfi = mfi1_srt s } in
      SrtTbl.replace tbl s m;
      m

and hash_srt = function
  | SAtom (q, sp) -> comb (comb 59 q) (fst (spine_meta sp))
  | SEmbed (a, sp) -> comb (comb 61 a) (fst (spine_meta sp))
  | SPi (x, s1, s2) ->
      comb (comb (comb 67 (Hashtbl.hash x)) (meta_srt s1).m_hash) (meta_srt s2).m_hash

and mfi1_srt = function
  | SAtom (_, sp) | SEmbed (_, sp) -> snd (spine_meta sp)
  | SPi (_, s1, s2) -> max (meta_srt s1).m_mfi (dec (meta_srt s2).m_mfi)

(* --- arenas (weak sets of representatives) ---------------------------- *)

let rec eq_spine sp1 sp2 =
  match (sp1, sp2) with
  | [], [] -> true
  | m1 :: r1, m2 :: r2 -> m1 == m2 && eq_spine r1 r2
  | _ -> false

let eq_front f1 f2 =
  match (f1, f2) with
  | Obj m1, Obj m2 -> m1 == m2
  | Tup t1, Tup t2 -> eq_spine t1 t2
  | Undef, Undef -> true
  | _ -> false

module HeadArena = Weak.Make (struct
  type t = head

  let hash = hash_head

  let equal h1 h2 =
    match (h1, h2) with
    | Const a, Const b -> a = b
    | BVar a, BVar b -> a = b
    | PVar (p1, s1), PVar (p2, s2) -> p1 = p2 && s1 == s2
    | Proj (b1, k1), Proj (b2, k2) -> k1 = k2 && b1 == b2
    | MVar (u1, s1), MVar (u2, s2) -> u1 = u2 && s1 == s2
    | _ -> false
end)

module NormalArena = Weak.Make (struct
  type t = normal

  let hash = hash_normal

  let equal n1 n2 =
    match (n1, n2) with
    | Lam (x1, b1), Lam (x2, b2) -> String.equal x1 x2 && b1 == b2
    | Root (h1, sp1), Root (h2, sp2) -> h1 == h2 && eq_spine sp1 sp2
    | _ -> false
end)

module SubArena = Weak.Make (struct
  type t = sub

  let hash = hash_sub

  let equal s1 s2 =
    match (s1, s2) with
    | Empty, Empty -> true
    | Shift n1, Shift n2 -> n1 = n2
    | Dot (f1, t1), Dot (f2, t2) -> t1 == t2 && eq_front f1 f2
    | _ -> false
end)

module TypArena = Weak.Make (struct
  type t = typ

  let hash = hash_typ

  let equal a1 a2 =
    match (a1, a2) with
    | Atom (c1, sp1), Atom (c2, sp2) -> c1 = c2 && eq_spine sp1 sp2
    | Pi (x1, a1, b1), Pi (x2, a2, b2) ->
        String.equal x1 x2 && a1 == a2 && b1 == b2
    | _ -> false
end)

module SrtArena = Weak.Make (struct
  type t = srt

  let hash = hash_srt

  let equal s1 s2 =
    match (s1, s2) with
    | SAtom (c1, sp1), SAtom (c2, sp2) -> c1 = c2 && eq_spine sp1 sp2
    | SEmbed (c1, sp1), SEmbed (c2, sp2) -> c1 = c2 && eq_spine sp1 sp2
    | SPi (x1, a1, b1), SPi (x2, a2, b2) ->
        String.equal x1 x2 && a1 == a2 && b1 == b2
    | _ -> false
end)

(* The arena half of a store state, plus the intern/dedup counters (which
   are per-state so one session's sharing statistics cannot pollute
   another's).  [state] packs both halves; the two [cur_*] refs are kept
   in lock-step by [use_state] so the hot paths each pay one load. *)
type arenas = {
  ar_head : HeadArena.t;
  ar_normal : NormalArena.t;
  ar_sub : SubArena.t;
  ar_typ : TypArena.t;
  ar_srt : SrtArena.t;
  mutable ar_interned : int;
  mutable ar_dedup : int;
}

let fresh_arenas () =
  {
    ar_head = HeadArena.create 1024;
    ar_normal = NormalArena.create 4096;
    ar_sub = SubArena.create 1024;
    ar_typ = TypArena.create 1024;
    ar_srt = SrtArena.create 1024;
    ar_interned = 0;
    ar_dedup = 0;
  }

let cur_arena : arenas ref = ref (fresh_arenas ())

type state = { sx_meta : meta_tables; sx_arenas : arenas }

let fresh_state () =
  { sx_meta = fresh_meta_tables (); sx_arenas = fresh_arenas () }

(* The state every batch run lives in; [!cur_meta]/[!cur_arena] above are
   its halves, so terms built before any [use_state] belong to it. *)
let boot_state = { sx_meta = !cur_meta; sx_arenas = !cur_arena }

let current = ref boot_state

(** Install [st] as the world every [mk_*]/metadata access runs in. *)
let use_state st =
  current := st;
  cur_meta := st.sx_meta;
  cur_arena := st.sx_arenas

let current_state () = !current

(** Run [f] with [st] installed, restoring the previous state even on
    exceptions (the serve loop's per-request bracket). *)
let with_state st f =
  let prev = !current in
  use_state st;
  Fun.protect ~finally:(fun () -> use_state prev) f

(* --- interning -------------------------------------------------------- *)

let intern_head (cand : head) : head =
  if not !on then cand
  else begin
    Fault.hit "store-intern";
    let a = !cur_arena in
    let rep = HeadArena.merge a.ar_head cand in
    if rep == cand then begin
      a.ar_interned <- a.ar_interned + 1;
      ignore (meta_head rep)
    end
    else a.ar_dedup <- a.ar_dedup + 1;
    rep
  end

let intern_normal (cand : normal) : normal =
  if not !on then cand
  else begin
    Fault.hit "store-intern";
    let a = !cur_arena in
    let rep = NormalArena.merge a.ar_normal cand in
    if rep == cand then begin
      a.ar_interned <- a.ar_interned + 1;
      ignore (meta_normal rep)
    end
    else a.ar_dedup <- a.ar_dedup + 1;
    rep
  end

let intern_sub (cand : sub) : sub =
  if not !on then cand
  else begin
    Fault.hit "store-intern";
    let a = !cur_arena in
    let rep = SubArena.merge a.ar_sub cand in
    if rep == cand then begin
      a.ar_interned <- a.ar_interned + 1;
      ignore (meta_sub rep)
    end
    else a.ar_dedup <- a.ar_dedup + 1;
    rep
  end

let intern_typ (cand : typ) : typ =
  if not !on then cand
  else begin
    Fault.hit "store-intern";
    let a = !cur_arena in
    let rep = TypArena.merge a.ar_typ cand in
    if rep == cand then begin
      a.ar_interned <- a.ar_interned + 1;
      ignore (meta_typ rep)
    end
    else a.ar_dedup <- a.ar_dedup + 1;
    rep
  end

let intern_srt (cand : srt) : srt =
  if not !on then cand
  else begin
    Fault.hit "store-intern";
    let a = !cur_arena in
    let rep = SrtArena.merge a.ar_srt cand in
    if rep == cand then begin
      a.ar_interned <- a.ar_interned + 1;
      ignore (meta_srt rep)
    end
    else a.ar_dedup <- a.ar_dedup + 1;
    rep
  end

(* --- smart constructors ----------------------------------------------- *)

let mk_const c = intern_head (Const c)

let mk_bvar i = intern_head (BVar i)

let mk_pvar p s = intern_head (PVar (p, s))

let mk_proj h k = intern_head (Proj (h, k))

let mk_mvar u s = intern_head (MVar (u, s))

let mk_lam x n = intern_normal (Lam (x, n))

let mk_root h sp = intern_normal (Root (h, sp))

let mk_empty = Empty

(* Small shifts are ubiquitous ([Shift 0] is the identity substitution);
   a preallocated cache makes them physically unique without touching the
   arena, in both enabled and disabled modes. *)
let shift_cache = Array.init 64 (fun n -> Shift n)

let mk_shift n =
  if n >= 0 && n < Array.length shift_cache then shift_cache.(n)
  else intern_sub (Shift n)

let mk_dot f s =
  (* keep identity substitutions canonical: Dot (xₙ, ↑ⁿ) = ↑ⁿ⁻¹; applied
     in both modes — it is semantic canonicalization, not sharing *)
  match (f, s) with
  | Obj (Root (BVar k, [])), Shift n when k = n -> mk_shift (n - 1)
  | _ -> intern_sub (Dot (f, s))

let mk_atom a sp = intern_typ (Atom (a, sp))

let mk_pi x a b = intern_typ (Pi (x, a, b))

let mk_satom q sp = intern_srt (SAtom (q, sp))

let mk_sembed a sp = intern_srt (SEmbed (a, sp))

let mk_spi x s1 s2 = intern_srt (SPi (x, s1, s2))

(* --- control ----------------------------------------------------------- *)

let store_clear () =
  let a = !cur_arena and m = !cur_meta in
  HeadArena.clear a.ar_head;
  NormalArena.clear a.ar_normal;
  SubArena.clear a.ar_sub;
  TypArena.clear a.ar_typ;
  SrtArena.clear a.ar_srt;
  HeadTbl.reset m.mt_head;
  NormalTbl.reset m.mt_normal;
  SubTbl.reset m.mt_sub;
  TypTbl.reset m.mt_typ;
  SrtTbl.reset m.mt_srt

(* --- accessors --------------------------------------------------------- *)

let normal_id m = (meta_normal m).m_id

let sub_id s = (meta_sub s).m_id

let head_id h = (meta_head h).m_id

let typ_id a = (meta_typ a).m_id

let srt_id s = (meta_srt s).m_id

let mfi_normal m = (meta_normal m).m_mfi

let mfi_head h = (meta_head h).m_mfi

let mfi_sub s = (meta_sub s).m_mfi

let mfi_typ a = (meta_typ a).m_mfi

let mfi_srt s = (meta_srt s).m_mfi

let mfi_spine sp = snd (spine_meta sp)

let is_rep_normal (m : normal) =
  match NormalArena.find_opt (!cur_arena).ar_normal m with
  | Some r -> r == m
  | None -> false

(* --- statistics -------------------------------------------------------- *)

type store_stats = {
  st_live : int;
  st_interned : int;
  st_dedup_hits : int;
}

let store_stats () =
  let a = !cur_arena in
  {
    st_live =
      HeadArena.count a.ar_head + NormalArena.count a.ar_normal
      + SubArena.count a.ar_sub + TypArena.count a.ar_typ
      + SrtArena.count a.ar_srt;
    st_interned = a.ar_interned;
    st_dedup_hits = a.ar_dedup;
  }

let dedup_ratio () =
  let a = !cur_arena in
  if a.ar_interned = 0 then 0.0
  else
    float_of_int (a.ar_interned + a.ar_dedup) /. float_of_int a.ar_interned

(* Report the store's numbers in --stats / --profile ("store" section of
   the belr-profile/1 schema; Belr_lf.Hsub contributes its memo-table
   fields to the same section). *)
let () =
  Telemetry.register_section "store" (fun () ->
      let s = store_stats () in
      [
        ("enabled", Json.Bool !on);
        ("live", Json.Int s.st_live);
        ("interned", Json.Int s.st_interned);
        ("dedup_hits", Json.Int s.st_dedup_hits);
        ("dedup_ratio", Json.Float (dedup_ratio ()));
      ])
