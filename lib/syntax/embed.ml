(** The explicit embedding of the type level into the refinement level.

    The paper replaces LFR's ambiguous ⊤ sort by an embedding [⌊P⌋] of
    atomic type families into sorts (§3.1.1); embeddings of the other
    categories are then admissible.  These functions realize that
    admissible embedding: every type-level object is reflected as the
    sort-level object that refines it trivially.  [Belr_core.Erase] is the
    left inverse. *)

let rec typ : Lf.typ -> Lf.srt = function
  | Lf.Atom (a, sp) -> Lf.mk_sembed a sp
  | Lf.Pi (x, a, b) -> Lf.mk_spi x (typ a) (typ b)

let rec kind : Lf.kind -> Lf.skind = function
  | Lf.Ktype -> Lf.Ksort
  | Lf.Kpi (x, a, k) -> Lf.Kspi (x, typ a, kind k)

let block (b : Ctxs.block) : Ctxs.sblock =
  List.map (fun (x, a) -> (x, typ a)) b

(** Embed a schema element; [refines] is its index in the schema it came
    from, so the trivial refinement schema lines up world-by-world. *)
let elem ~refines (e : Ctxs.elem) : Ctxs.selem =
  {
    Ctxs.f_name = e.Ctxs.e_name;
    Ctxs.f_refines = refines;
    Ctxs.f_params = List.map (fun (x, a) -> (x, typ a)) e.Ctxs.e_params;
    Ctxs.f_block = block e.Ctxs.e_block;
  }

(** The trivial refinement [⌈G⌉ ⊑ G] embedding every world. *)
let schema ~cid (g : Ctxs.schema) : Ctxs.sschema =
  { Ctxs.h_refines = cid; Ctxs.h_elems = List.mapi (fun i e -> elem ~refines:i e) g }

let centry : Ctxs.centry -> Ctxs.scentry = function
  | Ctxs.CDecl (x, a) -> Ctxs.SCDecl (x, typ a)
  | Ctxs.CBlock (x, e, ms) ->
      (* The embedded entry remembers which world it came from via
         [f_refines]; for a bare context (not tied to a schema position)
         the index is irrelevant and set to 0. *)
      Ctxs.SCBlock (x, elem ~refines:0 e, ms)

let ctx (g : Ctxs.ctx) : Ctxs.sctx =
  {
    Ctxs.s_var = g.Ctxs.c_var;
    Ctxs.s_promoted = false;
    Ctxs.s_decls = List.map centry g.Ctxs.c_decls;
  }
