(** Pretty printing of the internal syntax.

    Printing needs the signature's id→name maps, which live above this
    library; callers pass a {!resolver}.  de Bruijn indices are rendered
    using the binder name hints, freshened against everything in scope. *)

open Belr_support
open Lf

type resolver = {
  r_typ : int -> string;
  r_srt : int -> string;
  r_const : int -> string;
  r_schema : int -> string;
  r_sschema : int -> string;
  r_rec : int -> string;
}

(** Resolver printing raw ids; useful before a signature exists. *)
let raw_resolver =
  {
    r_typ = Fmt.str "a#%d";
    r_srt = Fmt.str "s#%d";
    r_const = Fmt.str "c#%d";
    r_schema = Fmt.str "G#%d";
    r_sschema = Fmt.str "H#%d";
    r_rec = Fmt.str "f#%d";
  }

type env = {
  res : resolver;
  bound : string list;  (** LF binders in scope, innermost first *)
  meta : string list;  (** meta binders in scope, innermost first *)
}

let env ?(res = raw_resolver) () = { res; bound = []; meta = [] }

let push_bound e (n : Name.t) =
  let n' = Name.fresh_for e.bound (Name.to_string n) in
  ({ e with bound = n' :: e.bound }, n')

let push_meta e (n : Name.t) =
  let n' = Name.fresh_for e.meta (Name.to_string n) in
  ({ e with meta = n' :: e.meta }, n')

let bound_name e i =
  match List.nth_opt e.bound (i - 1) with
  | Some n -> n
  | None -> Fmt.str "!%d" i

let meta_name e i =
  match List.nth_opt e.meta (i - 1) with
  | Some n -> n
  | None -> Fmt.str "?%d" i

(* ------------------------------------------------------------------ *)

let rec pp_head e ppf = function
  | Const c -> Fmt.string ppf (e.res.r_const c)
  | BVar i -> Fmt.string ppf (bound_name e i)
  | PVar (p, Shift 0) -> Fmt.pf ppf "#%s" (meta_name e p)
  | PVar (p, s) -> Fmt.pf ppf "#%s[%a]" (meta_name e p) (pp_sub e) s
  | Proj (h, k) -> Fmt.pf ppf "%a.%d" (pp_head e) h k
  | MVar (u, Shift 0) -> Fmt.string ppf (meta_name e u)
  | MVar (u, s) -> Fmt.pf ppf "%s[%a]" (meta_name e u) (pp_sub e) s

and pp_normal ?(paren = false) e ppf = function
  | Lam (x, m) ->
      let e', x' = push_bound e x in
      let body ppf () = Fmt.pf ppf "\\%s. %a" x' (pp_normal e') m in
      if paren then Fmt.parens body ppf () else body ppf ()
  | Root (h, []) -> pp_head e ppf h
  | Root (h, sp) ->
      let body ppf () =
        Fmt.pf ppf "%a@ %a" (pp_head e) h
          (Fmt.list ~sep:Fmt.sp (pp_normal ~paren:true e))
          sp
      in
      if paren then Fmt.parens body ppf () else Fmt.box (body) ppf ()

and pp_front e ppf = function
  | Obj m -> pp_normal e ppf m
  | Tup t -> Fmt.pf ppf "<%a>" (Fmt.list ~sep:Fmt.semi (pp_normal e)) t
  | Undef -> Fmt.string ppf "_|_"

and pp_sub e ppf (s : sub) =
  (* Collect Dot fronts (they are stored innermost-last textually: the
     front of the outermost Dot replaces index 1). We print in the paper's
     order: σ, M. *)
  let rec collect acc = function
    | Dot (f, s') -> collect (f :: acc) s'
    | tail -> (tail, acc)
  in
  let tail, fronts = collect [] s in
  let pp_tail ppf = function
    | Empty -> Fmt.string ppf "^"
    | Shift 0 -> Fmt.string ppf ".."
    | Shift n -> Fmt.pf ppf "..%d" n
    | Dot _ -> assert false
  in
  match fronts with
  | [] -> pp_tail ppf tail
  | _ ->
      Fmt.pf ppf "%a, %a" pp_tail tail
        (Fmt.list ~sep:Fmt.comma (pp_front e))
        fronts

let rec pp_typ ?(paren = false) e ppf = function
  | Atom (a, []) -> Fmt.string ppf (e.res.r_typ a)
  | Atom (a, sp) ->
      let body ppf () =
        Fmt.pf ppf "%s@ %a" (e.res.r_typ a)
          (Fmt.list ~sep:Fmt.sp (pp_normal ~paren:true e))
          sp
      in
      if paren then Fmt.parens body ppf () else Fmt.box body ppf ()
  | Pi (x, a, b) ->
      let e', x' = push_bound e x in
      let body ppf () =
        Fmt.pf ppf "{%s : %a}@ %a" x' (pp_typ e) a (pp_typ e') b
      in
      if paren then Fmt.parens body ppf () else Fmt.box body ppf ()

let rec pp_srt ?(paren = false) e ppf = function
  | SAtom (s, []) -> Fmt.string ppf (e.res.r_srt s)
  | SAtom (s, sp) ->
      let body ppf () =
        Fmt.pf ppf "%s@ %a" (e.res.r_srt s)
          (Fmt.list ~sep:Fmt.sp (pp_normal ~paren:true e))
          sp
      in
      if paren then Fmt.parens body ppf () else Fmt.box body ppf ()
  | SEmbed (a, sp) -> pp_typ ~paren e ppf (mk_atom a sp)
  | SPi (x, s1, s2) ->
      let e', x' = push_bound e x in
      let body ppf () =
        Fmt.pf ppf "{%s : %a}@ %a" x' (pp_srt e) s1 (pp_srt e') s2
      in
      if paren then Fmt.parens body ppf () else Fmt.box body ppf ()

let rec pp_kind e ppf = function
  | Ktype -> Fmt.string ppf "type"
  | Kpi (x, a, k) ->
      let e', x' = push_bound e x in
      Fmt.pf ppf "{%s : %a} %a" x' (pp_typ e) a (pp_kind e') k

let rec pp_skind e ppf = function
  | Ksort -> Fmt.string ppf "sort"
  | Kspi (x, s, l) ->
      let e', x' = push_bound e x in
      Fmt.pf ppf "{%s : %a} %a" x' (pp_srt e) s (pp_skind e') l

(* Blocks / elements -------------------------------------------------- *)

let pp_block e ppf (b : Ctxs.block) =
  let rec go e = function
    | [] -> []
    | (x, a) :: rest ->
        let s = Fmt.str "%s : %a" (snd (push_bound e x)) (pp_typ e) a in
        let e', _ = push_bound e x in
        s :: go e' rest
  in
  Fmt.pf ppf "block (%s)" (String.concat ", " (go e b))

let pp_sblock e ppf (b : Ctxs.sblock) =
  let rec go e = function
    | [] -> []
    | (x, s) :: rest ->
        let str = Fmt.str "%s : %a" (snd (push_bound e x)) (pp_srt e) s in
        let e', _ = push_bound e x in
        str :: go e' rest
  in
  Fmt.pf ppf "block (%s)" (String.concat ", " (go e b))

let pp_elem e ppf (el : Ctxs.elem) =
  let rec params env = function
    | [] -> (env, [])
    | (x, a) :: rest ->
        let s = Fmt.str "{%s : %a}" (snd (push_bound env x)) (pp_typ env) a in
        let env', _ = push_bound env x in
        let env'', ss = params env' rest in
        (env'', s :: ss)
  in
  let env', ps = params e el.Ctxs.e_params in
  if ps = [] then pp_block env' ppf el.Ctxs.e_block
  else Fmt.pf ppf "%s %a" (String.concat " " ps) (pp_block env') el.Ctxs.e_block

let pp_selem e ppf (f : Ctxs.selem) =
  let rec params env = function
    | [] -> (env, [])
    | (x, s) :: rest ->
        let str = Fmt.str "{%s : %a}" (snd (push_bound env x)) (pp_srt env) s in
        let env', _ = push_bound env x in
        let env'', ss = params env' rest in
        (env'', str :: ss)
  in
  let env', ps = params e f.Ctxs.f_params in
  if ps = [] then pp_sblock env' ppf f.Ctxs.f_block
  else
    Fmt.pf ppf "%s %a" (String.concat " " ps) (pp_sblock env') f.Ctxs.f_block

(* Contexts ----------------------------------------------------------- *)

(** Print a context left-to-right (outermost first), extending the binder
    environment as we go; returns the extended environment. *)
let pp_ctx_gen ~pp_entry ~var_name e ppf (var, decls_innermost_first) =
  let decls = List.rev decls_innermost_first in
  let started = ref false in
  let sep () =
    if !started then Fmt.pf ppf ", ";
    started := true
  in
  (match var with
  | Some i ->
      sep ();
      Fmt.string ppf (var_name i)
  | None -> ());
  let env = ref e in
  List.iter
    (fun d ->
      sep ();
      let env' = pp_entry !env ppf d in
      env := env')
    decls;
  if not !started then Fmt.string ppf ".";
  !env

let pp_centry e ppf = function
  | Ctxs.CDecl (x, a) ->
      let e', x' = push_bound e x in
      Fmt.pf ppf "%s : %a" x' (pp_typ e) a;
      e'
  | Ctxs.CBlock (x, el, ms) ->
      let e', x' = push_bound e x in
      Fmt.pf ppf "%s : %a" x' (pp_elem e) el;
      (match ms with
      | [] -> ()
      | _ ->
          Fmt.pf ppf " %a" (Fmt.list ~sep:Fmt.sp (pp_normal ~paren:true e)) ms);
      e'

let pp_scentry e ppf = function
  | Ctxs.SCDecl (x, s) ->
      let e', x' = push_bound e x in
      Fmt.pf ppf "%s : %a" x' (pp_srt e) s;
      e'
  | Ctxs.SCBlock (x, f, ms) ->
      let e', x' = push_bound e x in
      Fmt.pf ppf "%s : %a" x' (pp_selem e) f;
      (match ms with
      | [] -> ()
      | _ ->
          Fmt.pf ppf " %a" (Fmt.list ~sep:Fmt.sp (pp_normal ~paren:true e)) ms);
      e'

let pp_ctx e ppf (g : Ctxs.ctx) =
  ignore
    (pp_ctx_gen ~pp_entry:pp_centry
       ~var_name:(fun i -> meta_name e i)
       e ppf
       (g.Ctxs.c_var, g.Ctxs.c_decls))

let pp_sctx e ppf (psi : Ctxs.sctx) =
  let var_name i =
    let n = meta_name e i in
    if psi.Ctxs.s_promoted then n ^ "^" else n
  in
  ignore
    (pp_ctx_gen ~pp_entry:pp_scentry ~var_name e ppf
       (psi.Ctxs.s_var, psi.Ctxs.s_decls))

(** Environment extended with all binders of a sort context, for printing
    objects that live in it. *)
let env_of_sctx e (psi : Ctxs.sctx) =
  List.fold_left
    (fun env n -> fst (push_bound env n))
    e
    (List.rev (Ctxs.sctx_names psi))

let env_of_ctx e (g : Ctxs.ctx) =
  List.fold_left
    (fun env n -> fst (push_bound env n))
    e
    (List.rev (Ctxs.ctx_names g))

let env_of_hat e (h : Meta.hat) =
  List.fold_left
    (fun env n -> fst (push_bound env n))
    e
    (List.rev h.Meta.hat_names)

(* Meta level ---------------------------------------------------------- *)

let pp_hat e ppf (h : Meta.hat) =
  let parts =
    (match h.Meta.hat_var with Some i -> [ meta_name e i ] | None -> [])
    @ List.rev_map Name.to_string h.Meta.hat_names
  in
  match parts with
  | [] -> Fmt.string ppf "."
  | _ -> Fmt.string ppf (String.concat ", " parts)

let pp_msrt e ppf = function
  | Meta.MSTerm (psi, q) ->
      Fmt.pf ppf "[%a |- %a]" (pp_sctx e) psi (pp_srt (env_of_sctx e psi)) q
  | Meta.MSSub (psi, psi') ->
      Fmt.pf ppf "[%a |- %a]" (pp_sctx e) psi (pp_sctx e) psi'
  | Meta.MSCtx h -> Fmt.string ppf (e.res.r_sschema h)
  | Meta.MSParam (psi, f, ms) ->
      Fmt.pf ppf "#[%a |- %a%a]" (pp_sctx e) psi (pp_selem (env_of_sctx e psi)) f
        (fun ppf -> function
          | [] -> ()
          | ms ->
              Fmt.pf ppf " %a"
                (Fmt.list ~sep:Fmt.sp (pp_normal ~paren:true (env_of_sctx e psi)))
                ms)
        ms

let pp_mtyp e ppf = function
  | Meta.MTTerm (g, a) ->
      Fmt.pf ppf "[%a |- %a]" (pp_ctx e) g (pp_typ (env_of_ctx e g)) a
  | Meta.MTSub (g, g') -> Fmt.pf ppf "[%a |- %a]" (pp_ctx e) g (pp_ctx e) g'
  | Meta.MTCtx g -> Fmt.string ppf (e.res.r_schema g)
  | Meta.MTParam (g, el, ms) ->
      Fmt.pf ppf "#[%a |- %a%a]" (pp_ctx e) g (pp_elem (env_of_ctx e g)) el
        (fun ppf -> function
          | [] -> ()
          | ms ->
              Fmt.pf ppf " %a"
                (Fmt.list ~sep:Fmt.sp (pp_normal ~paren:true (env_of_ctx e g)))
                ms)
        ms

let pp_mobj e ppf = function
  | Meta.MOTerm (h, m) ->
      Fmt.pf ppf "[%a |- %a]" (pp_hat e) h (pp_normal (env_of_hat e h)) m
  | Meta.MOSub (h, s) ->
      Fmt.pf ppf "[%a |- %a]" (pp_hat e) h (pp_sub (env_of_hat e h)) s
  | Meta.MOCtx psi -> Fmt.pf ppf "[%a]" (pp_sctx e) psi
  | Meta.MOParam (h, hd) ->
      Fmt.pf ppf "[%a |- %a]" (pp_hat e) h (pp_head (env_of_hat e h)) hd

let pp_mdecl e ppf (d : Meta.mdecl) =
  match d with
  | Meta.MDTerm (n, psi, q) ->
      Fmt.pf ppf "%s : [%a |- %a]" (Name.to_string n) (pp_sctx e) psi
        (pp_srt (env_of_sctx e psi))
        q
  | Meta.MDSub (n, psi, psi') ->
      Fmt.pf ppf "%s : [%a |- %a]" (Name.to_string n) (pp_sctx e) psi
        (pp_sctx e) psi'
  | Meta.MDCtx (n, h) ->
      Fmt.pf ppf "%s : %s" (Name.to_string n) (e.res.r_sschema h)
  | Meta.MDParam (n, psi, f, _) ->
      Fmt.pf ppf "#%s : [%a |- %a]" (Name.to_string n) (pp_sctx e) psi
        (pp_selem (env_of_sctx e psi))
        f

(** Print a meta-context outermost-first, threading binder names. *)
let pp_mctx e ppf (omega : Meta.mctx) =
  let rec go e = function
    | [] -> e
    | d :: rest ->
        (* print outermost first: recurse on the tail first *)
        let e' = go e rest in
        if rest <> [] then Fmt.pf ppf ", ";
        pp_mdecl e' ppf d;
        fst (push_meta e' (Meta.mdecl_name d))
  in
  if omega = [] then Fmt.string ppf "."
  else ignore (go e omega)

(* Computation level ---------------------------------------------------- *)

let rec pp_ctyp ?(paren = false) e ppf = function
  | Comp.CBox ms -> pp_msrt e ppf ms
  | Comp.CArr (t1, t2) ->
      let body ppf () =
        Fmt.pf ppf "%a ->@ %a" (pp_ctyp ~paren:true e) t1 (pp_ctyp e) t2
      in
      if paren then Fmt.parens body ppf () else Fmt.box body ppf ()
  | Comp.CPi (x, imp, ms, t) ->
      let e', x' = push_meta e x in
      let l, r = if imp then ("(", ")") else ("{", "}") in
      let body ppf () =
        Fmt.pf ppf "%s%s : %a%s@ %a" l x' (pp_msrt e) ms r (pp_ctyp e') t
      in
      if paren then Fmt.parens body ppf () else Fmt.box body ppf ()

let rec pp_ctyp_t ?(paren = false) e ppf = function
  | Comp.TBox mt -> pp_mtyp e ppf mt
  | Comp.TArr (t1, t2) ->
      let body ppf () =
        Fmt.pf ppf "%a ->@ %a" (pp_ctyp_t ~paren:true e) t1 (pp_ctyp_t e) t2
      in
      if paren then Fmt.parens body ppf () else Fmt.box body ppf ()
  | Comp.TPi (x, imp, mt, t) ->
      let e', x' = push_meta e x in
      let l, r = if imp then ("(", ")") else ("{", "}") in
      let body ppf () =
        Fmt.pf ppf "%s%s : %a%s@ %a" l x' (pp_mtyp e) mt r (pp_ctyp_t e') t
      in
      if paren then Fmt.parens body ppf () else Fmt.box body ppf ()

let rec pp_exp ?(paren = false) e ~comp ppf (ex : Comp.exp) =
  let pc = pp_exp ~paren:true e ~comp in
  match ex with
  | Comp.Var i -> (
      match List.nth_opt comp (i - 1) with
      | Some n -> Fmt.string ppf n
      | None -> Fmt.pf ppf "$%d" i)
  | Comp.RecConst r -> Fmt.string ppf (e.res.r_rec r)
  | Comp.Box mo -> pp_mobj e ppf mo
  | Comp.Fn (x, _, body) ->
      let x' = Name.fresh_for comp (Name.to_string x) in
      let b ppf () =
        Fmt.pf ppf "fn %s =>@ %a" x' (pp_exp e ~comp:(x' :: comp)) body
      in
      if paren then Fmt.parens b ppf () else Fmt.box b ppf ()
  | Comp.App (e1, e2) ->
      let b ppf () = Fmt.pf ppf "%a@ %a" (pp_exp ~paren:true e ~comp) e1 pc e2 in
      if paren then Fmt.parens b ppf () else Fmt.box b ppf ()
  | Comp.MLam (x, body) ->
      let e', x' = push_meta e x in
      let b ppf () =
        Fmt.pf ppf "mlam %s =>@ %a" x' (pp_exp e' ~comp) body
      in
      if paren then Fmt.parens b ppf () else Fmt.box b ppf ()
  | Comp.MApp (e1, mo) ->
      let b ppf () =
        Fmt.pf ppf "%a@ %a" (pp_exp ~paren:true e ~comp) e1 (pp_mobj e) mo
      in
      if paren then Fmt.parens b ppf () else Fmt.box b ppf ()
  | Comp.LetBox (x, e1, e2) ->
      let e', x' = push_meta e x in
      let b ppf () =
        Fmt.pf ppf "let [%s] = %a in@ %a" x' (pp_exp e ~comp) e1
          (pp_exp e' ~comp) e2
      in
      if paren then Fmt.parens b ppf () else Fmt.vbox b ppf ()
  | Comp.Case (_, scrut, branches) ->
      let b ppf () =
        Fmt.pf ppf "@[<v>case %a of" (pp_exp ~paren:true e ~comp) scrut;
        List.iter
          (fun (br : Comp.branch) ->
            let e' =
              List.fold_left
                (fun env d -> fst (push_meta env (Meta.mdecl_name d)))
                e
                (List.rev br.Comp.br_mctx)
            in
            Fmt.pf ppf "@,| %a => %a" (pp_mobj e') br.Comp.br_pat
              (pp_exp e' ~comp) br.Comp.br_body)
          branches;
        Fmt.pf ppf "@]"
      in
      if paren then Fmt.parens b ppf () else b ppf ()

(* Convenience to-string helpers ---------------------------------------- *)

let str_of pp x = Fmt.str "%a" pp x

let normal_to_string ?(res = raw_resolver) ?(names = []) m =
  let e =
    List.fold_left (fun env n -> fst (push_bound env n)) (env ~res ()) names
  in
  str_of (pp_normal e) m

let typ_to_string ?(res = raw_resolver) ?(names = []) a =
  let e =
    List.fold_left (fun env n -> fst (push_bound env n)) (env ~res ()) names
  in
  str_of (pp_typ e) a

let srt_to_string ?(res = raw_resolver) ?(names = []) s =
  let e =
    List.fold_left (fun env n -> fst (push_bound env n)) (env ~res ()) names
  in
  str_of (pp_srt e) s
