(** de Bruijn shifting (pure renaming).

    Two index spaces exist:
    - LF bound variables ([Lf.BVar]), bound by [Lam], Π, Σ (blocks), and
      context declarations;
    - meta-variables ([Lf.MVar], [Lf.PVar], context-variable roots), bound
      by the meta-context [Ω]/[Δ], comp-level [MLam]/[LetBox], and case
      branches.

    [shift_*] renames LF indices; [mshift_*] renames meta indices.  Both
    take the amount [d] and a cutoff [c] (indices [≤ c] are bound locally
    and untouched).  Renaming never creates redexes, so no hereditary
    machinery is needed here.

    Fast paths (PR 4): shifting by [d = 0] is the identity, and so is
    shifting a node whose max-free-index bound ([Store.mfi_*]) is at most
    the cutoff — every free index is untouched, so the input is returned
    with no traversal and no reallocation. *)

open Lf

(* ------------------------------------------------------------------ *)
(* LF-level shifting                                                   *)

let rec shift_head d c (h : head) : head =
  if d = 0 || (store_enabled () && mfi_head h <= c) then h
  else
    match h with
    | Const _ -> h
    | BVar i -> if i > c then mk_bvar (i + d) else h
    | PVar (p, s) -> mk_pvar p (shift_sub d c s)
    | Proj (b, k) -> mk_proj (shift_head d c b) k
    | MVar (u, s) -> mk_mvar u (shift_sub d c s)

and shift_normal d c (m : normal) : normal =
  if d = 0 || (store_enabled () && mfi_normal m <= c) then m
  else
    match m with
    | Lam (x, n) -> mk_lam x (shift_normal d (c + 1) n)
    | Root (h, sp) -> mk_root (shift_head d c h) (shift_spine d c sp)

and shift_spine d c sp =
  if d = 0 then sp else List.map (shift_normal d c) sp

and shift_front d c = function
  | Obj m -> Obj (shift_normal d c m)
  | Tup t -> Tup (List.map (shift_normal d c) t)
  | Undef -> Undef

and shift_sub d c (s : sub) : sub =
  if d = 0 || (store_enabled () && mfi_sub s <= c) then s
  else
    match s with
    | Empty -> s
    | Shift n ->
        (* [Shift n] maps i ↦ i + n; composing with the renaming i ↦ i + d
           above cutoff c.  Under a cutoff this representation cannot stay
           a bare [Shift]; the checkers only shift closed-from-below
           substitutions (c = 0), which is the case we support exactly. *)
        if c = 0 then mk_shift (n + d)
        else if n >= c then mk_shift (n + d)
        else
          (* Expand the first components explicitly: indices 1..(c-n) are
             below the cutoff after shifting. *)
          let rec expand i acc =
            if i > c - n then acc
            else
              expand (i + 1) (fun tail ->
                  acc (mk_dot (Obj (bvar (i + n))) tail))
          in
          (expand 1 (fun tail -> tail)) (mk_shift (c + d))
    | Dot (f, s') -> mk_dot (shift_front d c f) (shift_sub d c s')

let rec shift_typ d c (a : typ) : typ =
  if d = 0 || (store_enabled () && mfi_typ a <= c) then a
  else
    match a with
    | Atom (p, sp) -> mk_atom p (shift_spine d c sp)
    | Pi (x, a1, b) -> mk_pi x (shift_typ d c a1) (shift_typ d (c + 1) b)

let rec shift_srt d c (s : srt) : srt =
  if d = 0 || (store_enabled () && mfi_srt s <= c) then s
  else
    match s with
    | SAtom (q, sp) -> mk_satom q (shift_spine d c sp)
    | SEmbed (a, sp) -> mk_sembed a (shift_spine d c sp)
    | SPi (x, s1, s2) -> mk_spi x (shift_srt d c s1) (shift_srt d (c + 1) s2)

let rec shift_kind d c : kind -> kind = function
  | Ktype -> Ktype
  | Kpi (x, a, k) -> Kpi (x, shift_typ d c a, shift_kind d (c + 1) k)

let rec shift_skind d c : skind -> skind = function
  | Ksort -> Ksort
  | Kspi (x, s, l) -> Kspi (x, shift_srt d c s, shift_skind d (c + 1) l)

let shift_block d c (b : Ctxs.block) : Ctxs.block =
  List.mapi (fun i (x, a) -> (x, shift_typ d (c + i) a)) b

let shift_sblock d c (b : Ctxs.sblock) : Ctxs.sblock =
  List.mapi (fun i (x, s) -> (x, shift_srt d (c + i) s)) b

let shift_elem d c (e : Ctxs.elem) : Ctxs.elem =
  let params = List.mapi (fun i (x, a) -> (x, shift_typ d (c + i) a)) e.Ctxs.e_params in
  let np = List.length params in
  { e with Ctxs.e_params = params; Ctxs.e_block = shift_block d (c + np) e.Ctxs.e_block }

let shift_selem d c (f : Ctxs.selem) : Ctxs.selem =
  let params = List.mapi (fun i (x, s) -> (x, shift_srt d (c + i) s)) f.Ctxs.f_params in
  let np = List.length params in
  { f with Ctxs.f_params = params; Ctxs.f_block = shift_sblock d (c + np) f.Ctxs.f_block }

(* ------------------------------------------------------------------ *)
(* Meta-level shifting                                                 *)

(* The store's mfi bound tracks LF indices only, so meta-level renaming
   has just the [d = 0] fast path. *)

let rec mshift_head d c (h : head) : head =
  if d = 0 then h
  else
    match h with
    | Const _ | BVar _ -> h
    | PVar (p, s) ->
        let p' = if p > c then p + d else p in
        mk_pvar p' (mshift_sub d c s)
    | Proj (b, k) -> mk_proj (mshift_head d c b) k
    | MVar (u, s) ->
        let u' = if u > c then u + d else u in
        mk_mvar u' (mshift_sub d c s)

and mshift_normal d c (m : normal) : normal =
  if d = 0 then m
  else
    match m with
    | Lam (x, n) -> mk_lam x (mshift_normal d c n)
    | Root (h, sp) -> mk_root (mshift_head d c h) (mshift_spine d c sp)

and mshift_spine d c sp =
  if d = 0 then sp else List.map (mshift_normal d c) sp

and mshift_front d c = function
  | Obj m -> Obj (mshift_normal d c m)
  | Tup t -> Tup (List.map (mshift_normal d c) t)
  | Undef -> Undef

and mshift_sub d c (s : sub) : sub =
  if d = 0 then s
  else
    match s with
    | Empty | Shift _ -> s
    | Dot (f, s') -> mk_dot (mshift_front d c f) (mshift_sub d c s')

let rec mshift_typ d c (a : typ) : typ =
  if d = 0 then a
  else
    match a with
    | Atom (p, sp) -> mk_atom p (mshift_spine d c sp)
    | Pi (x, a1, b) -> mk_pi x (mshift_typ d c a1) (mshift_typ d c b)

let rec mshift_srt d c (s : srt) : srt =
  if d = 0 then s
  else
    match s with
    | SAtom (q, sp) -> mk_satom q (mshift_spine d c sp)
    | SEmbed (a, sp) -> mk_sembed a (mshift_spine d c sp)
    | SPi (x, s1, s2) -> mk_spi x (mshift_srt d c s1) (mshift_srt d c s2)

let mshift_block d c (b : Ctxs.block) : Ctxs.block =
  List.map (fun (x, a) -> (x, mshift_typ d c a)) b

let mshift_sblock d c (b : Ctxs.sblock) : Ctxs.sblock =
  List.map (fun (x, s) -> (x, mshift_srt d c s)) b

let mshift_elem d c (e : Ctxs.elem) : Ctxs.elem =
  {
    e with
    Ctxs.e_params = List.map (fun (x, a) -> (x, mshift_typ d c a)) e.Ctxs.e_params;
    Ctxs.e_block = mshift_block d c e.Ctxs.e_block;
  }

let mshift_selem d c (f : Ctxs.selem) : Ctxs.selem =
  {
    f with
    Ctxs.f_params = List.map (fun (x, s) -> (x, mshift_srt d c s)) f.Ctxs.f_params;
    Ctxs.f_block = mshift_sblock d c f.Ctxs.f_block;
  }

let mshift_centry d c : Ctxs.centry -> Ctxs.centry = function
  | Ctxs.CDecl (x, a) -> Ctxs.CDecl (x, mshift_typ d c a)
  | Ctxs.CBlock (x, e, ms) ->
      Ctxs.CBlock (x, mshift_elem d c e, List.map (mshift_normal d c) ms)

let mshift_ctx d c (g : Ctxs.ctx) : Ctxs.ctx =
  let v =
    match g.Ctxs.c_var with
    | Some i when i > c -> Some (i + d)
    | v -> v
  in
  { Ctxs.c_var = v; Ctxs.c_decls = List.map (mshift_centry d c) g.Ctxs.c_decls }

let mshift_scentry d c : Ctxs.scentry -> Ctxs.scentry = function
  | Ctxs.SCDecl (x, s) -> Ctxs.SCDecl (x, mshift_srt d c s)
  | Ctxs.SCBlock (x, f, ms) ->
      Ctxs.SCBlock (x, mshift_selem d c f, List.map (mshift_normal d c) ms)

let mshift_sctx d c (psi : Ctxs.sctx) : Ctxs.sctx =
  let v =
    match psi.Ctxs.s_var with
    | Some i when i > c -> Some (i + d)
    | v -> v
  in
  {
    psi with
    Ctxs.s_var = v;
    Ctxs.s_decls = List.map (mshift_scentry d c) psi.Ctxs.s_decls;
  }

let mshift_hat d c (h : Meta.hat) : Meta.hat =
  match h.Meta.hat_var with
  | Some i when i > c -> { h with Meta.hat_var = Some (i + d) }
  | _ -> h

let mshift_msrt d c : Meta.msrt -> Meta.msrt = function
  | Meta.MSTerm (psi, s) -> Meta.MSTerm (mshift_sctx d c psi, mshift_srt d c s)
  | Meta.MSSub (psi1, psi2) ->
      Meta.MSSub (mshift_sctx d c psi1, mshift_sctx d c psi2)
  | Meta.MSCtx h -> Meta.MSCtx h
  | Meta.MSParam (psi, f, ms) ->
      Meta.MSParam
        (mshift_sctx d c psi, mshift_selem d c f, List.map (mshift_normal d c) ms)

let mshift_mtyp d c : Meta.mtyp -> Meta.mtyp = function
  | Meta.MTTerm (g, a) -> Meta.MTTerm (mshift_ctx d c g, mshift_typ d c a)
  | Meta.MTSub (g1, g2) -> Meta.MTSub (mshift_ctx d c g1, mshift_ctx d c g2)
  | Meta.MTCtx g -> Meta.MTCtx g
  | Meta.MTParam (g, e, ms) ->
      Meta.MTParam
        (mshift_ctx d c g, mshift_elem d c e, List.map (mshift_normal d c) ms)

let mshift_mobj d c : Meta.mobj -> Meta.mobj = function
  | Meta.MOTerm (h, m) -> Meta.MOTerm (mshift_hat d c h, mshift_normal d c m)
  | Meta.MOSub (h, s) -> Meta.MOSub (mshift_hat d c h, mshift_sub d c s)
  | Meta.MOCtx psi -> Meta.MOCtx (mshift_sctx d c psi)
  | Meta.MOParam (h, hd) -> Meta.MOParam (mshift_hat d c h, mshift_head d c hd)

let mshift_mdecl d c : Meta.mdecl -> Meta.mdecl = function
  | Meta.MDTerm (n, psi, s) ->
      Meta.MDTerm (n, mshift_sctx d c psi, mshift_srt d c s)
  | Meta.MDSub (n, psi1, psi2) ->
      Meta.MDSub (n, mshift_sctx d c psi1, mshift_sctx d c psi2)
  | Meta.MDCtx (n, h) -> Meta.MDCtx (n, h)
  | Meta.MDParam (n, psi, f, ms) ->
      Meta.MDParam
        ( n,
          mshift_sctx d c psi,
          mshift_selem d c f,
          List.map (mshift_normal d c) ms )

let mshift_mdecl_t d c : Meta.mdecl_t -> Meta.mdecl_t = function
  | Meta.TDTerm (n, g, a) -> Meta.TDTerm (n, mshift_ctx d c g, mshift_typ d c a)
  | Meta.TDSub (n, g1, g2) ->
      Meta.TDSub (n, mshift_ctx d c g1, mshift_ctx d c g2)
  | Meta.TDCtx (n, g) -> Meta.TDCtx (n, g)
  | Meta.TDParam (n, g, e, ms) ->
      Meta.TDParam
        (n, mshift_ctx d c g, mshift_elem d c e, List.map (mshift_normal d c) ms)

(** Look up declaration [i] of [Ω] and transport it to be valid in all of
    [Ω] (the stored entry lives in the prefix above index [i]). *)
let mctx_lookup_shifted (omega : Meta.mctx) (i : int) : Meta.mdecl option =
  Option.map (mshift_mdecl i 0) (Meta.mctx_lookup omega i)

let mctx_t_lookup_shifted (delta : Meta.mctx_t) (i : int) : Meta.mdecl_t option
    =
  Option.map (mshift_mdecl_t i 0) (Meta.mctx_t_lookup delta i)

let rec mshift_ctyp d c : Comp.ctyp -> Comp.ctyp = function
  | Comp.CBox ms -> Comp.CBox (mshift_msrt d c ms)
  | Comp.CArr (t1, t2) -> Comp.CArr (mshift_ctyp d c t1, mshift_ctyp d c t2)
  | Comp.CPi (x, imp, ms, t) ->
      Comp.CPi (x, imp, mshift_msrt d c ms, mshift_ctyp d (c + 1) t)

let rec mshift_ctyp_t d c : Comp.ctyp_t -> Comp.ctyp_t = function
  | Comp.TBox mt -> Comp.TBox (mshift_mtyp d c mt)
  | Comp.TArr (t1, t2) ->
      Comp.TArr (mshift_ctyp_t d c t1, mshift_ctyp_t d c t2)
  | Comp.TPi (x, imp, mt, t) ->
      Comp.TPi (x, imp, mshift_mtyp d c mt, mshift_ctyp_t d (c + 1) t)

let rec mshift_exp d c : Comp.exp -> Comp.exp = function
  | Comp.Var i -> Comp.Var i
  | Comp.RecConst r -> Comp.RecConst r
  | Comp.Box mo -> Comp.Box (mshift_mobj d c mo)
  | Comp.Fn (x, t, e) ->
      Comp.Fn (x, Option.map (mshift_ctyp d c) t, mshift_exp d c e)
  | Comp.App (e1, e2) -> Comp.App (mshift_exp d c e1, mshift_exp d c e2)
  | Comp.MLam (x, e) -> Comp.MLam (x, mshift_exp d (c + 1) e)
  | Comp.MApp (e, mo) -> Comp.MApp (mshift_exp d c e, mshift_mobj d c mo)
  | Comp.LetBox (x, e1, e2) ->
      Comp.LetBox (x, mshift_exp d c e1, mshift_exp d (c + 1) e2)
  | Comp.Case (inv, e, brs) ->
      Comp.Case (mshift_inv d c inv, mshift_exp d c e, List.map (mshift_branch d c) brs)

and mshift_inv d c (inv : Comp.inv) : Comp.inv =
  let n = List.length inv.Comp.inv_mctx in
  {
    Comp.inv_mctx = mshift_mctx_local d c inv.Comp.inv_mctx;
    Comp.inv_name = inv.Comp.inv_name;
    Comp.inv_msrt = mshift_msrt d (c + n) inv.Comp.inv_msrt;
    Comp.inv_body = mshift_ctyp d (c + n + 1) inv.Comp.inv_body;
  }

and mshift_branch d c (br : Comp.branch) : Comp.branch =
  let n = List.length br.Comp.br_mctx in
  {
    Comp.br_mctx = mshift_mctx_local d c br.Comp.br_mctx;
    Comp.br_pat = mshift_mobj d (c + n) br.Comp.br_pat;
    Comp.br_body = mshift_exp d (c + n) br.Comp.br_body;
  }

(** Shift a local meta-context extension [Ω₀] (innermost first) whose
    entries may refer both to each other and, beyond, to the ambient
    meta-context: entry at position [i] (0-based from innermost) is under
    [n - 1 - i] local binders. *)
and mshift_mctx_local d c (omega0 : Meta.mctx) : Meta.mctx =
  let n = List.length omega0 in
  List.mapi (fun i decl -> mshift_mdecl d (c + (n - 1 - i)) decl) omega0
