(** Higher-order pattern unification (§4.1; Pientka–Pfenning style,
    restricted to the decidable Miller-pattern fragment with block
    projections treated as distinct variables).

    A {e problem} fixes a meta-context [Ω] (innermost first) and a
    predicate selecting which of its variables are {e flexible}
    (solvable).  Unification instantiates flexible meta-, parameter-, and
    nothing-else variables; on success {!solve} extracts

    - the residual meta-context [Ω′] of still-unsolved flexible variables
      (plus all rigid ones), topologically ordered, and
    - the refining meta-substitution [ρ : Ω → Ω′],

    which is exactly the [(ρ, Ω′)] of the paper's branch rule
    [Ω ⊢ 𝒮 ≐ 𝒮₀ / (ρ, Ω′)].

    Sort unification is subsumption-aware in one direction: the [got]
    side may be a proper refinement of an embedding expected on the
    [want] side (see [Belr_core.Check_lfr.atomic_leq]).

    Outside the pattern fragment we fail with a diagnostic rather than
    search, as Beluga's core does. *)

open Belr_support
open Belr_syntax
open Belr_lf
open Belr_meta
open Lf

exception Unify of string

(* Telemetry: one counter per interesting unifier operation.  There is no
   postponement in this decidable pattern fragment — problems either solve
   or fail — so the counters are problems/solved-variables/occurs-checks/
   failures. *)

let c_problems = Telemetry.counter "unify.problems"

let c_solved = Telemetry.counter "unify.solved_vars"

let c_occurs = Telemetry.counter "unify.occurs_checks"

let c_failures = Telemetry.counter "unify.failures"

let fail fmt =
  Telemetry.bump c_failures;
  Format.kasprintf (fun s -> raise (Unify s)) fmt

(** Depth fuel for the term-level recursion and for the solution-resolution
    fixpoints: outside the pattern fragment a cyclic partial solution could
    otherwise loop or overflow the stack (see {!Belr_support.Limits}). *)
let depth = Limits.counter "unification"

type state = {
  sg : Sign.t;
  omega : Meta.mctx;  (** the full problem meta-context, innermost first *)
  flex : int -> bool;  (** which Ω-indices may be instantiated *)
  sol : Meta.mobj option array;  (** partial solution, index i ↦ sol.(i-1) *)
}

let make ~sg ~omega ~flex =
  Telemetry.bump c_problems;
  { sg; omega; flex; sol = Array.make (List.length omega) None }

let lookup_sol st i = if i <= Array.length st.sol then st.sol.(i - 1) else None

let set_sol st i o =
  if not (st.flex i) then
    Error.violation "unify: attempt to solve a rigid variable";
  Telemetry.bump c_solved;
  st.sol.(i - 1) <- Some o

let decl st i =
  match Shift.mctx_lookup_shifted st.omega i with
  | Some d -> d
  | None -> Error.violation "unify: unbound meta-variable %d" i

(* --- resolution: apply the current partial solution --------------------- *)

(** A meta-substitution view of the current solution (identity on
    unsolved variables). *)
let sol_msub st : Meta.msub =
  let n = Array.length st.sol in
  let rec build i =
    if i > n then Meta.MShift 0
    else
      let tail = build (i + 1) in
      match st.sol.(i - 1) with
      | Some o -> Meta.MDot (o, tail)
      | None ->
          let front =
            match decl st i with
            | Meta.MDTerm (_, psi, _) ->
                Meta.MOTerm
                  (Meta.hat_of_sctx psi, mk_root (mk_mvar i (mk_shift 0)) [])
            | Meta.MDParam (_, psi, _, _) ->
                Meta.MOParam (Meta.hat_of_sctx psi, mk_pvar i (mk_shift 0))
            | Meta.MDCtx _ ->
                Meta.MOCtx
                  {
                    Ctxs.s_var = Some i;
                    Ctxs.s_promoted = false;
                    Ctxs.s_decls = [];
                  }
            | Meta.MDSub (_, psi1, _) ->
                Meta.MOSub (Meta.hat_of_sctx psi1, mk_shift 0)
          in
          Meta.MDot (front, tail)
  in
  build 1

(** Fully resolve a term's solved meta-variables (to fixpoint: solutions
    may mention other solved variables). *)
let rec resolve_normal st (m : normal) : normal =
  let m' = Msub.normal 0 (sol_msub st) m in
  if Equal.normal m m' then m
  else Limits.guard depth (fun () -> resolve_normal st m')

let rec resolve_srt st (s : srt) : srt =
  let s' = Msub.srt 0 (sol_msub st) s in
  if Equal.srt s s' then s else Limits.guard depth (fun () -> resolve_srt st s')

let rec resolve_sctx st (psi : Ctxs.sctx) : Ctxs.sctx =
  let psi' = Msub.sctx 0 (sol_msub st) psi in
  if Equal.sctx psi psi' then psi
  else Limits.guard depth (fun () -> resolve_sctx st psi')

let rec resolve_mobj st (o : Meta.mobj) : Meta.mobj =
  let o' = Msub.mobj 0 (sol_msub st) o in
  if Equal.mobj o o' then o
  else Limits.guard depth (fun () -> resolve_mobj st o')

let rec resolve_sub st (s : sub) : sub =
  let s' = Msub.sub 0 (sol_msub st) s in
  if Equal.sub s s' then s else Limits.guard depth (fun () -> resolve_sub st s')

(** Weak-head resolution (PR 9): splice in the solution of a {e head}
    meta-variable and hereditarily reduce it against the spine, repeating
    until the head is rigid or unsolved.  Deep occurrences of solved
    variables stay in place — the rigid-rigid decomposition reaches them
    one constructor at a time, so a solved variable buried in an argument
    that the comparison never needs is never substituted out.  This is
    the unifier's analogue of {!Belr_lf.Whnf.whnf_normal}; the
    [BELR_NO_WHNF] ablation reverts to full {!resolve_normal} at every
    node. *)
let rec head_unfold st (m : normal) : normal =
  match m with
  | Root (MVar (u, s), sp) -> (
      match lookup_sol st u with
      | Some (Meta.MOTerm (_, n)) ->
          Limits.guard depth (fun () ->
              head_unfold st (Hsub.reduce (Hsub.sub_normal s n) sp))
      | Some _ -> raise (Unify "term meta-variable solved by a non-term")
      | None -> m)
  | _ -> m

let rec resolve_msrt st (s : Meta.msrt) : Meta.msrt =
  let s' = Msub.msrt 0 (sol_msub st) s in
  if Equal.msrt s s' then s
  else Limits.guard depth (fun () -> resolve_msrt st s')

(* --- occurs check ------------------------------------------------------- *)

let rec occurs_head (u : int) (h : head) : bool =
  match h with
  | Const _ | BVar _ -> false
  | MVar (v, s) | PVar (v, s) -> v = u || occurs_sub u s
  | Proj (b, _) -> occurs_head u b

and occurs_normal u = function
  | Lam (_, m) -> occurs_normal u m
  | Root (h, sp) -> occurs_head u h || List.exists (occurs_normal u) sp

and occurs_front u = function
  | Obj m -> occurs_normal u m
  | Tup t -> List.exists (occurs_normal u) t
  | Undef -> false

and occurs_sub u = function
  | Empty | Shift _ -> false
  | Dot (f, s) -> occurs_front u f || occurs_sub u s

(** Occurs check over the sharing structure: hash-consed terms are DAGs,
    and the plain structural descent above revisits shared subtrees as
    often as they are referenced.  With the store on, the verdict is
    memoized per node id for the one query variable (the table lives only
    for this check — solutions recorded later could change the answer). *)
let occurs_normal_shared (u : int) (m : normal) : bool =
  if not (store_enabled ()) then occurs_normal u m
  else begin
    let seen : (int, bool) Hashtbl.t = Hashtbl.create 64 in
    let rec go_n m =
      let id = normal_id m in
      match Hashtbl.find_opt seen id with
      | Some b -> b
      | None ->
          let b =
            match m with
            | Lam (_, n) -> go_n n
            | Root (h, sp) -> go_h h || List.exists go_n sp
          in
          Hashtbl.add seen id b;
          b
    and go_h = function
      | Const _ | BVar _ -> false
      | MVar (v, s) | PVar (v, s) -> v = u || go_s s
      | Proj (b, _) -> go_h b
    and go_s = function
      | Empty | Shift _ -> false
      | Dot (f, s) ->
          (match f with
          | Obj m -> go_n m
          | Tup t -> List.exists go_n t
          | Undef -> false)
          || go_s s
    in
    go_n m
  end

(* --- pattern substitutions and inversion -------------------------------- *)

(** View a pattern substitution as a finite map [range-var ↦ domain-index]
    plus a tail shift.  Entries must be distinct bare variables or
    projections. *)
type pat_entry = Pvar of int | Pproj of int * int

let rec pat_view (s : sub) (dom_i : int) (acc : (pat_entry * int) list) :
    ((pat_entry * int) list * int option) option =
  (* returns (entries, tail_shift); tail_shift None for Empty *)
  match s with
  | Empty -> Some (acc, None)
  | Shift n -> Some (acc, Some n)
  | Dot (Obj (Root (BVar j, [])), s') ->
      if List.exists (fun (e, _) -> e = Pvar j) acc then None
      else pat_view s' (dom_i + 1) ((Pvar j, dom_i) :: acc)
  | Dot (Obj (Root (Proj (BVar j, k), [])), s') ->
      if List.exists (fun (e, _) -> e = Pproj (j, k)) acc then None
      else pat_view s' (dom_i + 1) ((Pproj (j, k), dom_i) :: acc)
  | Dot (Obj (Lam _), _) ->
      (* η-long functional entries would require recognizing η-expansions
         of variables; outside the supported fragment *)
      None
  | Dot _ -> None

let is_identity (s : sub) : bool =
  match s with
  | Shift 0 -> true
  | _ -> false

(** Invert a pattern substitution on a term: [invert σ m] computes
    [σ⁻¹ m], failing when [m] mentions a variable outside the image of
    [σ].  For the common identity case this is the identity. *)
let invert_term (s : sub) (m : normal) : normal =
  if is_identity s then m
  else
    match pat_view s 1 [] with
    | None -> fail "substitution is not a pattern; cannot invert"
    | Some (entries, tail) ->
        let invert_var j =
          match List.assoc_opt (Pvar j) entries with
          | Some d -> mk_bvar d
          | None -> (
              match tail with
              | Some n when j > n ->
                  (* tail shift: range var j came from domain var j - n +
                     (number of explicit entries) *)
                  mk_bvar (j - n + List.length entries)
              | _ -> fail "variable escapes the pattern substitution")
        in
        let invert_proj j k =
          match List.assoc_opt (Pproj (j, k)) entries with
          | Some d -> mk_bvar d
          | None -> (
              match tail with
              | Some n when j > n -> mk_proj (mk_bvar (j - n + List.length entries)) k
              | _ -> fail "projection escapes the pattern substitution")
        in
        let rec go_head c = function
          | Const _ as h -> h
          | BVar j as h ->
              if j <= c then h else shift_entry c (invert_var (j - c))
          | Proj (BVar j, k) as h ->
              if j <= c then h else shift_entry c (invert_proj (j - c) k)
          | Proj (b, k) -> mk_proj (go_head c b) k
          | MVar (u, s') -> mk_mvar u (go_sub c s')
          | PVar (p, s') -> mk_pvar p (go_sub c s')
        and shift_entry c h = Shift.shift_head c 0 h
        and go_normal c = function
          | Lam (x, m) -> mk_lam x (go_normal (c + 1) m)
          | Root (h, sp) -> mk_root (go_head c h) (List.map (go_normal c) sp)
        and go_sub c = function
          | Empty as s -> s
          | Shift _ ->
              fail "shift under inverted substitution is not supported"
          | Dot (Obj m, s') -> mk_dot (Obj (go_normal c m)) (go_sub c s')
          | Dot (Tup t, s') -> mk_dot (Tup (List.map (go_normal c) t)) (go_sub c s')
          | Dot (Undef, s') -> mk_dot Undef (go_sub c s')
        in
        go_normal 0 m

(* --- the unifier --------------------------------------------------------- *)

let rec unify_normal st (m1 : normal) (m2 : normal) : unit =
  Fault.hit "unify";
  Limits.guard depth (fun () -> unify_normal_inner st m1 m2)

and unify_normal_inner st (m1 : normal) (m2 : normal) : unit =
  let m1, m2 =
    if Whnf.whnf_enabled () then (head_unfold st m1, head_unfold st m2)
    else (resolve_normal st m1, resolve_normal st m2)
  in
  if Equal.normal m1 m2 then ()
  else
  match (m1, m2) with
  | Lam (_, n1), Lam (_, n2) -> unify_normal st n1 n2
  | Root (MVar (u, s), []), m when st.flex u && lookup_sol st u = None ->
      solve_mvar st u s m
  | m, Root (MVar (u, s), []) when st.flex u && lookup_sol st u = None ->
      solve_mvar st u s m
  | Root (h1, sp1), Root (h2, sp2) ->
      unify_head st h1 h2;
      unify_spine st sp1 sp2
  | _ ->
      fail "cannot unify an abstraction with a neutral term"

and solve_mvar st (u : int) (s : sub) (m : normal) : unit =
  (* under lazy head-unfolding [m] may still mention solved variables
     whose solutions mention [u]; resolve fully before the occurs check
     and inversion (a fixpoint no-op when already resolved) *)
  let m = resolve_normal st m in
  Telemetry.bump c_occurs;
  if occurs_normal_shared u m then fail "occurs check failed";
  let m' = invert_term s m in
  let psi =
    match decl st u with
    | Meta.MDTerm (_, psi, _) -> resolve_sctx st psi
    | _ -> fail "term meta-variable expected"
  in
  set_sol st u (Meta.MOTerm (Meta.hat_of_sctx psi, m'))

and unify_head st (h1 : head) (h2 : head) : unit =
  match (h1, h2) with
  | Const c1, Const c2 when c1 = c2 -> ()
  | BVar i, BVar j when i = j -> ()
  | Proj (b1, k1), Proj (b2, k2) when k1 = k2 -> unify_proj_base st b1 b2
  | MVar (u1, s1), MVar (u2, s2) when u1 = u2 ->
      (* cheap structural check first; under lazy head-unfolding the subs
         may still mention solved variables, so resolve before failing *)
      if
        not
          (Equal.sub s1 s2
          || Equal.sub (resolve_sub st s1) (resolve_sub st s2))
      then fail "meta-variable under two different substitutions"
  | PVar (p1, s1), PVar (p2, s2) when p1 = p2 ->
      if
        not
          (Equal.sub s1 s2
          || Equal.sub (resolve_sub st s1) (resolve_sub st s2))
      then fail "parameter variable under two different substitutions"
  | _ -> fail "head mismatch"

and unify_proj_base st (b1 : head) (b2 : head) : unit =
  match (b1, b2) with
  | PVar (p, s), b when st.flex p && lookup_sol st p = None ->
      solve_pvar st p s b
  | b, PVar (p, s) when st.flex p && lookup_sol st p = None ->
      solve_pvar st p s b
  | _ -> unify_head st b1 b2

and solve_pvar st (p : int) (s : sub) (b : head) : unit =
  (match b with
  | BVar _ | PVar _ -> ()
  | _ -> fail "parameter variable can only be a block or parameter variable");
  Telemetry.bump c_occurs;
  if occurs_head p b then fail "occurs check failed (parameter)";
  let b' =
    if is_identity s then b
    else
      match invert_term s (mk_root b []) with
      | Root (b', []) -> b'
      | _ -> fail "parameter inversion produced a non-variable"
  in
  let psi =
    match decl st p with
    | Meta.MDParam (_, psi, _, _) -> resolve_sctx st psi
    | _ -> fail "parameter meta-variable expected"
  in
  set_sol st p (Meta.MOParam (Meta.hat_of_sctx psi, b'))

and unify_spine st sp1 sp2 =
  if List.length sp1 <> List.length sp2 then fail "spine length mismatch";
  List.iter2 (unify_normal st) sp1 sp2

let unify_sub st (s1 : sub) (s2 : sub) : unit =
  let rec go s1 s2 =
    match (s1, s2) with
    | Empty, Empty -> ()
    | Shift n, Shift m when n = m -> ()
    | Dot (f1, s1'), Dot (f2, s2') ->
        (match (f1, f2) with
        | Obj m1, Obj m2 -> unify_normal st m1 m2
        | Tup t1, Tup t2 -> unify_spine st t1 t2
        | Undef, Undef -> ()
        | _ -> fail "substitution front mismatch");
        go s1' s2'
    | _ -> fail "substitution mismatch"
  in
  go s1 s2

(** Unify sorts; [~leq] allows the left (got) side to be a proper
    refinement of an embedding on the right (want). *)
let rec unify_srt ?(leq = false) st (s1 : srt) (s2 : srt) : unit =
  let s1 = resolve_srt st s1 and s2 = resolve_srt st s2 in
  match (s1, s2) with
  | SAtom (c1, sp1), SAtom (c2, sp2) when c1 = c2 -> unify_spine st sp1 sp2
  | SEmbed (a1, sp1), SEmbed (a2, sp2) when a1 = a2 -> unify_spine st sp1 sp2
  | SAtom (c1, sp1), SEmbed (a2, sp2)
    when leq && (Sign.srt_entry st.sg c1).Sign.s_refines = a2 ->
      unify_spine st sp1 sp2
  | SPi (_, s1a, s1b), SPi (_, s2a, s2b) ->
      unify_srt ~leq st s1a s2a;
      unify_srt ~leq st s1b s2b
  | _ -> fail "sort mismatch"

let unify_sctx st (p1 : Ctxs.sctx) (p2 : Ctxs.sctx) : unit =
  let p1 = resolve_sctx st p1 and p2 = resolve_sctx st p2 in
  if p1.Ctxs.s_var <> p2.Ctxs.s_var then fail "context variable mismatch";
  if p1.Ctxs.s_promoted <> p2.Ctxs.s_promoted then fail "promotion mismatch";
  if List.length p1.Ctxs.s_decls <> List.length p2.Ctxs.s_decls then
    fail "context length mismatch";
  List.iter2
    (fun d1 d2 ->
      match (d1, d2) with
      | Ctxs.SCDecl (_, s1), Ctxs.SCDecl (_, s2) -> unify_srt st s1 s2
      | Ctxs.SCBlock (_, f1, ms1), Ctxs.SCBlock (_, f2, ms2) ->
          if not (Equal.selem f1 f2) then fail "world mismatch";
          unify_spine st ms1 ms2
      | _ -> fail "context entry mismatch")
    p1.Ctxs.s_decls p2.Ctxs.s_decls

let unify_msrt ?(leq = false) st (s1 : Meta.msrt) (s2 : Meta.msrt) : unit =
  match (resolve_msrt st s1, resolve_msrt st s2) with
  | Meta.MSTerm (p1, q1), Meta.MSTerm (p2, q2) ->
      unify_sctx st p1 p2;
      unify_srt ~leq st q1 q2
  | Meta.MSSub (p1, q1), Meta.MSSub (p2, q2) ->
      unify_sctx st p1 p2;
      unify_sctx st q1 q2
  | Meta.MSCtx h1, Meta.MSCtx h2 when h1 = h2 -> ()
  | Meta.MSParam (p1, f1, ms1), Meta.MSParam (p2, f2, ms2) ->
      unify_sctx st p1 p2;
      if not (Equal.selem f1 f2) then fail "world mismatch";
      unify_spine st ms1 ms2
  | _ -> fail "contextual sort mismatch"

let unify_mobj st (o1 : Meta.mobj) (o2 : Meta.mobj) : unit =
  match (resolve_mobj st o1, resolve_mobj st o2) with
  | Meta.MOTerm (_, m1), Meta.MOTerm (_, m2) -> unify_normal st m1 m2
  | Meta.MOSub (_, s1), Meta.MOSub (_, s2) -> unify_sub st s1 s2
  | Meta.MOCtx p1, Meta.MOCtx p2 -> unify_sctx st p1 p2
  | Meta.MOParam (_, b1), Meta.MOParam (_, b2) -> unify_proj_base st b1 b2
  | Meta.MOTerm (_, Root (MVar (u, s), [])), Meta.MOParam (h, b)
  | Meta.MOParam (h, b), Meta.MOTerm (_, Root (MVar (u, s), [])) ->
      ignore (u, s, h, b);
      fail "cannot unify a term with a parameter object"
  | _ -> fail "contextual object mismatch"

(** After matching, propagate world instantiations: a parameter variable
    solved to a concrete block variable determines the parameters of its
    declared world from the context entry (needed to ground pattern
    variables like the [A₀] of [#b : #\[Ψ ⊢ xeW A₀\]]). *)
let refine_solved_params (st : state) : unit =
  Array.iteri
    (fun i0 sol ->
      match sol with
      | Some (Meta.MOParam (_, BVar j)) -> (
          let i = i0 + 1 in
          match decl st i with
          | Meta.MDParam (_, psi, _, ms_p) -> (
              let psi = resolve_sctx st psi in
              match Ctxs.sctx_lookup psi j with
              | Some (Ctxs.SCBlock (_, _, ms_c)) -> (
                  let ms_c = List.map (Shift.shift_normal j 0) ms_c in
                  try
                    unify_spine st (List.map (resolve_normal st) ms_p) ms_c
                  with Unify _ -> ())
              | _ -> ())
          | _ -> ())
      | _ -> ())
    st.sol

(* --- extraction ----------------------------------------------------------- *)

(** Dependencies of a declaration on other Ω-variables. *)
let decl_deps (d : Meta.mdecl) : int list =
  let acc = ref [] in
  let add i = if not (List.mem i !acc) then acc := i :: !acc in
  let rec h_head = function
    | Const _ | BVar _ -> ()
    | MVar (u, s) | PVar (u, s) ->
        add u;
        h_sub s
    | Proj (b, _) -> h_head b
  and h_normal = function
    | Lam (_, m) -> h_normal m
    | Root (hd, sp) ->
        h_head hd;
        List.iter h_normal sp
  and h_sub = function
    | Empty | Shift _ -> ()
    | Dot (Obj m, s) ->
        h_normal m;
        h_sub s
    | Dot (Tup t, s) ->
        List.iter h_normal t;
        h_sub s
    | Dot (Undef, s) -> h_sub s
  and h_srt = function
    | SAtom (_, sp) | SEmbed (_, sp) -> List.iter h_normal sp
    | SPi (_, s1, s2) ->
        h_srt s1;
        h_srt s2
  and h_selem (f : Ctxs.selem) =
    List.iter (fun (_, s) -> h_srt s) f.Ctxs.f_params;
    List.iter (fun (_, s) -> h_srt s) f.Ctxs.f_block
  and h_sctx (psi : Ctxs.sctx) =
    (match psi.Ctxs.s_var with Some i -> add i | None -> ());
    List.iter
      (function
        | Ctxs.SCDecl (_, s) -> h_srt s
        | Ctxs.SCBlock (_, f, ms) ->
            h_selem f;
            List.iter h_normal ms)
      psi.Ctxs.s_decls
  in
  (match d with
  | Meta.MDTerm (_, psi, q) ->
      h_sctx psi;
      h_srt q
  | Meta.MDSub (_, p1, p2) ->
      h_sctx p1;
      h_sctx p2
  | Meta.MDCtx (_, _) -> ()
  | Meta.MDParam (_, psi, f, ms) ->
      h_sctx psi;
      h_selem f;
      List.iter h_normal ms);
  !acc

(** Extract [(ρ, Ω′)] after unification succeeded. *)
let solve (st : state) : Meta.msub * Meta.mctx =
  let n = Array.length st.sol in
  (* 1. fully resolve solutions and declarations in Ω-space *)
  let resolved_sol =
    Array.init n (fun i ->
        match st.sol.(i) with
        | Some o -> Some (resolve_mobj st o)
        | None -> None)
  in
  let resolved_decl i =
    (* declaration of variable i, transported into full Ω space and
       resolved *)
    let d = decl st i in
    match d with
    | Meta.MDTerm (nm, psi, q) ->
        Meta.MDTerm (nm, resolve_sctx st psi, resolve_srt st q)
    | Meta.MDSub (nm, p1, p2) ->
        Meta.MDSub (nm, resolve_sctx st p1, resolve_sctx st p2)
    | Meta.MDCtx _ -> d
    | Meta.MDParam (nm, psi, f, ms) ->
        Meta.MDParam
          ( nm,
            resolve_sctx st psi,
            Msub.selem 0 (sol_msub st) f,
            List.map (resolve_normal st) ms )
  in
  let unsolved = ref [] in
  for i = n downto 1 do
    if resolved_sol.(i - 1) = None then unsolved := i :: !unsolved
  done;
  (* 2. topologically order unsolved variables: a variable must come
     after (outside) everything its declaration depends on.  We seed with
     the original order (outermost = last) and iterate. *)
  let deps = Hashtbl.create 16 in
  List.iter
    (fun i ->
      let ds = decl_deps (resolved_decl i) in
      Hashtbl.replace deps i (List.filter (fun j -> List.mem j !unsolved) ds))
    !unsolved;
  (* order_out: outermost first *)
  let order_out = ref [] in
  let placed = Hashtbl.create 16 in
  let rec place i =
    if not (Hashtbl.mem placed i) then (
      Hashtbl.replace placed i ();
      (* place dependencies first (they must be more outer) *)
      List.iter place (try Hashtbl.find deps i with Not_found -> []);
      order_out := i :: !order_out)
  in
  (* visit in original outermost-to-innermost order for stability *)
  List.iter place (List.rev !unsolved);
  let order_out = List.rev !order_out in
  (* order_out: outermost first; Ω′ stores innermost first *)
  let omega'_order = List.rev order_out in
  let m = List.length omega'_order in
  (* remap: Ω index ↦ Ω′ index (1-based innermost) *)
  let remap i =
    let rec go k = function
      | [] -> Error.violation "unify: remap of a solved variable"
      | j :: rest -> if i = j then k else go (k + 1) rest
    in
    go 1 omega'_order
  in
  (* 3. variable-renaming msub r : Ω → Ω′ (dummy fronts at solved
     positions; resolved solutions never mention solved variables).  The
     fronts live in Ω′ space: indices and hat roots are remapped.  Context
     variables are never solved, so remapping hat roots is total. *)
  let remap_hat (h : Meta.hat) : Meta.hat =
    match h.Meta.hat_var with
    | Some i -> { h with Meta.hat_var = Some (remap i) }
    | None -> h
  in
  let var_front i =
    match resolved_decl i with
    | Meta.MDTerm (_, psi, _) ->
        Meta.MOTerm
          ( remap_hat (Meta.hat_of_sctx psi),
            mk_root (mk_mvar (remap i) (mk_shift 0)) [] )
    | Meta.MDParam (_, psi, _, _) ->
        Meta.MOParam (remap_hat (Meta.hat_of_sctx psi), mk_pvar (remap i) (mk_shift 0))
    | Meta.MDCtx _ ->
        Meta.MOCtx
          {
            Ctxs.s_var = Some (remap i);
            Ctxs.s_promoted = false;
            Ctxs.s_decls = [];
          }
    | Meta.MDSub (_, psi1, _) ->
        Meta.MOSub (remap_hat (Meta.hat_of_sctx psi1), mk_shift 0)
  in
  let dummy =
    Meta.MOCtx { Ctxs.s_var = None; Ctxs.s_promoted = false; Ctxs.s_decls = [] }
  in
  let r =
    let rec build i =
      if i > n then Meta.MShift m
      else
        Meta.MDot
          ( (if resolved_sol.(i - 1) = None then var_front i else dummy),
            build (i + 1) )
    in
    build 1
  in
  (* 4. final ρ : Ω → Ω′ *)
  let rho =
    let rec build i =
      if i > n then Meta.MShift m
      else
        let front =
          match resolved_sol.(i - 1) with
          | None -> var_front i
          | Some o -> Msub.mobj 0 r o
        in
        Meta.MDot (front, build (i + 1))
    in
    build 1
  in
  (* 5. Ω′ declarations: rename into Ω′ space, then relativize each to its
     own position *)
  let omega' =
    List.mapi
      (fun k i ->
        (* k is 0-based from innermost; entry must be valid outside its
           position: shift down by (k + 1) *)
        let d = Msub.mdecl 0 r (resolved_decl i) in
        Shift.mshift_mdecl (-(k + 1)) 0 d)
      omega'_order
  in
  (rho, omega')
