(** A minimal, dependency-free JSON tree: an emitter and a parser.

    The telemetry layer renders Chrome trace files and machine-readable
    performance reports ([--trace], [--profile], [bench --json]) through
    this module, and the test suite parses those artifacts back to
    validate them — so both directions live here rather than behind an
    external library the toolchain does not ship.

    The emitter always produces valid JSON (strings are escaped, non-finite
    floats are emitted as [null]); the parser accepts standard JSON
    (RFC 8259), decoding [\uXXXX] escapes to UTF-8. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- emission ---------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

(** Emit [j] into [buf]; [indent < 0] means compact (one line). *)
let rec emit buf ~indent ~level (j : t) : unit =
  let pad l =
    if indent >= 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (indent * l) ' ')
    end
  in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_nan f || Float.is_integer (f /. 0.) then
        (* NaN and infinities are not JSON; degrade to null *)
        Buffer.add_string buf "null"
      else Buffer.add_string buf (float_to_string f)
  | String s -> escape_to buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          pad (level + 1);
          emit buf ~indent ~level:(level + 1) item)
        items;
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          pad (level + 1);
          escape_to buf k;
          Buffer.add_string buf (if indent >= 0 then ": " else ":");
          emit buf ~indent ~level:(level + 1) v)
        fields;
      pad level;
      Buffer.add_char buf '}'

let to_string ?(compact = false) (j : t) : string =
  let buf = Buffer.create 1024 in
  emit buf ~indent:(if compact then -1 else 2) ~level:0 j;
  Buffer.contents buf

(** Write [j] to [path] (pretty-printed, trailing newline), atomically
    enough for build artifacts: errors surface as [Sys_error]. *)
let write_file (path : string) (j : t) : unit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string j);
      output_char oc '\n')

(* --- parsing ----------------------------------------------------------- *)

exception Parse_error of int * string
(** Byte offset and message. *)

let parse_fail pos fmt =
  Format.kasprintf (fun m -> raise (Parse_error (pos, m))) fmt

type parser_state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> parse_fail st.pos "expected %c, found %c" c c'
  | None -> parse_fail st.pos "expected %c, found end of input" c

let parse_literal st word (v : t) : t =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    v
  end
  else parse_fail st.pos "invalid literal (expected %s)" word

let hex_digit pos c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> parse_fail pos "invalid hex digit %c" c

let parse_string_body st : string =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> parse_fail st.pos "unterminated string"
    | Some '"' ->
        advance st;
        Buffer.contents buf
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> parse_fail st.pos "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if st.pos + 4 > String.length st.src then
                  parse_fail st.pos "truncated \\u escape";
                let code =
                  let d i = hex_digit st.pos st.src.[st.pos + i] in
                  (d 0 * 4096) + (d 1 * 256) + (d 2 * 16) + d 3
                in
                st.pos <- st.pos + 4;
                Buffer.add_utf_8_uchar buf
                  (if Uchar.is_valid code then Uchar.of_int code
                   else Uchar.rep)
            | c -> parse_fail st.pos "invalid escape \\%c" c);
            go ())
    | Some c when Char.code c < 0x20 ->
        parse_fail st.pos "unescaped control character in string"
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ()

let parse_number st : t =
  let start = st.pos in
  let is_float = ref false in
  let consume () = advance st in
  (match peek st with Some '-' -> consume () | _ -> ());
  let rec digits () =
    match peek st with
    | Some '0' .. '9' ->
        consume ();
        digits ()
    | _ -> ()
  in
  digits ();
  (match peek st with
  | Some '.' ->
      is_float := true;
      consume ();
      digits ()
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
      is_float := true;
      consume ();
      (match peek st with Some ('+' | '-') -> consume () | _ -> ());
      digits ()
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> parse_fail start "invalid number %s" text
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        (* out of int range: keep it as a float *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> parse_fail start "invalid number %s" text)

let rec parse_value st : t =
  skip_ws st;
  match peek st with
  | None -> parse_fail st.pos "unexpected end of input"
  | Some 'n' -> parse_literal st "null" Null
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some '"' -> String (parse_string_body st)
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List (List.rev (v :: acc))
          | _ -> parse_fail st.pos "expected , or ] in array"
        in
        items []
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else
        let field () =
          skip_ws st;
          let k = parse_string_body st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields (kv :: acc)
          | Some '}' ->
              advance st;
              Obj (List.rev (kv :: acc))
          | _ -> parse_fail st.pos "expected , or } in object"
        in
        fields []
  | Some c -> parse_fail st.pos "unexpected character %c" c

(** Parse a complete JSON document (trailing whitespace allowed). *)
let parse (src : string) : (t, string) result =
  let st = { src; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length src then
        Error (Fmt.str "offset %d: trailing garbage after JSON value" st.pos)
      else Ok v
  | exception Parse_error (pos, msg) -> Error (Fmt.str "offset %d: %s" pos msg)

(* --- accessors (for tests and tooling) --------------------------------- *)

let member (k : string) : t -> t option = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_list : t -> t list option = function List l -> Some l | _ -> None

let to_float : t -> float option = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_int : t -> int option = function Int i -> Some i | _ -> None

let to_str : t -> string option = function String s -> Some s | _ -> None
