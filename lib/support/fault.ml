(** Fault injection for robustness testing.

    The checking daemon ([belr serve]) promises crash-only requests: any
    exception escaping a kernel subsystem must surface as a structured
    error reply, never corrupt later requests.  That promise is only
    testable if the kernel can be made to fail {e on demand}, at a real
    interior point — not at the protocol boundary where failure is easy.

    This module plants named {e sites} in the kernel hot paths
    ([store-intern] in the hash-consing store, [hsub] in hereditary
    substitution, [unify] in the unifier, [serve-dispatch] at the serve
    request dispatcher — the one spot where a fault reaches the
    crash-only B0002 wrapper instead of per-declaration recovery).
    Arming
    [BELR_FAULT=<site>:<n>] (environment variable, read at startup) or
    calling {!arm} makes the [n]-th hit of that site raise {!Injected}.

    The trigger is {e one-shot}: after firing, the hook disarms itself.
    That makes abuse scripts deterministic — the injected fault poisons
    exactly one request, and the assertion "the next request on a fresh
    session succeeds" cannot be defeated by the fault re-firing.

    The disarmed fast path is one mutable-bool load per site hit, cheap
    enough to leave in release builds. *)

exception Injected of string
(** [Injected site]: the armed fault fired at kernel site [site].  The
    diagnostics engine renders it as the stable [B0003] bug code. *)

let armed = ref false

let target_site = ref ""

let remaining = ref 0

(** Arm the hook: the [n]-th hit (1-based; [n <= 1] means the next hit)
    of site [site] raises {!Injected}, then the hook disarms. *)
let arm ~site ~n =
  armed := true;
  target_site := site;
  remaining := max 1 n

let disarm () =
  armed := false;
  target_site := "";
  remaining := 0

(** Is the hook currently armed (for [site], if given)? *)
let is_armed ?site () =
  !armed && match site with None -> true | Some s -> s = !target_site

(** Kernel sites call [hit "name"] on their hot path.  No-op unless the
    hook is armed for that name. *)
let hit (site : string) : unit =
  if !armed && String.equal site !target_site then begin
    let n = !remaining - 1 in
    if n <= 0 then begin
      disarm ();
      raise (Injected site)
    end
    else remaining := n
  end

(* BELR_FAULT=<site>:<n> arms the hook at module initialization (n
   defaults to 1 when absent or unparsable); malformed values are
   ignored — a robustness hook must not itself crash startup. *)
let () =
  match Sys.getenv_opt "BELR_FAULT" with
  | None | Some "" -> ()
  | Some spec -> (
      match String.index_opt spec ':' with
      | None -> arm ~site:spec ~n:1
      | Some i ->
          let site = String.sub spec 0 i in
          let n =
            match
              int_of_string_opt
                (String.sub spec (i + 1) (String.length spec - i - 1))
            with
            | Some n -> n
            | None -> 1
          in
          if site <> "" then arm ~site ~n)
