(** Error reporting.

    All user-facing failures in the checker, elaborator, and evaluator are
    raised as {!Belr_error} carrying an optional location and a rendered
    message.  Internal invariant violations use {!violation} instead, which
    marks a bug in belr rather than in user input.  {!Depends_on_failed} is
    raised by name lookup when a declaration references a name whose own
    declaration failed to check (see {!Diagnostics.recover}): it lets the
    fault-tolerant pipeline report a single "depends on a failed
    declaration" note instead of a cascade of spurious errors. *)

exception Belr_error of Loc.t * string

exception Violation of string

exception Depends_on_failed of string
(** The argument is the referenced name whose declaration failed. *)

(** Raise a user-facing error at location [loc]. *)
let raise_at : 'a. Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a =
 fun loc fmt -> Format.kasprintf (fun s -> raise (Belr_error (loc, s))) fmt

(** Raise a user-facing error with no location. *)
let raise_msg fmt = raise_at Loc.ghost fmt

(** Report a broken internal invariant (a belr bug, not a user error). *)
let violation : 'a. ('a, Format.formatter, unit, 'b) format4 -> 'a =
 fun fmt -> Format.kasprintf (fun s -> raise (Violation s)) fmt

let pp ppf = function
  | Belr_error (loc, msg) when Loc.is_ghost loc -> Fmt.pf ppf "error: %s" msg
  | Belr_error (loc, msg) -> Fmt.pf ppf "%a: error: %s" Loc.pp loc msg
  | Violation msg -> Fmt.pf ppf "internal violation (belr bug): %s" msg
  | Depends_on_failed name ->
      Fmt.pf ppf "error: %s depends on a declaration that failed to check"
        name
  | Limits.Limit_exceeded (what, limit) ->
      Fmt.pf ppf
        "error: resource limit exceeded: %s passed the depth limit %d" what
        limit
  | Stack_overflow -> Fmt.pf ppf "error: resource limit exceeded: OCaml stack"
  | Out_of_memory -> Fmt.pf ppf "error: out of memory"
  | Sys_error msg -> Fmt.pf ppf "error: system error: %s" msg
  | exn -> Fmt.pf ppf "exception: %s" (Printexc.to_string exn)

(** Run [f ()], turning belr exceptions — and the recoverable runtime
    failures [Stack_overflow], [Out_of_memory], and [Sys_error] — into
    [Error rendered_message].  Depth counters are reset on the way out so
    a partially-unwound recursion cannot starve the next [protect]. *)
let protect f =
  match f () with
  | v -> Ok v
  | exception
      (( Belr_error _ | Violation _ | Depends_on_failed _
       | Limits.Limit_exceeded _ | Stack_overflow | Out_of_memory
       | Sys_error _ ) as e) ->
      Limits.reset ();
      Error (Fmt.str "%a" pp e)
