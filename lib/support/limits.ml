(** Resource guards for the unbounded recursions of the checker.

    Hereditary substitution, η-expansion, and unification all terminate on
    well-formed inputs, but adversarial or ill-typed inputs can drive them
    arbitrarily deep.  Rather than crash with [Stack_overflow] (or hang),
    each such recursion threads a {!counter} through {!guard}, which
    raises {!Limit_exceeded} once the configurable {!max_depth} is passed.
    The diagnostics engine renders that exception as the stable [E0901]
    "resource limit exceeded" error and recovers at the declaration
    boundary.

    The limit is a single process-wide knob (the CLI's [--max-depth]); the
    per-subsystem counters exist so the rendered diagnostic can name the
    recursion that blew up.

    Two further guards serve the long-running daemon ([belr serve]),
    where "deep" is not the only way a request can run away — it can also
    be {e slow}:

    - a {e wall-clock deadline} ({!arm_deadline}): {!poll} raises
      {!Deadline_exceeded} once the monotonic clock passes it.  Every
      {!guard} polls, so any guarded recursion is interruptible; the
      clock is only read every {!poll_mask}+1 polls, keeping the hot path
      at an integer increment.
    - a {e step budget} ({!set_step_budget}): a hard cap on guarded calls
      per request, for callers that want determinism independent of
      machine speed.

    Both render as the stable [E0903] diagnostic and are cleared between
    requests; neither is armed in batch mode.

    Counter depths and peaks are process-global by default.  A daemon
    hosting several independent sessions snapshots them into a {!state}
    per session ({!capture}/{!install}), so one session's depth-guard
    trip or peak watermarks cannot leak into another's telemetry. *)

let default_max_depth = 10_000

let max_depth = ref default_max_depth

(** Set the depth budget shared by every guarded recursion (clamped to be
    at least 1). *)
let set_max_depth n = max_depth := max 1 n

exception Limit_exceeded of string * int
(** [Limit_exceeded (subsystem, limit)]: the named recursion passed
    [limit] nested guarded calls. *)

type counter = {
  c_name : string;
  mutable c_depth : int;
  mutable c_peak : int;
      (** high-water mark of [c_depth] since the last {!reset_peaks};
          reported by the telemetry layer as a fraction of the budget *)
}

let registry : counter list ref = ref []

(** Register a named depth counter (one per guarded subsystem). *)
let counter name =
  let c = { c_name = name; c_depth = 0; c_peak = 0 } in
  registry := c :: !registry;
  c

(** Reset every counter's depth to zero (peaks are kept — they are run
    statistics, not budget state).  Error recovery calls this after
    catching an exception so that a partially-unwound recursion cannot
    poison the depth budget of the next declaration. *)
let reset () = List.iter (fun c -> c.c_depth <- 0) !registry

(** Clear the peak-depth watermarks (start of a telemetry run). *)
let reset_peaks () = List.iter (fun c -> c.c_peak <- 0) !registry

(** Peak observed depth per guarded subsystem, as [(name, peak)]. *)
let peaks () = List.map (fun c -> (c.c_name, c.c_peak)) !registry

(* --- wall-clock deadlines and step budgets ---------------------------- *)

(* Same monotonic clock as the telemetry layer (clock_stubs.c). *)
external now_ns : unit -> int64 = "belr_monotonic_clock_ns"

exception Deadline_exceeded of int
(** [Deadline_exceeded ms]: the request's wall-clock deadline of [ms]
    milliseconds passed mid-computation.  Rendered as [E0903]. *)

exception Budget_exceeded of int
(** [Budget_exceeded n]: the request performed more than [n] guarded
    steps.  Rendered as [E0903]. *)

(* Process-lifetime monotone count of resource-guard trips (depth limit,
   step budget, wall-clock deadline).  The metrics layer exports it as the
   [limits.trips] gauge, so a fleet operator sees guard pressure without
   parsing per-reply diagnostics. *)
let trips = ref 0

let trip_count () = !trips

(** Count a resource-guard trip recorded outside this module (e.g. the
    evaluator's fuel check). *)
let trip () = incr trips

(* --- evaluation fuel ---------------------------------------------------- *)

exception Fuel_exhausted of int
(** [Fuel_exhausted n]: the evaluator performed more than [n] steps.
    Rendered as the stable [E0905] diagnostic. *)

let default_eval_fuel = 1_000_000

let eval_fuel = ref default_eval_fuel

(** Set the evaluation step budget (the CLI's [--max-eval-steps]; clamped
    to be at least 1). *)
let set_eval_fuel n = eval_fuel := max 1 n

let eval_fuel_limit () = !eval_fuel

let deadline : int64 option ref = ref None

let deadline_ms_armed = ref 0

let step_budget : int option ref = ref None

let steps = ref 0

(** Clock reads happen once per [poll_mask + 1] polls (a power of two). *)
let poll_mask = 255

(** Arm a wall-clock deadline [ms] milliseconds from now and restart the
    step count.  [ms <= 0] means "already expired" (useful for tests). *)
let arm_deadline ~ms =
  deadline := Some (Int64.add (now_ns ()) (Int64.mul (Int64.of_int ms) 1_000_000L));
  deadline_ms_armed := ms;
  steps := 0

(** Cap guarded steps until the next {!clear_deadline}. *)
let set_step_budget n =
  step_budget := Some (max 1 n);
  steps := 0

(** Disarm both the deadline and the step budget (end of a request). *)
let clear_deadline () =
  deadline := None;
  step_budget := None;
  steps := 0

(** Has the armed deadline passed?  (Unconditional clock read — for
    coarse boundaries such as "before the next declaration", not hot
    loops.)  [false] when no deadline is armed. *)
let expired () =
  match !deadline with
  | Some d -> Int64.compare (now_ns ()) d > 0
  | None -> false

(** One guarded step: count it against the budget and, periodically,
    against the clock.  Called by every {!guard}; safe (and cheap) to
    call from any long-running loop that wants to be interruptible. *)
let poll () =
  let n = !steps + 1 in
  steps := n;
  (match !step_budget with
  | Some b when n > b ->
      incr trips;
      raise (Budget_exceeded b)
  | _ -> ());
  if n land poll_mask = 0 && expired () then begin
    incr trips;
    raise (Deadline_exceeded !deadline_ms_armed)
  end

(* --- per-session counter state ---------------------------------------- *)

(** A saved image of every registered counter's depth and peak.  A fresh
    state is all-zero; {!capture} overwrites it from the live counters and
    {!install} writes it back (zeroing counters registered since the
    capture), so a daemon can give each session its own depth/peak world
    while {!guard} keeps its single-word hot path. *)
type state = { mutable saved : (counter * int * int) list }

let fresh_state () = { saved = [] }

(** Save the live depths and peaks into [st]. *)
let capture st =
  st.saved <- List.map (fun c -> (c, c.c_depth, c.c_peak)) !registry

(** Make [st] the live counter world. *)
let install st =
  List.iter
    (fun c ->
      c.c_depth <- 0;
      c.c_peak <- 0)
    !registry;
  List.iter
    (fun (c, d, p) ->
      c.c_depth <- d;
      c.c_peak <- p)
    st.saved

(** Zero a saved state (session reset). *)
let clear_state st = st.saved <- []

(** [guard c f] runs [f ()] with [c] one level deeper, raising
    {!Limit_exceeded} when the budget is exhausted (and
    {!Deadline_exceeded}/{!Budget_exceeded} via {!poll} when a request
    deadline or step budget is armed).  The counter is restored even when
    [f] raises, so fail-fast callers that catch the error keep an
    accurate depth. *)
let guard c f =
  poll ();
  if c.c_depth >= !max_depth then begin
    incr trips;
    raise (Limit_exceeded (c.c_name, !max_depth))
  end;
  let d = c.c_depth + 1 in
  c.c_depth <- d;
  if d > c.c_peak then c.c_peak <- d;
  match f () with
  | r ->
      c.c_depth <- d - 1;
      r
  | exception e ->
      c.c_depth <- d - 1;
      raise e
