(** Resource guards for the unbounded recursions of the checker.

    Hereditary substitution, η-expansion, and unification all terminate on
    well-formed inputs, but adversarial or ill-typed inputs can drive them
    arbitrarily deep.  Rather than crash with [Stack_overflow] (or hang),
    each such recursion threads a {!counter} through {!guard}, which
    raises {!Limit_exceeded} once the configurable {!max_depth} is passed.
    The diagnostics engine renders that exception as the stable [E0901]
    "resource limit exceeded" error and recovers at the declaration
    boundary.

    The limit is a single process-wide knob (the CLI's [--max-depth]); the
    per-subsystem counters exist so the rendered diagnostic can name the
    recursion that blew up. *)

let default_max_depth = 10_000

let max_depth = ref default_max_depth

(** Set the depth budget shared by every guarded recursion (clamped to be
    at least 1). *)
let set_max_depth n = max_depth := max 1 n

exception Limit_exceeded of string * int
(** [Limit_exceeded (subsystem, limit)]: the named recursion passed
    [limit] nested guarded calls. *)

type counter = {
  c_name : string;
  mutable c_depth : int;
  mutable c_peak : int;
      (** high-water mark of [c_depth] since the last {!reset_peaks};
          reported by the telemetry layer as a fraction of the budget *)
}

let registry : counter list ref = ref []

(** Register a named depth counter (one per guarded subsystem). *)
let counter name =
  let c = { c_name = name; c_depth = 0; c_peak = 0 } in
  registry := c :: !registry;
  c

(** Reset every counter's depth to zero (peaks are kept — they are run
    statistics, not budget state).  Error recovery calls this after
    catching an exception so that a partially-unwound recursion cannot
    poison the depth budget of the next declaration. *)
let reset () = List.iter (fun c -> c.c_depth <- 0) !registry

(** Clear the peak-depth watermarks (start of a telemetry run). *)
let reset_peaks () = List.iter (fun c -> c.c_peak <- 0) !registry

(** Peak observed depth per guarded subsystem, as [(name, peak)]. *)
let peaks () = List.map (fun c -> (c.c_name, c.c_peak)) !registry

(** [guard c f] runs [f ()] with [c] one level deeper, raising
    {!Limit_exceeded} when the budget is exhausted.  The counter is
    restored even when [f] raises, so fail-fast callers that catch the
    error keep an accurate depth. *)
let guard c f =
  if c.c_depth >= !max_depth then
    raise (Limit_exceeded (c.c_name, !max_depth));
  let d = c.c_depth + 1 in
  c.c_depth <- d;
  if d > c.c_peak then c.c_peak <- d;
  match f () with
  | r ->
      c.c_depth <- d - 1;
      r
  | exception e ->
      c.c_depth <- d - 1;
      raise e
