(** The telemetry layer: hierarchical spans, named counters, and three
    renderers over the same recorded state.

    The checking pipeline is instrumented at two granularities:

    - {e spans} ({!with_span}) around pipeline phases — per file, per
      declaration, and per phase (parse → elaborate → LF check → sort
      check → conservativity re-check) — timed with a monotonic clock and
      recorded into a bounded ring buffer;
    - {e counters} ({!counter}/{!bump}) in the hot kernels (hereditary
      substitution, η-expansion, unification), plus the peak-depth
      watermarks already tracked by {!Limits}.

    Renderers (all pure over the recorded state):

    - {!pp_stats} — the human [--stats] summary table (stderr);
    - {!trace_json} — Chrome trace-event JSON ([--trace FILE]), loadable
      in [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto};
    - {!profile_json} — the machine-readable [--profile FILE] report
      (per-phase wall time, counter totals, watermarks), the format the
      committed [BENCH_*.json] trajectory uses.

    {b Zero-cost when disabled.}  All state is pre-registered; the
    recording paths check a single [enabled] flag and allocate nothing
    when it is off.  Span call sites do build a closure for the scoped
    body, so spans belong on phase boundaries (per file / declaration),
    never in per-node recursions — those use {!bump}, which is a flag
    check and an integer store.  The layer is deliberately not
    thread-safe; it observes the single-threaded checking pipeline. *)

external now_ns : unit -> int64 = "belr_monotonic_clock_ns"

let on = ref false

let enabled () = !on

(** Turn recording on or off.  Enabling does not clear previous state;
    call {!reset} first for a fresh run. *)
let set_enabled b = on := b

(* --- counters ----------------------------------------------------------- *)

type counter = { ct_name : string; mutable ct_total : int }

let counters : counter list ref = ref []

(** Register a named counter (module-initialization time, one per
    operation of interest).  Idempotent: re-registering a name returns
    the existing counter, so two modules naming the same quantity share
    one total instead of splitting it across duplicate rows. *)
let counter name =
  match List.find_opt (fun c -> c.ct_name = name) !counters with
  | Some c -> c
  | None ->
      let c = { ct_name = name; ct_total = 0 } in
      counters := c :: !counters;
      c

let bump c = if !on then c.ct_total <- c.ct_total + 1

let add c n = if !on then c.ct_total <- c.ct_total + n

let counter_total c = c.ct_total

(** All registered counters as [(name, total)], sorted by name. *)
let counter_totals () =
  List.sort compare (List.map (fun c -> (c.ct_name, c.ct_total)) !counters)

(* --- extension sections ------------------------------------------------- *)

(** Layers below the pipeline (e.g. the hash-consing term store in
    [Belr_syntax], whose library this module cannot depend on) register a
    named section of report fields here at module-initialization time.
    Providers registered under the same section name are merged into one
    object, so the store and the substitution memo table — which live in
    different libraries — can contribute to a single ["store"] section.
    Providers are pure reads over always-on state: they are consulted only
    when a report is rendered, never on the hot path. *)

let sections : (string * (unit -> (string * Json.t) list)) list ref = ref []

let register_section name provider = sections := !sections @ [ (name, provider) ]

(** Sections with same-name providers merged, in registration order. *)
let section_reports () : (string * (string * Json.t) list) list =
  List.fold_left
    (fun acc (name, provider) ->
      let fields = provider () in
      if List.mem_assoc name acc then
        List.map (fun (n, f) -> if n = name then (n, f @ fields) else (n, f)) acc
      else acc @ [ (name, fields) ])
    [] !sections

(* --- spans -------------------------------------------------------------- *)

type event = {
  mutable ev_name : string;
  mutable ev_arg : string;  (** detail ("" = none): file path, declaration *)
  mutable ev_start_ns : int64;
  mutable ev_dur_ns : int64;
  mutable ev_depth : int;  (** nesting depth at which the span ran *)
  mutable ev_rid : string;
      (** request id the span ran under ("" = outside any request); set
          by the serve layer via {!set_request_id}, surfaced as
          [args.request_id] in the trace renderer so spans can be joined
          to replies and log lines *)
}

(* --- request correlation ------------------------------------------------ *)

let request_id = ref ""

(** Stamp every span recorded from now on with [rid] (the serve layer
    brackets each request with this; [""] clears it). *)
let set_request_id rid = request_id := rid

let clear_request_id () = request_id := ""

let current_request_id () = !request_id

(** Completed spans, oldest-first once the buffer wraps. *)
let default_capacity = 1 lsl 16

let ring : event array ref = ref [||]

let ring_next = ref 0 (* total events ever recorded *)

let depth = ref 0

let epoch = ref 0L (* monotonic stamp of the last [reset] *)

(** Per-phase aggregation, independent of the ring capacity. *)
type agg = { mutable ag_count : int; mutable ag_total_ns : int64 }

let aggregates : (string, agg) Hashtbl.t = Hashtbl.create 32

let root_total_ns = ref 0L (* total time covered by depth-0 spans *)

let ensure_ring () =
  if Array.length !ring = 0 then
    ring :=
      Array.init default_capacity (fun _ ->
          { ev_name = ""; ev_arg = ""; ev_start_ns = 0L; ev_dur_ns = 0L;
            ev_depth = 0; ev_rid = "" })

(** Clear all recorded state: events, aggregates, counter totals, and the
    {!Limits} peak-depth watermarks; re-stamps the trace epoch. *)
let reset () =
  ensure_ring ();
  ring_next := 0;
  depth := 0;
  Hashtbl.reset aggregates;
  root_total_ns := 0L;
  List.iter (fun c -> c.ct_total <- 0) !counters;
  Limits.reset_peaks ();
  epoch := now_ns ()

let record name arg start_ns dur_ns d =
  ensure_ring ();
  let r = !ring in
  let ev = r.(!ring_next mod Array.length r) in
  ev.ev_name <- name;
  ev.ev_arg <- arg;
  ev.ev_start_ns <- start_ns;
  ev.ev_dur_ns <- dur_ns;
  ev.ev_depth <- d;
  ev.ev_rid <- !request_id;
  incr ring_next;
  (let a =
     match Hashtbl.find_opt aggregates name with
     | Some a -> a
     | None ->
         let a = { ag_count = 0; ag_total_ns = 0L } in
         Hashtbl.replace aggregates name a;
         a
   in
   a.ag_count <- a.ag_count + 1;
   a.ag_total_ns <- Int64.add a.ag_total_ns dur_ns);
  if d = 0 then root_total_ns := Int64.add !root_total_ns dur_ns

(** [with_span ?arg name f] times [f ()] as a span named [name] (with
    optional detail [arg], e.g. the file or declaration being processed).
    The span is closed — and recorded — even when [f] raises, so a failed
    declaration under {!Diagnostics.recover} still contributes its time.
    When telemetry is disabled this is [f ()] after one flag check. *)
let with_span : 'a. ?arg:string -> string -> (unit -> 'a) -> 'a =
 fun ?(arg = "") name f ->
  if not !on then f ()
  else begin
    let d = !depth in
    depth := d + 1;
    let t0 = now_ns () in
    let finish () =
      let dur = Int64.sub (now_ns ()) t0 in
      depth := d;
      record name arg t0 dur d
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

(** Completed spans in completion order (oldest first), oldest events
    dropped once the ring wraps. *)
let events () : event list =
  let r = !ring in
  let cap = Array.length r in
  if cap = 0 then []
  else begin
    let n = !ring_next in
    let first = if n > cap then n - cap else 0 in
    let out = ref [] in
    for i = n - 1 downto first do
      out := r.(i mod cap) :: !out
    done;
    !out
  end

let events_recorded () = !ring_next

let events_dropped () = max 0 (!ring_next - Array.length !ring)

(** [events_since mark] — completed spans recorded at or after position
    [mark] (an earlier {!events_recorded} reading), oldest first, plus a
    truncation flag: [true] when the ring wrapped past [mark], i.e. the
    oldest spans of the interval were overwritten and the list is
    partial.  This is how the serve layer extracts one request's span
    tree for slow-request logging without re-scanning the whole ring. *)
let events_since (mark : int) : event list * bool =
  let r = !ring in
  let cap = Array.length r in
  if cap = 0 then ([], mark < !ring_next)
  else begin
    let n = !ring_next in
    let oldest = max 0 (n - cap) in
    let first = max mark oldest in
    let out = ref [] in
    for i = n - 1 downto first do
      out := r.(i mod cap) :: !out
    done;
    (!out, mark < oldest)
  end

(* --- renderers ---------------------------------------------------------- *)

(** Completed spans recorded under [name] since the last {!reset}.  The
    serve layer reads deltas of this as its incremental-checking oracle
    ("how many "decl" spans did this request run?"). *)
let phase_count (name : string) : int =
  match Hashtbl.find_opt aggregates name with
  | Some a -> a.ag_count
  | None -> 0

let phase_rows () =
  Hashtbl.fold (fun name a acc -> (name, a.ag_count, a.ag_total_ns) :: acc)
    aggregates []
  |> List.sort (fun (_, _, a) (_, _, b) -> Int64.compare b a)

let pp_ns ppf (ns : int64) =
  let f = Int64.to_float ns in
  if f >= 1e9 then Fmt.pf ppf "%8.3f s " (f /. 1e9)
  else if f >= 1e6 then Fmt.pf ppf "%8.2f ms" (f /. 1e6)
  else if f >= 1e3 then Fmt.pf ppf "%8.2f µs" (f /. 1e3)
  else Fmt.pf ppf "%8Ld ns" ns

(** The human [--stats] table: per-phase wall time (exclusive of nothing —
    parent spans include their children), counter totals, and the
    {!Limits} peak-depth watermarks. *)
let pp_stats ppf () =
  Fmt.pf ppf "== telemetry ==@.";
  Fmt.pf ppf "-- spans (wall time; parents include children) --@.";
  Fmt.pf ppf "   %-28s %10s %12s %12s@." "phase" "count" "total" "mean";
  List.iter
    (fun (name, count, total) ->
      let mean =
        if count = 0 then 0L else Int64.div total (Int64.of_int count)
      in
      Fmt.pf ppf "   %-28s %10d %a %a@." name count pp_ns total pp_ns mean)
    (phase_rows ());
  (match events_dropped () with
  | 0 -> ()
  | n ->
      Fmt.pf ppf
        "   (%d span event(s) beyond the trace buffer were dropped from \
         --trace output; aggregates above still include them)@."
        n);
  Fmt.pf ppf "-- counters --@.";
  List.iter
    (fun (name, total) ->
      if total > 0 then Fmt.pf ppf "   %-42s %12d@." name total)
    (counter_totals ());
  Fmt.pf ppf "-- peak recursion depths (of --max-depth %d) --@."
    !Limits.max_depth;
  List.iter
    (fun (name, peak) ->
      if peak > 0 then Fmt.pf ppf "   %-42s %12d@." name peak)
    (List.sort compare (Limits.peaks ()));
  List.iter
    (fun (section, fields) ->
      Fmt.pf ppf "-- %s --@." section;
      List.iter
        (fun (name, v) ->
          match (v : Json.t) with
          | Json.Int i -> Fmt.pf ppf "   %-42s %12d@." name i
          | Json.Float f -> Fmt.pf ppf "   %-42s %12.3f@." name f
          | Json.String s -> Fmt.pf ppf "   %-42s %12s@." name s
          | Json.Bool b -> Fmt.pf ppf "   %-42s %12b@." name b
          | _ -> ())
        fields)
    (section_reports ())

let us_of_ns (ns : int64) : float = Int64.to_float ns /. 1e3

(** The Chrome trace-event form of the recorded spans: complete ("X")
    events with microsecond timestamps relative to the {!reset} epoch,
    wrapped in the [{"traceEvents": [...]}] envelope Perfetto and
    [chrome://tracing] load directly. *)
let trace_truncation_warned = ref false

let trace_json () : Json.t =
  let dropped = events_dropped () in
  (* the ring wrapped: the trace timeline is missing its oldest spans.
     Warn once per process on stderr (aggregates are unaffected — say
     so), and stamp the truncation into the trace itself as an instant
     event so a shared artifact carries the caveat. *)
  if dropped > 0 && not !trace_truncation_warned then begin
    trace_truncation_warned := true;
    Fmt.epr
      "belr: warning: trace buffer wrapped; the %d oldest span event(s) \
       are missing from --trace output (per-phase aggregates still \
       include them)@."
      dropped
  end;
  let truncation_events =
    if dropped = 0 then []
    else
      [
        Json.Obj
          [
            ("name", Json.String "trace-truncated");
            ("cat", Json.String "belr");
            ("ph", Json.String "i");
            ("ts", Json.Float 0.0);
            ("pid", Json.Int 1);
            ("tid", Json.Int 1);
            ("s", Json.String "g");
            ("args", Json.Obj [ ("events_dropped", Json.Int dropped) ]);
          ];
      ]
  in
  let span_events =
    List.map
      (fun ev ->
        let arg_fields =
          (if ev.ev_arg = "" then []
           else [ ("detail", Json.String ev.ev_arg) ])
          @
          if ev.ev_rid = "" then []
          else [ ("request_id", Json.String ev.ev_rid) ]
        in
        let args =
          if arg_fields = [] then [] else [ ("args", Json.Obj arg_fields) ]
        in
        Json.Obj
          ([
             ("name", Json.String ev.ev_name);
             ("cat", Json.String "belr");
             ("ph", Json.String "X");
             ("ts", Json.Float (us_of_ns (Int64.sub ev.ev_start_ns !epoch)));
             ("dur", Json.Float (us_of_ns ev.ev_dur_ns));
             ("pid", Json.Int 1);
             ("tid", Json.Int 1);
           ]
          @ args))
      (events ())
  in
  let process_name =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int 1);
        ("args", Json.Obj [ ("name", Json.String "belr check") ]);
      ]
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List ((process_name :: truncation_events) @ span_events) );
      ("displayTimeUnit", Json.String "ms");
    ]

(** Schema identifier of {!profile_json}; bump on incompatible changes. *)
let profile_schema = "belr-profile/1"

(** The machine-readable [--profile] report: per-phase totals, counter
    totals, and peak-depth watermarks.  This is the stable format for the
    committed [BENCH_*.json] performance trajectory. *)
let profile_json () : Json.t =
  Json.Obj
    ([
      ("schema", Json.String profile_schema);
      ("total_ns", Json.Int (Int64.to_int !root_total_ns));
      ( "phases",
        Json.List
          (List.map
             (fun (name, count, total) ->
               Json.Obj
                 [
                   ("name", Json.String name);
                   ("count", Json.Int count);
                   ("wall_ns", Json.Int (Int64.to_int total));
                 ])
             (phase_rows ())) );
      ( "counters",
        Json.List
          (List.map
             (fun (name, total) ->
               Json.Obj
                 [ ("name", Json.String name); ("total", Json.Int total) ])
             (counter_totals ())) );
      ( "watermarks",
        Json.List
          (List.map
             (fun (name, peak) ->
               Json.Obj
                 [ ("name", Json.String name); ("peak_depth", Json.Int peak) ])
             (List.sort compare (Limits.peaks ()))) );
      ("events_recorded", Json.Int (events_recorded ()));
      ("events_dropped", Json.Int (events_dropped ()));
    ]
    @ List.map
        (fun (section, fields) -> (section, Json.Obj fields))
        (section_reports ()))
