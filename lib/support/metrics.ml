(** The production metrics registry: monotone counters, sampled gauges,
    and log-scale latency histograms, with two renderers — the
    machine-readable [belr-metrics/1] JSON report (the [metrics] serve
    method) and a Prometheus-style text exposition ([--metrics FILE]).

    This is the {e aggregate} layer the long-lived server steers by,
    complementing {!Telemetry} (which records {e individual} spans and
    per-run counters and is reset between runs): metrics are process-
    lifetime, bounded-memory, and cheap enough to leave on for every
    request.

    Invariants (DESIGN.md §S24):

    - {e monotone counters}: {!inc}/{!add} only ever grow a counter;
      there is no public decrement, so rate computations over scrapes
      are always valid.  Gauges ({!set}) are point-in-time samples and
      may move either way.
    - {e bounded histogram memory}: a histogram is a fixed array of
      {!num_buckets} power-of-two buckets plus four scalars, regardless
      of how many observations it absorbs.
    - {e registry idempotence}: creating a metric under an existing name
      returns the existing metric — two call sites naming the same
      quantity share one cell instead of splitting it.

    {b Near-zero cost when disabled.}  Every recording entry point
    ({!inc}, {!add}, {!set}, {!observe}) is one flag check when the
    registry is off, and allocates nothing either way — recording is
    integer/float stores into pre-allocated cells.  Rendering allocates,
    but only when a report is requested.  Like {!Telemetry}, the layer
    observes the single-threaded pipeline and is not thread-safe. *)

let on = ref false

let enabled () = !on

let set_enabled b = on := b

(* --- counters (monotone) ------------------------------------------------ *)

type counter = { ct_name : string; ct_help : string; mutable ct_v : int }

let counters : counter list ref = ref []

(** Register (or fetch) the monotone counter named [name]. *)
let counter ?(help = "") name : counter =
  match List.find_opt (fun c -> c.ct_name = name) !counters with
  | Some c -> c
  | None ->
      let c = { ct_name = name; ct_help = help; ct_v = 0 } in
      counters := !counters @ [ c ];
      c

let inc c = if !on then c.ct_v <- c.ct_v + 1

let add c n = if !on then c.ct_v <- c.ct_v + max 0 n

let counter_value c = c.ct_v

(* --- gauges (point-in-time samples) ------------------------------------- *)

type gauge = { g_name : string; g_help : string; mutable g_v : float }

let gauges : gauge list ref = ref []

(** Register (or fetch) the gauge named [name]. *)
let gauge ?(help = "") name : gauge =
  match List.find_opt (fun g -> g.g_name = name) !gauges with
  | Some g -> g
  | None ->
      let g = { g_name = name; g_help = help; g_v = 0. } in
      gauges := !gauges @ [ g ];
      g

let set g v = if !on then g.g_v <- v

let set_int g v = if !on then g.g_v <- float_of_int v

let gauge_value g = g.g_v

(* --- histograms (log-scale, fixed memory) ------------------------------- *)

(** Bucket [i] counts observations [v] with [le i-1 < v <= le i], where
    [le i = 2^i] — so bucket 0 holds [v <= 1], bucket 1 holds [2], bucket
    2 holds [3..4], and so on up to [2^62].  Power-of-two boundaries keep
    {!bucket_index} at a handful of integer ops (no floating point on the
    record path) and give ~2× resolution, plenty for latency steering. *)
let num_buckets = 63

(** Upper (inclusive) boundary of bucket [i]: [2^i]. *)
let bucket_le (i : int) : int = 1 lsl i

(** The bucket holding observation [v] (values [< 1] land in bucket 0,
    values beyond [2^62] in the last bucket). *)
let bucket_index (v : int) : int =
  if v <= 1 then 0
  else begin
    (* number of significant bits of v-1 = ceil(log2 v) for v >= 2 *)
    let x = ref (v - 1) and b = ref 0 in
    while !x > 0 do
      incr b;
      x := !x lsr 1
    done;
    min !b (num_buckets - 1)
  end

type histogram = {
  h_name : string;
  h_help : string;
  h_buckets : int array;  (** length {!num_buckets}; non-cumulative *)
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
}

let histograms : histogram list ref = ref []

(** Register (or fetch) the histogram named [name].  Observations are
    nanoseconds by convention (rendered fields carry the [_ns] suffix). *)
let histogram ?(help = "") name : histogram =
  match List.find_opt (fun h -> h.h_name = name) !histograms with
  | Some h -> h
  | None ->
      let h =
        {
          h_name = name;
          h_help = help;
          h_buckets = Array.make num_buckets 0;
          h_count = 0;
          h_sum = 0;
          h_min = max_int;
          h_max = 0;
        }
      in
      histograms := !histograms @ [ h ];
      h

let observe h v =
  if !on then begin
    let v = max 0 v in
    let i = bucket_index v in
    h.h_buckets.(i) <- h.h_buckets.(i) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum + v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end

let histogram_count h = h.h_count

let histogram_sum h = h.h_sum

(** [quantile h q] is the {!bucket_le} boundary of the bucket holding the
    [⌈q·count⌉]-th smallest observation — the least power-of-two [u] such
    that at least a [q] fraction of observations are [<= u] — or [0] for
    an empty histogram.  Exact on synthetic samples (the test suite's
    contract) and within 2× of the true quantile always. *)
let quantile (h : histogram) (q : float) : int =
  if h.h_count = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int h.h_count))) in
    let i = ref 0 and cum = ref 0 in
    while !cum < rank && !i < num_buckets do
      cum := !cum + h.h_buckets.(!i);
      if !cum < rank then incr i
    done;
    bucket_le (min !i (num_buckets - 1))
  end

(* --- maintenance -------------------------------------------------------- *)

(** Zero every registered metric (tests and A/B overhead runs; the
    registry itself — names, order — is kept). *)
let reset_all () =
  List.iter (fun c -> c.ct_v <- 0) !counters;
  List.iter (fun g -> g.g_v <- 0.) !gauges;
  List.iter
    (fun h ->
      Array.fill h.h_buckets 0 num_buckets 0;
      h.h_count <- 0;
      h.h_sum <- 0;
      h.h_min <- max_int;
      h.h_max <- 0)
    !histograms

(* --- renderers ---------------------------------------------------------- *)

(** Schema identifier of {!to_json}; bump on incompatible changes. *)
let schema = "belr-metrics/1"

(** The machine-readable report (the serve [metrics] method's result):
    every counter, gauge, and histogram, with p50/p90/p99 extracted and
    only non-empty buckets listed. *)
let to_json () : Json.t =
  let hist h =
    let buckets = ref [] in
    for i = num_buckets - 1 downto 0 do
      if h.h_buckets.(i) > 0 then
        buckets :=
          Json.Obj
            [
              ("le", Json.Int (bucket_le i));
              ("count", Json.Int h.h_buckets.(i));
            ]
          :: !buckets
    done;
    Json.Obj
      [
        ("name", Json.String h.h_name);
        ("count", Json.Int h.h_count);
        ("sum_ns", Json.Int h.h_sum);
        ("min_ns", Json.Int (if h.h_count = 0 then 0 else h.h_min));
        ("max_ns", Json.Int h.h_max);
        ("p50_ns", Json.Int (quantile h 0.50));
        ("p90_ns", Json.Int (quantile h 0.90));
        ("p99_ns", Json.Int (quantile h 0.99));
        ("buckets", Json.List !buckets);
      ]
  in
  Json.Obj
    [
      ("schema", Json.String schema);
      ( "counters",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("name", Json.String c.ct_name);
                   ("value", Json.Int c.ct_v);
                 ])
             !counters) );
      ( "gauges",
        Json.List
          (List.map
             (fun g ->
               Json.Obj
                 [
                   ("name", Json.String g.g_name);
                   ("value", Json.Float g.g_v);
                 ])
             !gauges) );
      ("histograms", Json.List (List.map hist !histograms));
    ]

(** [belr_foo_bar] from [foo.bar-baz]: Prometheus-legal metric names. *)
let prom_name (name : string) : string =
  "belr_"
  ^ String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
      name

let prom_float (v : float) : string =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

(** The Prometheus-style text exposition ([--metrics FILE]): counters as
    [_total]-suffixed counters, gauges as gauges, histograms in the
    standard cumulative [_bucket{le="…"}]/[_sum]/[_count] form. *)
let exposition () : string =
  let buf = Buffer.create 4096 in
  let header name kind help =
    if help <> "" then
      Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun c ->
      let n = prom_name c.ct_name in
      let n = if Filename.check_suffix n "_total" then n else n ^ "_total" in
      header n "counter" c.ct_help;
      Buffer.add_string buf (Printf.sprintf "%s %d\n" n c.ct_v))
    !counters;
  List.iter
    (fun g ->
      let n = prom_name g.g_name in
      header n "gauge" g.g_help;
      Buffer.add_string buf (Printf.sprintf "%s %s\n" n (prom_float g.g_v)))
    !gauges;
  List.iter
    (fun h ->
      let n = prom_name h.h_name in
      header n "histogram" h.h_help;
      let cum = ref 0 in
      let top =
        (* last non-empty bucket; emitting 63 zero rows per histogram
           would drown the exposition *)
        let t = ref (-1) in
        Array.iteri (fun i c -> if c > 0 then t := i) h.h_buckets;
        !t
      in
      for i = 0 to top do
        cum := !cum + h.h_buckets.(i);
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" n (bucket_le i) !cum)
      done;
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n h.h_count);
      Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" n h.h_sum);
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n h.h_count))
    !histograms;
  Buffer.contents buf

(** Write the exposition to [path] (truncating); [Sys_error] escapes to
    the caller, which reports it as [E0701]. *)
let write_exposition (path : string) : unit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (exposition ()))
