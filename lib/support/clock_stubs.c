/* Monotonic clock for the telemetry layer.
 *
 * Sys.time is CPU time and Unix.gettimeofday can jump under NTP; span
 * timing needs CLOCK_MONOTONIC, which the OCaml stdlib does not expose.
 * One stub, nanosecond units, no dependencies.
 */

#define _POSIX_C_SOURCE 199309L

#include <time.h>
#include <stdint.h>

#include <caml/mlvalues.h>
#include <caml/alloc.h>

CAMLprim value belr_monotonic_clock_ns(value unit)
{
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
    return caml_copy_int64(0);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}
