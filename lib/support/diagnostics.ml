(** The diagnostics engine: severities, stable error codes, a per-run
    accumulator, and the error-recovery combinator used by the
    fault-tolerant checking pipeline.

    A diagnostic is a rendered message with a {!severity}, a stable
    {e code}, and a source span.  Codes are grouped by pipeline phase:

    - [E0001]       unclassified user error
    - [E0002]       the [--max-errors] cap was reached (reported as a note)
    - [E01xx]       lexical and syntax errors ([E0101])
    - [E02xx]       declaration errors: elaboration and sort checking
                    ([E0201])
    - [E07xx]       input/output: unreadable or missing source file
                    ([E0701])
    - [E08xx]       recovery notes: [E0801] "depends on a failed
                    declaration"
    - [E09xx]       resource limits: [E0901] depth/stack exhausted,
                    [E0902] out of memory, [E0903] request
                    deadline/step budget exceeded ([belr serve]),
                    [E0904] malformed serve protocol request,
                    [E0905] evaluation fuel exhausted
    - [W09xx]       daemon degradation: [W0901] session store reset on
                    memory pressure
    - [W06xx]       the [--total] analyses: [W0601] non-exhaustive
                    coverage, [W0602] unproven termination
    - [W07xx]/[E0702]  the [belr lint] signature analyses: [W0701]
                    vacuous Π-dependency, [W0702] adequacy, [W0703] empty
                    sort, [E0702] subsort cycle, [W0704] unused
                    declaration, [W0705] shadowing
    - [E073x]/[W073x]  the [belr modes] analysis: [E0730] ill-moded
                    clause, [E0731] ungroundable output, [W0732] missing
                    [%mode], [W0733] non-unique output
    - [B00xx]       internal bugs: [B0001] invariant violation, [B0002]
                    unexpected exception, [B0003] injected fault (the
                    [BELR_FAULT] robustness hook)

    Every code is listed in the {!registry} below with its default
    severity and a one-line description; {!check_codes} rejects duplicate
    registrations (guarded by the test suite), so a new diagnostic cannot
    silently reuse a published code.

    Severities map to exit codes (see {!exit_code}): any [Bug] ⇒ 2, else
    any [Error] ⇒ 1, else 0.  [--werror] promotes warnings to errors at
    {!emit} time; notes never affect the exit code. *)

type severity = Note | Warning | Error | Bug

type t = {
  d_code : string;
  d_severity : severity;
  d_loc : Loc.t;
  d_message : string;
}

(** Build a diagnostic from a format string. *)
let make :
    'a. ?loc:Loc.t -> code:string -> severity ->
    ('a, Format.formatter, unit, t) format4 -> 'a =
 fun ?(loc = Loc.ghost) ~code severity fmt ->
  Format.kasprintf
    (fun msg ->
      { d_code = code; d_severity = severity; d_loc = loc; d_message = msg })
    fmt

let severity_label = function
  | Note -> "note"
  | Warning -> "warning"
  | Error -> "error"
  | Bug -> "bug"

(* --- the code registry ------------------------------------------------- *)

type code_class = {
  cc_code : string;  (** stable published code, e.g. ["E0201"] *)
  cc_severity : severity;  (** default severity (before [--werror]) *)
  cc_doc : string;  (** one-line description for docs and tooling *)
}

let cc code sev doc = { cc_code = code; cc_severity = sev; cc_doc = doc }

(** Every published diagnostic code.  Append-only: codes are part of the
    tool's stable interface (scripts grep for them, docs cite them), so a
    retired diagnostic keeps its row and a new one gets a fresh code. *)
let registry : code_class list =
  [
    cc "E0001" Error "unclassified user error";
    cc "E0002" Note "the --max-errors cap was reached";
    cc "E0101" Error "lexical or syntax error";
    cc "E0201" Error "declaration error: elaboration or sort checking";
    cc "E0701" Error "input/output: unreadable or missing source file";
    cc "E0702" Error "lint: subsort cycle between refinement sorts";
    cc "E0801" Note "recovery: depends on a failed declaration";
    cc "E0901" Error "resource limit: depth or stack exhausted";
    cc "E0902" Error "resource limit: out of memory";
    cc "E0903" Error "resource limit: request deadline or step budget exceeded";
    cc "E0904" Error "serve protocol: malformed request";
    cc "E0905" Error "resource limit: evaluation fuel (step budget) exhausted";
    cc "W0901" Warning "serve session: store reset on memory pressure";
    cc "W0601" Warning "totality: non-exhaustive coverage (retired: shallow)";
    cc "W0602" Warning "totality: unproven termination (retired: guardedness)";
    cc "E0710" Error "totality: possibly non-terminating recursion cycle";
    cc "W0711" Warning "totality: non-exhaustive match with missing cases";
    cc "W0712" Warning "totality: analysis gave up at a resource bound";
    cc "E0720" Error "worlds: context extension outside the declared worlds";
    cc "W0721" Warning "worlds: family appealed to under an extended context \
                        has no %worlds declaration";
    cc "W0722" Warning "worlds: pattern meta-variable with no strict \
                        occurrence";
    cc "E0730" Error "modes: ill-moded clause (a premise input is never \
                      ground)";
    cc "E0731" Error "modes: a clause cannot ground an output position of \
                      its conclusion";
    cc "W0732" Warning "modes: judgment family reachable from a moded \
                        clause or a rec has no %mode declaration";
    cc "W0733" Warning "modes: overlapping inputs with divergent rigid \
                        outputs (output not unique)";
    cc "W0701" Warning "lint: vacuous Pi-dependency";
    cc "W0702" Warning "lint: constant leaves the second-order HOAS fragment";
    cc "W0703" Warning "lint: empty refinement sort";
    cc "W0704" Warning "lint: unused declaration";
    cc "W0705" Warning "lint: shadowed binder or duplicate context entry";
    cc "B0001" Bug "internal invariant violation";
    cc "B0002" Bug "unexpected exception";
    cc "B0003" Bug "injected fault (BELR_FAULT robustness hook)";
  ]

(** Reject duplicate code registrations; [Error]'s payload names the first
    duplicated code.  Run over {!registry} by the test suite, and usable
    by tooling that extends the table. *)
let check_codes (classes : code_class list) : (unit, string) result =
  let seen = Hashtbl.create 32 in
  let rec go = function
    | [] -> Ok ()
    | c :: rest ->
        if Hashtbl.mem seen c.cc_code then
          Result.Error
            (Printf.sprintf "diagnostic code %s registered twice" c.cc_code)
        else begin
          Hashtbl.replace seen c.cc_code ();
          go rest
        end
  in
  go classes

(** Look up a code's registry row, if published. *)
let code_class (code : string) : code_class option =
  List.find_opt (fun c -> c.cc_code = code) registry

(** A code's family letter spelled out ([Exxxx] error-class, [Wxxxx]
    warning-class, [Bxxxx] bug-class).  Distinct from the {e default
    severity}: E0002, say, is an error-class code reported as a note. *)
let code_family (code : string) : string =
  if code = "" then "?"
  else
    match code.[0] with
    | 'E' -> "error"
    | 'W' -> "warning"
    | 'B' -> "bug"
    | _ -> "?"

(** The registry rendered as a GitHub-flavored markdown table — the
    single source of the README "Diagnostic codes" section.  [belr codes
    --markdown] prints it and the test suite asserts README.md embeds it
    verbatim, so the docs cannot drift from the registry. *)
let registry_markdown () : string =
  let b = Buffer.create 2048 in
  Buffer.add_string b "| Code | Class | Default severity | Description |\n";
  Buffer.add_string b "|------|-------|------------------|-------------|\n";
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf "| %s | %s | %s | %s |\n" c.cc_code
           (code_family c.cc_code)
           (severity_label c.cc_severity)
           c.cc_doc))
    registry;
  Buffer.contents b

(** The diagnostic as machine-readable JSON — the shape shared by the
    [belr-lint/1] findings array and the [belr-serve/1] reply stream:
    [code], [severity], [message], and a [loc] string (omitted for ghost
    spans). *)
let to_json (d : t) : Json.t =
  Json.Obj
    ([
       ("code", Json.String d.d_code);
       ("severity", Json.String (severity_label d.d_severity));
       ("message", Json.String d.d_message);
     ]
    @
    if Loc.is_ghost d.d_loc then []
    else [ ("loc", Json.String (Fmt.str "%a" Loc.pp d.d_loc)) ])

let pp ppf d =
  if Loc.is_ghost d.d_loc then
    Fmt.pf ppf "%s[%s]: %s" (severity_label d.d_severity) d.d_code d.d_message
  else
    Fmt.pf ppf "%a: %s[%s]: %s" Loc.pp d.d_loc (severity_label d.d_severity)
      d.d_code d.d_message

(* --- the per-run accumulator ------------------------------------------ *)

type sink = {
  mutable diags : t list;  (** newest first *)
  seen_notes : (string * string, unit) Hashtbl.t;
      (** (code, message) of emitted notes — a poisoned name referenced
          ten times still yields a single "depends on failed declaration"
          note, not a cascade *)
  sk_max_errors : int;  (** 0 = unlimited *)
  sk_werror : bool;
  mutable n_errors : int;
  mutable n_warnings : int;
  mutable n_notes : int;
  mutable n_bugs : int;
  mutable stopped : bool;
}

exception Stop
(** Raised by {!emit} when the error cap is reached; {!with_stop} turns it
    into a final "too many errors" note. *)

let sink ?(max_errors = 0) ?(werror = false) () =
  {
    diags = [];
    seen_notes = Hashtbl.create 16;
    sk_max_errors = max_errors;
    sk_werror = werror;
    n_errors = 0;
    n_warnings = 0;
    n_notes = 0;
    n_bugs = 0;
    stopped = false;
  }

(** Record a diagnostic (promoting warnings under [--werror], deduplicating
    notes).  Raises {!Stop} once the [max_errors]-th error is recorded. *)
let emit sink d =
  let d =
    if sink.sk_werror && d.d_severity = Warning then { d with d_severity = Error }
    else d
  in
  let duplicate_note =
    d.d_severity = Note && Hashtbl.mem sink.seen_notes (d.d_code, d.d_message)
  in
  if not duplicate_note then begin
    if d.d_severity = Note then
      Hashtbl.replace sink.seen_notes (d.d_code, d.d_message) ();
    sink.diags <- d :: sink.diags;
    (match d.d_severity with
    | Note -> sink.n_notes <- sink.n_notes + 1
    | Warning -> sink.n_warnings <- sink.n_warnings + 1
    | Error -> sink.n_errors <- sink.n_errors + 1
    | Bug -> sink.n_bugs <- sink.n_bugs + 1);
    if
      d.d_severity = Error
      && sink.sk_max_errors > 0
      && sink.n_errors >= sink.sk_max_errors
      && not sink.stopped
    then begin
      sink.stopped <- true;
      raise Stop
    end
  end

(** Run [f ()], absorbing a {!Stop} from the error cap into a final note
    explaining how to raise the limit. *)
let with_stop sink (f : unit -> unit) : unit =
  try f ()
  with Stop ->
    emit sink
      (make ~code:"E0002" Note
         "too many errors (limit %d); giving up on the rest of the input \
          (raise the limit with --max-errors)"
         sink.sk_max_errors)

let all sink = List.rev sink.diags

let error_count sink = sink.n_errors

let warning_count sink = sink.n_warnings

let note_count sink = sink.n_notes

let bug_count sink = sink.n_bugs

(** 0 = clean (warnings allowed unless [--werror] promoted them), 1 = user
    errors, 2 = an internal bug was detected. *)
let exit_code sink =
  if sink.n_bugs > 0 then 2 else if sink.n_errors > 0 then 1 else 0

(** Render every diagnostic, one per line, and flush the formatter.  The
    explicit final flush matters when the same file descriptor also
    receives non-[Format] output (the telemetry [--stats] table, a
    redirected trace): without it, material queued inside [ppf] could
    interleave after output written directly to the fd. *)
let dump ppf sink =
  List.iter (fun d -> Fmt.pf ppf "%a@." pp d) (all sink);
  Format.pp_print_flush ppf ()

let pp_summary ppf sink =
  let part n what = if n = 0 then None else Some (Fmt.str "%d %s" n what) in
  let parts =
    List.filter_map Fun.id
      [
        part sink.n_bugs "internal bug(s)";
        part sink.n_errors "error(s)";
        part sink.n_warnings "warning(s)";
        part sink.n_notes "note(s)";
      ]
  in
  match parts with
  | [] -> Fmt.string ppf "no diagnostics"
  | ps -> Fmt.string ppf (String.concat ", " ps)

(* --- error recovery ---------------------------------------------------- *)

(** [recover sink ~loc ~code f] runs [f ()]; on failure the exception is
    classified, rendered into the sink, and [None] is returned so the
    caller can skip the failed unit of work and continue.  [loc] locates
    diagnostics whose exception carries no span of its own; [code] is the
    stable code for plain user errors raised by this phase (dedicated
    exceptions keep their own codes: [E0801], [E0901], [E0902], [B0001],
    [B0002]).  Depth counters are reset after any failure so a
    partially-unwound recursion cannot starve the next declaration.
    {!Stop} (the error cap) is never absorbed here. *)
let recover :
    'a. sink -> ?loc:Loc.t -> ?code:string -> (unit -> 'a) -> 'a option =
 fun sink ?(loc = Loc.ghost) ?(code = "E0001") f ->
  let fail d =
    Limits.reset ();
    emit sink d;
    None
  in
  match f () with
  | v -> Some v
  | exception Stop -> raise Stop
  | exception Error.Belr_error (l, msg) ->
      let l = if Loc.is_ghost l then loc else l in
      fail (make ~loc:l ~code Error "%s" msg)
  | exception Error.Depends_on_failed name ->
      fail
        (make ~loc ~code:"E0801" Note
           "this declaration references %s, whose declaration failed to \
            check; it is skipped"
           name)
  | exception Limits.Limit_exceeded (what, limit) ->
      fail
        (make ~loc ~code:"E0901" Error
           "resource limit exceeded: %s passed the depth limit %d; re-run \
            with a larger --max-depth"
           what limit)
  | exception Stack_overflow ->
      fail
        (make ~loc ~code:"E0901" Error
           "resource limit exceeded: the OCaml stack overflowed; re-run \
            with a smaller --max-depth or a larger system stack")
  | exception Out_of_memory ->
      fail (make ~loc ~code:"E0902" Error "out of memory while checking")
  | exception Limits.Deadline_exceeded ms ->
      fail
        (make ~loc ~code:"E0903" Error
           "resource limit exceeded: the request deadline of %d ms passed; \
            the result is partial"
           ms)
  | exception Limits.Budget_exceeded n ->
      fail
        (make ~loc ~code:"E0903" Error
           "resource limit exceeded: the request step budget of %d passed; \
            the result is partial"
           n)
  | exception Limits.Fuel_exhausted n ->
      fail
        (make ~loc ~code:"E0905" Error
           "resource limit exceeded: evaluation used more than %d steps; \
            re-run with a larger --max-eval-steps"
           n)
  | exception Fault.Injected site ->
      fail
        (make ~loc ~code:"B0003" Bug
           "injected fault fired at kernel site %s (BELR_FAULT robustness \
            hook)"
           site)
  | exception Sys_error msg ->
      fail (make ~loc ~code:"E0701" Error "system error: %s" msg)
  | exception Error.Violation msg ->
      fail (make ~loc ~code:"B0001" Bug "internal violation (belr bug): %s" msg)
  | exception exn ->
      fail
        (make ~loc ~code:"B0002" Bug "unexpected exception (belr bug): %s"
           (Printexc.to_string exn))
