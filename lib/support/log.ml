(** The structured event log: one JSON object per line, leveled, with a
    bounded emission rate ([--log FILE]/[--log-level] on the CLI).

    Every line carries a monotonic [ts_ns] timestamp, a [level], an
    [event] name, and the caller's fields — for the serve daemon, one
    [serve.request] line per request with the request id, method,
    session, status, duration, and incremental-checking counts, so a
    fleet operator can join log lines to replies and trace spans on
    [request_id] (DESIGN.md §S24).

    {b Bounded rate.}  At most {!max_per_window} lines per monotonic
    second are written; lines beyond the cap are counted in {!dropped}
    (exported as the [log.dropped] gauge) rather than allowed to turn a
    request flood into an I/O flood.  [Warn]/[Error] lines flush the
    channel eagerly (they are what a post-mortem needs); [Info]/[Debug]
    ride the channel buffer and are flushed by {!close} or the next
    eager line.

    Disabled (no output channel installed — the default) every entry
    point is one comparison, and building the fields list is the only
    allocation the call site pays. *)

external now_ns : unit -> int64 = "belr_monotonic_clock_ns"

type level = Debug | Info | Warn | Error

let level_label = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let out : out_channel option ref = ref None

let min_level = ref Info

let set_level l = min_level := l

(** Lines-per-second cap; {!set_rate} clamps to at least 1. *)
let default_max_per_window = 2000

let max_per_window = ref default_max_per_window

let set_rate n = max_per_window := max 1 n

let window_start = ref 0L

let in_window = ref 0

let n_dropped = ref 0

let n_emitted = ref 0

let dropped () = !n_dropped

let emitted () = !n_emitted

(** Install [oc] as the log destination (the caller owns opening it;
    {!close} flushes and forgets it without closing stdio channels it
    does not own). *)
let set_output (oc : out_channel option) =
  out := oc;
  window_start := now_ns ();
  in_window := 0

let close () =
  (match !out with Some oc -> (try flush oc with Sys_error _ -> ()) | None -> ());
  out := None

let enabled () = !out <> None

(** Does a line at [l] pass the level gate and the rate window?  Counts
    the drop when it does not. *)
let admit (l : level) : bool =
  match !out with
  | None -> false
  | Some _ ->
      if rank l < rank !min_level then false
      else begin
        let t = now_ns () in
        if Int64.sub t !window_start >= 1_000_000_000L then begin
          window_start := t;
          in_window := 0
        end;
        if !in_window >= !max_per_window then begin
          incr n_dropped;
          false
        end
        else begin
          incr in_window;
          true
        end
      end

(** Emit one event line.  [fields] follow the standard [ts_ns]/[level]/
    [event] triple; writing is total — an I/O error (disk full, closed
    pipe) disables the log rather than killing the request. *)
let event ?(level = Info) (name : string) (fields : (string * Json.t) list)
    : unit =
  if admit level then
    match !out with
    | None -> ()
    | Some oc -> (
        let line =
          Json.to_string ~compact:true
            (Json.Obj
               ([
                  ("ts_ns", Json.Int (Int64.to_int (now_ns ())));
                  ("level", Json.String (level_label level));
                  ("event", Json.String name);
                ]
               @ fields))
        in
        try
          output_string oc line;
          output_char oc '\n';
          incr n_emitted;
          if rank level >= rank Warn then flush oc
        with Sys_error _ -> out := None)
