(** Elaboration: external syntax → internal syntax.

    Design notes (see also DESIGN.md §5):

    - This front end is {e explicit}: every quantifier that exists
      internally is written in the source, branch pattern variables are
      declared in [{X : …}] prefixes, and constructors are fully applied
      (including the arguments the declarations made implicit).  The one
      inference performed is for {e declarations}: free capitalized
      identifiers in a constructor's type are abstracted as leading Π's
      whose types are reconstructed by Miller-pattern inversion (the
      paper's listings rely on this).
    - Elaboration produces internal syntax and relies on the checkers
      ([Belr_core.Check_lfr], [Belr_core.Check_comp]) for the actual
      type/sort discipline: the driver ({!Process}) re-checks everything
      elaboration emits.  Elaboration itself only computes the sorts it
      needs for {e direction}: binder domains, spine positions, and
      η-expansion.
    - A bare meta-variable occurrence [M] in a bigger context than its own
      elaborates to [M[σ]] with [σ] the canonical weakening; explicit
      substitutions [M\[.., t₁, …\]] fill the non-weakening part. *)

open Belr_support
open Belr_syntax
open Belr_lf
open Belr_meta
open Belr_core
open Lf

let err loc fmt = Error.raise_at loc fmt

(* ------------------------------------------------------------------ *)
(* Environments                                                        *)

type env = {
  sg : Sign.t;
  omega : Meta.mctx;  (** innermost first *)
  omega_names : string list;
  comp : Comp.cctx;
  comp_names : string list;
  recs : (string * (Lf.cid_rec * Comp.ctyp)) list;
      (** functions being defined (name → id, declared sort) *)
}

let make_env ?(recs = []) sg =
  { sg; omega = []; omega_names = []; comp = []; comp_names = []; recs }

let lfr_env e = Check_lfr.make_env e.sg e.omega

let push_omega e name decl =
  {
    e with
    omega = decl :: e.omega;
    omega_names = name :: e.omega_names;
    comp = List.map (fun (x, t) -> (x, Shift.mshift_ctyp 1 0 t)) e.comp;
  }

let push_comp e name t =
  { e with comp = (name, t) :: e.comp; comp_names = name :: e.comp_names }

let find_index name names =
  let rec go i = function
    | [] -> None
    | n :: rest -> if n = name then Some i else go (i + 1) rest
  in
  go 1 names

(** Search every schema (refinement first) for a world by name. *)
type world_ref =
  | Wsort of Ctxs.selem
  | Wtype of Ctxs.elem

let find_world (sg : Sign.t) (name : string) : world_ref option =
  let found = ref None in
  let scan_s (h : Sign.sschema_entry) =
    List.iter
      (fun (f : Ctxs.selem) ->
        if Name.to_string f.Ctxs.f_name = name && !found = None then
          found := Some (Wsort f))
      h.Sign.h_elems
  in
  let scan_t (g : Sign.schema_entry) =
    List.iter
      (fun (el : Ctxs.elem) ->
        if Name.to_string el.Ctxs.e_name = name && !found = None then
          found := Some (Wtype el))
      g.Sign.g_elems
  in
  (* user-declared refinement schemas shadow the auto-registered trivial
     ones, which in turn shadow raw schemas *)
  let user, auto =
    List.partition
      (fun (_, (e : Sign.sschema_entry)) -> not (Sign.is_hidden_sschema e))
      (List.sort compare (Sign.all_sschemas sg))
  in
  List.iter (fun (_, e) -> if !found = None then scan_s e) user;
  List.iter (fun (_, e) -> if !found = None then scan_s e) auto;
  List.iter
    (fun (_, e) -> if !found = None then scan_t e)
    (List.sort compare (Sign.all_schemas sg));
  !found

(* ------------------------------------------------------------------ *)
(* LF-level elaboration                                                 *)

(** Local LF elaboration context: internal context + names. *)
type lenv = { lctx : Ctxs.sctx; lnames : string list }

let lpush (l : lenv) (name : string) (s : srt) =
  {
    lctx = Ctxs.sctx_push l.lctx (Ctxs.SCDecl (name, s));
    lnames = name :: l.lnames;
  }

let lpush_block (l : lenv) (name : string) (f : Ctxs.selem) ms =
  {
    lctx = Ctxs.sctx_push l.lctx (Ctxs.SCBlock (name, f, ms));
    lnames = name :: l.lnames;
  }

(** Flatten an external application into head and arguments. *)
let rec flatten (t : Ext.term) (args : Ext.term list) =
  match t with Ext.App (f, a) -> flatten f (a :: args) | _ -> (t, args)

let concrete_len (psi : Ctxs.sctx) = List.length psi.Ctxs.s_decls

(** Number of concrete (non-ψ) entries in a declaration's context. *)
let domain_concrete e (i : int) : int =
  match Shift.mctx_lookup_shifted e.omega i with
  | Some (Meta.MDTerm (_, psi, _)) -> concrete_len psi
  | Some (Meta.MDParam (_, psi, _, _)) -> concrete_len psi
  | _ -> 0

(** Elaborate a term bidirectionally against a sort.  [holes], when
    present, enables declaration-level reconstruction (free capitalized
    identifiers). *)
let rec elab_term e (l : lenv) ?(holes = None) (t : Ext.term) (expected : srt)
    : normal =
  match (t, expected) with
  | Ext.Lam (_, x, body), SPi (_, s1, s2) ->
      mk_lam x (elab_term e (lpush l x s1) ~holes body s2)
  | Ext.Lam (loc, _, _), _ ->
      err loc "abstraction used where an atomic sort is expected"
  | _, SPi _ -> (
      (* η-expansion of bare identifiers (in particular holes and Π-bound
         variables of functional type): elaborate as \x. t x *)
      match t with
      | Ext.Ident (loc, _) | Ext.Hash (loc, _) | Ext.Proj (loc, _, _)
      | Ext.Sub (loc, _, _) ->
          let x = "x" in
          elab_term e l ~holes
            (Ext.Lam (loc, x, Ext.App (t, Ext.Ident (loc, x))))
            expected
      | _ ->
          err (term_loc t) "term cannot be checked against a function sort")
  | _, _ -> elab_neutral e l ~holes t expected

and term_loc : Ext.term -> Loc.t = function
  | Ext.Ident (loc, _)
  | Ext.TypeKw loc
  | Ext.SortKw loc
  | Ext.Pi (loc, _, _, _)
  | Ext.Lam (loc, _, _)
  | Ext.Hash (loc, _)
  | Ext.Proj (loc, _, _)
  | Ext.Sub (loc, _, _) ->
      loc
  | Ext.App (f, _) -> term_loc f
  | Ext.Arrow (a, _) -> term_loc a

and elab_neutral e (l : lenv) ~holes (t : Ext.term) (expected : srt) : normal =
  let head_ext, args = flatten t [] in
  (* hole occurrence? *)
  match head_ext with
  | Ext.Ident (loc, s) when is_hole e l holes s ->
      elab_hole e l ~holes loc s args expected
  | _ ->
      let h = elab_head e l ~holes head_ext in
      let s_h = Check_lfr.head_srt (lfr_env e) l.lctx h ~target:expected in
      let spine, _ = elab_spine e l ~holes (term_loc t) args s_h in
      mk_root h spine

and elab_spine e l ~holes loc (args : Ext.term list) (s : srt) : spine * srt =
  match (args, s) with
  | [], _ -> ([], s)
  | a :: rest, SPi (_, s1, s2) ->
      let m = elab_term e l ~holes a s1 in
      let sp, s' = elab_spine e l ~holes loc rest (Hsub.inst_srt s2 m) in
      (m :: sp, s')
  | _ :: _, (SAtom _ | SEmbed _) -> err loc "term is applied to too many arguments"

and elab_head e (l : lenv) ~holes (t : Ext.term) : head =
  match t with
  | Ext.Ident (loc, s) -> (
      match find_index s l.lnames with
      | Some i -> mk_bvar i
      | None -> (
          match find_index s e.omega_names with
          | Some i ->
              let dc = domain_concrete e i in
              mk_mvar i (weakening l dc 0)
          | None -> (
              match Sign.lookup_name e.sg s with
              | Some (Sign.Sym_const c) -> mk_const c
              | Some _ -> err loc "%s is not a term-level name" s
              | None -> err loc "unbound identifier %s" s)))
  | Ext.Hash (loc, s) -> (
      match find_index s e.omega_names with
      | Some i ->
          let dc = domain_concrete e i in
          mk_pvar i (weakening l dc 0)
      | None -> err loc "unbound parameter variable #%s" s)
  | Ext.Proj (loc, base, k) -> (
      match elab_head e l ~holes base with
      | (BVar _ | PVar _) as b -> mk_proj b k
      | _ -> err loc "projection base must be a block or parameter variable")
  | Ext.Sub (loc, base, esub) -> (
      match base with
      | Ext.Ident (_, s) -> (
          match find_index s e.omega_names with
          | Some i ->
              let dc = domain_concrete e i in
              mk_mvar i (elab_esub e l ~holes loc esub dc)
          | None -> err loc "only meta-variables take substitutions (%s)" s)
      | Ext.Hash (_, s) -> (
          match find_index s e.omega_names with
          | Some i ->
              let dc = domain_concrete e i in
              mk_pvar i (elab_esub e l ~holes loc esub dc)
          | None -> err loc "unbound parameter variable #%s" s)
      | _ -> err loc "substitutions apply to meta-variables only")
  | _ -> err (term_loc t) "expected a head"

(** Canonical weakening substitution from a declaration's context (ψ plus
    [dom_concrete] entries, of which the last [fronts] are replaced by
    explicit fronts) into the current context. *)
and weakening (l : lenv) (dom_concrete : int) (fronts : int) : sub =
  mk_shift (concrete_len l.lctx - (dom_concrete - fronts))

and elab_esub e l ~holes loc (s : Ext.esub) (dom_concrete : int) : sub =
  let nf = List.length s.Ext.es_fronts in
  let tail =
    if s.Ext.es_dots then weakening l dom_concrete nf
    else if nf >= dom_concrete then mk_empty
    else err loc "substitution must start with .. unless it closes the context"
  in
  (* NOTE: fronts are elaborated without an expected sort — they are
     variables, projections, tuples of such, or closed terms; the driver
     re-checks the whole substitution.  Non-variable fronts of functional
     sort would need η-expansion information we don't have here. *)
  List.fold_left
    (fun acc f ->
      let front =
        match f with
        | Ext.Fterm t -> Obj (elab_front_term e l ~holes t)
        | Ext.Ftuple (_, ts) -> Tup (List.map (elab_front_term e l ~holes) ts)
      in
      (* written left-to-right, outermost first: the last front replaces
         the innermost variable, so fold in written order *)
      Hsub.norm_dot front acc)
    tail s.Ext.es_fronts

and elab_front_term e l ~holes (t : Ext.term) : normal =
  (* fronts: heads applied to nothing, or general terms synthesized *)
  match flatten t [] with
  | (Ext.Ident _ | Ext.Hash _ | Ext.Proj _ | Ext.Sub _), [] ->
      mk_root (elab_head e l ~holes t) []
  | _ ->
      (* general term: elaborate by synthesis through its head sort *)
      let head_ext, args = flatten t [] in
      let h = elab_head e l ~holes head_ext in
      let s_h = Check_lfr.head_srt_principal (lfr_env e) l.lctx h in
      let spine, _ = elab_spine e l ~holes (term_loc t) args s_h in
      mk_root h spine

(* ------------------------------------------------------------------ *)
(* Declaration-level holes                                              *)

and is_hole e l holes s =
  match holes with
  | None -> false
  | Some tbl ->
      Hashtbl.mem tbl s
      && find_index s l.lnames = None
      && find_index s e.omega_names = None

(** Hole occurrence [H a₁ … aₙ ⇐ Q]: on first use, reconstruct
    [H : Πx₁:S₁…xₙ:Sₙ. Q′] by pattern inversion; afterwards, just build
    the application (the driver re-checks).  The hole's internal index is
    [depth + (#holes − position)]: holes become the leading Π's. *)
and elab_hole e l ~holes loc (s : string) (args : Ext.term list)
    (expected : srt) : normal =
  let tbl = match holes with Some t -> t | None -> assert false in
  let pos, slot, total = Hashtbl.find tbl s in
  let depth = List.length l.lnames in
  let idx = depth + (total - pos) in
  (* arguments: bound variables, projections, or other holes (whose
     classifier must already be known) — all become Π-bound variables *)
  let arg_info a : Loc.t * head * srt =
    match a with
    | Ext.Ident (aloc, x) -> (
        match find_index x l.lnames with
        | Some i -> (aloc, mk_bvar i, Sctxops.srt_of_bvar e.sg l.lctx i)
        | None ->
            if is_hole e l holes x then (
              let posx, slotx, _ = Hashtbl.find tbl x in
              match !slotx with
              | Some sx -> (aloc, mk_bvar (depth + (total - posx)), sx)
              | None ->
                  err aloc
                    "implicit argument %s is used before its classifier is \
                     determined"
                    x)
            else err aloc "hole arguments must be bound variables (%s)" x)
    | Ext.Proj (aloc, Ext.Ident (_, x), k) -> (
        match find_index x l.lnames with
        | Some i -> (aloc, mk_proj (mk_bvar i) k, Sctxops.srt_of_proj e.sg l.lctx i k)
        | None -> err aloc "hole arguments must be bound variables (%s)" x)
    | a -> err (term_loc a) "hole arguments must be bound variables"
  in
  let arg_heads = List.map arg_info args in
  (if !slot = None then
     (* reconstruct the hole's sort *)
     let rec build (prev : (Loc.t * head * srt) list) (doms : srt list) =
       match prev with
       | [] -> doms
       | (aloc, _, s_a) :: rest ->
           (* express the argument's sort in terms of the earlier
              arguments only *)
           let sigma =
             List.fold_left
               (fun acc (_, h', _) -> dot_obj (mk_root h' []) acc)
               mk_empty
               (List.rev rest)
           in
           let s_a' = invert_srt aloc sigma s_a in
           build rest (s_a' :: doms)
     in
     (* arguments listed outermost-first; invert each against the ones
        before it *)
     let doms = build (List.rev arg_heads) [] in
     let sigma_all =
       List.fold_left
         (fun acc (_, h', _) -> dot_obj (mk_root h' []) acc)
         mk_empty arg_heads
     in
     let q' = invert_srt loc sigma_all expected in
     let hole_srt =
       List.fold_right (fun d acc -> mk_spi "x" d acc) doms q'
     in
     (* hole sorts must be closed (no other holes, no local variables) *)
     slot := Some hole_srt);
  let spine =
    List.map
      (fun (_, h, s_a) -> Eta.expand_head (Eta.approx_srt s_a) h)
      arg_heads
  in
  mk_root (mk_bvar idx) spine

(** Invert an atomic sort through a pattern substitution (reconstruction
    restriction: the classifiers of implicit arguments are atomic). *)
and invert_srt loc (sigma : sub) (s : srt) : srt =
  let inv m =
    try Belr_unify.Unify.invert_term sigma m
    with Belr_unify.Unify.Unify msg ->
      err loc "cannot reconstruct implicit argument: %s" msg
  in
  match s with
  | SAtom (f, sp) -> mk_satom f (List.map inv sp)
  | SEmbed (a, sp) -> mk_sembed a (List.map inv sp)
  | SPi _ ->
      err loc
        "reconstruction restriction: implicit arguments must have atomic \
         classifiers (annotate explicitly)"

(* ------------------------------------------------------------------ *)
(* Sort and type formation                                              *)

(** Atomic sorts [s M₁ … Mₙ] / embedded [a M₁ … Mₙ]. *)
let rec elab_asrt e (l : lenv) ?(holes = None) (t : Ext.term) : srt =
  let head_ext, args = flatten t [] in
  match head_ext with
  | Ext.Ident (loc, s) -> (
      match Sign.lookup_name e.sg s with
      | Some (Sign.Sym_srt sid) ->
          let lk = (Sign.srt_entry e.sg sid).Sign.s_kind in
          let sp = elab_spine_skind e l ~holes loc args lk in
          mk_satom sid sp
      | Some (Sign.Sym_typ aid) ->
          let k = (Sign.typ_entry e.sg aid).Sign.t_kind in
          let sp = elab_spine_kind e l ~holes loc args k in
          mk_sembed aid sp
      | _ -> err loc "%s is not a type or sort family" s)
  | _ -> err (term_loc t) "expected an atomic type or sort"

and elab_spine_skind e l ~holes loc args (lk : skind) : spine =
  match (args, lk) with
  | [], Ksort -> []
  | a :: rest, Kspi (_, s, lk') ->
      let m = elab_term e l ~holes a s in
      m :: elab_spine_skind e l ~holes loc rest (Hsub.inst_skind lk' m)
  | [], Kspi _ -> err loc "sort family is not fully applied"
  | _ :: _, Ksort -> err loc "sort family is over-applied"

and elab_spine_kind e l ~holes loc args (k : kind) : spine =
  match (args, k) with
  | [], Ktype -> []
  | a :: rest, Kpi (_, ty, k') ->
      let m = elab_term e l ~holes a (Embed.typ ty) in
      m :: elab_spine_kind e l ~holes loc rest (Hsub.inst_kind k' m)
  | [], Kpi _ -> err loc "type family is not fully applied"
  | _ :: _, Ktype -> err loc "type family is over-applied"

(** General sort formation: arrows, Π's, atomic. *)
and elab_srt e (l : lenv) ?(holes = None) (t : Ext.term) : srt =
  match t with
  | Ext.Arrow (a, b) ->
      let s1 = elab_srt e l ~holes a in
      let s2 = elab_srt e (lpush l "_" s1) ~holes b in
      mk_spi "_" s1 s2
  | Ext.Pi (_, x, a, b) ->
      let s1 = elab_srt e l ~holes a in
      let s2 = elab_srt e (lpush l x s1) ~holes b in
      mk_spi x s1 s2
  | _ -> elab_asrt e l ~holes t

(** Type-level formation (LF declarations): like {!elab_srt} but requires
    the result to be refinement-free. *)
let elab_typ e l ?(holes = None) (t : Ext.term) : typ =
  let s = elab_srt e l ~holes t in
  let rec erase = function
    | SEmbed (a, sp) -> mk_atom a sp
    | SPi (x, s1, s2) -> mk_pi x (erase s1) (erase s2)
    | SAtom _ ->
        err (term_loc t)
          "a proper sort cannot appear in a type-level declaration"
  in
  erase s

(* Kinds *)

let rec elab_kind e l (t : Ext.term) : kind =
  match t with
  | Ext.TypeKw _ -> Ktype
  | Ext.Arrow (a, b) ->
      let ty = elab_typ e l a in
      Kpi ("_", ty, elab_kind e (lpush l "_" (Embed.typ ty)) b)
  | Ext.Pi (_, x, a, b) ->
      let ty = elab_typ e l a in
      Kpi (x, ty, elab_kind e (lpush l x (Embed.typ ty)) b)
  | _ -> err (term_loc t) "expected a kind"

let rec elab_skind e l (t : Ext.term) : skind =
  match t with
  | Ext.SortKw _ -> Ksort
  | Ext.Arrow (a, b) ->
      let s = elab_srt e l a in
      Kspi ("_", s, elab_skind e (lpush l "_" s) b)
  | Ext.Pi (_, x, a, b) ->
      let s = elab_srt e l a in
      Kspi (x, s, elab_skind e (lpush l x s) b)
  | _ -> err (term_loc t) "expected a refinement kind"

(* ------------------------------------------------------------------ *)
(* Declaration types with implicit abstraction                          *)

let is_uppercase s = s <> "" && s.[0] >= 'A' && s.[0] <= 'Z'

(** Free capitalized identifiers of a declaration's type, in order of
    first occurrence. *)
let free_uppercase (sg : Sign.t) (t : Ext.term) : string list =
  let seen = ref [] in
  let add s =
    if not (List.mem s !seen) then seen := s :: !seen
  in
  let rec go bound = function
    | Ext.Ident (_, s) ->
        if
          is_uppercase s
          && (not (List.mem s bound))
          && Sign.lookup_name sg s = None
        then add s
    | Ext.TypeKw _ | Ext.SortKw _ -> ()
    | Ext.App (a, b) ->
        go bound a;
        go bound b
    | Ext.Arrow (a, b) ->
        go bound a;
        go bound b
    | Ext.Pi (_, x, a, b) ->
        go bound a;
        go (x :: bound) b
    | Ext.Lam (_, x, a) -> go (x :: bound) a
    | Ext.Hash _ -> ()
    | Ext.Proj (_, a, _) -> go bound a
    | Ext.Sub (_, a, s) ->
        go bound a;
        List.iter
          (function
            | Ext.Fterm u -> go bound u
            | Ext.Ftuple (_, us) -> List.iter (go bound) us)
          s.Ext.es_fronts
  in
  go [] t;
  List.rev !seen

(** Elaborate a constructor's classifier with implicit abstraction:
    free capitalized identifiers become leading Π's whose classifiers are
    reconstructed at their first use.  Returns the sort and the number of
    abstracted arguments. *)
let elab_decl_srt e (t : Ext.term) : srt * int =
  let names = free_uppercase e.sg t in
  let total = List.length names in
  let tbl = Hashtbl.create 8 in
  List.iteri (fun i s -> Hashtbl.replace tbl s (i, ref None, total)) names;
  let holes = Some tbl in
  let body = elab_srt e { lctx = Ctxs.empty_sctx; lnames = [] } ~holes t in
  (* build the Π-prefix, outermost hole first *)
  let srt =
    List.fold_right
      (fun s acc ->
        let _, slot, _ = Hashtbl.find tbl s in
        match !slot with
        | Some dom -> mk_spi s dom acc
        | None ->
            Error.raise_msg
              "could not infer a classifier for implicit argument %s" s)
      names body
  in
  (srt, total)

let elab_decl_typ e (t : Ext.term) : typ * int =
  let s, n = elab_decl_srt e t in
  let rec erase = function
    | SEmbed (a, sp) -> mk_atom a sp
    | SPi (x, s1, s2) -> mk_pi x (erase s1) (erase s2)
    | SAtom _ ->
        err (term_loc t)
          "a proper sort cannot appear in a type-level declaration"
  in
  (erase s, n)

(* ------------------------------------------------------------------ *)
(* Contexts                                                             *)

(** Elaborate a written context.  Entries whose classifier's head is a
    known world name become block entries. *)
let rec elab_ectx e (c : Ext.ectx) : lenv =
  let base =
    match c.Ext.ec_var with
    | None ->
        { lctx = Ctxs.empty_sctx; lnames = [] }
    | Some (name, promoted) -> (
        match find_index name e.omega_names with
        | Some i ->
            {
              lctx =
                {
                  Ctxs.s_var = Some i;
                  Ctxs.s_promoted = promoted;
                  Ctxs.s_decls = [];
                };
              lnames = [];
            }
        | None -> err c.Ext.ec_loc "unbound context variable %s" name)
  in
  List.fold_left
    (fun l (entry : Ext.ectx_entry) ->
      match entry.Ext.ce_class with
      | Ext.Cblock (_, fields) ->
          let rec fields_srts l' acc = function
            | [] -> List.rev acc
            | (f, t) :: rest ->
                let s = elab_srt e l' t in
                fields_srts (lpush l' f s) ((f, s) :: acc) rest
          in
          let blk =
            fields_srts { l with lnames = l.lnames } [] fields
          in
          let selem =
            { Ctxs.f_name = entry.Ext.ce_name; Ctxs.f_refines = 0;
              Ctxs.f_params = []; Ctxs.f_block = blk }
          in
          lpush_block l entry.Ext.ce_name selem []
      | Ext.Cterm t -> (
          let head_ext, args = flatten t [] in
          match head_ext with
          | Ext.Ident (_, s) when find_world e.sg s <> None -> (
              match find_world e.sg s with
              | Some (Wsort f) ->
                  let ms = elab_world_args e l args f.Ctxs.f_params in
                  lpush_block l entry.Ext.ce_name f ms
              | Some (Wtype el) ->
                  let f = Embed.elem ~refines:0 el in
                  let ms = elab_world_args e l args f.Ctxs.f_params in
                  lpush_block l entry.Ext.ce_name f ms
              | None -> assert false)
          | _ ->
              let s = elab_srt e l t in
              lpush l entry.Ext.ce_name s)
      | Ext.Cworld (loc, _, _) -> err loc "unexpected world entry")
    base c.Ext.ec_entries

and elab_world_args e l (args : Ext.term list)
    (params : (Name.t * srt) list) : normal list =
  let rec go sub args params =
    match (args, params) with
    | [], [] -> []
    | a :: args', (_, s) :: params' ->
        let m = elab_term e l a (Hsub.sub_srt sub s) in
        m :: go (dot_obj m sub) args' params'
    | _ ->
        Error.raise_msg "world applied to %d arguments, expected %d"
          (List.length args) (List.length params)
  in
  go mk_empty args params

(* ------------------------------------------------------------------ *)
(* Computation level                                                    *)

let cexp_loc : Ext.cexp -> Loc.t = function
  | Ext.EIdent (loc, _)
  | Ext.EApp (loc, _, _)
  | Ext.EFn (loc, _, _)
  | Ext.EMlam (loc, _, _)
  | Ext.ECase (loc, _, _)
  | Ext.ELetBox (loc, _, _, _)
  | Ext.EBox (loc, _, _)
  | Ext.ECtx (loc, _) ->
      loc

let elab_cdom e (d : Ext.cdom) : Meta.msrt =
  match d with
  | Ext.DSchema (loc, s) -> (
      match Sign.lookup_name e.sg s with
      | Some (Sign.Sym_sschema h) -> Meta.MSCtx h
      | Some (Sign.Sym_schema g) ->
          Meta.MSCtx (Sign.schema_entry e.sg g).Sign.g_trivial
      | _ -> err loc "%s is not a schema" s)
  | Ext.DBox (_, ctx, t) ->
      let l = elab_ectx e ctx in
      Meta.MSTerm (l.lctx, elab_asrt e l t)
  | Ext.DParam (loc, ctx, w, args) -> (
      let l = elab_ectx e ctx in
      match find_world e.sg w with
      | Some (Wsort f) ->
          let ms = elab_world_args e l args f.Ctxs.f_params in
          Meta.MSParam (l.lctx, f, ms)
      | Some (Wtype el) ->
          let f = Embed.elem ~refines:0 el in
          let ms = elab_world_args e l args f.Ctxs.f_params in
          Meta.MSParam (l.lctx, f, ms)
      | None -> err loc "unknown world %s" w)

let rec elab_csort e (s : Ext.csort) : Comp.ctyp =
  match s with
  | Ext.SBox (_, ctx, t) ->
      let l = elab_ectx e ctx in
      Comp.CBox (Meta.MSTerm (l.lctx, elab_asrt e l t))
  | Ext.SArr (a, b) -> Comp.CArr (elab_csort e a, elab_csort e b)
  | Ext.SPi (_, x, implicit, dom, body) ->
      let ms = elab_cdom e dom in
      let e' = push_omega e x (Check_comp.mdecl_of_msrt x ms) in
      Comp.CPi (x, implicit, ms, elab_csort e' body)

(** Synthesize a boxed neutral term's sort (for [case \[Ψ ⊢ M\] of …]). *)
let synth_box e (ctx : Ext.ectx) (t : Ext.term) : Meta.mobj * Meta.msrt =
  let l = elab_ectx e ctx in
  let head_ext, args = flatten t [] in
  let h = elab_head e l ~holes:None head_ext in
  let s_h = Check_lfr.head_srt_principal (lfr_env e) l.lctx h in
  let sp, s_res = elab_spine e l ~holes:None (term_loc t) args s_h in
  let m = mk_root h sp in
  (Meta.MOTerm (Meta.hat_of_sctx l.lctx, m), Meta.MSTerm (l.lctx, s_res))

(** Replace occurrences of [target] (an LF normal, adjusted under LF
    binders) by [X₀] in a comp sort: dependent case invariants. *)
let abstract_normal (target : normal) (t : Comp.ctyp) : Comp.ctyp =
  let x0 d = mk_root (mk_mvar 1 (mk_shift d)) [] in
  ignore x0;
  let rec in_normal d m =
    if Equal.normal m (Shift.shift_normal d 0 target) then
      mk_root (mk_mvar 1 (mk_shift d)) []
    else
      match m with
      | Lam (x, n) -> mk_lam x (in_normal (d + 1) n)
      | Root (h, sp) -> mk_root h (List.map (in_normal d) sp)
  in
  let in_srt d = function
    | SAtom (s, sp) -> mk_satom s (List.map (in_normal d) sp)
    | SEmbed (a, sp) -> mk_sembed a (List.map (in_normal d) sp)
    | SPi _ as s -> s
  in
  let in_msrt = function
    | Meta.MSTerm (psi, q) -> Meta.MSTerm (psi, in_srt 0 q)
    | ms -> ms
  in
  let rec in_ctyp = function
    | Comp.CBox ms -> Comp.CBox (in_msrt ms)
    | Comp.CArr (a, b) -> Comp.CArr (in_ctyp a, in_ctyp b)
    | Comp.CPi (x, imp, ms, b) -> Comp.CPi (x, imp, in_msrt ms, in_ctyp b)
  in
  in_ctyp t

let rec elab_cexp e (x : Ext.cexp) (expected : Comp.ctyp) : Comp.exp =
  match (x, expected) with
  | Ext.EFn (_, n, body), Comp.CArr (t1, t2) ->
      Comp.Fn (n, None, elab_cexp (push_comp e n t1) body t2)
  | Ext.EFn (loc, _, _), _ -> err loc "fn used at a non-arrow sort"
  | Ext.EMlam (_, n, body), Comp.CPi (_, _, ms, t) ->
      Comp.MLam (n, elab_cexp (push_omega e n (Check_comp.mdecl_of_msrt n ms)) body t)
  | Ext.EMlam (loc, _, _), _ -> err loc "mlam used at a non-Π sort"
  | Ext.EBox (loc, ctx, t), Comp.CBox (Meta.MSTerm (psi_s, q_s)) ->
      let l = elab_ectx e ctx in
      if not (Sctxops.sctx_weakens ~from:l.lctx ~into:psi_s)
         && not (Equal.sctx l.lctx psi_s)
      then err loc "box context does not match the expected context";
      (* elaborate the term in the expected context, with the written
         names *)
      let l' = { lctx = psi_s; lnames = l.lnames } in
      let m = elab_term e l' ~holes:None t q_s in
      Comp.Box (Meta.MOTerm (Meta.hat_of_sctx psi_s, m))
  | Ext.EBox (loc, _, _), Comp.CBox _ ->
      err loc "boxed term used where another form of box is expected"
  | Ext.ECtx (_, ctx), Comp.CBox (Meta.MSCtx _) ->
      let l = elab_ectx e ctx in
      Comp.Box (Meta.MOCtx l.lctx)
  | Ext.ELetBox (loc, n, e1, e2), _ ->
      let e1', ms =
        match elab_csynth e e1 with
        | e1', Comp.CBox ms -> (e1', ms)
        | _ -> err loc "let [%s] = … requires a box" n
      in
      let e' = push_omega e n (Check_comp.mdecl_of_msrt n ms) in
      Comp.LetBox (n, e1', elab_cexp e' e2 (Shift.mshift_ctyp 1 0 expected))
  | Ext.ECase (loc, scrut, branches), _ ->
      let scrut', ms_s =
        match scrut with
        | Ext.EBox (_, ctx, t) ->
            let mo, ms = synth_box e ctx t in
            (Comp.Box mo, ms)
        | _ -> (
            match elab_csynth e scrut with
            | s', Comp.CBox ms -> (s', ms)
            | _ -> err loc "case scrutinee must have a box sort")
      in
      let inv_body =
        let shifted = Shift.mshift_ctyp 1 0 expected in
        match scrut' with
        | Comp.Box (Meta.MOTerm (_, m)) ->
            abstract_normal (Shift.mshift_normal 1 0 m) shifted
        | _ -> shifted
      in
      let inv =
        { Comp.inv_mctx = []; Comp.inv_name = "X0"; Comp.inv_msrt = ms_s;
          Comp.inv_body }
      in
      let brs = List.map (elab_branch e inv) branches in
      Comp.Case (inv, scrut', brs)
  | (Ext.EIdent _ | Ext.EApp _), _ ->
      let e', _t = elab_csynth e x in
      (* final agreement is established by the checker *)
      e'
  | Ext.EBox (loc, _, _), _ | Ext.ECtx (loc, _), _ ->
      err loc "boxed object used at a non-box sort"

and elab_csynth e (x : Ext.cexp) : Comp.exp * Comp.ctyp =
  match x with
  | Ext.EIdent (loc, s) -> (
      match find_index s e.comp_names with
      | Some i -> (Comp.Var i, snd (List.nth e.comp (i - 1)))
      | None -> (
          match List.assoc_opt s e.recs with
          | Some (id, t) -> (Comp.RecConst id, t)
          | None -> (
              match Sign.lookup_name e.sg s with
              | Some (Sign.Sym_rec id) ->
                  (Comp.RecConst id, (Sign.rec_entry e.sg id).Sign.r_styp)
              | _ -> err loc "unbound computation-level identifier %s" s)))
  | Ext.EApp (loc, f, a) -> (
      let f', tf = elab_csynth e f in
      match tf with
      | Comp.CPi (_, _, ms, t) ->
          let mo = elab_mobj e a ms in
          (Comp.MApp (f', mo), Msub.ctyp 0 (Msub.inst1 mo) t)
      | Comp.CArr (t1, t2) -> (Comp.App (f', elab_cexp e a t1), t2)
      | _ -> err loc "application of a non-function")
  | Ext.EBox (loc, ctx, t) ->
      (* a closed boxed neutral synthesizes its principal sort, so it can
         be bound directly: [let \[K\] = \[ |- M\] in …].  Open boxes stay
         checking-only — the kernel re-synthesizes from the erased context
         and only the empty one determines the variables' sorts. *)
      let mo, ms = synth_box e ctx t in
      (match ms with
      | Meta.MSTerm (psi, _)
        when psi.Ctxs.s_var = None && psi.Ctxs.s_decls = [] ->
          ()
      | _ -> err loc "only a closed box synthesizes a sort here");
      (Comp.Box mo, Comp.CBox ms)
  | _ -> err (cexp_loc x) "cannot synthesize a sort for this expression"

(** A meta-object argument checked against its expected contextual sort. *)
and elab_mobj e (x : Ext.cexp) (ms : Meta.msrt) : Meta.mobj =
  match (x, ms) with
  | Ext.EBox (loc, ctx, t), Meta.MSTerm (psi_s, q_s) ->
      let l = elab_ectx e ctx in
      if not (Sctxops.sctx_weakens ~from:l.lctx ~into:psi_s)
         && not (Equal.sctx l.lctx psi_s)
      then err loc "box context does not match the expected context";
      let l' = { lctx = psi_s; lnames = l.lnames } in
      let m = elab_term e l' ~holes:None t q_s in
      Meta.MOTerm (Meta.hat_of_sctx psi_s, m)
  | Ext.ECtx (_, ctx), Meta.MSCtx _ ->
      let l = elab_ectx e ctx in
      Meta.MOCtx l.lctx
  | Ext.EBox (loc, ctx, t), Meta.MSParam _ -> (
      let l = elab_ectx e ctx in
      match elab_head e l ~holes:None t with
      | (BVar _ | PVar _) as h ->
          Meta.MOParam (Meta.hat_of_sctx l.lctx, h)
      | _ -> err loc "parameter argument must be a variable")
  | _, _ ->
      err (cexp_loc x) "meta-object argument does not match the expected sort"

and elab_branch e (inv : Comp.inv) (b : Ext.branch) : Comp.branch =
  (* branch declarations, written outermost first *)
  let e_all, n0 =
    List.fold_left
      (fun (e', n) (_, name, dom) ->
        let ms = elab_cdom e' dom in
        (push_omega e' name (Check_comp.mdecl_of_msrt name ms), n + 1))
      (e, 0) b.Ext.b_decls
  in
  let omega0 =
    (* the first n0 entries of e_all.omega *)
    let rec take k l = if k = 0 then [] else List.hd l :: take (k - 1) (List.tl l) in
    take n0 e_all.omega
  in
  let psi_s, q_s =
    match Shift.mshift_msrt n0 0 inv.Comp.inv_msrt with
    | Meta.MSTerm (psi, q) -> (psi, q)
    | _ -> err b.Ext.b_loc "only boxed-term scrutinees can be matched"
  in
  (* bind the written context's names over the scrutinee context *)
  let l_written = elab_ectx e_all b.Ext.b_ctx in
  if
    List.length l_written.lnames <> List.length psi_s.Ctxs.s_decls
    || l_written.lctx.Ctxs.s_var <> psi_s.Ctxs.s_var
  then err b.Ext.b_loc "pattern context does not match the scrutinee context";
  let l = { lctx = psi_s; lnames = l_written.lnames } in
  let pat_m = elab_term e_all l ~holes:None b.Ext.b_pat q_s in
  let pat = Meta.MOTerm (Meta.hat_of_sctx psi_s, pat_m) in
  (* body expected: ⟦pat/X₀⟧ inv_body, pre-unification *)
  let body_expected =
    Msub.ctyp 0 (Msub.inst1 pat) (Shift.mshift_ctyp n0 1 inv.Comp.inv_body)
  in
  let body = elab_cexp e_all b.Ext.b_body body_expected in
  { Comp.br_mctx = omega0; Comp.br_pat = pat; Comp.br_body = body }
