(** External (surface) abstract syntax, produced by {!Parse} and consumed
    by {!Elab}.  Everything carries locations for error reporting. *)

open Belr_support

(** LF-level terms, types, sorts, and kinds share one syntax; the
    elaborator sorts them out from context. *)
type term =
  | Ident of Loc.t * string
  | TypeKw of Loc.t  (** the kind [type] *)
  | SortKw of Loc.t  (** the refinement kind [sort] *)
  | App of term * term
  | Arrow of term * term  (** [a -> b], right-associative *)
  | Pi of Loc.t * string * term * term  (** [{x : A} B] *)
  | Lam of Loc.t * string * term  (** [\x. M] *)
  | Hash of Loc.t * string  (** [#b], a parameter variable *)
  | Proj of Loc.t * term * int  (** [t.k] *)
  | Sub of Loc.t * term * esub  (** [M\[σ\]] *)

(** Substitutions [\[.., f₁, …, fₖ\]]; [es_dots] records whether the
    identity prefix [..] is present (it must be, unless the domain is
    closed). *)
and esub = { es_dots : bool; es_fronts : efront list }

and efront =
  | Fterm of term
  | Ftuple of Loc.t * term list  (** [<t₁; …; tₙ>], replacing a block *)

(** Context entry classifiers. *)
type eclass =
  | Cworld of Loc.t * string * term list  (** [b : xeW M₁ … Mₙ] *)
  | Cblock of Loc.t * (string * term) list  (** [b : block (x:t, …)] *)
  | Cterm of term  (** [x : A] *)

type ectx_entry = { ce_name : string; ce_class : eclass }

(** Contexts [Ψ], possibly rooted at a (promoted) context variable. *)
type ectx = {
  ec_loc : Loc.t;
  ec_var : (string * bool) option;  (** (name, promoted?) *)
  ec_entries : ectx_entry list;  (** outermost first, as written *)
}

(** Computation-level sorts. *)
type csort =
  | SBox of Loc.t * ectx * term  (** [\[Ψ ⊢ S\]] *)
  | SArr of csort * csort
  | SPi of Loc.t * string * bool * cdom * csort
      (** [{X : dom} ζ]; the [bool] marks surface [(X : dom)] (implicit
          style — still explicit internally in this front end) *)

and cdom =
  | DSchema of Loc.t * string  (** a schema name *)
  | DBox of Loc.t * ectx * term  (** a boxed sort *)
  | DParam of Loc.t * ectx * string * term list
      (** [#\[Ψ ⊢ w M₁…\]], a parameter-variable domain *)

(** Computation-level expressions. *)
type cexp =
  | EIdent of Loc.t * string
  | EApp of Loc.t * cexp * cexp
  | EFn of Loc.t * string * cexp
  | EMlam of Loc.t * string * cexp
  | ECase of Loc.t * cexp * branch list
  | ELetBox of Loc.t * string * cexp * cexp
  | EBox of Loc.t * ectx * term  (** [\[Ψ ⊢ M\]] *)
  | ECtx of Loc.t * ectx  (** [\[Ψ\]] — a context argument *)

and branch = {
  b_loc : Loc.t;
  b_decls : (Loc.t * string * cdom) list;  (** [{X : dom}] prefix, outermost first *)
  b_ctx : ectx;
  b_pat : term;
  b_body : cexp;
}

(** Top-level declarations. *)
type ctor = { k_loc : Loc.t; k_name : string; k_typ : term }

type world = {
  w_loc : Loc.t;
  w_name : string;
  w_params : (string * term) list;
  w_fields : (string * term) list;
}

type typ_decl = {
  d_loc : Loc.t;
  d_name : string;
  d_refines : string option;  (** [LFR s <| a : …] *)
  d_kind : term;
  d_ctors : ctor list;
}

type decl =
  | Dtyp of typ_decl
  | Dmutual of typ_decl list
      (** [LFR s₁ <| a : … = … and s₂ <| a : … = …;] — mutually recursive
          (refinement) families: all families are declared before any
          constructor is processed *)
  | Dschema of {
      s_loc : Loc.t;
      s_name : string;
      s_refines : string option;
      s_worlds : world list;
    }
  | Drec of rec_def list
      (** [rec f : ζ = e;] — the list has one element per member of a
          [rec … and …;] mutual-recursion group (usually a singleton);
          all headers are declared before any body is processed *)
  | Dblock of { bl_loc : Loc.t; bl_world : world }
      (** [%block b = {x:A}* block (y:t, …);] — a named context block for
          [%worlds] declarations (Twelf-style regular worlds) *)
  | Dworlds of {
      ws_loc : Loc.t;
      ws_blocks : (Loc.t * string) list;  (** [(b₁ | … | bₙ)] *)
      ws_fams : (Loc.t * string) list;  (** the families so bounded *)
    }
      (** [%worlds (b₁ | … | bₙ) fam₁ … famₖ;] — declares the regular
          worlds of each family: contexts appearing at its uses may only
          extend by instances of the listed blocks *)
  | Dmode of {
      md_loc : Loc.t;
      md_fam : Loc.t * string;  (** the moded (type or sort) family *)
      md_args : (Loc.t * bool * string) list;
          (** one [(+|-) name] per explicit argument position, in order;
              [true] marks an input ([+]) position *)
    }
      (** [%mode fam +M … -N;] — declares the mode of a judgment family:
          [+] positions are inputs, [-] positions outputs (Twelf-style) *)

and rec_def = { r_loc : Loc.t; r_name : string; r_sort : csort; r_body : cexp }

type program = decl list

(** The location anchoring a whole declaration (for diagnostics whose
    exception carries no span of its own). *)
let decl_loc : decl -> Loc.t = function
  | Dtyp d -> d.d_loc
  | Dmutual (d :: _) -> d.d_loc
  | Dmutual [] -> Loc.ghost
  | Dschema { s_loc; _ } -> s_loc
  | Drec (d :: _) -> d.r_loc
  | Drec [] -> Loc.ghost
  | Dblock { bl_loc; _ } -> bl_loc
  | Dworlds { ws_loc; _ } -> ws_loc
  | Dmode { md_loc; _ } -> md_loc

let typ_decl_names (d : typ_decl) : string list =
  (* a refinement's "constructors" name existing constants of the refined
     family — those belong to an earlier declaration and must not be
     poisoned when this one fails *)
  d.d_name
  ::
  (if d.d_refines = None then List.map (fun c -> c.k_name) d.d_ctors else [])

(** The synthetic signature name binding the [%worlds] declaration of
    family [fam].  The ["%"] cannot occur in a surface identifier, so the
    name can never collide with (or shadow) a user declaration — and
    [Sign.bind_name]'s duplicate rejection enforces one [%worlds] per
    family for free. *)
let worlds_name (fam : string) : string = fam ^ "%worlds"

(** The synthetic signature name binding the [%mode] declaration of
    family [fam] (same discipline as {!worlds_name}: one [%mode] per
    family, enforced by [Sign.bind_name]'s duplicate rejection). *)
let mode_name (fam : string) : string = fam ^ "%mode"

(** Every name a declaration would bind in the signature — the set to
    poison when the declaration fails to check.  A schema also auto-binds
    its trivial refinement under [name ^ "^"]. *)
let declared_names : decl -> string list = function
  | Dtyp d -> typ_decl_names d
  | Dmutual ds -> List.concat_map typ_decl_names ds
  | Dschema { s_name; _ } -> [ s_name; s_name ^ "^" ]
  | Drec ds -> List.map (fun d -> d.r_name) ds
  | Dblock { bl_world; _ } -> [ bl_world.w_name ]
  | Dworlds { ws_fams; _ } ->
      List.map (fun (_, f) -> worlds_name f) ws_fams
  | Dmode { md_fam = _, f; _ } -> [ mode_name f ]

(* --- surface name references (incremental invalidation) ---------------- *)

(** Every identifier a declaration {e mentions}, straight off the surface
    syntax: term/sort identifiers, parameter variables, world names,
    refined family and schema names, expression identifiers.  A sound
    over-approximation of the signature names it depends on — binders are
    not tracked, so a shadowed global counts as referenced; the
    incremental checker then merely re-checks more than strictly needed,
    never less.  Returned sorted and deduplicated. *)
let referenced_names (d : decl) : string list =
  let acc = ref [] in
  let add n = acc := n :: !acc in
  let rec term = function
    | Ident (_, x) -> add x
    | TypeKw _ | SortKw _ -> ()
    | App (t1, t2) | Arrow (t1, t2) -> term t1; term t2
    | Pi (_, _, t1, t2) -> term t1; term t2
    | Lam (_, _, t) -> term t
    | Hash (_, x) -> add x
    | Proj (_, t, _) -> term t
    | Sub (_, t, es) ->
        term t;
        List.iter
          (function
            | Fterm t -> term t
            | Ftuple (_, ts) -> List.iter term ts)
          es.es_fronts
  in
  let ectx (c : ectx) =
    (match c.ec_var with Some (x, _) -> add x | None -> ());
    List.iter
      (fun e ->
        match e.ce_class with
        | Cworld (_, w, ts) -> add w; List.iter term ts
        | Cblock (_, fields) -> List.iter (fun (_, t) -> term t) fields
        | Cterm t -> term t)
      c.ec_entries
  in
  let rec csort = function
    | SBox (_, c, t) -> ectx c; term t
    | SArr (z1, z2) -> csort z1; csort z2
    | SPi (_, _, _, dom, z) -> cdom dom; csort z
  and cdom = function
    | DSchema (_, g) -> add g
    | DBox (_, c, t) -> ectx c; term t
    | DParam (_, c, w, ts) -> ectx c; add w; List.iter term ts
  in
  let rec cexp = function
    | EIdent (_, x) -> add x
    | EApp (_, e1, e2) -> cexp e1; cexp e2
    | EFn (_, _, e) | EMlam (_, _, e) -> cexp e
    | ECase (_, e, bs) ->
        cexp e;
        List.iter
          (fun b ->
            List.iter (fun (_, _, dom) -> cdom dom) b.b_decls;
            ectx b.b_ctx;
            term b.b_pat;
            cexp b.b_body)
          bs
    | ELetBox (_, _, e1, e2) -> cexp e1; cexp e2
    | EBox (_, c, t) -> ectx c; term t
    | ECtx (_, c) -> ectx c
  in
  let typ_decl (td : typ_decl) =
    Option.iter add td.d_refines;
    term td.d_kind;
    List.iter (fun k -> term k.k_typ) td.d_ctors;
    (* a refinement's "constructors" name existing constants *)
    if td.d_refines <> None then
      List.iter (fun k -> add k.k_name) td.d_ctors
  in
  (match d with
  | Dtyp td -> typ_decl td
  | Dmutual tds -> List.iter typ_decl tds
  | Dschema { s_refines; s_worlds; _ } ->
      Option.iter add s_refines;
      List.iter
        (fun w ->
          List.iter (fun (_, t) -> term t) w.w_params;
          List.iter (fun (_, t) -> term t) w.w_fields)
        s_worlds
  | Drec ds ->
      List.iter
        (fun rd ->
          csort rd.r_sort;
          cexp rd.r_body)
        ds
  | Dblock { bl_world = w; _ } ->
      List.iter (fun (_, t) -> term t) w.w_params;
      List.iter (fun (_, t) -> term t) w.w_fields
  | Dworlds { ws_blocks; ws_fams; _ } ->
      List.iter (fun (_, b) -> add b) ws_blocks;
      List.iter (fun (_, f) -> add f) ws_fams
  | Dmode { md_fam = _, f; _ } -> add f);
  List.sort_uniq String.compare !acc
