(** External (surface) abstract syntax, produced by {!Parse} and consumed
    by {!Elab}.  Everything carries locations for error reporting. *)

open Belr_support

(** LF-level terms, types, sorts, and kinds share one syntax; the
    elaborator sorts them out from context. *)
type term =
  | Ident of Loc.t * string
  | TypeKw of Loc.t  (** the kind [type] *)
  | SortKw of Loc.t  (** the refinement kind [sort] *)
  | App of term * term
  | Arrow of term * term  (** [a -> b], right-associative *)
  | Pi of Loc.t * string * term * term  (** [{x : A} B] *)
  | Lam of Loc.t * string * term  (** [\x. M] *)
  | Hash of Loc.t * string  (** [#b], a parameter variable *)
  | Proj of Loc.t * term * int  (** [t.k] *)
  | Sub of Loc.t * term * esub  (** [M\[σ\]] *)

(** Substitutions [\[.., f₁, …, fₖ\]]; [es_dots] records whether the
    identity prefix [..] is present (it must be, unless the domain is
    closed). *)
and esub = { es_dots : bool; es_fronts : efront list }

and efront =
  | Fterm of term
  | Ftuple of Loc.t * term list  (** [<t₁; …; tₙ>], replacing a block *)

(** Context entry classifiers. *)
type eclass =
  | Cworld of Loc.t * string * term list  (** [b : xeW M₁ … Mₙ] *)
  | Cblock of Loc.t * (string * term) list  (** [b : block (x:t, …)] *)
  | Cterm of term  (** [x : A] *)

type ectx_entry = { ce_name : string; ce_class : eclass }

(** Contexts [Ψ], possibly rooted at a (promoted) context variable. *)
type ectx = {
  ec_loc : Loc.t;
  ec_var : (string * bool) option;  (** (name, promoted?) *)
  ec_entries : ectx_entry list;  (** outermost first, as written *)
}

(** Computation-level sorts. *)
type csort =
  | SBox of Loc.t * ectx * term  (** [\[Ψ ⊢ S\]] *)
  | SArr of csort * csort
  | SPi of Loc.t * string * bool * cdom * csort
      (** [{X : dom} ζ]; the [bool] marks surface [(X : dom)] (implicit
          style — still explicit internally in this front end) *)

and cdom =
  | DSchema of Loc.t * string  (** a schema name *)
  | DBox of Loc.t * ectx * term  (** a boxed sort *)
  | DParam of Loc.t * ectx * string * term list
      (** [#\[Ψ ⊢ w M₁…\]], a parameter-variable domain *)

(** Computation-level expressions. *)
type cexp =
  | EIdent of Loc.t * string
  | EApp of Loc.t * cexp * cexp
  | EFn of Loc.t * string * cexp
  | EMlam of Loc.t * string * cexp
  | ECase of Loc.t * cexp * branch list
  | ELetBox of Loc.t * string * cexp * cexp
  | EBox of Loc.t * ectx * term  (** [\[Ψ ⊢ M\]] *)
  | ECtx of Loc.t * ectx  (** [\[Ψ\]] — a context argument *)

and branch = {
  b_loc : Loc.t;
  b_decls : (Loc.t * string * cdom) list;  (** [{X : dom}] prefix, outermost first *)
  b_ctx : ectx;
  b_pat : term;
  b_body : cexp;
}

(** Top-level declarations. *)
type ctor = { k_loc : Loc.t; k_name : string; k_typ : term }

type world = {
  w_loc : Loc.t;
  w_name : string;
  w_params : (string * term) list;
  w_fields : (string * term) list;
}

type typ_decl = {
  d_loc : Loc.t;
  d_name : string;
  d_refines : string option;  (** [LFR s <| a : …] *)
  d_kind : term;
  d_ctors : ctor list;
}

type decl =
  | Dtyp of typ_decl
  | Dmutual of typ_decl list
      (** [LFR s₁ <| a : … = … and s₂ <| a : … = …;] — mutually recursive
          (refinement) families: all families are declared before any
          constructor is processed *)
  | Dschema of {
      s_loc : Loc.t;
      s_name : string;
      s_refines : string option;
      s_worlds : world list;
    }
  | Drec of rec_def list
      (** [rec f : ζ = e;] — the list has one element per member of a
          [rec … and …;] mutual-recursion group (usually a singleton);
          all headers are declared before any body is processed *)

and rec_def = { r_loc : Loc.t; r_name : string; r_sort : csort; r_body : cexp }

type program = decl list

(** The location anchoring a whole declaration (for diagnostics whose
    exception carries no span of its own). *)
let decl_loc : decl -> Loc.t = function
  | Dtyp d -> d.d_loc
  | Dmutual (d :: _) -> d.d_loc
  | Dmutual [] -> Loc.ghost
  | Dschema { s_loc; _ } -> s_loc
  | Drec (d :: _) -> d.r_loc
  | Drec [] -> Loc.ghost

let typ_decl_names (d : typ_decl) : string list =
  (* a refinement's "constructors" name existing constants of the refined
     family — those belong to an earlier declaration and must not be
     poisoned when this one fails *)
  d.d_name
  ::
  (if d.d_refines = None then List.map (fun c -> c.k_name) d.d_ctors else [])

(** Every name a declaration would bind in the signature — the set to
    poison when the declaration fails to check.  A schema also auto-binds
    its trivial refinement under [name ^ "^"]. *)
let declared_names : decl -> string list = function
  | Dtyp d -> typ_decl_names d
  | Dmutual ds -> List.concat_map typ_decl_names ds
  | Dschema { s_name; _ } -> [ s_name; s_name ^ "^" ]
  | Drec ds -> List.map (fun d -> d.r_name) ds
