(** Declaration processing: parse → elaborate → check → extend the
    signature.

    Every elaborated object is re-checked with the unified sort checker,
    and every computation-level function additionally has its erasure
    re-checked through the type-level (embedded) fragment — running the
    conservativity theorems on all user code. *)

open Belr_support
open Belr_syntax
open Belr_lf
open Belr_core

(* Telemetry spans: phase names are shared across declarations so the
   --stats/--profile renderers aggregate by pipeline phase.  "elaborate"
   covers surface→internal reconstruction, "check-lf" the LF kind/type
   checker, "check-lfr" the unified sort checker, "check-comp" the
   computation level, and "conservativity" the erase + re-check pass. *)

let span = Telemetry.with_span

(** Phase 1: declare the family (type or sort); phase 2 processes the
    constructors — split so that mutually recursive declaration groups
    ([LFR … and …]) can declare every family first. *)
let declare_family (sg : Sign.t) (d : Ext.typ_decl) :
    [ `T of Lf.cid_typ | `S of Lf.cid_srt ] =
  let e = Elab.make_env sg in
  let l0 = { Elab.lctx = Ctxs.empty_sctx; Elab.lnames = [] } in
  match d.Ext.d_refines with
  | None ->
      let kind = span "elaborate" (fun () -> Elab.elab_kind e l0 d.Ext.d_kind) in
      span "check-lf" (fun () ->
          Check_lf.check_kind (Check_lf.make_env sg []) Ctxs.empty_ctx kind);
      `T (Sign.add_typ sg ~name:d.Ext.d_name ~kind ~implicit:0)
  | Some a_name ->
      let a =
        match Sign.lookup_name sg a_name with
        | Some (Sign.Sym_typ a) -> a
        | _ ->
            Error.raise_at d.Ext.d_loc "%s does not name a type family" a_name
      in
      let skind =
        span "elaborate" (fun () -> Elab.elab_skind e l0 d.Ext.d_kind)
      in
      span "check-lfr" (fun () ->
          Check_lfr.check_skind_refines (Check_lfr.make_env sg [])
            Ctxs.empty_sctx skind
            (Sign.typ_entry sg a).Sign.t_kind);
      `S (Sign.add_srt sg ~name:d.Ext.d_name ~refines:a ~skind ~implicit:0)

let process_family_ctors (sg : Sign.t) (d : Ext.typ_decl)
    (fam : [ `T of Lf.cid_typ | `S of Lf.cid_srt ]) : unit =
  let e = Elab.make_env sg in
  match fam with
  | `T a ->
      List.iter
        (fun (c : Ext.ctor) ->
          let typ, implicit =
            span "elaborate" (fun () -> Elab.elab_decl_typ e c.Ext.k_typ)
          in
          span "check-lf" (fun () ->
              Check_lf.check_typ (Check_lf.make_env sg []) Ctxs.empty_ctx typ);
          if Lf.typ_target typ <> a then
            Error.raise_at c.Ext.k_loc
              "constructor %s does not target the family %s" c.Ext.k_name
              d.Ext.d_name;
          ignore (Sign.add_const sg ~name:c.Ext.k_name ~typ ~implicit))
        d.Ext.d_ctors
  | `S s ->
      List.iter
        (fun (c : Ext.ctor) ->
          let const =
            match Sign.lookup_name sg c.Ext.k_name with
            | Some (Sign.Sym_const cid) -> cid
            | _ ->
                Error.raise_at c.Ext.k_loc
                  "%s does not name an existing constructor (refinements \
                   select constructors of the refined family)"
                  c.Ext.k_name
          in
          let srt, implicit =
            span "elaborate" (fun () -> Elab.elab_decl_srt e c.Ext.k_typ)
          in
          (match Lf.srt_target srt with
          | Some s' when s' = s -> ()
          | _ ->
              Error.raise_at c.Ext.k_loc
                "assigned sort does not target the declared family");
          span "check-lfr" (fun () ->
              Check_lfr.check_srt_refines (Check_lfr.make_env sg [])
                Ctxs.empty_sctx srt
                (Sign.const_entry sg const).Sign.c_typ);
          Sign.add_csort sg ~const ~srt ~implicit)
        d.Ext.d_ctors

let process_decl_inner (sg : Sign.t) (d : Ext.decl) : unit =
  let e = Elab.make_env sg in
  match d with
  | Ext.Dtyp td -> process_family_ctors sg td (declare_family sg td)
  | Ext.Dmutual tds ->
      (* declare every family first, then process every constructor *)
      let fams = List.map (declare_family sg) tds in
      List.iter2 (process_family_ctors sg) tds fams
  | Ext.Dschema { s_loc; s_name; s_refines = None; s_worlds } ->
      let elems =
        List.map
          (fun (w : Ext.world) ->
            let rec params l acc = function
              | [] -> (l, List.rev acc)
              | (x, t) :: rest ->
                  let ty = Elab.elab_typ e l t in
                  params (Elab.lpush l x (Embed.typ ty)) ((x, ty) :: acc) rest
            in
            let l0 = { Elab.lctx = Ctxs.empty_sctx; Elab.lnames = [] } in
            let l1, ps = params l0 [] w.Ext.w_params in
            let rec fields l acc = function
              | [] -> List.rev acc
              | (x, t) :: rest ->
                  let ty = Elab.elab_typ e l t in
                  fields (Elab.lpush l x (Embed.typ ty)) ((x, ty) :: acc) rest
            in
            let blk = fields l1 [] w.Ext.w_fields in
            { Ctxs.e_name = w.Ext.w_name; Ctxs.e_params = ps;
              Ctxs.e_block = blk })
          s_worlds
      in
      span "check-lf" (fun () ->
          Check_lf.check_schema (Check_lf.make_env sg []) elems);
      ignore (Sign.add_schema sg ~name:s_name ~elems);
      ignore s_loc
  | Ext.Dschema { s_loc; s_name; s_refines = Some g_name; s_worlds } ->
      let g =
        match Sign.lookup_name sg g_name with
        | Some (Sign.Sym_schema g) -> g
        | _ -> Error.raise_at s_loc "%s does not name a schema" g_name
      in
      let g_elems = (Sign.schema_entry sg g).Sign.g_elems in
      let selems =
        List.map
          (fun (w : Ext.world) ->
            let refines =
              let rec find i = function
                | [] ->
                    Error.raise_at w.Ext.w_loc
                      "world %s does not appear in schema %s" w.Ext.w_name
                      g_name
                | (el : Ctxs.elem) :: rest ->
                    if Name.to_string el.Ctxs.e_name = w.Ext.w_name then i
                    else find (i + 1) rest
              in
              find 0 g_elems
            in
            let rec params l acc = function
              | [] -> (l, List.rev acc)
              | (x, t) :: rest ->
                  let s = Elab.elab_srt e l t in
                  params (Elab.lpush l x s) ((x, s) :: acc) rest
            in
            let l0 = { Elab.lctx = Ctxs.empty_sctx; Elab.lnames = [] } in
            let l1, ps = params l0 [] w.Ext.w_params in
            let rec fields l acc = function
              | [] -> List.rev acc
              | (x, t) :: rest ->
                  let s = Elab.elab_srt e l t in
                  fields (Elab.lpush l x s) ((x, s) :: acc) rest
            in
            let blk = fields l1 [] w.Ext.w_fields in
            { Ctxs.f_name = w.Ext.w_name; Ctxs.f_refines = refines;
              Ctxs.f_params = ps; Ctxs.f_block = blk })
          s_worlds
      in
      span "check-lfr" (fun () ->
          Check_lfr.check_sschema_refines (Check_lfr.make_env sg []) selems
            g_elems);
      ignore (Sign.add_sschema sg ~name:s_name ~refines:g ~elems:selems)
  | Ext.Dblock { bl_loc; bl_world = w } ->
      (* elaborate params and fields at the sort level: a type-level
         family arrives as its embedding, a refinement family as an
         atomic sort, so one path covers both LF and LFR blocks *)
      let l0 = { Elab.lctx = Ctxs.empty_sctx; Elab.lnames = [] } in
      let rec params l acc = function
        | [] -> (l, List.rev acc)
        | (x, t) :: rest ->
            let s = span "elaborate" (fun () -> Elab.elab_srt e l t) in
            params (Elab.lpush l x s) ((x, s) :: acc) rest
      in
      let l1, ps = params l0 [] w.Ext.w_params in
      let rec fields l acc = function
        | [] -> List.rev acc
        | (x, t) :: rest ->
            let s = span "elaborate" (fun () -> Elab.elab_srt e l t) in
            fields (Elab.lpush l x s) ((x, s) :: acc) rest
      in
      let blk = fields l1 [] w.Ext.w_fields in
      span "check-lfr" (fun () ->
          ignore
            (Check_lfr.wf_selem
               (Check_lfr.make_env sg [])
               Ctxs.empty_sctx
               {
                 Ctxs.f_name = w.Ext.w_name;
                 Ctxs.f_refines = 0;
                 Ctxs.f_params = ps;
                 Ctxs.f_block = blk;
               }));
      ignore (Sign.add_block sg ~name:w.Ext.w_name ~params:ps ~fields:blk);
      ignore bl_loc
  | Ext.Dworlds { ws_loc; ws_blocks; ws_fams } ->
      let blocks =
        List.map
          (fun (bloc, b) ->
            match Sign.lookup_name sg b with
            | Some (Sign.Sym_block id) -> id
            | _ -> Error.raise_at bloc "%s does not name a %%block" b)
          ws_blocks
      in
      List.iter
        (fun (floc, f) ->
          let fam =
            match Sign.lookup_name sg f with
            | Some (Sign.Sym_typ a) -> a
            | Some (Sign.Sym_srt s) -> (Sign.srt_entry sg s).Sign.s_refines
            | _ ->
                Error.raise_at floc
                  "%s does not name a type or sort family" f
          in
          Sign.add_worlds sg ~fam ~fam_name:f ~blocks ~loc:ws_loc)
        ws_fams
  | Ext.Dmode { md_loc; md_fam = floc, f; md_args } ->
      (* a sort family keys its mode under the refined type family (one
         mode per erased judgment), but the analyzer will check the sort
         family's own — sharper — clauses *)
      let fam, srt, arity =
        match Sign.lookup_name sg f with
        | Some (Sign.Sym_typ a) ->
            (a, None, Lf.kind_arity (Sign.typ_entry sg a).Sign.t_kind)
        | Some (Sign.Sym_srt s) ->
            let se = Sign.srt_entry sg s in
            (se.Sign.s_refines, Some s, Lf.skind_arity se.Sign.s_kind)
        | _ -> Error.raise_at floc "%s does not name a type or sort family" f
      in
      let n = List.length md_args in
      if n <> arity then
        Error.raise_at md_loc
          "%%mode for %s declares %d argument position(s) but the family \
           has %d"
          f n arity;
      let args = List.map (fun (_, input, x) -> (input, x)) md_args in
      Sign.add_mode sg ~fam ~srt ~name:f ~args ~loc:md_loc
  | Ext.Drec defs ->
      (* two-phase, like [Dmutual]: declare every header first so the
         bodies of a [rec … and …;] group can call any member *)
      let headers =
        List.map
          (fun (def : Ext.rec_def) ->
            let styp =
              span "elaborate" (fun () -> Elab.elab_csort e def.Ext.r_sort)
            in
            let typ = Erase.ctyp sg styp in
            span "check-comp" (fun () ->
                ignore (Check_comp.wf_ctyp (Check_comp.make_env sg [] []) styp));
            let id = Sign.add_rec sg ~name:def.Ext.r_name ~styp ~typ in
            (def, id, styp, typ))
          defs
      in
      Sign.set_rec_group sg (List.map (fun (_, id, _, _) -> id) headers);
      let recs_env =
        List.map (fun (def, id, styp, _) -> (def.Ext.r_name, (id, styp))) headers
      in
      List.iter
        (fun ((def : Ext.rec_def), id, styp, typ) ->
          let e_body = { e with Elab.recs = recs_env @ e.Elab.recs } in
          let body =
            span "elaborate" (fun () -> Elab.elab_cexp e_body def.Ext.r_body styp)
          in
          span "check-comp" (fun () ->
              try Check_comp.check_exp (Check_comp.make_env sg [] []) body styp
              with Error.Belr_error (loc, msg) ->
                let loc = if Loc.is_ghost loc then def.Ext.r_loc else loc in
                Error.raise_at loc "in the body of %s: %s" def.Ext.r_name msg);
          (* conservativity: the erasure checks through the type-level
             (embedded) fragment *)
          span "conservativity" (fun () ->
              Embed_t.check_exp_t sg [] [] (Erase.exp sg body) typ);
          Sign.set_rec_body sg id body)
        headers

(** Process one declaration, under a "decl" telemetry span carrying the
    first declared name (so traces show which declaration each phase
    belongs to). *)
let process_decl (sg : Sign.t) (d : Ext.decl) : unit =
  (* coarse declaration spans for every bound name, before the finer
     per-constructor spans recorded below; tooling over the checked
     signature (belr lint) locates its findings with these *)
  List.iter
    (fun n -> Sign.set_decl_loc sg n (Ext.decl_loc d))
    (Ext.declared_names d);
  let typ_decl_locs (td : Ext.typ_decl) =
    List.iter
      (fun n -> Sign.set_decl_loc sg n td.Ext.d_loc)
      (Ext.typ_decl_names td);
    if td.Ext.d_refines = None then
      List.iter
        (fun (c : Ext.ctor) -> Sign.set_decl_loc sg c.Ext.k_name c.Ext.k_loc)
        td.Ext.d_ctors
  in
  (match d with
  | Ext.Dtyp td -> typ_decl_locs td
  | Ext.Dmutual tds -> List.iter typ_decl_locs tds
  | Ext.Drec defs ->
      List.iter
        (fun (def : Ext.rec_def) ->
          Sign.set_decl_loc sg def.Ext.r_name def.Ext.r_loc)
        defs
  | Ext.Dschema _ | Ext.Dblock _ | Ext.Dworlds _ | Ext.Dmode _ -> ());
  if Telemetry.enabled () then
    let arg =
      match Ext.declared_names d with name :: _ -> name | [] -> ""
    in
    span ~arg "decl" (fun () -> process_decl_inner sg d)
  else process_decl_inner sg d

(** Process a whole source program into a signature (fail-fast: the first
    error is raised as an exception, as the unit tests and examples
    expect). *)
let program ?name (src : string) : Sign.t =
  let decls = span "parse" (fun () -> Parse.parse_program ?name src) in
  let sg = Sign.create () in
  List.iter (process_decl sg) decls;
  sg

(** Process one declaration under error recovery: a failure is rendered
    into [sink] (located at the declaration, code [E0201] unless the
    exception carries its own classification) and the declaration's names
    are poisoned so downstream references yield a single [E0801]
    dependency note instead of an error cascade. *)
let process_decl_tolerant (sink : Diagnostics.sink) (sg : Sign.t)
    (d : Ext.decl) : unit =
  match
    Diagnostics.recover sink ~loc:(Ext.decl_loc d) ~code:"E0201" (fun () ->
        process_decl sg d)
  with
  | Some () -> ()
  | None -> List.iter (Sign.poison sg) (Ext.declared_names d)

(** Process additional declarations into an existing signature.

    Without [?diags] this is fail-fast, as before.  With [?diags] the
    pipeline is fault-tolerant: syntax errors resynchronize at declaration
    boundaries, and each declaration that fails to elaborate or check is
    reported, skipped, and poisoned while checking continues with the rest
    of the input — so one pass reports every independent error in a
    file. *)
let extend ?diags (sg : Sign.t) ?name (src : string) : unit =
  match diags with
  | None ->
      let decls = span "parse" (fun () -> Parse.parse_program ?name src) in
      List.iter (process_decl sg) decls
  | Some sink ->
      let decls =
        span "parse" (fun () -> Parse.parse_program_tolerant sink ?name src)
      in
      List.iter (process_decl_tolerant sink sg) decls
