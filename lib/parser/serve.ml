(** The [belr serve] daemon engine: a session-isolated, crash-only,
    incrementally re-checking JSON-line protocol (schema [belr-serve/1]).

    {b Protocol.}  One JSON object per line on stdin, one reply object
    per line on stdout.  Requests:

    {v
    { "id": <any>, "method": "check", "session": "s"?,
      "source": "…"? | "file": "path"?,
      "deadline_ms": <int>?, "step_budget": <int>?, "max_depth": <int>? }
    { "id": <any>, "method": "lint" | "total" | "modes" | "stats"
                           | "reset" | "metrics" | "health",
      "session": "s"?, … }
    v}

    Replies always carry ["schema"], the echoed ["id"], a server-minted
    ["request_id"] (["r<n>"], unique per input line, echoed in every log
    line and stamped on every telemetry span the request ran — the join
    key across replies, logs, and traces), the ["session"]
    name, a ["status"] of ["ok"] (request completed; user errors, if any,
    are in ["diagnostics"] and reflected in ["exit_code"]), ["degraded"]
    (a deadline/step budget or memory watermark cut the work short — the
    result is partial but the session is consistent), or ["error"] (the
    request itself failed: malformed protocol input, or an internal
    fault), plus ["diagnostics"] (code/severity/message/loc objects) and
    a ["telemetry"] object.  Malformed input never kills the loop: the
    reply is a structured [E0904] error and reading resynchronizes at the
    next line.

    {b Sessions.}  Each session name owns a {!Belr_lf.Session.t} — its
    own signature, store, memo tables, and limit counters.  Requests
    bracket all checking inside [Session.with_], so sessions cannot
    observe each other and a session that a bug left inconsistent is
    discarded (crash-only: the reply reports the fault, the next request
    on that name gets a fresh world).

    {b Incremental checking.}  A [check] re-submits a whole source text;
    the engine diffs it against the session's previous text {e per
    declaration} (content hash over the declaration's source slice) and
    re-checks only the invalidation closure of the edited declarations:
    the declarations themselves, everything referencing their names
    (transitively, via surface references — {!Ext.referenced_names}),
    everything downstream in the subordination order
    ({!Belr_analysis.Subord.dependents} — [a ≼ b] means [a]-terms occur
    in [b]-terms, so an edit to [a] can change [b]'s meaning), members of
    the same [rec … and …] group (a group elaborates as one declaration),
    and every declaration that previously failed (so an erroneous-then-
    fixed edit fully recovers).  Unchanged declarations keep their
    signature entries — ids are stable under {!Belr_lf.Sign.retract_names}
    — so the work done is proportional to the edit, not the file. *)

open Belr_support
open Belr_syntax
open Belr_lf
module J = Json

let schema_id = "belr-serve/1"

(* --- per-declaration incremental records ------------------------------- *)

type entry = {
  en_key : string;
      (** primary declared name + occurrence index (stable across edits
          of other declarations; duplicates get distinct keys) *)
  en_names : string list;  (** every name the declaration binds *)
  en_refs : string list;  (** every name it mentions (surface) *)
  en_hash : int;  (** content hash of its source slice *)
  en_decl : Ext.decl;
  mutable en_ok : bool;  (** did its last (re-)check succeed? *)
}

type analysis_cache = {
  ac_sig : (string * int * bool) list;
      (** (key, content hash, last-check verdict) per declaration when
          the analysis ran — the cache is valid iff this still matches *)
  ac_olds : entry list;  (** the entries themselves, for closure counts *)
  ac_result : J.t;
  ac_diags : Diagnostics.t list;
      (** the findings the analysis emitted, replayed on a cache hit so
          a warm reply is indistinguishable from a cold one *)
}
(** A whole-signature analysis result ([lint] / [total]) memoized per
    declaration content-hash: a warm request over an unedited signature
    replays the cached reply instead of re-running the passes. *)

type session = {
  ss_name : string;
  ss_core : Session.t;
  mutable ss_entries : entry list;  (** declaration order *)
  mutable ss_text : string;  (** the last submitted source text *)
  mutable ss_parse_ok : bool;
      (** the last parse was error-free (precondition for reusing its
          declarations across the unchanged text prefix) *)
  mutable ss_lint_cache : analysis_cache option;
  mutable ss_total_cache : analysis_cache option;
  mutable ss_modes_cache : analysis_cache option;
}

type t = {
  sv_sessions : (string, session) Hashtbl.t;
  sv_deadline_ms : int option;  (** default per-request deadline *)
  sv_max_depth : int;
  sv_max_errors : int;
  sv_watermark : int option;  (** live-node bound before a pressure reset *)
  sv_slow_ms : float option;
      (** requests slower than this log their span tree ([--slow-ms]) *)
  sv_started_ns : int64;  (** monotonic server start (the [health] uptime) *)
  mutable sv_requests : int;
  mutable sv_rid : int;  (** request-id sequence (includes rejected lines) *)
  mutable sv_pressure_resets : int;
  mutable sv_deadline_overruns : int;
      (** requests degraded by a deadline or step budget (E0903) *)
}

(* --- the metrics registry (DESIGN.md §S24) ------------------------------ *)

(* Registered once at module load (the registry is idempotent anyway);
   recording is a flag check when metrics are off. *)
let m_requests =
  Metrics.counter ~help:"serve requests handled (all methods)"
    "serve.requests"

let m_protocol_errors =
  Metrics.counter ~help:"malformed or rejected serve requests (E0904)"
    "serve.protocol_errors"

let m_replies_ok = Metrics.counter ~help:"replies with status ok" "serve.replies.ok"

let m_replies_degraded =
  Metrics.counter ~help:"replies with status degraded" "serve.replies.degraded"

let m_replies_error =
  Metrics.counter ~help:"replies with status error" "serve.replies.error"

let m_decls_rechecked =
  Metrics.counter ~help:"declarations re-checked by the incremental engine"
    "serve.decls.rechecked"

let m_decls_reused =
  Metrics.counter ~help:"declarations reused by the incremental engine"
    "serve.decls.reused"

(** Per-method latency histograms; the [serve.check] p50/p99 is the
    headline number the bench overhead gate (E9) reads back. *)
let m_method_hist : (string * Metrics.histogram) list =
  List.map
    (fun m ->
      ( m,
        Metrics.histogram
          ~help:(Printf.sprintf "latency of serve %s requests (ns)" m)
          ("serve." ^ m) ))
    [ "check"; "lint"; "total"; "modes"; "stats"; "reset"; "metrics";
      "health" ]

let g_sessions = Metrics.gauge ~help:"live serve sessions" "serve.sessions"

let g_pressure_resets =
  Metrics.gauge ~help:"watermark-triggered session store resets"
    "serve.pressure_resets"

let g_deadline_overruns =
  Metrics.gauge ~help:"requests degraded by a deadline or step budget"
    "serve.deadline_overruns"

let g_store_live = Metrics.gauge ~help:"live interned store nodes" "store.live"

let g_store_interned =
  Metrics.gauge ~help:"total interned store nodes" "store.interned"

let g_store_dedup =
  Metrics.gauge ~help:"store dedup ratio (hits / lookups)" "store.dedup_ratio"

let g_whnf_hits =
  Metrics.gauge ~help:"whnf memo hits" "whnf.memo_hits"

let g_whnf_misses =
  Metrics.gauge ~help:"whnf memo misses" "whnf.memo_misses"

let g_whnf_forced =
  Metrics.gauge ~help:"delayed substitutions forced by whnf" "whnf.forced"

let g_whnf_eager =
  Metrics.gauge ~help:"whnf eager fallbacks to full substitution"
    "whnf.eager"

let g_gc_heap = Metrics.gauge ~help:"GC heap words" "gc.heap_words"

let g_gc_top_heap =
  Metrics.gauge ~help:"GC top heap words (peak)" "gc.top_heap_words"

let g_gc_minor =
  Metrics.gauge ~help:"GC minor collections" "gc.minor_collections"

let g_gc_major =
  Metrics.gauge ~help:"GC major collections" "gc.major_collections"

let g_limit_trips =
  Metrics.gauge ~help:"resource-guard trips (depth/deadline/budget)"
    "limits.trips"

let g_tele_dropped =
  Metrics.gauge ~help:"telemetry span events dropped by the ring buffer"
    "telemetry.events_dropped"

let g_log_dropped =
  Metrics.gauge ~help:"log lines dropped by the rate bound" "log.dropped"

let create ?deadline_ms ?(max_depth = Limits.default_max_depth)
    ?(max_errors = 64) ?watermark ?slow_ms () : t =
  Metrics.set_enabled true;
  {
    sv_sessions = Hashtbl.create 8;
    sv_deadline_ms = deadline_ms;
    sv_max_depth = max_depth;
    sv_max_errors = max_errors;
    sv_watermark = watermark;
    sv_slow_ms = slow_ms;
    sv_started_ns = Limits.now_ns ();
    sv_requests = 0;
    sv_rid = 0;
    sv_pressure_resets = 0;
    sv_deadline_overruns = 0;
  }

let uptime_ns (t : t) : int =
  Int64.to_int (Int64.sub (Limits.now_ns ()) t.sv_started_ns)

(** Sample the point-in-time gauges: GC, the session's store, the
    {!Limits} peak watermarks (exported per subsystem), and the server's
    own degradation counters.  Called at the end of every request — reads
    of always-on state, no instrumentation required. *)
let sample_gauges (t : t) (ses : session) : unit =
  let gc = Gc.quick_stat () in
  Metrics.set_int g_gc_heap gc.Gc.heap_words;
  Metrics.set_int g_gc_top_heap gc.Gc.top_heap_words;
  Metrics.set_int g_gc_minor gc.Gc.minor_collections;
  Metrics.set_int g_gc_major gc.Gc.major_collections;
  Session.with_ ses.ss_core (fun () ->
      let st = Belr_syntax.Lf.store_stats () in
      Metrics.set_int g_store_live st.Belr_syntax.Lf.st_live;
      Metrics.set_int g_store_interned st.Belr_syntax.Lf.st_interned;
      Metrics.set g_store_dedup (Belr_syntax.Lf.dedup_ratio ());
      let ws = Belr_lf.Whnf.stats () in
      Metrics.set_int g_whnf_hits ws.Belr_lf.Whnf.ws_hits;
      Metrics.set_int g_whnf_misses ws.Belr_lf.Whnf.ws_misses;
      Metrics.set_int g_whnf_forced ws.Belr_lf.Whnf.ws_forced;
      Metrics.set_int g_whnf_eager ws.Belr_lf.Whnf.ws_eager;
      List.iter
        (fun (name, peak) ->
          Metrics.set_int (Metrics.gauge ("limits.peak." ^ name)) peak)
        (Limits.peaks ()));
  Metrics.set_int g_sessions (Hashtbl.length t.sv_sessions);
  Metrics.set_int g_pressure_resets t.sv_pressure_resets;
  Metrics.set_int g_deadline_overruns t.sv_deadline_overruns;
  Metrics.set_int g_limit_trips (Limits.trip_count ());
  Metrics.set_int g_tele_dropped (Telemetry.events_dropped ());
  Metrics.set_int g_log_dropped (Log.dropped ())

let find_session (t : t) (name : string) : session =
  match Hashtbl.find_opt t.sv_sessions name with
  | Some s -> s
  | None ->
      let s =
        {
          ss_name = name;
          ss_core = Session.create ();
          ss_entries = [];
          ss_text = "";
          ss_parse_ok = false;
          ss_lint_cache = None;
          ss_total_cache = None;
          ss_modes_cache = None;
        }
      in
      Hashtbl.replace t.sv_sessions name s;
      s

(* --- content hashing and slicing --------------------------------------- *)

(* FNV-1a over the slice: [Hashtbl.hash] samples long strings, which
   would make "no change" collide with "change past the sample window" —
   unacceptable for an invalidation oracle. *)
let content_hash (s : string) : int =
  let h = ref (0xcbf29ce484222325L |> Int64.to_int) in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x100000001b3 land max_int)
    s;
  !h

(** Pair each declaration with its source slice: from its start offset to
    the next declaration's start (the last one runs to end-of-string), so
    every byte of the text belongs to exactly one slice and any textual
    edit lands in some declaration's hash.  A ghost location (only
    possible for synthetic empty groups) degrades to offset 0 — its
    holder then re-checks whenever anything before it changes, which is
    sound. *)
let decl_slices (src : string) (decls : Ext.decl list) :
    (Ext.decl * string) list =
  let n = String.length src in
  let off d =
    let l = Ext.decl_loc d in
    if Loc.is_ghost l then 0 else min n l.Loc.start_pos.Loc.offset
  in
  let rec go = function
    | [] -> []
    | [ d ] ->
        let o = off d in
        [ (d, String.sub src o (n - o)) ]
    | d :: (d2 :: _ as rest) ->
        let o = off d and o2 = off d2 in
        (d, String.sub src o (max 0 (o2 - o))) :: go rest
  in
  go decls

(** Keys are [name#k] where [k] counts prior declarations with the same
    primary name — so a legitimately re-declared name (an error, but one
    the engine must survive) cannot alias two entries.  A declaration
    reused from the previous parse ([olds] holds the previous entries)
    keeps its cached reference list — the physical-equality check makes
    the reuse exact, never heuristic. *)
let entry_list ?(olds = []) (src : string) (decls : Ext.decl list) :
    entry list =
  let seen = Hashtbl.create 16 in
  let old_tbl = Hashtbl.create 16 in
  List.iter (fun o -> Hashtbl.replace old_tbl o.en_key o) olds;
  List.map
    (fun (d, slice) ->
      let names = Ext.declared_names d in
      let primary = match names with n :: _ -> n | [] -> "<empty>" in
      let k =
        match Hashtbl.find_opt seen primary with Some k -> k | None -> 0
      in
      Hashtbl.replace seen primary (k + 1);
      let key = primary ^ "#" ^ string_of_int k in
      let refs =
        match Hashtbl.find_opt old_tbl key with
        | Some o when o.en_decl == d -> o.en_refs
        | _ -> Ext.referenced_names d
      in
      {
        en_key = key;
        en_names = names;
        en_refs = refs;
        en_hash = content_hash slice;
        en_decl = d;
        en_ok = true;
      })
    (decl_slices src decls)

(* --- prefix-stable incremental reparse ---------------------------------- *)

let common_prefix_len (a : string) (b : string) : int =
  let n = min (String.length a) (String.length b) in
  let i = ref 0 in
  while !i < n && String.unsafe_get a !i = String.unsafe_get b !i do
    incr i
  done;
  !i

(** [src] with every non-newline byte before [cut] blanked out.  The
    parser then skips the prefix as whitespace in one linear scan, and —
    because newlines survive — every offset, line, and column of the
    tail parse is identical to a full parse of [src]. *)
let blank_prefix (src : string) (cut : int) : string =
  let b = Bytes.of_string src in
  for i = 0 to cut - 1 do
    if Bytes.get b i <> '\n' then Bytes.set b i ' '
  done;
  Bytes.to_string b

let decl_start (d : Ext.decl) : int =
  let l = Ext.decl_loc d in
  if Loc.is_ghost l then 0 else l.Loc.start_pos.Loc.offset

(** Declaration locations anchor at the declared {e name}; the
    introducing keyword ([LF], [LFR], [schema], [rec]) sits just before
    it.  Walk back over whitespace, then over the keyword's letters, so
    the reparse cut keeps the keyword in the tail.  Only whitespace and
    letters are crossed, so the scan can never escape past the previous
    declaration's [;] terminator or into a [%] comment. *)
let back_to_keyword (src : string) (off : int) : int =
  let back pred i =
    let j = ref (min i (String.length src)) in
    while !j > 0 && pred src.[!j - 1] do
      decr j
    done;
    !j
  in
  let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r' in
  let is_letter c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') in
  back is_letter (back is_ws off)

(** Parse [src], reusing the session's previous parse for every
    declaration whose source slice lies entirely inside the longest
    common prefix of the old and new text.  Only the tail — from the
    first changed declaration on — is re-lexed, so a warm re-check costs
    O(edit), not O(text).  Falls back to a full parse when the previous
    parse had errors (its declaration boundaries are untrustworthy). *)
let parse_incremental (sink : Diagnostics.sink) (ses : session)
    ~(name : string) (src : string) : Ext.decl list =
  let old = ses.ss_text in
  if (not ses.ss_parse_ok) || ses.ss_entries = [] then
    Parse.parse_program_tolerant sink ~name src
  else begin
    let p = common_prefix_len old src in
    (* a reused declaration must end (= next declaration's start) inside
       the unchanged prefix, and starts must stay monotone (ghost
       locations degrade to 0 and stop the reuse scan) *)
    let rec take acc prev_end = function
      | [] -> (List.rev acc, String.length old)
      | [ o ] ->
          if
            decl_start o.en_decl >= prev_end
            && String.length old <= p
          then (List.rev (o :: acc), String.length old)
          else (List.rev acc, decl_start o.en_decl)
      | o :: (o2 :: _ as rest) ->
          let s = decl_start o.en_decl and e = decl_start o2.en_decl in
          if s >= prev_end && e > s && e <= p then
            take (o :: acc) e rest
          else (List.rev acc, s)
    in
    let reused, cut = take [] 0 ses.ss_entries in
    (* reused entries always end <= p, but the empty-reuse stop case
       returns the first old declaration's start, which can exceed p
       (an edit in leading trivia, or an insertion before the first
       declaration); blanking [p, cut) would erase bytes of the {e new}
       text there, so fall back to a full parse instead *)
    let cut = if cut > p then 0 else back_to_keyword src cut in
    if cut = 0 then Parse.parse_program_tolerant sink ~name src
    else
      let tail =
        Parse.parse_program_tolerant sink ~name (blank_prefix src cut)
      in
      List.map (fun o -> o.en_decl) reused @ tail
  end

(* --- invalidation ------------------------------------------------------- *)

(** The subordination seed of a declaration: the type families its names
    resolve to in the {e current} signature (a sort contributes its
    refined family, a constant its target family).  Computed before
    retraction, so edited/removed declarations still resolve. *)
let entry_families (sg : Sign.t) (names : string list) : Lf.cid_typ list =
  List.filter_map
    (fun n ->
      match Sign.sym_opt sg n with
      | Some (Sign.Sym_typ a) -> Some a
      | Some (Sign.Sym_srt s) -> Some (Sign.srt_entry sg s).Sign.s_refines
      | Some (Sign.Sym_const c) -> Some (Sign.const_entry sg c).Sign.c_family
      | _ -> None)
    names

module SS = Set.Make (String)

(** Which new entries must re-check?  Returns the invalid subset of
    [news] (as a key set), given the previous entries and the session's
    pre-retraction signature. *)
let invalid_keys (sg : Sign.t) (olds : entry list) (news : entry list) :
    SS.t =
  let old_by_key = Hashtbl.create 32 in
  List.iter (fun e -> Hashtbl.replace old_by_key e.en_key e) olds;
  let new_keys =
    List.fold_left (fun s e -> SS.add e.en_key s) SS.empty news
  in
  let removed =
    List.filter (fun e -> not (SS.mem e.en_key new_keys)) olds
  in
  (* directly changed: new/edited content, or a previous failure (always
     retried so an erroneous-then-fixed declaration fully recovers) *)
  let changed e =
    match Hashtbl.find_opt old_by_key e.en_key with
    | None -> true
    | Some o -> o.en_hash <> e.en_hash || not o.en_ok
  in
  let seeds = List.filter changed news in
  (* subordination frontier of the edit (and of removals) *)
  let seed_fams =
    List.concat_map (fun e -> entry_families sg e.en_names) seeds
    @ List.concat_map (fun e -> entry_families sg e.en_names) removed
  in
  (* reachability over the direct subordination edges, not the full
     closure — the O(n³) closure would dominate warm re-checks (E8);
     with no seeds at all, don't even read the signature *)
  let dep_fams =
    if seed_fams = [] then []
    else Belr_analysis.Subord.dependents_of sg seed_fams
  in
  let dep_set = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace dep_set f ()) dep_fams;
  let in_dep_frontier e =
    seed_fams <> []
    && List.exists
         (fun f -> Hashtbl.mem dep_set f)
         (entry_families sg e.en_names)
  in
  (* fixpoint over surface references: an entry is invalid if it changed,
     sits on the subordination frontier, or mentions a name declared by
     an invalid or removed entry *)
  let invalid_names =
    ref
      (List.fold_left
         (fun s e -> List.fold_right SS.add e.en_names s)
         SS.empty (seeds @ removed))
  in
  let invalid =
    ref (List.fold_left (fun s e -> SS.add e.en_key s) SS.empty seeds)
  in
  let pass () =
    let grew = ref false in
    List.iter
      (fun e ->
        if not (SS.mem e.en_key !invalid) then
          if
            in_dep_frontier e
            || List.exists (fun r -> SS.mem r !invalid_names) e.en_refs
          then begin
            invalid := SS.add e.en_key !invalid;
            invalid_names :=
              List.fold_right SS.add e.en_names !invalid_names;
            grew := true
          end)
      news;
    !grew
  in
  while pass () do
    ()
  done;
  !invalid

(* --- whole-signature analysis caching (lint / total) --------------------- *)

let cache_sig (entries : entry list) : (string * int * bool) list =
  List.map (fun e -> (e.en_key, e.en_hash, e.en_ok)) entries

(** Run [analyze] (a whole-signature analysis reporting through [sink])
    under the per-declaration content-hash cache [get]/[set].  On a hit —
    every declaration's (key, content hash, check verdict) unchanged
    since the cached run — the cached findings are replayed into [sink]
    and the cached result returned without re-running the analysis, so a
    warm reply is indistinguishable from a cold one.  On a miss the
    analysis re-runs over the whole signature (the passes are signature
    folds, not per-declaration ones); the reported [rechecked] is the
    invalidation closure of the edits — the declarations whose findings
    could actually have changed — and [reused] the rest, mirroring the
    [check] method's accounting. *)
let with_analysis_cache (ses : session) (sink : Diagnostics.sink)
    ~(get : session -> analysis_cache option)
    ~(set : session -> analysis_cache option -> unit)
    (analyze : unit -> J.t) : J.t * int * int =
  let news = ses.ss_entries in
  let now = cache_sig news in
  match get ses with
  | Some c when c.ac_sig = now ->
      Diagnostics.with_stop sink (fun () ->
          List.iter (Diagnostics.emit sink) c.ac_diags);
      (c.ac_result, 0, List.length news)
  | cached ->
      let olds = match cached with Some c -> c.ac_olds | None -> [] in
      let invalid =
        Session.with_ ses.ss_core (fun () ->
            invalid_keys (Session.sign ses.ss_core) olds news)
      in
      let rechecked = SS.cardinal invalid in
      let reused = List.length news - rechecked in
      let result = analyze () in
      set ses
        (Some
           {
             ac_sig = now;
             ac_olds = news;
             ac_result = result;
             ac_diags = Diagnostics.all sink;
           });
      (result, rechecked, reused)

(* --- request handlers --------------------------------------------------- *)

let sign_summary_json (sg : Sign.t) : J.t =
  let s = Sign.summary sg in
  J.Obj
    [
      ("typs", J.Int s.Sign.n_typs);
      ("srts", J.Int s.Sign.n_srts);
      ("consts", J.Int s.Sign.n_consts);
      ("schemas", J.Int s.Sign.n_schemas);
      ("sschemas", J.Int s.Sign.n_sschemas);
      ("recs", J.Int s.Sign.n_recs);
    ]

(** Run the incremental check of [src] inside the session world.
    Returns [(result, rechecked, reused, deadline_hit)]. *)
let check_in_session (sink : Diagnostics.sink) (ses : session)
    ?(name = "<serve>") (src : string) : J.t * int * int * bool =
  let sg = Session.sign ses.ss_core in
  let errs0 = Diagnostics.error_count sink in
  let decls =
    Telemetry.with_span "parse" (fun () ->
        parse_incremental sink ses ~name src)
  in
  ses.ss_text <- src;
  ses.ss_parse_ok <- Diagnostics.error_count sink = errs0;
  let olds = ses.ss_entries in
  let news = entry_list ~olds src decls in
  let invalid = invalid_keys sg olds news in
  let new_keys =
    List.fold_left (fun s e -> SS.add e.en_key s) SS.empty news
  in
  (* retract everything that is gone or about to be re-processed *)
  List.iter
    (fun o ->
      if (not (SS.mem o.en_key new_keys)) || SS.mem o.en_key invalid then
        Sign.retract_names sg o.en_names)
    olds;
  let old_ok = Hashtbl.create 32 in
  List.iter (fun o -> Hashtbl.replace old_ok o.en_key o.en_ok) olds;
  let rechecked = ref 0 and reused = ref 0 in
  let deadline_hit = ref false in
  (* the sink's error cap can abort the loop below mid-way (Stop from
     [Diagnostics.emit]) — but the old entries are already retracted and
     [ss_text] updated, so [news] must be committed regardless.
     Pre-mark every to-re-check entry failed (the loop overwrites the
     mark when it actually processes one) and commit in a [finally]:
     entries the abort skipped then re-check on the next request instead
     of being reused as stale successes over an older text.  Reused
     (non-invalid) entries keep their default [en_ok = true], which is
     exact: an old entry with [en_ok = false] is always a seed. *)
  List.iter
    (fun e -> if SS.mem e.en_key invalid then e.en_ok <- false)
    news;
  Fun.protect
    ~finally:(fun () -> ses.ss_entries <- news)
    (fun () ->
      List.iter
        (fun e ->
          if SS.mem e.en_key invalid then
            if !deadline_hit || Limits.expired () then begin
              (* out of time: leave the rest unchecked-but-marked-failed
                 so the next request re-checks them; poison their names
                 so survivors that reference them degrade gracefully *)
              deadline_hit := true;
              List.iter (Sign.poison sg) e.en_names
            end
            else begin
              incr rechecked;
              Process.process_decl_tolerant sink sg e.en_decl;
              e.en_ok <-
                not (List.exists (Sign.is_poisoned sg) e.en_names)
            end
          else begin
            incr reused;
            e.en_ok <-
              (match Hashtbl.find_opt old_ok e.en_key with
              | Some ok -> ok
              | None -> true)
          end)
        news);
  let result =
    J.Obj
      [
        ("summary", sign_summary_json sg);
        ("decls", J.Int (List.length news));
        ( "failed",
          J.Int (List.length (List.filter (fun e -> not e.en_ok) news)) );
      ]
  in
  (result, !rechecked, !reused, !deadline_hit)

let kernel_stats_json () : J.t =
  let st = Belr_syntax.Lf.store_stats () in
  let ms = Hsub.memo_stats () in
  J.Obj
    [
      ("store_live", J.Int st.Belr_syntax.Lf.st_live);
      ("store_interned", J.Int st.Belr_syntax.Lf.st_interned);
      ("store_dedup_hits", J.Int st.Belr_syntax.Lf.st_dedup_hits);
      ("memo_hits", J.Int ms.Hsub.ms_hits);
      ("memo_misses", J.Int ms.Hsub.ms_misses);
      ("mfi_skips", J.Int ms.Hsub.ms_mfi_skips);
    ]

(* --- the protocol layer ------------------------------------------------- *)

type request = {
  rq_id : J.t;
  rq_method : string;
  rq_session : string;
  rq_source : string option;
  rq_file : string option;
  rq_deadline_ms : int option;
  rq_step_budget : int option;
  rq_max_depth : int option;
}

let parse_request (j : J.t) : (request, string) result =
  match j with
  | J.Obj _ -> (
      let str k = Option.bind (J.member k j) J.to_str in
      let int k = Option.bind (J.member k j) J.to_int in
      match str "method" with
      | None -> Result.Error "request lacks a \"method\" string"
      | Some m ->
          Ok
            {
              rq_id = Option.value (J.member "id" j) ~default:J.Null;
              rq_method = m;
              rq_session = Option.value (str "session") ~default:"default";
              rq_source = str "source";
              rq_file = str "file";
              rq_deadline_ms = int "deadline_ms";
              rq_step_budget = int "step_budget";
              rq_max_depth = int "max_depth";
            })
  | _ -> Result.Error "request is not a JSON object"

let reply ~id ~rid ~session ~status ~exit_code ?(result = J.Null) ~diags
    ~telemetry () : J.t =
  (match status with
  | "ok" -> Metrics.inc m_replies_ok
  | "degraded" -> Metrics.inc m_replies_degraded
  | _ -> Metrics.inc m_replies_error);
  J.Obj
    [
      ("schema", J.String schema_id);
      ("id", id);
      ("request_id", J.String rid);
      ("session", J.String session);
      ("status", J.String status);
      ("exit_code", J.Int exit_code);
      ("result", result);
      ("diagnostics", J.List (List.map Diagnostics.to_json diags));
      ("telemetry", J.Obj telemetry);
    ]

(** A protocol-level rejection: stable [E0904], nothing touched (but
    counted, logged, and carrying the request id like any reply). *)
let protocol_error ?(id = J.Null) ?(session = "-") ~rid msg : J.t =
  Metrics.inc m_protocol_errors;
  let d =
    Diagnostics.make ~code:"E0904" Diagnostics.Error
      "malformed serve request: %s" msg
  in
  Log.event ~level:Log.Warn "serve.protocol_error"
    [ ("request_id", J.String rid); ("session", J.String session);
      ("detail", J.String msg) ];
  reply ~id ~rid ~session ~status:"error" ~exit_code:1 ~diags:[ d ]
    ~telemetry:[] ()

let has_code (diags : Diagnostics.t list) (code : string) : bool =
  List.exists (fun d -> d.Diagnostics.d_code = code) diags

(** Span-tree JSON of the spans recorded during one request (from ring
    position [mark] on): completion-ordered entries with their nesting
    depth — enough to reconstruct the tree — plus a truncation marker
    when the ring wrapped over the request's oldest spans. *)
let span_tree_json (mark : int) : J.t =
  let evs, truncated = Telemetry.events_since mark in
  let spans =
    List.map
      (fun (ev : Telemetry.event) ->
        J.Obj
          ([
             ("name", J.String ev.Telemetry.ev_name);
             ( "dur_us",
               J.Float (Int64.to_float ev.Telemetry.ev_dur_ns /. 1e3) );
             ("depth", J.Int ev.Telemetry.ev_depth);
           ]
          @
          if ev.Telemetry.ev_arg = "" then []
          else [ ("detail", J.String ev.Telemetry.ev_arg) ]))
      evs
  in
  J.Obj
    ([ ("spans", J.List spans) ]
    @ if truncated then [ ("truncated", J.Bool true) ] else [])

(** Handle one parsed request.  Everything that can raise runs inside the
    session bracket with a sink; exceptions escaping {e this} function
    are engine bugs handled by {!handle_line}'s crash-only wrapper. *)
let handle_request (t : t) ~(rid : string) (rq : request) : J.t =
  t.sv_requests <- t.sv_requests + 1;
  Metrics.inc m_requests;
  let ses = find_session t rq.rq_session in
  Limits.set_max_depth
    (Option.value rq.rq_max_depth ~default:t.sv_max_depth);
  (* clear first, unconditionally: protocol-error paths below return
     without [finish], so a previous request's step budget could still
     be armed (and [arm_deadline] alone does not clear it) *)
  Limits.clear_deadline ();
  (match
     match rq.rq_deadline_ms with Some ms -> Some ms | None -> t.sv_deadline_ms
   with
  | Some ms -> Limits.arm_deadline ~ms
  | None -> ());
  Option.iter Limits.set_step_budget rq.rq_step_budget;
  let sink = Diagnostics.sink ~max_errors:t.sv_max_errors () in
  let t0 = Limits.now_ns () in
  let telemetry_was = Telemetry.enabled () in
  if not telemetry_was then Telemetry.set_enabled true;
  Telemetry.set_request_id rid;
  let decl_spans0 = Telemetry.phase_count "decl" in
  let ring_mark = Telemetry.events_recorded () in
  let finish ?result ?(degraded = false) ?(extra_telemetry = []) () =
    Telemetry.clear_request_id ();
    if not telemetry_was then Telemetry.set_enabled false;
    Limits.clear_deadline ();
    (* memory watermark: an oversized session store is cleared in place —
       sharing (not soundness) is lost, and the reply says so *)
    let pressure =
      match t.sv_watermark with
      | Some w when Session.with_ ses.ss_core Session.store_live > w ->
          Session.with_ ses.ss_core (fun () ->
              Belr_syntax.Lf.store_clear ();
              Hsub.clear_memo ());
          t.sv_pressure_resets <- t.sv_pressure_resets + 1;
          Diagnostics.emit sink
            (Diagnostics.make ~code:"W0901" Diagnostics.Warning
               "session %s: store passed the live-node watermark %d and \
                was reset (sharing lost, results unaffected)"
               ses.ss_name w);
          true
      | _ -> false
    in
    let diags = Diagnostics.all sink in
    let status =
      if Diagnostics.bug_count sink > 0 then "error"
      else if degraded || pressure || has_code diags "E0903" then "degraded"
      else "ok"
    in
    if has_code diags "E0903" then
      t.sv_deadline_overruns <- t.sv_deadline_overruns + 1;
    let elapsed_ns = Int64.sub (Limits.now_ns ()) t0 in
    let elapsed_ms = Int64.to_float elapsed_ns /. 1e6 in
    (match List.assoc_opt rq.rq_method m_method_hist with
    | Some h -> Metrics.observe h (Int64.to_int elapsed_ns)
    | None -> ());
    sample_gauges t ses;
    let exit_code = Diagnostics.exit_code sink in
    let log_counts =
      List.filter_map
        (fun (k, v) ->
          match (k, v) with
          | ("rechecked" | "reused"), J.Int n -> Some (k, J.Int n)
          | _ -> None)
        extra_telemetry
    in
    Log.event "serve.request"
      ([
         ("request_id", J.String rid);
         ("session", J.String rq.rq_session);
         ("method", J.String rq.rq_method);
         ("status", J.String status);
         ("exit_code", J.Int exit_code);
         ("duration_ms", J.Float elapsed_ms);
       ]
      @ log_counts);
    (match t.sv_slow_ms with
    | Some slow when elapsed_ms >= slow ->
        (* the request blew the latency threshold: dump its span tree so
           the hot phase is identifiable post-hoc, correlated by id *)
        Log.event ~level:Log.Warn "serve.slow"
          [
            ("request_id", J.String rid);
            ("session", J.String rq.rq_session);
            ("method", J.String rq.rq_method);
            ("duration_ms", J.Float elapsed_ms);
            ("slow_ms", J.Float slow);
            ("span_tree", span_tree_json ring_mark);
          ]
    | _ -> ());
    reply ~id:rq.rq_id ~rid ~session:rq.rq_session ~status ~exit_code
      ?result ~diags
      ~telemetry:
        ([
           ("elapsed_ms", J.Float elapsed_ms);
           ( "decl_spans",
             J.Int (Telemetry.phase_count "decl" - decl_spans0) );
         ]
        @ extra_telemetry)
      ()
  in
  (* protocol rejections return without [finish]: restore the telemetry
     flag and the ambient request id here too, or a rejected request
     would leak both into the next one *)
  let reject msg =
    Telemetry.clear_request_id ();
    if not telemetry_was then Telemetry.set_enabled false;
    protocol_error ~id:rq.rq_id ~session:rq.rq_session ~rid msg
  in
  (* an exception escaping the dispatch below is an engine bug headed for
     the crash-only B0002 wrapper in [handle_line]: restore the ambient
     telemetry state here, where [telemetry_was] is known — or the
     enabled flag (and with it process-wide span recording) leaks into
     every later request.  The [serve-dispatch] fault site makes this
     path testable end-to-end (every kernel site is absorbed by
     per-declaration recovery long before it could escape here). *)
  let crash_restore exn =
    Telemetry.clear_request_id ();
    if not telemetry_was then Telemetry.set_enabled false;
    raise exn
  in
  try
    Fault.hit "serve-dispatch";
    match rq.rq_method with
  | "check" -> (
      let src =
        match (rq.rq_source, rq.rq_file) with
        | Some s, _ -> Ok (s, "<serve>")
        | None, Some f -> (
            match Driver.read_file sink f with
            | Some s -> Ok (s, f)
            | None -> Result.Error (`Io f))
        | None, None -> Result.Error `Missing
      in
      match src with
      | Result.Error `Missing ->
          reject "method \"check\" needs a \"source\" or \"file\" string"
      | Result.Error (`Io _) ->
          (* E0701 is already in the sink; nothing was touched *)
          finish ()
      | Ok (src, name) ->
          let result = ref J.Null in
          let rechecked = ref 0 and reused = ref 0 in
          let degraded = ref false in
          Session.with_ ses.ss_core (fun () ->
              Diagnostics.with_stop sink (fun () ->
                  let r, rc, ru, dl = check_in_session sink ses ~name src in
                  result := r;
                  rechecked := rc;
                  reused := ru;
                  degraded := dl));
          (if !degraded && not (has_code (Diagnostics.all sink) "E0903") then
             let ms =
               Option.value rq.rq_deadline_ms
                 ~default:(Option.value t.sv_deadline_ms ~default:0)
             in
             Diagnostics.emit sink
               (Diagnostics.make ~code:"E0903" Diagnostics.Error
                  "resource limit exceeded: the request deadline of %d ms \
                   passed; %d declaration(s) left unchecked"
                  ms
                  (List.length
                     (List.filter (fun e -> not e.en_ok) ses.ss_entries))));
          Metrics.add m_decls_rechecked !rechecked;
          Metrics.add m_decls_reused !reused;
          finish ~result:!result ~degraded:!degraded
            ~extra_telemetry:
              [
                ("rechecked", J.Int !rechecked); ("reused", J.Int !reused);
              ]
            ())
  | "lint" ->
      let result, rechecked, reused =
        with_analysis_cache ses sink
          ~get:(fun s -> s.ss_lint_cache)
          ~set:(fun s c -> s.ss_lint_cache <- c)
          (fun () ->
            let lr = Driver.lint_in ses.ss_core sink in
            J.Obj
              [
                ( "passes",
                  J.Obj
                    (List.map
                       (fun (n, c) -> (n, J.Int c))
                       lr.Belr_analysis.Lint.lr_passes) );
              ])
      in
      finish ~result
        ~extra_telemetry:
          [ ("rechecked", J.Int rechecked); ("reused", J.Int reused) ]
        ()
  | "total" ->
      let result, rechecked, reused =
        with_analysis_cache ses sink
          ~get:(fun s -> s.ss_total_cache)
          ~set:(fun s c -> s.ss_total_cache <- c)
          (fun () ->
            let tr = Driver.total_in ses.ss_core sink in
            let fns = tr.Belr_comp.Totality.tr_fns in
            let n_term =
              List.length
                (List.filter
                   (fun f ->
                     f.Belr_comp.Totality.fv_term
                     = Belr_comp.Totality.TTotal)
                   fns)
            in
            let n_cov =
              List.length (List.filter Belr_comp.Totality.covered fns)
            in
            J.Obj
              [
                ("functions", J.Int (List.length fns));
                ("terminating", J.Int n_term);
                ("covered", J.Int n_cov);
              ])
      in
      finish ~result
        ~extra_telemetry:
          [ ("rechecked", J.Int rechecked); ("reused", J.Int reused) ]
        ()
  | "modes" ->
      let result, rechecked, reused =
        with_analysis_cache ses sink
          ~get:(fun s -> s.ss_modes_cache)
          ~set:(fun s c -> s.ss_modes_cache <- c)
          (fun () ->
            let mr = Driver.modes_in ses.ss_core sink in
            let fams = mr.Belr_analysis.Modes.mr_fams in
            let n_clean =
              List.length (List.filter Belr_analysis.Modes.clean fams)
            in
            J.Obj
              [
                ("modes", J.Int mr.Belr_analysis.Modes.mr_modes);
                ("families", J.Int (List.length fams));
                ("clean", J.Int n_clean);
                ("missing", J.Int mr.Belr_analysis.Modes.mr_missing);
              ])
      in
      finish ~result
        ~extra_telemetry:
          [ ("rechecked", J.Int rechecked); ("reused", J.Int reused) ]
        ()
  | "stats" ->
      (* back-compat alias: the historical shape, with the aggregate
         fields now read off the metrics registry *)
      let result =
        Session.with_ ses.ss_core (fun () ->
            J.Obj
              [
                ("summary", sign_summary_json (Session.sign ses.ss_core));
                ("decls", J.Int (List.length ses.ss_entries));
                ("kernel", kernel_stats_json ());
                ("requests", J.Int t.sv_requests);
                ("sessions", J.Int (Hashtbl.length t.sv_sessions));
                ("pressure_resets", J.Int t.sv_pressure_resets);
                ("deadline_overruns", J.Int t.sv_deadline_overruns);
                ( "decls_rechecked",
                  J.Int (Metrics.counter_value m_decls_rechecked) );
                ( "decls_reused",
                  J.Int (Metrics.counter_value m_decls_reused) );
                ( "telemetry_events_dropped",
                  J.Int (Telemetry.events_dropped ()) );
              ])
      in
      finish ~result ()
  | "reset" ->
      (* capture the session's watermarks {e before} discarding its
         world: a reset is exactly when an operator wants to know how
         hot the session ran, and the values are unrecoverable after *)
      let peaks, live =
        Session.with_ ses.ss_core (fun () ->
            ( Limits.peaks (),
              (Belr_syntax.Lf.store_stats ()).Belr_syntax.Lf.st_live ))
      in
      Session.reset ses.ss_core;
      ses.ss_entries <- [];
      ses.ss_text <- "";
      ses.ss_parse_ok <- false;
      ses.ss_lint_cache <- None;
      ses.ss_total_cache <- None;
      ses.ss_modes_cache <- None;
      finish
        ~result:
          (J.Obj
             [
               ("reset", J.Bool true);
               ( "peaks_before_reset",
                 J.Obj
                   (List.filter_map
                      (fun (name, peak) ->
                        if peak > 0 then Some (name, J.Int peak) else None)
                      peaks) );
               ("store_live_before_reset", J.Int live);
             ])
        ()
  | "metrics" ->
      (* the gauges in the report are the ones [finish] is about to
         re-sample; sample first so the reply carries current values *)
      sample_gauges t ses;
      finish ~result:(Metrics.to_json ()) ()
  | "health" ->
      let live =
        Session.with_ ses.ss_core (fun () ->
            (Belr_syntax.Lf.store_stats ()).Belr_syntax.Lf.st_live)
      in
      finish
        ~result:
          (J.Obj
             [
               ("status", J.String "up");
               ("uptime_ns", J.Int (uptime_ns t));
               ("requests", J.Int t.sv_requests);
               ("sessions", J.Int (Hashtbl.length t.sv_sessions));
               ("live_nodes", J.Int live);
               ("pressure_resets", J.Int t.sv_pressure_resets);
               ("deadline_overruns", J.Int t.sv_deadline_overruns);
               ("limit_trips", J.Int (Limits.trip_count ()));
               ( "telemetry_events_dropped",
                 J.Int (Telemetry.events_dropped ()) );
               ("log_lines_dropped", J.Int (Log.dropped ()));
             ])
        ()
  | m ->
      reject
        (Printf.sprintf
           "unknown method %S (expected check, lint, total, modes, stats, \
            reset, metrics, or health)"
           m)
  with exn -> crash_restore exn

(** Handle one input line, total: whatever happens, the caller gets a
    reply string (or [None] for blank lines) and the loop keeps going.
    An exception escaping the handler is an engine bug: the session is
    discarded (crash-only — its world is unreachable from any other
    session, so dropping it is safe) and reported as a [B0002]-class
    error reply. *)
let handle_line (t : t) (line : string) : string option =
  let line = String.trim line in
  if line = "" then None
  else begin
    (* one id per non-blank input line, minted before parsing so even a
       rejected line is correlatable across reply, log, and trace *)
    t.sv_rid <- t.sv_rid + 1;
    let rid = "r" ^ string_of_int t.sv_rid in
    let reply_json =
      match J.parse line with
      | Result.Error msg -> protocol_error ~rid msg
      | Ok j -> (
          match parse_request j with
          | Result.Error msg -> protocol_error ~rid msg
          | Ok rq -> (
              try handle_request t ~rid rq
              with exn ->
                Telemetry.clear_request_id ();
                Limits.clear_deadline ();
                Limits.reset ();
                Hashtbl.remove t.sv_sessions rq.rq_session;
                Log.event ~level:Log.Error "serve.engine_fault"
                  [
                    ("request_id", J.String rid);
                    ("session", J.String rq.rq_session);
                    ("method", J.String rq.rq_method);
                    ("detail", J.String (Printexc.to_string exn));
                  ];
                let d =
                  Diagnostics.make ~code:"B0002" Diagnostics.Bug
                    "unexpected exception in the serve engine (session %s \
                     discarded): %s"
                    rq.rq_session (Printexc.to_string exn)
                in
                reply ~id:rq.rq_id ~rid ~session:rq.rq_session
                  ~status:"error" ~exit_code:2 ~diags:[ d ] ~telemetry:[]
                  ()))
    in
    Some (J.to_string ~compact:true reply_json)
  end

(** The stdin/stdout loop: read lines until EOF, one reply per request
    line, flushed eagerly so a driving editor sees replies promptly. *)
let run (t : t) (ic : in_channel) (oc : out_channel) : unit =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
        (match handle_line t line with
        | Some r ->
            output_string oc r;
            output_char oc '\n';
            flush oc
        | None -> ());
        loop ()
  in
  loop ()
