(** The fault-tolerant checking driver behind [belr check].

    Lives in the library (rather than [bin/]) so the diagnostics story —
    multi-error reporting, per-declaration recovery, resource guards, exit
    codes — is testable without spawning the executable.  All diagnostics
    flow through one {!Belr_support.Diagnostics.sink}; the caller renders
    them (the CLI dumps to stderr, keeping stdout machine-readable) and
    maps the sink to an exit code. *)

open Belr_support

(** Read a file, closing the channel even on exception.  A missing or
    unreadable file becomes an [E0701] diagnostic naming the file, not an
    uncaught [Sys_error]. *)
let read_file (sink : Diagnostics.sink) (path : string) : string option =
  Diagnostics.recover sink ~code:"E0701" (fun () ->
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try really_input_string ic (in_channel_length ic)
          with End_of_file ->
            Error.raise_msg "file %s changed while being read" path))

(* Batch-pipeline metrics (one histogram observation and one counter
   bump per file — negligible next to checking, a flag check when the
   registry is off): what [belr check --metrics] exposes. *)
let m_files =
  Metrics.counter ~help:"source files checked by the batch pipeline"
    "check.files"

let m_file_hist =
  Metrics.histogram ~help:"per-file end-to-end checking latency (ns)"
    "check.file"

let with_file_metrics : 'a. (unit -> 'a) -> 'a =
 fun f ->
  if not (Metrics.enabled ()) then f ()
  else begin
    let t0 = Limits.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        Metrics.inc m_files;
        Metrics.observe m_file_hist
          (Int64.to_int (Int64.sub (Limits.now_ns ()) t0)))
      f
  end

(** Check named sources in order (later sources see the declarations of
    earlier ones), recovering per declaration; always returns the
    signature accumulated so far, even after the [--max-errors] cap. *)
let check_sources (sink : Diagnostics.sink)
    (sources : (string * string) list) : Belr_lf.Sign.t =
  let sg = Belr_lf.Sign.create () in
  Diagnostics.with_stop sink (fun () ->
      List.iter
        (fun (name, src) ->
          Telemetry.with_span ~arg:name "file" (fun () ->
              with_file_metrics (fun () ->
                  Process.extend ~diags:sink sg ~name src)))
        sources);
  sg

(** Check files from disk; unreadable files are reported and skipped. *)
let check_files (sink : Diagnostics.sink) (files : string list) :
    Belr_lf.Sign.t =
  let sg = Belr_lf.Sign.create () in
  Diagnostics.with_stop sink (fun () ->
      List.iter
        (fun f ->
          Telemetry.with_span ~arg:f "file" (fun () ->
              with_file_metrics (fun () ->
                  match read_file sink f with
                  | Some src -> Process.extend ~diags:sink sg ~name:f src
                  | None -> ())))
        files);
  sg

(** Run the [belr lint] signature analyses (subordination, adequacy,
    sorts, unused declarations, shadowing) over a checked signature,
    reporting through the {e same} sink the checking pipeline used — one
    unified diagnostic stream, one exit code.  Every pass already runs
    under {!Diagnostics.recover}; the [--max-errors] cap is absorbed here
    like in checking, in which case the per-pass counts cover only the
    passes that ran. *)
let lint ?passes (sink : Diagnostics.sink) (sg : Belr_lf.Sign.t) :
    Belr_analysis.Lint.result =
  let result = ref None in
  Diagnostics.with_stop sink (fun () ->
      result := Some (Belr_analysis.Lint.run ?passes sink sg));
  match !result with
  | Some r -> r
  | None ->
      {
        Belr_analysis.Lint.lr_passes = [];
        Belr_analysis.Lint.lr_subord = Belr_analysis.Subord.analyze sg;
      }

(** The totality analyses behind [belr total] and [check --total] (the
    paper's §6.1 future work): size-change termination and deep coverage
    over the whole signature, reported through the {e same} sink as
    checking — E0710 errors and W0711/W0712 warnings via the diagnostics
    registry, never on stdout, so they cannot corrupt the
    machine-readable summary.  Every SCC and every function is analyzed
    under recovery: an analysis crash on a partially checked signature is
    a reported bug, not a lost run. *)
let total ?depth ?budget (sink : Diagnostics.sink) (sg : Belr_lf.Sign.t) :
    Belr_comp.Totality.result =
  let result = ref None in
  Diagnostics.with_stop sink (fun () ->
      result := Some (Belr_comp.Totality.run ?depth ?budget sink sg));
  match !result with
  | Some r -> r
  | None -> Belr_comp.Totality.empty_result

(** Back-compatible alias: the [--total] flag of [belr check] runs the
    full totality analyzer for its diagnostics only. *)
let analyze (sink : Diagnostics.sink) (sg : Belr_lf.Sign.t) : unit =
  ignore (total sink sg)

(** The regular-worlds + strictness analyses behind [belr worlds] and
    [check --worlds] ([%block] / [%worlds] declarations, DESIGN.md §S25):
    context-schema subsumption and strict-occurrence checking over the
    whole signature, reported through the {e same} sink as checking —
    E0720 errors and W0721/W0722 warnings via the diagnostics registry.
    Every function is analyzed under recovery. *)
let worlds ?check_strict (sink : Diagnostics.sink) (sg : Belr_lf.Sign.t) :
    Belr_analysis.Worlds.result =
  let result = ref None in
  Diagnostics.with_stop sink (fun () ->
      result := Some (Belr_analysis.Worlds.run ?check_strict sink sg));
  match !result with
  | Some r -> r
  | None -> Belr_analysis.Worlds.empty_result

(** The mode & uniqueness analysis behind [belr modes] and
    [check --modes] ([%mode] declarations, DESIGN.md §S27): groundness
    dataflow and output-uniqueness over every moded family, reported
    through the {e same} sink as checking — E0730/E0731 errors and
    W0732/W0733 warnings via the diagnostics registry.  Every family is
    analyzed under recovery. *)
let modes (sink : Diagnostics.sink) (sg : Belr_lf.Sign.t) :
    Belr_analysis.Modes.result =
  let result = ref None in
  Diagnostics.with_stop sink (fun () ->
      result := Some (Belr_analysis.Modes.run sink sg));
  match !result with
  | Some r -> r
  | None -> Belr_analysis.Modes.empty_result

(* --- session-scoped entry points ---------------------------------------- *)

(** The same entry points, but run inside an explicit
    {!Belr_lf.Session.t} world: the session's own store arenas, memo
    tables, and limit counters are installed for the duration of the call
    and the result signature is recorded as the session's signature.
    These are what [belr serve] and any embedding host should call;
    the plain functions above keep the process-global world and remain
    the batch CLI's path. *)

let check_sources_in (ses : Belr_lf.Session.t) (sink : Diagnostics.sink)
    (sources : (string * string) list) : Belr_lf.Sign.t =
  Belr_lf.Session.with_ ses (fun () ->
      let sg = check_sources sink sources in
      ses.Belr_lf.Session.sn_sign <- sg;
      sg)

let check_files_in (ses : Belr_lf.Session.t) (sink : Diagnostics.sink)
    (files : string list) : Belr_lf.Sign.t =
  Belr_lf.Session.with_ ses (fun () ->
      let sg = check_files sink files in
      ses.Belr_lf.Session.sn_sign <- sg;
      sg)

let lint_in ?passes (ses : Belr_lf.Session.t) (sink : Diagnostics.sink) :
    Belr_analysis.Lint.result =
  Belr_lf.Session.with_ ses (fun () ->
      lint ?passes sink (Belr_lf.Session.sign ses))

let total_in ?depth ?budget (ses : Belr_lf.Session.t)
    (sink : Diagnostics.sink) : Belr_comp.Totality.result =
  Belr_lf.Session.with_ ses (fun () ->
      total ?depth ?budget sink (Belr_lf.Session.sign ses))

let worlds_in ?check_strict (ses : Belr_lf.Session.t)
    (sink : Diagnostics.sink) : Belr_analysis.Worlds.result =
  Belr_lf.Session.with_ ses (fun () ->
      worlds ?check_strict sink (Belr_lf.Session.sign ses))

let modes_in (ses : Belr_lf.Session.t) (sink : Diagnostics.sink) :
    Belr_analysis.Modes.result =
  Belr_lf.Session.with_ ses (fun () ->
      modes sink (Belr_lf.Session.sign ses))
