(** Recursive-descent parser for the surface language (grammar in
    README.md; see the paper's §2 listings for the intended look). *)

open Belr_support
open Token

type state = { toks : Lexer.lexeme array; mutable pos : int }

let make lexemes = { toks = Array.of_list lexemes; pos = 0 }

let cur st = st.toks.(st.pos)

let cur_tok st = (cur st).Lexer.tok

let cur_loc st = (cur st).Lexer.loc

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let peek_tok st k =
  if st.pos + k < Array.length st.toks then
    Some st.toks.(st.pos + k).Lexer.tok
  else None

let fail st fmt =
  Format.kasprintf
    (fun s ->
      Error.raise_at (cur_loc st) "parse error: %s (found %s)" s
        (Token.to_string (cur_tok st)))
    fmt

let expect st tok =
  if cur_tok st = tok then advance st
  else fail st "expected %s" (Token.to_string tok)

let expect_ident st =
  match cur_tok st with
  | IDENT s ->
      advance st;
      s
  | _ -> fail st "expected an identifier"

(* ------------------------------------------------------------------ *)
(* LF-level terms                                                      *)

let rec parse_term st : Ext.term =
  match cur_tok st with
  | LBRACE ->
      let loc = cur_loc st in
      advance st;
      let x = expect_ident st in
      expect st COLON;
      let dom = parse_term st in
      expect st RBRACE;
      let body = parse_term st in
      Ext.Pi (loc, x, dom, body)
  | BACKSLASH ->
      let loc = cur_loc st in
      advance st;
      let x = expect_ident st in
      expect st DOT;
      let body = parse_term st in
      Ext.Lam (loc, x, body)
  | _ ->
      let lhs = parse_app st in
      if cur_tok st = ARROW then (
        advance st;
        let rhs = parse_term st in
        Ext.Arrow (lhs, rhs))
      else lhs

and parse_app st : Ext.term =
  let head = parse_atom st in
  let rec go acc =
    match cur_tok st with
    | IDENT _ | LPAREN | HASH | KW_TYPE | KW_SORT | BACKSLASH ->
        let arg = parse_atom st in
        go (Ext.App (acc, arg))
    | _ -> acc
  in
  go head

and parse_atom st : Ext.term =
  let base =
    match cur_tok st with
    | IDENT s ->
        let loc = cur_loc st in
        advance st;
        Ext.Ident (loc, s)
    | KW_TYPE ->
        let loc = cur_loc st in
        advance st;
        Ext.TypeKw loc
    | KW_SORT ->
        let loc = cur_loc st in
        advance st;
        Ext.SortKw loc
    | HASH ->
        let loc = cur_loc st in
        advance st;
        let s = expect_ident st in
        Ext.Hash (loc, s)
    | LPAREN ->
        advance st;
        let t = parse_term st in
        expect st RPAREN;
        t
    | BACKSLASH ->
        let loc = cur_loc st in
        advance st;
        let x = expect_ident st in
        expect st DOT;
        let body = parse_term st in
        Ext.Lam (loc, x, body)
    | _ -> fail st "expected a term"
  in
  parse_postfix st base

and parse_postfix st (base : Ext.term) : Ext.term =
  match cur_tok st with
  | DOT -> (
      match peek_tok st 1 with
      | Some (NUM k) ->
          let loc = cur_loc st in
          advance st;
          advance st;
          parse_postfix st (Ext.Proj (loc, base, k))
      | _ -> base)
  | LBRACK ->
      let loc = cur_loc st in
      advance st;
      let s = parse_esub st in
      expect st RBRACK;
      parse_postfix st (Ext.Sub (loc, base, s))
  | _ -> base

and parse_esub st : Ext.esub =
  let dots =
    if cur_tok st = DOTDOT then (
      advance st;
      true)
    else false
  in
  let fronts = ref [] in
  let parse_front () =
    match cur_tok st with
    | LANGLE ->
        let loc = cur_loc st in
        advance st;
        let rec items acc =
          let t = parse_term st in
          if cur_tok st = SEMI then (
            advance st;
            items (t :: acc))
          else List.rev (t :: acc)
        in
        let ts = items [] in
        expect st RANGLE;
        Ext.Ftuple (loc, ts)
    | _ -> Ext.Fterm (parse_term st)
  in
  if dots then
    while cur_tok st = COMMA do
      advance st;
      fronts := parse_front () :: !fronts
    done
  else if cur_tok st <> RBRACK then begin
    fronts := [ parse_front () ];
    while cur_tok st = COMMA do
      advance st;
      fronts := parse_front () :: !fronts
    done
  end;
  { Ext.es_dots = dots; Ext.es_fronts = List.rev !fronts }

(* ------------------------------------------------------------------ *)
(* Contexts                                                            *)

and parse_ectx st : Ext.ectx =
  let loc = cur_loc st in
  if cur_tok st = DOT then (
    advance st;
    { Ext.ec_loc = loc; Ext.ec_var = None; Ext.ec_entries = [] })
  else if cur_tok st = TURNSTILE || cur_tok st = RBRACK then
    { Ext.ec_loc = loc; Ext.ec_var = None; Ext.ec_entries = [] }
  else begin
    (* first item: bare identifier (optionally ^) = context variable *)
    let var =
      match (cur_tok st, peek_tok st 1) with
      | IDENT s, Some CARET ->
          advance st;
          advance st;
          Some (s, true)
      | IDENT s, (Some (COMMA | TURNSTILE | RBRACK) | None) ->
          advance st;
          Some (s, false)
      | _ -> None
    in
    let entries = ref [] in
    let parse_entry () =
      let n = expect_ident st in
      expect st COLON;
      let cls =
        if cur_tok st = KW_BLOCK then begin
          let bloc = cur_loc st in
          advance st;
          expect st LPAREN;
          let rec fields acc =
            let f = expect_ident st in
            expect st COLON;
            let t = parse_term st in
            if cur_tok st = COMMA then (
              advance st;
              fields ((f, t) :: acc))
            else List.rev ((f, t) :: acc)
          in
          let fs = fields [] in
          expect st RPAREN;
          Ext.Cblock (bloc, fs)
        end
        else Ext.Cterm (parse_term st)
      in
      entries := { Ext.ce_name = n; Ext.ce_class = cls } :: !entries
    in
    (match var with
    | Some _ ->
        while cur_tok st = COMMA do
          advance st;
          parse_entry ()
        done
    | None ->
        parse_entry ();
        while cur_tok st = COMMA do
          advance st;
          parse_entry ()
        done);
    { Ext.ec_loc = loc; Ext.ec_var = var; Ext.ec_entries = List.rev !entries }
  end

(* ------------------------------------------------------------------ *)
(* Computation-level sorts                                             *)

and parse_cdom st : Ext.cdom =
  match cur_tok st with
  | IDENT s ->
      let loc = cur_loc st in
      advance st;
      Ext.DSchema (loc, s)
  | LBRACK ->
      let loc = cur_loc st in
      advance st;
      let ctx = parse_ectx st in
      expect st TURNSTILE;
      let t = parse_term st in
      expect st RBRACK;
      Ext.DBox (loc, ctx, t)
  | HASH ->
      let loc = cur_loc st in
      advance st;
      expect st LBRACK;
      let ctx = parse_ectx st in
      expect st TURNSTILE;
      let w = expect_ident st in
      let rec args acc =
        match cur_tok st with
        | RBRACK -> List.rev acc
        | _ -> args (parse_atom st :: acc)
      in
      let ms = args [] in
      expect st RBRACK;
      Ext.DParam (loc, ctx, w, ms)
  | _ -> fail st "expected a schema name, a boxed sort, or #[…]"

and parse_csort st : Ext.csort =
  match cur_tok st with
  | LBRACE ->
      let loc = cur_loc st in
      advance st;
      let x = expect_ident st in
      expect st COLON;
      let dom = parse_cdom st in
      expect st RBRACE;
      let body = parse_csort st in
      Ext.SPi (loc, x, false, dom, body)
  | LPAREN when is_implicit_pi st ->
      let loc = cur_loc st in
      advance st;
      let x = expect_ident st in
      expect st COLON;
      let dom = parse_cdom st in
      expect st RPAREN;
      let body = parse_csort st in
      Ext.SPi (loc, x, true, dom, body)
  | _ ->
      let lhs = parse_csort_atom st in
      if cur_tok st = ARROW then (
        advance st;
        let rhs = parse_csort st in
        Ext.SArr (lhs, rhs))
      else lhs

and is_implicit_pi st =
  match (peek_tok st 1, peek_tok st 2) with
  | Some (IDENT _), Some COLON -> true
  | _ -> false

and parse_csort_atom st : Ext.csort =
  match cur_tok st with
  | LBRACK ->
      let loc = cur_loc st in
      advance st;
      let ctx = parse_ectx st in
      expect st TURNSTILE;
      let t = parse_term st in
      expect st RBRACK;
      Ext.SBox (loc, ctx, t)
  | LPAREN ->
      advance st;
      let s = parse_csort st in
      expect st RPAREN;
      s
  | _ -> fail st "expected a computation-level sort"

(* ------------------------------------------------------------------ *)
(* Computation-level expressions                                       *)

and parse_cexp st : Ext.cexp =
  match cur_tok st with
  | KW_FN ->
      let loc = cur_loc st in
      advance st;
      let x = expect_ident st in
      expect st DARROW;
      Ext.EFn (loc, x, parse_cexp st)
  | KW_MLAM ->
      let loc = cur_loc st in
      advance st;
      let x = expect_ident st in
      expect st DARROW;
      Ext.EMlam (loc, x, parse_cexp st)
  | KW_LET ->
      let loc = cur_loc st in
      advance st;
      expect st LBRACK;
      let x = expect_ident st in
      expect st RBRACK;
      expect st EQUAL;
      let e1 = parse_cexp st in
      expect st KW_IN;
      let e2 = parse_cexp st in
      Ext.ELetBox (loc, x, e1, e2)
  | KW_CASE ->
      let loc = cur_loc st in
      advance st;
      let scrut = parse_capp st in
      expect st KW_OF;
      let branches = ref [] in
      while cur_tok st = BAR do
        advance st;
        branches := parse_branch st :: !branches
      done;
      if !branches = [] then fail st "case expression has no branches";
      Ext.ECase (loc, scrut, List.rev !branches)
  | _ -> parse_capp st

and parse_capp st : Ext.cexp =
  let head = parse_catom st in
  let rec go acc =
    match cur_tok st with
    | IDENT _ | LBRACK | LPAREN ->
        let arg = parse_catom st in
        go (Ext.EApp (cur_loc st, acc, arg))
    | _ -> acc
  in
  go head

and parse_catom st : Ext.cexp =
  match cur_tok st with
  | IDENT s ->
      let loc = cur_loc st in
      advance st;
      Ext.EIdent (loc, s)
  | LBRACK ->
      let loc = cur_loc st in
      advance st;
      let ctx = parse_ectx st in
      if cur_tok st = TURNSTILE then (
        advance st;
        let t = parse_term st in
        expect st RBRACK;
        Ext.EBox (loc, ctx, t))
      else (
        expect st RBRACK;
        Ext.ECtx (loc, ctx))
  | LPAREN ->
      advance st;
      let e = parse_cexp st in
      expect st RPAREN;
      e
  | _ -> fail st "expected a computation-level expression"

and parse_branch st : Ext.branch =
  let loc = cur_loc st in
  let decls = ref [] in
  while cur_tok st = LBRACE do
    let dloc = cur_loc st in
    advance st;
    (match cur_tok st with HASH -> advance st | _ -> ());
    let x = expect_ident st in
    expect st COLON;
    let dom = parse_cdom st in
    expect st RBRACE;
    decls := (dloc, x, dom) :: !decls
  done;
  expect st LBRACK;
  let ctx = parse_ectx st in
  expect st TURNSTILE;
  let pat = parse_term st in
  expect st RBRACK;
  expect st DARROW;
  let body = parse_cexp st in
  {
    Ext.b_loc = loc;
    Ext.b_decls = List.rev !decls;
    Ext.b_ctx = ctx;
    Ext.b_pat = pat;
    Ext.b_body = body;
  }

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)

let parse_ctors st : Ext.ctor list =
  let ctors = ref [] in
  while cur_tok st = BAR do
    advance st;
    let loc = cur_loc st in
    let name = expect_ident st in
    expect st COLON;
    let t = parse_term st in
    ctors := { Ext.k_loc = loc; Ext.k_name = name; Ext.k_typ = t } :: !ctors
  done;
  List.rev !ctors

let parse_world st : Ext.world =
  let loc = cur_loc st in
  (* either "name : {params} block (…)" or bare "{params} block (…)" *)
  let name =
    match (cur_tok st, peek_tok st 1) with
    | IDENT s, Some COLON ->
        advance st;
        advance st;
        s
    | _ -> "W"
  in
  let params = ref [] in
  while cur_tok st = LBRACE do
    advance st;
    let x = expect_ident st in
    expect st COLON;
    let t = parse_term st in
    expect st RBRACE;
    params := (x, t) :: !params
  done;
  expect st KW_BLOCK;
  expect st LPAREN;
  let rec fields acc =
    let f = expect_ident st in
    expect st COLON;
    let t = parse_term st in
    if cur_tok st = COMMA then (
      advance st;
      fields ((f, t) :: acc))
    else List.rev ((f, t) :: acc)
  in
  let fs = fields [] in
  expect st RPAREN;
  {
    Ext.w_loc = loc;
    Ext.w_name = name;
    Ext.w_params = List.rev !params;
    Ext.w_fields = fs;
  }

let parse_decl st : Ext.decl option =
  match cur_tok st with
  | EOF -> None
  | KW_LF | KW_LFR ->
      let one () =
        let loc = cur_loc st in
        let name = expect_ident st in
        let refines =
          if cur_tok st = REFINES then (
            advance st;
            Some (expect_ident st))
          else None
        in
        expect st COLON;
        let kind = parse_term st in
        let ctors =
          if cur_tok st = EQUAL then (advance st; parse_ctors st) else []
        in
        { Ext.d_loc = loc; Ext.d_name = name; Ext.d_refines = refines;
          Ext.d_kind = kind; Ext.d_ctors = ctors }
      in
      advance st;
      let first = one () in
      let rest = ref [] in
      while cur_tok st = KW_AND do
        advance st;
        rest := one () :: !rest
      done;
      expect st SEMI;
      Some
        (if !rest = [] then Ext.Dtyp first
         else Ext.Dmutual (first :: List.rev !rest))
  | KW_SCHEMA ->
      let loc = cur_loc st in
      advance st;
      let name = expect_ident st in
      let refines =
        if cur_tok st = REFINES then (
          advance st;
          Some (expect_ident st))
        else None
      in
      expect st EQUAL;
      let worlds = ref [] in
      if cur_tok st = BAR then
        while cur_tok st = BAR do
          advance st;
          worlds := parse_world st :: !worlds
        done
      else worlds := [ parse_world st ];
      expect st SEMI;
      Some
        (Ext.Dschema
           { s_loc = loc; s_name = name; s_refines = refines;
             s_worlds = List.rev !worlds })
  | KW_REC ->
      advance st;
      let parse_def () =
        let loc = cur_loc st in
        let name = expect_ident st in
        expect st COLON;
        let sort = parse_csort st in
        expect st EQUAL;
        let body = parse_cexp st in
        { Ext.r_loc = loc; r_name = name; r_sort = sort; r_body = body }
      in
      let defs = ref [ parse_def () ] in
      while cur_tok st = KW_AND do
        advance st;
        defs := parse_def () :: !defs
      done;
      expect st SEMI;
      Some (Ext.Drec (List.rev !defs))
  | KW_PBLOCK ->
      (* %block b = {x:A}* block (y:t, …); *)
      let loc = cur_loc st in
      advance st;
      let name = expect_ident st in
      expect st EQUAL;
      let w = parse_world st in
      expect st SEMI;
      Some
        (Ext.Dblock
           {
             bl_loc = loc;
             bl_world = { w with Ext.w_name = name; Ext.w_loc = loc };
           })
  | KW_PWORLDS ->
      (* %worlds (b₁ | … | bₙ) fam₁ … famₖ; — an empty block list "()"
         declares closed worlds *)
      let loc = cur_loc st in
      advance st;
      expect st LPAREN;
      let blocks = ref [] in
      (match cur_tok st with
      | RPAREN -> ()
      | _ ->
          let rec go () =
            let bloc = cur_loc st in
            let b = expect_ident st in
            blocks := (bloc, b) :: !blocks;
            if cur_tok st = BAR then begin
              advance st;
              go ()
            end
          in
          go ());
      expect st RPAREN;
      let fams = ref [] in
      let floc = cur_loc st in
      let f = expect_ident st in
      fams := [ (floc, f) ];
      let rec more () =
        match cur_tok st with
        | IDENT _ ->
            let floc = cur_loc st in
            let f = expect_ident st in
            fams := (floc, f) :: !fams;
            more ()
        | _ -> ()
      in
      more ();
      expect st SEMI;
      Some
        (Ext.Dworlds
           {
             ws_loc = loc;
             ws_blocks = List.rev !blocks;
             ws_fams = List.rev !fams;
           })
  | KW_PMODE ->
      (* %mode fam +M … -N; — '+' marks an input position, '-' an output *)
      let loc = cur_loc st in
      advance st;
      let floc = cur_loc st in
      let fam = expect_ident st in
      let args = ref [] in
      let rec go () =
        match cur_tok st with
        | PLUS | MINUS ->
            let aloc = cur_loc st in
            let input = cur_tok st = PLUS in
            advance st;
            let x = expect_ident st in
            args := (aloc, input, x) :: !args;
            go ()
        | _ -> ()
      in
      go ();
      expect st SEMI;
      Some
        (Ext.Dmode
           { md_loc = loc; md_fam = (floc, fam); md_args = List.rev !args })
  | _ ->
      fail st
        "expected a declaration (LF, LFR, schema, rec, %%block, %%worlds, \
         or %%mode)"

let parse_program ?name (src : string) : Ext.program =
  let st = make (Lexer.tokens ?name src) in
  let rec go acc =
    match parse_decl st with
    | Some d -> go (d :: acc)
    | None -> List.rev acc
  in
  go []

(** Skip past the next declaration terminator [;] (or to end of input) —
    the resynchronization point after a syntax error. *)
let resync st =
  let rec go () =
    match cur_tok st with
    | EOF -> ()
    | SEMI -> advance st
    | _ ->
        advance st;
        go ()
  in
  go ()

(** Fault-tolerant variant of {!parse_program}: a syntax error inside one
    declaration is reported to [sink] (code [E0101]) and parsing resumes
    at the next [;], so one bad declaration does not hide errors in — or
    the contents of — the rest of the file. *)
let parse_program_tolerant (sink : Diagnostics.sink) ?name (src : string) :
    Ext.program =
  match
    Diagnostics.recover sink ~code:"E0101" (fun () -> Lexer.tokens ?name src)
  with
  | None -> []
  | Some lexemes ->
      let st = make lexemes in
      let rec go acc =
        match
          Diagnostics.recover sink ~code:"E0101" (fun () -> parse_decl st)
        with
        | Some (Some d) -> go (d :: acc)
        | Some None -> List.rev acc
        | None ->
            if cur_tok st = EOF then List.rev acc
            else begin
              resync st;
              go acc
            end
      in
      go []
