(** Tokens of the surface language. *)

type t =
  | IDENT of string  (** identifiers, including [e-lam], [xaG], [M1] *)
  | NUM of int
  | KW_LF  (** [LF] *)
  | KW_LFR  (** [LFR] *)
  | KW_SCHEMA
  | KW_REC
  | KW_BLOCK
  | KW_PBLOCK  (** the declaration directive [%block] *)
  | KW_PWORLDS  (** the declaration directive [%worlds] *)
  | KW_PMODE  (** the declaration directive [%mode] *)
  | KW_TYPE
  | KW_SORT
  | KW_FN
  | KW_MLAM
  | KW_CASE
  | KW_OF
  | KW_LET
  | KW_IN
  | KW_AND
  | LPAREN
  | RPAREN
  | LBRACK
  | RBRACK
  | LBRACE
  | RBRACE
  | LANGLE
  | RANGLE
  | SEMI
  | COLON
  | COMMA
  | DOT
  | DOTDOT  (** [..] *)
  | BAR  (** [|] *)
  | EQUAL
  | BACKSLASH
  | HASH
  | CARET  (** [^], promotion *)
  | PLUS  (** [+], an input position in a [%mode] declaration *)
  | MINUS  (** [-], an output position in a [%mode] declaration *)
  | ARROW  (** [->] *)
  | DARROW  (** [=>] *)
  | REFINES  (** [<|] *)
  | TURNSTILE  (** [|-] *)
  | EOF

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %s" s
  | NUM n -> Printf.sprintf "number %d" n
  | KW_LF -> "LF"
  | KW_LFR -> "LFR"
  | KW_SCHEMA -> "schema"
  | KW_REC -> "rec"
  | KW_BLOCK -> "block"
  | KW_PBLOCK -> "%block"
  | KW_PWORLDS -> "%worlds"
  | KW_PMODE -> "%mode"
  | KW_TYPE -> "type"
  | KW_SORT -> "sort"
  | KW_FN -> "fn"
  | KW_MLAM -> "mlam"
  | KW_CASE -> "case"
  | KW_OF -> "of"
  | KW_LET -> "let"
  | KW_IN -> "in"
  | KW_AND -> "and"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACK -> "["
  | RBRACK -> "]"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LANGLE -> "<"
  | RANGLE -> ">"
  | SEMI -> ";"
  | COLON -> ":"
  | COMMA -> ","
  | DOT -> "."
  | DOTDOT -> ".."
  | BAR -> "|"
  | EQUAL -> "="
  | BACKSLASH -> "\\"
  | HASH -> "#"
  | CARET -> "^"
  | PLUS -> "+"
  | MINUS -> "-"
  | ARROW -> "->"
  | DARROW -> "=>"
  | REFINES -> "<|"
  | TURNSTILE -> "|-"
  | EOF -> "end of input"
