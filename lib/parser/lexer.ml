(** Hand-written lexer for the surface language.

    Identifiers may contain [-] (e.g. [e-lam]) provided the next character
    continues the identifier, so [a->b] still lexes as [a], [->], [b].
    Comments are [% … end-of-line] (as in Twelf/Beluga). *)

open Belr_support

type lexeme = { tok : Token.t; loc : Loc.t }

type state = {
  src : string;
  name : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of the beginning of the current line *)
}

let make ?(name = "<string>") src = { src; name; pos = 0; line = 1; bol = 0 }

let peek_at st k =
  if st.pos + k < String.length st.src then Some st.src.[st.pos + k] else None

let peek st = peek_at st 0

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let here st : Loc.pos =
  { Loc.line = st.line; Loc.col = st.pos - st.bol; Loc.offset = st.pos }

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '\'' || c = '!'

let is_digit c = c >= '0' && c <= '9'

let keyword = function
  | "LF" -> Some Token.KW_LF
  | "LFR" -> Some Token.KW_LFR
  | "schema" -> Some Token.KW_SCHEMA
  | "rec" -> Some Token.KW_REC
  | "block" -> Some Token.KW_BLOCK
  | "type" -> Some Token.KW_TYPE
  | "sort" -> Some Token.KW_SORT
  | "fn" -> Some Token.KW_FN
  | "mlam" -> Some Token.KW_MLAM
  | "case" -> Some Token.KW_CASE
  | "of" -> Some Token.KW_OF
  | "let" -> Some Token.KW_LET
  | "in" -> Some Token.KW_IN
  | "and" -> Some Token.KW_AND
  | _ -> None

(** Does a [%block] / [%worlds] / [%mode] directive start at the current
    position?  The word after [%] must not continue as an identifier, so
    a comment like [%blocked: …] still skips to end of line. *)
let directive_at st : Token.t option =
  let word w tok =
    let n = String.length w in
    let rec eq k = k >= n || (peek_at st (1 + k) = Some w.[k] && eq (k + 1)) in
    if
      eq 0
      &&
      match peek_at st (1 + n) with
      | Some c -> not (is_ident_char c || c = '-')
      | None -> true
    then Some tok
    else None
  in
  match word "block" Token.KW_PBLOCK with
  | Some t -> Some t
  | None -> (
      match word "worlds" Token.KW_PWORLDS with
      | Some t -> Some t
      | None -> word "mode" Token.KW_PMODE)

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_ws st
  | Some '%' when directive_at st = None ->
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_ws st
  | _ -> ()

let next (st : state) : lexeme =
  skip_ws st;
  let start = here st in
  let fin tok =
    let stop = here st in
    { tok; loc = Loc.make ~source:st.name ~start_pos:start ~end_pos:stop }
  in
  match peek st with
  | None -> fin Token.EOF
  | Some c when is_ident_start c ->
      let b = Buffer.create 8 in
      let rec go () =
        match peek st with
        | Some c when is_ident_char c ->
            Buffer.add_char b c;
            advance st;
            go ()
        | Some '-' -> (
            (* include '-' only when the identifier continues *)
            match peek_at st 1 with
            | Some c2 when is_ident_char c2 || c2 = '-' ->
                Buffer.add_char b '-';
                advance st;
                go ()
            | _ -> ())
        | _ -> ()
      in
      Buffer.add_char b c;
      advance st;
      go ();
      let s = Buffer.contents b in
      fin (match keyword s with Some k -> k | None -> Token.IDENT s)
  | Some c when is_digit c ->
      let b = Buffer.create 4 in
      let rec go () =
        match peek st with
        | Some c when is_digit c ->
            Buffer.add_char b c;
            advance st;
            go ()
        | _ -> ()
      in
      go ();
      fin (Token.NUM (int_of_string (Buffer.contents b)))
  | Some '%' -> (
      (* skip_ws left a [%] in place only for a directive *)
      match directive_at st with
      | Some tok ->
          let n =
            match tok with
            | Token.KW_PBLOCK -> 5
            | Token.KW_PMODE -> 4
            | _ -> 6
          in
          for _ = 0 to n do
            advance st
          done;
          fin tok
      | None ->
          Error.raise_at
            (Loc.make ~source:st.name ~start_pos:start ~end_pos:(here st))
            "unexpected character %%")
  | Some '-' when peek_at st 1 = Some '>' ->
      advance st;
      advance st;
      fin Token.ARROW
  | Some '=' when peek_at st 1 = Some '>' ->
      advance st;
      advance st;
      fin Token.DARROW
  | Some '<' when peek_at st 1 = Some '|' ->
      advance st;
      advance st;
      fin Token.REFINES
  | Some '|' when peek_at st 1 = Some '-' ->
      advance st;
      advance st;
      fin Token.TURNSTILE
  | Some '.' when peek_at st 1 = Some '.' ->
      advance st;
      advance st;
      fin Token.DOTDOT
  | Some c ->
      advance st;
      fin
        (match c with
        | '(' -> Token.LPAREN
        | ')' -> Token.RPAREN
        | '[' -> Token.LBRACK
        | ']' -> Token.RBRACK
        | '{' -> Token.LBRACE
        | '}' -> Token.RBRACE
        | '<' -> Token.LANGLE
        | '>' -> Token.RANGLE
        | ';' -> Token.SEMI
        | ':' -> Token.COLON
        | ',' -> Token.COMMA
        | '.' -> Token.DOT
        | '|' -> Token.BAR
        | '=' -> Token.EQUAL
        | '\\' -> Token.BACKSLASH
        | '#' -> Token.HASH
        | '^' -> Token.CARET
        | '+' -> Token.PLUS
        | '-' -> Token.MINUS
        | c ->
            Error.raise_at
              (Loc.make ~source:st.name ~start_pos:start ~end_pos:(here st))
              "unexpected character %c" c)

(** Lex the whole input. *)
let tokens ?name src : lexeme list =
  let st = make ?name src in
  let rec go acc =
    let l = next st in
    if l.tok = Token.EOF then List.rev (l :: acc) else go (l :: acc)
  in
  go []
