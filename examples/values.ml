(** The values case study: [val ⊑ tm] and the refinement-indexed
    evaluation judgment [evalv ⊑ eval : tm → val → sort] — a proper sort
    in a refinement-kind domain.

    Run with: [dune exec examples/values.exe] *)

open Belr_syntax
open Belr_lf
open Belr_core
open Belr_comp
open Belr_kits
open Lf

let () =
  Fmt.pr "=== values: a datasort in a refinement kind ===@.@.";
  Fmt.pr "%s@." Values.src;
  let sg = Values.load () in
  Fmt.pr "-> development checked@.@.";
  let penv = Sign.pp_env sg in
  let find_c n =
    match Sign.lookup_name sg n with
    | Some (Sign.Sym_const c) -> c
    | _ -> failwith (n ^ " not found")
  in
  let lam = find_c "lam"
  and app = find_c "app"
  and ev_lam = find_c "ev-lam"
  and ev_app = find_c "ev-app" in
  let strengthen =
    match Sign.lookup_name sg "strengthen" with
    | Some (Sign.Sym_rec r) -> r
    | _ -> failwith "strengthen not found"
  in
  let idf = (mk_lam "x" ((mk_root ((mk_bvar 1)) []))) in
  let idt = (mk_root ((mk_const lam)) ([ idf ])) in
  let appt = (mk_root ((mk_const app)) ([ idt; idt ])) in
  let ev_id = (mk_root ((mk_const ev_lam)) ([ idf ])) in
  let d =
    (mk_root ((mk_const ev_app)) ([ idt; idf; idt; idt; idt; ev_id; ev_id; ev_id ]))
  in
  Fmt.pr "evaluation derivation for (\\x.x) (\\x.x):@.  %a@.@."
    (Pp.pp_normal penv) d;
  let hat0 = { Meta.hat_var = None; Meta.hat_names = [] } in
  let mapps f args = List.fold_left (fun e a -> Comp.MApp (e, a)) f args in
  let call =
    Comp.App
      ( mapps (Comp.RecConst strengthen)
          [ Meta.MOTerm (hat0, appt); Meta.MOTerm (hat0, idt) ],
        Comp.Box (Meta.MOTerm (hat0, d)) )
  in
  let res =
    match Eval.as_box (Eval.eval (Eval.make_env sg) call) with
    | Meta.MOTerm (_, m) -> m
    | _ -> assert false
  in
  let evalv =
    match Sign.lookup_name sg "evalv" with
    | Some (Sign.Sym_srt s) -> s
    | _ -> failwith "evalv not found"
  in
  Fmt.pr "strengthened into the refined judgment:@.  %a@.@."
    (Pp.pp_normal penv) res;
  let env = Check_lfr.make_env sg [] in
  ignore
    (Check_lfr.check_normal env Ctxs.empty_sctx res
       ((mk_satom evalv ([ appt; idt ]))));
  Fmt.pr "result checks at evalv — the value-ness of the result index is@.";
  Fmt.pr "enforced by the refinement KIND tm -> val -> sort: writing@.";
  Fmt.pr "evalv M (app …) is not even a well-formed sort.@."
