(** Quickstart: datasort refinements in five minutes.

    We declare natural numbers, refine them by the sort [pos] of nonzero
    naturals (selecting only the [s] constructor), and write a predecessor
    function whose pattern matching is {e not} exhaustive over [nat] —
    but is total over [pos].  This is the Jones–Ramsay motivation the
    paper cites: refinements validate non-exhaustive matches.

    Run with: [dune exec examples/quickstart.exe] *)

open Belr_support
open Belr_syntax
open Belr_lf
open Belr_core
open Belr_comp
open Lf

let program =
  {bel|
LF nat : type =
| z : nat
| s : nat -> nat;

% pos refines nat: only s constructs a positive number.
LFR pos <| nat : sort =
| s : nat -> pos;

% Total on pos; would be non-exhaustive on nat.
rec pred : [ |- pos] -> [ |- nat] =
fn d => case d of
| {N : [ |- nat]}
  [ |- s N] => [ |- N];
|bel}

let () =
  (* emit the §2 .bel source when asked (used by the dune rule) *)
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "--emit-equal-bel" then begin
    print_string Belr_kits.Surface.full_src;
    exit 0
  end;
  Fmt.pr "=== quickstart: datasort refinements ===@.@.";
  Fmt.pr "%s@." program;
  let sg = Belr_parser.Process.program ~name:"quickstart.bel" program in
  Fmt.pr "-> program parsed, elaborated, sort-checked; erasure re-checked@.@.";
  let find_c n =
    match Sign.lookup_name sg n with
    | Some (Sign.Sym_const c) -> c
    | _ -> failwith (n ^ " not found")
  in
  let z = find_c "z" and s = find_c "s" in
  let pos =
    match Sign.lookup_name sg "pos" with
    | Some (Sign.Sym_srt x) -> x
    | _ -> failwith "pos not found"
  in
  let pred =
    match Sign.lookup_name sg "pred" with
    | Some (Sign.Sym_rec r) -> r
    | _ -> failwith "pred not found"
  in
  let rec church k = if k = 0 then (mk_root ((mk_const z)) []) else (mk_root ((mk_const s)) ([ church (k - 1) ])) in
  let penv = Sign.pp_env sg in
  let hat0 = { Meta.hat_var = None; Meta.hat_names = [] } in
  (* three is positive; check it at sort pos and take its predecessor *)
  let three = church 3 in
  let env = Check_lfr.make_env sg [] in
  let a = Check_lfr.check_normal env Ctxs.empty_sctx three ((mk_satom pos [])) in
  Fmt.pr "s (s (s z)) ⇐ pos ⊑ %a   (the type is the checker's output)@."
    (Pp.pp_typ penv) a;
  let call =
    Comp.App (Comp.RecConst pred, Comp.Box (Meta.MOTerm (hat0, three)))
  in
  (match Eval.as_box (Eval.eval (Eval.make_env sg) call) with
  | Meta.MOTerm (_, m) -> Fmt.pr "pred 3 = %a@." (Pp.pp_normal penv) m
  | _ -> assert false);
  (* zero is NOT positive: the refinement rejects it statically *)
  (match
     Error.protect (fun () ->
         Check_lfr.check_normal env Ctxs.empty_sctx (church 0)
           ((mk_satom pos [])))
   with
  | Ok _ -> Fmt.pr "BUG: z checked at pos@."
  | Error msg -> Fmt.pr "z ⇐ pos is rejected, as it should be:@.  %s@." msg);
  Fmt.pr "@.pred is total on pos even though its match is partial on nat —@.";
  Fmt.pr "the refinement carries the exhaustiveness information.@.";
  (* the §6.1 extension: the optional coverage checker agrees *)
  (match Coverage.check_rec sg pred with
  | [] -> Fmt.pr "coverage checker: pred covers every candidate of pos ✓@."
  | issues ->
      List.iter
        (fun (missing, _) ->
          Fmt.pr "coverage checker: missing %s@." (String.concat ", " missing))
        issues)
