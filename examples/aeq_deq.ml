(** The paper's §2 case study, end to end.

    Loads the surface-syntax mechanization of the equivalence of
    algorithmic and declarative equality for the untyped λ-calculus
    (lib/kits/surface.ml, also emitted as examples/equal.bel), then:

    - runs the completeness proof [ceq] as a program on a declarative
      derivation, obtaining an algorithmic one;
    - demonstrates that {e soundness is free}: an [aeq] derivation
      already checks at [⌊deq⌋] (this is the refinement [aeq ⊑ deq]);
    - demonstrates the refinement at work: [e-refl] is {e rejected} at
      sort [aeq];
    - shows promotion: the same block variable reads as [deq] under [Ψ⊤]
      and as [aeq] under [Ψ].

    Run with: [dune exec examples/aeq_deq.exe] *)

open Belr_support
open Belr_syntax
open Belr_lf
open Belr_core
open Belr_comp
open Belr_kits
open Lf

let () =
  Fmt.pr "=== the §2 case study: aeq / deq ===@.@.";
  let sg = Surface.load () in
  Fmt.pr
    "-> full development (aeq-refl, aeq-sym, aeq-trans, ceq) checked@.@.";
  let penv = Sign.pp_env sg in
  let find_c n =
    match Sign.lookup_name sg n with
    | Some (Sign.Sym_const c) -> c
    | _ -> failwith (n ^ " not found")
  in
  let find_r n =
    match Sign.lookup_name sg n with
    | Some (Sign.Sym_rec r) -> r
    | _ -> failwith (n ^ " not found")
  in
  let find_s n =
    match Sign.lookup_name sg n with
    | Some (Sign.Sym_srt s) -> s
    | _ -> failwith (n ^ " not found")
  in
  let lam = find_c "lam"
  and e_refl = find_c "e-refl"
  and e_sym = find_c "e-sym"
  and e_trans = find_c "e-trans"
  and e_lam = find_c "e-lam" in
  let aeq = find_s "aeq" in
  let deq =
    match Sign.lookup_name sg "deq" with
    | Some (Sign.Sym_typ a) -> a
    | _ -> failwith "deq not found"
  in
  let ceq = find_r "ceq" in
  let hat0 = { Meta.hat_var = None; Meta.hat_names = [] } in
  let idt = (mk_root ((mk_const lam)) ([ (mk_lam "x" ((mk_root ((mk_bvar 1)) []))) ])) in
  (* a declarative derivation full of equivalence axioms *)
  let refl = (mk_root ((mk_const e_refl)) ([ idt ])) in
  let sym = (mk_root ((mk_const e_sym)) ([ idt; idt; refl ])) in
  let d = (mk_root ((mk_const e_trans)) ([ idt; idt; idt; refl; sym ])) in
  Fmt.pr "declarative input:@.  %a@.@." (Pp.pp_normal penv) d;
  let mapps f args = List.fold_left (fun e a -> Comp.MApp (e, a)) f args in
  let call =
    Comp.App
      ( mapps (Comp.RecConst ceq)
          [
            Meta.MOCtx Ctxs.empty_sctx;
            Meta.MOTerm (hat0, idt);
            Meta.MOTerm (hat0, idt);
          ],
        Comp.Box (Meta.MOTerm (hat0, d)) )
  in
  let result =
    match Eval.as_box (Eval.eval (Eval.make_env sg) call) with
    | Meta.MOTerm (_, m) -> m
    | _ -> assert false
  in
  Fmt.pr "ceq computes the algorithmic derivation:@.  %a@.@."
    (Pp.pp_normal penv) result;
  let env = Check_lfr.make_env sg [] in
  let out_srt = (mk_satom aeq ([ idt; idt ])) in
  let a = Check_lfr.check_normal env Ctxs.empty_sctx result out_srt in
  Fmt.pr "it checks: %a ⊑ %a@.@." (Pp.pp_srt penv) out_srt (Pp.pp_typ penv) a;
  (* soundness is free: the same derivation checks at ⌊deq⌋ *)
  ignore
    (Check_lfr.check_normal env Ctxs.empty_sctx result
       ((mk_sembed deq ([ idt; idt ]))));
  Fmt.pr "soundness is FREE: the aeq derivation already checks at deq@.@.";
  (* the refinement rejects the equivalence axioms *)
  (match
     Error.protect (fun () ->
         Check_lfr.check_normal env Ctxs.empty_sctx refl out_srt)
   with
  | Ok _ -> Fmt.pr "BUG: e-refl checked at aeq@."
  | Error msg ->
      Fmt.pr "e-refl is rejected at sort aeq:@.  %s@.@." msg);
  (* promotion: the same variable reads differently under Ψ and Ψ⊤ *)
  let xeW =
    match Belr_parser.Elab.find_world sg "xeW" with
    | Some (Belr_parser.Elab.Wsort f) -> f
    | _ -> failwith "xeW not found"
  in
  let psi = Ctxs.sctx_push Ctxs.empty_sctx (Ctxs.SCBlock ("b", xeW, [])) in
  let s_plain = Sctxops.srt_of_proj sg psi 1 2 in
  let s_promoted = Sctxops.srt_of_proj sg (Ctxs.promote psi) 1 2 in
  Fmt.pr "promotion (Ψ = b:xeW):@.";
  Fmt.pr "  under Ψ :  b.2 : %a@."
    (Pp.pp_srt (Pp.env_of_sctx penv psi)) s_plain;
  Fmt.pr "  under Ψ⊤:  b.2 : %a@."
    (Pp.pp_srt (Pp.env_of_sctx penv psi)) s_promoted;
  (* run ceq under the binder-heavy input too *)
  let body =
    (mk_lam "x" ((mk_lam "u" ((mk_root ((mk_const e_sym)) ([ (mk_root ((mk_bvar 2)) []); (mk_root ((mk_bvar 2)) []); (mk_root ((mk_bvar 1)) []) ]))))))
  in
  let dlam =
    (mk_root ((mk_const e_lam)) ([ (mk_lam "x" ((mk_root ((mk_bvar 1)) []))); (mk_lam "x" ((mk_root ((mk_bvar 1)) []))); body ]))
  in
  let call2 =
    Comp.App
      ( mapps (Comp.RecConst ceq)
          [
            Meta.MOCtx Ctxs.empty_sctx;
            Meta.MOTerm (hat0, idt);
            Meta.MOTerm (hat0, idt);
          ],
        Comp.Box (Meta.MOTerm (hat0, dlam)) )
  in
  (match Eval.as_box (Eval.eval (Eval.make_env sg) call2) with
  | Meta.MOTerm (_, m) ->
      Fmt.pr "@.ceq through a binder (e-sym under e-lam):@.  %a@."
        (Pp.pp_normal penv) m
  | _ -> assert false);
  Fmt.pr "@.done.@."
