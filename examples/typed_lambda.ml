(** Typed λ-calculus with {e parameterized} schema worlds.

    The §2 example's blocks take no parameters; this example exercises
    the general form [Πy:A.Σx:A'. …] of schema elements (§3.1.2): typing
    contexts whose blocks are parameterized by the variable's type,
    [schema tG = tW : {A : tp} block (x : tm, t : oft x A)].

    It declares simple types, Church-style terms, and the typing
    judgment, then runs a small type-inference function written by
    pattern matching on typing derivations (including the
    parameter-variable case [#b.2] whose world instantiation [tW A0] is
    itself a pattern variable).

    Run with: [dune exec examples/typed_lambda.exe] *)

open Belr_syntax
open Belr_lf
open Belr_core
open Belr_comp
open Lf

let program =
  {bel|
LF tp : type =
| base : tp
| arr : tp -> tp -> tp;

LF tm : type =
| lam : tp -> (tm -> tm) -> tm
| app : tm -> tm -> tm;

LF oft : tm -> tp -> type =
| t-lam : {A : tp} ({x : tm} oft x A -> oft (M x) B)
          -> oft (lam A M) (arr A B)
| t-app : oft M (arr A B) -> oft N A -> oft (app M N) B;

% blocks parameterized by the variable's type
schema tG = | tW : {A : tp} block (x : tm, t : oft x A);

% a tiny type-inference function: reading the type off the derivation
rec infer : (Psi : tG) (M : [Psi |- tm]) (A : [Psi |- tp])
            [Psi |- oft M A] -> [Psi |- tp] =
mlam Psi => mlam M => mlam A => fn d =>
case d of
| {A0 : [Psi |- tp]} {#b : #[Psi |- tW A0]}
  [Psi |- #b.2] => [Psi |- A0]
| {A0 : [Psi |- tp]} {B0 : [Psi |- tp]} {M' : [Psi, x : tm |- tm]}
  {D : [Psi, x : tm, t : oft x A0 |- oft M' B0]}
  [Psi |- t-lam (\x. M') B0 A0 (\x. \t. D)] => [Psi |- arr A0 B0]
| {M0 : [Psi |- tm]} {A0 : [Psi |- tp]} {B0 : [Psi |- tp]} {N0 : [Psi |- tm]}
  {D1 : [Psi |- oft M0 (arr A0 B0)]} {D2 : [Psi |- oft N0 A0]}
  [Psi |- t-app M0 A0 B0 N0 D1 D2] => [Psi |- B0];
|bel}

let () =
  Fmt.pr "=== typed λ-calculus: parameterized schema worlds ===@.@.";
  let sg = Belr_parser.Process.program ~name:"typed.bel" program in
  Fmt.pr "-> program checked@.@.";
  let penv = Sign.pp_env sg in
  let find_c n =
    match Sign.lookup_name sg n with
    | Some (Sign.Sym_const c) -> c
    | _ -> failwith (n ^ " not found")
  in
  let base = find_c "base"
  and arr = find_c "arr"
  and lam = find_c "lam"
  and t_lam = find_c "t-lam"
  and t_app = find_c "t-app" in
  let infer =
    match Sign.lookup_name sg "infer" with
    | Some (Sign.Sym_rec r) -> r
    | _ -> failwith "infer not found"
  in
  let hat0 = { Meta.hat_var = None; Meta.hat_names = [] } in
  let b = (mk_root ((mk_const base)) []) in
  let arrow a c = (mk_root ((mk_const arr)) ([ a; c ])) in
  (* the identity at base: lam base (\x. x), typed by t-lam with the
     variable case *)
  let id_tm = (mk_root ((mk_const lam)) ([ b; (mk_lam "x" ((mk_root ((mk_bvar 1)) []))) ])) in
  let d_id =
    (mk_root ((mk_const t_lam)) ([ (mk_lam "x" ((mk_root ((mk_bvar 1)) []))); b; b;
          (mk_lam "x" ((mk_lam "t" ((mk_root ((mk_bvar 1)) []))))) ]))
  in
  let env = Check_lfr.make_env sg [] in
  let oft_a =
    match Sign.lookup_name sg "oft" with
    | Some (Sign.Sym_typ a) -> a
    | _ -> failwith "oft not found"
  in
  ignore
    (Check_lfr.check_normal env Ctxs.empty_sctx d_id
       ((mk_sembed oft_a ([ id_tm; arrow b b ]))));
  Fmt.pr "⊢ lam base (\\x. x) : base → base  (derivation checks)@.";
  (* apply it to itself?  No — self-application is not typable; apply a
     variable instead: in context b : tW base. *)
  let mapps f args = List.fold_left (fun e a -> Comp.MApp (e, a)) f args in
  let run d m a =
    let call =
      Comp.App
        ( mapps (Comp.RecConst infer)
            [
              Meta.MOCtx Ctxs.empty_sctx;
              Meta.MOTerm (hat0, m);
              Meta.MOTerm (hat0, a);
            ],
          Comp.Box (Meta.MOTerm (hat0, d)) )
    in
    match Eval.as_box (Eval.eval (Eval.make_env sg) call) with
    | Meta.MOTerm (_, t) -> t
    | _ -> assert false
  in
  let t1 = run d_id id_tm (arrow b b) in
  Fmt.pr "infer (t-lam …)  =  %a@." (Pp.pp_normal penv) t1;
  (* an application: (lam base \x.x) applied to (lam base \x.x)?  not
     typable at base; instead type the application of a variable f of
     type base → base to a variable y : base — in a parameterized
     context. *)
  let tw =
    match Belr_parser.Elab.find_world sg "tW" with
    | Some (Belr_parser.Elab.Wsort f) -> f
    | _ -> failwith "tW not found"
  in
  let psi =
    Ctxs.sctx_push
      (Ctxs.sctx_push Ctxs.empty_sctx (Ctxs.SCBlock ("f", tw, [ arrow b b ])))
      (Ctxs.SCBlock ("y", tw, [ b ]))
  in
  (* y = index 1, f = index 2 *)
  let app_c = find_c "app" in
  let m = (mk_root ((mk_const app_c)) ([ (mk_root ((mk_proj ((mk_bvar 2)) 1)) []); (mk_root ((mk_proj ((mk_bvar 1)) 1)) []) ])) in
  let d =
    (mk_root ((mk_const t_app)) ([ (mk_root ((mk_proj ((mk_bvar 2)) 1)) []); b; b; (mk_root ((mk_proj ((mk_bvar 1)) 1)) []);
          (mk_root ((mk_proj ((mk_bvar 2)) 2)) []); (mk_root ((mk_proj ((mk_bvar 1)) 2)) []) ]))
  in
  ignore
    (Check_lfr.check_normal env psi d
       ((mk_sembed oft_a ([ m; Shift.shift_normal 0 0 b ]))));
  Fmt.pr "f : base → base, y : base ⊢ f y : base  (derivation checks)@.";
  let h = Meta.hat_of_sctx psi in
  let call =
    Comp.App
      ( mapps (Comp.RecConst infer)
          [ Meta.MOCtx psi; Meta.MOTerm (h, m); Meta.MOTerm (h, b) ],
        Comp.Box (Meta.MOTerm (h, d)) )
  in
  (match Eval.as_box (Eval.eval (Eval.make_env sg) call) with
  | Meta.MOTerm (_, t) ->
      Fmt.pr "infer (t-app …)  =  %a@." (Pp.pp_normal penv) t
  | _ -> assert false);
  Fmt.pr "@.parameterized blocks: the block (x : tm, t : oft x A) is@.";
  Fmt.pr "instantiated at different types (base → base, base) in the@.";
  Fmt.pr "same context, and the pattern world tW A0 binds A0.@."
