(** Property-based tests (qcheck): substitution laws, erasure/conservativity
    over randomly generated derivations, refinement strictness, and
    unification round-trips. *)

open Belr_syntax
open Belr_lf
open Belr_core
open Belr_unify
open Belr_kits
open Lf

let f = Ulam.make ()

let sg = f.Ulam.sg

let lfr_env = Check_lfr.make_env sg []

let lf_env = Check_lf.make_env sg []

(* --- generators --------------------------------------------------------- *)

(** Random closed λ-terms (tm). *)
let gen_tm : normal QCheck.Gen.t =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then return (Ulam.id_tm f)
      else
        frequency
          [
            (1, return (Ulam.id_tm f));
            ( 2,
              map2 (Ulam.app_tm f) (self (n / 2)) (self (n / 2)) );
            ( 1,
              map
                (fun m ->
                  (* lam \x. (shifted m) — keep it closed *)
                  (mk_root ((mk_const f.Ulam.lam)) ([ (mk_lam "x" (Shift.shift_normal 1 0 m)) ])))
                (self (n - 1)) );
          ])

(** Random terms over a context of [n] nat-variables. *)
let gen_nat_open (nvars : int) : normal QCheck.Gen.t =
  let open QCheck.Gen in
  sized @@ fix (fun self sz ->
      if sz <= 0 then
        if nvars = 0 then return (Ulam.zero f)
        else
          frequency
            [
              (1, return (Ulam.zero f));
              (2, map (fun i -> (mk_root ((mk_bvar (1 + (i mod nvars)))) [])) small_nat);
            ]
      else
        frequency
          [
            (1, map (Ulam.succ f) (self (sz - 1)));
            (1, self 0);
          ])

(** A random aeq congruence derivation together with its sort. *)
let gen_aeq_drv : (normal * srt) QCheck.Gen.t =
  let open QCheck.Gen in
  let d_id =
    (mk_root ((mk_const f.Ulam.e_lam)) ([ (mk_lam "x" ((mk_root ((mk_bvar 1)) []))); (mk_lam "x" ((mk_root ((mk_bvar 1)) [])));
          (mk_lam "x" ((mk_lam "u" ((mk_root ((mk_bvar 1)) []))))) ]))
  in
  let rec go n =
    if n <= 0 then return (d_id, Ulam.id_tm f)
    else
      frequency
        [
          (1, return (d_id, Ulam.id_tm f));
          ( 2,
            go (n / 2) >>= fun (d1, t1) ->
            go (n / 2) >>= fun (d2, t2) ->
            return
              ( (mk_root ((mk_const f.Ulam.e_app)) ([ t1; t1; t2; t2; d1; d2 ])),
                Ulam.app_tm f t1 t2 ) );
        ]
  in
  sized go >>= fun (d, t) -> return (d, (mk_satom f.Ulam.aeq ([ t; t ])))

(* --- properties --------------------------------------------------------- *)

let prop_id_subst =
  QCheck.Test.make ~count:200 ~name:"[id]m = m"
    (QCheck.make gen_tm)
    (fun m -> Equal.normal (Hsub.sub_normal ((mk_shift 0)) m) m)

let prop_comp_subst =
  (* over a 2-variable nat context: [σ2]([σ1]m) = [comp σ1 σ2]m *)
  let gen =
    QCheck.Gen.(
      triple (gen_nat_open 2) (gen_nat_open 1) (gen_nat_open 0))
  in
  QCheck.Test.make ~count:200 ~name:"substitution composition"
    (QCheck.make gen)
    (fun (m, s1_body, s2_body) ->
      (* σ1 : (x,y) → (z) replaces x by s1_body (over 1 var) and keeps y↦z;
         σ2 : (z) → · replaces z by the closed s2_body *)
      let s1 = (mk_dot (Obj s1_body) ((mk_shift 0))) in
      let s2 = (mk_dot (Obj s2_body) mk_empty) in
      Equal.normal
        (Hsub.sub_normal s2 (Hsub.sub_normal s1 m))
        (Hsub.sub_normal (Hsub.comp s1 s2) m))

let prop_shift_tower =
  QCheck.Test.make ~count:200 ~name:"shift n ∘ shift m = shift (n+m)"
    (QCheck.make QCheck.Gen.(triple (gen_nat_open 1) (int_bound 5) (int_bound 5)))
    (fun (m, n1, n2) ->
      Equal.normal
        (Hsub.sub_normal ((mk_shift n2)) (Hsub.sub_normal ((mk_shift n1)) m))
        (Hsub.sub_normal ((mk_shift (n1 + n2))) m))

let prop_conservativity =
  QCheck.Test.make ~count:100
    ~name:"conservativity: well-sorted derivations re-check at erased types"
    (QCheck.make gen_aeq_drv)
    (fun (d, s) ->
      let a = Check_lfr.check_normal lfr_env Ctxs.empty_sctx d s in
      Check_lf.check_normal lf_env Ctxs.empty_ctx d a;
      Equal.typ a (Erase.srt sg s))

let prop_refinement_strict =
  (* injecting an equivalence axiom keeps the term well-TYPED but makes it
     ill-SORTED: sorts are strictly stronger than types *)
  QCheck.Test.make ~count:100
    ~name:"refinement strictness: e-refl wrecks sorting but not typing"
    (QCheck.make gen_tm)
    (fun t ->
      let d = (mk_root ((mk_const f.Ulam.e_refl)) ([ t ])) in
      let s = (mk_satom f.Ulam.aeq ([ t; t ])) in
      let a = (mk_atom f.Ulam.deq ([ t; t ])) in
      Check_lf.check_normal lf_env Ctxs.empty_ctx d a;
      match Check_lfr.check_normal lfr_env Ctxs.empty_sctx d s with
      | _ -> false
      | exception Belr_support.Error.Belr_error _ -> true)

let prop_embedding_erasure =
  QCheck.Test.make ~count:200 ~name:"erase ∘ embed = id on types"
    (QCheck.make gen_tm)
    (fun t ->
      let a = (mk_atom f.Ulam.deq ([ t; t ])) in
      Equal.typ (Erase.srt sg (Embed.typ a)) a)

let prop_erase_commutes_subst =
  QCheck.Test.make ~count:200
    ~name:"erasure commutes with hereditary substitution"
    (QCheck.make QCheck.Gen.(pair (gen_nat_open 1) (gen_nat_open 0)))
    (fun (body, arg) ->
      (* a sort with a dependency: aeq-style over nat spines is ill-kinded,
         so use a Π-sort over ⌊nat⌋ with a dependent spine *)
      let s = (mk_sembed f.Ulam.nat ([ body ])) in
      ignore s;
      (* commutes on the spine itself *)
      let s1 = Hsub.sub_srt ((mk_dot (Obj arg) mk_empty)) ((mk_sembed f.Ulam.nat ([ body ]))) in
      let a1 =
        Hsub.sub_typ ((mk_dot (Obj arg) mk_empty)) ((mk_atom f.Ulam.nat ([ body ])))
      in
      Equal.typ (Erase.srt sg s1) a1)

let prop_unify_ground =
  QCheck.Test.make ~count:100 ~name:"unification solves against ground terms"
    (QCheck.make gen_tm)
    (fun t ->
      let omega =
        [ Meta.MDTerm ("M", Ctxs.empty_sctx, (mk_sembed f.Ulam.tm [])) ]
      in
      let st = Unify.make ~sg ~omega ~flex:(fun _ -> true) in
      Unify.unify_normal st ((mk_root ((mk_mvar 1 ((mk_shift 0)))) [])) t;
      let rho, omega' = Unify.solve st in
      omega' = []
      && Equal.normal (Belr_meta.Msub.normal 0 rho ((mk_root ((mk_mvar 1 ((mk_shift 0)))) []))) t)

let prop_eta_wellformed =
  QCheck.Test.make ~count:100 ~name:"η-expansion checks at its type"
    (QCheck.make QCheck.Gen.(int_bound 3))
    (fun n ->
      (* x : tm → … → tm (n arrows); η-expand and check *)
      let rec ty k =
        if k = 0 then (mk_atom f.Ulam.tm [])
        else (mk_pi "x" ((mk_atom f.Ulam.tm [])) (ty (k - 1)))
      in
      let a = ty n in
      let g = Ctxs.ctx_push Ctxs.empty_ctx (Ctxs.CDecl ("h", a)) in
      let m = Eta.expand_var_typ (Shift.shift_typ 1 0 a) 1 in
      Check_lf.check_normal lf_env g m (Shift.shift_typ 1 0 a);
      true)

let suites =
  [
    ( "props",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_id_subst;
          prop_comp_subst;
          prop_shift_tower;
          prop_conservativity;
          prop_refinement_strict;
          prop_embedding_erasure;
          prop_erase_commutes_subst;
          prop_unify_ground;
          prop_eta_wellformed;
        ] );
  ]
