(** Tests for the values case study: sort-kinded refinement families
    (proper sorts in refinement kinds), value datasorts, and running the
    two versions of the result-is-a-value theorem. *)

open Belr_support
open Belr_syntax
open Belr_lf
open Belr_core
open Belr_comp
open Belr_kits
open Lf

let vsg = lazy (Values.load ())

let ok name thunk = Alcotest.test_case name `Quick thunk

let fails name thunk =
  Alcotest.test_case name `Quick (fun () ->
      match thunk () with
      | exception Error.Belr_error _ -> ()
      | exception Error.Violation _ -> ()
      | _ -> Alcotest.failf "%s: expected failure" name)

let find_c sg n =
  match Sign.lookup_name sg n with
  | Some (Sign.Sym_const c) -> c
  | _ -> Alcotest.failf "%s not found" n

let find_s sg n =
  match Sign.lookup_name sg n with
  | Some (Sign.Sym_srt s) -> s
  | _ -> Alcotest.failf "%s not found" n

let find_r sg n =
  match Sign.lookup_name sg n with
  | Some (Sign.Sym_rec r) -> r
  | _ -> Alcotest.failf "%s not found" n

let hat0 = { Meta.hat_var = None; Meta.hat_names = [] }

let mapps f args = List.fold_left (fun e a -> Comp.MApp (e, a)) f args

let tests =
  [
    ok "the values development checks (sorts in refinement kinds)" (fun () ->
        ignore (Lazy.force vsg));
    ok "lam is a value, app is not" (fun () ->
        let sg = Lazy.force vsg in
        let lam = find_c sg "lam" and app = find_c sg "app" in
        let vs = find_s sg "val" in
        let idt = (mk_root ((mk_const lam)) ([ (mk_lam "x" ((mk_root ((mk_bvar 1)) []))) ])) in
        let env = Check_lfr.make_env sg [] in
        ignore (Check_lfr.check_normal env Ctxs.empty_sctx idt ((mk_satom vs [])));
        match
          Error.protect (fun () ->
              Check_lfr.check_normal env Ctxs.empty_sctx
                ((mk_root ((mk_const app)) ([ idt; idt ])))
                ((mk_satom vs [])))
        with
        | Ok _ -> Alcotest.fail "app should not be a value"
        | Error _ -> ());
    ok "evalv's refinement kind has a proper sort domain" (fun () ->
        let sg = Lazy.force vsg in
        let evalv = find_s sg "evalv" in
        match (Sign.srt_entry sg evalv).Sign.s_kind with
        | Kspi (_, SEmbed _, Kspi (_, SAtom _, Ksort)) -> ()
        | _ -> Alcotest.fail "unexpected refinement kind");
    ok "running both theorems on ((\\x.x) (\\x.x)) gives value results"
      (fun () ->
        let sg = Lazy.force vsg in
        let lam = find_c sg "lam"
        and app = find_c sg "app"
        and ev_lam = find_c sg "ev-lam"
        and ev_app = find_c sg "ev-app" in
        let idf = (mk_lam "x" ((mk_root ((mk_bvar 1)) []))) in
        let idt = (mk_root ((mk_const lam)) ([ idf ])) in
        let appt = (mk_root ((mk_const app)) ([ idt; idt ])) in
        (* eval (app id id) id: D1 = ev-lam, D2 = ev-lam, D3 = ev-lam for
           the body (x[id/x] = id) *)
        let ev_id = (mk_root ((mk_const ev_lam)) ([ idf ])) in
        let d =
          (mk_root ((mk_const ev_app)) ([ idt; idf; idt; idt; idt; ev_id; ev_id; ev_id ]))
        in
        let env = Check_lfr.make_env sg [] in
        let eval_a =
          match Sign.lookup_name sg "eval" with
          | Some (Sign.Sym_typ a) -> a
          | _ -> Alcotest.fail "eval not found"
        in
        ignore
          (Check_lfr.check_normal env Ctxs.empty_sctx d
             ((mk_sembed eval_a ([ appt; idt ]))));
        (* conventional: isval V *)
        let rv = find_r sg "result-val" in
        let call1 =
          Comp.App
            ( mapps (Comp.RecConst rv)
                [ Meta.MOTerm (hat0, appt); Meta.MOTerm (hat0, idt) ],
              Comp.Box (Meta.MOTerm (hat0, d)) )
        in
        (match Eval.as_box (Eval.eval (Eval.make_env sg) call1) with
        | Meta.MOTerm (_, Root (Const c, _)) ->
            Alcotest.(check string)
              "v-lam" "v-lam"
              (Sign.const_entry sg c).Sign.c_name
        | _ -> Alcotest.fail "expected a v-lam derivation");
        (* refinement: evalv M V with the result checked at the sort *)
        let st = find_r sg "strengthen" in
        let call2 =
          Comp.App
            ( mapps (Comp.RecConst st)
                [ Meta.MOTerm (hat0, appt); Meta.MOTerm (hat0, idt) ],
              Comp.Box (Meta.MOTerm (hat0, d)) )
        in
        let res =
          match Eval.as_box (Eval.eval (Eval.make_env sg) call2) with
          | Meta.MOTerm (_, m) -> m
          | _ -> Alcotest.fail "expected a boxed term"
        in
        let evalv = find_s sg "evalv" in
        ignore
          (Check_lfr.check_normal env Ctxs.empty_sctx res
             ((mk_satom evalv ([ appt; idt ])))));
    ok "the refinement statement is smaller than the predicate one"
      (fun () ->
        let sg = Lazy.force vsg in
        let s1 = Stats.rec_stats sg (find_r sg "strengthen") in
        let s2 = Stats.rec_stats sg (find_r sg "result-val") in
        (* same inductive structure; no extra predicate declaration is the
           point — statements have comparable size *)
        Alcotest.(check bool)
          "comparable" true
          (s1.Stats.rs_args = s2.Stats.rs_args));
    fails "an ill-kinded refinement application is rejected" (fun () ->
        let sg = Lazy.force vsg in
        let evalv = find_s sg "evalv" in
        let app = find_c sg "app" in
        let lam = find_c sg "lam" in
        let idt = (mk_root ((mk_const lam)) ([ (mk_lam "x" ((mk_root ((mk_bvar 1)) []))) ])) in
        let appt = (mk_root ((mk_const app)) ([ idt; idt ])) in
        (* evalv _ (app …): the second index must be a value *)
        Check_lfr.wf_srt (Check_lfr.make_env sg []) Ctxs.empty_sctx
          ((mk_satom evalv ([ idt; appt ]))));
  ]

let suites = [ ("values", tests) ]
