(** Tests for the front end: lexing, parsing, elaboration, and the full
    §2 development in surface syntax — cross-validated against the
    internal-syntax construction and run end-to-end. *)

open Belr_support
open Belr_syntax
open Belr_lf
open Belr_core
open Belr_comp
open Belr_kits
open Belr_parser
open Lf

let ok name thunk = Alcotest.test_case name `Quick thunk

let fails name thunk =
  Alcotest.test_case name `Quick (fun () ->
      match thunk () with
      | exception Error.Belr_error _ -> ()
      | exception Error.Violation _ -> ()
      | _ -> Alcotest.failf "%s: expected failure" name)

let lexer_tests =
  [
    ok "lexes identifiers with dashes" (fun () ->
        match List.map (fun l -> l.Lexer.tok) (Lexer.tokens "e-lam -> x") with
        | [ Token.IDENT "e-lam"; Token.ARROW; Token.IDENT "x"; Token.EOF ] ->
            ()
        | _ -> Alcotest.fail "bad tokens");
    ok "lexes symbols" (fun () ->
        match
          List.map (fun l -> l.Lexer.tok) (Lexer.tokens "<| |- .. => ^ #")
        with
        | [ Token.REFINES; Token.TURNSTILE; Token.DOTDOT; Token.DARROW;
            Token.CARET; Token.HASH; Token.EOF ] ->
            ()
        | _ -> Alcotest.fail "bad tokens");
    ok "skips comments" (fun () ->
        match
          List.map (fun l -> l.Lexer.tok)
            (Lexer.tokens "x % this is a comment\n y")
        with
        | [ Token.IDENT "x"; Token.IDENT "y"; Token.EOF ] -> ()
        | _ -> Alcotest.fail "bad tokens");
  ]

let parse_tests =
  [
    ok "parses the signature" (fun () ->
        let p = Parse.parse_program Surface.signature_src in
        Alcotest.(check int) "decls" 8 (List.length p));
    ok "parses a rec with branches" (fun () ->
        match Parse.parse_program Surface.ceq_src with
        | [ Ext.Drec [ { r_body = Ext.EMlam _; _ } ] ] -> ()
        | _ -> Alcotest.fail "unexpected parse");
    ok "parses a mutual rec group" (fun () ->
        match
          Parse.parse_program
            "rec f : [ |- nat] -> [ |- nat] = fn d => g d\n\
             and g : [ |- nat] -> [ |- nat] = fn d => f d;"
        with
        | [ Ext.Drec [ { r_name = "f"; _ }; { r_name = "g"; _ } ] ] -> ()
        | _ -> Alcotest.fail "unexpected parse");
    fails "rejects unbalanced brackets" (fun () ->
        Parse.parse_program "LF t : type = | c : (t -> t;");
    fails "rejects stray tokens" (fun () ->
        Parse.parse_program "schema G = ;");
  ]

(* The full pipeline *)

let surface_sg = lazy (Surface.load ())

let sig_tests =
  [
    ok "the full §2 surface development parses, elaborates, and checks"
      (fun () -> ignore (Lazy.force surface_sg));
    ok "reconstruction found the right number of implicit arguments"
      (fun () ->
        let sg = Lazy.force surface_sg in
        let check name n =
          match Sign.lookup_name sg name with
          | Some (Sign.Sym_const c) ->
              Alcotest.(check int)
                (name ^ " implicits") n
                (Sign.const_entry sg c).Sign.c_implicit
          | _ -> Alcotest.failf "%s not found" name
        in
        check "e-lam" 2;
        check "e-app" 4;
        check "e-refl" 0;
        check "e-sym" 2;
        check "e-trans" 3);
    ok "the surface and internal developments give α-equal constructor types"
      (fun () ->
        let sg = Lazy.force surface_sg in
        let f = Fixtures.make () in
        let get s name =
          match Sign.lookup_name s name with
          | Some (Sign.Sym_const c) ->
              Fmt.str "%a"
                (Pp.pp_typ (Sign.pp_env s))
                (Sign.const_entry s c).Sign.c_typ
          | _ -> Alcotest.failf "%s not found" name
        in
        List.iter
          (fun n ->
            Alcotest.(check string) (n ^ " types agree") (get f.Fixtures.sg n)
              (get sg n))
          [ "lam"; "app"; "e-lam"; "e-app"; "e-refl"; "e-sym"; "e-trans" ]);
    fails "an LFR declaration cannot select foreign constructors" (fun () ->
        Process.program
          (Surface.signature_src
         ^ "LFR bad <| tm : tm -> tm -> sort = | e-refl : {M : tm} bad M M;"));
    fails "ill-sorted surface programs are rejected" (fun () ->
        Process.program
          (Surface.signature_src
         ^ {bel|
rec broken : (Psi : xaG) (M : [Psi |- tm]) [Psi |- aeq M M] =
mlam Psi => mlam M => [Psi |- e-refl M];
|bel}));
  ]

(* Run the surface development and compare with the internal kit *)

let hat_empty = { Meta.hat_var = None; Meta.hat_names = [] }

let mapps f args = List.fold_left (fun e a -> Comp.MApp (e, a)) f args

let run_tests =
  [
    ok "surface ceq computes the same result as the internal-kit ceq"
      (fun () ->
        let sg = Lazy.force surface_sg in
        let dev = Equal_dev.make () in
        let lookup_rec s name =
          match Sign.lookup_name s name with
          | Some (Sign.Sym_rec r) -> r
          | _ -> Alcotest.failf "%s not found" name
        in
        let build s lam_c e_refl_c e_sym_c e_trans_c =
          let idt = (mk_root ((mk_const lam_c)) ([ (mk_lam "x" ((mk_root ((mk_bvar 1)) []))) ])) in
          let refl = (mk_root ((mk_const e_refl_c)) ([ idt ])) in
          let sym = (mk_root ((mk_const e_sym_c)) ([ idt; idt; refl ])) in
          (idt, (mk_root ((mk_const e_trans_c)) ([ idt; idt; idt; refl; sym ])), s)
        in
        let find_c s n =
          match Sign.lookup_name s n with
          | Some (Sign.Sym_const c) -> c
          | _ -> Alcotest.failf "%s not found" n
        in
        let run s ceq_id =
          let idt, d, _ =
            build s (find_c s "lam") (find_c s "e-refl") (find_c s "e-sym")
              (find_c s "e-trans")
          in
          let call =
            Comp.App
              ( mapps (Comp.RecConst ceq_id)
                  [
                    Meta.MOCtx Ctxs.empty_sctx;
                    Meta.MOTerm (hat_empty, idt);
                    Meta.MOTerm (hat_empty, idt);
                  ],
                Comp.Box (Meta.MOTerm (hat_empty, d)) )
          in
          match Eval.as_box (Eval.eval (Eval.make_env s) call) with
          | Meta.MOTerm (_, m) -> m
          | _ -> Alcotest.fail "expected a boxed term"
        in
        let r_surface = run sg (lookup_rec sg "ceq") in
        let r_internal =
          run dev.Equal_dev.ulam.Ulam.sg dev.Equal_dev.ceq
        in
        (* constant ids differ between signatures; compare printed forms *)
        let p s m =
          Fmt.str "%a" (Pp.pp_normal (Sign.pp_env s)) m
        in
        Alcotest.(check string)
          "same result" (p dev.Equal_dev.ulam.Ulam.sg r_internal)
          (p sg r_surface));
    ok "surface aeq-refl runs in a non-empty context" (fun () ->
        let sg = Lazy.force surface_sg in
        let refl =
          match Sign.lookup_name sg "aeq-refl" with
          | Some (Sign.Sym_rec r) -> r
          | _ -> Alcotest.fail "aeq-refl not found"
        in
        (* Ψ = b : xeW, M = app b.1 b.1 *)
        let xeW =
          match Elab.find_world sg "xeW" with
          | Some (Elab.Wsort f) -> f
          | _ -> Alcotest.fail "xeW not found"
        in
        let psi1 =
          Ctxs.sctx_push Ctxs.empty_sctx (Ctxs.SCBlock ("b", xeW, []))
        in
        let app_c =
          match Sign.lookup_name sg "app" with
          | Some (Sign.Sym_const c) -> c
          | _ -> Alcotest.fail "app not found"
        in
        let b1 = (mk_root ((mk_proj ((mk_bvar 1)) 1)) []) in
        let m = (mk_root ((mk_const app_c)) ([ b1; b1 ])) in
        let h = Meta.hat_of_sctx psi1 in
        let call =
          mapps (Comp.RecConst refl)
            [ Meta.MOCtx psi1; Meta.MOTerm (h, m) ]
        in
        let res =
          match Eval.as_box (Eval.eval (Eval.make_env sg) call) with
          | Meta.MOTerm (_, m) -> m
          | _ -> Alcotest.fail "expected a boxed term"
        in
        let aeq_s =
          match Sign.lookup_name sg "aeq" with
          | Some (Sign.Sym_srt s) -> s
          | _ -> Alcotest.fail "aeq not found"
        in
        ignore
          (Check_lfr.check_normal (Check_lfr.make_env sg []) psi1 res
             ((mk_satom aeq_s ([ m; m ])))));
  ]

let suites =
  [
    ("parser.lexer", lexer_tests);
    ("parser.parse", parse_tests);
    ("parser.pipeline", sig_tests);
    ("parser.run", run_tests);
  ]
