(** Tests for the refinement layer: sort well-formedness (the refinement
    relation), unified sort checking, promotion, refinement schemas, and
    data-level conservativity (Thm 3.1.5). *)

open Belr_support
open Belr_syntax
open Belr_lf
open Belr_core
open Lf

let f = Fixtures.make ()

let env = Check_lfr.make_env f.Fixtures.sg []

let lf_env = Check_lf.make_env f.Fixtures.sg []

let check_ty = Alcotest.testable (Pp.pp_typ (Pp.env ())) Equal.typ

let check_srt = Alcotest.testable (Pp.pp_srt (Pp.env ())) Equal.srt

let v i : normal = (mk_root ((mk_bvar i)) [])

let fails name thunk =
  Alcotest.test_case name `Quick (fun () ->
      match thunk () with
      | exception Error.Belr_error _ -> ()
      | exception Error.Violation _ -> ()
      | _ -> Alcotest.failf "%s: expected failure, but succeeded" name)

let ok name thunk = Alcotest.test_case name `Quick thunk

(* Reusable derivations ------------------------------------------------- *)

let id_tm = Fixtures.id_tm f

(* aeq (lam \x.x) (lam \x.x) by e-lam, with the variable case closing it *)
let d_id =
  (mk_root ((mk_const f.Fixtures.e_lam)) ([ (mk_lam "x" (v 1)); (mk_lam "x" (v 1)); (mk_lam "x" ((mk_lam "u" (v 1)))) ]))

let aeq_id_id = (mk_satom f.Fixtures.aeq ([ id_tm; id_tm ]))

let deq_id_id_emb = (mk_sembed f.Fixtures.deq ([ id_tm; id_tm ]))

let deq_id_id_typ = (mk_atom f.Fixtures.deq ([ id_tm; id_tm ]))

(* aeq (app id id) (app id id) via e-app *)
let app_id = Fixtures.app_tm f id_tm id_tm

let d_app =
  (mk_root ((mk_const f.Fixtures.e_app)) ([ id_tm; id_tm; id_tm; id_tm; d_id; d_id ]))

(* a deq-only derivation: e-sym id id (e-refl id) *)
let d_sym =
  (mk_root ((mk_const f.Fixtures.e_sym)) ([ id_tm; id_tm; (mk_root ((mk_const f.Fixtures.e_refl)) ([ id_tm ])) ]))

(* ------------------------------------------------------------------ *)

let wf_tests =
  [
    ok "aeq id id is a well-formed sort refining deq id id" (fun () ->
        let a = Check_lfr.wf_srt env Ctxs.empty_sctx aeq_id_id in
        Alcotest.check check_ty "refines" deq_id_id_typ a);
    ok "embedded deq id id is well-formed" (fun () ->
        let a = Check_lfr.wf_srt env Ctxs.empty_sctx deq_id_id_emb in
        Alcotest.check check_ty "refines" deq_id_id_typ a);
    fails "aeq applied to ill-typed arguments fails" (fun () ->
        Check_lfr.wf_srt env Ctxs.empty_sctx
          ((mk_satom f.Fixtures.aeq ([ Fixtures.zero f; Fixtures.zero f ]))));
    fails "aeq under-applied fails" (fun () ->
        Check_lfr.wf_srt env Ctxs.empty_sctx
          ((mk_satom f.Fixtures.aeq ([ id_tm ]))));
    ok "sort-Pi is well-formed and erases to type-Pi" (fun () ->
        let s =
          (mk_spi "x" ((mk_sembed f.Fixtures.tm [])) ((mk_satom f.Fixtures.aeq ([ v 1; v 1 ]))))
        in
        let a = Check_lfr.wf_srt env Ctxs.empty_sctx s in
        Alcotest.check check_ty "pi"
          ((mk_pi "x" ((mk_atom f.Fixtures.tm [])) ((mk_atom f.Fixtures.deq ([ v 1; v 1 ])))))
          a);
  ]

let sorting_tests =
  [
    ok "e-lam derivation checks at sort aeq" (fun () ->
        let a = Check_lfr.check_normal env Ctxs.empty_sctx d_id aeq_id_id in
        Alcotest.check check_ty "output type" deq_id_id_typ a);
    ok "e-lam derivation also checks at the embedded sort" (fun () ->
        ignore
          (Check_lfr.check_normal env Ctxs.empty_sctx d_id deq_id_id_emb));
    ok "e-app derivation checks at sort aeq" (fun () ->
        ignore
          (Check_lfr.check_normal env Ctxs.empty_sctx d_app
             ((mk_satom f.Fixtures.aeq ([ app_id; app_id ])))));
    fails "e-refl derivation is rejected at sort aeq (key refinement)"
      (fun () ->
        Check_lfr.check_normal env Ctxs.empty_sctx
          ((mk_root ((mk_const f.Fixtures.e_refl)) ([ id_tm ])))
          aeq_id_id);
    fails "e-sym derivation is rejected at sort aeq" (fun () ->
        Check_lfr.check_normal env Ctxs.empty_sctx d_sym aeq_id_id);
    ok "e-sym derivation checks at the embedded deq sort" (fun () ->
        ignore
          (Check_lfr.check_normal env Ctxs.empty_sctx d_sym deq_id_id_emb));
    ok "subsumption: aeq derivation accepted at embedded deq" (fun () ->
        (* d_id synthesizes aeq but is used where ⌊deq⌋ is expected:
           atomic subsumption (§3.1.1) — here via the constant path the
           checker picks the embedding directly, so exercise subsumption
           through a variable instead *)
        let psi =
          Ctxs.sctx_push Ctxs.empty_sctx (Ctxs.SCDecl ("d", aeq_id_id))
        in
        ignore
          (Check_lfr.check_normal env psi (v 1)
             (Shift.shift_srt 1 0 deq_id_id_emb)));
    fails "no subsumption in the other direction" (fun () ->
        let psi =
          Ctxs.sctx_push Ctxs.empty_sctx (Ctxs.SCDecl ("d", deq_id_id_emb))
        in
        Check_lfr.check_normal env psi (v 1) (Shift.shift_srt 1 0 aeq_id_id));
    ok "conservativity: sort-checked terms re-check at the erased type"
      (fun () ->
        let a = Check_lfr.check_normal env Ctxs.empty_sctx d_id aeq_id_id in
        Check_lf.check_normal lf_env Ctxs.empty_ctx d_id a;
        let s_app = (mk_satom f.Fixtures.aeq ([ app_id; app_id ])) in
        let a2 = Check_lfr.check_normal env Ctxs.empty_sctx d_app s_app in
        Check_lf.check_normal lf_env Ctxs.empty_ctx d_app a2);
  ]

(* ------------------------------------------------------------------ *)
(* Promotion and sort-level contexts                                    *)

let promo_tests =
  let psi1 = Fixtures.xa_sctx f 1 in
  let psi1_top = Ctxs.promote psi1 in
  let b1 = (mk_root ((mk_proj ((mk_bvar 1)) 1)) []) in
  [
    ok "b.2 has sort aeq b.1 b.1 in Ψ" (fun () ->
        Alcotest.check check_srt "aeq"
          ((mk_satom f.Fixtures.aeq ([ b1; b1 ])))
          (Sctxops.srt_of_proj f.Fixtures.sg psi1 1 2));
    ok "b.2 has sort ⌊deq b.1 b.1⌋ in Ψ⊤ (promotion)" (fun () ->
        Alcotest.check check_srt "deq"
          ((mk_sembed f.Fixtures.deq ([ b1; b1 ])))
          (Sctxops.srt_of_proj f.Fixtures.sg psi1_top 1 2));
    ok "b.2 checks at aeq b.1 b.1 in Ψ" (fun () ->
        ignore
          (Check_lfr.check_normal env psi1
             ((mk_root ((mk_proj ((mk_bvar 1)) 2)) []))
             ((mk_satom f.Fixtures.aeq ([ b1; b1 ])))));
    ok "b.2 checks at ⌊deq b.1 b.1⌋ in Ψ⊤" (fun () ->
        ignore
          (Check_lfr.check_normal env psi1_top
             ((mk_root ((mk_proj ((mk_bvar 1)) 2)) []))
             ((mk_sembed f.Fixtures.deq ([ b1; b1 ])))));
    ok "b.2 also checks at ⌊deq⌋ in Ψ by subsumption" (fun () ->
        ignore
          (Check_lfr.check_normal env psi1
             ((mk_root ((mk_proj ((mk_bvar 1)) 2)) []))
             ((mk_sembed f.Fixtures.deq ([ b1; b1 ])))));
    fails "b.2 does not check at aeq in Ψ⊤ (promotion loses refinement)"
      (fun () ->
        Check_lfr.check_normal env psi1_top
          ((mk_root ((mk_proj ((mk_bvar 1)) 2)) []))
          ((mk_satom f.Fixtures.aeq ([ b1; b1 ]))));
    ok "sort context is well-formed and erases to the xdG context"
      (fun () ->
        let g = Check_lfr.wf_sctx env (Fixtures.xa_sctx f 2) in
        Check_lf.check_ctx lf_env g;
        Check_lf.check_ctx_schema lf_env g f.Fixtures.xdg);
    ok "identity substitution from Ψ into Ψ⊤ is allowed" (fun () ->
        Check_lfr.check_sub env psi1_top ((mk_shift 0)) psi1);
    fails "identity substitution from Ψ⊤ into Ψ is rejected" (fun () ->
        Check_lfr.check_sub env psi1 ((mk_shift 0)) psi1_top);
  ]

(* ------------------------------------------------------------------ *)
(* Refinement schemas                                                   *)

let schema_tests =
  [
    ok "xaG refines xdG" (fun () ->
        Check_lfr.check_sschema_refines env [ f.Fixtures.xa_selem ]
          [ f.Fixtures.xd_elem ]);
    fails "a selem with a mismatched block does not refine" (fun () ->
        let bad =
          {
            f.Fixtures.xa_selem with
            Ctxs.f_block = [ ("x", (mk_sembed f.Fixtures.nat [])) ];
          }
        in
        Check_lfr.check_sschema_refines env [ bad ] [ f.Fixtures.xd_elem ]);
    fails "f_refines out of range is rejected" (fun () ->
        let bad = { f.Fixtures.xa_selem with Ctxs.f_refines = 3 } in
        Check_lfr.check_sschema_refines env [ bad ] [ f.Fixtures.xd_elem ]);
    ok "Ψ : xaG schema-checks" (fun () ->
        Check_lfr.check_sctx_schema env (Fixtures.xa_sctx f 2) f.Fixtures.xag);
    ok "Ψ⊤ : xaG schema-checks against the promoted schema" (fun () ->
        Check_lfr.check_sctx_schema env
          (Ctxs.promote (Fixtures.xa_sctx f 2))
          f.Fixtures.xag);
    fails "a context with deq blocks does not check against xaG" (fun () ->
        let psi =
          Ctxs.sctx_push Ctxs.empty_sctx
            (Ctxs.SCBlock
               ("b", Embed.elem ~refines:0 f.Fixtures.xd_elem, []))
        in
        Check_lfr.check_sctx_schema env psi f.Fixtures.xag);
  ]

let suites =
  [
    ("lfr.wf", wf_tests);
    ("lfr.sorting", sorting_tests);
    ("lfr.promotion", promo_tests);
    ("lfr.schemas", schema_tests);
  ]
