(** The [belr serve] engine: belr-serve/1 replies, incremental
    per-declaration re-checking (telemetry span counts as the oracle),
    crash-only fault handling, deadlines, and protocol resync. *)

open Belr_support
open Belr_parser
module J = Json

let test name f = Alcotest.test_case name `Quick f

(* --- request/reply plumbing -------------------------------------------- *)

let request ?(session = "s") ?deadline_ms ?step_budget ?(meth = "check")
    ?source ?file id =
  let fields =
    [ ("id", Some (J.Int id)); ("method", Some (J.String meth));
      ("session", Some (J.String session));
      ("deadline_ms", Option.map (fun n -> J.Int n) deadline_ms);
      ("step_budget", Option.map (fun n -> J.Int n) step_budget);
      ("source", Option.map (fun s -> J.String s) source);
      ("file", Option.map (fun f -> J.String f) file) ]
  in
  J.to_string ~compact:true
    (J.Obj
       (List.filter_map
          (fun (k, v) -> Option.map (fun v -> (k, v)) v)
          fields))

(** Send one line, decode the mandatory reply. *)
let round t line =
  match Serve.handle_line t line with
  | None -> Alcotest.fail "no reply to a non-blank line"
  | Some reply -> (
      match J.parse reply with
      | Error msg -> Alcotest.failf "unparsable reply: %s" msg
      | Ok j -> j)

let str_field k j =
  match Option.bind (J.member k j) J.to_str with
  | Some s -> s
  | None -> Alcotest.failf "reply lacks string %S" k

let int_field k j =
  match Option.bind (J.member k j) J.to_int with
  | Some n -> n
  | None -> Alcotest.failf "reply lacks int %S" k

let tele_field k j =
  match Option.bind (J.member "telemetry" j) (J.member k) with
  | Some (J.Int n) -> n
  | _ -> Alcotest.failf "reply telemetry lacks %S" k

let codes j =
  match Option.bind (J.member "diagnostics" j) J.to_list with
  | Some ds -> List.filter_map (fun d -> Option.bind (J.member "code" d) J.to_str) ds
  | None -> []

(* Three declarations: [dep] references [nat]; [exp] is unrelated to
   both (and not subordinate to either), so a [nat] edit must re-check
   [nat] and [dep] but reuse [exp]. *)
let nat = "LF nat : type =\n| z : nat\n| s : nat -> nat;"
let nat' = "LF nat : type =\n| z : nat\n| s : nat -> nat\n| t : nat;"

let exp =
  "LF exp : type =\n| lam : (exp -> exp) -> exp\n| app : exp -> exp -> exp;"

let dep = "LF vec : type =\n| nil : vec\n| cons : nat -> vec -> vec;"
let src3 a = String.concat "\n\n" [ a; exp; dep ]

let incremental_tests =
  [
    test "identical resubmission re-checks nothing" (fun () ->
        let t = Serve.create () in
        let r1 = round t (request ~source:(src3 nat) 1) in
        Alcotest.(check string) "status" "ok" (str_field "status" r1);
        Alcotest.(check int) "cold re-checks all" 3 (tele_field "rechecked" r1);
        let r2 = round t (request ~source:(src3 nat) 2) in
        Alcotest.(check int) "warm re-checks none" 0 (tele_field "rechecked" r2);
        Alcotest.(check int) "all reused" 3 (tele_field "reused" r2);
        Alcotest.(check int) "no decl spans" 0 (tele_field "decl_spans" r2));
    test "editing one decl re-checks only its dependents" (fun () ->
        let t = Serve.create () in
        ignore (round t (request ~source:(src3 nat) 1));
        let r = round t (request ~source:(src3 nat') 2) in
        Alcotest.(check string) "status" "ok" (str_field "status" r);
        Alcotest.(check int) "exit" 0 (int_field "exit_code" r);
        (* nat (edited) and vec (references nat); exp is untouched *)
        Alcotest.(check int) "rechecked" 2 (tele_field "rechecked" r);
        Alcotest.(check int) "reused" 1 (tele_field "reused" r);
        (* the telemetry decl spans are the ground truth: exactly the
           re-checked declarations went through the checking pipeline *)
        Alcotest.(check int) "decl spans" 2 (tele_field "decl_spans" r));
    test "an erroneous declaration recovers fully once fixed" (fun () ->
        let t = Serve.create () in
        let broken = "LF vec : type =\n| cons : natt -> vec -> vec;" in
        let r1 =
          round t
            (request ~source:(String.concat "\n\n" [ nat; broken ]) 1)
        in
        Alcotest.(check int) "exit 1 while broken" 1 (int_field "exit_code" r1);
        Alcotest.(check bool) "E0201 reported" true
          (List.mem "E0201" (codes r1));
        let r2 =
          round t (request ~source:(String.concat "\n\n" [ nat; dep ]) 2)
        in
        Alcotest.(check string) "status" "ok" (str_field "status" r2);
        Alcotest.(check int) "exit 0 once fixed" 0 (int_field "exit_code" r2);
        Alcotest.(check (list string)) "no diagnostics" [] (codes r2);
        (* only the fixed declaration re-checks; nat is reused *)
        Alcotest.(check int) "rechecked" 1 (tele_field "rechecked" r2);
        Alcotest.(check int) "reused" 1 (tele_field "reused" r2));
    test "inserting a declaration before the first one reparses fully"
      (fun () ->
        let t = Serve.create () in
        (* leading trivia puts the first declaration's start past the
           common prefix of the two texts; the incremental reparse must
           not blank bytes of the new text's inserted declaration *)
        let r1 = round t (request ~source:("\n" ^ nat) 1) in
        Alcotest.(check string) "status" "ok" (str_field "status" r1);
        let r2 =
          round t (request ~source:("LF bool : type;\n\n" ^ nat) 2)
        in
        Alcotest.(check string) "status" "ok" (str_field "status" r2);
        Alcotest.(check int) "exit 0" 0 (int_field "exit_code" r2);
        Alcotest.(check (list string)) "no diagnostics" [] (codes r2));
    test "removing a declaration retracts it from the session" (fun () ->
        let t = Serve.create () in
        ignore (round t (request ~source:(src3 nat) 1));
        let r = round t (request ~source:nat 2) in
        Alcotest.(check string) "status" "ok" (str_field "status" r);
        let typs =
          match
            Option.bind (J.member "result" r) (fun res ->
                Option.bind (J.member "summary" res) (J.member "typs"))
          with
          | Some (J.Int n) -> n
          | _ -> Alcotest.fail "no summary.typs"
        in
        Alcotest.(check int) "one family left" 1 typs);
  ]

let robustness_tests =
  [
    test "an injected kernel fault yields a structured error reply, and \
          the next request on a fresh session succeeds" (fun () ->
        let t = Serve.create () in
        Fault.arm ~site:"store-intern" ~n:1;
        let r1 =
          Fun.protect ~finally:Fault.disarm (fun () ->
              round t (request ~session:"a" ~source:nat 1))
        in
        Alcotest.(check string) "status" "error" (str_field "status" r1);
        Alcotest.(check int) "exit 2" 2 (int_field "exit_code" r1);
        Alcotest.(check bool) "B0003 reported" true
          (List.mem "B0003" (codes r1));
        let r2 = round t (request ~session:"b" ~source:nat 2) in
        Alcotest.(check string) "fresh session ok" "ok" (str_field "status" r2);
        Alcotest.(check int) "exit 0" 0 (int_field "exit_code" r2));
    test "malformed input is a structured E0904 and the loop resyncs"
      (fun () ->
        let t = Serve.create () in
        let r1 = round t "{{{ not json" in
        Alcotest.(check string) "status" "error" (str_field "status" r1);
        Alcotest.(check bool) "E0904" true (List.mem "E0904" (codes r1));
        Alcotest.(check bool) "blank line: no reply" true
          (Serve.handle_line t "   " = None);
        let r2 = round t (request ~source:nat 2) in
        Alcotest.(check string) "next request fine" "ok"
          (str_field "status" r2));
    test "an unknown method is rejected without killing the session"
      (fun () ->
        let t = Serve.create () in
        ignore (round t (request ~source:nat 1));
        let r = round t (request ~meth:"frobnicate" 2) in
        Alcotest.(check string) "status" "error" (str_field "status" r);
        Alcotest.(check bool) "E0904" true (List.mem "E0904" (codes r));
        let r2 = round t (request ~source:nat 3) in
        Alcotest.(check int) "session survived: everything reused" 0
          (tele_field "rechecked" r2));
    test "an expired deadline degrades the reply with E0903" (fun () ->
        let t = Serve.create () in
        let r = round t (request ~deadline_ms:0 ~source:(src3 nat) 1) in
        Alcotest.(check string) "status" "degraded" (str_field "status" r);
        Alcotest.(check bool) "E0903" true (List.mem "E0903" (codes r));
        (* the session is consistent: the next, undeadlined request
           finishes the work *)
        let r2 = round t (request ~source:(src3 nat) 2) in
        Alcotest.(check string) "recovers" "ok" (str_field "status" r2);
        Alcotest.(check int) "exit 0" 0 (int_field "exit_code" r2));
    test "the error cap firing mid-check leaves the session consistent"
      (fun () ->
        let t = Serve.create ~max_errors:1 () in
        let broken = "LF vec : type =\n| cons : natt -> vec -> vec;" in
        let r1 =
          round t
            (request ~source:(String.concat "\n\n" [ nat; broken; exp ]) 1)
        in
        Alcotest.(check int) "exit 1 while broken" 1 (int_field "exit_code" r1);
        (* the cap aborted the re-check loop mid-way; the session must
           still have committed its entry list, so fixing the file fully
           recovers (no duplicate-declaration noise from stale entries) *)
        let r2 =
          round t
            (request ~source:(String.concat "\n\n" [ nat; dep; exp ]) 2)
        in
        Alcotest.(check string) "status" "ok" (str_field "status" r2);
        Alcotest.(check int) "exit 0 once fixed" 0 (int_field "exit_code" r2);
        Alcotest.(check (list string)) "no diagnostics" [] (codes r2));
    test "a protocol error does not leak its step budget" (fun () ->
        let t = Serve.create ~deadline_ms:60_000 () in
        (* computation checking performs guarded steps, so a stale
           one-step budget is guaranteed to trip on this source *)
        let src =
          String.concat "\n\n"
            [
              nat; "LFR pos <| nat : sort =\n| s : nat -> pos;";
              "rec pred : [ |- pos] -> [ |- nat] =\n\
               fn d => case d of\n\
               | {N : [ |- nat]}\n\
               \  [ |- s N] => [ |- N];";
            ]
        in
        (* rejected before [finish] runs, with a tiny budget armed *)
        let r1 = round t (request ~step_budget:1 1) in
        Alcotest.(check string) "status" "error" (str_field "status" r1);
        (* the next, unbudgeted request must not run under the stale cap *)
        let r2 = round t (request ~source:src 2) in
        Alcotest.(check string) "status" "ok" (str_field "status" r2);
        Alcotest.(check int) "exit 0" 0 (int_field "exit_code" r2);
        Alcotest.(check (list string)) "no diagnostics" [] (codes r2));
    test "a missing source/file is a protocol error" (fun () ->
        let t = Serve.create () in
        let r = round t (request 1) in
        Alcotest.(check string) "status" "error" (str_field "status" r);
        Alcotest.(check bool) "E0904" true (List.mem "E0904" (codes r)));
    test "reset gives the session a fresh world" (fun () ->
        let t = Serve.create () in
        ignore (round t (request ~source:(src3 nat) 1));
        let r = round t (request ~meth:"reset" 2) in
        Alcotest.(check string) "reset ok" "ok" (str_field "status" r);
        let r2 = round t (request ~source:(src3 nat) 3) in
        Alcotest.(check int) "everything re-checks" 3
          (tele_field "rechecked" r2));
    test "an engine fault discards the session without leaking the \
          request id or the telemetry flag" (fun () ->
        let t = Serve.create () in
        ignore (round t (request ~source:(src3 nat) 1));
        let was_enabled = Telemetry.enabled () in
        Fault.arm ~site:"serve-dispatch" ~n:1;
        let r =
          Fun.protect ~finally:Fault.disarm (fun () ->
              round t (request ~source:(src3 nat) 2))
        in
        Alcotest.(check string) "status" "error" (str_field "status" r);
        Alcotest.(check int) "exit 2" 2 (int_field "exit_code" r);
        Alcotest.(check bool) "B0002 reported" true
          (List.mem "B0002" (codes r));
        (* the crash path must not leak ambient telemetry state into the
           next request's spans *)
        Alcotest.(check string) "request id cleared" ""
          (Telemetry.current_request_id ());
        Alcotest.(check bool) "telemetry flag restored" was_enabled
          (Telemetry.enabled ());
        (* crash-only: the session was discarded, so the next request on
           the same name starts from a fresh world and re-checks all *)
        let r2 = round t (request ~source:(src3 nat) 3) in
        Alcotest.(check string) "fresh world ok" "ok" (str_field "status" r2);
        Alcotest.(check int) "re-checks all" 3 (tele_field "rechecked" r2));
    test "lint and stats answer on a checked session" (fun () ->
        let t = Serve.create () in
        ignore (round t (request ~source:(src3 nat) 1));
        let rl = round t (request ~meth:"lint" 2) in
        Alcotest.(check string) "lint ok" "ok" (str_field "status" rl);
        let rs = round t (request ~meth:"stats" 3) in
        Alcotest.(check string) "stats ok" "ok" (str_field "status" rs);
        match
          Option.bind (J.member "result" rs) (J.member "requests")
        with
        | Some (J.Int n) -> Alcotest.(check int) "request count" 3 n
        | _ -> Alcotest.fail "stats lacks requests");
  ]

let observability_tests =
  [
    test "metrics answers the belr-metrics/1 report with a populated \
          serve.check histogram" (fun () ->
        let t = Serve.create () in
        ignore (round t (request ~source:(src3 nat) 1));
        let r = round t (request ~meth:"metrics" 2) in
        Alcotest.(check string) "status" "ok" (str_field "status" r);
        let result =
          match J.member "result" r with
          | Some res -> res
          | None -> Alcotest.fail "metrics reply lacks result"
        in
        Alcotest.(check bool) "schema" true
          (J.member "schema" result = Some (J.String "belr-metrics/1"));
        let check_hist =
          match Option.bind (J.member "histograms" result) J.to_list with
          | Some hs ->
              List.find_opt
                (fun h -> J.member "name" h = Some (J.String "serve.check"))
                hs
          | None -> Alcotest.fail "metrics reply lacks histograms"
        in
        match check_hist with
        | None -> Alcotest.fail "no serve.check histogram"
        | Some h -> (
            (match J.member "count" h with
            | Some (J.Int n) -> Alcotest.(check bool) "count >= 1" true (n >= 1)
            | _ -> Alcotest.fail "serve.check lacks count");
            match J.member "p50_ns" h with
            | Some (J.Int p) -> Alcotest.(check bool) "p50 > 0" true (p > 0)
            | _ -> Alcotest.fail "serve.check lacks p50_ns"));
    test "health reports up, with live nodes and uptime" (fun () ->
        let t = Serve.create () in
        ignore (round t (request ~source:(src3 nat) 1));
        let r = round t (request ~meth:"health" 2) in
        Alcotest.(check string) "status" "ok" (str_field "status" r);
        let result =
          match J.member "result" r with
          | Some res -> res
          | None -> Alcotest.fail "health reply lacks result"
        in
        Alcotest.(check bool) "up" true
          (J.member "status" result = Some (J.String "up"));
        (match J.member "requests" result with
        | Some (J.Int n) -> Alcotest.(check int) "requests" 2 n
        | _ -> Alcotest.fail "health lacks requests");
        (match J.member "live_nodes" result with
        | Some (J.Int n) -> Alcotest.(check bool) "live nodes > 0" true (n > 0)
        | _ -> Alcotest.fail "health lacks live_nodes");
        match J.member "uptime_ns" result with
        | Some (J.Int n) -> Alcotest.(check bool) "uptime > 0" true (n > 0)
        | _ -> Alcotest.fail "health lacks uptime_ns");
    test "reset reports the peaks observed before the reset" (fun () ->
        let t = Serve.create () in
        ignore (round t (request ~source:(src3 nat) 1));
        let r = round t (request ~meth:"reset" 2) in
        Alcotest.(check string) "status" "ok" (str_field "status" r);
        let result =
          match J.member "result" r with
          | Some res -> res
          | None -> Alcotest.fail "reset reply lacks result"
        in
        (match J.member "store_live_before_reset" result with
        | Some (J.Int n) ->
            Alcotest.(check bool) "store was populated" true (n > 0)
        | _ -> Alcotest.fail "reset lacks store_live_before_reset");
        match J.member "peaks_before_reset" result with
        | Some (J.Obj _) -> ()
        | _ -> Alcotest.fail "reset lacks peaks_before_reset");
    test "warm lint replies replay the cached analysis; an edit \
          invalidates exactly its closure" (fun () ->
        let t = Serve.create () in
        ignore (round t (request ~source:(src3 nat) 1));
        let l1 = round t (request ~meth:"lint" 2) in
        Alcotest.(check string) "cold lint ok" "ok" (str_field "status" l1);
        Alcotest.(check int) "cold lint analyzes all" 3
          (tele_field "rechecked" l1);
        let l2 = round t (request ~meth:"lint" 3) in
        Alcotest.(check int) "warm lint re-analyzes none" 0
          (tele_field "rechecked" l2);
        Alcotest.(check int) "warm lint reuses all" 3
          (tele_field "reused" l2);
        (* the replayed reply is indistinguishable from the cold one *)
        Alcotest.(check bool) "same result" true
          (J.member "result" l1 = J.member "result" l2);
        Alcotest.(check (list string)) "same findings" (codes l1) (codes l2);
        Alcotest.(check int) "same exit code" (int_field "exit_code" l1)
          (int_field "exit_code" l2);
        (* a nat edit dirties the cache; the reported recheck count is
           the invalidation closure (nat + vec), not the whole file *)
        ignore (round t (request ~source:(src3 nat') 4));
        let l3 = round t (request ~meth:"lint" 5) in
        Alcotest.(check int) "edited lint re-analyzes the closure" 2
          (tele_field "rechecked" l3);
        Alcotest.(check int) "the rest reused" 1 (tele_field "reused" l3));
    test "warm total replies replay the cached analysis" (fun () ->
        let t = Serve.create () in
        ignore (round t (request ~source:(src3 nat) 1));
        let t1 = round t (request ~meth:"total" 2) in
        Alcotest.(check string) "cold total ok" "ok" (str_field "status" t1);
        Alcotest.(check int) "cold total analyzes all" 3
          (tele_field "rechecked" t1);
        let t2 = round t (request ~meth:"total" 3) in
        Alcotest.(check int) "warm total re-analyzes none" 0
          (tele_field "rechecked" t2);
        Alcotest.(check int) "warm total reuses all" 3
          (tele_field "reused" t2);
        Alcotest.(check bool) "same result" true
          (J.member "result" t1 = J.member "result" t2);
        Alcotest.(check (list string)) "same findings" (codes t1) (codes t2);
        (* reset drops the caches along with the session's world *)
        ignore (round t (request ~meth:"reset" 4));
        ignore (round t (request ~source:(src3 nat) 5));
        let t3 = round t (request ~meth:"total" 6) in
        Alcotest.(check int) "post-reset total re-analyzes all" 3
          (tele_field "rechecked" t3));
    test "warm modes replies replay the cached analysis" (fun () ->
        let t = Serve.create () in
        let moded = src3 nat ^ "\n\n%mode nat;" in
        ignore (round t (request ~source:moded 1));
        let m1 = round t (request ~meth:"modes" 2) in
        Alcotest.(check string) "cold modes ok" "ok" (str_field "status" m1);
        Alcotest.(check int) "cold modes analyzes all" 4
          (tele_field "rechecked" m1);
        (match J.member "result" m1 with
        | Some res ->
            Alcotest.(check bool) "one mode declaration" true
              (J.member "modes" res = Some (J.Int 1));
            Alcotest.(check bool) "one moded family" true
              (J.member "families" res = Some (J.Int 1));
            Alcotest.(check bool) "clean" true
              (J.member "clean" res = Some (J.Int 1));
            Alcotest.(check bool) "nothing missing" true
              (J.member "missing" res = Some (J.Int 0))
        | None -> Alcotest.fail "modes reply lacks result");
        let m2 = round t (request ~meth:"modes" 3) in
        Alcotest.(check int) "warm modes re-analyzes none" 0
          (tele_field "rechecked" m2);
        Alcotest.(check int) "warm modes reuses all" 4
          (tele_field "reused" m2);
        Alcotest.(check bool) "same result" true
          (J.member "result" m1 = J.member "result" m2);
        Alcotest.(check (list string)) "same findings" (codes m1) (codes m2);
        (* reset drops the cache along with the session's world *)
        ignore (round t (request ~meth:"reset" 4));
        ignore (round t (request ~source:moded 5));
        let m3 = round t (request ~meth:"modes" 6) in
        Alcotest.(check int) "post-reset modes re-analyzes all" 4
          (tele_field "rechecked" m3));
    test "stats exposes the registry's incremental counters" (fun () ->
        let t = Serve.create () in
        ignore (round t (request ~source:(src3 nat) 1));
        ignore (round t (request ~source:(src3 nat') 2));
        let r = round t (request ~meth:"stats" 3) in
        let result =
          match J.member "result" r with
          | Some res -> res
          | None -> Alcotest.fail "stats reply lacks result"
        in
        (match J.member "decls_rechecked" result with
        | Some (J.Int n) ->
            (* 3 cold + 2 invalidated by the nat edit *)
            Alcotest.(check bool) "rechecked >= 5" true (n >= 5)
        | _ -> Alcotest.fail "stats lacks decls_rechecked");
        match J.member "telemetry_events_dropped" result with
        | Some (J.Int _) -> ()
        | _ -> Alcotest.fail "stats lacks telemetry_events_dropped");
  ]

let suites =
  [
    ("serve incremental", incremental_tests);
    ("serve robustness", robustness_tests);
    ("serve observability", observability_tests);
  ]
