(** Tests for the LF substrate: hereditary substitution, η-expansion,
    type-level checking, contexts, blocks, and schemas. *)

open Belr_support
open Belr_syntax
open Belr_lf
open Lf

let f = Fixtures.make ()

let env = Check_lf.make_env f.Fixtures.sg []

let check_tm = Alcotest.testable (Pp.pp_normal (Pp.env ())) Equal.normal

let check_ty = Alcotest.testable (Pp.pp_typ (Pp.env ())) Equal.typ

let v i : normal = (mk_root ((mk_bvar i)) [])

let fails name thunk =
  Alcotest.test_case name `Quick (fun () ->
      match thunk () with
      | exception Error.Belr_error _ -> ()
      | exception Error.Violation _ -> ()
      | _ -> Alcotest.failf "%s: expected failure, but succeeded" name)

let ok name thunk = Alcotest.test_case name `Quick thunk

(* ------------------------------------------------------------------ *)
(* Hereditary substitution                                              *)

let hsub_tests =
  [
    ok "paper example: [(λy.y)/x](x z) = z" (fun () ->
        (* context [x : nat -> nat]; substitute the identity *)
        let m = (mk_root ((mk_bvar 1)) ([ Fixtures.zero f ])) in
        let s = (mk_dot (Obj ((mk_lam "y" (v 1)))) ((mk_shift 0))) in
        Alcotest.check check_tm "reduced" (Fixtures.zero f)
          (Hsub.sub_normal s m));
    ok "identity substitution is a no-op" (fun () ->
        let m = Fixtures.succ f (Fixtures.succ f (Fixtures.zero f)) in
        Alcotest.check check_tm "id" m (Hsub.sub_normal ((mk_shift 0)) m));
    ok "shift moves free variables" (fun () ->
        let m = (mk_root ((mk_const f.Fixtures.s)) ([ v 1 ])) in
        Alcotest.check check_tm "shifted"
          ((mk_root ((mk_const f.Fixtures.s)) ([ v 3 ])))
          (Hsub.sub_normal ((mk_shift 2)) m));
    ok "nested β-reduction under binder" (fun () ->
        (* [λy. s y / g] (λw. g w)  =  λw. s w *)
        let m = (mk_lam "w" ((mk_root ((mk_bvar 2)) ([ v 1 ])))) in
        let s =
          (mk_dot (Obj ((mk_lam "y" ((mk_root ((mk_const f.Fixtures.s)) ([ v 1 ])))))) ((mk_shift 0)))
        in
        Alcotest.check check_tm "reduced"
          ((mk_lam "w" ((mk_root ((mk_const f.Fixtures.s)) ([ v 1 ])))))
          (Hsub.sub_normal s m));
    ok "tuple front resolves projection" (fun () ->
        (* [⟨z, s z⟩ / b] (b.2) = s z *)
        let m = (mk_root ((mk_proj ((mk_bvar 1)) 2)) []) in
        let s =
          (mk_dot (Tup [ Fixtures.zero f; Fixtures.succ f (Fixtures.zero f) ]) ((mk_shift 0)))
        in
        Alcotest.check check_tm "projected"
          (Fixtures.succ f (Fixtures.zero f))
          (Hsub.sub_normal s m));
    ok "composition law on sample terms" (fun () ->
        let m = (mk_root ((mk_const f.Fixtures.s)) ([ (mk_root ((mk_bvar 1)) ([ v 2 ])) ])) in
        let s1 = (mk_dot (Obj ((mk_lam "y" ((mk_root ((mk_const f.Fixtures.s)) ([ v 1 ])))))) ((mk_shift 0))) in
        let s2 = (mk_dot (Obj (Fixtures.zero f)) mk_empty) in
        let lhs = Hsub.sub_normal (Hsub.comp s1 s2) m in
        let rhs = Hsub.sub_normal s2 (Hsub.sub_normal s1 m) in
        Alcotest.check check_tm "comp" rhs lhs);
    ok "MVar under substitution delays composition" (fun () ->
        let m = (mk_root ((mk_mvar 1 ((mk_shift 0)))) []) in
        match Hsub.sub_normal ((mk_shift 3)) m with
        | Root (MVar (1, Shift 3), []) -> ()
        | m' ->
            Alcotest.failf "unexpected %a" (Pp.pp_normal (Pp.env ())) m');
    fails "projection of non-tuple substitution entry fails" (fun () ->
        let m = (mk_root ((mk_proj ((mk_bvar 1)) 1)) []) in
        let s = (mk_dot (Obj (Fixtures.succ f (Fixtures.zero f))) ((mk_shift 0))) in
        Hsub.sub_normal s m);
    fails "variable under Empty substitution fails" (fun () ->
        Hsub.sub_normal mk_empty (v 1));
  ]

(* ------------------------------------------------------------------ *)
(* η-expansion                                                          *)

let eta_tests =
  [
    ok "atomic η-expansion is a bare variable" (fun () ->
        Alcotest.check check_tm "atom" (v 3)
          (Eta.expand_var_typ (Fixtures.nat_t f) 3));
    ok "functional η-expansion" (fun () ->
        let t = (mk_pi "x" (Fixtures.nat_t f) (Fixtures.nat_t f)) in
        Alcotest.check check_tm "fn"
          ((mk_lam "x" ((mk_root ((mk_bvar 3)) ([ v 1 ])))))
          (Eta.expand_var_typ t 2));
    ok "second-order η-expansion" (fun () ->
        (* y : (nat -> nat) -> nat *)
        let t =
          (mk_pi "g" ((mk_pi "x" (Fixtures.nat_t f) (Fixtures.nat_t f))) (Fixtures.nat_t f))
        in
        Alcotest.check check_tm "fn2"
          ((mk_lam "g" ((mk_root ((mk_bvar 2)) ([ (mk_lam "x" ((mk_root ((mk_bvar 2)) ([ v 1 ])))) ])))))
          (Eta.expand_var_typ t 1));
    ok "is_eta_of recognizes expansion" (fun () ->
        let t = Eta.Aarr (Eta.Aatom, Eta.Aatom) in
        Alcotest.(check bool)
          "yes" true
          (Eta.is_eta_of t ((mk_bvar 5)) ((mk_lam "x" ((mk_root ((mk_bvar 6)) ([ v 1 ])))))));
  ]

(* ------------------------------------------------------------------ *)
(* Type checking                                                        *)

let nat_ctx n =
  (* x1 : nat, ..., xn : nat *)
  let rec go acc k =
    if k = 0 then acc
    else go (Ctxs.ctx_push acc (Ctxs.CDecl ("x", Fixtures.nat_t f))) (k - 1)
  in
  go Ctxs.empty_ctx n

let typing_tests =
  [
    ok "z : nat" (fun () ->
        Check_lf.check_normal env Ctxs.empty_ctx (Fixtures.zero f)
          (Fixtures.nat_t f));
    ok "s (s z) : nat" (fun () ->
        Check_lf.check_normal env Ctxs.empty_ctx
          (Fixtures.church_nat f 2) (Fixtures.nat_t f));
    ok "variable lookup" (fun () ->
        Check_lf.check_normal env (nat_ctx 3) (v 2) (Fixtures.nat_t f));
    ok "lam \\x. x : tm" (fun () ->
        Check_lf.check_normal env Ctxs.empty_ctx (Fixtures.id_tm f)
          (Fixtures.tm_t f));
    ok "app (lam \\x.x) (lam \\x.x) : tm" (fun () ->
        Check_lf.check_normal env Ctxs.empty_ctx
          (Fixtures.app_tm f (Fixtures.id_tm f) (Fixtures.id_tm f))
          (Fixtures.tm_t f));
    ok "e-refl applied: deq (lam \\x.x) (lam \\x.x)" (fun () ->
        let idt = Fixtures.id_tm f in
        Check_lf.check_normal env Ctxs.empty_ctx
          ((mk_root ((mk_const f.Fixtures.e_refl)) ([ idt ])))
          ((mk_atom f.Fixtures.deq ([ idt; idt ]))));
    ok "infer e-refl spine" (fun () ->
        let idt = Fixtures.id_tm f in
        let a =
          Check_lf.infer_neutral env Ctxs.empty_ctx
            ((mk_root ((mk_const f.Fixtures.e_refl)) ([ idt ])))
        in
        Alcotest.check check_ty "deq id id"
          ((mk_atom f.Fixtures.deq ([ idt; idt ])))
          a);
    fails "z : tm fails" (fun () ->
        Check_lf.check_normal env Ctxs.empty_ctx (Fixtures.zero f)
          (Fixtures.tm_t f));
    fails "under-applied constant is not η-long" (fun () ->
        Check_lf.check_normal env Ctxs.empty_ctx
          ((mk_root ((mk_const f.Fixtures.s)) []))
          ((mk_pi "x" (Fixtures.nat_t f) (Fixtures.nat_t f))));
    fails "over-applied constant fails" (fun () ->
        Check_lf.check_normal env Ctxs.empty_ctx
          ((mk_root ((mk_const f.Fixtures.z)) ([ Fixtures.zero f ])))
          (Fixtures.nat_t f));
    fails "unbound variable fails" (fun () ->
        Check_lf.check_normal env (nat_ctx 1) (v 2) (Fixtures.nat_t f));
    ok "deq is a well-formed type family applied" (fun () ->
        Check_lf.check_typ env Ctxs.empty_ctx
          ((mk_atom f.Fixtures.deq ([ Fixtures.id_tm f; Fixtures.id_tm f ]))));
    fails "deq applied to nat arguments fails" (fun () ->
        Check_lf.check_typ env Ctxs.empty_ctx
          ((mk_atom f.Fixtures.deq ([ Fixtures.zero f; Fixtures.zero f ]))));
    fails "deq under-applied fails" (fun () ->
        Check_lf.check_typ env Ctxs.empty_ctx
          ((mk_atom f.Fixtures.deq ([ Fixtures.id_tm f ]))));
  ]

(* ------------------------------------------------------------------ *)
(* Blocks, contexts, schemas                                            *)

let block_tests =
  let g2 = Fixtures.xd_ctx f 2 in
  [
    ok "projection .1 of a block has type tm" (fun () ->
        Alcotest.check check_ty "tm" (Fixtures.tm_t f)
          (Ctxops.typ_of_proj g2 1 1));
    ok "projection .2 of a block has type deq b.1 b.1" (fun () ->
        let b1 = (mk_root ((mk_proj ((mk_bvar 1)) 1)) []) in
        Alcotest.check check_ty "deq"
          ((mk_atom f.Fixtures.deq ([ b1; b1 ])))
          (Ctxops.typ_of_proj g2 1 2));
    ok "outer block projections are shifted" (fun () ->
        let b1 = (mk_root ((mk_proj ((mk_bvar 2)) 1)) []) in
        Alcotest.check check_ty "deq"
          ((mk_atom f.Fixtures.deq ([ b1; b1 ])))
          (Ctxops.typ_of_proj g2 2 2));
    ok "neutral projection checks" (fun () ->
        let b1 = (mk_root ((mk_proj ((mk_bvar 1)) 1)) []) in
        Check_lf.check_normal env g2
          ((mk_root ((mk_proj ((mk_bvar 1)) 2)) []))
          ((mk_atom f.Fixtures.deq ([ b1; b1 ]))));
    ok "context with blocks is well-formed" (fun () ->
        Check_lf.check_ctx env g2);
    ok "context checks against schema xdG" (fun () ->
        Check_lf.check_ctx_schema env g2 f.Fixtures.xdg);
    fails "context with a single declaration fails schema checking"
      (fun () ->
        let g =
          Ctxs.ctx_push Ctxs.empty_ctx (Ctxs.CDecl ("x", Fixtures.tm_t f))
        in
        Check_lf.check_ctx_schema env g f.Fixtures.xdg);
    fails "context with a foreign block fails schema checking" (fun () ->
        let bad_elem =
          {
            Ctxs.e_name = "natW";
            Ctxs.e_params = [];
            Ctxs.e_block = [ ("x", Fixtures.nat_t f) ];
          }
        in
        let g =
          Ctxs.ctx_push Ctxs.empty_ctx (Ctxs.CBlock ("b", bad_elem, []))
        in
        Check_lf.check_ctx_schema env g f.Fixtures.xdg);
    ok "schema xdG itself is well-formed" (fun () ->
        Check_lf.check_schema env [ f.Fixtures.xd_elem ]);
    fails "duplicate schema elements are rejected" (fun () ->
        Check_lf.check_schema env [ f.Fixtures.xd_elem; f.Fixtures.xd_elem ]);
  ]

(* ------------------------------------------------------------------ *)
(* Substitutions                                                        *)

let sub_tests =
  let g2 = Fixtures.xd_ctx f 2 in
  [
    ok "identity substitution checks" (fun () ->
        Check_lf.check_sub env g2 ((mk_shift 0)) g2);
    ok "weakening by one block checks" (fun () ->
        Check_lf.check_sub env g2 ((mk_shift 1)) (Fixtures.xd_ctx f 1));
    ok "empty substitution into any context" (fun () ->
        Check_lf.check_sub env g2 mk_empty Ctxs.empty_ctx);
    ok "tuple substitution for a block variable" (fun () ->
        (* σ = (shift 1, ⟨b.1, b.2⟩) : (b:xeW) → Γ₂, mapping the inner
           block of the domain to the outer block of Γ₂ *)
        let t = Tup [ (mk_root ((mk_proj ((mk_bvar 1)) 1)) []); (mk_root ((mk_proj ((mk_bvar 1)) 2)) []) ] in
        Check_lf.check_sub env g2
          ((mk_dot t ((mk_shift 2))))
          (Fixtures.xd_ctx f 1));
    fails "swapped tuple components fail" (fun () ->
        let t = Tup [ (mk_root ((mk_proj ((mk_bvar 1)) 2)) []); (mk_root ((mk_proj ((mk_bvar 1)) 1)) []) ] in
        Check_lf.check_sub env g2 ((mk_dot t ((mk_shift 2)))) (Fixtures.xd_ctx f 1));
    ok "whole-block renaming checks" (fun () ->
        Check_lf.check_sub env g2
          ((mk_dot (Obj ((mk_root ((mk_bvar 2)) []))) ((mk_shift 2))))
          (Fixtures.xd_ctx f 1));
    fails "substitution longer than domain fails" (fun () ->
        Check_lf.check_sub env g2
          ((mk_dot (Obj (Fixtures.zero f)) ((mk_shift 0))))
          Ctxs.empty_ctx);
    ok "term substitution for an ordinary variable" (fun () ->
        let dom =
          Ctxs.ctx_push Ctxs.empty_ctx (Ctxs.CDecl ("n", Fixtures.nat_t f))
        in
        Check_lf.check_sub env Ctxs.empty_ctx
          ((mk_dot (Obj (Fixtures.church_nat f 3)) mk_empty))
          dom);
    ok "mvar with checked substitution infers" (fun () ->
        (* Δ = u : (x:nat . nat); infer u[z/x] in the empty context *)
        let delta =
          [
            Meta.TDTerm
              ( "u",
                Ctxs.ctx_push Ctxs.empty_ctx
                  (Ctxs.CDecl ("x", Fixtures.nat_t f)),
                Fixtures.nat_t f );
          ]
        in
        let env' = Check_lf.make_env f.Fixtures.sg delta in
        let a =
          Check_lf.infer_neutral env' Ctxs.empty_ctx
            ((mk_root ((mk_mvar 1 ((mk_dot (Obj (Fixtures.zero f)) mk_empty)))) []))
        in
        Alcotest.check check_ty "nat" (Fixtures.nat_t f) a);
  ]

let suites =
  [
    ("lf.hsub", hsub_tests);
    ("lf.eta", eta_tests);
    ("lf.typing", typing_tests);
    ("lf.blocks", block_tests);
    ("lf.subs", sub_tests);
  ]
