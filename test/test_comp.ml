(** End-to-end tests for the computation level: the §2 development
    (aeq-refl / aeq-sym / aeq-trans / ceq) sort-checks, its erasure
    type-checks (conservativity, Thm 3.2.2 at the computation level), and
    the proofs {e run} as programs producing checkable derivations. *)

open Belr_support
open Belr_syntax
open Belr_core
open Belr_comp
open Belr_kits
open Lf

let dev = lazy (Equal_dev.make ())

let ok name thunk = Alcotest.test_case name `Quick thunk

let fails name thunk =
  Alcotest.test_case name `Quick (fun () ->
      match thunk () with
      | exception Error.Belr_error _ -> ()
      | exception Error.Violation _ -> ()
      | _ -> Alcotest.failf "%s: expected failure" name)

let hat_empty = { Meta.hat_var = None; Meta.hat_names = [] }

let empty_sctx = Ctxs.empty_sctx

(* Closed terms and derivations over the ulam signature *)

let build_tests =
  [
    ok "the full §2 development sort-checks and erases (conservativity)"
      (fun () -> ignore (Lazy.force dev));
  ]

(* helper: apply a rec function to a context and meta-objects, then boxes *)
let mapps f args = List.fold_left (fun e a -> Comp.MApp (e, a)) f args

let apps f args = List.fold_left (fun e a -> Comp.App (e, a)) f args

let run_tests =
  [
    ok "running aeq-refl on (app id id) yields a checkable aeq derivation"
      (fun () ->
        let d = Lazy.force dev in
        let u = d.Equal_dev.ulam in
        let sg = u.Ulam.sg in
        let idt = Ulam.id_tm u in
        let t = Ulam.app_tm u idt idt in
        let call =
          mapps
            (Comp.RecConst d.Equal_dev.aeq_refl)
            [ Meta.MOCtx empty_sctx; Meta.MOTerm (hat_empty, t) ]
        in
        let v = Eval.eval (Eval.make_env sg) call in
        let res =
          match Eval.as_box v with
          | Meta.MOTerm (_, m) -> m
          | _ -> Alcotest.fail "expected a boxed term"
        in
        (* the result is a genuine aeq derivation *)
        let env = Check_lfr.make_env sg [] in
        ignore
          (Check_lfr.check_normal env empty_sctx res
             ((mk_satom u.Ulam.aeq ([ t; t ])))));
    ok "running ceq on (e-trans (e-refl id) (e-sym (e-refl id)))" (fun () ->
        let d = Lazy.force dev in
        let u = d.Equal_dev.ulam in
        let sg = u.Ulam.sg in
        let idt = Ulam.id_tm u in
        let refl = (mk_root ((mk_const u.Ulam.e_refl)) ([ idt ])) in
        let sym = (mk_root ((mk_const u.Ulam.e_sym)) ([ idt; idt; refl ])) in
        let dtrans =
          (mk_root ((mk_const u.Ulam.e_trans)) ([ idt; idt; idt; refl; sym ]))
        in
        let call =
          Comp.App
            ( mapps
                (Comp.RecConst d.Equal_dev.ceq)
                [
                  Meta.MOCtx empty_sctx;
                  Meta.MOTerm (hat_empty, idt);
                  Meta.MOTerm (hat_empty, idt);
                ],
              Comp.Box (Meta.MOTerm (hat_empty, dtrans)) )
        in
        let v = Eval.eval (Eval.make_env sg) call in
        let res =
          match Eval.as_box v with
          | Meta.MOTerm (_, m) -> m
          | _ -> Alcotest.fail "expected a boxed term"
        in
        let env = Check_lfr.make_env sg [] in
        ignore
          (Check_lfr.check_normal env empty_sctx res
             ((mk_satom u.Ulam.aeq ([ idt; idt ])))));
    ok "running ceq through a binder (e-lam with e-sym under it)" (fun () ->
        let d = Lazy.force dev in
        let u = d.Equal_dev.ulam in
        let sg = u.Ulam.sg in
        (* deq (lam \x.x) (lam \x.x) via e-lam, whose body uses e-sym on
           the variable's equality assumption: exercises context
           extension, promotion, and the parameter-variable case *)
        let idf = (mk_lam "x" ((mk_root ((mk_bvar 1)) []))) in
        let body =
          (* λx.λu. e-sym x x u *)
          (mk_lam "x" ((mk_lam "u" ((mk_root ((mk_const u.Ulam.e_sym)) ([ (mk_root ((mk_bvar 2)) []); (mk_root ((mk_bvar 2)) []);
                        (mk_root ((mk_bvar 1)) []) ]))))))
        in
        let dlam = (mk_root ((mk_const u.Ulam.e_lam)) ([ idf; idf; body ])) in
        let idt = Ulam.id_tm u in
        let call =
          Comp.App
            ( mapps
                (Comp.RecConst d.Equal_dev.ceq)
                [
                  Meta.MOCtx empty_sctx;
                  Meta.MOTerm (hat_empty, idt);
                  Meta.MOTerm (hat_empty, idt);
                ],
              Comp.Box (Meta.MOTerm (hat_empty, dlam)) )
        in
        let v = Eval.eval (Eval.make_env sg) call in
        let res =
          match Eval.as_box v with
          | Meta.MOTerm (_, m) -> m
          | _ -> Alcotest.fail "expected a boxed term"
        in
        let env = Check_lfr.make_env sg [] in
        ignore
          (Check_lfr.check_normal env empty_sctx res
             ((mk_satom u.Ulam.aeq ([ idt; idt ])))));
    ok "running aeq-sym in a non-empty context" (fun () ->
        let d = Lazy.force dev in
        let u = d.Equal_dev.ulam in
        let sg = u.Ulam.sg in
        (* Ψ = b : xeW; run aeq-sym on [Ψ ⊢ b.2] *)
        let psi1 = Ulam.xa_sctx u 1 in
        let h = Meta.hat_of_sctx psi1 in
        let b1 = (mk_root ((mk_proj ((mk_bvar 1)) 1)) []) in
        let b2 = (mk_root ((mk_proj ((mk_bvar 1)) 2)) []) in
        let call =
          Comp.App
            ( mapps
                (Comp.RecConst d.Equal_dev.aeq_sym)
                [
                  Meta.MOCtx psi1;
                  Meta.MOTerm (h, b1);
                  Meta.MOTerm (h, b1);
                ],
              Comp.Box (Meta.MOTerm (h, b2)) )
        in
        let v = Eval.eval (Eval.make_env sg) call in
        let res =
          match Eval.as_box v with
          | Meta.MOTerm (_, m) -> m
          | _ -> Alcotest.fail "expected a boxed term"
        in
        let env = Check_lfr.make_env sg [] in
        ignore
          (Check_lfr.check_normal env psi1 res
             ((mk_satom u.Ulam.aeq ([ b1; b1 ])))));
    fails "ill-sorted bodies are rejected by the comp checker" (fun () ->
        let d = Lazy.force dev in
        let u = d.Equal_dev.ulam in
        let sg = u.Ulam.sg in
        (* claim [· ⊢ aeq id id] by boxing an e-refl derivation: e-refl
           has no aeq sort, so this must fail *)
        let idt = Ulam.id_tm u in
        let bad = (mk_root ((mk_const u.Ulam.e_refl)) ([ idt ])) in
        let env = Check_comp.make_env sg [] [] in
        Check_comp.check_exp env
          (Comp.Box (Meta.MOTerm (hat_empty, bad)))
          (Comp.CBox
             (Meta.MSTerm (empty_sctx, (mk_satom u.Ulam.aeq ([ idt; idt ]))))));
    ok "apps helper is exercised" (fun () -> ignore apps);
  ]

let suites = [ ("comp.build", build_tests); ("comp.run", run_tests) ]
