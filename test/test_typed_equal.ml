(** The typed benchmark: parameterized refinement-schema worlds.  The
    refinement schema's elements have Π-parameters ([{A : tp} block …]),
    context extensions instantiate them explicitly, and the projections'
    sorts depend on the instantiation. *)

open Belr_syntax
open Belr_lf
open Belr_core
open Belr_comp
open Belr_kits
open Lf

let tsg = lazy (Typed_equal.load ())

let ok name thunk = Alcotest.test_case name `Quick thunk

let find_c sg n =
  match Sign.lookup_name sg n with
  | Some (Sign.Sym_const c) -> c
  | _ -> Alcotest.failf "%s not found" n

let tests =
  [
    ok "the typed development checks" (fun () -> ignore (Lazy.force tsg));
    ok "the refinement schema's world is parameterized" (fun () ->
        let sg = Lazy.force tsg in
        match Belr_parser.Elab.find_world sg "xeW" with
        | Some (Belr_parser.Elab.Wsort f) ->
            Alcotest.(check int) "one parameter" 1
              (List.length f.Ctxs.f_params)
        | _ -> Alcotest.fail "xeW not found");
    ok "projections depend on the world instantiation" (fun () ->
        let sg = Lazy.force tsg in
        let xeW =
          match Belr_parser.Elab.find_world sg "xeW" with
          | Some (Belr_parser.Elab.Wsort f) -> f
          | _ -> Alcotest.fail "xeW not found"
        in
        let i = (mk_root ((mk_const (find_c sg "i"))) []) in
        let arr =
          (mk_root ((mk_const (find_c sg "arr"))) ([ i; i ]))
        in
        let psi =
          Ctxs.sctx_push
            (Ctxs.sctx_push Ctxs.empty_sctx (Ctxs.SCBlock ("f", xeW, [ arr ])))
            (Ctxs.SCBlock ("y", xeW, [ i ]))
        in
        (* y = 1 at type i, f = 2 at type i → i *)
        let s_y = Sctxops.srt_of_proj sg psi 1 2 in
        let s_f = Sctxops.srt_of_proj sg psi 2 2 in
        let aeq =
          match Sign.lookup_name sg "aeq" with
          | Some (Sign.Sym_srt s) -> s
          | _ -> Alcotest.fail "aeq not found"
        in
        (match s_y with
        | SAtom (s, [ _; _; ty ]) when s = aeq ->
            Alcotest.(check bool) "y at i" true (Equal.normal ty i)
        | _ -> Alcotest.fail "unexpected sort for y.2");
        match s_f with
        | SAtom (s, [ _; _; ty ]) when s = aeq ->
            Alcotest.(check bool) "f at arr i i" true
              (Equal.normal ty (Shift.shift_normal 2 0 arr))
        | _ -> Alcotest.fail "unexpected sort for f.2");
    ok "typed aeq-sym runs in a parameterized context" (fun () ->
        let sg = Lazy.force tsg in
        let xeW =
          match Belr_parser.Elab.find_world sg "xeW" with
          | Some (Belr_parser.Elab.Wsort f) -> f
          | _ -> Alcotest.fail "xeW not found"
        in
        let i = (mk_root ((mk_const (find_c sg "i"))) []) in
        let psi =
          Ctxs.sctx_push Ctxs.empty_sctx (Ctxs.SCBlock ("b", xeW, [ i ]))
        in
        let sym =
          match Sign.lookup_name sg "aeq-sym" with
          | Some (Sign.Sym_rec r) -> r
          | _ -> Alcotest.fail "aeq-sym not found"
        in
        let h = Meta.hat_of_sctx psi in
        let b1 = (mk_root ((mk_proj ((mk_bvar 1)) 1)) []) in
        let b2 = (mk_root ((mk_proj ((mk_bvar 1)) 2)) []) in
        let mapps f args =
          List.fold_left (fun e a -> Comp.MApp (e, a)) f args
        in
        let call =
          Comp.App
            ( mapps (Comp.RecConst sym)
                [
                  Meta.MOCtx psi;
                  Meta.MOTerm (h, b1);
                  Meta.MOTerm (h, b1);
                  Meta.MOTerm (h, Shift.shift_normal 1 0 i);
                ],
              Comp.Box (Meta.MOTerm (h, b2)) )
        in
        let res =
          match Eval.as_box (Eval.eval (Eval.make_env sg) call) with
          | Meta.MOTerm (_, m) -> m
          | _ -> Alcotest.fail "expected a boxed term"
        in
        let aeq =
          match Sign.lookup_name sg "aeq" with
          | Some (Sign.Sym_srt s) -> s
          | _ -> Alcotest.fail "aeq not found"
        in
        ignore
          (Check_lfr.check_normal (Check_lfr.make_env sg []) psi res
             ((mk_satom aeq ([ b1; b1; Shift.shift_normal 1 0 i ])))));
    ok "typed aeq-sym is guarded and covered" (fun () ->
        let sg = Lazy.force tsg in
        let sym =
          match Sign.lookup_name sg "aeq-sym" with
          | Some (Sign.Sym_rec r) -> r
          | _ -> Alcotest.fail "aeq-sym not found"
        in
        Alcotest.(check int)
          "covered" 0
          (List.length (Coverage.check_rec sg sym));
        match Termination.check_rec sg sym with
        | Termination.Guarded -> ()
        | Termination.Issues is ->
            Alcotest.failf "not guarded: %s" (String.concat "; " is));
  ]

let suites = [ ("typed_equal", tests) ]
