(** The lazy weak-head normalization core (PR 9, DESIGN.md §S26):
    agreement of whnf-plus-full-unfolding with the eager hereditary
    substitution it replaces — as a property over random closures and
    over the shipped examples — under every combination of the
    [BELR_NO_HASHCONS] and [BELR_NO_WHNF] ablations; agreement of the
    closure-level convertibility checks with [Equal] on forced forms;
    the [E0905] evaluation-fuel diagnostic; and session isolation of the
    whnf memo tables. *)

open Belr_support
open Belr_syntax
open Belr_lf
open Belr_kits
open Lf

let test name f = Alcotest.test_case name `Quick f

let u = Ulam.make ()

(* --- ablation matrix ----------------------------------------------------- *)

(** Run [k] under an explicit (store, whnf) mode pair, restoring both
    modes afterwards (the suite runs with both on, the default). *)
let with_modes ~store ~whnf k =
  set_store_enabled store;
  Whnf.set_whnf_enabled whnf;
  Fun.protect
    ~finally:(fun () ->
      set_store_enabled true;
      Whnf.set_whnf_enabled true)
    k

let all_modes = [ (true, true); (true, false); (false, true); (false, false) ]

let mode_label (store, whnf) =
  Fmt.str "store=%b whnf=%b" store whnf

(* --- full unfolding through the weak-head views -------------------------- *)

(** Force a term closure to its full normal form by repeated weak-head
    normalization: the lazy engine's answer to what [Hsub.sub_normal]
    computes in one eager pass.  The agreement property below checks the
    two coincide. *)
let rec force_nclo (c : Whnf.nclo) : normal =
  match Whnf.whnf_normal c with
  | Whnf.WLam (x, body, s) ->
      mk_lam x (force_nclo (Whnf.clo_push (body, s)))
  | Whnf.WRoot (h, sp, s) ->
      mk_root h (List.map (fun m -> force_nclo (m, s)) sp)

let rec force_tclo (c : Whnf.tclo) : typ =
  match Whnf.whnf_typ c with
  | Whnf.WAtom (p, sp, s) ->
      mk_atom p (List.map (fun m -> force_nclo (m, s)) sp)
  | Whnf.WPi (x, ca, cb) ->
      mk_pi x (force_tclo ca) (force_tclo (Whnf.clo_push cb))

let rec force_sclo (c : Whnf.sclo) : srt =
  match Whnf.whnf_srt c with
  | Whnf.WSAtom (q, sp, s) ->
      mk_satom q (List.map (fun m -> force_nclo (m, s)) sp)
  | Whnf.WSEmbed (a, sp, s) ->
      mk_sembed a (List.map (fun m -> force_nclo (m, s)) sp)
  | Whnf.WSPi (x, c1, c2) ->
      mk_spi x (force_sclo c1) (force_sclo (Whnf.clo_push c2))

(* --- generators (over the §2 signature, as in test_store) ---------------- *)

(** Random λ-terms (tm) over a context of [nvars] tm-variables. *)
let gen_open (nvars : int) : normal QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    if nvars = 0 then return (Ulam.id_tm u)
    else
      frequency
        [
          (1, return (Ulam.id_tm u));
          (2, map (fun i -> bvar (1 + (i mod nvars))) small_nat);
        ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then leaf
         else
           frequency
             [
               (1, leaf);
               (2, map2 (Ulam.app_tm u) (self (n / 2)) (self (n / 2)));
               ( 1,
                 map
                   (fun m ->
                     mk_root (mk_const u.Ulam.lam)
                       [ mk_lam "x" (Shift.shift_normal 1 0 m) ])
                   (self (n - 1)) );
             ])

(** Random closures: an open term over two variables together with a
    substitution instantiating both (the second through a shift, so Dot
    chains, shifts and β-redexes all occur). *)
let gen_clo : Whnf.nclo QCheck.Gen.t =
  let open QCheck.Gen in
  map2
    (fun m (b1, b2) ->
      (m, mk_dot (Obj b1) (mk_dot (Obj (Shift.shift_normal 1 0 b2)) (mk_shift 1))))
    (gen_open 2)
    (pair (gen_open 0) (gen_open 1))

(* --- the agreement property ---------------------------------------------- *)

let prop_agreement =
  QCheck.Test.make ~count:150
    ~name:
      "whnf + full unfolding ≡ eager hereditary substitution (all four \
       ablation combos)"
    (QCheck.make gen_clo)
    (fun ((m, s) as c) ->
      List.for_all
        (fun (store, whnf) ->
          with_modes ~store ~whnf (fun () ->
              let lazy_nf = force_nclo c in
              let eager_nf = Hsub.sub_normal s m in
              Equal.deep_normal lazy_nf eager_nf
              || QCheck.Test.fail_reportf "disagree under %s"
                   (mode_label (store, whnf))))
        all_modes)

let prop_typ_srt_agreement =
  QCheck.Test.make ~count:100
    ~name:"type- and sort-closure forcing ≡ eager substitution"
    (QCheck.make gen_clo)
    (fun (m, s) ->
      (* wrap the random closure into dependent Π shapes so WPi/WSPi and
         the under-binder push are exercised too *)
      let a =
        mk_pi "x" (mk_atom u.Ulam.tm [])
          (mk_atom u.Ulam.deq [ m; bvar 1 ])
      in
      let q =
        mk_spi "x"
          (mk_sembed u.Ulam.tm [])
          (mk_satom u.Ulam.aeq [ m; bvar 1 ])
      in
      List.for_all
        (fun (store, whnf) ->
          with_modes ~store ~whnf (fun () ->
              Equal.deep_typ (force_tclo (a, s)) (Hsub.sub_typ s a)
              && Equal.deep_srt (force_sclo (q, s)) (Hsub.sub_srt s q)))
        all_modes)

let prop_conv_agrees_with_equal =
  QCheck.Test.make ~count:150
    ~name:"conv on closures ≡ Equal on forced forms (whnf on and off)"
    (QCheck.make (QCheck.Gen.pair gen_clo gen_clo))
    (fun (((m1, s1) as c1), ((m2, s2) as c2)) ->
      let spec =
        Equal.normal (Hsub.sub_normal s1 m1) (Hsub.sub_normal s2 m2)
      in
      List.for_all
        (fun whnf ->
          with_modes ~store:true ~whnf (fun () ->
              Whnf.conv_normal c1 c2 = spec))
        [ true; false ])

(* --- shipped examples under the full ablation matrix --------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_src src =
  let sink = Diagnostics.sink () in
  let _sg = Belr_parser.Driver.check_sources sink [ ("test.bel", src) ] in
  Diagnostics.exit_code sink

let example_tests =
  let all_modes_check name path =
    test (name ^ " checks identically in all four ablation combos") (fun () ->
        let src = read_file path in
        (* the default mode's verdict is the spec; every ablation combo
           must reproduce it exactly (totality.blr deliberately carries
           a failing declaration, so its baseline is nonzero) *)
        let baseline = check_src src in
        List.iter
          (fun (store, whnf) ->
            Alcotest.(check int)
              (mode_label (store, whnf))
              baseline
              (with_modes ~store ~whnf (fun () -> check_src src)))
          all_modes)
  in
  [
    all_modes_check "examples/quickstart.blr" "../examples/quickstart.blr";
    all_modes_check "examples/equal.bel" "../examples/equal.bel";
    all_modes_check "examples/totality.blr" "../examples/totality.blr";
  ]

(* --- E0905: the evaluation step budget ----------------------------------- *)

(** A ceq call evaluating a [deq] chain of length [n] (as in bench E10):
    enough steps to trip a tiny fuel budget. *)
let long_eval () =
  let dev = Equal_dev.make () in
  let du = dev.Equal_dev.ulam in
  let hat0 = { Meta.hat_var = None; Meta.hat_names = [] } in
  let id_tm = Ulam.id_tm du in
  let refl = mk_root (mk_const du.Ulam.e_refl) [ id_tm ] in
  let sym = mk_root (mk_const du.Ulam.e_sym) [ id_tm; id_tm; refl ] in
  let rec chain n acc =
    if n = 0 then acc
    else
      chain (n - 1)
        (mk_root (mk_const du.Ulam.e_trans) [ id_tm; id_tm; id_tm; acc; sym ])
  in
  let call =
    Comp.App
      ( List.fold_left
          (fun e a -> Comp.MApp (e, a))
          (Comp.RecConst dev.Equal_dev.ceq)
          [
            Meta.MOCtx Ctxs.empty_sctx;
            Meta.MOTerm (hat0, id_tm);
            Meta.MOTerm (hat0, id_tm);
          ],
        Comp.Box (Meta.MOTerm (hat0, chain 64 refl)) )
  in
  fun () ->
    ignore
      (Belr_comp.Eval.as_box
         (Belr_comp.Eval.eval (Belr_comp.Eval.make_env du.Ulam.sg) call))

(** Restore the global fuel budget even if the test fails. *)
let with_eval_fuel n f =
  Limits.set_eval_fuel n;
  Fun.protect
    ~finally:(fun () -> Limits.set_eval_fuel Limits.default_eval_fuel)
    f

let fuel_tests =
  [
    test "a starved evaluator raises Fuel_exhausted with its budget"
      (fun () ->
        let run = long_eval () in
        with_eval_fuel 10 (fun () ->
            match run () with
            | () -> Alcotest.fail "expected Fuel_exhausted"
            | exception Limits.Fuel_exhausted n ->
                Alcotest.(check int) "budget in payload" 10 n));
    test "fuel exhaustion renders as the stable E0905 diagnostic" (fun () ->
        let run = long_eval () in
        with_eval_fuel 10 (fun () ->
            let sink = Diagnostics.sink () in
            (match Diagnostics.recover sink run with
            | None -> ()
            | Some () -> Alcotest.fail "expected a diagnostic");
            let codes =
              List.map
                (fun (d : Diagnostics.t) -> d.Diagnostics.d_code)
                (Diagnostics.all sink)
            in
            Alcotest.(check (list string)) "codes" [ "E0905" ] codes;
            Alcotest.(check int) "exit" 1 (Diagnostics.exit_code sink)));
    test "a sufficient budget completes without tripping" (fun () ->
        let run = long_eval () in
        with_eval_fuel 1_000_000 (fun () -> run ()));
  ]

(* --- session isolation of the whnf memo tables --------------------------- *)

(** Populate the current whnf tables with some memoized roots and return
    the observed (hits, misses). *)
let churn () =
  let chain k =
    let rec go k acc =
      if k = 0 then acc else go (k - 1) (Ulam.app_tm u (Ulam.id_tm u) acc)
    in
    go k (bvar 1)
  in
  let s = mk_dot (Obj (Ulam.id_tm u)) (mk_shift 0) in
  List.iter
    (fun k ->
      ignore (Whnf.whnf_normal (chain k, s));
      ignore (Whnf.whnf_normal (chain k, s)))
    [ 1; 2; 3; 4 ];
  let st = Whnf.stats () in
  (st.Whnf.ws_hits, st.Whnf.ws_misses)

let session_tests =
  [
    test "interleaved sessions keep separate whnf memo tables" (fun () ->
        let s1 = Session.create () and s2 = Session.create () in
        let h1, m1 = Session.with_ s1 (fun () -> churn ()) in
        Alcotest.(check bool) "s1 saw whnf traffic" true (h1 + m1 > 0);
        (* a fresh session starts from zero, regardless of s1's work *)
        let st2 =
          Session.with_ s2 (fun () -> Whnf.stats ())
        in
        Alcotest.(check int) "s2 hits" 0 st2.Whnf.ws_hits;
        Alcotest.(check int) "s2 misses" 0 st2.Whnf.ws_misses;
        (* interleave: work in s2, then confirm s1's counters are
           exactly where s1 left them *)
        ignore (Session.with_ s2 (fun () -> churn ()));
        let st1 = Session.with_ s1 (fun () -> Whnf.stats ()) in
        Alcotest.(check int) "s1 hits preserved" h1 st1.Whnf.ws_hits;
        Alcotest.(check int) "s1 misses preserved" m1 st1.Whnf.ws_misses);
    test "Session.reset drops the whnf memo world" (fun () ->
        let s = Session.create () in
        ignore (Session.with_ s (fun () -> churn ()));
        Session.reset s;
        let st = Session.with_ s (fun () -> Whnf.stats ()) in
        Alcotest.(check int) "hits after reset" 0 st.Whnf.ws_hits;
        Alcotest.(check int) "misses after reset" 0 st.Whnf.ws_misses);
  ]

(* ------------------------------------------------------------------------- *)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_agreement; prop_typ_srt_agreement; prop_conv_agrees_with_equal ]

let suites =
  [
    ("whnf: lazy/eager agreement", props);
    ("whnf: shipped examples × ablation matrix", example_tests);
    ("whnf: evaluation fuel (E0905)", fuel_tests);
    ("whnf: session isolation", session_tests);
  ]
