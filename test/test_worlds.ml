(** The regular-worlds + strictness analyzer (DESIGN.md §S25): context
    extensions must be subsumed by the declared [%worlds] of every
    family they can reach (E0720/W0721), up to refinement subsorting and
    subordination strengthening, and every pattern meta-variable must
    occur strictly somewhere in its clause (W0722).  Fixtures are
    accept/reject pairs per code; the property tests pin the shipped
    kits and example corpus worlds-clean. *)

open Belr_support
open Belr_parser
module Sign = Belr_lf.Sign
module Worlds = Belr_analysis.Worlds
module J = Json

let test name f = Alcotest.test_case name `Quick f

let contains affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let codes sink =
  List.map (fun (d : Diagnostics.t) -> d.Diagnostics.d_code)
    (Diagnostics.all sink)

let count code sink =
  List.length (List.filter (String.equal code) (codes sink))

let messages_of code sink =
  List.filter_map
    (fun (d : Diagnostics.t) ->
      if d.Diagnostics.d_code = code then Some d.Diagnostics.d_message
      else None)
    (Diagnostics.all sink)

(** Check [src], then worlds-check the resulting signature. *)
let worlds_src ?check_strict src =
  let sink = Diagnostics.sink () in
  let sg = Driver.check_sources sink [ ("test.bel", src) ] in
  Alcotest.(check int) "fixture checks cleanly" 0 (Diagnostics.error_count sink);
  let r = Driver.worlds ?check_strict sink sg in
  (sink, sg, r)

let fn_report (r : Worlds.result) name =
  match
    List.find_opt (fun f -> f.Worlds.wf_name = name) r.Worlds.wr_fns
  with
  | Some f -> f
  | None -> Alcotest.failf "%s not analyzed" name

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- fixtures ----------------------------------------------------------- *)

(* The §2 signature skeleton: HOAS terms, declarative equality, and the
   algorithmic refinement, with the block/world declarations split off so
   each fixture can vary them. *)
let sig_src =
  {bel|
LF tm : type =
| lam : (tm -> tm) -> tm
| app : tm -> tm -> tm;

LF deq : tm -> tm -> type =
| e-lam : ({x : tm} deq x x -> deq (M x) (N x)) -> deq (lam M) (lam N)
| e-app : deq M1 N1 -> deq M2 N2 -> deq (app M1 M2) (app N1 N2)
| e-refl : {M : tm} deq M M;

LFR aeq <| deq : tm -> tm -> sort =
| e-lam : ({x : tm} aeq x x -> aeq (M x) (N x)) -> aeq (lam M) (lam N)
| e-app : aeq M1 N1 -> aeq M2 N2 -> aeq (app M1 M2) (app N1 N2);

schema xdG = | xeW : block (x : tm, u : deq x x);
schema xaG <| xdG = | xeW : block (x : tm, u : aeq x x);
|bel}

let good_decls = {bel|
%block xbW = block (x : tm, u : deq x x);
%worlds (xbW) tm deq;
|bel}

(* the declared block is too small: it lacks the deq assumption the
   schema element (and the e-lam appeal) introduces *)
let bad_decls = {bel|
%block xbW = block (x : tm);
%worlds (xbW) tm deq;
|bel}

let refl_src =
  {bel|
rec aeq-refl : (Psi : xaG) (M : [Psi |- tm]) [Psi |- aeq M M] =
mlam Psi => mlam M =>
case [Psi |- M] of
| {#b : #[Psi |- xeW]}
  [Psi |- #b.1] => [Psi |- #b.2]
| {M' : [Psi, x : tm |- tm]}
  [Psi |- lam (\x. M')] =>
    let [E] = aeq-refl [Psi, b : xeW] [Psi, b : xeW |- M'[.., b.1]] in
    [Psi |- e-lam (\x. M') (\x. M') (\x. \u. E[.., <x ; u>])]
| {M1 : [Psi |- tm]} {M2 : [Psi |- tm]}
  [Psi |- app M1 M2] =>
    let [E1] = aeq-refl [Psi] [Psi |- M1] in
    let [E2] = aeq-refl [Psi] [Psi |- M2] in
    [Psi |- e-app M1 M1 M2 M2 E1 E2];
|bel}

(* boxes only tm under the mixed (tm, deq) schema context: accepting it
   under a tm-only world needs the deq entry strengthened away *)
let tm_only_src =
  {bel|
%block xtW = block (x : tm);
%worlds (xtW) tm;

rec idtm : (Psi : xdG) (M : [Psi |- tm]) [Psi |- tm] =
mlam Psi => mlam M => [Psi |- M];
|bel}

(* M occurs only as another variable's instantiation target, never at
   the head of a spine of distinct bound variables *)
let nonstrict_src =
  {bel|
LF nat : type =
| z : nat
| s : nat -> nat;

rec leak : [ |- nat] -> [ |- nat] =
fn d => case d of
| {N : [ |- nat]}
  [ |- s (s N)] => [ |- N]
| {N : [ |- nat]} {M : [ |- nat]}
  [ |- s N] => [ |- M]
| [ |- z] => [ |- z];
|bel}

(* --- subsumption: accept / reject --------------------------------------- *)

let subsumption_tests =
  [
    test "the declared world accepts the §2 reflexivity proof" (fun () ->
        let sink, _, r = worlds_src (sig_src ^ good_decls ^ refl_src) in
        Alcotest.(check int) "no E0720" 0 (count "E0720" sink);
        Alcotest.(check int) "no W0721" 0 (count "W0721" sink);
        Alcotest.(check int) "no W0722" 0 (count "W0722" sink);
        let f = fn_report r "aeq-refl" in
        Alcotest.(check bool) "clean" true (Worlds.clean f);
        Alcotest.(check bool) "extensions were collected" true
          (f.Worlds.wf_exts > 0);
        Alcotest.(check bool) "pairs were checked" true
          (f.Worlds.wf_fams > 0);
        Alcotest.(check int) "one block" 1 r.Worlds.wr_blocks;
        (* %worlds (xbW) tm deq counts once per bounded family *)
        Alcotest.(check int) "two world declarations" 2 r.Worlds.wr_worlds);
    test "a family appealed to without a %worlds declaration is W0721, \
          with the appeal path" (fun () ->
        let sink, _, r = worlds_src (sig_src ^ refl_src) in
        Alcotest.(check int) "no E0720" 0 (count "E0720" sink);
        Alcotest.(check bool) "W0721 reported" true (count "W0721" sink > 0);
        let f = fn_report r "aeq-refl" in
        Alcotest.(check bool) "undeclared counted" true
          (f.Worlds.wf_undeclared > 0);
        Alcotest.(check bool) "not clean" false (Worlds.clean f);
        List.iter
          (fun m ->
            Alcotest.(check bool) "witness path present" true
              (contains "appeal path:" m))
          (messages_of "W0721" sink));
    test "a declared world too small for the extension is E0720" (fun () ->
        let sink, _, r = worlds_src (sig_src ^ bad_decls ^ refl_src) in
        Alcotest.(check bool) "E0720 reported" true (count "E0720" sink > 0);
        let f = fn_report r "aeq-refl" in
        Alcotest.(check bool) "violations counted" true
          (f.Worlds.wf_violations > 0);
        List.iter
          (fun m ->
            Alcotest.(check bool) "names the world" true
              (contains "xbW" m || contains "declared worlds" m))
          (messages_of "E0720" sink);
        (* the analysis is per-function recovery, never an abort *)
        Alcotest.(check int) "no bugs" 0 (Diagnostics.bug_count sink));
    test "subordination strengthening drops entries irrelevant to the \
          boxed family" (fun () ->
        (* the xdG element extends with (x : tm, u : deq x x) but idtm
           only ever boxes tm-terms; deq is not subordinate to tm, so the
           tm-only declared world must suffice *)
        let sink, _, r = worlds_src (sig_src ^ tm_only_src) in
        Alcotest.(check int) "no E0720" 0 (count "E0720" sink);
        Alcotest.(check int) "no W0721" 0 (count "W0721" sink);
        Alcotest.(check bool) "clean" true
          (Worlds.clean (fn_report r "idtm")));
    test "refinement subsorting lets one deq-level block cover the aeq \
          schema" (fun () ->
        (* xaG's element carries an aeq assumption; the declared block
           carries deq.  aeq <| deq, so the erased skeletons agree and
           the single block must cover both schemas *)
        let sink, _, _ = worlds_src (sig_src ^ good_decls ^ refl_src) in
        Alcotest.(check (list string)) "no findings at all" []
          (List.filter
             (fun c -> c = "E0720" || c = "W0721" || c = "W0722")
             (codes sink)));
  ]

(* --- strictness ---------------------------------------------------------- *)

let strict_tests =
  [
    test "a pattern variable with no strict occurrence is W0722" (fun () ->
        let sink, _, r = worlds_src nonstrict_src in
        Alcotest.(check int) "one W0722" 1 (count "W0722" sink);
        let f = fn_report r "leak" in
        Alcotest.(check int) "one non-strict variable" 1
          f.Worlds.wf_nonstrict;
        List.iter
          (fun m ->
            Alcotest.(check bool) "names the variable" true (contains "M" m))
          (messages_of "W0722" sink));
    test "--no-strict suppresses the strictness pass" (fun () ->
        let sink, _, r = worlds_src ~check_strict:false nonstrict_src in
        Alcotest.(check int) "no W0722" 0 (count "W0722" sink);
        Alcotest.(check int) "not counted either" 0
          (fn_report r "leak").Worlds.wf_nonstrict);
    test "index-determined variables are strict through other sorts"
      (fun () ->
        (* N never occurs in the branch body, but it heads a
           distinct-variable spine inside M's declared sort, which pins
           it — no W0722 *)
        let src =
          {bel|
LF nat : type =
| z : nat
| s : nat -> nat;

LF le : nat -> nat -> type =
| le-z : {N : nat} le z N
| le-s : le M N -> le (s M) (s N);

rec weaken : [ |- nat] -> [ |- nat] =
fn d => case d of
| {N : [ |- nat]}
  [ |- s N] => [ |- N]
| [ |- z] => [ |- z];
|bel}
        in
        let sink, _, _ = worlds_src src in
        Alcotest.(check int) "no W0722" 0 (count "W0722" sink));
  ]

(* --- the shipped corpus stays worlds-clean ------------------------------- *)

let corpus_tests =
  [
    test "every shipped kit is worlds-clean" (fun () ->
        List.iter
          (fun (name, load) ->
            let sg = load () in
            let sink = Diagnostics.sink () in
            let r = Driver.worlds sink sg in
            Alcotest.(check int) (name ^ ": no errors") 0
              (Diagnostics.error_count sink);
            Alcotest.(check int) (name ^ ": no warnings") 0
              (Diagnostics.warning_count sink);
            List.iter
              (fun f ->
                Alcotest.(check bool)
                  (name ^ ": " ^ f.Worlds.wf_name ^ " clean")
                  true (Worlds.clean f))
              r.Worlds.wr_fns)
          [
            ("surface", Belr_kits.Surface.load);
            ("values", Belr_kits.Values.load);
            ("parity", Belr_kits.Parity.load);
            ("typed_equal", Belr_kits.Typed_equal.load);
          ]);
    test "the example corpus is worlds-clean" (fun () ->
        let sources =
          List.map
            (fun f -> (f, read_file ("../examples/" ^ f)))
            [ "quickstart.blr"; "totality.blr"; "equal.bel" ]
        in
        let sink = Diagnostics.sink () in
        let sg = Driver.check_sources sink sources in
        Alcotest.(check int) "corpus checks" 0 (Diagnostics.error_count sink);
        ignore (Driver.worlds sink sg);
        Alcotest.(check int) "no errors" 0 (Diagnostics.error_count sink);
        Alcotest.(check int) "no warnings" 0
          (Diagnostics.warning_count sink));
  ]

(* --- the belr-worlds/1 report ------------------------------------------- *)

let report_tests =
  [
    test "report_json has the belr-worlds/1 shape" (fun () ->
        let sink, _, r = worlds_src (sig_src ^ good_decls ^ refl_src) in
        let j = Worlds.report_json ~files:[ "test.bel" ] sink r in
        Alcotest.(check bool) "schema" true
          (J.member "schema" j = Some (J.String "belr-worlds/1"));
        (match Option.bind (J.member "functions" j) J.to_list with
        | Some [ f ] ->
            Alcotest.(check bool) "name" true
              (J.member "name" f = Some (J.String "aeq-refl"));
            Alcotest.(check bool) "clean" true
              (J.member "clean" f = Some (J.Bool true))
        | _ -> Alcotest.fail "expected one functions entry");
        (match J.member "signature" j with
        | Some s ->
            Alcotest.(check bool) "blocks" true
              (J.member "blocks" s = Some (J.Int 1));
            Alcotest.(check bool) "worlds" true
              (J.member "worlds" s = Some (J.Int 2))
        | None -> Alcotest.fail "no signature section");
        (match Option.bind (J.member "findings" j) J.to_list with
        | Some [] -> ()
        | _ -> Alcotest.fail "expected an empty findings array");
        Alcotest.(check bool) "exit code" true
          (J.member "exit_code" j = Some (J.Int 0)));
    test "violations land in the report's findings and exit code" (fun () ->
        let sink, _, r = worlds_src (sig_src ^ bad_decls ^ refl_src) in
        let j = Worlds.report_json ~files:[ "test.bel" ] sink r in
        (match Option.bind (J.member "findings" j) J.to_list with
        | Some (_ :: _ as fs) ->
            Alcotest.(check bool) "an E0720 finding" true
              (List.exists
                 (fun f -> J.member "code" f = Some (J.String "E0720"))
                 fs)
        | _ -> Alcotest.fail "expected findings");
        Alcotest.(check bool) "exit code 1" true
          (J.member "exit_code" j = Some (J.Int 1)));
  ]

let suites =
  [
    ("worlds subsumption", subsumption_tests);
    ("worlds strictness", strict_tests);
    ("worlds corpus", corpus_tests);
    ("worlds report", report_tests);
  ]
