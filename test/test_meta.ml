(** Tests for the contextual layer: meta-substitution application,
    contextual sorting/typing, and meta-level conservativity. *)

open Belr_support
open Belr_syntax
open Belr_lf
open Belr_meta
open Belr_core
open Lf

let f = Fixtures.make ()

let sg = f.Fixtures.sg

let check_tm = Alcotest.testable (Pp.pp_normal (Pp.env ())) Equal.normal

let v i : normal = (mk_root ((mk_bvar i)) [])

let fails name thunk =
  Alcotest.test_case name `Quick (fun () ->
      match thunk () with
      | exception Error.Belr_error _ -> ()
      | exception Error.Violation _ -> ()
      | _ -> Alcotest.failf "%s: expected failure, but succeeded" name)

let ok name thunk = Alcotest.test_case name `Quick thunk

let nat_s = (mk_sembed f.Fixtures.nat [])

(* Ω = u : (x:nat . ⌊nat⌋) *)
let psi_x_nat =
  Ctxs.sctx_push Ctxs.empty_sctx (Ctxs.SCDecl ("x", nat_s))

let omega_u = [ Meta.MDTerm ("u", psi_x_nat, nat_s) ]

let msub_tests =
  [
    ok "instantiating u triggers hereditary substitution" (fun () ->
        (* u := (x. s x); then ⟦θ⟧(u[z]) = s z *)
        let theta =
          Meta.MDot
            ( Meta.MOTerm
                ( Meta.hat_of_sctx psi_x_nat,
                  (mk_root ((mk_const f.Fixtures.s)) ([ v 1 ])) ),
              Meta.MShift 0 )
        in
        let t = (mk_root ((mk_mvar 1 ((mk_dot (Obj (Fixtures.zero f)) mk_empty)))) []) in
        Alcotest.check check_tm "s z"
          (Fixtures.succ f (Fixtures.zero f))
          (Msub.normal 0 theta t));
    ok "meta-shift renumbers meta-variables" (fun () ->
        let t = (mk_root ((mk_mvar 1 ((mk_shift 0)))) []) in
        match Msub.normal 0 (Meta.MShift 2) t with
        | Root (MVar (3, Shift 0), []) -> ()
        | t' -> Alcotest.failf "got %a" (Pp.pp_normal (Pp.env ())) t');
    ok "cutoff protects locally bound meta-variables" (fun () ->
        let t = (mk_root ((mk_mvar 1 ((mk_shift 0)))) []) in
        Alcotest.check check_tm "unchanged" t (Msub.normal 1 (Meta.MShift 2) t));
    ok "context variable instantiation splices entries" (fun () ->
        (* Ψ = ψ, x : ⌊nat⌋ with ψ := (b : xeW-block) *)
        let psi =
          {
            Ctxs.s_var = Some 1;
            Ctxs.s_promoted = false;
            Ctxs.s_decls = [ Ctxs.SCDecl ("x", nat_s) ];
          }
        in
        let inst = Meta.MOCtx (Fixtures.xa_sctx f 1) in
        let psi' = Msub.sctx 0 (Meta.MDot (inst, Meta.MShift 0)) psi in
        Alcotest.(check int) "two entries" 2 (List.length psi'.Ctxs.s_decls);
        Alcotest.(check bool) "no var" true (psi'.Ctxs.s_var = None));
    ok "hat splicing follows context instantiation" (fun () ->
        let h = { Meta.hat_var = Some 1; Meta.hat_names = [ "x" ] } in
        let inst = Meta.MOCtx (Fixtures.xa_sctx f 2) in
        let h' = Msub.hat 0 (Meta.MDot (inst, Meta.MShift 0)) h in
        Alcotest.(check int) "names" 3 (List.length h'.Meta.hat_names));
    ok "mcomp agrees with sequential application" (fun () ->
        let theta1 = Meta.MShift 1 in
        let theta2 =
          Meta.MDot
            ( Meta.MOTerm
                ( Meta.hat_of_sctx psi_x_nat,
                  (mk_root ((mk_const f.Fixtures.s)) ([ v 1 ])) ),
              Meta.MShift 0 )
        in
        let t = (mk_root ((mk_mvar 1 ((mk_shift 0)))) []) in
        (* θ1 sends u₁ to u₂; θ2 has a dot for u₁ only, so composite sends
           u₁ ↦ u₂ shifted through θ2's tail *)
        Alcotest.check check_tm "compose"
          (Msub.normal 0 theta2 (Msub.normal 0 theta1 t))
          (Msub.normal 0 (Msub.mcomp theta1 theta2) t));
  ]

(* --- contextual sorting ------------------------------------------------ *)

let sorting_tests =
  let env = Check_lfr.make_env sg omega_u in
  [
    ok "Ω = u : (x:nat . nat) is well-formed and erases" (fun () ->
        let delta = Check_meta.wf_mctx sg omega_u in
        Check_meta_t.wf_mctx sg delta);
    ok "boxed term checks: (x . s x) : (x:nat . nat)" (fun () ->
        Check_meta.check_mobj env
          (Meta.MOTerm
             (Meta.hat_of_sctx psi_x_nat, (mk_root ((mk_const f.Fixtures.s)) ([ v 1 ]))))
          (Meta.MSTerm (psi_x_nat, nat_s)));
    fails "boxed term with mismatched hat fails" (fun () ->
        Check_meta.check_mobj env
          (Meta.MOTerm
             ( { Meta.hat_var = None; Meta.hat_names = [] },
               (mk_root ((mk_const f.Fixtures.s)) ([ v 1 ])) ))
          (Meta.MSTerm (psi_x_nat, nat_s)));
    ok "context object checks against its refinement schema" (fun () ->
        Check_meta.check_mobj env
          (Meta.MOCtx (Fixtures.xa_sctx f 2))
          (Meta.MSCtx f.Fixtures.xag));
    fails "context object with foreign blocks fails schema sorting"
      (fun () ->
        let bad =
          Ctxs.sctx_push Ctxs.empty_sctx
            (Ctxs.SCBlock ("b", Embed.elem ~refines:0 f.Fixtures.xd_elem, []))
        in
        Check_meta.check_mobj env (Meta.MOCtx bad) (Meta.MSCtx f.Fixtures.xag));
    ok "parameter object: a concrete block instantiates #b" (fun () ->
        let psi1 = Fixtures.xa_sctx f 1 in
        let env1 = Check_lfr.make_env sg [] in
        Check_meta.check_mobj env1
          (Meta.MOParam (Meta.hat_of_sctx psi1, (mk_bvar 1)))
          (Meta.MSParam (psi1, f.Fixtures.xa_selem, [])));
    ok "meta-level conservativity: erased objects check at erased types"
      (fun () ->
        let mo =
          Meta.MOTerm
            (Meta.hat_of_sctx psi_x_nat, (mk_root ((mk_const f.Fixtures.s)) ([ v 1 ])))
        in
        let ms = Meta.MSTerm (psi_x_nat, nat_s) in
        Check_meta.check_mobj env mo ms;
        let delta = Erase.mctx sg omega_u in
        let env_t = Check_lf.make_env sg delta in
        Check_meta_t.check_mobj env_t (Erase.mobj sg mo) (Erase.msrt sg ms));
    ok "meta-substitution checking" (fun () ->
        let theta =
          Meta.MDot
            ( Meta.MOTerm
                ( Meta.hat_of_sctx psi_x_nat,
                  (mk_root ((mk_const f.Fixtures.s)) ([ v 1 ])) ),
              Meta.MShift 0 )
        in
        (* θ : (Ω, u) valid in Ω itself *)
        let env' = Check_lfr.make_env sg omega_u in
        Check_meta.check_msub env' theta (omega_u @ omega_u) |> ignore;
        ());
  ]

let suites = [ ("meta.msub", msub_tests); ("meta.sorting", sorting_tests) ]
