let () =
  Alcotest.run "belr"
    (Test_lf.suites @ Test_lfr.suites @ Test_meta.suites @ Test_unify.suites
   @ Test_comp.suites @ Test_conventional.suites @ Test_parser.suites
   @ Test_props.suites @ Test_coverage.suites @ Test_values.suites
   @ Test_parity.suites @ Test_termination.suites @ Test_errors.suites
   @ Test_typed_equal.suites @ Test_diagnostics.suites @ Test_telemetry.suites
   @ Test_store.suites @ Test_analysis.suites @ Test_totality.suites
   @ Test_session.suites @ Test_serve.suites @ Test_metrics.suites
   @ Test_worlds.suites @ Test_modes.suites @ Test_whnf.suites
   @ Test_fuzz.suites)
