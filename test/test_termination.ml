(** Tests for the conservative structural termination checker. *)

open Belr_lf
open Belr_comp
open Belr_kits

let ok name thunk = Alcotest.test_case name `Quick thunk

let find_rec sg n =
  match Sign.lookup_name sg n with
  | Some (Sign.Sym_rec r) -> r
  | _ -> Alcotest.failf "%s not found" n

let guarded sg n =
  match Termination.check_rec sg (find_rec sg n) with
  | Termination.Guarded -> true
  | Termination.Issues _ -> false

let tests =
  [
    ok "the §2 development is structurally guarded" (fun () ->
        let sg = Surface.load () in
        List.iter
          (fun n ->
            Alcotest.(check bool) (n ^ " guarded") true (guarded sg n))
          [ "aeq-refl"; "aeq-sym"; "aeq-trans"; "ceq" ]);
    ok "half, strengthen, and result-val are guarded" (fun () ->
        let sg = Parity.load () in
        Alcotest.(check bool) "half" true (guarded sg "half");
        let sg2 = Values.load () in
        Alcotest.(check bool) "strengthen" true (guarded sg2 "strengthen");
        Alcotest.(check bool) "result-val" true (guarded sg2 "result-val"));
    ok "a trivial loop is rejected" (fun () ->
        let sg =
          Belr_parser.Process.program
            {bel|
LF nat : type = | z : nat | s : nat -> nat;
rec loop : [ |- nat] -> [ |- nat] = fn d => loop d;
|bel}
        in
        Alcotest.(check bool) "loop" false (guarded sg "loop"));
    ok "a call on the whole scrutinee (not a subterm) is rejected" (fun () ->
        let sg =
          Belr_parser.Process.program
            {bel|
LF nat : type = | z : nat | s : nat -> nat;
rec spin : {N : [ |- nat]} [ |- nat] =
mlam N => case [ |- N] of
| [ |- z] => [ |- z]
| {M : [ |- nat]}
  [ |- s M] => spin [ |- s M];
|bel}
        in
        (* the argument s M is headed by a constant, not by the pattern
           variable M: the conservative check flags it *)
        Alcotest.(check bool) "spin" false (guarded sg "spin"));
    ok "a call on the pattern subterm is accepted" (fun () ->
        let sg =
          Belr_parser.Process.program
            {bel|
LF nat : type = | z : nat | s : nat -> nat;
rec down : {N : [ |- nat]} [ |- nat] =
mlam N => case [ |- N] of
| [ |- z] => [ |- z]
| {M : [ |- nat]}
  [ |- s M] => down [ |- M];
|bel}
        in
        Alcotest.(check bool) "down" true (guarded sg "down"));
    ok "call_args records computation-level argument positions too"
      (fun () ->
        (* regression: [f e [X]] must contribute both positions, in
           application order — analyses over argument positions (the
           size-change graphs) index into this list *)
        let sg =
          Belr_parser.Process.program
            {bel|
LF nat : type = | z : nat | s : nat -> nat;
rec f : [ |- nat] -> {N : [ |- nat]} [ |- nat] =
fn d => mlam N => d;
|bel}
        in
        let f = find_rec sg "f" in
        let mo =
          Belr_syntax.Meta.MOCtx
            {
              Belr_syntax.Ctxs.s_var = None;
              Belr_syntax.Ctxs.s_promoted = false;
              Belr_syntax.Ctxs.s_decls = [];
            }
        in
        let e =
          Belr_syntax.Comp.MApp
            ( Belr_syntax.Comp.App
                (Belr_syntax.Comp.RecConst f, Belr_syntax.Comp.Var 1),
              mo )
        in
        match Termination.call_args (fun g -> g = f) e [] with
        | Some [ Termination.AComp (Belr_syntax.Comp.Var 1);
                 Termination.AMeta _ ] -> ()
        | Some args ->
            Alcotest.failf "expected both positions, got %d"
              (List.length args)
        | None -> Alcotest.fail "head not recognized");
    ok "guardedness is group-aware: the swapped mutual call is analyzed"
      (fun () ->
        let sg =
          Belr_parser.Process.program
            {bel|
LF nat : type = | z : nat | s : nat -> nat;
rec flip : {M : [ |- nat]} {N : [ |- nat]} [ |- nat] =
mlam M => mlam N => case [ |- M] of
| [ |- z] => [ |- N]
| {M' : [ |- nat]}
  [ |- s M'] => flop [ |- N] [ |- M']
and flop : {M : [ |- nat]} {N : [ |- nat]} [ |- nat] =
mlam M => mlam N => flip [ |- M] [ |- N];
|bel}
        in
        (* flip's call passes the pattern subterm M'; flop's call passes
           only its own mlam binders, which guard nothing *)
        Alcotest.(check bool) "flip" true (guarded sg "flip");
        match Termination.check_rec sg (find_rec sg "flop") with
        | Termination.Issues [ msg ] ->
            Alcotest.(check bool) "names the callee" true
              (let affix = "flip" in
               let n = String.length affix and m = String.length msg in
               let rec go i =
                 i + n <= m && (String.sub msg i n = affix || go (i + 1))
               in
               go 0)
        | Termination.Issues _ -> Alcotest.fail "expected one issue"
        | Termination.Guarded ->
            Alcotest.fail "cross-function call went unanalyzed");
  ]

let suites = [ ("termination", tests) ]
