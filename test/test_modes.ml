(** The mode & uniqueness analyzer (DESIGN.md §S27): [%mode]
    declarations assign input/output polarities, the groundness dataflow
    rejects clauses that cannot schedule their premises (E0730) or
    ground their outputs (E0731), W0732 nags families reachable without
    a mode, and W0733 flags input-overlapping clauses with divergent
    rigid outputs.  Fixtures are accept/reject pairs per code; the
    corpus tests pin the shipped kits and examples mode-clean. *)

open Belr_support
open Belr_parser
module Sign = Belr_lf.Sign
module Modes = Belr_analysis.Modes
module J = Json

let test name f = Alcotest.test_case name `Quick f

let contains affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let codes sink =
  List.map (fun (d : Diagnostics.t) -> d.Diagnostics.d_code)
    (Diagnostics.all sink)

let count code sink =
  List.length (List.filter (String.equal code) (codes sink))

let messages_of code sink =
  List.filter_map
    (fun (d : Diagnostics.t) ->
      if d.Diagnostics.d_code = code then Some d.Diagnostics.d_message
      else None)
    (Diagnostics.all sink)

(** Check [src], then mode-check the resulting signature. *)
let modes_src src =
  let sink = Diagnostics.sink () in
  let sg = Driver.check_sources sink [ ("test.bel", src) ] in
  Alcotest.(check int) "fixture checks cleanly" 0
    (Diagnostics.error_count sink);
  let r = Driver.modes sink sg in
  (sink, sg, r)

let fam_report (r : Modes.result) name =
  match
    List.find_opt (fun f -> f.Modes.mf_name = name) r.Modes.mr_fams
  with
  | Some f -> f
  | None -> Alcotest.failf "%s not analyzed" name

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- fixtures ------------------------------------------------------------ *)

let base = {bel|
LF d : type =
| k : d
| j : d -> d;
|bel}

(* the premise's second argument X never becomes ground: no input
   mentions it and nothing produces it *)
let illmoded_src =
  base
  ^ {bel|
LF f : d -> d -> type =
| c : f N X -> f N N;
%mode f +M +N;
|bel}

(* same shape, but the premise only consumes what the head supplies *)
let wellmoded_src =
  base
  ^ {bel|
LF f : d -> d -> type =
| c : f N N -> f (j N) (j N);
%mode f +M +N;
|bel}

(* the conclusion's output N is never produced: no premises at all *)
let ungrounded_src =
  base
  ^ {bel|
LF f : d -> d -> type =
| c : f M N;
%mode f +M -N;
|bel}

(* every output flows out of a scheduled premise *)
let grounded_src =
  base
  ^ {bel|
LF f : d -> d -> type =
| cz : f k k
| cj : f M N -> f (j M) (j N);
%mode f +M -N;
|bel}

(* f's clauses appeal to unmoded g (twice — the warning deduplicates) *)
let missing_src =
  base
  ^ {bel|
LF g : d -> type =
| gk : g k;
LF f : d -> type =
| c1 : g X -> f X
| c2 : g X -> f (j X);
%mode f +M;
|bel}

(* identical inputs, rigidly different outputs *)
let nonunique_src =
  base
  ^ {bel|
LF f : d -> d -> type =
| c1 : f k k
| c2 : f k (j k);
%mode f +M -N;
|bel}

(* --- groundness: accept / reject ----------------------------------------- *)

let groundness_tests =
  [
    test "a premise whose input is never ground is E0730, with the stuck \
          variable as witness" (fun () ->
        let sink, _, r = modes_src illmoded_src in
        Alcotest.(check int) "one E0730" 1 (count "E0730" sink);
        Alcotest.(check int) "no E0731 cascade" 0 (count "E0731" sink);
        let f = fam_report r "f" in
        Alcotest.(check int) "illmoded counted" 1 f.Modes.mf_illmoded;
        Alcotest.(check bool) "not clean" false (Modes.clean f);
        List.iter
          (fun m ->
            Alcotest.(check bool) "names the clause" true (contains "c" m);
            Alcotest.(check bool) "names the witness" true (contains "X" m))
          (messages_of "E0730" sink);
        Alcotest.(check int) "exit 1" 1 (Diagnostics.exit_code sink));
    test "a schedulable premise chain is accepted" (fun () ->
        let sink, _, r = modes_src wellmoded_src in
        Alcotest.(check int) "no E0730" 0 (count "E0730" sink);
        Alcotest.(check int) "no E0731" 0 (count "E0731" sink);
        let f = fam_report r "f" in
        Alcotest.(check bool) "clean" true (Modes.clean f);
        Alcotest.(check int) "two inputs" 2 f.Modes.mf_inputs;
        Alcotest.(check int) "no outputs" 0 f.Modes.mf_outputs;
        Alcotest.(check int) "one clause" 1 f.Modes.mf_clauses;
        Alcotest.(check int) "exit 0" 0 (Diagnostics.exit_code sink));
    test "an output no premise produces is E0731, with the position and \
          the free variable" (fun () ->
        let sink, _, r = modes_src ungrounded_src in
        Alcotest.(check int) "one E0731" 1 (count "E0731" sink);
        Alcotest.(check int) "no E0730" 0 (count "E0730" sink);
        let f = fam_report r "f" in
        Alcotest.(check int) "ungrounded counted" 1 f.Modes.mf_ungrounded;
        List.iter
          (fun m ->
            Alcotest.(check bool) "names the position" true
              (contains "output argument 2" m);
            Alcotest.(check bool) "names the variable" true (contains "N" m))
          (messages_of "E0731" sink);
        Alcotest.(check int) "exit 1" 1 (Diagnostics.exit_code sink));
    test "outputs produced by scheduled premises are accepted" (fun () ->
        let sink, _, r = modes_src grounded_src in
        Alcotest.(check (list string)) "no findings" [] (codes sink);
        let f = fam_report r "f" in
        Alcotest.(check bool) "clean" true (Modes.clean f);
        Alcotest.(check int) "one input, one output" 1 f.Modes.mf_inputs;
        Alcotest.(check int) "one output" 1 f.Modes.mf_outputs;
        Alcotest.(check int) "two clauses" 2 f.Modes.mf_clauses);
  ]

(* --- the missing-%mode warning ------------------------------------------- *)

let missing_tests =
  [
    test "an unmoded premise family is W0732, once per family" (fun () ->
        let sink, _, r = modes_src missing_src in
        Alcotest.(check int) "one W0732 (deduplicated)" 1
          (count "W0732" sink);
        Alcotest.(check int) "counted in the result" 1 r.Modes.mr_missing;
        Alcotest.(check int) "no errors" 0 (Diagnostics.error_count sink);
        List.iter
          (fun m ->
            Alcotest.(check bool) "blames the appealing clause" true
              (contains "of f appeals to g" m))
          (messages_of "W0732" sink);
        (* lenient: the moded family itself still checks clean *)
        Alcotest.(check bool) "f clean" true
          (Modes.clean (fam_report r "f"));
        Alcotest.(check int) "exit 0 (warning only)" 0
          (Diagnostics.exit_code sink));
    test "a family a rec appeals to without a %mode is W0732" (fun () ->
        let src =
          base
          ^ {bel|
LF f : d -> type =
| c : f k;
%mode f +M;
LF g : d -> type =
| gk : g k;
rec use : [ |- g k] -> [ |- g k] =
fn x => x;
|bel}
        in
        let sink, _, r = modes_src src in
        Alcotest.(check int) "one W0732" 1 (count "W0732" sink);
        Alcotest.(check int) "counted" 1 r.Modes.mr_missing;
        List.iter
          (fun m ->
            Alcotest.(check bool) "blames the rec" true
              (contains "rec use" m))
          (messages_of "W0732" sink));
    test "signatures with no %mode at all are never nagged" (fun () ->
        let src =
          base
          ^ {bel|
LF g : d -> type =
| gk : g k;
rec use : [ |- g k] -> [ |- g k] =
fn x => x;
|bel}
        in
        let sink, _, r = modes_src src in
        Alcotest.(check int) "no W0732" 0 (count "W0732" sink);
        Alcotest.(check int) "nothing analyzed" 0 (List.length r.Modes.mr_fams));
  ]

(* --- uniqueness ----------------------------------------------------------- *)

let uniqueness_tests =
  [
    test "overlapping inputs with divergent rigid outputs are W0733"
      (fun () ->
        let sink, _, r = modes_src nonunique_src in
        Alcotest.(check int) "one W0733" 1 (count "W0733" sink);
        let f = fam_report r "f" in
        Alcotest.(check int) "nonunique counted" 1 f.Modes.mf_nonunique;
        Alcotest.(check bool) "not clean" false (Modes.clean f);
        List.iter
          (fun m ->
            Alcotest.(check bool) "names both clauses" true
              (contains "c1 and c2" m))
          (messages_of "W0733" sink);
        Alcotest.(check int) "exit 0 (warning)" 0
          (Diagnostics.exit_code sink));
    test "the same clauses are fine when every position is an input"
      (fun () ->
        (* with +M +N the divergent position is an input: the clauses
           simply do not overlap, so uniqueness is vacuous *)
        let src =
          base
          ^ {bel|
LF f : d -> d -> type =
| c1 : f k k
| c2 : f k (j k);
%mode f +M +N;
|bel}
        in
        let sink, _, r = modes_src src in
        Alcotest.(check int) "no W0733" 0 (count "W0733" sink);
        Alcotest.(check bool) "clean" true (Modes.clean (fam_report r "f")));
    test "rigidly clashing inputs never overlap" (fun () ->
        let sink, _, _ = modes_src grounded_src in
        Alcotest.(check int) "no W0733" 0 (count "W0733" sink));
  ]

(* --- sort-level modes ----------------------------------------------------- *)

let sort_src =
  base
  ^ {bel|
LF q : d -> type =
| qc : q X
| qj : q X -> q (j X);
LFR r <| q : d -> sort =
| qj : r X -> r (j X);
|bel}

let sorted_tests =
  [
    test "a type-level mode checks every constructor: qc cannot ground \
          its output" (fun () ->
        let sink, _, _ = modes_src (sort_src ^ "%mode q -M;\n") in
        Alcotest.(check int) "one E0731" 1 (count "E0731" sink));
    test "the same mode on the refinement checks only the sort's sharper \
          clause set" (fun () ->
        let sink, _, r = modes_src (sort_src ^ "%mode r -M;\n") in
        Alcotest.(check (list string)) "no findings" [] (codes sink);
        let f = fam_report r "r" in
        Alcotest.(check bool) "keyed as a sort" true f.Modes.mf_sorted;
        Alcotest.(check int) "only the refined clause" 1 f.Modes.mf_clauses;
        Alcotest.(check bool) "clean" true (Modes.clean f));
  ]

(* --- %mode processing errors ---------------------------------------------- *)

let process_src src =
  let sink = Diagnostics.sink () in
  let _sg = Driver.check_sources sink [ ("test.bel", src) ] in
  sink

let process_tests =
  [
    test "an arity mismatch is a declaration error" (fun () ->
        let sink =
          process_src
            (base ^ "LF f : d -> type = | c : f k;\n%mode f +M +N;\n")
        in
        Alcotest.(check int) "one E0201" 1 (count "E0201" sink);
        Alcotest.(check bool) "explains the mismatch" true
          (List.exists
             (contains "declares 2 argument position(s)")
             (messages_of "E0201" sink)));
    test "an unknown family is a declaration error" (fun () ->
        let sink = process_src (base ^ "%mode nosuch +M;\n") in
        Alcotest.(check int) "one E0201" 1 (count "E0201" sink);
        Alcotest.(check bool) "names the problem" true
          (List.exists
             (contains "does not name a type or sort family")
             (messages_of "E0201" sink)));
    test "a second %mode for the same family is rejected" (fun () ->
        let sink =
          process_src
            (base ^ "LF f : d -> type = | c : f k;\n\
                     %mode f +M;\n%mode f +M;\n")
        in
        Alcotest.(check int) "one E0201" 1 (count "E0201" sink);
        Alcotest.(check bool) "says it is a duplicate" true
          (List.exists
             (contains "already declared")
             (messages_of "E0201" sink)));
    test "a sort's mode keys under the refined family: a duplicate via \
          the refinement is rejected too" (fun () ->
        let sink =
          process_src (sort_src ^ "%mode q -M;\n%mode r -M;\n")
        in
        Alcotest.(check int) "one E0201" 1 (count "E0201" sink));
  ]

(* --- the shipped corpus stays mode-clean ---------------------------------- *)

let corpus_tests =
  [
    test "every shipped kit is mode-clean" (fun () ->
        List.iter
          (fun (name, load, n_modes) ->
            let sg = load () in
            let sink = Diagnostics.sink () in
            let r = Driver.modes sink sg in
            Alcotest.(check int) (name ^ ": mode declarations") n_modes
              r.Modes.mr_modes;
            Alcotest.(check int) (name ^ ": no errors") 0
              (Diagnostics.error_count sink);
            Alcotest.(check int) (name ^ ": no warnings") 0
              (Diagnostics.warning_count sink);
            List.iter
              (fun f ->
                Alcotest.(check bool)
                  (name ^ ": " ^ f.Modes.mf_name ^ " clean")
                  true (Modes.clean f))
              r.Modes.mr_fams)
          [
            ("surface", Belr_kits.Surface.load, 1);
            ("values", Belr_kits.Values.load, 2);
            ("parity", Belr_kits.Parity.load, 1);
            ("typed_equal", Belr_kits.Typed_equal.load, 1);
          ]);
    test "the shipped aeq mode is sort-level with both terms as inputs"
      (fun () ->
        let sg = Belr_kits.Surface.load () in
        let sink = Diagnostics.sink () in
        let r = Driver.modes sink sg in
        let f = fam_report r "aeq" in
        Alcotest.(check bool) "sorted" true f.Modes.mf_sorted;
        Alcotest.(check int) "inputs" 2 f.Modes.mf_inputs;
        Alcotest.(check int) "outputs" 0 f.Modes.mf_outputs;
        (* only the refinement's two congruence clauses are checked:
           e-refl/e-sym/e-trans live in declarative deq only *)
        Alcotest.(check int) "clauses" 2 f.Modes.mf_clauses);
    test "typed_equal synthesizes its classifying type as an output"
      (fun () ->
        let sg = Belr_kits.Typed_equal.load () in
        let sink = Diagnostics.sink () in
        let r = Driver.modes sink sg in
        let f = fam_report r "aeq" in
        Alcotest.(check int) "inputs" 2 f.Modes.mf_inputs;
        Alcotest.(check int) "outputs" 1 f.Modes.mf_outputs;
        Alcotest.(check bool) "clean" true (Modes.clean f));
    test "the example corpus is mode-clean" (fun () ->
        let sources =
          List.map
            (fun f -> (f, read_file ("../examples/" ^ f)))
            [ "quickstart.blr"; "totality.blr"; "equal.bel" ]
        in
        let sink = Diagnostics.sink () in
        let sg = Driver.check_sources sink sources in
        Alcotest.(check int) "corpus checks" 0
          (Diagnostics.error_count sink);
        let r = Driver.modes sink sg in
        Alcotest.(check int) "no errors" 0 (Diagnostics.error_count sink);
        Alcotest.(check int) "no warnings" 0
          (Diagnostics.warning_count sink);
        Alcotest.(check int) "two modes (nat, aeq)" 2 r.Modes.mr_modes);
  ]

(* --- telemetry ------------------------------------------------------------ *)

let telemetry_tests =
  [
    test "the phases appear as modes:<pass> telemetry spans" (fun () ->
        Telemetry.reset ();
        Telemetry.set_enabled true;
        Fun.protect
          ~finally:(fun () -> Telemetry.set_enabled false)
          (fun () ->
            let _ = modes_src grounded_src in
            let names =
              List.map (fun e -> e.Telemetry.ev_name) (Telemetry.events ())
            in
            List.iter
              (fun p ->
                Alcotest.(check bool) (p ^ " span recorded") true
                  (List.mem p names))
              [
                "modes"; "modes:subord"; "modes:clauses";
                "modes:groundness"; "modes:unique"; "modes:recs";
              ]));
  ]

(* --- the belr-modes/1 report ---------------------------------------------- *)

let report_tests =
  [
    test "report_json has the belr-modes/1 shape" (fun () ->
        let sink, _, r = modes_src grounded_src in
        let j = Modes.report_json ~files:[ "test.bel" ] sink r in
        Alcotest.(check bool) "schema" true
          (J.member "schema" j = Some (J.String "belr-modes/1"));
        (match Option.bind (J.member "families" j) J.to_list with
        | Some [ f ] ->
            Alcotest.(check bool) "name" true
              (J.member "name" f = Some (J.String "f"));
            Alcotest.(check bool) "clean" true
              (J.member "clean" f = Some (J.Bool true));
            Alcotest.(check bool) "clauses" true
              (J.member "clauses" f = Some (J.Int 2))
        | _ -> Alcotest.fail "expected one families entry");
        (match J.member "signature" j with
        | Some s ->
            Alcotest.(check bool) "modes" true
              (J.member "modes" s = Some (J.Int 1));
            Alcotest.(check bool) "missing" true
              (J.member "missing" s = Some (J.Int 0))
        | None -> Alcotest.fail "no signature section");
        (match Option.bind (J.member "findings" j) J.to_list with
        | Some [] -> ()
        | _ -> Alcotest.fail "expected an empty findings array");
        Alcotest.(check bool) "exit code" true
          (J.member "exit_code" j = Some (J.Int 0)));
    test "violations land in the report's findings and exit code" (fun () ->
        let sink, _, r = modes_src illmoded_src in
        let j = Modes.report_json ~files:[ "test.bel" ] sink r in
        (match Option.bind (J.member "findings" j) J.to_list with
        | Some (_ :: _ as fs) ->
            Alcotest.(check bool) "an E0730 finding" true
              (List.exists
                 (fun f -> J.member "code" f = Some (J.String "E0730"))
                 fs)
        | _ -> Alcotest.fail "expected findings");
        Alcotest.(check bool) "exit code 1" true
          (J.member "exit_code" j = Some (J.Int 1)));
  ]

(* --- the registry and its README mirror ----------------------------------- *)

let codes_tests =
  [
    test "the new codes are registered with their documented severities"
      (fun () ->
        List.iter
          (fun (code, sev) ->
            match
              List.find_opt
                (fun c -> c.Diagnostics.cc_code = code)
                Diagnostics.registry
            with
            | Some c ->
                Alcotest.(check string) (code ^ " severity") sev
                  (Diagnostics.severity_label c.Diagnostics.cc_severity)
            | None -> Alcotest.failf "%s not registered" code)
          [
            ("E0730", "error"); ("E0731", "error"); ("W0732", "warning");
            ("W0733", "warning");
          ]);
    test "README embeds the generated diagnostic-codes table verbatim"
      (fun () ->
        (* the README table is the output of [belr codes --markdown];
           regenerate and paste it there whenever the registry changes *)
        let readme = read_file "../README.md" in
        Alcotest.(check bool) "table up to date" true
          (contains (Diagnostics.registry_markdown ()) readme));
  ]

let suites =
  [
    ("modes groundness", groundness_tests);
    ("modes missing", missing_tests);
    ("modes uniqueness", uniqueness_tests);
    ("modes sorted", sorted_tests);
    ("modes process", process_tests);
    ("modes corpus", corpus_tests);
    ("modes telemetry", telemetry_tests);
    ("modes report", report_tests);
    ("modes codes", codes_tests);
  ]
