(** Tests for the totality analyzer (DESIGN.md §S22): size-change
    termination over the call graph, deep refinement-aware coverage, and
    the [belr-total/1] report.  The fixture corpus is chosen to separate
    the analyses: recursion schemes the guardedness heuristic
    ({!Belr_comp.Termination}) rejects but size-change accepts, and
    diverging cycles size-change must reject with a call-path witness. *)

open Belr_support
open Belr_lf
open Belr_comp
module Callgraph = Belr_analysis.Callgraph

let ok name thunk = Alcotest.test_case name `Quick thunk

let contains affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let find_rec sg n =
  match Sign.lookup_name sg n with
  | Some (Sign.Sym_rec r) -> r
  | _ -> Alcotest.failf "%s not found" n

let guarded sg n =
  match Termination.check_rec sg (find_rec sg n) with
  | Termination.Guarded -> true
  | Termination.Issues _ -> false

let total_run ?depth ?budget sg =
  let sink = Diagnostics.sink () in
  let r = Totality.run ?depth ?budget sink sg in
  (sink, r)

let verdict_of r n =
  match
    List.find_opt (fun f -> f.Totality.fv_name = n) r.Totality.tr_fns
  with
  | Some f -> f
  | None -> Alcotest.failf "%s not analyzed" n

let nat_sig = {bel|
LF nat : type =
| z : nat
| s : nat -> nat;
|bel}

(* flip peels its first argument and swaps through flop; neither flop
   call passes a pattern variable *)
let flip_flop_src =
  nat_sig
  ^ {bel|
rec flip : {M : [ |- nat]} {N : [ |- nat]} [ |- nat] =
mlam M => mlam N => case [ |- M] of
| [ |- z] => [ |- N]
| {M' : [ |- nat]}
  [ |- s M'] => flop [ |- N] [ |- M']
and flop : {M : [ |- nat]} {N : [ |- nat]} [ |- nat] =
mlam M => mlam N => flip [ |- M] [ |- N];
|bel}

(* lexicographic descent on (M, N); both recursive calls launder their
   arguments through let-box binders, defeating guardedness *)
let lexlb_src =
  nat_sig
  ^ {bel|
rec lexlb : {M : [ |- nat]} {N : [ |- nat]} [ |- nat] =
mlam M => mlam N => case [ |- M] of
| [ |- z] => [ |- z]
| {M' : [ |- nat]}
  [ |- s M'] =>
    case [ |- N] of
    | [ |- z] => let [K] = [ |- M'] in lexlb [ |- K] [ |- s K]
    | {N' : [ |- nat]}
      [ |- s N'] => let [K] = [ |- N'] in lexlb [ |- M] [ |- K];
|bel}

let ack_src =
  nat_sig
  ^ {bel|
rec ack : {M : [ |- nat]} {N : [ |- nat]} [ |- nat] =
mlam M => mlam N => case [ |- M] of
| [ |- z] => [ |- s N]
| {M' : [ |- nat]}
  [ |- s M'] =>
    case [ |- N] of
    | [ |- z] => ack [ |- M'] [ |- s z]
    | {N' : [ |- nat]}
      [ |- s N'] => let [D] = ack [ |- M] [ |- N'] in ack [ |- M'] [ |- D];
|bel}

let loop_src =
  nat_sig ^ {bel|
rec loop : [ |- nat] -> [ |- nat] = fn d => loop d;
|bel}

let up_src =
  nat_sig
  ^ {bel|
rec up : {N : [ |- nat]} [ |- nat] = mlam N => up [ |- s N];
|bel}

(* a diverging mutual cycle: both calls pass their argument unchanged *)
let ping_pong_src =
  nat_sig
  ^ {bel|
rec ping : {N : [ |- nat]} [ |- nat] = mlam N => pong [ |- N]
and pong : {N : [ |- nat]} [ |- nat] = mlam N => ping [ |- N];
|bel}

let sct_tests =
  [
    ok "argument-swapping mutual recursion: guardedness rejects flop, \
        size-change accepts the group" (fun () ->
        let sg = Belr_parser.Process.program flip_flop_src in
        Alcotest.(check bool) "flop unguarded" false (guarded sg "flop");
        let _, r = total_run sg in
        Alcotest.(check bool) "flip terminating" true
          (Totality.terminating (verdict_of r "flip"));
        Alcotest.(check bool) "flop terminating" true
          (Totality.terminating (verdict_of r "flop"));
        Alcotest.(check (list string))
          "one SCC" [ "flip"; "flop" ] (verdict_of r "flip").Totality.fv_group);
    ok "lexicographic descent: guardedness rejects lexlb, size-change \
        accepts it" (fun () ->
        let sg = Belr_parser.Process.program lexlb_src in
        Alcotest.(check bool) "lexlb unguarded" false (guarded sg "lexlb");
        let sink, r = total_run sg in
        Alcotest.(check bool) "terminating" true
          (Totality.terminating (verdict_of r "lexlb"));
        Alcotest.(check bool) "covered" true
          (Totality.covered (verdict_of r "lexlb"));
        Alcotest.(check int) "clean" 0 (Diagnostics.error_count sink));
    ok "ack is accepted by both analyses" (fun () ->
        let sg = Belr_parser.Process.program ack_src in
        Alcotest.(check bool) "guarded" true (guarded sg "ack");
        let _, r = total_run sg in
        Alcotest.(check bool) "terminating" true
          (Totality.terminating (verdict_of r "ack")));
    ok "a trivial loop is rejected with a call-path witness" (fun () ->
        let sg = Belr_parser.Process.program loop_src in
        let sink, r = total_run sg in
        (match (verdict_of r "loop").Totality.fv_term with
        | Totality.TDiverging _ -> ()
        | _ -> Alcotest.fail "expected a diverging verdict");
        let e0710 =
          List.filter
            (fun d -> d.Diagnostics.d_code = "E0710")
            (Diagnostics.all sink)
        in
        (match e0710 with
        | [ d ] ->
            Alcotest.(check bool)
              "witness names the cycle" true
              (contains "loop -> loop" d.Diagnostics.d_message)
        | _ -> Alcotest.fail "expected exactly one E0710");
        Alcotest.(check int) "exit code 1" 1 (Diagnostics.exit_code sink));
    ok "a count-up over its own argument is rejected" (fun () ->
        let sg = Belr_parser.Process.program up_src in
        let sink, r = total_run sg in
        (match (verdict_of r "up").Totality.fv_term with
        | Totality.TDiverging _ -> ()
        | _ -> Alcotest.fail "expected a diverging verdict");
        Alcotest.(check int) "one error" 1 (Diagnostics.error_count sink));
    ok "a diverging mutual cycle is rejected across functions" (fun () ->
        let sg = Belr_parser.Process.program ping_pong_src in
        let sink, r = total_run sg in
        (match (verdict_of r "ping").Totality.fv_term with
        | Totality.TDiverging _ -> ()
        | _ -> Alcotest.fail "expected a diverging verdict");
        let e0710 =
          List.filter
            (fun d -> d.Diagnostics.d_code = "E0710")
            (Diagnostics.all sink)
        in
        match e0710 with
        | [ d ] ->
            Alcotest.(check bool)
              "witness crosses the group" true
              (contains "ping" d.Diagnostics.d_message
              && contains "pong" d.Diagnostics.d_message)
        | _ -> Alcotest.fail "expected exactly one E0710");
    ok "an exhausted composition budget reports W0712, not a verdict"
      (fun () ->
        let sg = Belr_parser.Process.program ack_src in
        let sink, r = total_run ~budget:1 sg in
        (match (verdict_of r "ack").Totality.fv_term with
        | Totality.TGaveUp -> ()
        | _ -> Alcotest.fail "expected a gave-up verdict");
        Alcotest.(check bool) "W0712 reported" true
          (List.exists
             (fun d -> d.Diagnostics.d_code = "W0712")
             (Diagnostics.all sink));
        Alcotest.(check int) "no errors" 0 (Diagnostics.error_count sink));
    ok "size-change subsumes guardedness on the shipped developments"
      (fun () ->
        List.iter
          (fun sg ->
            let _, r = total_run sg in
            List.iter
              (fun (id, name) ->
                match Termination.check_rec sg id with
                | Termination.Guarded ->
                    Alcotest.(check bool)
                      (name ^ " terminating") true
                      (Totality.terminating (verdict_of r name))
                | Termination.Issues _ -> ())
              (Callgraph.analyze sg).Callgraph.cg_recs)
          [
            Belr_kits.Surface.load ();
            Belr_kits.Values.load ();
            Belr_kits.Parity.load ();
            Belr_parser.Process.program flip_flop_src;
            Belr_parser.Process.program ack_src;
          ]);
  ]

(* --- deep coverage ------------------------------------------------------ *)

let skip_src =
  nat_sig
  ^ {bel|
rec skip : [ |- nat] -> [ |- nat] =
fn d => case d of
| [ |- z] => [ |- z]
| {M : [ |- nat]}
  [ |- s (s M)] => [ |- M];
|bel}

let skip_full_src =
  nat_sig
  ^ {bel|
rec skip : [ |- nat] -> [ |- nat] =
fn d => case d of
| [ |- z] => [ |- z]
| [ |- s z] => [ |- z]
| {M : [ |- nat]}
  [ |- s (s M)] => [ |- M];
|bel}

let coverage_tests =
  [
    ok "a nested gap invisible to the shallow check is found" (fun () ->
        let sg = Belr_parser.Process.program skip_src in
        let id = find_rec sg "skip" in
        (* shallow: both head constants appear, so it is fooled *)
        Alcotest.(check int)
          "shallow accepts" 0
          (List.length (Coverage.check_rec sg id));
        match Coverage.deep_check_rec sg id with
        | [ Coverage.DUncovered ms ] ->
            Alcotest.(check bool) "missing (s z)" true (List.mem "(s z)" ms)
        | _ -> Alcotest.fail "expected one uncovered case");
    ok "the patched match is covered at depth" (fun () ->
        let sg = Belr_parser.Process.program skip_full_src in
        match Coverage.deep_check_rec sg (find_rec sg "skip") with
        | [ Coverage.DCovered ] -> ()
        | _ -> Alcotest.fail "expected full coverage");
    ok "an insufficient split depth gives up (W0712), never lies" (fun () ->
        let sg = Belr_parser.Process.program skip_full_src in
        (match Coverage.deep_check_rec ~depth:1 sg (find_rec sg "skip") with
        | [ Coverage.DGaveUp ] -> ()
        | _ -> Alcotest.fail "expected a gave-up verdict");
        let sink, r = total_run ~depth:1 sg in
        Alcotest.(check bool) "W0712 reported" true
          (List.exists
             (fun d -> d.Diagnostics.d_code = "W0712")
             (Diagnostics.all sink));
        Alcotest.(check bool) "not covered" false
          (Totality.covered (verdict_of r "skip")));
    ok "refinements still prune impossible candidates at depth" (fun () ->
        (* the pred-pos/pred-nat pair from the shallow tests, deep *)
        let sg =
          Belr_parser.Process.program
            (nat_sig
           ^ {bel|
LFR pos <| nat : sort =
| s : nat -> pos;

rec pred-pos : [ |- pos] -> [ |- nat] =
fn d => case d of
| {N : [ |- nat]}
  [ |- s N] => [ |- N];

rec pred-nat : [ |- nat] -> [ |- nat] =
fn d => case d of
| {N : [ |- nat]}
  [ |- s N] => [ |- N];
|bel})
        in
        (match Coverage.deep_check_rec sg (find_rec sg "pred-pos") with
        | [ Coverage.DCovered ] -> ()
        | _ -> Alcotest.fail "pred-pos should be covered at sort pos");
        match Coverage.deep_check_rec sg (find_rec sg "pred-nat") with
        | [ Coverage.DUncovered ms ] ->
            Alcotest.(check bool) "z missing" true (List.mem "z" ms)
        | _ -> Alcotest.fail "pred-nat should miss z");
  ]

(* --- the report --------------------------------------------------------- *)

let report_tests =
  [
    ok "the belr-total/1 report carries verdicts, callgraph, and summary"
      (fun () ->
        let sg = Belr_parser.Process.program flip_flop_src in
        let sink, r = total_run sg in
        let j = Totality.report_json ~files:[ "flipflop.blr" ] sink r in
        (match Json.member "schema" j with
        | Some (Json.String s) ->
            Alcotest.(check string) "schema" Totality.schema_id s
        | _ -> Alcotest.fail "missing schema");
        (match Option.bind (Json.member "functions" j) Json.to_list with
        | Some fns -> Alcotest.(check int) "two functions" 2 (List.length fns)
        | None -> Alcotest.fail "missing functions");
        (match Json.member "callgraph" j with
        | Some cg ->
            (match Json.member "sccs" cg with
            | Some (Json.Int n) ->
                Alcotest.(check bool) "some SCC" true (n >= 1)
            | _ -> Alcotest.fail "missing sccs")
        | None -> Alcotest.fail "missing callgraph");
        (match Json.member "summary" j with
        | Some _ -> ()
        | None -> Alcotest.fail "missing summary");
        match Json.member "exit_code" j with
        | Some (Json.Int 0) -> ()
        | _ -> Alcotest.fail "expected exit code 0");
    ok "a diverging cycle drives the report's exit code to 1" (fun () ->
        let sg = Belr_parser.Process.program loop_src in
        let sink, r = total_run sg in
        let j = Totality.report_json ~files:[ "loop.blr" ] sink r in
        (match Json.member "exit_code" j with
        | Some (Json.Int 1) -> ()
        | _ -> Alcotest.fail "expected exit code 1");
        match Option.bind (Json.member "findings" j) Json.to_list with
        | Some fs ->
            Alcotest.(check bool) "an E0710 finding" true
              (List.exists
                 (fun f ->
                   Json.member "code" f = Some (Json.String "E0710"))
                 fs)
        | None -> Alcotest.fail "missing findings");
  ]

(* --- the call graph itself --------------------------------------------- *)

let callgraph_tests =
  [
    ok "call sites carry strict edges from pattern subterms" (fun () ->
        let sg = Belr_parser.Process.program flip_flop_src in
        let cg = Callgraph.analyze sg in
        let flip = find_rec sg "flip" and flop = find_rec sg "flop" in
        let site =
          match
            List.find_opt
              (fun s -> s.Callgraph.cs_caller = flip)
              cg.Callgraph.cg_sites
          with
          | Some s -> s
          | None -> Alcotest.fail "no flip call site"
        in
        Alcotest.(check bool) "calls flop" true
          (site.Callgraph.cs_callee = flop);
        (* flip x y calls flop y x': position 0 flows Le into 1, and the
           pattern subterm M' flows Lt into position 1 -> 0 is absent,
           1 -> 1 Le 0 -> ... assert the strict edge into slot 1 *)
        Alcotest.(check bool) "has a strict edge" true
          (List.exists
             (fun e ->
               e.Callgraph.e_rel = Callgraph.Lt && e.Callgraph.e_dst = 1)
             site.Callgraph.cs_edges));
    ok "the SCC decomposition groups the mutual pair" (fun () ->
        let sg = Belr_parser.Process.program flip_flop_src in
        let cg = Callgraph.analyze sg in
        let flip = find_rec sg "flip" and flop = find_rec sg "flop" in
        Alcotest.(check bool) "one mutual SCC" true
          (List.exists
             (fun scc -> List.mem flip scc && List.mem flop scc)
             (Callgraph.sccs cg)));
    ok "rec groups are recorded in the signature" (fun () ->
        let sg = Belr_parser.Process.program flip_flop_src in
        let flip = find_rec sg "flip" and flop = find_rec sg "flop" in
        Alcotest.(check bool) "flip's group lists both" true
          (Sign.rec_group sg flip = [ flip; flop ]);
        Alcotest.(check bool) "flop's group lists both" true
          (Sign.rec_group sg flop = [ flip; flop ]);
        let sg2 = Belr_parser.Process.program loop_src in
        let loop = find_rec sg2 "loop" in
        Alcotest.(check bool) "singletons default" true
          (Sign.rec_group sg2 loop = [ loop ]));
  ]

let suites =
  [
    ("totality.sct", sct_tests);
    ("totality.coverage", coverage_tests);
    ("totality.report", report_tests);
    ("totality.callgraph", callgraph_tests);
  ]
