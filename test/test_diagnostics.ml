(** The fault-tolerant checking pipeline: multi-error reporting with
    stable codes, per-declaration recovery without cascades, resource
    guards, and the 0/1/2 exit-code contract. *)

open Belr_support
open Belr_parser

let base = Belr_kits.Surface.signature_src

let check ?max_errors ?werror src =
  let sink = Diagnostics.sink ?max_errors ?werror () in
  let sg = Driver.check_sources sink [ ("test.bel", src) ] in
  (sink, sg)

let codes_of severity sink =
  List.filter_map
    (fun (d : Diagnostics.t) ->
      if d.Diagnostics.d_severity = severity then Some d.Diagnostics.d_code
      else None)
    (Diagnostics.all sink)

let test name f = Alcotest.test_case name `Quick f

(** Restore the global depth budget (and counters) even if the test
    fails. *)
let with_max_depth n f =
  Limits.set_max_depth n;
  Fun.protect
    ~finally:(fun () ->
      Limits.set_max_depth Limits.default_max_depth;
      Limits.reset ())
    f

let multi_error_tests =
  [
    test "a clean file yields no diagnostics and exit code 0" (fun () ->
        let sink, _ = check base in
        Alcotest.(check int) "errors" 0 (Diagnostics.error_count sink);
        Alcotest.(check int) "exit" 0 (Diagnostics.exit_code sink));
    test "three independent bad declarations report exactly three errors"
      (fun () ->
        let sink, _ =
          check
            (base
           ^ "LF bad1 : type = | c1 : missing1;\n\
              LF bad2 : type = | c2 : missing2;\n\
              LF bad3 : type = | c3 : missing3;")
        in
        Alcotest.(check int) "errors" 3 (Diagnostics.error_count sink);
        Alcotest.(check (list string))
          "stable codes" [ "E0201"; "E0201"; "E0201" ]
          (codes_of Diagnostics.Error sink);
        Alcotest.(check int) "exit" 1 (Diagnostics.exit_code sink));
    test "references to a failed declaration note once, with no cascade"
      (fun () ->
        let sink, _ =
          check
            (base
           ^ "LF bad : type = | c : missing;\n\
              LF useA : type = | ua : bad -> useA;\n\
              LF useB : type = | ub : bad -> useB;")
        in
        (* one real error; the two downstream declarations produce a single
           deduplicated E0801 note *)
        Alcotest.(check int) "errors" 1 (Diagnostics.error_count sink);
        Alcotest.(check (list string))
          "notes" [ "E0801" ]
          (codes_of Diagnostics.Note sink);
        Alcotest.(check int) "exit" 1 (Diagnostics.exit_code sink));
    test "recovery preserves good declarations around a failure" (fun () ->
        let sink, sg =
          check
            (base
           ^ "LF good1 : type = | g1 : tm -> good1;\n\
              LF bad : type = | c : missing;\n\
              LF good2 : type = | g2 : good1 -> good2;")
        in
        Alcotest.(check int) "errors" 1 (Diagnostics.error_count sink);
        let declared n =
          match Belr_lf.Sign.lookup_name sg n with
          | Some (Belr_lf.Sign.Sym_typ _) -> true
          | _ -> false
        in
        Alcotest.(check bool) "good1 survives" true (declared "good1");
        Alcotest.(check bool) "good2 checked after the failure" true
          (declared "good2"));
    test "syntax errors resynchronize at declaration boundaries" (fun () ->
        let sink, sg =
          check
            (base
           ^ "LF bad1 : type = | c1 : (tm -> ;\n\
              LF good : type = | g : tm -> good;\n\
              rec bad2 : = fn x => x;")
        in
        Alcotest.(check (list string))
          "two syntax errors" [ "E0101"; "E0101" ]
          (codes_of Diagnostics.Error sink);
        Alcotest.(check bool) "good parsed and checked" true
          (Belr_lf.Sign.lookup_name sg "good" <> None));
    test "the --max-errors cap stops with a final note" (fun () ->
        let sink, _ =
          check ~max_errors:2
            (base
           ^ "LF b1 : type = | c1 : m1;\nLF b2 : type = | c2 : m2;\n\
              LF b3 : type = | c3 : m3;\nLF b4 : type = | c4 : m4;")
        in
        Alcotest.(check int) "capped" 2 (Diagnostics.error_count sink);
        Alcotest.(check bool) "stop note" true
          (List.mem "E0002" (codes_of Diagnostics.Note sink)));
  ]

let exit_code_tests =
  [
    test "warnings alone keep exit code 0" (fun () ->
        let sink = Diagnostics.sink () in
        Diagnostics.emit sink
          (Diagnostics.make ~code:"W0601" Diagnostics.Warning "w");
        Alcotest.(check int) "exit" 0 (Diagnostics.exit_code sink));
    test "--werror promotes warnings to errors (exit 1)" (fun () ->
        let sink = Diagnostics.sink ~werror:true () in
        Diagnostics.emit sink
          (Diagnostics.make ~code:"W0601" Diagnostics.Warning "w");
        Alcotest.(check int) "errors" 1 (Diagnostics.error_count sink);
        Alcotest.(check int) "exit" 1 (Diagnostics.exit_code sink));
    test "a recovered Violation is a bug: exit code 2" (fun () ->
        let sink = Diagnostics.sink () in
        let r =
          Diagnostics.recover sink (fun () -> Error.violation "broken invariant")
        in
        Alcotest.(check bool) "recovered" true (r = None);
        Alcotest.(check int) "bugs" 1 (Diagnostics.bug_count sink);
        Alcotest.(check (list string))
          "code" [ "B0001" ]
          (codes_of Diagnostics.Bug sink);
        Alcotest.(check int) "exit" 2 (Diagnostics.exit_code sink));
    test "bugs dominate user errors in the exit code" (fun () ->
        let sink = Diagnostics.sink () in
        Diagnostics.emit sink
          (Diagnostics.make ~code:"E0201" Diagnostics.Error "user error");
        ignore (Diagnostics.recover sink (fun () -> Error.violation "bug"));
        Alcotest.(check int) "exit" 2 (Diagnostics.exit_code sink));
    test "an unexpected exception is a recovered B0002 bug" (fun () ->
        let sink = Diagnostics.sink () in
        let r = Diagnostics.recover sink (fun () -> raise Not_found) in
        Alcotest.(check bool) "recovered" true (r = None);
        Alcotest.(check (list string))
          "code" [ "B0002" ]
          (codes_of Diagnostics.Bug sink));
    test "a missing file is an E0701 diagnostic, not a crash" (fun () ->
        let sink = Diagnostics.sink () in
        let _sg = Driver.check_files sink [ "/nonexistent/belr/file.bel" ] in
        Alcotest.(check (list string))
          "code" [ "E0701" ]
          (codes_of Diagnostics.Error sink);
        Alcotest.(check int) "exit" 1 (Diagnostics.exit_code sink));
  ]

let resource_tests =
  [
    test "a hereditary-substitution bomb hits the fuel, not the stack"
      (fun () ->
        with_max_depth 500 (fun () ->
            let open Belr_syntax.Lf in
            (* [self/x](x x) where self = λx. x x: diverges *)
            let self = (mk_lam "x" ((mk_root ((mk_bvar 1)) ([ (mk_root ((mk_bvar 1)) []) ])))) in
            let body = (mk_root ((mk_bvar 1)) ([ (mk_root ((mk_bvar 1)) []) ])) in
            match Belr_lf.Hsub.inst_normal body self with
            | _ -> Alcotest.fail "expected Limit_exceeded"
            | exception Limits.Limit_exceeded ("hereditary substitution", _)
              ->
                ()
            | exception Stack_overflow ->
                Alcotest.fail "Stack_overflow escaped the guard"));
    test "guards unwind their counters on user errors" (fun () ->
        with_max_depth 500 (fun () ->
            let c = Limits.counter "test" in
            (try
               Limits.guard c (fun () ->
                   Limits.guard c (fun () -> Error.raise_msg "inner failure"))
             with Error.Belr_error _ -> ());
            Alcotest.(check int) "depth restored" 0 c.Limits.c_depth));
    test "an exhausted depth budget yields E0901 and exit 1" (fun () ->
        with_max_depth 1 (fun () ->
            let sink, _ = check Belr_kits.Surface.full_src in
            Alcotest.(check bool) "has E0901" true
              (List.mem "E0901" (codes_of Diagnostics.Error sink));
            Alcotest.(check int) "exit" 1 (Diagnostics.exit_code sink)));
  ]

let analysis_tests =
  [
    test "--total warnings flow through the sink with stable codes"
      (fun () ->
        let sink = Diagnostics.sink () in
        let sg =
          Driver.check_sources sink [ ("test.bel", Belr_kits.Surface.full_src) ]
        in
        Driver.analyze sink sg;
        Alcotest.(check int) "no errors" 0 (Diagnostics.error_count sink);
        Alcotest.(check bool) "coverage warnings" true
          (List.mem "W0711" (codes_of Diagnostics.Warning sink));
        Alcotest.(check int) "exit stays 0" 0 (Diagnostics.exit_code sink));
    test "--total with --werror fails the run" (fun () ->
        let sink = Diagnostics.sink ~werror:true () in
        let sg =
          Driver.check_sources sink [ ("test.bel", Belr_kits.Surface.full_src) ]
        in
        Driver.analyze sink sg;
        Alcotest.(check int) "exit" 1 (Diagnostics.exit_code sink));
  ]

let registry_tests =
  [
    test "the code registry has no duplicate registrations" (fun () ->
        match Diagnostics.check_codes Diagnostics.registry with
        | Ok () -> ()
        | Error msg -> Alcotest.fail msg);
    test "check_codes rejects a duplicated code" (fun () ->
        let dup =
          Diagnostics.registry
          @ [
              {
                Diagnostics.cc_code = "E0201";
                cc_severity = Diagnostics.Error;
                cc_doc = "imposter";
              };
            ]
        in
        match Diagnostics.check_codes dup with
        | Ok () -> Alcotest.fail "duplicate E0201 was accepted"
        | Error msg ->
            let contains affix s =
              let n = String.length affix and m = String.length s in
              let rec go i =
                i + n <= m && (String.sub s i n = affix || go (i + 1))
              in
              go 0
            in
            Alcotest.(check bool) "names the code" true
              (contains "E0201" msg));
    test "every code emitted by the pipeline, lint, and total is registered"
      (fun () ->
        (* codes referenced in this test file + the analysis pass codes *)
        List.iter
          (fun c ->
            Alcotest.(check bool) (c ^ " registered") true
              (Diagnostics.code_class c <> None))
          [
            "E0001"; "E0002"; "E0101"; "E0201"; "E0701"; "E0702"; "E0801";
            "E0901"; "E0902"; "W0601"; "W0602"; "E0710"; "W0711"; "W0712";
            "W0701"; "W0702"; "W0703"; "W0704"; "W0705"; "B0001"; "B0002";
          ]);
    test "registry severities match the lint exit-code contract" (fun () ->
        (* E0702 must be an Error (findings fail the run); W07xx must be
           Warnings (clean exit unless --werror) *)
        let sev c =
          match Diagnostics.code_class c with
          | Some cc -> cc.Diagnostics.cc_severity
          | None -> Alcotest.failf "%s not registered" c
        in
        Alcotest.(check bool) "E0702 is an error" true
          (sev "E0702" = Diagnostics.Error);
        (* a non-terminating cycle must fail the run; coverage gaps and
           resource-bound giveups must stay warnings unless --werror *)
        Alcotest.(check bool) "E0710 is an error" true
          (sev "E0710" = Diagnostics.Error);
        List.iter
          (fun c ->
            Alcotest.(check bool) (c ^ " is a warning") true
              (sev c = Diagnostics.Warning))
          [ "W0701"; "W0702"; "W0703"; "W0704"; "W0705"; "W0711"; "W0712" ]);
  ]

let dump_tests =
  [
    (* regression: [dump] must flush explicitly, or diagnostics sit in the
       Format buffer and interleave wrongly with (or never reach) the
       device when the process exits through [exit]. *)
    test "dump writes every diagnostic and flushes the formatter" (fun () ->
        let buf = Buffer.create 256 in
        let flushed = ref false in
        let ppf =
          Format.formatter_of_out_functions
            {
              Format.out_string =
                (fun s pos len -> Buffer.add_substring buf s pos len);
              out_flush = (fun () -> flushed := true);
              out_newline = (fun () -> Buffer.add_char buf '\n');
              out_spaces = (fun n -> Buffer.add_string buf (String.make n ' '));
              out_indent = (fun n -> Buffer.add_string buf (String.make n ' '));
            }
        in
        let sink, _ = check (base ^ "LF bad : type = | c : missing;") in
        Alcotest.(check int) "one error" 1 (Diagnostics.error_count sink);
        Diagnostics.dump ppf sink;
        Alcotest.(check bool) "formatter flushed" true !flushed;
        Alcotest.(check bool) "diagnostic text reached the device" true
          (Buffer.length buf > 0));
  ]

let suites =
  [
    ("diagnostics.multi-error", multi_error_tests);
    ("diagnostics.exit-codes", exit_code_tests);
    ("diagnostics.resources", resource_tests);
    ("diagnostics.analyses", analysis_tests);
    ("diagnostics.registry", registry_tests);
    ("diagnostics.dump", dump_tests);
  ]
