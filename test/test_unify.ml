(** Tests for higher-order pattern unification: solving, inversion,
    occurs check, subsumption-aware sort unification, and the (ρ, Ω′)
    extraction used by branch checking. *)

open Belr_syntax
open Belr_meta
open Belr_unify
open Lf

let f = Fixtures.make ()

let sg = f.Fixtures.sg

let check_tm = Alcotest.testable (Pp.pp_normal (Pp.env ())) Equal.normal

let v i : normal = (mk_root ((mk_bvar i)) [])

let fails name thunk =
  Alcotest.test_case name `Quick (fun () ->
      match thunk () with
      | exception Unify.Unify _ -> ()
      | _ -> Alcotest.failf "%s: expected unification failure" name)

let ok name thunk = Alcotest.test_case name `Quick thunk

let tm_s = (mk_sembed f.Fixtures.tm [])

(* In a declaration stored at meta-index [i], the context variable ψ is
   referenced by its distance from that declaration (indices are relative
   to the declaration's own prefix of Ω). *)
let psi_at k : Ctxs.sctx =
  { Ctxs.s_var = Some k; Ctxs.s_promoted = false; Ctxs.s_decls = [] }

let psi_x_at k : Ctxs.sctx =
  { Ctxs.s_var = Some k; Ctxs.s_promoted = false;
    Ctxs.s_decls = [ Ctxs.SCDecl ("x", tm_s) ] }

(* The ceq-style meta-context, innermost first:
   N'(1), M'(2) : (ψ, x:tm).⌊tm⌋ ; N(3), M(4) : (ψ).⌊tm⌋ ; ψ(5) : xaG *)
let omega_ceq : Meta.mctx =
  [
    Meta.MDTerm ("N'", psi_x_at 4, tm_s);
    Meta.MDTerm ("M'", psi_x_at 3, tm_s);
    Meta.MDTerm ("N", psi_at 2, tm_s);
    Meta.MDTerm ("M", psi_at 1, tm_s);
    Meta.MDCtx ("psi", f.Fixtures.xag);
  ]

let mvar i : normal = (mk_root ((mk_mvar i ((mk_shift 0)))) [])

let lam_of i : normal = (mk_root ((mk_const f.Fixtures.lam)) ([ (mk_lam "x" (mvar i)) ]))

let all_flex _ = true

let pattern_flex n i = i <= n

let unify_tests =
  [
    ok "flex-rigid: M ≐ lam (\\x. M') solves M" (fun () ->
        let st = Unify.make ~sg ~omega:omega_ceq ~flex:all_flex in
        Unify.unify_normal st (mvar 4) (lam_of 2);
        let rho, omega' = Unify.solve st in
        Alcotest.(check int) "4 unsolved" 4 (List.length omega');
        (* applying ρ to M yields lam \x. M' with M' renumbered to its
           position in Ω′ *)
        let m_inst = Msub.normal 0 rho (mvar 4) in
        match m_inst with
        | Root (Const c, [ Lam (_, Root (MVar (_, Shift 0), [])) ])
          when c = f.Fixtures.lam ->
            ()
        | t -> Alcotest.failf "unexpected %a" (Pp.pp_normal (Pp.env ())) t);
    ok "the ceq e-lam case: both M and N solved consistently" (fun () ->
        let st = Unify.make ~sg ~omega:omega_ceq ~flex:all_flex in
        (* deq M N ≐ deq (lam M') (lam N') as sorts with subsumption *)
        let s_scrut = (mk_sembed f.Fixtures.deq ([ mvar 4; mvar 3 ])) in
        let s_pat = (mk_sembed f.Fixtures.deq ([ lam_of 2; lam_of 1 ])) in
        Unify.unify_srt st s_pat s_scrut;
        let rho, omega' = Unify.solve st in
        Alcotest.(check int) "3 unsolved" 3 (List.length omega');
        let s' = Msub.srt 0 rho s_scrut in
        let s'' = Msub.srt 0 rho s_pat in
        Alcotest.(check bool) "instances agree" true (Equal.srt s' s''));
    ok "subsumption-aware sort unification (aeq ≤ ⌊deq⌋)" (fun () ->
        let st = Unify.make ~sg ~omega:omega_ceq ~flex:all_flex in
        let got = (mk_satom f.Fixtures.aeq ([ mvar 4; mvar 4 ])) in
        let want = (mk_sembed f.Fixtures.deq ([ mvar 4; mvar 4 ])) in
        Unify.unify_srt ~leq:true st got want);
    fails "subsumption is rejected without ~leq" (fun () ->
        let st = Unify.make ~sg ~omega:omega_ceq ~flex:all_flex in
        Unify.unify_srt st
          ((mk_satom f.Fixtures.aeq ([ mvar 4; mvar 4 ])))
          ((mk_sembed f.Fixtures.deq ([ mvar 4; mvar 4 ]))));
    ok "rigid-rigid success" (fun () ->
        let st = Unify.make ~sg ~omega:omega_ceq ~flex:all_flex in
        Unify.unify_normal st (lam_of 2) (lam_of 2));
    fails "rigid-rigid constant clash" (fun () ->
        let st = Unify.make ~sg ~omega:omega_ceq ~flex:all_flex in
        Unify.unify_normal st
          ((mk_root ((mk_const f.Fixtures.lam)) ([ (mk_lam "x" (v 1)) ])))
          ((mk_root ((mk_const f.Fixtures.app)) ([ mvar 4; mvar 3 ]))));
    fails "occurs check" (fun () ->
        let st = Unify.make ~sg ~omega:omega_ceq ~flex:all_flex in
        (* M ≐ app M M *)
        Unify.unify_normal st (mvar 4)
          ((mk_root ((mk_const f.Fixtures.app)) ([ mvar 4; mvar 4 ]))));
    ok "matching mode: only pattern variables solvable" (fun () ->
        let st = Unify.make ~sg ~omega:omega_ceq ~flex:(pattern_flex 2) in
        (* pattern M'(2) against rigid ground term: M' := lam \x.x,
           weakened to (ψ, x) *)
        let ground =
          Shift.shift_normal 1 0 (Fixtures.id_tm f)
        in
        Unify.unify_normal st (mvar 2) ground;
        let rho, _ = Unify.solve st in
        Alcotest.check check_tm "solved" ground (Msub.normal 0 rho (mvar 2)));
    fails "matching mode refuses to solve scrutinee variables" (fun () ->
        let st = Unify.make ~sg ~omega:omega_ceq ~flex:(pattern_flex 2) in
        (* would need to solve M (index 4), which is not flex *)
        Unify.unify_normal st (mvar 4) (Fixtures.id_tm f));
    ok "inversion through a proper pattern substitution" (fun () ->
        (* u : (x:tm).tm used at σ = (x ↦ y₂) in a 3-variable context;
           u[σ] ≐ app y₂ y₂ solves u := app x x *)
        let psi_u =
          Ctxs.sctx_push Ctxs.empty_sctx (Ctxs.SCDecl ("x", tm_s))
        in
        let omega = [ Meta.MDTerm ("u", psi_u, tm_s) ] in
        let st = Unify.make ~sg ~omega ~flex:all_flex in
        let sigma = (mk_dot (Obj (v 2)) ((mk_shift 3))) in
        let t1 = (mk_root ((mk_mvar 1 sigma)) []) in
        let t2 = (mk_root ((mk_const f.Fixtures.app)) ([ v 2; v 2 ])) in
        Unify.unify_normal st t1 t2;
        let rho, _ = Unify.solve st in
        (* read back the solution by applying ρ to u[id] *)
        let sol = Msub.normal 0 rho (mvar 1) in
        Alcotest.check check_tm "app x x"
          ((mk_root ((mk_const f.Fixtures.app)) ([ v 1; v 1 ])))
          sol);
    fails "inversion fails when a variable escapes" (fun () ->
        let psi_u =
          Ctxs.sctx_push Ctxs.empty_sctx (Ctxs.SCDecl ("x", tm_s))
        in
        let omega = [ Meta.MDTerm ("u", psi_u, tm_s) ] in
        let st = Unify.make ~sg ~omega ~flex:all_flex in
        let sigma = (mk_dot (Obj (v 2)) ((mk_shift 3))) in
        let t1 = (mk_root ((mk_mvar 1 sigma)) []) in
        (* y₁ is not in the image of σ *)
        let t2 = (mk_root ((mk_const f.Fixtures.app)) ([ v 1; v 2 ])) in
        Unify.unify_normal st t1 t2);
    ok "parameter variable solving (#b ≐ concrete block)" (fun () ->
        let psi1 = Fixtures.xa_sctx f 1 in
        let omega =
          [ Meta.MDParam ("b", psi1, f.Fixtures.xa_selem, []) ]
        in
        let st = Unify.make ~sg ~omega ~flex:all_flex in
        Unify.unify_normal st
          ((mk_root ((mk_proj ((mk_pvar 1 ((mk_shift 0)))) 2)) []))
          ((mk_root ((mk_proj ((mk_bvar 1)) 2)) []));
        let rho, omega' = Unify.solve st in
        Alcotest.(check int) "all solved" 0 (List.length omega');
        match Msub.normal 0 rho ((mk_root ((mk_proj ((mk_pvar 1 ((mk_shift 0)))) 2)) [])) with
        | Root (Proj (BVar 1, 2), []) -> ()
        | t -> Alcotest.failf "unexpected %a" (Pp.pp_normal (Pp.env ())) t);
    fails "parameter projections with different indices clash" (fun () ->
        let psi1 = Fixtures.xa_sctx f 1 in
        let omega = [ Meta.MDParam ("b", psi1, f.Fixtures.xa_selem, []) ] in
        let st = Unify.make ~sg ~omega ~flex:all_flex in
        Unify.unify_normal st
          ((mk_root ((mk_proj ((mk_pvar 1 ((mk_shift 0)))) 2)) []))
          ((mk_root ((mk_proj ((mk_bvar 1)) 1)) [])));
    ok "residual context is topologically ordered" (fun () ->
        let st = Unify.make ~sg ~omega:omega_ceq ~flex:all_flex in
        Unify.unify_normal st (mvar 4) (lam_of 2);
        Unify.unify_normal st (mvar 3) (lam_of 1);
        let _, omega' = Unify.solve st in
        (* Ω′ = N', M', ψ (innermost first ending with ψ) *)
        Alcotest.(check int) "3 left" 3 (List.length omega');
        match List.rev omega' with
        | Meta.MDCtx _ :: _ -> ()
        | _ -> Alcotest.fail "context variable should be outermost");
  ]

let suites = [ ("unify", unify_tests) ]
